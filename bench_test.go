package repro

// The bench harness regenerates every table and figure of the paper's
// evaluation at a laptop-friendly scale (one benchmark per experiment; see
// DESIGN.md §3 for the experiment index and EXPERIMENTS.md for
// paper-vs-measured comparisons at the default harness scale).
//
// Run everything:   go test -bench=. -benchmem
// Run one figure:   go test -bench=Fig15 -benchmem
//
// Reported custom metrics use the suffix convention
//   *_reward  — mean total episode reward (higher is better)
//   *_resp    — average response time in slots (lower is better)

import (
	"math/rand"
	"testing"

	"repro/internal/cloudsim"
	"repro/internal/core"
	"repro/internal/rl"
	"repro/internal/stats"
	"repro/internal/workflow"
	"repro/internal/workload"
)

// benchExperiment is the shared scaled-down configuration: Table-2 or
// Table-3 clients at quarter capacity, 60 tasks, 12 episodes.
func benchExperiment(specs []core.ClientSpec, seed int64) core.ExperimentConfig {
	cfg := core.DefaultExperiment(seed)
	cfg.Specs = core.ScaleSpecs(specs, 4)
	cfg.TasksPerClient = 60
	cfg.Episodes = 12
	cfg.CommEvery = 3
	cfg.EpisodeStepCap = 300
	return cfg
}

func tail(curve []float64) float64 {
	n := len(curve) / 4
	if n < 1 {
		n = 1
	}
	return stats.Mean(curve[len(curve)-n:])
}

// BenchmarkFig02_03_ResourceDistributions regenerates the CPU and memory
// request histograms of Figures 2–3 for all ten datasets.
func BenchmarkFig02_03_ResourceDistributions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, id := range workload.AllDatasets() {
			rng := rand.New(rand.NewSource(int64(id) + 1))
			tasks := workload.SampleDataset(id, rng, 1000)
			workload.ResourceHistogram(tasks, 10, func(t workload.Task) float64 { return float64(t.CPU) })
			workload.ResourceHistogram(tasks, 10, func(t workload.Task) float64 { return t.Mem })
		}
	}
}

// BenchmarkFig04_ArrivalRates regenerates the hourly arrival-rate series of
// Figure 4.
func BenchmarkFig04_ArrivalRates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, id := range workload.AllDatasets() {
			rng := rand.New(rand.NewSource(int64(id) + 2))
			workload.HourlyArrivalRates(workload.SampleDataset(id, rng, 1000), 6)
		}
	}
}

// BenchmarkFig05_ExecTimeCDF regenerates the execution-time CDFs of
// Figure 5.
func BenchmarkFig05_ExecTimeCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, id := range workload.AllDatasets() {
			rng := rand.New(rand.NewSource(int64(id) + 3))
			workload.ExecTimeCDF(workload.SampleDataset(id, rng, 1000))
		}
	}
}

// BenchmarkFig07_IsoVsHeter regenerates the §3.1 iso-train vs heter-train
// response-time comparison (Figure 7).
func BenchmarkFig07_IsoVsHeter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchExperiment(core.Table2Specs(), 7)
		cfg.Episodes = 8
		res, err := core.RunIsoHeter(cfg)
		if err != nil {
			b.Fatal(err)
		}
		iso := (stats.Mean(res.IsoTrainIsoTest) + stats.Mean(res.IsoTrainHeterTest)) / 2
		heter := (stats.Mean(res.HeterTrainIsoTest) + stats.Mean(res.HeterTrainHeterTest)) / 2
		b.ReportMetric(iso, "iso_resp")
		b.ReportMetric(heter, "heter_resp")
	}
}

// BenchmarkFig08_FedAvgVsPPO regenerates the §3.2 convergence comparison
// (Figure 8): FedAvg underperforms independent PPO under heterogeneity.
func BenchmarkFig08_FedAvgVsPPO(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchExperiment(core.Table2Specs(), 8)
		curves, _, err := core.RunConvergence(cfg, []core.Algorithm{core.AlgFedAvg, core.AlgPPO})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(tail(curves["PPO"]), "ppo_reward")
		b.ReportMetric(tail(curves["FedAvg"]), "fedavg_reward")
	}
}

// BenchmarkFig09_CriticLoss regenerates the §3.2 critic-loss probes
// (Figure 9): the aggregated critic evaluates local trajectories worse
// than the local critic it replaced.
func BenchmarkFig09_CriticLoss(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchExperiment(core.Table2Specs(), 9)
		_, results, err := core.RunConvergence(cfg, []core.Algorithm{core.AlgFedAvg})
		if err != nil {
			b.Fatal(err)
		}
		pre, post := core.CriticLossSeries(results[core.AlgFedAvg])
		b.ReportMetric(stats.Mean(pre), "pre_loss")
		b.ReportMetric(stats.Mean(post), "post_loss")
	}
}

// BenchmarkFig10_SimilarClientWeights regenerates the §3.3 manual-weighting
// comparison (Figure 10).
func BenchmarkFig10_SimilarClientWeights(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchExperiment(core.Table2Specs(), 10)
		res, err := core.RunWeightConfigs(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(tail(res["Fed-Same2"]), "same2_reward")
		b.ReportMetric(tail(res["Fed-Same2-weight"]), "same2w_reward")
	}
}

// BenchmarkFig11_13_WeightHeatmaps regenerates the §3.3 weight heatmaps
// (Figures 11–13) and reports the focus statistic of the similar pair
// under each generator.
func BenchmarkFig11_13_WeightHeatmaps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchExperiment(core.Table2Specs(), 11)
		res, err := core.RunWeightHeatmaps(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(focus(res.Attention, 0, 1), "attn_focus")
		b.ReportMetric(focus(res.KL, 0, 1), "kl_focus")
		b.ReportMetric(focus(res.Cosine, 0, 1), "cos_focus")
	}
}

func focus(w [][]float64, i, j int) float64 {
	k := len(w)
	sum, cnt := 0.0, 0
	for r := 0; r < k; r++ {
		for c := 0; c < k; c++ {
			if r != c {
				sum += w[r][c]
				cnt++
			}
		}
	}
	if sum == 0 {
		return 1
	}
	return w[i][j] / (sum / float64(cnt))
}

// BenchmarkFig15_Convergence regenerates the headline convergence
// comparison (Figure 15) over the Table-3 federation.
func BenchmarkFig15_Convergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchExperiment(core.Table3Specs(), 15)
		curves, _, err := core.RunConvergence(cfg, core.AllAlgorithms())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(tail(curves["PFRL-DM"]), "pfrldm_reward")
		b.ReportMetric(tail(curves["MFPO"]), "mfpo_reward")
		b.ReportMetric(tail(curves["FedAvg"]), "fedavg_reward")
		b.ReportMetric(tail(curves["PPO"]), "ppo_reward")
	}
}

// BenchmarkFig16_19_HybridEval regenerates the hybrid-workload evaluation
// (Figures 16–19), reporting PFRL-DM's mean metrics across clients.
func BenchmarkFig16_19_HybridEval(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchExperiment(core.Table3Specs(), 16)
		_, results, err := core.RunConvergence(cfg, []core.Algorithm{core.AlgPFRLDM, core.AlgPPO})
		if err != nil {
			b.Fatal(err)
		}
		ours := core.EvalHybrid(results[core.AlgPFRLDM], cfg, 0.2)
		base := core.EvalHybrid(results[core.AlgPPO], cfg, 0.2)
		b.ReportMetric(stats.Mean(ours.AvgResponse), "pfrldm_resp")
		b.ReportMetric(stats.Mean(base.AvgResponse), "ppo_resp")
		b.ReportMetric(stats.Mean(ours.AvgUtil), "pfrldm_util")
	}
}

// BenchmarkTable4_Wilcoxon regenerates the Table-4 significance tests.
func BenchmarkTable4_Wilcoxon(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchExperiment(core.Table3Specs(), 4)
		_, results, err := core.RunConvergence(cfg, core.AllAlgorithms())
		if err != nil {
			b.Fatal(err)
		}
		evals := map[core.Algorithm]*core.HybridEval{}
		for alg, r := range results {
			evals[alg] = core.EvalHybrid(r, cfg, 0.2)
		}
		tbl, err := core.BuildWilcoxonTable(evals)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(tbl.P[0][0], "p_resp_vs_fedavg")
	}
}

// BenchmarkFig20_NewAgent regenerates the new-agent-join comparison
// (Figure 20).
func BenchmarkFig20_NewAgent(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchExperiment(core.Table3Specs(), 20)
		res, err := core.RunNewAgent(cfg, cfg.Episodes, cfg.Episodes)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(tail(res.Joined), "joined_reward")
		b.ReportMetric(tail(res.Fresh), "fresh_reward")
	}
}

// BenchmarkFig21_CommFrequency regenerates the communication-frequency
// sweep (Figure 21).
func BenchmarkFig21_CommFrequency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchExperiment(core.Table3Specs(), 21)
		out, err := core.RunCommFrequency(cfg, []int{2, 6})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(tail(out[2]), "comm2_reward")
		b.ReportMetric(tail(out[6]), "comm6_reward")
	}
}

// BenchmarkAblationDualCritic compares full PFRL-DM against the α=0
// variant (public critic only) — the dual-critic design choice.
func BenchmarkAblationDualCritic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchExperiment(core.Table3Specs(), 30)
		full, err := core.RunAblation(cfg, core.AblationFull, 0)
		if err != nil {
			b.Fatal(err)
		}
		noDual, err := core.RunAblation(cfg, core.AblationNoDualCritic, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(tail(full), "full_reward")
		b.ReportMetric(tail(noDual), "nodual_reward")
	}
}

// BenchmarkAblationAttention compares attention aggregation against plain
// FedAvg over public critics — the personalization design choice.
func BenchmarkAblationAttention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchExperiment(core.Table3Specs(), 31)
		full, err := core.RunAblation(cfg, core.AblationFull, 0)
		if err != nil {
			b.Fatal(err)
		}
		noAttn, err := core.RunAblation(cfg, core.AblationNoAttention, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(tail(full), "attention_reward")
		b.ReportMetric(tail(noAttn), "fedavg_psi_reward")
	}
}

// BenchmarkAblationAlphaAdaptive compares the adaptive Eq. (15) α against
// a fixed α = 0.5.
func BenchmarkAblationAlphaAdaptive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchExperiment(core.Table3Specs(), 32)
		adaptive, err := core.RunAblation(cfg, core.AblationFull, 0)
		if err != nil {
			b.Fatal(err)
		}
		fixed, err := core.RunAblation(cfg, core.AblationFixedAlpha, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(tail(adaptive), "adaptive_reward")
		b.ReportMetric(tail(fixed), "fixed_reward")
	}
}

// BenchmarkAblationAttentionHeads sweeps the head count of the attention
// aggregator.
func BenchmarkAblationAttentionHeads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchExperiment(core.Table3Specs(), 33)
		h1, err := core.RunAblation(cfg, core.AblationFull, 1)
		if err != nil {
			b.Fatal(err)
		}
		h4, err := core.RunAblation(cfg, core.AblationFull, 4)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(tail(h1), "heads1_reward")
		b.ReportMetric(tail(h4), "heads4_reward")
	}
}

// --- Extension benches (systems built beyond the paper's evaluation) ---

// BenchmarkExtWorkflowScheduling exercises the DAG-workflow extension (the
// paper's stated future work): PPO trains on fork-join workflows and is
// scored on mean workflow stretch (latency / critical path; 1.0 is optimal).
func BenchmarkExtWorkflowScheduling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		vms := []cloudsim.VMSpec{{CPU: 4, Mem: 32}, {CPU: 8, Mem: 64}}
		cfg := cloudsim.DefaultConfig(vms)
		cfg.MaxSteps = 1500
		gen := workflow.DefaultGenConfig(workload.K8S)
		rng := rand.New(rand.NewSource(40))
		wfs := workflow.ClampToVMs(workflow.Generate(rng, gen, 8), vms)
		env, err := workflow.NewEnv(cfg, wfs)
		if err != nil {
			b.Fatal(err)
		}
		agent := rl.NewPPO(rl.DefaultConfig(env.StateDim(), env.NumActions()), rand.New(rand.NewSource(41)))
		for ep := 0; ep < 8; ep++ {
			env.Reset(wfs)
			var buf rl.Buffer
			rl.CollectEpisode(env, agent, &buf)
			agent.Update(&buf)
		}
		env.Reset(wfs)
		for !env.Done() {
			env.Step(agent.GreedyMaskedAction(env.Observe(nil), env.FeasibleActions()))
		}
		env.Drain()
		stretch := 0.0
		recs := env.WorkflowRecords()
		for _, r := range recs {
			stretch += r.Stretch()
		}
		if len(recs) > 0 {
			b.ReportMetric(stretch/float64(len(recs)), "mean_stretch")
		}
	}
}

// BenchmarkExtEnergyObjective compares energy consumption under the
// default reward against the energy-weighted reward extension, using the
// consolidating/spreading heuristics as behavioural anchors.
func BenchmarkExtEnergyObjective(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(42))
		cfg := cloudsim.DefaultConfig([]cloudsim.VMSpec{{CPU: 8, Mem: 64}, {CPU: 8, Mem: 64}, {CPU: 8, Mem: 64}})
		tasks := cloudsim.ClampTasks(workload.SampleDataset(workload.Google, rng, 150), cfg.VMs)
		consolidate := cloudsim.RunEpisode(cloudsim.MustNewEnv(cfg, tasks), cloudsim.FirstFit{})
		spread := cloudsim.RunEpisode(cloudsim.MustNewEnv(cfg, tasks), cloudsim.WorstFit{})
		b.ReportMetric(consolidate.EnergyWattSlots, "consolidate_wattslots")
		b.ReportMetric(spread.EnergyWattSlots, "spread_wattslots")
	}
}

// BenchmarkExtFedProxAndSecureAgg trains the two extension baselines on the
// standard federation for comparison with BenchmarkFig15_Convergence.
func BenchmarkExtFedProxAndSecureAgg(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchExperiment(core.Table3Specs(), 43)
		curves, _, err := core.RunConvergence(cfg, core.ExtensionAlgorithms())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(tail(curves["FedProx"]), "fedprox_reward")
		b.ReportMetric(tail(curves["SecureFedAvg"]), "secagg_reward")
	}
}
