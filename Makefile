# Developer targets for the PFRL-DM reproduction.
#
#   make ci      - the full pre-merge smoke check: vet, build, race-enabled
#                  tests, and one iteration of each perf microbenchmark
#   make test    - plain test suite (tier-1 gate)
#   make bench   - full benchmark runs with allocation reporting
#   make perf    - the CLI perf experiment, writing BENCH_<name>.json

GO ?= go

.PHONY: ci vet build test race bench perf

ci: vet build race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of each microbenchmark: catches panics/regressions in the
# bench harness itself without paying for a full measurement run.
bench-smoke:
	$(GO) test ./internal/rl/ -run xxx -bench 'BenchmarkRolloutStep|BenchmarkPPOUpdate' -benchtime=1x -benchmem

bench:
	$(GO) test ./internal/rl/ -run xxx -bench 'BenchmarkRolloutStep|BenchmarkPPOUpdate' -benchmem

perf:
	$(GO) run ./cmd/pfrl-bench -exp perf -benchdir .
