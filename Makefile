# Developer targets for the PFRL-DM reproduction.
#
#   make ci         - the full pre-merge smoke check: vet, staticcheck (when
#                     reachable), build, race-enabled tests (incl. the
#                     federation fault-tolerance suite and the simulator
#                     invariant harness), one iteration of each perf
#                     microbenchmark, a 20-VM cluster-scale smoke, a
#                     /metrics endpoint smoke test, and a 16-client
#                     async-federation chaos smoke
#   make test       - plain test suite (tier-1 gate)
#   make test-race  - federation layers + simulator invariants, race-enabled
#   make fuzz-smoke - a short run of every fuzz target
#   make bench      - full benchmark runs with allocation reporting
#   make perf       - the CLI perf experiment, writing BENCH_<name>.json
#   make scale      - the full 20/500/5000-VM cluster-scale sweep

GO ?= go
STATICCHECK_VERSION ?= 2025.1

.PHONY: ci vet staticcheck build test race test-race fuzz-smoke bench bench-env bench-update bench-agg perf scale scale-smoke metrics-smoke swarm-smoke spec-smoke

ci: vet staticcheck build race test-race bench-smoke bench-env bench-update bench-agg scale-smoke metrics-smoke swarm-smoke spec-smoke

vet:
	$(GO) vet ./...

# Pinned staticcheck via `go run` so CI needs no separately-installed binary.
# The module proxy is unreachable in offline/sandboxed environments; probe
# first and skip (loudly) rather than fail the whole gate on a network error.
staticcheck:
	@if $(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) -version >/dev/null 2>&1; then \
		$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...; \
	else \
		echo "staticcheck: module proxy unreachable, skipping (run online to lint)"; \
	fi

# Start pfrl-node with -metrics-addr, scrape /metrics, and assert the core
# gauges are exposed. Guards the Prometheus endpoint end to end.
metrics-smoke:
	./scripts/metrics_smoke.sh

# A 16-client buffered-async swarm over loopback fednet with the fault
# injector on: drops, duplicates, and corruptions all active, everything
# seeded. Guards the asynchronous federation path end to end.
swarm-smoke:
	$(GO) run ./cmd/pfrl-node -mode swarm -clients 16 -rounds 2 -buffer 4 \
		-staleness-bound 2 -seed 42 -fault-spec "drop=0.08,dup=0.08,corrupt=0.05"

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The federation layers carry the concurrency-heavy fault-tolerance tests
# (round deadlines, retries, rejoin) and the shared round engine behind both
# paths; internal/rl carries the concurrent actor/critic update pipeline and
# its batched-vs-sequential golden tests; internal/cloudsim carries the
# simulator invariant harness (randomized episodes at 20 and 500 VMs). Run
# all of them race-enabled on every merge.
test-race:
	$(GO) test -race ./internal/fedcore/... ./internal/fed/... ./internal/fednet/... ./internal/rl/... ./internal/cloudsim/...

# Short deterministic-budget run of every fuzz target (go test allows one
# -fuzz pattern per invocation, hence one run per target).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzLoadCheckpoint -fuzztime 10s ./internal/nn
	$(GO) test -run '^$$' -fuzz FuzzLoadCheckpoint -fuzztime 10s ./internal/rl
	$(GO) test -run '^$$' -fuzz FuzzCSVTrace -fuzztime 10s ./internal/workload
	$(GO) test -run '^$$' -fuzz FuzzCSVStream -fuzztime 10s ./internal/workload
	$(GO) test -run '^$$' -fuzz FuzzParseSpec -fuzztime 10s ./internal/workload
	$(GO) test -run '^$$' -fuzz FuzzStreamInject -fuzztime 10s ./internal/cloudsim
	$(GO) test -run '^$$' -fuzz FuzzDecodeFrame -fuzztime 10s ./internal/fedcore

# One iteration of each microbenchmark: catches panics/regressions in the
# bench harness itself without paying for a full measurement run.
bench-smoke:
	$(GO) test ./internal/rl/ -run xxx -bench 'BenchmarkRolloutStep|BenchmarkPPOUpdate' -benchtime=1x -benchmem

# Simulator-core and rollout benchmarks under the allocation guard: fails
# if BenchmarkEnvStep or BenchmarkRolloutStep report any allocs/op. Runs a
# short fixed iteration count in ci; override with BENCHTIME=2s for a full
# measurement.
bench-env:
	GO="$(GO)" ./scripts/bench_alloc_guard.sh env

# The PPOUpdate slice of the allocation guard alone — the fast pre-merge
# check for changes touching the update pipeline.
bench-update:
	GO="$(GO)" ./scripts/bench_alloc_guard.sh update

# The federation data-plane slice of the allocation guard: one steady-state
# round (K encodes, K decodes, pooled aggregation) must allocate nothing.
bench-agg:
	GO="$(GO)" BENCHTIME="$${BENCHTIME:-50x}" ./scripts/bench_alloc_guard.sh agg

bench:
	$(GO) test ./internal/rl/ -run xxx -bench 'BenchmarkRolloutStep|BenchmarkPPOUpdate' -benchmem
	$(GO) test ./internal/cloudsim/ -run xxx -bench 'BenchmarkEnvStep|BenchmarkObserve|BenchmarkEpisode' -benchmem

perf:
	$(GO) run ./cmd/pfrl-bench -exp perf -benchdir .

# Cluster-scale sweep smoke for ci: the 20-VM configuration only, with the
# artifact routed to a scratch directory so the committed full-sweep
# BENCH_ClusterScale.json (20/500/5000 VMs) is not clobbered.
scale-smoke:
	$(GO) run ./cmd/pfrl-bench -exp scale -scale-cap 20 -benchdir "$$(mktemp -d)"

# The full 20/500/5000-VM sweep, regenerating BENCH_ClusterScale.json.
scale:
	$(GO) run ./cmd/pfrl-bench -exp scale -benchdir .

# Workload-spec engine smoke for ci: every embedded preset must reproduce
# its builtin model bit-for-bit, and a tiny spec-driven episode must run end
# to end with the per-SLO-class breakdown.
spec-smoke:
	$(GO) run ./cmd/workload-stats -validate-presets -n 500
	$(GO) run ./cmd/pfrl-bench -exp spec -workload-spec examples/hybridworkloads/twoclient.json -tasks 40
