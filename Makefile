# Developer targets for the PFRL-DM reproduction.
#
#   make ci         - the full pre-merge smoke check: vet, build, race-enabled
#                     tests (incl. the federation fault-tolerance suite), and
#                     one iteration of each perf microbenchmark
#   make test       - plain test suite (tier-1 gate)
#   make test-race  - the federation layers under the race detector
#   make fuzz-smoke - a short run of every fuzz target
#   make bench      - full benchmark runs with allocation reporting
#   make perf       - the CLI perf experiment, writing BENCH_<name>.json

GO ?= go

.PHONY: ci vet build test race test-race fuzz-smoke bench perf

ci: vet build race test-race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The federation layers carry the concurrency-heavy fault-tolerance tests
# (round deadlines, retries, rejoin); run them race-enabled on every merge.
test-race:
	$(GO) test -race ./internal/fed/... ./internal/fednet/...

# Short deterministic-budget run of every fuzz target (go test allows one
# -fuzz pattern per invocation, hence three runs).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzLoadCheckpoint -fuzztime 10s ./internal/nn
	$(GO) test -run '^$$' -fuzz FuzzLoadCheckpoint -fuzztime 10s ./internal/rl
	$(GO) test -run '^$$' -fuzz FuzzCSVTrace -fuzztime 10s ./internal/workload

# One iteration of each microbenchmark: catches panics/regressions in the
# bench harness itself without paying for a full measurement run.
bench-smoke:
	$(GO) test ./internal/rl/ -run xxx -bench 'BenchmarkRolloutStep|BenchmarkPPOUpdate' -benchtime=1x -benchmem

bench:
	$(GO) test ./internal/rl/ -run xxx -bench 'BenchmarkRolloutStep|BenchmarkPPOUpdate' -benchmem

perf:
	$(GO) run ./cmd/pfrl-bench -exp perf -benchdir .
