// Command workload-stats prints the workload characterizations behind the
// paper's Table 1 and Figures 2–5: machine specifications, CPU/memory
// request distributions, hourly arrival rates, and execution-time CDFs for
// the ten modelled datasets.
//
// Usage:
//
//	workload-stats -table1
//	workload-stats -fig 2 [-n 3500] [-seed 1]
//	workload-stats -summary
//	workload-stats -spec mix.json
//	workload-stats -calibrate trace.csv [-spec mix.json]
//	workload-stats -validate-presets
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("workload-stats: ")
	var (
		table1  = flag.Bool("table1", false, "print Table 1 (machine specifications)")
		fig     = flag.Int("fig", 0, "print the data behind Figure 2 (CPU), 3 (memory), 4 (arrival rates) or 5 (runtime CDF)")
		summary = flag.Bool("summary", false, "print a per-dataset summary characterization")
		n       = flag.Int("n", 3500, "tasks sampled per dataset (the paper samples 3500)")
		seed    = flag.Int64("seed", 1, "sampling seed")
		bins    = flag.Int("bins", 10, "histogram bins for figures 2-3")
		specFile  = flag.String("spec", "", "characterize this declarative workload spec (also the reference for -calibrate)")
		calibrate = flag.String("calibrate", "", "compare this CSV trace against -spec (or a spec fitted from the trace)")
		validate  = flag.Bool("validate-presets", false, "check every embedded preset spec matches its builtin model bit-for-bit")
	)
	flag.Parse()

	var err error
	switch {
	case *table1:
		printTable1()
	case *fig >= 2 && *fig <= 5:
		printFigure(*fig, *n, *seed, *bins)
	case *summary:
		printSummary(*n, *seed)
	case *validate:
		err = validatePresets(*n, *seed)
	case *calibrate != "":
		err = runCalibrate(*calibrate, *specFile, *seed)
	case *specFile != "":
		err = printSpecSummary(*specFile, *n, *seed)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}
}

func printTable1() {
	t := trace.NewTable("Dataset", "#CPUs", "Mem (GiB)", "#Nodes", "Platform")
	for _, row := range workload.Table1() {
		t.AddRow(row.Dataset, row.CPUs, row.MemGiB, row.Nodes, row.Platform)
	}
	fmt.Print(t.String())
}

func printFigure(fig, n int, seed int64, bins int) {
	for _, id := range workload.AllDatasets() {
		rng := rand.New(rand.NewSource(seed + int64(id)))
		tasks := workload.SampleDataset(id, rng, n)
		fmt.Printf("# %s\n", id)
		switch fig {
		case 2, 3:
			sel := func(t workload.Task) float64 { return float64(t.CPU) }
			unit := "vCPUs"
			if fig == 3 {
				sel = func(t workload.Task) float64 { return t.Mem }
				unit = "GiB"
			}
			edges, counts := workload.ResourceHistogram(tasks, bins, sel)
			t := trace.NewTable("<= "+unit, "tasks")
			for i := range edges {
				t.AddRow(edges[i], counts[i])
			}
			fmt.Print(t.String())
		case 4:
			rates := workload.HourlyArrivalRates(tasks, 6)
			t := trace.NewTable("hour", "tasks/slot")
			for i, r := range rates {
				t.AddRow(i, r)
			}
			fmt.Print(t.String())
		case 5:
			xs, cdf := workload.ExecTimeCDF(tasks)
			t := trace.NewTable("duration", "CDF")
			stride := len(xs) / 20
			if stride < 1 {
				stride = 1
			}
			for i := 0; i < len(xs); i += stride {
				t.AddRow(xs[i], cdf[i])
			}
			t.AddRow(xs[len(xs)-1], cdf[len(cdf)-1])
			fmt.Print(t.String())
		}
		fmt.Println()
	}
}

func printSummary(n int, seed int64) {
	t := trace.NewTable("Dataset", "tasks", "cpu-mean", "cpu-p95", "mem-mean", "mem-p95",
		"dur-mean", "dur-p95", "rate/slot", "peak-rate")
	for _, id := range workload.AllDatasets() {
		rng := rand.New(rand.NewSource(seed + int64(id)))
		c := workload.Characterize(id.String(), workload.SampleDataset(id, rng, n))
		t.AddRow(c.Dataset, c.Tasks, c.CPUMean, c.CPUP95, c.MemMean, c.MemP95,
			c.DurMean, c.DurP95, c.RatePerSlot, c.RatePeak)
	}
	fmt.Print(t.String())
}
