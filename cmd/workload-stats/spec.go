package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/trace"
	"repro/internal/workload"
)

// printSpecSummary characterizes each client of a declarative workload spec
// (plus the combined mix) from a seeded sample.
func printSpecSummary(path string, n int, seed int64) error {
	spec, err := workload.LoadSpec(path)
	if err != nil {
		return err
	}
	comp, err := spec.Compile()
	if err != nil {
		return err
	}
	fmt.Printf("spec %q: %d client(s)\n", comp.Name, len(comp.Clients))
	t := trace.NewTable("client", "slo", "share", "tasks", "cpu-mean", "cpu-p95",
		"mem-mean", "mem-p95", "dur-mean", "dur-p95", "rate/slot", "peak-rate")
	addRow := func(name, slo string, share float64, c workload.Characterization) {
		t.AddRow(name, slo, fmt.Sprintf("%.2f", share), c.Tasks, c.CPUMean, c.CPUP95,
			c.MemMean, c.MemP95, c.DurMean, c.DurP95, c.RatePerSlot, c.RatePeak)
	}
	for i, cl := range comp.Clients {
		cn := int(cl.Fraction*float64(n) + 0.5)
		if cn < 1 {
			cn = 1
		}
		rng := rand.New(rand.NewSource(seed + int64(i)*7919))
		c := workload.Characterize(cl.ID, cl.Model.Sample(rng, cn))
		addRow(cl.ID, cl.Model.SLO.String(), cl.Fraction, c)
	}
	if len(comp.Clients) > 1 {
		c := workload.Characterize("(combined)", comp.Sample(rand.New(rand.NewSource(seed)), n))
		addRow("(combined)", "-", 1, c)
	}
	fmt.Print(t.String())
	return nil
}

// runCalibrate replays a CSV trace and reports how faithfully a spec —
// given via -spec, or fitted from the trace itself — reproduces its
// marginals. When the spec is fitted, its JSON is printed so it can be
// saved and reused as a portable description of the trace.
func runCalibrate(tracePath, specPath string, seed int64) error {
	f, err := os.Open(tracePath)
	if err != nil {
		return err
	}
	defer f.Close()
	tasks, err := workload.ImportCSV(f)
	if err != nil {
		return fmt.Errorf("%s: %w", tracePath, err)
	}
	var spec *workload.Spec
	if specPath != "" {
		if spec, err = workload.LoadSpec(specPath); err != nil {
			return err
		}
	} else {
		name := strings.TrimSuffix(filepath.Base(tracePath), filepath.Ext(tracePath))
		if spec, err = workload.FitSpec(name, tasks); err != nil {
			return err
		}
		js, err := json.MarshalIndent(spec, "", "  ")
		if err != nil {
			return err
		}
		fmt.Printf("fitted spec:\n%s\n\n", js)
	}
	comp, err := spec.Compile()
	if err != nil {
		return err
	}
	sampled := comp.Sample(rand.New(rand.NewSource(seed)), len(tasks))
	rep := workload.Calibrate(tasks, sampled)
	fmt.Printf("calibration: %d trace tasks vs %d sampled tasks (KS = two-sample Kolmogorov-Smirnov distance)\n",
		rep.TraceTasks, rep.SampledTasks)
	headers := []string{"dim", "KS"}
	for _, q := range workload.CalibrationQuantiles {
		headers = append(headers, fmt.Sprintf("trace p%.0f", q*100), fmt.Sprintf("spec p%.0f", q*100))
	}
	t := trace.NewTable(headers...)
	for _, d := range rep.Dims {
		row := []interface{}{d.Name, fmt.Sprintf("%.3f", d.KS)}
		for i := range workload.CalibrationQuantiles {
			row = append(row, d.TraceQ[i], d.SampledQ[i])
		}
		t.AddRow(row...)
	}
	fmt.Print(t.String())
	return nil
}

// validatePresets compiles every embedded preset spec and checks it
// reproduces its builtin model's sample bit-for-bit — the shipped
// equivalence gate behind `make spec-smoke`.
func validatePresets(n int, seed int64) error {
	for _, id := range workload.AllDatasets() {
		spec, err := workload.PresetSpec(id)
		if err != nil {
			return err
		}
		comp, err := spec.Compile()
		if err != nil {
			return fmt.Errorf("preset %s: %w", id, err)
		}
		want := workload.SampleDataset(id, rand.New(rand.NewSource(seed)), n)
		got := comp.Sample(rand.New(rand.NewSource(seed)), n)
		if len(got) != len(want) {
			return fmt.Errorf("preset %s: sampled %d tasks, builtin %d", id, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				return fmt.Errorf("preset %s: task %d diverges from builtin: %+v != %+v", id, i, got[i], want[i])
			}
		}
	}
	fmt.Printf("ok: %d presets compile and match their builtin models (%d tasks each, seed %d)\n",
		len(workload.AllDatasets()), n, seed)
	return nil
}
