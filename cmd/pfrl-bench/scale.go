package main

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/cloudsim"
	"repro/internal/rl"
	"repro/internal/trace"
	"repro/internal/workload"
)

// The scale experiment sweeps the simulator across cluster sizes — 20, 500,
// and 5000 VMs — with the fixed-width top-k observation (TopK=8, 10
// utilization buckets), streaming Google-trace arrivals, and reports
// per-decision cost for the heuristic portfolio and an (untrained) PPO
// policy. A capped legacy full-scan run at the same cluster size provides
// the naive baseline the ranked engine's O(k)-per-step claim is measured
// against. Results land in BENCH_ClusterScale.json.
const (
	scaleTopK        = 8
	scaleUtilBuckets = 10
	scaleTaskCap     = 100_000 // tasks per episode, capped (20 per VM below that)
	scaleNaiveSteps  = 5_000   // decision cap for the O(N) baseline run
	scalePolicySteps = 20_000  // decision cap for the learned-policy run
)

func scaleSweep() []int { return []int{20, 500, 5000} }

// scaleCluster extends the Table-3 capacity mix (8:6:4:2 of small to large
// VMs per 20) to n machines by repeating the 20-VM block.
func scaleCluster(n int) []cloudsim.VMSpec {
	block := envStepCluster()
	specs := make([]cloudsim.VMSpec, n)
	for i := range specs {
		specs[i] = block[i%len(block)]
	}
	return specs
}

func scaleConfig(specs []cloudsim.VMSpec) cloudsim.Config {
	cfg := cloudsim.DefaultConfig(specs)
	cfg.TopK = scaleTopK
	cfg.UtilBuckets = scaleUtilBuckets
	return cfg
}

// scaleSource feeds the sweep's streaming arrivals: the Google builtin by
// default, or the -workload-spec declarative spec when one is given.
func (bc benchConfig) scaleSource(seed int64, n int, specs []cloudsim.VMSpec) (cloudsim.TaskSource, error) {
	if bc.workloadSpec != "" {
		comp, err := loadCompiledSpec(bc.workloadSpec)
		if err != nil {
			return nil, err
		}
		return cloudsim.NewSpecSource(comp, seed, n, specs), nil
	}
	return cloudsim.NewSamplerSource(workload.Lookup(workload.Google), seed, n, specs), nil
}

// scalePolicyEntry is one heuristic's full-episode row in the artifact.
type scalePolicyEntry struct {
	Policy      string  `json:"policy"`
	Steps       int     `json:"steps"`
	NsPerStep   float64 `json:"ns_per_step"`
	Completed   int     `json:"completed_tasks"`
	AvgResponse float64 `json:"avg_response"`
	AvgUtil     float64 `json:"avg_utilization"`
}

// scaleEntry is one cluster size's sweep row.
type scaleEntry struct {
	VMs   int `json:"vms"`
	Tasks int `json:"tasks"`

	Policies []scalePolicyEntry `json:"policies"`

	// Untrained PPO policy over the ranked observation, capped at
	// PolicySteps decisions (inference cost, not scheduling quality).
	PolicySteps     int     `json:"learned_policy_steps"`
	PolicyNsPerStep float64 `json:"learned_policy_ns_per_step"`

	// Legacy engine (TopK=0) with a first-fit full scan at the same cluster
	// size, capped at scaleNaiveSteps decisions.
	NaiveNsPerStep float64 `json:"naive_full_scan_ns_per_step"`
	// First-fit per-step speedup of the ranked engine over the naive scan.
	SpeedupVsNaive float64 `json:"first_fit_speedup_vs_naive"`
}

// scaleResult is the schema of the BENCH_ClusterScale.json artifact.
type scaleResult struct {
	Name        string       `json:"name"`
	TopK        int          `json:"top_k"`
	UtilBuckets int          `json:"util_buckets"`
	StateDim    int          `json:"state_dim"`
	NumActions  int          `json:"num_actions"`
	Entries     []scaleEntry `json:"entries"`
}

func scalePolicies(seed int64) []cloudsim.Policy {
	return []cloudsim.Policy{
		cloudsim.FirstFit{},
		cloudsim.BestFit{},
		cloudsim.WorstFit{},
		&cloudsim.RoundRobin{},
		cloudsim.RandomFit{Rng: rand.New(rand.NewSource(seed))},
	}
}

// timedEpisode drives env with policy until the episode ends (or limit
// decisions, 0 = unlimited), drains, and returns the step count and
// wall-clock per decision.
func timedEpisode(env *cloudsim.Env, policy cloudsim.Policy, limit int) (int, float64) {
	steps := 0
	start := time.Now()
	for !env.Done() && (limit == 0 || steps < limit) {
		env.Step(policy.SelectAction(env))
		steps++
	}
	env.Drain()
	elapsed := time.Since(start)
	if steps == 0 {
		return 0, 0
	}
	return steps, float64(elapsed.Nanoseconds()) / float64(steps)
}

func runClusterScale(bc benchConfig) error {
	specsProbe := scaleCluster(20)
	cfgProbe := scaleConfig(specsProbe)
	res := scaleResult{
		Name:        "ClusterScale",
		TopK:        scaleTopK,
		UtilBuckets: scaleUtilBuckets,
		StateDim:    cloudsim.StateDim(cfgProbe),
		NumActions:  cloudsim.NumActions(cfgProbe),
	}
	fmt.Printf("Cluster scale: streaming episodes, top-%d observation (%d features, %d actions at every size)\n",
		scaleTopK, res.StateDim, res.NumActions)

	t := trace.NewTable("vms", "tasks", "policy", "steps", "ns/step", "completed", "avg resp")
	for _, n := range scaleSweep() {
		if bc.scaleCap > 0 && n > bc.scaleCap {
			fmt.Printf("(skipping %d VMs: -scale-cap %d)\n", n, bc.scaleCap)
			continue
		}
		specs := scaleCluster(n)
		cfg := scaleConfig(specs)
		nTasks := 20 * n
		if nTasks > scaleTaskCap {
			nTasks = scaleTaskCap
		}
		entry := scaleEntry{VMs: n, Tasks: nTasks}

		// Heuristic portfolio: full streamed episodes.
		for _, p := range scalePolicies(bc.seed) {
			src, err := bc.scaleSource(bc.seed, nTasks, specs)
			if err != nil {
				return err
			}
			env, err := cloudsim.NewEnvSource(cfg, src)
			if err != nil {
				return err
			}
			steps, nsPerStep := timedEpisode(env, p, 0)
			m := env.Metrics()
			pe := scalePolicyEntry{
				Policy:      p.Name(),
				Steps:       steps,
				NsPerStep:   nsPerStep,
				Completed:   m.Completed,
				AvgResponse: m.AvgResponse,
				AvgUtil:     m.AvgUtil,
			}
			entry.Policies = append(entry.Policies, pe)
			t.AddRow(n, nTasks, pe.Policy, pe.Steps, pe.NsPerStep, pe.Completed, pe.AvgResponse)
		}

		// Learned-policy inference cost: untrained PPO on the ranked
		// observation, capped so the row measures per-decision latency.
		policySrc, err := bc.scaleSource(bc.seed, nTasks, specs)
		if err != nil {
			return err
		}
		env, err := cloudsim.NewEnvSource(cfg, policySrc)
		if err != nil {
			return err
		}
		agent := rl.NewPPO(rl.DefaultConfig(res.StateDim, res.NumActions), rand.New(rand.NewSource(bc.seed)))
		buf := make([]float64, env.StateDim())
		steps := 0
		start := time.Now()
		for !env.Done() && steps < scalePolicySteps {
			buf = env.Observe(buf)
			action, _ := agent.SelectAction(buf)
			env.Step(action)
			steps++
		}
		elapsed := time.Since(start)
		entry.PolicySteps = steps
		if steps > 0 {
			entry.PolicyNsPerStep = float64(elapsed.Nanoseconds()) / float64(steps)
		}
		t.AddRow(n, nTasks, "ppo-untrained", entry.PolicySteps, entry.PolicyNsPerStep, "-", "-")

		// Naive baseline: the legacy engine scans every VM per decision and
		// recomputes O(N) reward terms; capped, since that cost is the point.
		naiveCfg := cloudsim.DefaultConfig(specs)
		naiveTasks := nTasks
		if naiveTasks > 2*scaleNaiveSteps {
			naiveTasks = 2 * scaleNaiveSteps
		}
		naiveSrc, err := bc.scaleSource(bc.seed, naiveTasks, specs)
		if err != nil {
			return err
		}
		naiveEnv, err := cloudsim.NewEnvSource(naiveCfg, naiveSrc)
		if err != nil {
			return err
		}
		_, naiveNs := timedEpisode(naiveEnv, cloudsim.FirstFit{}, scaleNaiveSteps)
		entry.NaiveNsPerStep = naiveNs
		if ff := entry.Policies[0]; ff.NsPerStep > 0 {
			entry.SpeedupVsNaive = naiveNs / ff.NsPerStep
		}
		t.AddRow(n, naiveTasks, "naive-full-scan", "-", entry.NaiveNsPerStep,
			"-", fmt.Sprintf("%.1fx slower", entry.SpeedupVsNaive))

		res.Entries = append(res.Entries, entry)
	}
	fmt.Print(t.String())
	bc.writeJSON("BENCH_ClusterScale.json", res)
	return nil
}
