package main

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/fed"
	"repro/internal/fedcore"
	"repro/internal/fednet"
	"repro/internal/trace"
)

// The federation data-plane benchmark: pooled parallel aggregation and the
// quantized wire codec at the public-critic payload width.
const (
	fedAggDim = 34561

	// Frozen ns/op of the seed-era sequential FedAvg data plane (allocating
	// meanPayload plus K personalized copies) at fedAggDim, measured on the
	// reference CI machine (Intel Xeon 2.10 GHz) before the pooled
	// tree-reduce rewrite. Kept so BENCH_FedAggregate.json pins the speedup.
	fedAggBaselineK8   = 546045.0
	fedAggBaselineK64  = 6986055.0
	fedAggBaselineK256 = 30572198.0
)

func fedAggBaseline(k int) float64 {
	switch k {
	case 8:
		return fedAggBaselineK8
	case 64:
		return fedAggBaselineK64
	case 256:
		return fedAggBaselineK256
	}
	return 0
}

// fedAggEntry is one pure-aggregation measurement: K uploads reduced through
// the pooled FedAvg fast path — the same work the frozen baseline did, minus
// its per-round allocations and copies.
type fedAggEntry struct {
	K               int     `json:"k"`
	Workers         int     `json:"workers"`
	Iterations      int     `json:"iterations"`
	NsPerOp         float64 `json:"ns_per_op"`
	AllocsPerOp     int64   `json:"allocs_per_op"`
	BaselineNsPerOp float64 `json:"baseline_ns_per_op,omitempty"`
	Speedup         float64 `json:"speedup_vs_baseline,omitempty"`
}

// fedCodecEntry is one full data-plane measurement: K encodes, K decodes,
// and the pooled aggregation, plus the measured wire volume of the round
// (K uplink + K downlink frames) against the raw float64 volume.
type fedCodecEntry struct {
	K                 int     `json:"k"`
	Tier              string  `json:"tier"`
	Iterations        int     `json:"iterations"`
	NsPerOp           float64 `json:"ns_per_op"`
	AllocsPerOp       int64   `json:"allocs_per_op"`
	WireBytesPerRound int64   `json:"wire_bytes_per_round"`
	RawBytesPerRound  int64   `json:"raw_bytes_per_round"`
	CompressionRatio  float64 `json:"compression_ratio"`
}

// fedSwarmThroughput is the 104-client loopback swarm readout with the codec
// on: committed async rounds over the drive loop's wall clock.
type fedSwarmThroughput struct {
	Clients          int     `json:"clients"`
	Tier             string  `json:"tier"`
	Delta            bool    `json:"delta"`
	Rounds           int     `json:"rounds"`
	ElapsedSeconds   float64 `json:"elapsed_seconds"`
	RoundsPerSecond  float64 `json:"rounds_per_second"`
	WireBytes        int64   `json:"wire_bytes"`
	CompressionRatio float64 `json:"compression_ratio"`
	MeanReward       float64 `json:"mean_reward"`
}

// fedAggResult is the schema of the BENCH_FedAggregate.json artifact.
type fedAggResult struct {
	Name      string              `json:"name"`
	Dim       int                 `json:"dim"`
	Aggregate []fedAggEntry       `json:"aggregate"`
	DataPlane []fedCodecEntry     `json:"data_plane"`
	Swarm     *fedSwarmThroughput `json:"swarm,omitempty"`
}

func fedAggUploads(k int) []fed.Payload {
	rng := rand.New(rand.NewSource(7))
	uploads := make([]fed.Payload, k)
	for i := range uploads {
		uploads[i] = make(fed.Payload, fedAggDim)
		for j := range uploads[i] {
			uploads[i][j] = rng.NormFloat64()
		}
	}
	return uploads
}

func benchFedAggOnly(uploads []fed.Payload) func(*testing.B) {
	return func(b *testing.B) {
		agg := fed.FedAvg{}
		var arena fedcore.PayloadArena
		agg.AggregateInto(uploads, &arena)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			agg.AggregateInto(uploads, &arena)
		}
	}
}

func benchFedDataPlane(uploads []fed.Payload, tier fedcore.Tier) func(*testing.B) {
	return func(b *testing.B) {
		k := len(uploads)
		encs := make([]*fedcore.Encoder, k)
		bufs := make([]fed.Payload, k)
		scratch := make([]fed.Payload, k)
		for i := range encs {
			encs[i] = fedcore.NewEncoder(fedcore.CodecConfig{Tier: tier})
		}
		agg := fed.FedAvg{}
		var arena fedcore.PayloadArena
		round := func() {
			for i := range uploads {
				dec, _, err := fedcore.DecodeFrame(encs[i].Encode(uploads[i]), nil, bufs[i])
				if err != nil {
					b.Fatal(err)
				}
				bufs[i] = dec
				scratch[i] = dec
			}
			agg.AggregateInto(scratch, &arena)
		}
		round()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			round()
		}
	}
}

// runFedAggregate measures the federation data plane and writes
// BENCH_FedAggregate.json: the pooled aggregation against the frozen
// seed-era baselines, the codec composite across quantization tiers with
// measured wire bytes, and the 104-client swarm round throughput with the
// codec on.
func runFedAggregate(bc benchConfig) error {
	res := fedAggResult{Name: "FedAggregate", Dim: fedAggDim}

	fmt.Printf("\nfederated aggregation (pooled FedAvg fast path, dim %d):\n", fedAggDim)
	t := trace.NewTable("K", "workers", "iters", "ns/op", "allocs/op", "baseline ns/op", "speedup")
	for _, k := range []int{8, 64, 256} {
		uploads := fedAggUploads(k)
		for _, workers := range []int{1, 2, 4} {
			prev := fedcore.SetAggWorkers(workers)
			r := testing.Benchmark(benchFedAggOnly(uploads))
			fedcore.SetAggWorkers(prev)
			e := fedAggEntry{
				K:          k,
				Workers:    workers,
				Iterations: r.N,
				NsPerOp:    float64(r.T.Nanoseconds()) / float64(r.N),
			}
			e.AllocsPerOp = r.AllocsPerOp()
			speedup := "-"
			if base := fedAggBaseline(k); base > 0 && e.NsPerOp > 0 {
				e.BaselineNsPerOp = base
				e.Speedup = base / e.NsPerOp
				speedup = fmt.Sprintf("%.2fx", e.Speedup)
			}
			res.Aggregate = append(res.Aggregate, e)
			t.AddRow(e.K, e.Workers, e.Iterations, e.NsPerOp, e.AllocsPerOp, e.BaselineNsPerOp, speedup)
		}
	}
	fmt.Print(t.String())

	fmt.Println("\ndata plane with codec (K encodes + K decodes + aggregate; wire = uplink + downlink frames):")
	ct := trace.NewTable("K", "tier", "iters", "ns/op", "allocs/op", "wire B/round", "ratio")
	for _, k := range []int{8, 64, 256} {
		uploads := fedAggUploads(k)
		for _, tier := range []fedcore.Tier{fedcore.TierIdentity, fedcore.TierF32, fedcore.TierI16, fedcore.TierI8} {
			r := testing.Benchmark(benchFedDataPlane(uploads, tier))
			e := fedCodecEntry{
				K:                 k,
				Tier:              tier.String(),
				Iterations:        r.N,
				NsPerOp:           float64(r.T.Nanoseconds()) / float64(r.N),
				AllocsPerOp:       r.AllocsPerOp(),
				WireBytesPerRound: int64(2 * k * fedcore.FrameLen(tier, fedAggDim)),
				RawBytesPerRound:  int64(2 * k * fedAggDim * 8),
			}
			e.CompressionRatio = float64(e.RawBytesPerRound) / float64(e.WireBytesPerRound)
			res.DataPlane = append(res.DataPlane, e)
			ct.AddRow(e.K, e.Tier, e.Iterations, e.NsPerOp, e.AllocsPerOp,
				e.WireBytesPerRound, fmt.Sprintf("%.2fx", e.CompressionRatio))
		}
	}
	fmt.Print(ct.String())

	swarm, err := runFedAggSwarm()
	if err != nil {
		return err
	}
	res.Swarm = swarm
	fmt.Printf("\nswarm throughput (%d clients, async loopback fednet, %s%s codec): %d rounds in %.2fs = %.2f rounds/s, %.2fx wire compression\n",
		swarm.Clients, swarm.Tier, map[bool]string{true: "+delta", false: ""}[swarm.Delta],
		swarm.Rounds, swarm.ElapsedSeconds, swarm.RoundsPerSecond, swarm.CompressionRatio)

	bc.writeJSON("BENCH_FedAggregate.json", res)
	return nil
}

// runFedAggSwarm drives the deterministic 104-client async swarm with the
// int8 delta codec on and reports committed-round throughput.
func runFedAggSwarm() (*fedSwarmThroughput, error) {
	codec := fedcore.CodecConfig{Tier: fedcore.TierI8, Delta: true}
	sres, err := fednet.RunSwarm(fednet.SwarmConfig{
		Clients: 104,
		K:       16,
		Buffer:  16,
		Rounds:  2,
		Tasks:   8,
		Seed:    42,
		Codec:   codec,
	})
	if err != nil {
		return nil, err
	}
	out := &fedSwarmThroughput{
		Clients:          104,
		Tier:             codec.Tier.String(),
		Delta:            codec.Delta,
		Rounds:           sres.Rounds,
		ElapsedSeconds:   sres.Elapsed.Seconds(),
		WireBytes:        sres.Comm.Bytes(),
		CompressionRatio: sres.Comm.CompressionRatio(),
		MeanReward:       sres.MeanReward,
	}
	if out.ElapsedSeconds > 0 {
		out.RoundsPerSecond = float64(out.Rounds) / out.ElapsedSeconds
	}
	return out, nil
}
