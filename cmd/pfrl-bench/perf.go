package main

import (
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/rl"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// The perf experiment exercises the two hot loops of every figure in this
// repository — per-step policy inference and the PPO minibatch update — at
// the paper's model scale (≈538-feature observations, 9 placement actions,
// one 64-unit hidden layer) and reports wall time and allocation behaviour.
// It is the CLI twin of internal/rl's BenchmarkRolloutStep/BenchmarkPPOUpdate
// so the numbers quoted in DESIGN.md can be regenerated without the test
// harness.
const (
	perfStateDim = 538
	perfActions  = 9
	perfHorizon  = 64
	perfBuffer   = 256
)

// benchResult is the schema of the BENCH_<name>.json artifacts.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	StateDim    int     `json:"state_dim"`
	NumActions  int     `json:"num_actions"`
}

func perfAgent(seed int64) *rl.PPO {
	return rl.NewPPO(rl.DefaultConfig(perfStateDim, perfActions), rand.New(rand.NewSource(seed)))
}

func benchRolloutStep(b *testing.B) {
	env := rl.NewSyntheticEnv(perfStateDim, perfActions, perfHorizon, 1)
	agent := perfAgent(2)
	step := func(state []float64) []float64 {
		state = env.Observe(state)
		action, _ := agent.SelectAction(state)
		_ = agent.Value(state)
		_ = env.Step(action)
		if env.Done() {
			env.Reset()
		}
		return state
	}
	var state []float64
	for i := 0; i < 16; i++ {
		state = step(state)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		state = step(state)
	}
}

func benchPPOUpdate(b *testing.B) {
	env := rl.NewSyntheticEnv(perfStateDim, perfActions, perfHorizon, 3)
	agent := perfAgent(4)
	var buf rl.Buffer
	for buf.Len() < perfBuffer {
		env.Reset()
		rl.CollectEpisode(env, agent, &buf)
	}
	agent.Update(&buf)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agent.Update(&buf)
	}
}

func runPerf(bc benchConfig) error {
	fmt.Println("Performance: rollout fast path and pooled PPO update")
	fmt.Printf("model: %d features -> 64 -> %d actions, update over %d transitions\n",
		perfStateDim, perfActions, perfBuffer)
	benches := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"RolloutStep", benchRolloutStep},
		{"PPOUpdate", benchPPOUpdate},
	}
	t := trace.NewTable("benchmark", "iters", "ns/op", "allocs/op", "B/op")
	for _, bench := range benches {
		r := testing.Benchmark(bench.fn)
		res := benchResult{
			Name:        bench.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			StateDim:    perfStateDim,
			NumActions:  perfActions,
		}
		t.AddRow(res.Name, res.Iterations, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp)
		bc.writeBenchJSON(res)
	}
	fmt.Print(t.String())
	gets, hits := tensor.DefaultPool().Stats()
	if gets > 0 {
		fmt.Printf("tensor pool: %d gets, %d recycled (%.1f%% hit rate)\n",
			gets, hits, 100*float64(hits)/float64(gets))
	}
	return runTrainPhases(bc)
}

// phasesResult is the schema of the BENCH_TrainPhases.json artifact: the
// per-phase wall-clock breakdown of a small end-to-end federated run.
type phasesResult struct {
	Name             string  `json:"name"`
	Algorithm        string  `json:"algorithm"`
	ClientCount      int     `json:"clients"`
	Episodes         int     `json:"episodes"`
	RolloutSeconds   float64 `json:"rollout_seconds"`
	UpdateSeconds    float64 `json:"update_seconds"`
	AggregateSeconds float64 `json:"aggregate_seconds"`
	CommSeconds      float64 `json:"comm_seconds"`
	TotalSeconds     float64 `json:"total_seconds"`
}

// runTrainPhases measures where a small PFRL-DM training run spends its
// time, using the phase timers surfaced on core.TrainResult. The run is
// sequential so the process-wide timer deltas attribute exactly to it.
func runTrainPhases(bc benchConfig) error {
	cfg := core.DefaultExperiment(bc.seed)
	cfg.Specs = cfg.Specs[:4]
	cfg.TasksPerClient = 40
	cfg.Episodes = 6
	cfg.CommEvery = 2
	cfg.EpisodeStepCap = 5 * cfg.TasksPerClient
	cfg.Parallel = false
	res, err := core.Train(core.AlgPFRLDM, cfg)
	if err != nil {
		return err
	}
	p := res.Phases
	out := phasesResult{
		Name:             "TrainPhases",
		Algorithm:        res.Algorithm.String(),
		ClientCount:      len(cfg.Specs),
		Episodes:         cfg.Episodes,
		RolloutSeconds:   p.Rollout.Seconds(),
		UpdateSeconds:    p.Update.Seconds(),
		AggregateSeconds: p.Aggregate.Seconds(),
		CommSeconds:      p.Comm.Seconds(),
		TotalSeconds:     p.Total().Seconds(),
	}
	fmt.Printf("\nphase breakdown (%s, %d clients x %d episodes, sequential):\n",
		out.Algorithm, out.ClientCount, out.Episodes)
	t := trace.NewTable("phase", "seconds", "share")
	for _, row := range []struct {
		name string
		sec  float64
	}{
		{"rollout", out.RolloutSeconds},
		{"update", out.UpdateSeconds},
		{"aggregate", out.AggregateSeconds},
		{"comm", out.CommSeconds},
	} {
		share := 0.0
		if out.TotalSeconds > 0 {
			share = 100 * row.sec / out.TotalSeconds
		}
		t.AddRow(row.name, row.sec, fmt.Sprintf("%.1f%%", share))
	}
	fmt.Print(t.String())
	bc.writeJSON("BENCH_TrainPhases.json", out)
	return nil
}

// writeBenchJSON dumps one benchmark result as BENCH_<name>.json when
// -benchdir is set; errors are fatal like writeCSV's.
func (bc benchConfig) writeBenchJSON(res benchResult) {
	bc.writeJSON("BENCH_"+res.Name+".json", res)
}

// writeJSON marshals v into -benchdir under the given filename.
func (bc benchConfig) writeJSON(filename string, v any) {
	if bc.benchDir == "" {
		return
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(bc.benchDir, filename)
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("(wrote %s)\n", path)
}
