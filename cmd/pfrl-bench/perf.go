package main

import (
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cloudsim"
	"repro/internal/core"
	"repro/internal/rl"
	"repro/internal/tensor"
	"repro/internal/trace"
	"repro/internal/workload"
)

// The perf experiment exercises the two hot loops of every figure in this
// repository — per-step policy inference and the PPO minibatch update — at
// the paper's model scale (≈538-feature observations, 9 placement actions,
// one 64-unit hidden layer) and reports wall time and allocation behaviour.
// It is the CLI twin of internal/rl's BenchmarkRolloutStep/BenchmarkPPOUpdate
// so the numbers quoted in DESIGN.md can be regenerated without the test
// harness.
const (
	perfStateDim = 538
	perfActions  = 9
	perfHorizon  = 64
	perfBuffer   = 256

	// ppoUpdateBaselineNs is the measured ns/op of BenchmarkPPOUpdate before
	// the batched update pipeline (per-call tape staging, closure-based
	// backward, unfused loss kernels), on the reference CI machine (Intel
	// Xeon 2.10 GHz). Frozen so BENCH_PPOUpdate.json pins the speedup.
	ppoUpdateBaselineNs = 119680675.0
)

// benchResult is the schema of the BENCH_<name>.json artifacts. Baseline and
// speedup are only set for benchmarks with a frozen pre-optimization number.
type benchResult struct {
	Name            string  `json:"name"`
	Iterations      int     `json:"iterations"`
	NsPerOp         float64 `json:"ns_per_op"`
	AllocsPerOp     int64   `json:"allocs_per_op"`
	BytesPerOp      int64   `json:"bytes_per_op"`
	StateDim        int     `json:"state_dim"`
	NumActions      int     `json:"num_actions"`
	BaselineNsPerOp float64 `json:"baseline_ns_per_op,omitempty"`
	Speedup         float64 `json:"speedup_vs_baseline,omitempty"`
}

func perfAgent(seed int64) *rl.PPO {
	return rl.NewPPO(rl.DefaultConfig(perfStateDim, perfActions), rand.New(rand.NewSource(seed)))
}

func benchRolloutStep(b *testing.B) {
	env := rl.NewSyntheticEnv(perfStateDim, perfActions, perfHorizon, 1)
	agent := perfAgent(2)
	step := func(state []float64) []float64 {
		state = env.Observe(state)
		action, _ := agent.SelectAction(state)
		_ = agent.Value(state)
		_ = env.Step(action)
		if env.Done() {
			env.Reset()
		}
		return state
	}
	var state []float64
	for i := 0; i < 16; i++ {
		state = step(state)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		state = step(state)
	}
}

func benchPPOUpdate(b *testing.B) {
	env := rl.NewSyntheticEnv(perfStateDim, perfActions, perfHorizon, 3)
	agent := perfAgent(4)
	var buf rl.Buffer
	for buf.Len() < perfBuffer {
		env.Reset()
		rl.CollectEpisode(env, agent, &buf)
	}
	agent.Update(&buf)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agent.Update(&buf)
	}
}

func runPerf(bc benchConfig) error {
	fmt.Println("Performance: rollout fast path and pooled PPO update")
	fmt.Printf("model: %d features -> 64 -> %d actions, update over %d transitions\n",
		perfStateDim, perfActions, perfBuffer)
	benches := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"RolloutStep", benchRolloutStep},
		{"PPOUpdate", benchPPOUpdate},
	}
	t := trace.NewTable("benchmark", "iters", "ns/op", "allocs/op", "B/op", "speedup")
	for _, bench := range benches {
		r := testing.Benchmark(bench.fn)
		res := benchResult{
			Name:        bench.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			StateDim:    perfStateDim,
			NumActions:  perfActions,
		}
		speedup := "-"
		if bench.name == "PPOUpdate" && res.NsPerOp > 0 {
			res.BaselineNsPerOp = ppoUpdateBaselineNs
			res.Speedup = ppoUpdateBaselineNs / res.NsPerOp
			speedup = fmt.Sprintf("%.2fx", res.Speedup)
		}
		t.AddRow(res.Name, res.Iterations, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp, speedup)
		bc.writeBenchJSON(res)
	}
	fmt.Print(t.String())
	gets, hits := tensor.DefaultPool().Stats()
	if gets > 0 {
		fmt.Printf("tensor pool: %d gets, %d recycled (%.1f%% hit rate)\n",
			gets, hits, 100*float64(hits)/float64(gets))
	}
	if err := runBatchedRollout(bc); err != nil {
		return err
	}
	if err := runEnvStep(bc); err != nil {
		return err
	}
	if err := runTrainPhases(bc); err != nil {
		return err
	}
	if err := runFedAggregate(bc); err != nil {
		return err
	}
	fmt.Println()
	return runClusterScale(bc)
}

// batchedRolloutEntry is one row of the BENCH_BatchedRollout.json artifact:
// full-episode collection across Envs lockstep environments. NsPerEnvStep is
// the per-transition cost — the number comparable across batch widths and
// against the single-env RolloutStep benchmark.
type batchedRolloutEntry struct {
	Envs         int     `json:"envs"`
	Iterations   int     `json:"iterations"`
	NsPerOp      float64 `json:"ns_per_op"`
	NsPerEnvStep float64 `json:"ns_per_env_step"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
}

// batchedRolloutResult is the schema of the BENCH_BatchedRollout.json
// artifact.
type batchedRolloutResult struct {
	Name       string                `json:"name"`
	StateDim   int                   `json:"state_dim"`
	NumActions int                   `json:"num_actions"`
	Horizon    int                   `json:"horizon"`
	Entries    []batchedRolloutEntry `json:"entries"`
}

// benchBatchedRollout runs the vectorized collector over n synthetic
// environments, one full horizon-length episode per slot per iteration — the
// CLI twin of internal/rl's BenchmarkBatchedRollout.
func benchBatchedRollout(n int) func(*testing.B) {
	return func(b *testing.B) {
		agent := perfAgent(9)
		envs := make([]rl.Environment, n)
		syn := make([]*rl.SyntheticEnv, n)
		rngs := make([]*rand.Rand, n)
		for i := 0; i < n; i++ {
			syn[i] = rl.NewSyntheticEnv(perfStateDim, perfActions, perfHorizon, int64(100+i))
			envs[i] = syn[i]
			rngs[i] = rand.New(rand.NewSource(int64(200 + i)))
		}
		col := rl.NewVecCollector(agent, envs, rngs)
		bufs := make([]*rl.Buffer, n)
		for i := range bufs {
			bufs[i] = &rl.Buffer{}
		}
		var totals []float64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := range syn {
				syn[j].Reset()
				bufs[j].Reset()
			}
			totals = col.Collect(bufs, totals)
		}
		_ = totals
	}
}

// runBatchedRollout measures the vectorized multi-env collector at batch
// widths 1, 4, and 16 and writes BENCH_BatchedRollout.json.
func runBatchedRollout(bc benchConfig) error {
	res := batchedRolloutResult{
		Name:       "BatchedRollout",
		StateDim:   perfStateDim,
		NumActions: perfActions,
		Horizon:    perfHorizon,
	}
	fmt.Printf("\nbatched rollout (vectorized collector, horizon %d per env):\n", perfHorizon)
	t := trace.NewTable("envs", "iters", "ns/op", "ns/env-step", "allocs/op")
	for _, n := range []int{1, 4, 16} {
		r := testing.Benchmark(benchBatchedRollout(n))
		e := batchedRolloutEntry{
			Envs:         n,
			Iterations:   r.N,
			NsPerOp:      float64(r.T.Nanoseconds()) / float64(r.N),
			NsPerEnvStep: float64(r.T.Nanoseconds()) / float64(r.N*n*perfHorizon),
			AllocsPerOp:  r.AllocsPerOp(),
		}
		res.Entries = append(res.Entries, e)
		t.AddRow(e.Envs, e.Iterations, e.NsPerOp, e.NsPerEnvStep, e.AllocsPerOp)
	}
	fmt.Print(t.String())
	bc.writeJSON("BENCH_BatchedRollout.json", res)
	return nil
}

// Simulator-core benchmark dimensions: the default 20-VM heterogeneous
// cluster (Table-3 capacity mix) scheduling a seeded Google-trace episode.
const (
	envStepVMs   = 20
	envStepTasks = 400
	// envStepBaselineNs is the measured ns/op of the same benchmark loop on
	// the pre-incremental engine (per-VM task maps scanned every slot, map
	// lookups per observed vCPU), on the reference CI machine (Intel Xeon
	// 2.10 GHz). Kept so BENCH_EnvStep.json pins the speedup trajectory.
	envStepBaselineNs = 2951.0
)

// envStepResult is the schema of the BENCH_EnvStep.json artifact.
type envStepResult struct {
	Name            string  `json:"name"`
	Iterations      int     `json:"iterations"`
	NsPerOp         float64 `json:"ns_per_op"`
	AllocsPerOp     int64   `json:"allocs_per_op"`
	BytesPerOp      int64   `json:"bytes_per_op"`
	VMs             int     `json:"vms"`
	Tasks           int     `json:"tasks"`
	BaselineNsPerOp float64 `json:"baseline_ns_per_op"`
	Speedup         float64 `json:"speedup_vs_baseline"`
}

// envStepCluster mirrors internal/cloudsim's benchmark cluster: 20 VMs in
// the Table-3 capacity mix.
func envStepCluster() []cloudsim.VMSpec {
	var specs []cloudsim.VMSpec
	add := func(n, cpu int, mem float64) {
		for i := 0; i < n; i++ {
			specs = append(specs, cloudsim.VMSpec{CPU: cpu, Mem: mem})
		}
	}
	add(8, 8, 64)
	add(6, 16, 128)
	add(4, 32, 256)
	add(2, 64, 512)
	return specs
}

func benchEnvStep(b *testing.B) {
	specs := envStepCluster()
	rng := rand.New(rand.NewSource(1))
	tasks := cloudsim.ClampTasks(workload.SampleDataset(workload.Google, rng, envStepTasks), specs)
	env, err := cloudsim.NewEnv(cloudsim.DefaultConfig(specs), tasks)
	if err != nil {
		b.Fatal(err)
	}
	firstFit := func() int {
		head, ok := env.HeadTask()
		if !ok {
			return env.WaitAction()
		}
		for i, vm := range env.VMs() {
			if vm.Fits(head) {
				return i
			}
		}
		return env.WaitAction()
	}
	buf := make([]float64, env.StateDim())
	for !env.Done() { // warm episode: grow every internal buffer
		buf = env.Observe(buf)
		env.Step(firstFit())
	}
	env.Reset(tasks)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = env.Observe(buf)
		env.Step(firstFit())
		if env.Done() {
			env.Reset(tasks)
		}
	}
}

// runEnvStep measures the simulator's per-decision hot path (Observe +
// first-fit choice + Step on the default 20-VM cluster) and records it next
// to the frozen pre-incremental-engine baseline.
func runEnvStep(bc benchConfig) error {
	r := testing.Benchmark(benchEnvStep)
	res := envStepResult{
		Name:            "EnvStep",
		Iterations:      r.N,
		NsPerOp:         float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp:     r.AllocsPerOp(),
		BytesPerOp:      r.AllocedBytesPerOp(),
		VMs:             envStepVMs,
		Tasks:           envStepTasks,
		BaselineNsPerOp: envStepBaselineNs,
	}
	if res.NsPerOp > 0 {
		res.Speedup = envStepBaselineNs / res.NsPerOp
	}
	fmt.Printf("\nsimulator core (%d VMs, %d-task seeded episode):\n", res.VMs, res.Tasks)
	t := trace.NewTable("benchmark", "iters", "ns/op", "allocs/op", "baseline ns/op", "speedup")
	t.AddRow(res.Name, res.Iterations, res.NsPerOp, res.AllocsPerOp,
		res.BaselineNsPerOp, fmt.Sprintf("%.2fx", res.Speedup))
	fmt.Print(t.String())
	bc.writeJSON("BENCH_EnvStep.json", res)
	return nil
}

// phasesResult is the schema of the BENCH_TrainPhases.json artifact: the
// per-phase wall-clock breakdown of a small end-to-end federated run.
type phasesResult struct {
	Name             string  `json:"name"`
	Algorithm        string  `json:"algorithm"`
	ClientCount      int     `json:"clients"`
	Episodes         int     `json:"episodes"`
	RolloutSeconds   float64 `json:"rollout_seconds"`
	UpdateSeconds    float64 `json:"update_seconds"`
	AggregateSeconds float64 `json:"aggregate_seconds"`
	CommSeconds      float64 `json:"comm_seconds"`
	TotalSeconds     float64 `json:"total_seconds"`
}

// runTrainPhases measures where a small PFRL-DM training run spends its
// time, using the phase timers surfaced on core.TrainResult. The run is
// sequential so the process-wide timer deltas attribute exactly to it.
func runTrainPhases(bc benchConfig) error {
	cfg := core.DefaultExperiment(bc.seed)
	cfg.Specs = cfg.Specs[:4]
	cfg.TasksPerClient = 40
	cfg.Episodes = 6
	cfg.CommEvery = 2
	cfg.EpisodeStepCap = 5 * cfg.TasksPerClient
	cfg.Parallel = false
	res, err := core.Train(core.AlgPFRLDM, cfg)
	if err != nil {
		return err
	}
	p := res.Phases
	out := phasesResult{
		Name:             "TrainPhases",
		Algorithm:        res.Algorithm.String(),
		ClientCount:      len(cfg.Specs),
		Episodes:         cfg.Episodes,
		RolloutSeconds:   p.Rollout.Seconds(),
		UpdateSeconds:    p.Update.Seconds(),
		AggregateSeconds: p.Aggregate.Seconds(),
		CommSeconds:      p.Comm.Seconds(),
		TotalSeconds:     p.Total().Seconds(),
	}
	fmt.Printf("\nphase breakdown (%s, %d clients x %d episodes, sequential):\n",
		out.Algorithm, out.ClientCount, out.Episodes)
	t := trace.NewTable("phase", "seconds", "share")
	for _, row := range []struct {
		name string
		sec  float64
	}{
		{"rollout", out.RolloutSeconds},
		{"update", out.UpdateSeconds},
		{"aggregate", out.AggregateSeconds},
		{"comm", out.CommSeconds},
	} {
		share := 0.0
		if out.TotalSeconds > 0 {
			share = 100 * row.sec / out.TotalSeconds
		}
		t.AddRow(row.name, row.sec, fmt.Sprintf("%.1f%%", share))
	}
	fmt.Print(t.String())
	bc.writeJSON("BENCH_TrainPhases.json", out)
	return nil
}

// writeBenchJSON dumps one benchmark result as BENCH_<name>.json when
// -benchdir is set; errors are fatal like writeCSV's.
func (bc benchConfig) writeBenchJSON(res benchResult) {
	bc.writeJSON("BENCH_"+res.Name+".json", res)
}

// writeJSON marshals v into -benchdir under the given filename.
func (bc benchConfig) writeJSON(filename string, v any) {
	if bc.benchDir == "" {
		return
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(bc.benchDir, filename)
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("(wrote %s)\n", path)
}
