// Command pfrl-bench regenerates the paper's experiments by id. Each
// experiment prints the same rows/series the corresponding figure or table
// reports (at a configurable, laptop-friendly scale; see EXPERIMENTS.md for
// scale notes and paper-vs-measured comparisons).
//
// Usage:
//
//	pfrl-bench -exp fig15                 # convergence of all four algorithms
//	pfrl-bench -exp table4 -seed 3        # Wilcoxon p-values
//	pfrl-bench -exp all                   # the full suite
//
// Experiments: fig7 fig8 fig9 fig10 fig11 fig15 fig16 table4 fig20 fig21
// ablation (fig11 also prints figs 12–13; fig16 also prints figs 17–19).
// The extra "perf" experiment benchmarks the rollout/update hot loops and,
// with -benchdir, writes machine-readable BENCH_<name>.json artifacts; the
// "scale" experiment (also chained after perf) sweeps the simulator over
// 20/500/5000-VM clusters with streaming tasks and the fixed-width top-k
// observation, writing BENCH_ClusterScale.json.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/trace"
)

type benchConfig struct {
	seed         int64
	scale        int
	tasks        int
	episodes     int
	comm         int
	smooth       int
	scaleCap     int
	csvDir       string
	benchDir     string
	workloadSpec string
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("pfrl-bench: ")
	var (
		exp      = flag.String("exp", "", "experiment id (fig7 fig8 fig9 fig10 fig11 fig15 fig16 table4 fig20 fig21 ablation perf scale spec all)")
		seed     = flag.Int64("seed", 1, "experiment seed")
		scale    = flag.Int("scale", 4, "VM capacity divisor (1 = paper scale)")
		tasks    = flag.Int("tasks", 100, "tasks per client (paper: 3500)")
		episodes = flag.Int("episodes", 40, "episodes per client (paper: 300-500)")
		comm     = flag.Int("comm", 5, "communication frequency (paper: 15-25)")
		smooth   = flag.Int("smooth", 5, "moving-average window for printed curves")
		csvDir   = flag.String("csv", "", "also write raw curve series as CSV files into this directory")
		benchDir = flag.String("benchdir", "", "write perf results as BENCH_<name>.json files into this directory")
		scaleCap = flag.Int("scale-cap", 0, "skip cluster-scale sweep sizes above this VM count (0 = full sweep; CI smoke uses 20)")
		events   = flag.String("events", "", "append JSONL training/federation events to this file (empty = disabled)")
		workloadSpec = flag.String("workload-spec", "",
			"declarative workload spec JSON for -exp spec; also redirects the -exp scale sweep's arrivals")
	)
	flag.Parse()
	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *events != "" {
		f, err := os.OpenFile(*events, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatal(err)
		}
		sink := obs.NewJSONL(f)
		obs.SetSink(sink)
		defer func() {
			if err := sink.Err(); err != nil {
				log.Printf("events: %v", err)
			}
		}()
	}
	bc := benchConfig{seed: *seed, scale: *scale, tasks: *tasks, episodes: *episodes, comm: *comm, smooth: *smooth, scaleCap: *scaleCap, csvDir: *csvDir, benchDir: *benchDir, workloadSpec: *workloadSpec}
	for _, dir := range []string{bc.csvDir, bc.benchDir} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				log.Fatal(err)
			}
		}
	}

	ids := []string{*exp}
	if *exp == "all" {
		// fig16 prints Figures 16-19 and Table 4 in one pass.
		ids = []string{"fig7", "fig8", "fig9", "fig10", "fig11", "fig15", "fig16", "fig20", "fig21", "ablation"}
	}
	for _, id := range ids {
		fmt.Printf("==== %s ====\n", id)
		if err := run(id, bc); err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		fmt.Println()
	}
}

func (bc benchConfig) experiment(specs []core.ClientSpec) core.ExperimentConfig {
	cfg := core.DefaultExperiment(bc.seed)
	cfg.Specs = core.ScaleSpecs(specs, bc.scale)
	cfg.TasksPerClient = bc.tasks
	cfg.Episodes = bc.episodes
	cfg.CommEvery = bc.comm
	cfg.EpisodeStepCap = 5 * bc.tasks
	return cfg
}

func run(id string, bc benchConfig) error {
	switch strings.ToLower(id) {
	case "fig7":
		return runFig7(bc)
	case "fig8":
		return runFig8(bc)
	case "fig9":
		return runFig9(bc)
	case "fig10":
		return runFig10(bc)
	case "fig11", "fig12", "fig13":
		return runFig11to13(bc)
	case "fig15":
		return runFig15(bc)
	case "fig16", "fig17", "fig18", "fig19", "table4":
		return runHybridAndTable4(bc)
	case "fig20":
		return runFig20(bc)
	case "fig21":
		return runFig21(bc)
	case "ablation":
		return runAblation(bc)
	case "perf":
		return runPerf(bc)
	case "scale":
		return runClusterScale(bc)
	case "spec":
		return runSpecEpisode(bc)
	default:
		return fmt.Errorf("unknown experiment %q", id)
	}
}

func printCurves(smooth int, names []string, curves map[string][]float64) {
	headers := append([]string{"episode"}, names...)
	t := trace.NewTable(toIfaceStrings(headers)...)
	n := 0
	smoothed := map[string][]float64{}
	for _, name := range names {
		smoothed[name] = stats.MovingAverage(curves[name], smooth)
		if len(curves[name]) > n {
			n = len(curves[name])
		}
	}
	stride := n / 20
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < n; i += stride {
		row := []interface{}{i + 1}
		for _, name := range names {
			if i < len(smoothed[name]) {
				row = append(row, smoothed[name][i])
			} else {
				row = append(row, "")
			}
		}
		t.AddRow(row...)
	}
	fmt.Print(t.String())
}

func toIfaceStrings(ss []string) []string { return ss }

// writeCSV dumps raw (unsmoothed) curve series for plotting when -csv is
// set; errors are fatal (a broken artifact is worse than no artifact).
func (bc benchConfig) writeCSV(name string, curves map[string][]float64) {
	if bc.csvDir == "" {
		return
	}
	var series []trace.Series
	keys := make([]string, 0, len(curves))
	for k := range curves {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		series = append(series, trace.NewSeries(k, curves[k]))
	}
	path := filepath.Join(bc.csvDir, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := trace.WriteCSV(f, series...); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("(wrote %s)\n", path)
}

func runFig7(bc benchConfig) error {
	fmt.Println("Figure 7: average response time — iso vs heter training (§3.1)")
	cfg := bc.experiment(core.Table2Specs())
	res, err := core.RunIsoHeter(cfg)
	if err != nil {
		return err
	}
	t := trace.NewTable("client", "iso->iso", "iso->heter", "heter->iso", "heter->heter")
	for i, name := range res.Clients {
		t.AddRow(name, res.IsoTrainIsoTest[i], res.IsoTrainHeterTest[i],
			res.HeterTrainIsoTest[i], res.HeterTrainHeterTest[i])
	}
	fmt.Print(t.String())
	fmt.Printf("means: iso-trained %.2f / heter-trained %.2f (paper: heter-trained is lower)\n",
		(stats.Mean(res.IsoTrainIsoTest)+stats.Mean(res.IsoTrainHeterTest))/2,
		(stats.Mean(res.HeterTrainIsoTest)+stats.Mean(res.HeterTrainHeterTest))/2)
	return nil
}

func runFig8(bc benchConfig) error {
	fmt.Println("Figure 8: FedAvg vs independent PPO convergence (§3.2)")
	cfg := bc.experiment(core.Table2Specs())
	curves, _, err := core.RunConvergence(cfg, []core.Algorithm{core.AlgFedAvg, core.AlgPPO})
	if err != nil {
		return err
	}
	printCurves(bc.smooth, []string{"PPO", "FedAvg"}, curves)
	bc.writeCSV("fig8", curves)
	fmt.Printf("final (smoothed tail mean): PPO %.1f, FedAvg %.1f (paper: FedAvg converges slower)\n",
		tailMean(curves["PPO"]), tailMean(curves["FedAvg"]))
	return nil
}

func runFig9(bc benchConfig) error {
	fmt.Println("Figure 9: critic loss before/after FedAvg aggregation (§3.2)")
	cfg := bc.experiment(core.Table2Specs())
	_, results, err := core.RunConvergence(cfg, []core.Algorithm{core.AlgFedAvg})
	if err != nil {
		return err
	}
	pre, post := core.CriticLossSeries(results[core.AlgFedAvg])
	t := trace.NewTable("round", "local critic loss", "aggregated critic loss")
	for i := range pre {
		t.AddRow(i+1, pre[i], post[i])
	}
	fmt.Print(t.String())
	fmt.Printf("means: pre %.4g, post %.4g (paper: aggregated incurs the higher loss)\n",
		stats.Mean(pre), stats.Mean(post))
	return nil
}

func runFig10(bc benchConfig) error {
	fmt.Println("Figure 10: focusing on similar clients accelerates convergence (§3.3)")
	cfg := bc.experiment(core.Table2Specs())
	res, err := core.RunWeightConfigs(cfg)
	if err != nil {
		return err
	}
	names := []string{"Fed-Diff", "Fed-Diff-weight", "Fed-Same2", "Fed-Same2-weight"}
	printCurves(bc.smooth, names, res)
	bc.writeCSV("fig10", res)
	// The paper's claim is about convergence SPEED, so compare the mean
	// reward over the climb phase (first 2/3 of training), not the tail.
	climb := func(c []float64) float64 {
		n := 2 * len(c) / 3
		if n < 1 {
			n = len(c)
		}
		return stats.Mean(c[:n])
	}
	fmt.Printf("climb-phase mean: Same2-weight %.1f vs Same2 %.1f; Diff-weight %.1f vs Diff %.1f\n",
		climb(res["Fed-Same2-weight"]), climb(res["Fed-Same2"]),
		climb(res["Fed-Diff-weight"]), climb(res["Fed-Diff"]))
	return nil
}

func runFig11to13(bc benchConfig) error {
	fmt.Println("Figures 11-13: weight heatmaps — attention vs KL vs cosine (§3.3)")
	cfg := bc.experiment(core.Table2Specs())
	res, err := core.RunWeightHeatmaps(cfg)
	if err != nil {
		return err
	}
	fmt.Println("Figure 11 — multi-head attention weights:")
	if err := trace.Heatmap(os.Stdout, res.Labels, res.Attention); err != nil {
		return err
	}
	fmt.Println("\nFigure 12 — KL-divergence weights:")
	if err := trace.Heatmap(os.Stdout, res.Labels, res.KL); err != nil {
		return err
	}
	fmt.Println("\nFigure 13 — cosine-similarity weights:")
	if err := trace.Heatmap(os.Stdout, res.Labels, res.Cosine); err != nil {
		return err
	}
	return nil
}

func runFig15(bc benchConfig) error {
	fmt.Println("Figure 15: convergence of PFRL-DM / MFPO / FedAvg / PPO (§5.2)")
	cfg := bc.experiment(core.Table3Specs())
	curves, _, err := core.RunConvergence(cfg, core.AllAlgorithms())
	if err != nil {
		return err
	}
	names := []string{"PFRL-DM", "MFPO", "FedAvg", "PPO"}
	printCurves(bc.smooth, names, curves)
	bc.writeCSV("fig15", curves)
	t := trace.NewTable("algorithm", "final reward (tail mean)")
	for _, n := range names {
		t.AddRow(n, tailMean(curves[n]))
	}
	fmt.Print(t.String())
	return nil
}

func runHybridAndTable4(bc benchConfig) error {
	fmt.Println("Figures 16-19 + Table 4: hybrid-workload generalization (§5.3)")
	cfg := bc.experiment(core.Table3Specs())
	_, results, err := core.RunConvergence(cfg, core.AllAlgorithms())
	if err != nil {
		return err
	}
	evals := map[core.Algorithm]*core.HybridEval{}
	for alg, r := range results {
		evals[alg] = core.EvalHybrid(r, cfg, 0.2)
	}
	metrics := []struct {
		fig  string
		name string
		get  func(*core.HybridEval) []float64
	}{
		{"Figure 16", "avg response time", func(e *core.HybridEval) []float64 { return e.AvgResponse }},
		{"Figure 17", "avg makespan", func(e *core.HybridEval) []float64 { return e.Makespan }},
		{"Figure 18", "avg resource utilization", func(e *core.HybridEval) []float64 { return e.AvgUtil }},
		{"Figure 19", "avg load balancing", func(e *core.HybridEval) []float64 { return e.AvgLoadBal }},
	}
	for _, m := range metrics {
		fmt.Printf("\n%s — %s (across-client mean | p50 | p95):\n", m.fig, m.name)
		t := trace.NewTable("algorithm", "mean", "p50", "p95")
		for _, alg := range core.AllAlgorithms() {
			v := m.get(evals[alg])
			t.AddRow(alg.String(), stats.Mean(v), stats.Percentile(v, 0.5), stats.Percentile(v, 0.95))
		}
		fmt.Print(t.String())
	}
	tbl, err := core.BuildWilcoxonTable(evals)
	if err != nil {
		return err
	}
	fmt.Println("\nTable 4 — pair-wise Wilcoxon signed-rank p-values (PFRL-DM vs ...):")
	t := trace.NewTable(append([]string{"Metric"}, tbl.Algorithms...)...)
	for mi, metric := range tbl.Metrics {
		row := []interface{}{metric}
		for ai := range tbl.Algorithms {
			row = append(row, fmt.Sprintf("%.3g", tbl.P[mi][ai]))
		}
		t.AddRow(row...)
	}
	fmt.Print(t.String())
	return nil
}

func runFig20(bc benchConfig) error {
	fmt.Println("Figure 20: a new agent joins the federation (§5.3)")
	cfg := bc.experiment(core.Table3Specs())
	res, err := core.RunNewAgent(cfg, bc.episodes, bc.episodes)
	if err != nil {
		return err
	}
	joinCurves := map[string][]float64{
		"PFRL-DM join": res.Joined,
		"fresh PPO":    res.Fresh,
	}
	printCurves(bc.smooth, []string{"PFRL-DM join", "fresh PPO"}, joinCurves)
	bc.writeCSV("fig20", joinCurves)
	fmt.Printf("final: joined %.1f vs fresh %.1f (paper: the joined agent converges faster)\n",
		tailMean(res.Joined), tailMean(res.Fresh))
	return nil
}

func runFig21(bc benchConfig) error {
	fmt.Println("Figure 21: communication-frequency sweep (§5.4)")
	cfg := bc.experiment(core.Table3Specs())
	freqs := []int{2, 5, 10, 20}
	out, err := core.RunCommFrequency(cfg, freqs)
	if err != nil {
		return err
	}
	curves := map[string][]float64{}
	var names []string
	for _, f := range freqs {
		name := fmt.Sprintf("comm=%d", f)
		names = append(names, name)
		curves[name] = out[f]
	}
	printCurves(bc.smooth, names, curves)
	bc.writeCSV("fig21", curves)
	return nil
}

func runAblation(bc benchConfig) error {
	fmt.Println("Ablations: dual-critic, attention aggregation, adaptive alpha")
	cfg := bc.experiment(core.Table3Specs())
	variants := []core.AblationVariant{
		core.AblationFull, core.AblationNoDualCritic,
		core.AblationNoAttention, core.AblationFixedAlpha,
	}
	t := trace.NewTable("variant", "final reward (tail mean)")
	for _, v := range variants {
		curve, err := core.RunAblation(cfg, v, 0)
		if err != nil {
			return err
		}
		t.AddRow(string(v), tailMean(curve))
	}
	fmt.Print(t.String())
	return nil
}

// tailMean averages the last quarter of a curve (a stable "final
// performance" readout for noisy RL curves).
func tailMean(curve []float64) float64 {
	if len(curve) == 0 {
		return 0
	}
	n := len(curve) / 4
	if n < 1 {
		n = 1
	}
	return stats.Mean(curve[len(curve)-n:])
}
