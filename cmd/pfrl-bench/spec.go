package main

import (
	"fmt"

	"repro/internal/cloudsim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Default per-class wait targets (slots) for the spec episode's violation
// accounting: best-effort untracked, standard 8, critical 4.
var specWaitTargets = [workload.NumSLOClasses]int{0, 8, 4}

// loadCompiledSpec reads and compiles a declarative workload spec file.
func loadCompiledSpec(path string) (*workload.Compiled, error) {
	spec, err := workload.LoadSpec(path)
	if err != nil {
		return nil, err
	}
	return spec.Compile()
}

// runSpecEpisode streams one first-fit episode from the -workload-spec file
// over the 20-VM reference cluster and prints the per-SLO-class wait
// breakdown — the quickest end-to-end look at what a spec generates and how
// its service classes fare under a baseline scheduler.
func runSpecEpisode(bc benchConfig) error {
	if bc.workloadSpec == "" {
		return fmt.Errorf("-exp spec requires -workload-spec <file.json>")
	}
	comp, err := loadCompiledSpec(bc.workloadSpec)
	if err != nil {
		return err
	}
	n := 5 * bc.tasks
	specs := scaleCluster(20)
	cfg := cloudsim.DefaultConfig(specs)
	cfg.Objectives.SLOWaitTarget = specWaitTargets
	env, err := cloudsim.NewEnvSource(cfg, cloudsim.NewSpecSource(comp, bc.seed, n, specs))
	if err != nil {
		return err
	}
	fmt.Printf("Spec episode: %q, %d tasks on %d VMs, first-fit (wait targets: standard %d, critical %d slots)\n",
		comp.Name, n, len(specs), specWaitTargets[workload.SLOStandard], specWaitTargets[workload.SLOCritical])
	steps, _ := timedEpisode(env, cloudsim.FirstFit{}, 0)
	m := env.Metrics()
	fmt.Printf("completed %d/%d tasks in %d decisions; avg response %.2f, makespan %d, avg util %.3f\n",
		m.Completed, m.Total, steps, m.AvgResponse, m.Makespan, m.AvgUtil)
	t := trace.NewTable("slo class", "completed", "avg wait", "wait p50", "wait p95", "violations")
	for _, s := range m.PerSLO {
		t.AddRow(s.Class.String(), s.Completed, s.AvgWait, s.WaitP50, s.WaitP95, s.Violations)
	}
	fmt.Print(t.String())
	return nil
}
