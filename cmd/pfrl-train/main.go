// Command pfrl-train runs one federated (or independent) training
// configuration and reports the convergence curve and the final per-client
// evaluation metrics.
//
// Example:
//
//	pfrl-train -alg pfrl-dm -clients table3 -scale 4 -tasks 120 -episodes 40 -comm 5
//	pfrl-train -alg fedavg -clients table2 -csv curves.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pfrl-train: ")
	var (
		algName  = flag.String("alg", "pfrl-dm", "algorithm: ppo | fedavg | mfpo | pfrl-dm")
		clients  = flag.String("clients", "table3", "client setup: table2 | table3")
		scale    = flag.Int("scale", 4, "divide VM capacities by this factor (1 = paper scale)")
		tasks    = flag.Int("tasks", 120, "tasks sampled per client (paper: 3500)")
		episodes = flag.Int("episodes", 40, "training episodes per client (paper: 500)")
		comm     = flag.Int("comm", 5, "communication frequency in episodes (paper: 25)")
		k        = flag.Int("k", 0, "clients aggregated per round (0 = N/2 for PFRL-DM, N otherwise)")
		seed     = flag.Int64("seed", 1, "experiment seed")
		stepCap  = flag.Int("stepcap", 0, "episode step cap (0 = 5x tasks)")
		csvPath  = flag.String("csv", "", "write the mean reward curve to this CSV file")
		hybrid   = flag.Bool("hybrid", false, "also evaluate on the §5.3 hybrid test sets")
	)
	flag.Parse()

	alg, err := parseAlg(*algName)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultExperiment(*seed)
	switch strings.ToLower(*clients) {
	case "table2":
		cfg.Specs = core.ScaleSpecs(core.Table2Specs(), *scale)
	case "table3":
		cfg.Specs = core.ScaleSpecs(core.Table3Specs(), *scale)
	default:
		log.Fatalf("unknown client setup %q", *clients)
	}
	cfg.TasksPerClient = *tasks
	cfg.Episodes = *episodes
	cfg.CommEvery = *comm
	cfg.K = *k
	cfg.EpisodeStepCap = *stepCap
	if cfg.EpisodeStepCap == 0 {
		cfg.EpisodeStepCap = 5 * *tasks
	}

	fmt.Printf("algorithm=%s clients=%s(x1/%d) tasks=%d episodes=%d comm=%d seed=%d\n\n",
		alg, *clients, *scale, *tasks, *episodes, *comm, *seed)

	res, err := core.Train(alg, cfg)
	if err != nil {
		log.Fatal(err)
	}

	t := trace.NewTable("episode", "mean reward")
	stride := len(res.MeanCurve) / 20
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < len(res.MeanCurve); i += stride {
		t.AddRow(i+1, res.MeanCurve[i])
	}
	fmt.Print(t.String())

	if res.Federation != nil {
		fmt.Printf("\nrounds=%d payload/client/round=%d scalars\n",
			res.Federation.Rounds, res.Federation.Transport.PayloadSize(res.Clients[0]))
	}

	fmt.Println("\nPer-client greedy evaluation on held-out test tasks:")
	et := trace.NewTable("client", "dataset", "resp", "makespan", "util", "loadbal", "done")
	for i, c := range res.Clients {
		m := c.Evaluate(res.Data[i].Test)
		et.AddRow(c.Name, res.Data[i].Spec.Dataset.String(), m.AvgResponse, m.Makespan,
			m.AvgUtil, m.AvgLoadBal, fmt.Sprintf("%d/%d", m.Completed, m.Total))
	}
	fmt.Print(et.String())

	if *hybrid {
		fmt.Println("\nHybrid-workload evaluation (20% native / 80% foreign):")
		he := core.EvalHybrid(res, cfg, 0.2)
		ht := trace.NewTable("client", "resp", "makespan", "util", "loadbal")
		for i := range he.Clients {
			ht.AddRow(he.Clients[i], he.AvgResponse[i], he.Makespan[i], he.AvgUtil[i], he.AvgLoadBal[i])
		}
		fmt.Print(ht.String())
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		series := []trace.Series{trace.NewSeries(alg.String()+"-mean", res.MeanCurve)}
		for _, c := range res.Clients {
			series = append(series, trace.NewSeries(c.Name, c.Rewards))
		}
		if err := trace.WriteCSV(f, series...); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s\n", *csvPath)
	}
}

func parseAlg(s string) (core.Algorithm, error) {
	switch strings.ToLower(s) {
	case "ppo":
		return core.AlgPPO, nil
	case "fedavg":
		return core.AlgFedAvg, nil
	case "mfpo":
		return core.AlgMFPO, nil
	case "pfrl-dm", "pfrldm":
		return core.AlgPFRLDM, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q (want ppo|fedavg|mfpo|pfrl-dm)", s)
	}
}
