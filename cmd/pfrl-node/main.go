// Command pfrl-node runs one node of a networked PFRL-DM federation: either
// the aggregation server or a training client. Clients exchange only public
// critic parameters with the server; workload data never leaves a node.
//
// Demo on one machine (three terminals):
//
//	pfrl-node -mode server -clients 2 -addr 127.0.0.1:7000
//	pfrl-node -mode client -addr 127.0.0.1:7000 -dataset google -seed 1
//	pfrl-node -mode client -addr 127.0.0.1:7000 -dataset hpc-hf  -seed 2
//
// Or self-contained: -mode demo spawns a server plus N in-process clients
// connected over localhost TCP.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/cloudsim"
	"repro/internal/core"
	"repro/internal/fed"
	"repro/internal/fedcore"
	"repro/internal/fednet"
	"repro/internal/rl"
	"repro/internal/workload"
)

// Scalable-environment knobs, shared by every mode's env construction (see
// federationEnv). They must match across the federation: the policy
// network's input width and action count derive from them.
var (
	topkFlag = flag.Int("topk", 0,
		"scalable observation: top-k candidate VM slots (0 = per-VM observation)")
	utilBucketsFlag = flag.Int("util-buckets", 0,
		"scalable observation: aggregate utilization histogram buckets (requires -topk)")
	oversubFlag = flag.Float64("oversub", 0,
		"vCPU/memory oversubscription ratio (0 or 1 = off)")
	workloadSpecFlag = flag.String("workload-spec", "",
		"client/demo/swarm: draw tasks from this declarative workload spec JSON instead of the -dataset builtin")
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pfrl-node: ")
	var (
		mode    = flag.String("mode", "demo", "server | client | demo | swarm")
		addr    = flag.String("addr", "127.0.0.1:0", "server address (server: bind; client: dial)")
		clients = flag.Int("clients", 4, "server/demo: expected number of clients")
		k       = flag.Int("k", 0, "participants per round (0 = N/2)")
		rounds  = flag.Int("rounds", 6, "aggregation rounds")
		comm    = flag.Int("comm", 5, "episodes per round")
		tasks   = flag.Int("tasks", 80, "tasks per client")
		dataset = flag.String("dataset", "google", "client: workload dataset name")
		seed    = flag.Int64("seed", 1, "node seed")
		// Fault-tolerance knobs.
		roundTimeout = flag.Duration("round-timeout", 0,
			"server/demo: aggregate with whoever arrived after this much waiting (0 = strict full barrier)")
		retries = flag.Int("retries", 3,
			"client/demo: retry attempts per sync step (exponential backoff, seeded jitter)")
		rpcTimeout = flag.Duration("rpc-timeout", 0,
			"client/demo: per-RPC deadline; set above -round-timeout plus a training segment (0 = none)")
		faultSpec = flag.String("fault-spec", "",
			"client/demo: injected transport faults, e.g. drop=0.1,delay=0.05:20ms,dup=0.02,corrupt=0.01,seed=7")
		rejoin = flag.Int("rejoin", -1,
			"client: reclaim this client id after a restart instead of registering anew")
		// Asynchronous-federation knobs.
		async = flag.Bool("async", false,
			"server/demo/swarm: buffered asynchronous aggregation instead of the round barrier")
		stalenessBound = flag.Int("staleness-bound", -1,
			"async: drop deltas staler than this many rounds (-1 = unbounded, 0 = fresh only)")
		buffer = flag.Int("buffer", 0,
			"async: commit an aggregation round every B accepted arrivals (0 = K)")
		// Data-plane knobs. The server owns the codec config: clients adopt
		// it from the join reply, so only server/demo/swarm modes read these.
		codecTier = flag.String("codec", "identity",
			"server/demo/swarm: payload quantization tier (identity | f32 | i16 | i8)")
		codecDelta = flag.Bool("codec-delta", false,
			"server/demo/swarm: delta-encode uplink payloads against the last delivered global")
		aggWorkers = flag.Int("agg-workers", 0,
			"aggregation worker goroutines for large payloads (0 = GOMAXPROCS; any count is bit-identical)")
		// Observability knobs.
		metricsAddr = flag.String("metrics-addr", "",
			"serve Prometheus /metrics and /debug/pprof/ on this address (empty = disabled)")
		events = flag.String("events", "",
			"append JSONL training/federation events to this file (empty = disabled)")
	)
	flag.Parse()

	tier, err := fedcore.ParseTier(*codecTier)
	if err != nil {
		log.Fatal(err)
	}
	codec := fedcore.CodecConfig{Tier: tier, Delta: *codecDelta}
	if *aggWorkers > 0 {
		fedcore.SetAggWorkers(*aggWorkers)
	}

	if bound, err := startMetrics(*metricsAddr); err != nil {
		log.Fatal(err)
	} else if bound != "" {
		fmt.Printf("metrics on http://%s/metrics (profiles on /debug/pprof/)\n", bound)
	}
	if sink, err := openEvents(*events); err != nil {
		log.Fatal(err)
	} else if sink != nil {
		defer func() {
			if err := sink.Err(); err != nil {
				log.Printf("events: %v", err)
			}
		}()
	}

	faults, err := fed.ParseFaultSpec(*faultSpec)
	if err != nil {
		log.Fatal(err)
	}
	opts := fednet.Options{
		CallTimeout: *rpcTimeout,
		Retries:     *retries,
		Seed:        *seed,
	}
	if *rejoin >= 0 {
		opts.Rejoin, opts.RejoinID = true, *rejoin
	}

	acfg := asyncConfig{on: *async, stalenessBound: *stalenessBound, buffer: *buffer}

	switch *mode {
	case "server":
		err = runServer(*addr, *clients, *k, *seed, *roundTimeout, acfg, codec)
	case "client":
		err = runClient(*addr, *dataset, *tasks, *rounds, *comm, *seed, opts, faults)
	case "demo":
		err = runDemo(*clients, *k, *rounds, *comm, *tasks, *seed, *roundTimeout, opts, faults, acfg, codec)
	case "swarm":
		err = runSwarm(*clients, *k, *rounds, *comm, *tasks, *seed, *stalenessBound, *buffer, *retries, faults, codec)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}
}

// federationEnv builds the shared environment shape every node must agree
// on (the federation-wide caps of §4.1). A real deployment would negotiate
// this; here both sides derive it from the scaled Table-3 specs.
func federationEnv(spec core.ClientSpec) cloudsim.Config {
	caps := core.CapsFor(core.ScaleSpecs(core.Table3Specs(), 4))
	cfg := caps.EnvConfig(spec)
	cfg.TopK = *topkFlag
	cfg.UtilBuckets = *utilBucketsFlag
	cfg.Oversub = *oversubFlag
	return cfg
}

func specFor(dataset string, seed int64) (core.ClientSpec, error) {
	name := strings.ToLower(dataset)
	for _, s := range core.ScaleSpecs(core.Table3Specs(), 4) {
		if strings.ToLower(s.Dataset.String()) == name {
			s.Name = fmt.Sprintf("%s-node%d", s.Dataset, seed)
			return s, nil
		}
	}
	return core.ClientSpec{}, fmt.Errorf("unknown dataset %q (try: google, alibaba-2017, hpc-hf, kvm-2019, k8s, ...)", dataset)
}

func buildLocal(spec core.ClientSpec, tasks int, seed int64) (*fed.Client, error) {
	envCfg := federationEnv(spec)
	envCfg.MaxSteps = 5 * tasks
	rng := rand.New(rand.NewSource(seed))
	ts, err := localTasks(spec, tasks, rng)
	if err != nil {
		return nil, err
	}
	agent := rl.NewDualCriticPPO(
		rl.DefaultConfig(cloudsim.StateDim(envCfg), cloudsim.NumActions(envCfg)),
		rand.New(rand.NewSource(seed*7919+13)))
	return fed.NewClient(int(seed), spec.Name, envCfg, ts, agent)
}

// localTasks draws a node's task set: from the -workload-spec file when
// given, otherwise from the client's builtin dataset model.
func localTasks(spec core.ClientSpec, tasks int, rng *rand.Rand) ([]workload.Task, error) {
	if *workloadSpecFlag == "" {
		return cloudsim.ClampTasks(workload.SampleDataset(spec.Dataset, rng, tasks), spec.VMs), nil
	}
	ws, err := workload.LoadSpec(*workloadSpecFlag)
	if err != nil {
		return nil, err
	}
	comp, err := ws.Compile()
	if err != nil {
		return nil, err
	}
	return cloudsim.ClampTasks(comp.Sample(rng, tasks), spec.VMs), nil
}

// asyncConfig carries the asynchronous-federation flags into each mode.
type asyncConfig struct {
	on             bool
	stalenessBound int
	buffer         int
}

func runServer(addr string, clients, k int, seed int64, roundTimeout time.Duration, acfg asyncConfig, codec fedcore.CodecConfig) error {
	// The server needs ψ_G^(0) with the federation's network shape.
	spec, err := specFor("google", seed)
	if err != nil {
		return err
	}
	ref, err := buildLocal(spec, 10, seed)
	if err != nil {
		return err
	}
	transport := fed.PublicCriticTransport{}
	initial, err := transport.Upload(ref)
	if err != nil {
		return err
	}
	if k <= 0 {
		k = fedcore.DefaultK(clients)
	}
	srv, err := fednet.NewServer(fednet.ServerConfig{
		Clients: clients, K: k, Seed: seed,
		InitialGlobal:  initial,
		Aggregator:     fed.NewAttention(seed),
		RoundTimeout:   roundTimeout,
		Async:          acfg.on,
		StalenessBound: acfg.stalenessBound,
		Buffer:         acfg.buffer,
		Codec:          codec,
	})
	if err != nil {
		return err
	}
	bound, err := srv.Listen(addr)
	if err != nil {
		return err
	}
	if acfg.on {
		fmt.Printf("async aggregation server on %s (N=%d, K=%d, staleness-bound=%d, buffer=%d); Ctrl-C to stop\n",
			bound, clients, k, acfg.stalenessBound, acfg.buffer)
	} else {
		fmt.Printf("aggregation server on %s (N=%d, K=%d, round-timeout=%v); Ctrl-C to stop\n",
			bound, clients, k, roundTimeout)
	}
	select {} // serve forever
}

func runClient(addr, dataset string, tasks, rounds, comm int, seed int64, opts fednet.Options, faults fed.FaultSpec) error {
	spec, err := specFor(dataset, seed)
	if err != nil {
		return err
	}
	local, err := buildLocal(spec, tasks, seed)
	if err != nil {
		return err
	}
	rc, err := fednet.DialOptions(addr, local, clientTransport(faults), opts)
	if err != nil {
		return err
	}
	defer rc.Close()
	verb := "joined"
	if opts.Rejoin {
		verb = "rejoined"
	}
	regime := "barrier"
	if rc.Async() {
		regime = "async"
	}
	fmt.Printf("client %d (%s) %s %s [%s] at round %d; training %d rounds x %d episodes\n",
		rc.ID(), spec.Dataset, verb, addr, regime, rc.Round(), rounds, comm)
	if err := rc.RunRounds(rounds, comm); err != nil {
		return err
	}
	printStats(rc)
	printCurve(local)
	return nil
}

// clientTransport wraps the public-critic transport in a fault injector
// when a fault spec is active.
func clientTransport(faults fed.FaultSpec) fed.Transport {
	var tr fed.Transport = fed.PublicCriticTransport{}
	if faults.Active() {
		tr = fed.NewFaultyTransport(tr, faults)
	}
	return tr
}

func printStats(rc *fednet.RemoteClient) {
	st := rc.Stats()
	if st.Retries+st.Timeouts+st.Resyncs == 0 {
		return
	}
	fmt.Printf("  client %d absorbed: %d retries, %d rpc timeouts, %d round resyncs\n",
		rc.ID(), st.Retries, st.Timeouts, st.Resyncs)
}

func runDemo(clients, k, rounds, comm, tasks int, seed int64, roundTimeout time.Duration, opts fednet.Options, faults fed.FaultSpec, acfg asyncConfig, codec fedcore.CodecConfig) error {
	specs := core.ScaleSpecs(core.Table3Specs(), 4)
	if clients > len(specs) {
		clients = len(specs)
	}
	ref, err := buildLocal(specs[0], 10, seed+999)
	if err != nil {
		return err
	}
	transport := fed.PublicCriticTransport{}
	initial, err := transport.Upload(ref)
	if err != nil {
		return err
	}
	if k <= 0 {
		k = fedcore.DefaultK(clients)
	}
	srv, err := fednet.NewServer(fednet.ServerConfig{
		Clients: clients, K: k, Seed: seed,
		InitialGlobal:  initial,
		Aggregator:     fed.NewAttention(seed),
		RoundTimeout:   roundTimeout,
		Async:          acfg.on,
		StalenessBound: acfg.stalenessBound,
		Buffer:         acfg.buffer,
		Codec:          codec,
	})
	if err != nil {
		return err
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer srv.Close()
	if acfg.on {
		fmt.Printf("async demo federation on %s: %d clients, K=%d, %d rounds x %d episodes, staleness-bound=%d, buffer=%d\n\n",
			addr, clients, k, rounds, comm, acfg.stalenessBound, acfg.buffer)
	} else {
		fmt.Printf("demo federation on %s: %d clients, K=%d, %d rounds x %d episodes, round-timeout=%v\n\n",
			addr, clients, k, rounds, comm, roundTimeout)
	}

	var wg sync.WaitGroup
	locals := make([]*fed.Client, clients)
	remotes := make([]*fednet.RemoteClient, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		local, err := buildLocal(specs[i], tasks, seed+int64(i))
		if err != nil {
			return err
		}
		locals[i] = local
		cliOpts := opts
		cliOpts.Seed = seed + int64(i)
		// Each client gets its own injector stream so fault schedules are
		// independent and reproducible per client.
		cliFaults := faults
		cliFaults.Seed = faults.Seed + int64(i)
		rc, err := fednet.DialOptions(addr, local, clientTransport(cliFaults), cliOpts)
		if err != nil {
			return err
		}
		remotes[i] = rc
		defer rc.Close()
		wg.Add(1)
		go func(i int, rc *fednet.RemoteClient) {
			defer wg.Done()
			errs[i] = rc.RunRounds(rounds, comm)
		}(i, rc)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("client %d: %w", i, err)
		}
	}
	if acfg.on {
		// Commit whatever is left in the buffer and let every client pull
		// the final round before reporting.
		if rep, ok := srv.Flush(); ok {
			fmt.Printf("shutdown flush committed round %d with %d arrivals\n", rep.Round, rep.Arrived)
		}
		for _, rc := range remotes {
			if _, err := rc.Fetch(); err != nil {
				return fmt.Errorf("client %d final fetch: %w", rc.ID(), err)
			}
		}
	}
	fmt.Printf("server completed %d rounds; global model %d params\n", srv.Rounds(), len(srv.Global()))
	for _, info := range srv.Reports() {
		if info.TimedOut || info.Arrived < info.Expected {
			fmt.Printf("  round %d closed with %d/%d arrivals (%d aggregated, timed-out=%v)\n",
				info.Round, info.Arrived, info.Expected, info.Participants, info.TimedOut)
		}
	}
	fmt.Println()
	for i, local := range locals {
		printStats(remotes[i])
		printCurve(local)
	}
	return nil
}

// runSwarm drives the deterministic many-client async chaos harness: N
// in-process heterogeneous clients over loopback fednet, fault injector on,
// everything seeded. Same seed, same output.
func runSwarm(clients, k, rounds, comm, tasks int, seed int64, stalenessBound, buffer, retries int, faults fed.FaultSpec, codec fedcore.CodecConfig) error {
	res, err := fednet.RunSwarm(fednet.SwarmConfig{
		Clients:        clients,
		K:              k,
		Buffer:         buffer,
		StalenessBound: stalenessBound,
		Rounds:         rounds,
		CommEvery:      comm,
		Tasks:          tasks,
		Seed:           seed,
		Faults:         faults,
		Retries:        retries,
		Codec:          codec,
	})
	if err != nil {
		return err
	}
	fmt.Printf("swarm: %d clients committed %d async rounds (flushed=%v)\n",
		clients, res.Rounds, res.Flushed)
	fmt.Printf("  drops: %d stale, %d duplicate; client retries: %d\n",
		res.StaleDrops, res.DupDrops, res.Retries)
	if res.Faults.Total() > 0 {
		fmt.Printf("  injected faults: %d drops, %d delays, %d duplicates, %d corruptions\n",
			res.Faults.Drops, res.Faults.Delays, res.Faults.Duplicates, res.Faults.Corruptions)
	}
	fmt.Printf("  wire: %d bytes moved, %.2fx compression\n",
		res.Comm.Bytes(), res.Comm.CompressionRatio())
	fmt.Printf("  final mean reward: %.2f over %d params\n", res.MeanReward, len(res.Global))
	return nil
}

func printCurve(c *fed.Client) {
	if len(c.Rewards) == 0 {
		return
	}
	first, last := c.Rewards[0], c.Rewards[len(c.Rewards)-1]
	fmt.Printf("  %-22s episodes=%-3d reward %8.1f -> %8.1f\n", c.Name, len(c.Rewards), first, last)
}
