package main

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"

	"repro/internal/obs"
)

// startMetrics binds addr and serves the Prometheus text exposition at
// /metrics plus the stdlib profiling endpoints under /debug/pprof/. An empty
// addr disables the endpoint. Returns the bound address (useful with :0).
func startMetrics(addr string) (string, error) {
	if addr == "" {
		return "", nil
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.DefaultRegistry())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("metrics listener on %s: %w", addr, err)
	}
	obs.DefaultRegistry().Gauge("pfrl_up", "1 while the node process is serving").Set(1)
	go func() { _ = http.Serve(ln, mux) }()
	return ln.Addr().String(), nil
}

// openEvents installs a JSONL event sink appending to path, activating the
// structured event stream across the whole stack. An empty path keeps the
// default no-op sink (zero overhead).
func openEvents(path string) (*obs.JSONLSink, error) {
	if path == "" {
		return nil, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("events file: %w", err)
	}
	s := obs.NewJSONL(f)
	obs.SetSink(s)
	return s, nil
}
