#!/usr/bin/env bash
# Smoke-test the observability endpoint: start a pfrl-node aggregation server
# with -metrics-addr, poll /metrics until it answers, and assert the core
# gauges/counters are present in the Prometheus text exposition. Used by
# `make ci` (metrics-smoke target).
set -euo pipefail

cd "$(dirname "$0")/.."

ADDR="${METRICS_ADDR:-127.0.0.1:19157}"
BIN="$(mktemp -d)/pfrl-node"
trap 'kill "$NODE_PID" 2>/dev/null || true; rm -rf "$(dirname "$BIN")"' EXIT

go build -o "$BIN" ./cmd/pfrl-node

# A server waiting on client registrations idles forever, which is exactly
# what we want: a live process serving /metrics with no training noise.
"$BIN" -mode server -clients 2 -addr 127.0.0.1:0 -metrics-addr "$ADDR" &
NODE_PID=$!

BODY=""
for _ in $(seq 1 50); do
    if BODY="$(curl -fsS "http://$ADDR/metrics" 2>/dev/null)"; then
        break
    fi
    if ! kill -0 "$NODE_PID" 2>/dev/null; then
        echo "metrics-smoke: pfrl-node exited before serving /metrics" >&2
        exit 1
    fi
    sleep 0.2
done
if [ -z "$BODY" ]; then
    echo "metrics-smoke: /metrics never became reachable on $ADDR" >&2
    exit 1
fi

FAIL=0
for metric in pfrl_up pfrl_fednet_round pfrl_fednet_clients_registered pfrl_episodes_total; do
    if ! grep -q "^$metric" <<<"$BODY"; then
        echo "metrics-smoke: missing metric $metric" >&2
        FAIL=1
    fi
done
if ! grep -q '^pfrl_up 1$' <<<"$BODY"; then
    echo "metrics-smoke: pfrl_up gauge is not 1" >&2
    FAIL=1
fi

# The pprof mux must answer too (the index page is enough).
if ! curl -fsS "http://$ADDR/debug/pprof/" >/dev/null; then
    echo "metrics-smoke: /debug/pprof/ unreachable" >&2
    FAIL=1
fi

if [ "$FAIL" -ne 0 ]; then
    exit 1
fi
echo "metrics-smoke: ok ($(grep -c '^pfrl_' <<<"$BODY") pfrl_* samples exposed)"
