#!/bin/sh
# Runs the allocation-guarded benchmarks and fails when any regresses past its
# budget:
#   - BenchmarkEnvStep / BenchmarkRolloutStep must report 0 allocs/op (the
#     simulator core and the inference fast path are allocation-free), and
#   - BenchmarkPPOUpdate must stay within PPO_ALLOC_BUDGET allocs/op (the
#     batched update pipeline keeps steady-state staging in agent-owned
#     scratch; the few remaining allocs are per-Update bookkeeping), and
#   - BenchmarkFedAggregate must report 0 allocs/op (the federation data
#     plane — codec encode/decode plus pooled aggregation — reuses encoder
#     scratch and the payload arena every round).
#
# Usage: bench_alloc_guard.sh [all|env|update|agg]
#   all    (default) run every guarded benchmark
#   env    only the zero-alloc env/rollout guards (`make bench-env`)
#   update only the PPOUpdate budget guard (`make bench-update`)
#   agg    only the federation data-plane guard (`make bench-agg`)
#
# BENCHTIME defaults to a short fixed iteration count so `make ci` stays
# fast; run with BENCHTIME=2s for a full measurement.
set -eu

MODE="${1:-all}"
BENCHTIME="${BENCHTIME:-200x}"
PPO_BENCHTIME="${PPO_BENCHTIME:-5x}"
PPO_ALLOC_BUDGET="${PPO_ALLOC_BUDGET:-16}"
GO="${GO:-go}"
out="$(mktemp)"
trap 'rm -f "$out"' EXIT

: > "$out"
if [ "$MODE" = "all" ] || [ "$MODE" = "env" ]; then
	"$GO" test ./internal/cloudsim/ -run '^$' \
		-bench 'BenchmarkEnvStep|BenchmarkObserve|BenchmarkEpisode' \
		-benchtime "$BENCHTIME" -benchmem | tee -a "$out"
	"$GO" test ./internal/rl/ -run '^$' \
		-bench 'BenchmarkRolloutStep' \
		-benchtime "$BENCHTIME" -benchmem | tee -a "$out"
fi
if [ "$MODE" = "all" ] || [ "$MODE" = "update" ]; then
	"$GO" test ./internal/rl/ -run '^$' \
		-bench 'BenchmarkPPOUpdate' \
		-benchtime "$PPO_BENCHTIME" -benchmem | tee -a "$out"
fi
if [ "$MODE" = "all" ] || [ "$MODE" = "agg" ]; then
	"$GO" test ./internal/fed/ -run '^$' \
		-bench 'BenchmarkFedAggregate' \
		-benchtime "$BENCHTIME" -benchmem | tee -a "$out"
fi

awk -v ppo_budget="$PPO_ALLOC_BUDGET" '
/^Benchmark(EnvStep|RolloutStep|FedAggregate)/ {
	for (i = 2; i <= NF; i++) {
		if ($i == "allocs/op" && $(i-1) != "0") {
			printf "FAIL: %s reports %s allocs/op (want 0)\n", $1, $(i-1)
			bad = 1
		}
	}
}
/^BenchmarkPPOUpdate/ {
	for (i = 2; i <= NF; i++) {
		if ($i == "allocs/op" && $(i-1) + 0 > ppo_budget) {
			printf "FAIL: %s reports %s allocs/op (budget %d)\n", $1, $(i-1), ppo_budget
			bad = 1
		}
	}
}
END { exit bad }
' "$out"
case "$MODE" in
all) echo "bench-alloc-guard: EnvStep/RolloutStep/FedAggregate allocation-free, PPOUpdate within $PPO_ALLOC_BUDGET allocs/op" ;;
env) echo "bench-alloc-guard: EnvStep/RolloutStep are allocation-free" ;;
update) echo "bench-alloc-guard: PPOUpdate within $PPO_ALLOC_BUDGET allocs/op" ;;
agg) echo "bench-alloc-guard: FedAggregate data plane is allocation-free" ;;
esac
