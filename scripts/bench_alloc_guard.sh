#!/bin/sh
# Runs the zero-allocation benchmarks — the simulator core (BenchmarkEnvStep)
# and the inference fast path (BenchmarkRolloutStep) — with -benchmem and
# fails if either reports a nonzero allocs/op. BENCHTIME defaults to a short
# fixed iteration count so `make ci` stays fast; run with BENCHTIME=2s for a
# full measurement.
set -eu

BENCHTIME="${BENCHTIME:-200x}"
GO="${GO:-go}"
out="$(mktemp)"
trap 'rm -f "$out"' EXIT

"$GO" test ./internal/cloudsim/ -run '^$' \
	-bench 'BenchmarkEnvStep|BenchmarkObserve|BenchmarkEpisode' \
	-benchtime "$BENCHTIME" -benchmem | tee "$out"
"$GO" test ./internal/rl/ -run '^$' \
	-bench 'BenchmarkRolloutStep' \
	-benchtime "$BENCHTIME" -benchmem | tee -a "$out"

awk '
/^Benchmark(EnvStep|RolloutStep)/ {
	for (i = 2; i <= NF; i++) {
		if ($i == "allocs/op" && $(i-1) != "0") {
			printf "FAIL: %s reports %s allocs/op (want 0)\n", $1, $(i-1)
			bad = 1
		}
	}
}
END { exit bad }
' "$out"
echo "bench-alloc-guard: BenchmarkEnvStep and BenchmarkRolloutStep are allocation-free"
