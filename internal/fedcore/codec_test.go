package fedcore

import (
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"testing"
)

func testVector(seed int64, n int, scale float64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = (rng.Float64()*2 - 1) * scale
	}
	return v
}

func TestFrameLen(t *testing.T) {
	cases := []struct {
		tier Tier
		dim  int
		want int
	}{
		{TierIdentity, 1, 20 + 8},
		{TierIdentity, 1000, 20 + 8000},
		{TierF32, 1000, 20 + 4000},
		{TierI16, 256, 20 + 4 + 512},
		{TierI16, 257, 20 + 8 + 514},
		{TierI8, 256, 20 + 4 + 256},
		{TierI8, 1000, 20 + 16 + 1000},
	}
	for _, c := range cases {
		if got := FrameLen(c.tier, c.dim); got != c.want {
			t.Errorf("FrameLen(%v, %d) = %d, want %d", c.tier, c.dim, got, c.want)
		}
	}
	// The acceptance floor: int8 frames are at least 4x smaller than raw
	// float64 at realistic payload sizes.
	const dim = 34561
	if ratio := float64(dim*8) / float64(FrameLen(TierI8, dim)); ratio < 4 {
		t.Fatalf("i8 wire ratio %.2f, want >= 4", ratio)
	}
}

func TestIdentityRoundTripBitExact(t *testing.T) {
	p := testVector(1, 700, 3)
	// The identity tier must preserve every bit pattern, including the
	// pathological ones.
	p[0], p[1], p[2], p[3] = math.NaN(), math.Inf(1), math.Copysign(0, -1), 5e-324
	for _, delta := range []bool{false, true} {
		enc := NewEncoder(CodecConfig{Tier: TierIdentity, Delta: delta})
		var ref []float64
		if delta {
			ref = testVector(2, len(p), 1)
			enc.SetRef(7, ref)
		}
		frame := enc.Encode(p)
		got, h, err := DecodeFrame(frame, ref, nil)
		if err != nil {
			t.Fatal(err)
		}
		if h.Tier != TierIdentity || h.Delta != delta || h.Dim != len(p) {
			t.Fatalf("header %+v", h)
		}
		for i := range p {
			// Delta framing subtracts/adds the reference, so only the
			// absolute path is held to bit-exactness (the pin config).
			if !delta && math.Float64bits(got[i]) != math.Float64bits(p[i]) {
				t.Fatalf("identity decode not bit-exact at %d: %v vs %v", i, got[i], p[i])
			}
			if delta && i >= 4 && math.Abs(got[i]-p[i]) > 1e-12 {
				t.Fatalf("identity+delta decode off at %d: %v vs %v", i, got[i], p[i])
			}
		}
	}
}

func TestF32RoundTrip(t *testing.T) {
	p := testVector(3, 513, 10)
	frame := NewEncoder(CodecConfig{Tier: TierF32}).Encode(p)
	if len(frame) != FrameLen(TierF32, len(p)) {
		t.Fatalf("frame %d bytes", len(frame))
	}
	got, _, err := DecodeFrame(frame, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p {
		if want := float64(float32(p[i])); got[i] != want {
			t.Fatalf("f32 decode at %d: %v, want %v", i, got[i], want)
		}
	}
}

func TestQuantRoundTripErrorBound(t *testing.T) {
	for _, tc := range []struct {
		tier Tier
		qmax float64
	}{{TierI16, 32767}, {TierI8, 127}} {
		p := testVector(4, 1000, 2)
		frame := NewEncoder(CodecConfig{Tier: tc.tier}).Encode(p)
		got, _, err := DecodeFrame(frame, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		for lo := 0; lo < len(p); lo += quantBlock {
			hi := min(lo+quantBlock, len(p))
			maxAbs := 0.0
			for _, x := range p[lo:hi] {
				maxAbs = math.Max(maxAbs, math.Abs(x))
			}
			// Half a quantization step per element, padded for the float32
			// scale round-off.
			bound := 0.51*maxAbs/tc.qmax + 1e-12
			for i := lo; i < hi; i++ {
				if err := math.Abs(got[i] - p[i]); err > bound {
					t.Fatalf("%v decode error %v at %d exceeds %v", tc.tier, err, i, bound)
				}
			}
		}
	}
}

// TestDeltaShrinksQuantError: with a reference close to the payload, delta
// framing shrinks the per-block dynamic range and therefore the i8 error —
// the whole point of delta + quantization composition.
func TestDeltaShrinksQuantError(t *testing.T) {
	ref := testVector(5, 800, 5)
	p := make([]float64, len(ref))
	for i := range p {
		p[i] = ref[i] + 0.001*math.Sin(float64(i))
	}
	sumErr := func(frame []byte, r []float64) float64 {
		got, _, err := DecodeFrame(frame, r, nil)
		if err != nil {
			t.Fatal(err)
		}
		s := 0.0
		for i := range p {
			s += math.Abs(got[i] - p[i])
		}
		return s
	}
	abs := sumErr(NewEncoder(CodecConfig{Tier: TierI8, NoErrorFeedback: true}).Encode(p), nil)
	denc := NewEncoder(CodecConfig{Tier: TierI8, Delta: true, NoErrorFeedback: true})
	denc.SetRef(1, ref)
	del := sumErr(denc.Encode(p), ref)
	if del*10 > abs {
		t.Fatalf("delta error %v not well under absolute error %v", del, abs)
	}
}

func TestDeltaFallsBackWithoutRef(t *testing.T) {
	enc := NewEncoder(CodecConfig{Tier: TierIdentity, Delta: true})
	p := testVector(6, 64, 1)
	h, err := PeekHeader(enc.Encode(p))
	if err != nil || h.Delta {
		t.Fatalf("no-ref encode should be absolute, got %+v, %v", h, err)
	}
	// A reference of the wrong length must also fall back.
	enc.SetRef(9, testVector(7, 32, 1))
	if h, err = PeekHeader(enc.Encode(p)); err != nil || h.Delta {
		t.Fatalf("wrong-dim ref should fall back to absolute, got %+v, %v", h, err)
	}
	// And after ClearRef.
	enc.SetRef(9, testVector(7, 64, 1))
	enc.ClearRef()
	if h, err = PeekHeader(enc.Encode(p)); err != nil || h.Delta {
		t.Fatalf("cleared ref should encode absolute, got %+v, %v", h, err)
	}
}

func TestDecodeDeltaNeedsMatchingRef(t *testing.T) {
	enc := NewEncoder(CodecConfig{Tier: TierIdentity, Delta: true})
	ref := testVector(8, 50, 1)
	enc.SetRef(3, ref)
	frame := enc.Encode(testVector(9, 50, 1))
	if _, _, err := DecodeFrame(frame, nil, nil); !errors.Is(err, ErrRefMismatch) {
		t.Fatalf("nil ref: %v, want ErrRefMismatch", err)
	}
	if _, _, err := DecodeFrame(frame, ref[:49], nil); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("short ref: %v, want ErrBadFrame", err)
	}
	if _, h, err := DecodeFrame(frame, ref, nil); err != nil || h.RefTag != 3 {
		t.Fatalf("matching ref: %+v, %v", h, err)
	}
}

// TestErrorFeedbackConvergence: under a lossy tier the EF residual makes the
// time-average of what the server decodes converge to the true payload; with
// EF disabled the same bias repeats every round.
func TestErrorFeedbackConvergence(t *testing.T) {
	p := make([]float64, 300)
	for i := range p {
		p[i] = 0.05 + 0.1*math.Sin(float64(i)/7)
	}
	meanErr := func(noEF bool) float64 {
		enc := NewEncoder(CodecConfig{Tier: TierI8, NoErrorFeedback: noEF})
		const rounds = 64
		sum := make([]float64, len(p))
		for r := 0; r < rounds; r++ {
			got, _, err := DecodeFrame(enc.Encode(p), nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range got {
				sum[i] += v
			}
		}
		e := 0.0
		for i := range p {
			e += math.Abs(sum[i]/rounds - p[i])
		}
		return e / float64(len(p))
	}
	withEF, withoutEF := meanErr(false), meanErr(true)
	if withEF*4 > withoutEF {
		t.Fatalf("error feedback mean error %v not well under %v", withEF, withoutEF)
	}
}

func TestPeekHeaderRejects(t *testing.T) {
	valid := NewEncoder(CodecConfig{Tier: TierI16}).Encode(testVector(10, 300, 1))
	mut := func(f func(b []byte)) []byte {
		b := append([]byte(nil), valid...)
		f(b)
		return b
	}
	cases := map[string][]byte{
		"empty":          {},
		"short header":   valid[:19],
		"bad magic":      mut(func(b []byte) { b[0] = 'X' }),
		"bad tier":       mut(func(b []byte) { b[4] = byte(numTiers) }),
		"bad flags":      mut(func(b []byte) { b[5] = 0x80 }),
		"reserved bytes": mut(func(b []byte) { b[6] = 1 }),
		"zero dim":       mut(func(b []byte) { binary.LittleEndian.PutUint32(b[16:20], 0) }),
		"huge dim":       mut(func(b []byte) { binary.LittleEndian.PutUint32(b[16:20], maxFrameDim+1) }),
		"truncated body": valid[:len(valid)-1],
		"oversized body": append(append([]byte(nil), valid...), 0),
		"dim mismatch":   mut(func(b []byte) { binary.LittleEndian.PutUint32(b[16:20], 299) }),
	}
	for name, frame := range cases {
		if _, err := PeekHeader(frame); !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: %v, want ErrBadFrame", name, err)
		}
		if _, _, err := DecodeFrame(frame, nil, nil); !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s via DecodeFrame: %v, want ErrBadFrame", name, err)
		}
	}
}

func TestDecodeRejectsNonFiniteScale(t *testing.T) {
	for _, tier := range []Tier{TierI16, TierI8} {
		frame := append([]byte(nil), NewEncoder(CodecConfig{Tier: tier}).Encode(testVector(11, 64, 1))...)
		binary.LittleEndian.PutUint32(frame[frameHeader:], math.Float32bits(float32(math.Inf(1))))
		if _, _, err := DecodeFrame(frame, nil, nil); !errors.Is(err, ErrBadFrame) {
			t.Errorf("%v inf scale: %v, want ErrBadFrame", tier, err)
		}
	}
}

// TestCodecSteadyStateAllocs: with the encoder and decode buffer warmed up,
// an encode/decode round trip allocates nothing at any tier.
func TestCodecSteadyStateAllocs(t *testing.T) {
	p := testVector(12, 2048, 1)
	for _, tier := range []Tier{TierIdentity, TierF32, TierI16, TierI8} {
		enc := NewEncoder(CodecConfig{Tier: tier})
		dst, _, err := DecodeFrame(enc.Encode(p), nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if n := testing.AllocsPerRun(50, func() {
			dst, _, _ = DecodeFrame(enc.Encode(p), nil, dst)
		}); n != 0 {
			t.Errorf("%v round trip allocates %v/op in steady state", tier, n)
		}
	}
}

// FuzzDecodeFrame: hostile frames must produce errors, never panics or
// out-of-bounds reads, on both the refless and the referenced decode path.
func FuzzDecodeFrame(f *testing.F) {
	p := testVector(13, 300, 2)
	for _, tier := range []Tier{TierIdentity, TierF32, TierI16, TierI8} {
		f.Add(append([]byte(nil), NewEncoder(CodecConfig{Tier: tier}).Encode(p)...))
	}
	denc := NewEncoder(CodecConfig{Tier: TierI8, Delta: true})
	denc.SetRef(17, p)
	f.Add(append([]byte(nil), denc.Encode(p)...))
	f.Add([]byte("PFC1 garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, frame []byte) {
		dec, h, err := DecodeFrame(frame, nil, nil)
		if err != nil {
			if len(dec) != 0 {
				t.Fatal("failed decode returned data")
			}
			return
		}
		if h.Dim != len(dec) {
			t.Fatalf("decoded %d scalars, header says %d", len(dec), h.Dim)
		}
		if len(frame) != FrameLen(h.Tier, h.Dim) {
			t.Fatalf("accepted %d-byte frame, want %d", len(frame), FrameLen(h.Tier, h.Dim))
		}
		// Exercise the delta path with a matching-length reference too.
		if _, _, err := DecodeFrame(frame, make([]float64, h.Dim), nil); err != nil {
			t.Fatalf("decode with reference failed after refless success: %v", err)
		}
	})
}
