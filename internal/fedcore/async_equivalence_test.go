// Async degradation golden tests: with staleness-bound 0 and buffer = K the
// buffered asynchronous engine must reproduce the synchronous engine
// bit-identically on the same seed — same global payloads, same reward
// curves, same round reports — on both federation paths. This is the
// correctness pin that makes the async rewrite safe: the sync behavior is
// the async behavior at one point of the parameter space, so any drift in
// the shared machinery breaks these goldens.
package fedcore_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fed"
	"repro/internal/fednet"
)

// compareReports asserts two report slices are identical on every field.
func compareReports(t *testing.T, label string, sync, async []fed.RoundReport) {
	t.Helper()
	if len(sync) != len(async) {
		t.Fatalf("%s: report counts %d (sync) vs %d (async)", label, len(sync), len(async))
	}
	for r := range sync {
		if sync[r] != async[r] {
			t.Fatalf("%s round %d reports diverged:\n sync  %+v\n async %+v", label, r, sync[r], async[r])
		}
	}
}

// TestAsyncDegradesToSyncInProcess runs the same seeded experiment through
// core.Train twice — synchronous engine vs async engine at staleness-bound 0
// and buffer = K — and requires bit-identical results.
func TestAsyncDegradesToSyncInProcess(t *testing.T) {
	cfg := equivConfig(42)

	syncRes, err := core.Train(core.AlgPFRLDM, cfg)
	if err != nil {
		t.Fatal(err)
	}

	acfg := cfg
	acfg.Async = true
	acfg.StalenessBound = 0
	acfg.Buffer = cfg.K
	asyncRes, err := core.Train(core.AlgPFRLDM, acfg)
	if err != nil {
		t.Fatal(err)
	}

	if !samePayload(syncRes.Federation.Global, asyncRes.Federation.Global) {
		t.Fatal("global payloads diverged between sync and degraded-async runs")
	}
	if len(syncRes.MeanCurve) != len(asyncRes.MeanCurve) {
		t.Fatalf("curve lengths %d vs %d", len(syncRes.MeanCurve), len(asyncRes.MeanCurve))
	}
	for i := range syncRes.MeanCurve {
		if syncRes.MeanCurve[i] != asyncRes.MeanCurve[i] {
			t.Fatalf("episode %d: mean reward %v (sync) vs %v (async)",
				i, syncRes.MeanCurve[i], asyncRes.MeanCurve[i])
		}
	}
	compareReports(t, "in-process", syncRes.Federation.Reports, asyncRes.Federation.Reports)
	for _, rep := range asyncRes.Federation.Reports {
		if rep.StaleDrops != 0 || rep.DupDrops != 0 {
			t.Fatalf("degraded-async round carries drops: %+v", rep)
		}
	}
}

// runLoopbackAsync drives the same federation over a loopback async fednet
// deployment with buffer = N: clients are stepped serially in ascending id
// order (fetch → train → submit), so every commit fires on the last client's
// submission over all N arrivals — exactly the barrier's arrival set in
// ascending order, consuming the selection RNG identically. A trailing fetch
// pass installs the final commit on every client, as the barrier reply does.
func runLoopbackAsync(t *testing.T, cfg core.ExperimentConfig, rounds int) (*fednet.Server, []*fed.Client) {
	t.Helper()
	clients := buildFedClients(t, cfg)
	transport := fed.PublicCriticTransport{}
	initial, err := transport.Upload(clients[0])
	if err != nil {
		t.Fatal(err)
	}
	srv, err := fednet.NewServer(fednet.ServerConfig{
		Clients:        len(clients),
		K:              cfg.K,
		Seed:           cfg.Seed,
		InitialGlobal:  initial,
		Aggregator:     fed.NewAttention(cfg.Seed),
		Async:          true,
		StalenessBound: 0,
		Buffer:         len(clients),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rcs := make([]*fednet.RemoteClient, len(clients))
	for i, c := range clients {
		rc, err := fednet.Dial(addr, c, transport)
		if err != nil {
			t.Fatal(err)
		}
		if !rc.Async() {
			t.Fatal("server did not report async mode at join")
		}
		rcs[i] = rc
		defer rc.Close()
	}
	for r := 0; r < rounds; r++ {
		for _, rc := range rcs {
			if err := rc.RunRounds(1, cfg.CommEvery); err != nil {
				t.Fatalf("round %d client %d: %v", r, rc.ID(), err)
			}
		}
	}
	// Final fetch pass: the last commit's results reach everyone, matching
	// the sync barrier where the final Sync reply installs them.
	for _, rc := range rcs {
		if _, err := rc.Fetch(); err != nil {
			t.Fatalf("final fetch client %d: %v", rc.ID(), err)
		}
	}
	return srv, clients
}

// TestAsyncDegradesToSyncNetworked is the networked half of the degradation
// pin: a loopback async deployment at staleness-bound 0 / buffer = N (the
// push path's barrier-arrival set) reproduces the synchronous loopback run
// bit-identically — and, through the cross-path golden, the in-process run.
func TestAsyncDegradesToSyncNetworked(t *testing.T) {
	cfg := equivConfig(42)
	rounds := cfg.Episodes / cfg.CommEvery

	syncSrv, syncClients := runLoopback(t, cfg, rounds)
	asyncSrv, asyncClients := runLoopbackAsync(t, cfg, rounds)

	if !samePayload(syncSrv.Global(), asyncSrv.Global()) {
		t.Fatal("global payloads diverged between sync and degraded-async servers")
	}
	syncCurve := fed.MeanRewardCurve(syncClients)
	asyncCurve := fed.MeanRewardCurve(asyncClients)
	if len(syncCurve) != len(asyncCurve) || len(syncCurve) != cfg.Episodes {
		t.Fatalf("curve lengths %d vs %d, want %d", len(syncCurve), len(asyncCurve), cfg.Episodes)
	}
	for i := range syncCurve {
		if syncCurve[i] != asyncCurve[i] {
			t.Fatalf("episode %d: mean reward %v (sync) vs %v (async)", i, syncCurve[i], asyncCurve[i])
		}
	}
	compareReports(t, "networked", syncSrv.Reports(), asyncSrv.Reports())
	// Every client ends holding the same bits on both paths.
	transport := fed.PublicCriticTransport{}
	for i := range syncClients {
		sp, err := transport.Upload(syncClients[i])
		if err != nil {
			t.Fatal(err)
		}
		ap, err := transport.Upload(asyncClients[i])
		if err != nil {
			t.Fatal(err)
		}
		if !samePayload(sp, ap) {
			t.Fatalf("client %d final payloads diverged", i)
		}
	}
}
