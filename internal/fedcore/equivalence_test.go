// Cross-path equivalence golden tests: the same seed and config run through
// the in-process federation (core.Train over fed.Federation) and through a
// loopback networked deployment (fednet.Server + RPC clients) must be
// bit-identical — same global payload, same reward curves, same round
// reports. Both paths are thin adapters over the fedcore engine, and these
// tests are the regression net that keeps them that way.
package fedcore_test

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fed"
	"repro/internal/fednet"
)

// equivConfig is a tiny PFRL-DM setup with K < N so every round consumes
// the engine's selection RNG: four heterogeneous clients, two full rounds,
// no trailing local segment.
func equivConfig(seed int64) core.ExperimentConfig {
	cfg := core.DefaultExperiment(seed)
	cfg.Specs = core.ScaleSpecs(core.Table2Specs(), 4)
	cfg.TasksPerClient = 24
	cfg.Episodes = 4
	cfg.CommEvery = 2
	cfg.EpisodeStepCap = 120
	cfg.Parallel = false
	cfg.K = 2
	return cfg
}

// buildFedClients replays core.Train's client construction so the networked
// path starts from bit-identical agents, tasks, and environments.
func buildFedClients(t *testing.T, cfg core.ExperimentConfig) []*fed.Client {
	t.Helper()
	data, err := core.SampleClientData(cfg)
	if err != nil {
		t.Fatal(err)
	}
	clients, err := core.BuildClients(core.AlgPFRLDM, cfg, data)
	if err != nil {
		t.Fatal(err)
	}
	return clients
}

// runLoopback drives the same federation over a loopback fednet deployment:
// one server, one RPC client per fed.Client, full barrier (no deadline).
func runLoopback(t *testing.T, cfg core.ExperimentConfig, rounds int) (*fednet.Server, []*fed.Client) {
	t.Helper()
	clients := buildFedClients(t, cfg)
	transport := fed.PublicCriticTransport{}
	initial, err := transport.Upload(clients[0])
	if err != nil {
		t.Fatal(err)
	}
	srv, err := fednet.NewServer(fednet.ServerConfig{
		Clients:       len(clients),
		K:             cfg.K,
		Seed:          cfg.Seed,
		InitialGlobal: initial,
		Aggregator:    fed.NewAttention(cfg.Seed),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Dial serially so slot i holds client i, mirroring in-process ids.
	rcs := make([]*fednet.RemoteClient, len(clients))
	for i, c := range clients {
		rc, err := fednet.Dial(addr, c, transport)
		if err != nil {
			t.Fatal(err)
		}
		rcs[i] = rc
	}
	errs := make([]error, len(rcs))
	var wg sync.WaitGroup
	for i, rc := range rcs {
		wg.Add(1)
		go func(i int, rc *fednet.RemoteClient) {
			defer wg.Done()
			errs[i] = rc.RunRounds(rounds, cfg.CommEvery)
			rc.Close()
		}(i, rc)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("remote client %d: %v", i, err)
		}
	}
	return srv, clients
}

func samePayload(a, b fed.Payload) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestCrossPathEquivalenceGolden(t *testing.T) {
	cfg := equivConfig(42)
	rounds := cfg.Episodes / cfg.CommEvery

	inRes, err := core.Train(core.AlgPFRLDM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, netClients := runLoopback(t, cfg, rounds)

	// Bit-identical global payloads.
	if !samePayload(inRes.Federation.Global, srv.Global()) {
		t.Fatal("global payloads diverged between in-process and networked runs")
	}

	// Bit-identical mean reward curves.
	netCurve := fed.MeanRewardCurve(netClients)
	if len(netCurve) != len(inRes.MeanCurve) || len(netCurve) != cfg.Episodes {
		t.Fatalf("curve lengths: in-process %d, networked %d, want %d",
			len(inRes.MeanCurve), len(netCurve), cfg.Episodes)
	}
	for i := range netCurve {
		if netCurve[i] != inRes.MeanCurve[i] {
			t.Fatalf("episode %d: mean reward %v (in-process) vs %v (networked)",
				i, inRes.MeanCurve[i], netCurve[i])
		}
	}

	// Matching per-round reports on the path-independent fields. Arrived is
	// a transport-plane dual (the in-process path pulls K uploads, so
	// Arrived == Selected; the networked barrier collects all N pushes, so
	// Arrived == Expected) and is asserted per path instead.
	inReports, netReports := inRes.Federation.Reports, srv.Reports()
	if len(inReports) != rounds || len(netReports) != rounds {
		t.Fatalf("report counts: %d vs %d, want %d", len(inReports), len(netReports), rounds)
	}
	for r := range inReports {
		ir, nr := inReports[r], netReports[r]
		if ir.Round != nr.Round || ir.Expected != nr.Expected ||
			ir.Selected != nr.Selected || ir.Participants != nr.Participants ||
			ir.UploadDrops != nr.UploadDrops || ir.DownloadDrops != nr.DownloadDrops ||
			ir.TimedOut || nr.TimedOut {
			t.Fatalf("round %d reports diverged:\n in-process %+v\n networked  %+v", r, ir, nr)
		}
		if ir.Selected != cfg.K || ir.Participants != cfg.K {
			t.Fatalf("round %d: selected %d participants %d, want K=%d", r, ir.Selected, ir.Participants, cfg.K)
		}
		if ir.Arrived != ir.Selected {
			t.Fatalf("round %d: in-process pull should arrive exactly the selected, got %+v", r, ir)
		}
		if nr.Arrived != nr.Expected {
			t.Fatalf("round %d: networked full barrier should arrive everyone, got %+v", r, nr)
		}
	}
}

// TestLateJoinerSeesSameModelOnBothPaths pins the unified late-join policy:
// after one completed round, a client joining via fed.AddClient and one
// joining via a fednet Join receive bit-identical models (the engine's
// stored global payload). The networked round closes by deadline — the
// server expects the joiner's slot to exist up front, so the barrier can
// never fill before the join — which is exactly the mid-training scenario.
func TestLateJoinerSeesSameModelOnBothPaths(t *testing.T) {
	cfg := equivConfig(99)
	cfg.Specs = cfg.Specs[:2]
	cfg.Episodes = 1
	cfg.CommEvery = 1
	cfg.K = 2

	transport := fed.PublicCriticTransport{}

	// In-process: one round with two clients, then a mid-training join.
	inClients := buildFedClients(t, cfg)
	f, err := fed.New(inClients, transport, fed.NewAttention(cfg.Seed),
		fed.Options{K: cfg.K, CommEvery: cfg.CommEvery, Seed: cfg.Seed})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.RunEpisodes(cfg.Episodes); err != nil {
		t.Fatal(err)
	}
	inJoiner := buildFedClients(t, cfg)[0] // shape-compatible fresh client
	if err := f.AddClient(inJoiner); err != nil {
		t.Fatal(err)
	}
	inPayload, err := transport.Upload(inJoiner)
	if err != nil {
		t.Fatal(err)
	}
	if !samePayload(inPayload, f.Global) {
		t.Fatal("in-process joiner did not receive the stored global payload")
	}

	// Networked: a three-slot server, two clients running one round (closed
	// by the deadline since slot 3 is empty), then the third joins fresh.
	netClients := buildFedClients(t, cfg)
	initial, err := transport.Upload(netClients[0])
	if err != nil {
		t.Fatal(err)
	}
	srv, err := fednet.NewServer(fednet.ServerConfig{
		Clients:       3,
		K:             cfg.K,
		Seed:          cfg.Seed,
		InitialGlobal: initial,
		Aggregator:    fed.NewAttention(cfg.Seed),
		RoundTimeout:  2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rcs := make([]*fednet.RemoteClient, len(netClients))
	for i, c := range netClients {
		if rcs[i], err = fednet.Dial(addr, c, transport); err != nil {
			t.Fatal(err)
		}
	}
	errs := make([]error, len(rcs))
	var wg sync.WaitGroup
	for i, rc := range rcs {
		wg.Add(1)
		go func(i int, rc *fednet.RemoteClient) {
			defer wg.Done()
			errs[i] = rc.RunRounds(1, cfg.CommEvery)
			rc.Close()
		}(i, rc)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("remote client %d: %v", i, err)
		}
	}
	reports := srv.Reports()
	if len(reports) != 1 || !reports[0].TimedOut || reports[0].Arrived != 2 {
		t.Fatalf("expected one deadline round with both clients arrived, got %+v", reports)
	}

	netJoiner := buildFedClients(t, cfg)[0]
	rcJoin, err := fednet.Dial(addr, netJoiner, transport)
	if err != nil {
		t.Fatal(err)
	}
	defer rcJoin.Close()
	if rcJoin.Round() != 1 {
		t.Fatalf("networked joiner adopted round %d, want 1", rcJoin.Round())
	}
	netPayload, err := transport.Upload(netJoiner)
	if err != nil {
		t.Fatal(err)
	}
	if !samePayload(netPayload, srv.Global()) {
		t.Fatal("networked joiner did not receive the stored global payload")
	}

	// The unified policy: both joiners hold the same bits.
	if !samePayload(inPayload, netPayload) {
		t.Fatal("late joiners diverged between in-process and networked paths")
	}
	// And the in-process engine agrees with the networked server.
	if round, global := f.Engine.Join(); round != 1 || !samePayload(global, srv.Global()) {
		t.Fatalf("engine join state diverged: round %d", round)
	}
}
