package fedcore

import (
	"errors"
	"testing"
)

func mustAsync(t *testing.T, opts AsyncOptions, initial Payload, deliver Delivery) *AsyncEngine {
	t.Helper()
	a, err := NewAsync(meanAgg{}, initial, opts, deliver)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestAsyncBufferCommit pins the commit trigger: B accepted arrivals fire
// one aggregation round over exactly those arrivals; the buffer then resets.
func TestAsyncBufferCommit(t *testing.T) {
	a := mustAsync(t, AsyncOptions{
		Options:        Options{K: 2, Clients: 4, Seed: 1},
		StalenessBound: -1,
		Buffer:         2,
	}, Payload{0, 0}, nil)

	res, err := a.Submit(0, 1, 0, Payload{2, 4})
	if err != nil || res.Status != SubmitAccepted || res.Committed != nil {
		t.Fatalf("first submission: %+v err %v", res, err)
	}
	res, err = a.Submit(1, 1, 0, Payload{4, 8})
	if err != nil || res.Status != SubmitAccepted {
		t.Fatalf("second submission: %+v err %v", res, err)
	}
	if res.Committed == nil {
		t.Fatal("buffer of 2 did not commit on the second arrival")
	}
	if got := a.Engine().Global(); got[0] != 3 || got[1] != 6 {
		t.Fatalf("committed global %v, want mean [3 6]", got)
	}
	if res.Round != 1 {
		t.Fatalf("post-commit round %d, want 1", res.Round)
	}
	rep := *res.Committed
	if rep.Round != 0 || rep.Expected != 4 || rep.Selected != 2 || rep.Arrived != 2 || rep.Participants != 2 {
		t.Fatalf("commit report %+v", rep)
	}
	if rep.StaleDrops != 0 || rep.DupDrops != 0 || rep.UploadDrops != 0 {
		t.Fatalf("fault-free commit carries drops: %+v", rep)
	}
	// The trigger's personalized payload rides the result.
	if res.Personalized == nil {
		t.Fatal("trigger client got no personalized payload")
	}
	// The other participant's is retained for its next contact.
	if p, ok := a.TakePersonal(0); !ok || p == nil {
		t.Fatal("non-trigger participant's personalized payload not retained")
	}
	if _, ok := a.TakePersonal(0); ok {
		t.Fatal("TakePersonal did not consume the retained payload")
	}
}

// TestAsyncStalenessWeighting pins the mixing formula on hand-computed
// values: a delta one round stale is pre-mixed toward the current global
// with w = 1/(1+1) = 0.5 before aggregation; a fresh delta is used verbatim
// (no blend at τ = 0).
func TestAsyncStalenessWeighting(t *testing.T) {
	a := mustAsync(t, AsyncOptions{
		Options:        Options{K: 4, Clients: 4, Seed: 1},
		StalenessBound: -1,
		Buffer:         1,
	}, Payload{0, 0}, nil)

	// Commit 1: fresh delta from client 0 installs [8, 4] verbatim.
	if res, err := a.Submit(0, 1, 0, Payload{8, 4}); err != nil || res.Committed == nil {
		t.Fatalf("fresh commit: %+v err %v", res, err)
	}
	if g := a.Engine().Global(); g[0] != 8 || g[1] != 4 {
		t.Fatalf("fresh delta was blended: global %v, want [8 4]", g)
	}

	// Commit 2: client 1 submits base 0 while the engine is on round 1 —
	// one round stale. ũ = 0.5*[2 2] + 0.5*[8 4] = [5 3].
	res, err := a.Submit(1, 1, 0, Payload{2, 2})
	if err != nil || res.Committed == nil {
		t.Fatalf("stale commit: %+v err %v", res, err)
	}
	if res.Staleness != 1 {
		t.Fatalf("staleness %d, want 1", res.Staleness)
	}
	if g := a.Engine().Global(); g[0] != 5 || g[1] != 3 {
		t.Fatalf("staleness weighting wrong: global %v, want [5 3]", g)
	}
}

// TestAsyncStalenessBoundDrops pins the cap: a delta staler than the bound
// is dropped into the next report's StaleDrops, consumes its seq, and does
// not advance the buffer.
func TestAsyncStalenessBoundDrops(t *testing.T) {
	a := mustAsync(t, AsyncOptions{
		Options:        Options{K: 4, Clients: 4, Seed: 1},
		StalenessBound: 0,
		Buffer:         1,
	}, Payload{0}, nil)

	// Advance to round 2 with fresh commits from client 0.
	if _, err := a.Submit(0, 1, 0, Payload{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Submit(0, 2, 1, Payload{2}); err != nil {
		t.Fatal(err)
	}

	// Client 1 is two rounds behind: dropped under bound 0.
	res, err := a.Submit(1, 1, 0, Payload{9})
	if err != nil || res.Status != SubmitStale || res.Committed != nil {
		t.Fatalf("over-stale submission: %+v err %v", res, err)
	}
	if g := a.Engine().Global(); g[0] != 2 {
		t.Fatalf("stale delta leaked into the global: %v", g)
	}
	// The drop is consumed: a retransmit with the same seq is a duplicate.
	res, err = a.Submit(1, 1, 2, Payload{9})
	if err != nil || res.Status != SubmitDuplicate {
		t.Fatalf("retransmit of a consumed stale delta: %+v err %v", res, err)
	}
	// Both drops surface in the next commit's report.
	if _, err := a.Submit(0, 3, 2, Payload{3}); err != nil {
		t.Fatal(err)
	}
	reports := a.Engine().Reports()
	last := reports[len(reports)-1]
	if last.StaleDrops != 1 || last.DupDrops != 1 {
		t.Fatalf("drop window not reported: %+v", last)
	}
	// And the window resets afterwards.
	if _, err := a.Submit(0, 4, 3, Payload{4}); err != nil {
		t.Fatal(err)
	}
	reports = a.Engine().Reports()
	if last = reports[len(reports)-1]; last.StaleDrops != 0 || last.DupDrops != 0 {
		t.Fatalf("drop window leaked across commits: %+v", last)
	}
}

// TestAsyncDuplicateSubmissions pins the dedup contract around retries:
//   - a retransmit (same seq) after a consumed submission is dropped,
//   - a length-reject does NOT consume the seq, so the rebuilt retry lands,
//   - a new seq from the same base round is NOT a duplicate (a client may
//     legitimately submit twice between commits),
//   - Join clears the slot's dedup state for a restarted client.
func TestAsyncDuplicateSubmissions(t *testing.T) {
	a := mustAsync(t, AsyncOptions{
		Options:        Options{K: 4, Clients: 4, Seed: 1},
		StalenessBound: -1,
		Buffer:         3,
	}, Payload{0}, nil)

	if res, err := a.Submit(0, 1, 0, Payload{1}); err != nil || res.Status != SubmitAccepted {
		t.Fatalf("first: %+v err %v", res, err)
	}
	// Retransmit after a lost reply: dropped, buffer unmoved.
	res, err := a.Submit(0, 1, 0, Payload{1})
	if err != nil || res.Status != SubmitDuplicate || res.Committed != nil {
		t.Fatalf("retransmit: %+v err %v", res, err)
	}
	// Length reject does not consume seq 2...
	if _, err := a.Submit(0, 2, 0, Payload{1, 2, 3}); !errors.Is(err, ErrBadUpload) {
		t.Fatalf("bad upload error: %v", err)
	}
	// ...so the rebuilt payload with the same seq is accepted.
	if res, err := a.Submit(0, 2, 0, Payload{2}); err != nil || res.Status != SubmitAccepted {
		t.Fatalf("rebuilt retry: %+v err %v", res, err)
	}
	// Same client, same base round, fresh seq: a legitimate second delta.
	res, err = a.Submit(0, 3, 0, Payload{3})
	if err != nil || res.Status != SubmitAccepted {
		t.Fatalf("second delta same base: %+v err %v", res, err)
	}
	if res.Committed == nil {
		// Buffer 3 reached: 1, 2, 3 accepted.
		t.Fatal("three accepted submissions did not commit with buffer 3")
	}
	// A restarted client reclaims its slot: Join clears dedup state so its
	// fresh seq 1 is not shadowed by the previous life.
	a.Join(0)
	if res, err := a.Submit(0, 1, a.Engine().Round(), Payload{5}); err != nil || res.Status != SubmitAccepted {
		t.Fatalf("post-rejoin submission: %+v err %v", res, err)
	}
}

// TestAsyncFlush pins the shutdown path: a partial buffer force-commits,
// an empty one does not.
func TestAsyncFlush(t *testing.T) {
	a := mustAsync(t, AsyncOptions{
		Options: Options{K: 4, Clients: 4, Seed: 1},
		Buffer:  3,
	}, Payload{0}, nil)
	if _, ok := a.Flush(); ok {
		t.Fatal("empty buffer flushed a round")
	}
	if _, err := a.Submit(0, 1, 0, Payload{6}); err != nil {
		t.Fatal(err)
	}
	rep, ok := a.Flush()
	if !ok || rep.Arrived != 1 || rep.Participants != 1 {
		t.Fatalf("flush report %+v ok=%v", rep, ok)
	}
	if g := a.Engine().Global(); g[0] != 6 {
		t.Fatalf("flushed global %v", g)
	}
	if _, ok := a.Flush(); ok {
		t.Fatal("second flush re-committed an empty buffer")
	}
}

// TestAsyncBufferDefaultsToK pins the Buffer <= 0 resolution.
func TestAsyncBufferDefaultsToK(t *testing.T) {
	a := mustAsync(t, AsyncOptions{Options: Options{K: 3, Clients: 6, Seed: 1}}, Payload{0}, nil)
	if a.Buffer() != 3 {
		t.Fatalf("buffer %d, want K=3", a.Buffer())
	}
}
