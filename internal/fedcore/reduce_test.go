package fedcore

import (
	"math/rand"
	"sync"
	"testing"
)

func randUploads(seed int64, k, dim int) []Payload {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Payload, k)
	for i := range out {
		out[i] = make(Payload, dim)
		for j := range out[i] {
			out[i][j] = rng.NormFloat64()
		}
	}
	return out
}

// withWorkers runs fn under a fixed aggregation fan-out, restoring the
// process-wide knob afterwards.
func withWorkers(n int, fn func()) {
	prev := SetAggWorkers(n)
	defer SetAggWorkers(prev)
	fn()
}

func TestParallelChunksCoversRange(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7} {
		for _, n := range []int{0, 1, 5, 1000} {
			hits := make([]int, n)
			var mu sync.Mutex
			withWorkers(workers, func() {
				// Inflate the work estimate so the parallel path engages.
				ParallelChunks(n, aggParallelThreshold*2, func(lo, hi int) {
					mu.Lock()
					defer mu.Unlock()
					for i := lo; i < hi; i++ {
						hits[i]++
					}
				})
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestParallelChunksSerialBelowThreshold(t *testing.T) {
	withWorkers(8, func() {
		if n := testing.AllocsPerRun(20, func() {
			ParallelChunks(100, 100, func(lo, hi int) {})
		}); n != 0 {
			t.Fatalf("small-work ParallelChunks allocates %v/op; want serial fast path", n)
		}
	})
}

// TestReduceMeanIntoBitIdentical: the mean must match the seed-era sequential
// loop bit for bit at every worker count — the degradation pin's foundation.
func TestReduceMeanIntoBitIdentical(t *testing.T) {
	const k, dim = 7, 16384 // k*dim crosses the parallel threshold
	uploads := randUploads(20, k, dim)

	want := make(Payload, dim)
	for _, u := range uploads {
		for j, v := range u {
			want[j] += v
		}
	}
	for j := range want {
		want[j] *= 1.0 / float64(k)
	}

	dst := make(Payload, dim)
	for _, workers := range []int{1, 2, 3, 8, 32} {
		withWorkers(workers, func() { ReduceMeanInto(dst, uploads) })
		for j := range want {
			if dst[j] != want[j] {
				t.Fatalf("workers=%d: mean diverges at %d: %v vs %v", workers, j, dst[j], want[j])
			}
		}
	}
}

func TestWeightedMixIntoBitIdentical(t *testing.T) {
	const k, dim = 6, 8192
	uploads := randUploads(21, k, dim)
	rng := rand.New(rand.NewSource(22))
	w := make([][]float64, k)
	for i := range w {
		w[i] = make([]float64, k)
		for j := range w[i] {
			w[i][j] = rng.Float64()
		}
	}

	want := make([]Payload, k)
	for i := range want {
		want[i] = make(Payload, dim)
		for j := 0; j < k; j++ {
			for d, v := range uploads[j] {
				want[i][d] += w[i][j] * v
			}
		}
	}

	var arena PayloadArena
	for _, workers := range []int{1, 3, 16} {
		dst := arena.Payloads(k, dim)
		withWorkers(workers, func() { WeightedMixInto(dst, w, uploads) })
		for i := range want {
			for d := range want[i] {
				if dst[i][d] != want[i][d] {
					t.Fatalf("workers=%d: mix diverges at [%d][%d]", workers, i, d)
				}
			}
		}
	}
}

func TestReduceValidationPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	expectPanic("zero uploads", func() { ReduceMeanInto(make(Payload, 4), nil) })
	expectPanic("ragged uploads", func() {
		ReduceMeanInto(make(Payload, 4), []Payload{make(Payload, 4), make(Payload, 3)})
	})
	expectPanic("mix shape", func() {
		WeightedMixInto(make([]Payload, 2), [][]float64{{1}}, []Payload{make(Payload, 4)})
	})
	expectPanic("mix non-square", func() {
		var arena PayloadArena
		WeightedMixInto(arena.Payloads(1, 4), [][]float64{{1, 2}}, []Payload{make(Payload, 4)})
	})
}

func TestPayloadArenaReuse(t *testing.T) {
	var arena PayloadArena
	views := arena.Payloads(3, 100)
	if len(views) != 3 {
		t.Fatal("wrong view count")
	}
	// Distinct non-overlapping views over one slab.
	views[0][99], views[1][0] = 1, 2
	if views[0][99] != 1 || views[1][0] != 2 {
		t.Fatal("views overlap")
	}
	g := arena.Global(100)

	// Steady state: same shapes come from the same buffers, no allocation.
	if n := testing.AllocsPerRun(20, func() {
		arena.Payloads(3, 100)
		arena.Global(100)
		arena.Alias(3, g)
	}); n != 0 {
		t.Fatalf("warm arena allocates %v/op", n)
	}
	if again := arena.Payloads(3, 100); &again[0][0] != &views[0][0] {
		t.Fatal("warm arena did not reuse its slab")
	}

	aliased := arena.Alias(3, g)
	for _, v := range aliased {
		if &v[0] != &g[0] {
			t.Fatal("alias views must share the payload backing")
		}
	}
}
