// Package fedcore is the transport-agnostic federated round engine: the
// control plane of Algorithm 1, shared by the in-process federation
// (internal/fed) and the networked one (internal/fednet).
//
// The engine owns every piece of round *policy* — seeded K-of-N participant
// selection, the participation-weighted partial-aggregation rule, corrupt
// upload filtering, round/report bookkeeping, the late-join/resync payload
// rule, and the per-round observability — while the adapters own the *data
// plane*: how payloads actually reach clients (direct method calls for fed,
// a net/rpc barrier for fednet). Because both paths drive the same engine
// with the same seed, an in-process run and a loopback networked run are
// bit-identical, which the cross-path equivalence golden test pins.
//
// A round, from the engine's point of view:
//
//  1. Select draws the round's participants from the candidate ids using
//     the engine's seeded RNG (stable identity order at full participation,
//     so per-client aggregators map rows to clients).
//  2. The adapter collects uploads however its transport works — the
//     in-process federation pulls from the selected clients, the networked
//     server already holds the arrivals' pushes.
//  3. CompleteRound filters corrupt-length uploads, aggregates the rest
//     under the partial-participation policy, installs the new global
//     payload, and hands the personalized payloads to the adapter's
//     delivery callback before committing the round report.
package fedcore

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"repro/internal/obs"
)

// Payload is a flat parameter vector exchanged between client and server.
type Payload = []float64

// Aggregator combines the participating clients' uploads. Aggregate returns
// one personalized payload per upload (same order) plus the new global
// payload stored for non-participants and late joiners. internal/fed's
// aggregators (FedAvg, MFPO momentum, attention, ...) satisfy it directly.
type Aggregator interface {
	Name() string
	Aggregate(uploads []Payload) (personalized []Payload, global Payload)
}

// IntoAggregator is the pooled fast path: AggregateInto computes the same
// result as Aggregate but places it in caller-owned arena buffers, so a
// steady-state round allocates nothing. The returned slices are valid only
// until the arena's next use; callers that retain them must copy. The
// engine prefers this path when an aggregator provides it (all of
// internal/fed's strategies do) and falls back to Aggregate otherwise.
type IntoAggregator interface {
	Aggregator
	AggregateInto(uploads []Payload, arena *PayloadArena) (personalized []Payload, global Payload)
}

// AggregatePartial runs one aggregation over however many uploads arrived
// (the partial-participation regime: k of n clients answered before the
// round deadline). Each arrival carries equal weight, so the result is the
// participation-weighted mean — exactly agg.Aggregate over the k uploads.
// The degenerate round where nobody arrived is well-defined too: no
// personalized payloads, and the global payload carries over unchanged.
//
// This is the single implementation of the policy; fed.AggregatePartial is
// a thin delegate kept for call-site convenience.
func AggregatePartial(agg Aggregator, uploads []Payload, prevGlobal Payload) (personalized []Payload, global Payload) {
	if len(uploads) == 0 {
		return nil, append(Payload(nil), prevGlobal...)
	}
	return agg.Aggregate(uploads)
}

// AggregatePartialInto is AggregatePartial over arena buffers: the pooled
// data plane the engine (and the aggregation benchmarks) run. Zero uploads
// return prevGlobal itself as the carried-over global — the caller copies
// or already owns it. Aggregators without the pooled fast path fall back to
// the allocating Aggregate.
func AggregatePartialInto(agg Aggregator, uploads []Payload, prevGlobal Payload, arena *PayloadArena) (personalized []Payload, global Payload) {
	if len(uploads) == 0 {
		return nil, prevGlobal
	}
	if into, ok := agg.(IntoAggregator); ok {
		return into.AggregateInto(uploads, arena)
	}
	return agg.Aggregate(uploads)
}

// DefaultK returns the paper's default participation for an n-client
// federation: K = max(1, N/2), the PFRL-DM setting (§5.1).
func DefaultK(n int) int {
	if n/2 < 1 {
		return 1
	}
	return n / 2
}

// RoundReport records who actually contributed to one aggregation round.
// Both federation paths produce it; the fields split into shared policy
// outcomes and transport-shaped observations:
//
//   - Selected/Participants/UploadDrops/DownloadDrops are path-independent
//     for a fault-free full barrier.
//   - Expected/Arrived read differently per transport: the in-process
//     federation pulls uploads only from the Selected clients (so Arrived ≤
//     Selected), while the networked server selects from whoever pushed
//     before the barrier closed (so Selected ≤ Arrived).
//   - TimedOut marks rounds closed by a deadline rather than a full
//     barrier; the in-process path has no deadline and never sets it.
type RoundReport struct {
	// Round is the round index (0-based).
	Round int
	// Expected is how many clients the round could have drawn from (N).
	Expected int
	// Selected is how many clients were drawn for the round (K).
	Selected int
	// Arrived is how many uploads reached the aggregation step, including
	// corrupt-length ones the engine then filtered.
	Arrived int
	// Participants is how many uploads were actually aggregated.
	Participants int
	// UploadDrops counts uploads lost to transient transport faults or
	// corrupt lengths; a dropped upload leaves that client out of the round.
	UploadDrops int
	// DownloadDrops counts deliveries lost to transient transport faults; a
	// dropped download leaves that client on its previous parameters.
	DownloadDrops int
	// StaleDrops counts async submissions dropped for exceeding the
	// staleness bound since the previous commit. Always zero on sync rounds.
	StaleDrops int
	// DupDrops counts async submissions dropped as (client, seq) duplicates
	// since the previous commit. Always zero on sync rounds.
	DupDrops int
	// TimedOut marks rounds closed by a deadline instead of a full barrier.
	TimedOut bool
}

// RoundStats carries the adapter-observed facts about one round into
// CompleteRound: barrier shape, selection size, and data-plane upload drops
// the adapter absorbed before the engine saw the contributions.
type RoundStats struct {
	Expected    int
	Selected    int
	Arrived     int
	UploadDrops int
	StaleDrops  int
	DupDrops    int
	TimedOut    bool
}

// Contribution is one client's upload, tagged with its id so personalized
// payloads can be routed back.
type Contribution struct {
	ID     int
	Upload Payload
}

// Delivery distributes one round's results: personalized payloads keyed by
// client id for the participants, the new global payload for everyone else.
// It returns the download drops it absorbed and the wall-clock spent in
// transport calls (both folded into the round report and phase timers).
// The callback runs while the engine holds its round lock, so it must not
// call back into the engine. The map and the personalized payloads it
// carries are engine-owned scratch reused next round: deliver must install
// or copy them before returning, never retain them.
type Delivery func(personalized map[int]Payload, global Payload) (downloadDrops int, comm time.Duration)

// Options configures New.
type Options struct {
	// K is the number of participants aggregated per round; <=0 or >Clients
	// means full participation.
	K int
	// Clients is N, the federation size K is resolved against.
	Clients int
	// Seed drives participant selection.
	Seed int64
}

// Engine is the federated round state machine. One engine instance backs
// one federation (in-process or networked); all methods are safe for
// concurrent use.
type Engine struct {
	mu      sync.Mutex
	k       int
	agg     Aggregator
	rng     *rand.Rand
	global  Payload
	round   int
	reports []RoundReport

	// Pooled round scratch: the aggregation arena plus the contribution
	// filtering and routing buffers, all reused across rounds so the
	// steady-state data plane allocates nothing.
	arena      PayloadArena
	scrUploads []Payload
	scrIDs     []int
	scrByID    map[int]Payload
}

// New builds an engine holding ψ_G^(0) = initial, with K resolved against
// opts.Clients.
func New(agg Aggregator, initial Payload, opts Options) (*Engine, error) {
	if agg == nil {
		return nil, errors.New("fedcore: engine needs an aggregator")
	}
	if len(initial) == 0 {
		return nil, errors.New("fedcore: engine needs an initial global payload")
	}
	if opts.Clients < 1 {
		return nil, errors.New("fedcore: engine needs at least one client")
	}
	k := opts.K
	if k <= 0 || k > opts.Clients {
		k = opts.Clients
	}
	return &Engine{
		k:      k,
		agg:    agg,
		rng:    rand.New(rand.NewSource(opts.Seed)),
		global: append(Payload(nil), initial...),
	}, nil
}

// K returns the resolved per-round participation.
func (e *Engine) K() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.k
}

// Round returns the number of completed aggregation rounds.
func (e *Engine) Round() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.round
}

// Global returns a copy of the stored global payload.
func (e *Engine) Global() Payload {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append(Payload(nil), e.global...)
}

// PayloadLen returns the expected upload length (the global payload's).
func (e *Engine) PayloadLen() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.global)
}

// Reports returns a copy of the per-round participation records.
func (e *Engine) Reports() []RoundReport {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]RoundReport(nil), e.reports...)
}

// Join is the single late-join/resync policy shared by every path: a fresh
// joiner (fed.AddClient, fednet Join), a restarted client reclaiming its
// slot, and a straggler resyncing via State all receive the current round
// index and a copy of the stored global payload.
func (e *Engine) Join() (round int, global Payload) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.round, append(Payload(nil), e.global...)
}

// Select draws the round's K participants from the candidate ids. Full
// participation (K >= len(candidates)) keeps the candidates' stable order,
// so aggregators with per-client semantics (StaticWeights) map rows to
// clients; otherwise a seeded permutation picks K without replacement, in
// permutation order. The RNG is consumed only on the partial path, so the
// selection stream is identical whether candidates are all N clients (the
// in-process pull) or the barrier's arrivals (the networked push) whenever
// everyone shows up.
func (e *Engine) Select(candidates []int) []int {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.k >= len(candidates) {
		return append([]int(nil), candidates...)
	}
	idx := e.rng.Perm(len(candidates))[:e.k]
	out := make([]int, len(idx))
	for i, j := range idx {
		out[i] = candidates[j]
	}
	return out
}

// CompleteRound closes one round: corrupt-length uploads are filtered into
// the drop count (detectable, so the round survives them), the survivors
// are aggregated under the partial-participation policy, the new global
// payload is installed, the adapter's deliver callback distributes the
// results, and the report is committed. Uploads are aggregated in
// contribution order, which the adapters keep deterministic (selection
// order in-process, ascending client id at the networked barrier).
//
// The round counter advances even for a degenerate round (zero
// participants keep the global payload unchanged), matching the
// partial-participation regime where a round that nobody reached still
// happened.
func (e *Engine) CompleteRound(contribs []Contribution, stats RoundStats, deliver Delivery) RoundReport {
	e.mu.Lock()
	defer e.mu.Unlock()

	expect := len(e.global)
	uploads := e.scrUploads[:0]
	ids := e.scrIDs[:0]
	uploadDrops := stats.UploadDrops
	for _, c := range contribs {
		if len(c.Upload) != expect {
			uploadDrops++
			continue
		}
		uploads = append(uploads, c.Upload)
		ids = append(ids, c.ID)
	}
	e.scrUploads, e.scrIDs = uploads, ids

	aggStart := time.Now()
	personalized, global := AggregatePartialInto(e.agg, uploads, e.global, &e.arena)
	aggDur := time.Since(aggStart)
	// The aggregator's output lives in arena buffers reused next round, so
	// the stored global is copied into the engine-owned mirror.
	if len(global) == 0 {
		e.global = e.global[:0]
	} else if len(e.global) == 0 || &global[0] != &e.global[0] {
		if cap(e.global) < len(global) {
			e.global = make(Payload, len(global))
		}
		e.global = e.global[:len(global)]
		copy(e.global, global)
	}

	report := RoundReport{
		Round:        e.round,
		Expected:     stats.Expected,
		Selected:     stats.Selected,
		Arrived:      stats.Arrived,
		Participants: len(uploads),
		UploadDrops:  uploadDrops,
		StaleDrops:   stats.StaleDrops,
		DupDrops:     stats.DupDrops,
		TimedOut:     stats.TimedOut,
	}
	e.round++

	if e.scrByID == nil {
		e.scrByID = make(map[int]Payload, len(ids))
	}
	clear(e.scrByID)
	byID := e.scrByID
	for i, id := range ids {
		byID[id] = personalized[i]
	}
	var commDur time.Duration
	if deliver != nil {
		report.DownloadDrops, commDur = deliver(byID, e.global)
	}
	e.reports = append(e.reports, report)

	obs.GlobalTimers().Add(obs.PhaseAggregate, aggDur)
	obs.GlobalTimers().Add(obs.PhaseComm, commDur)
	mRounds.Inc()
	mUploadDrops.Add(uint64(report.UploadDrops))
	mDownloadDrops.Add(uint64(report.DownloadDrops))
	gParticipants.Set(float64(report.Participants))
	hAggregate.Observe(aggDur.Seconds())
	if obs.Active() {
		ev := obs.E("round").At(-1, report.Round, -1).
			F("expected", float64(report.Expected)).
			F("selected", float64(report.Selected)).
			F("arrived", float64(report.Arrived)).
			F("participants", float64(report.Participants)).
			F("upload_drops", float64(report.UploadDrops)).
			F("download_drops", float64(report.DownloadDrops)).
			F("stale_drops", float64(report.StaleDrops)).
			F("dup_drops", float64(report.DupDrops)).
			F("aggregate_seconds", aggDur.Seconds()).
			F("comm_seconds", commDur.Seconds())
		if report.TimedOut {
			ev.F("timed_out", 1)
		}
		obs.Emit(ev)
	}
	return report
}
