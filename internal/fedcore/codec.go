package fedcore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"strings"
)

// Payload wire codec: the federation data plane's compression layer.
//
// A payload crosses the wire as one self-describing frame:
//
//	offset  size  field
//	0       4     magic "PFC1"
//	4       1     tier (TierIdentity | TierF32 | TierI16 | TierI8)
//	5       1     flags (bit 0: delta-encoded against RefTag's payload)
//	6       2     reserved (must be zero)
//	8       8     RefTag — identifies the delta reference; zero when absolute
//	16      4     dim — the payload's scalar count
//	20      ...   body (tier-dependent, exact length checked on decode)
//
// Bodies:
//
//   - identity: dim little-endian float64 bit patterns. Bit-exact, including
//     NaN payloads and signed zeros — the degradation-pin tier.
//   - f32: dim float32s (round-to-nearest), halving the wire volume.
//   - i16/i8: per-block symmetric quantization. Values are split into
//     blocks of quantBlock scalars; each block stores one float32 scale
//     (maxAbs/32767 or /127) followed by the quantized integers, so a block
//     costs 2·n+4 (i16) or n+4 (i8) bytes. Scales adapt per block, which
//     keeps the error proportional to the local dynamic range.
//
// Delta encoding subtracts a reference payload (the last model this client
// installed) before quantization. It does not change the frame size — the
// win is accuracy: post-round parameter drift has a far smaller dynamic
// range than absolute parameters, so the per-block scales shrink and the
// lossy tiers bite less. The decoder adds the same reference back, which is
// why RefTag must match on both ends (the adapters fall back to absolute
// encoding on a mismatch rather than silently corrupting the round).
//
// Error feedback is client-side Encoder state: the residual r accumulates
// what quantization discarded, and each Encode transmits v + r instead of v,
// so the quantization error averages out across rounds instead of
// compounding (Seide et al.'s 1-bit SGD trick, standard in gradient
// compression). Identity encoding is exact and carries no residual.
const (
	frameMagic  = 0x31434650 // "PFC1" little-endian
	frameHeader = 20
	quantBlock  = 256
	// maxFrameDim bounds decoded allocations against hostile frames.
	maxFrameDim = 1 << 26

	flagDelta = 0x01
)

// Tier selects the wire precision of payload frames.
type Tier uint8

const (
	// TierIdentity ships raw float64 bits — bit-exact, 8 bytes/scalar.
	TierIdentity Tier = iota
	// TierF32 rounds to float32 — 4 bytes/scalar.
	TierF32
	// TierI16 quantizes to int16 with per-block float32 scales.
	TierI16
	// TierI8 quantizes to int8 with per-block float32 scales.
	TierI8

	numTiers
)

// String implements fmt.Stringer.
func (t Tier) String() string {
	switch t {
	case TierIdentity:
		return "identity"
	case TierF32:
		return "f32"
	case TierI16:
		return "i16"
	case TierI8:
		return "i8"
	}
	return fmt.Sprintf("Tier(%d)", uint8(t))
}

// ParseTier parses a tier name as accepted by the -codec flag.
func ParseTier(s string) (Tier, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "identity", "f64", "raw":
		return TierIdentity, nil
	case "f32", "float32":
		return TierF32, nil
	case "i16", "int16":
		return TierI16, nil
	case "i8", "int8":
		return TierI8, nil
	}
	return 0, fmt.Errorf("fedcore: unknown codec tier %q (want identity|f32|i16|i8)", s)
}

// Lossy reports whether the tier discards precision.
func (t Tier) Lossy() bool { return t == TierF32 || t == TierI16 || t == TierI8 }

// CodecConfig selects the wire codec for a federation. The zero value is
// the degradation-pin setting: identity tier, absolute encoding — bit-exact
// framing that reproduces the uncompressed data plane.
type CodecConfig struct {
	// Tier is the wire precision.
	Tier Tier
	// Delta encodes uplink payloads as deltas against the client's last
	// installed model (falling back to absolute when no reference is
	// shared). Same frame size, smaller dynamic range under the lossy
	// tiers. Note that delta framing composes exactly only with lossless
	// content: subtract-then-add round-off makes identity+delta NOT
	// bit-transparent, so the pin configuration leaves Delta off.
	Delta bool
	// NoErrorFeedback disables the client-side residual accumulation under
	// the lossy tiers (the EXPERIMENTS.md ablation). The zero value keeps
	// error feedback on, which is what makes the lossy tiers convergent.
	NoErrorFeedback bool
}

// Header is the parsed frame prefix.
type Header struct {
	Tier   Tier
	Delta  bool
	RefTag uint64
	Dim    int
}

// bodyLen returns the exact body length for a tier and dim.
func bodyLen(tier Tier, dim int) int {
	blocks := (dim + quantBlock - 1) / quantBlock
	switch tier {
	case TierIdentity:
		return dim * 8
	case TierF32:
		return dim * 4
	case TierI16:
		return blocks*4 + dim*2
	case TierI8:
		return blocks*4 + dim
	}
	return -1
}

// FrameLen returns the total frame length (header + body) a payload of dim
// scalars occupies at the given tier.
func FrameLen(tier Tier, dim int) int { return frameHeader + bodyLen(tier, dim) }

// Frame decode errors. ErrBadFrame covers every malformed-frame condition;
// ErrRefMismatch is the delta-reference disagreement the adapters recover
// from by re-encoding absolutely.
var (
	ErrBadFrame    = errors.New("fedcore: bad payload frame")
	ErrRefMismatch = errors.New("fedcore: delta frame references an unknown payload")
)

// PeekHeader parses and validates the frame prefix without decoding the
// body. It never panics on hostile input.
func PeekHeader(frame []byte) (Header, error) {
	if len(frame) < frameHeader {
		return Header{}, fmt.Errorf("%w: %d bytes, want at least %d", ErrBadFrame, len(frame), frameHeader)
	}
	if m := binary.LittleEndian.Uint32(frame[0:4]); m != frameMagic {
		return Header{}, fmt.Errorf("%w: magic %#08x", ErrBadFrame, m)
	}
	tier := Tier(frame[4])
	if tier >= numTiers {
		return Header{}, fmt.Errorf("%w: unknown tier %d", ErrBadFrame, uint8(tier))
	}
	flags := frame[5]
	if flags&^flagDelta != 0 {
		return Header{}, fmt.Errorf("%w: unknown flags %#02x", ErrBadFrame, flags)
	}
	if frame[6] != 0 || frame[7] != 0 {
		return Header{}, fmt.Errorf("%w: nonzero reserved bytes", ErrBadFrame)
	}
	dim := binary.LittleEndian.Uint32(frame[16:20])
	if dim == 0 || dim > maxFrameDim {
		return Header{}, fmt.Errorf("%w: dim %d out of range", ErrBadFrame, dim)
	}
	h := Header{
		Tier:   tier,
		Delta:  flags&flagDelta != 0,
		RefTag: binary.LittleEndian.Uint64(frame[8:16]),
		Dim:    int(dim),
	}
	if want := frameHeader + bodyLen(tier, h.Dim); len(frame) != want {
		return Header{}, fmt.Errorf("%w: %d bytes for tier %s dim %d, want %d", ErrBadFrame, len(frame), tier, h.Dim, want)
	}
	return h, nil
}

// DecodeFrame decodes one frame into dst (reused when its capacity allows,
// so steady-state decoding allocates nothing) and returns the decoded
// payload and parsed header. Delta frames require ref, the payload RefTag
// refers to, with matching length; the caller is responsible for checking
// RefTag against its bookkeeping before trusting ref. Every malformed input
// returns an error wrapping ErrBadFrame — never a panic.
func DecodeFrame(frame []byte, ref []float64, dst []float64) ([]float64, Header, error) {
	h, err := PeekHeader(frame)
	if err != nil {
		return dst[:0], Header{}, err
	}
	if h.Delta {
		if ref == nil {
			return dst[:0], Header{}, fmt.Errorf("%w: tag %#x", ErrRefMismatch, h.RefTag)
		}
		if len(ref) != h.Dim {
			return dst[:0], Header{}, fmt.Errorf("%w: reference has %d scalars, frame %d", ErrBadFrame, len(ref), h.Dim)
		}
	}
	if cap(dst) < h.Dim {
		dst = make([]float64, h.Dim)
	}
	dst = dst[:h.Dim]
	body := frame[frameHeader:]
	switch h.Tier {
	case TierIdentity:
		for i := range dst {
			dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[i*8:]))
		}
	case TierF32:
		for i := range dst {
			dst[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(body[i*4:])))
		}
	case TierI16:
		off := 0
		for lo := 0; lo < h.Dim; lo += quantBlock {
			hi := min(lo+quantBlock, h.Dim)
			scale := math.Float32frombits(binary.LittleEndian.Uint32(body[off:]))
			if !finite32(scale) {
				return dst[:0], Header{}, fmt.Errorf("%w: non-finite block scale", ErrBadFrame)
			}
			off += 4
			s := float64(scale)
			for i := lo; i < hi; i++ {
				q := int16(binary.LittleEndian.Uint16(body[off:]))
				off += 2
				dst[i] = float64(q) * s
			}
		}
	case TierI8:
		off := 0
		for lo := 0; lo < h.Dim; lo += quantBlock {
			hi := min(lo+quantBlock, h.Dim)
			scale := math.Float32frombits(binary.LittleEndian.Uint32(body[off:]))
			if !finite32(scale) {
				return dst[:0], Header{}, fmt.Errorf("%w: non-finite block scale", ErrBadFrame)
			}
			off += 4
			s := float64(scale)
			for i := lo; i < hi; i++ {
				dst[i] = float64(int8(body[off])) * s
				off++
			}
		}
	}
	if h.Delta {
		for i := range dst {
			dst[i] += ref[i]
		}
	}
	return dst, h, nil
}

func finite32(f float32) bool {
	return !math.IsNaN(float64(f)) && !math.IsInf(float64(f), 0)
}

// Encoder turns payloads into wire frames. It owns the per-client codec
// state — the delta reference, the error-feedback residual, and the frame
// buffer — so steady-state encoding allocates nothing. One Encoder per
// uplink client; a stateless downlink framer is an Encoder with Delta off.
// Not safe for concurrent use.
type Encoder struct {
	cfg CodecConfig

	ref    []float64
	refTag uint64
	hasRef bool

	residual []float64
	work     []float64
	buf      []byte
}

// NewEncoder returns an encoder for the given codec configuration.
func NewEncoder(cfg CodecConfig) *Encoder { return &Encoder{cfg: cfg} }

// Config returns the encoder's codec configuration.
func (e *Encoder) Config() CodecConfig { return e.cfg }

// SetRef installs the delta reference — the payload this encoder's client
// just installed, under the tag both ends agreed on. The payload is copied.
func (e *Encoder) SetRef(tag uint64, p []float64) {
	if cap(e.ref) < len(p) {
		e.ref = make([]float64, len(p))
	}
	e.ref = e.ref[:len(p)]
	copy(e.ref, p)
	e.refTag = tag
	e.hasRef = true
}

// ClearRef drops the delta reference; the next Encode is absolute. Called
// after an out-of-band model install (join, resync) or a reported mismatch.
func (e *Encoder) ClearRef() { e.hasRef = false }

// Encode frames one payload. The returned slice is the encoder's internal
// buffer: valid until the next Encode, so callers that retain frames must
// copy. Under the lossy tiers the error-feedback residual updates as a side
// effect — each accepted frame should reach the server exactly once.
func (e *Encoder) Encode(p []float64) []byte {
	dim := len(p)
	v := p
	staged := false
	var flags byte
	var tag uint64
	if e.cfg.Delta && e.hasRef && len(e.ref) == dim {
		if cap(e.work) < dim {
			e.work = make([]float64, dim)
		}
		e.work = e.work[:dim]
		for i, x := range p {
			e.work[i] = x - e.ref[i]
		}
		v, staged = e.work, true
		flags |= flagDelta
		tag = e.refTag
	}
	useEF := e.cfg.Tier.Lossy() && !e.cfg.NoErrorFeedback
	if useEF {
		if len(e.residual) != dim {
			if cap(e.residual) < dim {
				e.residual = make([]float64, dim)
			}
			e.residual = e.residual[:dim]
			clear(e.residual)
		}
		if !staged {
			// Absolute lossy encode: stage v into work so the residual can
			// be folded in without touching the caller's payload.
			if cap(e.work) < dim {
				e.work = make([]float64, dim)
			}
			e.work = e.work[:dim]
			copy(e.work, v)
			v = e.work
		}
		for i := range v {
			v[i] += e.residual[i]
		}
	}

	need := FrameLen(e.cfg.Tier, dim)
	if cap(e.buf) < need {
		e.buf = make([]byte, need)
	}
	e.buf = e.buf[:need]
	binary.LittleEndian.PutUint32(e.buf[0:4], frameMagic)
	e.buf[4] = byte(e.cfg.Tier)
	e.buf[5] = flags
	e.buf[6], e.buf[7] = 0, 0
	binary.LittleEndian.PutUint64(e.buf[8:16], tag)
	binary.LittleEndian.PutUint32(e.buf[16:20], uint32(dim))
	body := e.buf[frameHeader:]

	switch e.cfg.Tier {
	case TierIdentity:
		for i, x := range v {
			binary.LittleEndian.PutUint64(body[i*8:], math.Float64bits(x))
		}
	case TierF32:
		for i, x := range v {
			f := float32(x)
			binary.LittleEndian.PutUint32(body[i*4:], math.Float32bits(f))
			if useEF {
				e.residual[i] = x - float64(f)
			}
		}
	case TierI16:
		e.quantize(v, body, 32767, useEF, func(off int, q int32) int {
			binary.LittleEndian.PutUint16(body[off:], uint16(int16(q)))
			return off + 2
		})
	case TierI8:
		e.quantize(v, body, 127, useEF, func(off int, q int32) int {
			body[off] = byte(int8(q))
			return off + 1
		})
	}
	return e.buf
}

// quantize runs the per-block symmetric integer quantizer over v, writing
// one float32 scale plus the quantized values per block via put, and folds
// the round-off into the residual when error feedback is on. The dequantized
// value is recomputed exactly as the decoder will (float64(q) · float64(
// float32 scale)), so the residual tracks the receiver's view bit-exactly.
func (e *Encoder) quantize(v []float64, body []byte, qmax float64, useEF bool, put func(off int, q int32) int) {
	off := 0
	for lo := 0; lo < len(v); lo += quantBlock {
		hi := min(lo+quantBlock, len(v))
		maxAbs := 0.0
		for _, x := range v[lo:hi] {
			if a := math.Abs(x); a > maxAbs {
				maxAbs = a
			}
		}
		scale := float32(maxAbs / qmax)
		binary.LittleEndian.PutUint32(body[off:], math.Float32bits(scale))
		off += 4
		s := float64(scale)
		inv := 0.0
		if s > 0 {
			inv = 1 / s
		}
		for i := lo; i < hi; i++ {
			q := int32(math.RoundToEven(v[i] * inv))
			if float64(q) > qmax {
				q = int32(qmax)
			} else if float64(q) < -qmax {
				q = -int32(qmax)
			}
			off = put(off, q)
			if useEF {
				e.residual[i] = v[i] - float64(q)*s
			}
		}
	}
}

