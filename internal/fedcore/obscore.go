package fedcore

import "repro/internal/obs"

// Round-engine metrics, registered once into the default registry and served
// by pfrl-node's -metrics-addr endpoint. They moved here from internal/fed
// with their names intact when the round state machine was extracted: both
// federation paths now feed the same instruments, so an in-process run and a
// networked server report rounds identically.
var (
	coreReg = obs.DefaultRegistry()

	mRounds = coreReg.Counter("pfrl_fed_rounds_total",
		"federated aggregation rounds completed")
	mUploadDrops = coreReg.Counter("pfrl_fed_upload_drops_total",
		"client uploads lost to transient transport faults or corrupt lengths")
	mDownloadDrops = coreReg.Counter("pfrl_fed_download_drops_total",
		"client downloads lost to transient transport faults")
	gParticipants = coreReg.Gauge("pfrl_fed_participants",
		"uploads aggregated in the most recent round")
	hAggregate = coreReg.Histogram("pfrl_fed_aggregate_seconds",
		"server-side aggregation time per round", nil)

	// Async-mode instruments (AsyncEngine): staleness distribution of
	// submitted deltas, drop counters, and buffer state.
	hStaleness = coreReg.Histogram("pfrl_fed_staleness_rounds",
		"staleness (rounds behind the global) of submitted async deltas",
		[]float64{0, 1, 2, 4, 8, 16, 32})
	mStaleDrops = coreReg.Counter("pfrl_fed_staleness_drops_total",
		"async submissions dropped for exceeding the staleness bound")
	mDupDrops = coreReg.Counter("pfrl_fed_async_duplicate_drops_total",
		"async submissions dropped as (client, seq) duplicates")
	mAsyncCommits = coreReg.Counter("pfrl_fed_async_commits_total",
		"buffered async commits (aggregation rounds triggered by arrivals)")
	gBufferFill = coreReg.Gauge("pfrl_fed_async_buffer_fill",
		"accepted async arrivals currently buffered toward the next commit")

	// Data-plane wire instruments: measured frame bytes as produced by the
	// payload codec, not scalar-count estimates. Both federation paths count
	// through these, so the compression ratio on the endpoint reflects
	// whatever tier the run was configured with.
	mWireUpload = coreReg.Counter("pfrl_fed_wire_upload_bytes_total",
		"measured wire bytes of accepted client upload frames")
	mWireDownload = coreReg.Counter("pfrl_fed_wire_download_bytes_total",
		"measured wire bytes of delivered global download frames")
	gCompression = coreReg.Gauge("pfrl_fed_compression_ratio",
		"cumulative raw payload bytes over measured wire bytes (1.0 = uncompressed)")
)

// ObserveWireUpload counts n measured bytes of an accepted upload frame.
func ObserveWireUpload(n int) { mWireUpload.Add(uint64(n)) }

// ObserveWireDownload counts n measured bytes of a delivered download frame.
func ObserveWireDownload(n int) { mWireDownload.Add(uint64(n)) }

// SetCompressionRatio refreshes the cumulative compression-ratio gauge.
func SetCompressionRatio(r float64) { gCompression.Set(r) }
