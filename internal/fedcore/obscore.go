package fedcore

import "repro/internal/obs"

// Round-engine metrics, registered once into the default registry and served
// by pfrl-node's -metrics-addr endpoint. They moved here from internal/fed
// with their names intact when the round state machine was extracted: both
// federation paths now feed the same instruments, so an in-process run and a
// networked server report rounds identically.
var (
	coreReg = obs.DefaultRegistry()

	mRounds = coreReg.Counter("pfrl_fed_rounds_total",
		"federated aggregation rounds completed")
	mUploadDrops = coreReg.Counter("pfrl_fed_upload_drops_total",
		"client uploads lost to transient transport faults or corrupt lengths")
	mDownloadDrops = coreReg.Counter("pfrl_fed_download_drops_total",
		"client downloads lost to transient transport faults")
	gParticipants = coreReg.Gauge("pfrl_fed_participants",
		"uploads aggregated in the most recent round")
	hAggregate = coreReg.Histogram("pfrl_fed_aggregate_seconds",
		"server-side aggregation time per round", nil)
)
