package fedcore

import (
	"fmt"
	"testing"
	"time"
)

// meanAgg is a minimal FedAvg-style aggregator for engine tests (the real
// strategies live in internal/fed, which imports this package).
type meanAgg struct{}

func (meanAgg) Name() string { return "mean" }

func (meanAgg) Aggregate(uploads []Payload) ([]Payload, Payload) {
	dim := len(uploads[0])
	global := make(Payload, dim)
	for _, u := range uploads {
		for j, v := range u {
			global[j] += v
		}
	}
	inv := 1.0 / float64(len(uploads))
	for j := range global {
		global[j] *= inv
	}
	personalized := make([]Payload, len(uploads))
	for i := range personalized {
		personalized[i] = append(Payload(nil), global...)
	}
	return personalized, global
}

func mustEngine(t *testing.T, k, clients int, seed int64, initial Payload) *Engine {
	t.Helper()
	e, err := New(meanAgg{}, initial, Options{K: k, Clients: clients, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Payload{1}, Options{Clients: 2}); err == nil {
		t.Fatal("nil aggregator should fail")
	}
	if _, err := New(meanAgg{}, nil, Options{Clients: 2}); err == nil {
		t.Fatal("empty initial payload should fail")
	}
	if _, err := New(meanAgg{}, Payload{1}, Options{Clients: 0}); err == nil {
		t.Fatal("zero clients should fail")
	}
}

func TestKResolution(t *testing.T) {
	cases := []struct{ k, clients, want int }{
		{0, 4, 4},  // unset -> full participation
		{-3, 4, 4}, // negative -> full participation
		{9, 4, 4},  // oversized -> clamped to N
		{2, 4, 2},  // in range -> kept
		{1, 1, 1},  // singleton federation
	}
	for _, c := range cases {
		e := mustEngine(t, c.k, c.clients, 1, Payload{0})
		if e.K() != c.want {
			t.Fatalf("K=%d N=%d: resolved %d, want %d", c.k, c.clients, e.K(), c.want)
		}
	}
}

func TestDefaultK(t *testing.T) {
	for _, c := range []struct{ n, want int }{{1, 1}, {2, 1}, {3, 1}, {4, 2}, {8, 4}} {
		if got := DefaultK(c.n); got != c.want {
			t.Fatalf("DefaultK(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestSelectFullParticipationKeepsOrder(t *testing.T) {
	e := mustEngine(t, 4, 4, 7, Payload{0})
	cands := []int{3, 0, 2, 1}
	got := e.Select(cands)
	for i, v := range got {
		if v != cands[i] {
			t.Fatalf("full participation must keep candidate order: %v", got)
		}
	}
	// Fewer candidates than K clamps to the candidates, still in order.
	got = e.Select([]int{5, 4})
	if len(got) != 2 || got[0] != 5 || got[1] != 4 {
		t.Fatalf("clamped selection %v", got)
	}
}

func TestSelectSeededAndDistinct(t *testing.T) {
	a := mustEngine(t, 2, 5, 11, Payload{0})
	b := mustEngine(t, 2, 5, 11, Payload{0})
	cands := []int{0, 1, 2, 3, 4}
	for round := 0; round < 8; round++ {
		sa, sb := a.Select(cands), b.Select(cands)
		if len(sa) != 2 || len(sb) != 2 {
			t.Fatalf("round %d: sizes %d/%d", round, len(sa), len(sb))
		}
		seen := map[int]bool{}
		for i := range sa {
			if sa[i] != sb[i] {
				t.Fatalf("round %d: same seed diverged: %v vs %v", round, sa, sb)
			}
			if sa[i] < 0 || sa[i] > 4 || seen[sa[i]] {
				t.Fatalf("round %d: bad selection %v", round, sa)
			}
			seen[sa[i]] = true
		}
	}
}

func TestCompleteRoundAggregatesAndDelivers(t *testing.T) {
	e := mustEngine(t, 2, 3, 1, Payload{0, 0})
	var gotPersonalized map[int]Payload
	var gotGlobal Payload
	report := e.CompleteRound(
		[]Contribution{{ID: 0, Upload: Payload{1, 3}}, {ID: 2, Upload: Payload{3, 5}}},
		RoundStats{Expected: 3, Selected: 2, Arrived: 2},
		func(personalized map[int]Payload, global Payload) (int, time.Duration) {
			gotPersonalized = personalized
			gotGlobal = global
			return 1, 0
		},
	)
	want := Payload{2, 4}
	for j := range want {
		if gotGlobal[j] != want[j] || e.Global()[j] != want[j] {
			t.Fatalf("global %v, want %v", gotGlobal, want)
		}
	}
	if len(gotPersonalized) != 2 || gotPersonalized[0] == nil || gotPersonalized[2] == nil {
		t.Fatalf("personalized keyed wrong: %v", gotPersonalized)
	}
	if report.Round != 0 || report.Participants != 2 || report.DownloadDrops != 1 {
		t.Fatalf("report %+v", report)
	}
	if e.Round() != 1 || len(e.Reports()) != 1 {
		t.Fatalf("round state %d / %d reports", e.Round(), len(e.Reports()))
	}
}

func TestCompleteRoundFiltersCorruptLengths(t *testing.T) {
	e := mustEngine(t, 2, 2, 1, Payload{0, 0})
	report := e.CompleteRound(
		[]Contribution{{ID: 0, Upload: Payload{1}}, {ID: 1, Upload: Payload{4, 6}}},
		RoundStats{Expected: 2, Selected: 2, Arrived: 2, UploadDrops: 1},
		nil,
	)
	// The corrupt upload joins the adapter-reported drop; only client 1
	// participates, so the "mean" is its upload.
	if report.UploadDrops != 2 || report.Participants != 1 {
		t.Fatalf("report %+v", report)
	}
	g := e.Global()
	if g[0] != 4 || g[1] != 6 {
		t.Fatalf("global %v", g)
	}
}

func TestCompleteRoundZeroParticipantsCarriesGlobal(t *testing.T) {
	e := mustEngine(t, 2, 2, 1, Payload{7, 8})
	report := e.CompleteRound(nil, RoundStats{Expected: 2, Selected: 2, TimedOut: true}, nil)
	if report.Participants != 0 || !report.TimedOut {
		t.Fatalf("report %+v", report)
	}
	g := e.Global()
	if g[0] != 7 || g[1] != 8 {
		t.Fatalf("global should carry over, got %v", g)
	}
	if e.Round() != 1 {
		t.Fatal("a degenerate round still advances the counter")
	}
}

func TestJoinPolicyReturnsCopies(t *testing.T) {
	e := mustEngine(t, 1, 1, 1, Payload{1, 2})
	round, global := e.Join()
	if round != 0 {
		t.Fatalf("round %d", round)
	}
	global[0] = 99
	if e.Global()[0] != 1 {
		t.Fatal("Join must hand out a copy")
	}
	e.CompleteRound([]Contribution{{ID: 0, Upload: Payload{5, 5}}},
		RoundStats{Expected: 1, Selected: 1, Arrived: 1}, nil)
	round, global = e.Join()
	if round != 1 || global[0] != 5 {
		t.Fatalf("late joiner saw round %d global %v", round, global)
	}
}

func TestAggregatePartialZeroUploads(t *testing.T) {
	prev := Payload{1, 2, 3}
	personalized, global := AggregatePartial(meanAgg{}, nil, prev)
	if personalized != nil {
		t.Fatal("no personalized payloads expected")
	}
	if fmt.Sprint(global) != fmt.Sprint(prev) {
		t.Fatalf("global %v, want carry-over of %v", global, prev)
	}
	global[0] = 9
	if prev[0] != 1 {
		t.Fatal("carry-over must be a copy")
	}
}
