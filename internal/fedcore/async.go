package fedcore

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// Async round lifecycle (FedBuff-style buffered asynchronous aggregation).
//
// The synchronous engine barriers every round on a K-of-N quorum, so one
// slow client gates the fleet. AsyncEngine removes the barrier: clients
// submit deltas whenever their local segment finishes, each delta is
// staleness-weighted against the current global, and a commit (one
// aggregation round) fires every Buffer accepted arrivals instead of at a
// barrier. The round policy underneath — partial aggregation, corrupt-length
// filtering, late-join, reports, observability — is the unchanged sync
// Engine; AsyncEngine is a submission front-end over it.
//
// Staleness: a client reports the base round whose global it last installed;
// staleness τ = currentRound − base. A delta with τ over the configured
// bound is dropped into the round report (StaleDrops) rather than mixed.
// An accepted delta with τ > 0 is pre-mixed toward the current global with
// weight w(τ) = 1/(1+τ):
//
//	ũ = w·u + (1−w)·ψ_G
//
// so stale contributions pull the aggregate proportionally less. At τ = 0
// the blend is skipped entirely (not multiplied by w = 1), keeping fresh
// submissions bit-identical to the sync data path.
//
// Degradation pin: with StalenessBound = 0 and Buffer = K, every commit
// fires after exactly K fresh submissions, Select over the K-entry buffer is
// the identity (no RNG consumed), and the inner CompleteRound sees exactly
// the contributions the sync barrier would have — the async engine
// reproduces the sync engine bit-identically on the same seed, which the
// golden tests pin on both federation paths.

// AsyncOptions configures NewAsync.
type AsyncOptions struct {
	Options
	// StalenessBound is the maximum staleness (in rounds) a submission may
	// carry and still be mixed; anything staler is dropped into the round
	// report. Negative means unbounded. Zero accepts only fresh deltas —
	// the sync-degradation setting.
	StalenessBound int
	// Buffer is B, the number of accepted arrivals that triggers a commit.
	// <= 0 resolves to the engine's K.
	Buffer int
}

// SubmitStatus classifies the outcome of one AsyncEngine.Submit.
type SubmitStatus int

const (
	// SubmitAccepted: the delta was staleness-weighted and buffered (and
	// possibly committed, see SubmitResult.Committed).
	SubmitAccepted SubmitStatus = iota
	// SubmitDuplicate: a delta with this (client, seq) was already consumed —
	// a retransmit after a lost ACK. Dropped without touching the buffer.
	SubmitDuplicate
	// SubmitStale: the delta exceeded the staleness bound and was dropped
	// into the round report.
	SubmitStale
)

func (s SubmitStatus) String() string {
	switch s {
	case SubmitAccepted:
		return "accepted"
	case SubmitDuplicate:
		return "duplicate"
	case SubmitStale:
		return "stale"
	}
	return fmt.Sprintf("SubmitStatus(%d)", int(s))
}

// SubmitResult reports what one submission did.
type SubmitResult struct {
	Status    SubmitStatus
	Staleness int
	// Round is the engine round after this submission — post-commit when
	// the submission triggered one. Clients adopt it as their next base.
	Round int
	// Committed is the report of the commit this submission triggered, nil
	// otherwise.
	Committed *RoundReport
	// Personalized is this client's personalized payload when its delta was
	// part of the commit this submission triggered, nil otherwise.
	Personalized Payload
}

type asyncArrival struct {
	id     int
	upload Payload
}

// AsyncEngine is the buffered asynchronous submission front-end over Engine.
// All methods are safe for concurrent use; the lock order is
// AsyncEngine.mu → Engine.mu.
type AsyncEngine struct {
	e       *Engine
	deliver Delivery

	mu       sync.Mutex
	bound    int
	buffer   int
	expected int
	buf      []asyncArrival
	lastSeq  map[int]int
	// Window counters folded into the next commit's report, then reset.
	staleDrops  int
	dupDrops    int
	uploadDrops int
	// lastPersonal retains committed personalized payloads for participants
	// that were not the triggering submitter, to be served on their next
	// contact (push transports have no open reply to carry them). Entries
	// are copies: the engine's personalized payloads live in arena buffers
	// reused next round, and a taken entry may outlive several commits in
	// an RPC reply path.
	lastPersonal map[int]Payload

	// Pooled submission/commit scratch, reused across commits: the
	// staleness-mix buffers (one per buffered arrival, recycled when the
	// buffer drains) and the commit's candidate/contribution staging.
	mixPool    []Payload
	mixUsed    int
	scrCand    []int
	scrByID    map[int]Payload
	scrContrib []Contribution
}

// mixBuf hands out one pooled staleness-mix buffer of n scalars; buffers
// stay checked out until the next commit drains the arrival buffer. Caller
// holds a.mu.
func (a *AsyncEngine) mixBuf(n int) Payload {
	if a.mixUsed == len(a.mixPool) {
		a.mixPool = append(a.mixPool, make(Payload, n))
	}
	b := a.mixPool[a.mixUsed]
	if cap(b) < n {
		b = make(Payload, n)
		a.mixPool[a.mixUsed] = b
	}
	a.mixUsed++
	return b[:n]
}

// NewAsync builds an async engine over a fresh inner sync engine.
// The deliver callback runs at every commit, under both engine locks — it
// must not call back into either engine.
func NewAsync(agg Aggregator, initial Payload, opts AsyncOptions, deliver Delivery) (*AsyncEngine, error) {
	e, err := New(agg, initial, opts.Options)
	if err != nil {
		return nil, err
	}
	buffer := opts.Buffer
	if buffer <= 0 {
		buffer = e.K()
	}
	return &AsyncEngine{
		e:            e,
		deliver:      deliver,
		bound:        opts.StalenessBound,
		buffer:       buffer,
		expected:     opts.Clients,
		lastSeq:      make(map[int]int),
		lastPersonal: make(map[int]Payload),
	}, nil
}

// Engine exposes the inner sync engine for read access (Round, Global,
// Reports, PayloadLen) and adapter-level Select.
func (a *AsyncEngine) Engine() *Engine { return a.e }

// Buffer returns the resolved commit trigger B.
func (a *AsyncEngine) Buffer() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.buffer
}

// StalenessBound returns the configured bound (negative = unbounded).
func (a *AsyncEngine) StalenessBound() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.bound
}

// Join applies the shared late-join/resync policy and clears the joiner's
// dedup state, so a restarted client reusing its id is not blocked by the
// sequence numbers of its previous life.
func (a *AsyncEngine) Join(clientID int) (round int, global Payload) {
	a.mu.Lock()
	delete(a.lastSeq, clientID)
	delete(a.lastPersonal, clientID)
	a.mu.Unlock()
	return a.e.Join()
}

// TakePersonal returns and clears the retained personalized payload from the
// client's last committed round, if any — served on the client's next
// contact after a commit it participated in but did not trigger.
func (a *AsyncEngine) TakePersonal(clientID int) (Payload, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	p, ok := a.lastPersonal[clientID]
	if ok {
		delete(a.lastPersonal, clientID)
	}
	return p, ok
}

// AbsorbUploadDrops folds adapter-observed transport upload drops into the
// next commit's report, mirroring RoundStats.UploadDrops on the sync path.
func (a *AsyncEngine) AbsorbUploadDrops(n int) {
	a.mu.Lock()
	a.uploadDrops += n
	a.mu.Unlock()
}

// ErrBadUpload rejects a submission whose payload length does not match the
// global. The submission is not consumed: a retry with a well-formed payload
// and the same seq will succeed.
var ErrBadUpload = errors.New("fedcore: async upload length mismatch")

// Submit applies one client delta. seq is the client's monotone submission
// counter (dedup key — retransmits carry the same seq); base is the engine
// round whose global the client last installed (staleness anchor). A commit
// fires inside Submit when the buffer reaches B accepted arrivals.
func (a *AsyncEngine) Submit(clientID, seq, base int, upload Payload) (SubmitResult, error) {
	a.mu.Lock()
	defer a.mu.Unlock()

	round := a.e.Round()
	staleness := round - base
	if staleness < 0 {
		staleness = 0
	}
	res := SubmitResult{Staleness: staleness, Round: round}

	if last, ok := a.lastSeq[clientID]; ok && seq <= last {
		a.dupDrops++
		mDupDrops.Inc()
		res.Status = SubmitDuplicate
		a.emitDelta(clientID, round, staleness, res.Status)
		return res, nil
	}
	if len(upload) != a.e.PayloadLen() {
		// Not consumed: lastSeq is untouched so a rebuilt retry passes.
		a.uploadDrops++
		return res, ErrBadUpload
	}
	if a.bound >= 0 && staleness > a.bound {
		a.staleDrops++
		a.lastSeq[clientID] = seq
		mStaleDrops.Inc()
		hStaleness.Observe(float64(staleness))
		res.Status = SubmitStale
		a.emitDelta(clientID, round, staleness, res.Status)
		return res, nil
	}

	a.lastSeq[clientID] = seq
	hStaleness.Observe(float64(staleness))
	// The arrival is staged into a pooled buffer either way, so Submit never
	// retains the caller's slice (adapters reuse their decode buffers across
	// submissions).
	mixed := a.mixBuf(len(upload))
	if staleness > 0 {
		// ũ = w·u + (1−w)·ψ_G with w = 1/(1+τ); skipped at τ = 0 so fresh
		// submissions stay bit-identical to the sync data path.
		w := 1.0 / (1.0 + float64(staleness))
		global := a.e.Global()
		for i, u := range upload {
			mixed[i] = w*u + (1-w)*global[i]
		}
	} else {
		copy(mixed, upload)
	}
	a.buf = append(a.buf, asyncArrival{id: clientID, upload: mixed})
	gBufferFill.Set(float64(len(a.buf)))
	res.Status = SubmitAccepted
	a.emitDelta(clientID, round, staleness, res.Status)

	if len(a.buf) >= a.buffer {
		report := a.commitLocked()
		res.Committed = &report
		if p, ok := a.lastPersonal[clientID]; ok {
			res.Personalized = p
			delete(a.lastPersonal, clientID)
		}
	}
	res.Round = a.e.Round()
	return res, nil
}

// Flush force-commits a partially filled buffer (end of training / shutdown)
// so trailing deltas are not lost. Returns the report, or ok=false when the
// buffer was empty.
func (a *AsyncEngine) Flush() (RoundReport, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.buf) == 0 {
		return RoundReport{}, false
	}
	return a.commitLocked(), true
}

// commitLocked closes one async round over the buffered arrivals: commit-time
// Select draws the participants (identity order — and no RNG consumed — when
// K covers the whole buffer), the inner CompleteRound aggregates, and the
// window drop counters are folded into the report. Caller holds a.mu.
func (a *AsyncEngine) commitLocked() RoundReport {
	candidates := a.scrCand[:0]
	if a.scrByID == nil {
		a.scrByID = make(map[int]Payload, len(a.buf))
	}
	clear(a.scrByID)
	byID := a.scrByID
	for _, arr := range a.buf {
		candidates = append(candidates, arr.id)
		byID[arr.id] = arr.upload
	}
	a.scrCand = candidates
	participants := a.e.Select(candidates)
	contribs := a.scrContrib[:0]
	for _, id := range participants {
		contribs = append(contribs, Contribution{ID: id, Upload: byID[id]})
	}
	a.scrContrib = contribs
	stats := RoundStats{
		Expected:    a.expected,
		Selected:    len(participants),
		Arrived:     len(a.buf),
		UploadDrops: a.uploadDrops,
		StaleDrops:  a.staleDrops,
		DupDrops:    a.dupDrops,
	}
	report := a.e.CompleteRound(contribs, stats, func(personalized map[int]Payload, global Payload) (int, time.Duration) {
		for id, p := range personalized {
			// Copy out of the arena: the retained payload may be taken by
			// an RPC reply long after the arena buffer is rewritten.
			a.lastPersonal[id] = append(Payload(nil), p...)
		}
		if a.deliver == nil {
			return 0, 0
		}
		return a.deliver(personalized, global)
	})
	a.buf = a.buf[:0]
	a.mixUsed = 0
	a.uploadDrops, a.staleDrops, a.dupDrops = 0, 0, 0
	gBufferFill.Set(0)
	mAsyncCommits.Inc()
	return report
}

func (a *AsyncEngine) emitDelta(clientID, round, staleness int, status SubmitStatus) {
	if !obs.Active() {
		return
	}
	obs.Emit(obs.E("delta").At(clientID, round, -1).
		F("staleness", float64(staleness)).
		F("buffer_fill", float64(len(a.buf))).
		S("status", status.String()))
}
