package fedcore

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Parallel tree-reduce over payload columns.
//
// Aggregation is elementwise: every output scalar depends on one column of
// the K uploads and nothing else, so the dimension axis shards perfectly.
// The workers split [0, dim) into contiguous column chunks; within a chunk
// every element accumulates over the uploads in fixed order — a left-deep
// reduction tree whose shape does not depend on the worker count. Because
// float addition order per element never changes, the result is
// bit-identical at any fan-out, which is what lets the degradation pin
// ("single worker reproduces today's runs") hold trivially for every worker
// count, not just one. This mirrors internal/tensor's parallelRows
// machinery (same atomic worker knob, same contiguous-chunk split, same
// serial fast path below a work threshold).

// aggParallelThreshold is the minimum number of scalar operations
// (participants × dim for a reduce) below which fanning out costs more in
// goroutine overhead than it saves; the small payloads of the unit-test
// federations stay on the serial path.
const aggParallelThreshold = 64 * 1024

// aggWorkers caps the aggregation fan-out width. Zero (the default) means
// "GOMAXPROCS at call time". Accessed atomically so concurrent engines can
// read it without a lock.
var aggWorkers atomic.Int64

// SetAggWorkers sets the aggregation worker count and returns the previous
// setting. n <= 0 restores the GOMAXPROCS-following default. Results are
// bit-identical for any worker count (the reduction tree has a fixed shape
// per element); the knob only trades wall-clock for cores.
func SetAggWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(aggWorkers.Swap(int64(n)))
}

// AggWorkers returns the effective aggregation fan-out width.
func AggWorkers() int {
	if n := int(aggWorkers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// SerialChunk reports whether ParallelChunks(n, work, ·) would run entirely
// on the caller's goroutine. Hot paths branch on it before building their
// chunk closure: a closure passed across a function boundary is heap-
// allocated even when it only ever runs serially, and the zero-alloc
// steady-state guarantee covers exactly the serial regime this predicate
// selects.
func SerialChunk(n, work int) bool {
	workers := AggWorkers()
	if workers > n {
		workers = n
	}
	return workers <= 1 || work < aggParallelThreshold
}

// ParallelChunks runs fn over [0, n), split into contiguous chunks across
// up to AggWorkers goroutines. work estimates the total scalar operations;
// below the fan-out threshold (or with one worker) fn runs serially on the
// caller's goroutine, keeping the fast path allocation-free. fn must be
// safe to run concurrently on disjoint ranges.
func ParallelChunks(n, work int, fn func(lo, hi int)) {
	workers := AggWorkers()
	if workers > n {
		workers = n
	}
	if SerialChunk(n, work) {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := min(lo+chunk, n)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// checkUploads validates a reduce's inputs: at least one upload, all of the
// expected length. Mirrors the seed-era meanPayload panics.
func checkUploads(uploads []Payload, dim int) {
	if len(uploads) == 0 {
		panic("fedcore: aggregate of zero uploads")
	}
	for i, u := range uploads {
		if len(u) != dim {
			panic(fmt.Sprintf("fedcore: upload %d has %d params, want %d", i, len(u), dim))
		}
	}
}

// ReduceMeanInto computes dst = mean(uploads) with dst fully overwritten.
// The accumulation order per element is upload order starting from zero —
// exactly the seed-era sequential loop — so the result is bit-identical to
// it at any worker count. dst must not alias any upload.
func ReduceMeanInto(dst Payload, uploads []Payload) {
	dim := len(dst)
	checkUploads(uploads, dim)
	inv := 1.0 / float64(len(uploads))
	if SerialChunk(dim, len(uploads)*dim) {
		reduceMeanChunk(dst, uploads, inv, 0, dim)
		return
	}
	ParallelChunks(dim, len(uploads)*dim, func(lo, hi int) {
		reduceMeanChunk(dst, uploads, inv, lo, hi)
	})
}

// reduceMeanChunk accumulates the [lo, hi) columns of the mean in upload
// order from zero — the shared kernel of both the serial and parallel paths,
// so they are bit-identical by construction.
func reduceMeanChunk(dst Payload, uploads []Payload, inv float64, lo, hi int) {
	out := dst[lo:hi]
	clear(out)
	for _, u := range uploads {
		for j, v := range u[lo:hi] {
			out[j] += v
		}
	}
	for j := range out {
		out[j] *= inv
	}
}

// WeightedMixInto computes dst[i] = Σ_j w[i][j]·uploads[j] for every row i
// (the attention/static-weights personalization mix, Eq. 21). Rows shard
// across workers; per element the j-accumulation order is fixed, matching
// the seed-era loops bit-identically. Each dst[i] must be dim long and must
// not alias any upload.
func WeightedMixInto(dst []Payload, w [][]float64, uploads []Payload) {
	k := len(uploads)
	if len(dst) != k || len(w) != k {
		panic(fmt.Sprintf("fedcore: weighted mix of %d uploads with %d outputs, %d weight rows", k, len(dst), len(w)))
	}
	if k == 0 {
		return
	}
	dim := len(uploads[0])
	checkUploads(uploads, dim)
	if SerialChunk(k, k*k*dim) {
		weightedMixChunk(dst, w, uploads, k, dim, 0, k)
		return
	}
	ParallelChunks(k, k*k*dim, func(lo, hi int) {
		weightedMixChunk(dst, w, uploads, k, dim, lo, hi)
	})
}

// weightedMixChunk computes output rows [lo, hi) of the mix with a fixed
// j-accumulation order — the shared kernel of both paths.
func weightedMixChunk(dst []Payload, w [][]float64, uploads []Payload, k, dim, lo, hi int) {
	for i := lo; i < hi; i++ {
		if len(w[i]) != k {
			panic("fedcore: weight matrix not square")
		}
		p := dst[i][:dim]
		clear(p)
		for j := 0; j < k; j++ {
			wij := w[i][j]
			for d, v := range uploads[j][:dim] {
				p[d] += wij * v
			}
		}
	}
}

// PayloadArena owns reusable aggregation buffers so steady-state rounds
// allocate nothing: the personalized payload views, their backing slab, and
// the global output. Buffers grow to the high-water mark and are reused
// across rounds. Everything an arena hands out is valid only until its next
// use — callers that retain results across rounds must copy (the engine
// copies the global; the adapters copy or immediately install the
// personalized payloads).
type PayloadArena struct {
	views  []Payload
	slab   []float64
	global Payload
}

// Global returns the arena's dim-length global output buffer (contents
// undefined).
func (a *PayloadArena) Global(dim int) Payload {
	if cap(a.global) < dim {
		a.global = make(Payload, dim)
	}
	a.global = a.global[:dim]
	return a.global
}

// Payloads returns k distinct dim-length views carved from the arena slab
// (contents undefined).
func (a *PayloadArena) Payloads(k, dim int) []Payload {
	if need := k * dim; cap(a.slab) < need {
		a.slab = make([]float64, need)
	}
	views := a.viewSlice(k)
	for i := range views {
		views[i] = a.slab[i*dim : (i+1)*dim : (i+1)*dim]
	}
	return views
}

// Alias returns k views that all reference p — the zero-copy personalized
// set for aggregators whose participants receive identical payloads
// (FedAvg, momentum). Callers must treat the views as read-only.
func (a *PayloadArena) Alias(k int, p Payload) []Payload {
	views := a.viewSlice(k)
	for i := range views {
		views[i] = p
	}
	return views
}

func (a *PayloadArena) viewSlice(k int) []Payload {
	if cap(a.views) < k {
		a.views = make([]Payload, k)
	}
	a.views = a.views[:k]
	return a.views
}
