package fed

import "math/rand"

// SecureFedAvg simulates pairwise-masked secure aggregation (Bonawitz et
// al., CCS 2017) on top of plain averaging: every pair of participants
// (i, j) shares a seed; client i adds PRG(seed_ij) to its upload and client
// j subtracts the same stream, so individual uploads look random to the
// honest-but-curious server of §3.4 while the sum — and therefore the
// FedAvg mean — is unchanged up to floating-point round-off.
//
// Note the inherent tension this makes concrete: PFRL-DM's attention
// aggregator needs the *individual* critics to compute similarity weights,
// so it cannot run under sum-only secure aggregation. The paper's threat
// model (§3.4) assumes an honest-but-curious server that may see models but
// not raw data; SecureFedAvg shows what is available when even models must
// stay hidden.
type SecureFedAvg struct {
	// Seed derives the pairwise mask seeds.
	Seed int64
	// MaskScale is the standard deviation of the Gaussian masks
	// (default 10; large relative to parameter values so masked uploads
	// carry no usable signal).
	MaskScale float64

	// LastMasked retains the most recent masked uploads for inspection and
	// tests (a real deployment would never expose these anywhere else).
	LastMasked []Payload
}

// NewSecureFedAvg returns a secure-averaging aggregator.
func NewSecureFedAvg(seed int64) *SecureFedAvg {
	return &SecureFedAvg{Seed: seed, MaskScale: 10}
}

// Name implements Aggregator.
func (*SecureFedAvg) Name() string { return "secure-fedavg" }

// Aggregate implements Aggregator: it masks each upload with the pairwise
// streams (simulating what the clients would send), averages the masked
// payloads, and returns the same global to every participant.
func (s *SecureFedAvg) Aggregate(uploads []Payload) ([]Payload, Payload) {
	k := len(uploads)
	if k == 0 {
		panic("fed: aggregate of zero uploads")
	}
	dim := len(uploads[0])
	scale := s.MaskScale
	if scale <= 0 {
		scale = 10
	}

	masked := make([]Payload, k)
	for i := range masked {
		masked[i] = append(Payload(nil), uploads[i]...)
	}
	// Pairwise masks: client i adds, client j (> i) subtracts.
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			prg := rand.New(rand.NewSource(s.Seed ^ (int64(i)<<32 | int64(j))))
			for d := 0; d < dim; d++ {
				m := scale * prg.NormFloat64()
				masked[i][d] += m
				masked[j][d] -= m
			}
		}
	}
	s.LastMasked = masked

	// The server only ever touches the masked payloads.
	global := meanPayload(masked)
	personalized := make([]Payload, k)
	for i := range personalized {
		personalized[i] = append(Payload(nil), global...)
	}
	return personalized, global
}
