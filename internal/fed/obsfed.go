package fed

import "repro/internal/obs"

// Client-side training metrics, registered once into the default registry
// and served by pfrl-node's -metrics-addr endpoint. All instruments are
// lock-free atomics; with Parallel clients the histograms record per-call
// durations across goroutines (a work breakdown, not a timeline). The
// round-level instruments (pfrl_fed_rounds_total and friends) live with the
// round engine in internal/fedcore.
var (
	obsReg = obs.DefaultRegistry()

	mEpisodes = obsReg.Counter("pfrl_episodes_total",
		"training episodes completed across all clients")
	hRollout = obsReg.Histogram("pfrl_rollout_seconds",
		"wall-clock time of one episode rollout", nil)
	hUpdate = obsReg.Histogram("pfrl_update_seconds",
		"wall-clock time of one agent update", nil)
)
