package fed

import "repro/internal/obs"

// Federation-layer metrics, registered once into the default registry and
// served by pfrl-node's -metrics-addr endpoint. All instruments are
// lock-free atomics; with Parallel clients the histograms record per-call
// durations across goroutines (a work breakdown, not a timeline).
var (
	obsReg = obs.DefaultRegistry()

	mEpisodes = obsReg.Counter("pfrl_episodes_total",
		"training episodes completed across all clients")
	hRollout = obsReg.Histogram("pfrl_rollout_seconds",
		"wall-clock time of one episode rollout", nil)
	hUpdate = obsReg.Histogram("pfrl_update_seconds",
		"wall-clock time of one agent update", nil)

	mRounds = obsReg.Counter("pfrl_fed_rounds_total",
		"federated aggregation rounds completed")
	mUploadDrops = obsReg.Counter("pfrl_fed_upload_drops_total",
		"client uploads lost to transient transport faults or corrupt lengths")
	mDownloadDrops = obsReg.Counter("pfrl_fed_download_drops_total",
		"client downloads lost to transient transport faults")
	gParticipants = obsReg.Gauge("pfrl_fed_participants",
		"uploads aggregated in the most recent round")
	hAggregate = obsReg.Histogram("pfrl_fed_aggregate_seconds",
		"server-side aggregation time per round", nil)
)
