package fed

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/fedcore"
	"repro/internal/obs"
)

// RoundReport is the engine's per-round participation record — the
// partial-participation bookkeeping surfaced on core.TrainResult.
type RoundReport = fedcore.RoundReport

// Federation is the in-process adapter over the shared round engine
// (internal/fedcore): it drives Algorithm 1 by interleaving local training
// segments with engine rounds, pulling uploads from the engine's selected
// clients and delivering the results over its Transport. All round policy —
// seeded K-of-N selection, partial aggregation, report bookkeeping, the
// late-join rule — lives in the engine; this type owns only the data plane.
type Federation struct {
	Clients   []*Client
	Transport Transport
	Agg       Aggregator

	// Engine is the shared round state machine; the networked fednet.Server
	// wraps the same type, which is what keeps the two paths bit-identical.
	Engine *fedcore.Engine

	// Async is the buffered asynchronous submission front-end when the
	// federation runs in async mode (Options.Async), nil in sync mode. In
	// async mode Engine is Async.Engine().
	Async *fedcore.AsyncEngine

	// K is the number of clients that participate in each aggregation
	// (K ≤ N; the paper uses K = N/2 for PFRL-DM), as resolved by the
	// engine.
	K int
	// CommEvery is the communication frequency: episodes of local training
	// between aggregations.
	CommEvery int
	// Parallel trains clients in concurrent goroutines within a segment.
	// Results are identical either way: clients are independent and each
	// agent owns its RNG.
	Parallel bool

	// Global mirrors the engine's stored payload ψ_G (or the full model for
	// actor+critic transports) after each round, delivered to
	// non-participants and late joiners.
	Global Payload

	// Rounds mirrors the engine's completed-round count.
	Rounds int

	// Reports mirrors the engine's participation records.
	Reports []RoundReport

	comm CommStats

	// Wire codec state. Every payload crossing the in-process "wire" is
	// framed and decoded through the same fedcore codec the networked path
	// uses, so CommStats measures real frame bytes and the lossy tiers
	// affect training identically on both paths. upEnc holds one uplink
	// encoder per client (delta reference + error-feedback residual);
	// downEnc is the shared stateless downlink framer. refs/refTags are the
	// server-side delta references (the last model each client installed);
	// the remaining fields are pooled scratch so steady-state rounds
	// allocate nothing.
	codec   fedcore.CodecConfig
	upEnc   []*fedcore.Encoder
	downEnc *fedcore.Encoder
	refs    []Payload
	refTags []uint64
	refSeq  uint64
	upBufs  []Payload
	downBuf Payload

	// Downlink frame cache: with FedAvg/Momentum every participant receives
	// the same payload (the aggregators alias it), so one encode serves the
	// whole delivery loop. Keyed by payload identity, reset per commit.
	downPtr   *float64
	downLen   int
	downFrame int

	scrAll      []int
	scrContribs []fedcore.Contribution

	// Async-mode bookkeeping: per-client monotone submission counters (the
	// dedup key), per-client base rounds (the round whose global each client
	// last installed — the staleness anchor), the number of committed rounds
	// (mirrors Engine.Round without locking inside deliveries), and the
	// error a delivery callback surfaced.
	clientSeq  []int
	clientBase []int
	committed  int
	deliverErr error
}

// Options configures New.
type Options struct {
	K         int
	CommEvery int
	Seed      int64
	Parallel  bool

	// Async switches the federation to buffered asynchronous aggregation:
	// selected clients' deltas are submitted to a fedcore.AsyncEngine with
	// staleness-weighted mixing, and commits fire every Buffer arrivals
	// instead of at the segment barrier.
	Async bool
	// StalenessBound caps accepted staleness in async mode (negative =
	// unbounded). Zero accepts only fresh deltas — with Buffer = K this
	// degrades to the sync engine bit-identically.
	StalenessBound int
	// Buffer is the async commit trigger B; <= 0 resolves to K.
	Buffer int

	// Codec selects the payload wire codec. The zero value (identity tier,
	// absolute encoding) frames payloads bit-exactly — the degradation-pin
	// setting.
	Codec fedcore.CodecConfig
}

// New assembles a federation and synchronizes all clients with the initial
// global model (the server's ψ_G^(0) in Algorithm 1, taken from client 0's
// initialization so the whole federation shares a starting point, as in
// standard FL).
func New(clients []*Client, transport Transport, agg Aggregator, opts Options) (*Federation, error) {
	if len(clients) == 0 {
		return nil, fmt.Errorf("fed: no clients")
	}
	commEvery := opts.CommEvery
	if commEvery <= 0 {
		commEvery = 1
	}
	initial, err := transport.Upload(clients[0])
	if err != nil {
		return nil, fmt.Errorf("fed: initial upload from client %d: %w", clients[0].ID, err)
	}
	coreOpts := fedcore.Options{
		K:       opts.K,
		Clients: len(clients),
		Seed:    opts.Seed,
	}
	f := &Federation{
		Clients:   clients,
		Transport: transport,
		Agg:       agg,
		CommEvery: commEvery,
		Parallel:  opts.Parallel,
		codec:     opts.Codec,
	}
	// Downlink frames are absolute and stateless (no residual) so one
	// encoder serves every client and identical payloads encode once.
	f.downEnc = fedcore.NewEncoder(fedcore.CodecConfig{Tier: opts.Codec.Tier, NoErrorFeedback: true})
	f.upEnc = make([]*fedcore.Encoder, len(clients))
	for i := range f.upEnc {
		f.upEnc[i] = fedcore.NewEncoder(opts.Codec)
	}
	f.refs = make([]Payload, len(clients))
	f.refTags = make([]uint64, len(clients))
	f.upBufs = make([]Payload, len(clients))
	if opts.Async {
		async, err := fedcore.NewAsync(agg, initial, fedcore.AsyncOptions{
			Options:        coreOpts,
			StalenessBound: opts.StalenessBound,
			Buffer:         opts.Buffer,
		}, f.deliverCommit)
		if err != nil {
			return nil, fmt.Errorf("fed: %w", err)
		}
		f.Async = async
		f.Engine = async.Engine()
		f.clientSeq = make([]int, len(clients))
		f.clientBase = make([]int, len(clients))
	} else {
		engine, err := fedcore.New(agg, initial, coreOpts)
		if err != nil {
			return nil, fmt.Errorf("fed: %w", err)
		}
		f.Engine = engine
	}
	f.K = f.Engine.K()
	f.Global = f.Engine.Global()
	for _, c := range clients {
		if err := transport.Download(c, f.Global); err != nil {
			return nil, fmt.Errorf("fed: initial sync to client %d: %w", c.ID, err)
		}
	}
	return f, nil
}

// trainSegment runs CommEvery local episodes on every client.
func (f *Federation) trainSegment(episodes int) {
	if !f.Parallel {
		for _, c := range f.Clients {
			c.TrainEpisodes(episodes)
		}
		return
	}
	var wg sync.WaitGroup
	for _, c := range f.Clients {
		wg.Add(1)
		go func(c *Client) {
			defer wg.Done()
			c.TrainEpisodes(episodes)
		}(c)
	}
	wg.Wait()
}

// RunRound performs one full round: a local-training segment followed by an
// engine round over K selected participants. This path pulls: only the
// engine's selected clients upload, so Arrived ≤ Selected in the report.
// Participants receive their personalized payloads; every other client
// receives the stored global model (Algorithm 1, lines 13–15).
//
// Transient transport faults (ErrInjectedFault) do not fail the round: a
// client whose upload drops simply does not participate (corrupt-length
// uploads are filtered by the engine), and a client whose download drops
// keeps its previous parameters until the next round. Any other transport
// error — a misconfigured client, say — surfaces as the returned error; a
// fatal upload error aborts before the engine round, while a fatal download
// error is reported after the round commits (the aggregation itself already
// happened).
func (f *Federation) RunRound() error {
	if f.Async != nil {
		return f.runRoundAsync()
	}
	f.trainSegment(f.CommEvery)

	selected := f.Engine.Select(f.allClients())
	stats := fedcore.RoundStats{Expected: len(f.Clients), Selected: len(selected)}
	var uploadDur time.Duration
	contribs := f.scrContribs[:0]
	for _, idx := range selected {
		callStart := time.Now()
		u, err := f.Transport.Upload(f.Clients[idx])
		uploadDur += time.Since(callStart)
		switch {
		case errors.Is(err, ErrInjectedFault):
			stats.UploadDrops++
			continue
		case err != nil:
			return fmt.Errorf("fed: round %d upload from client %d: %w", f.Rounds, f.Clients[idx].ID, err)
		}
		contribs = append(contribs, fedcore.Contribution{ID: idx, Upload: f.recvUpload(idx, u)})
		f.comm.UploadScalars += int64(len(u))
	}
	f.scrContribs = contribs
	stats.Arrived = len(contribs)

	f.deliverErr = nil
	f.Engine.CompleteRound(contribs, stats, func(personalized map[int]fedcore.Payload, global fedcore.Payload) (int, time.Duration) {
		drops, dlDur := f.deliverCommit(personalized, global)
		return drops, uploadDur + dlDur
	})

	f.syncMirrors()
	return f.deliverErr
}

// runRoundAsync is the async-mode round body: a local-training segment
// followed by staleness-weighted submissions from the K selected clients.
// Selection still runs per segment on the engine's RNG (the same stream the
// sync path consumes — part of the degradation pin), but commits fire inside
// Submit whenever the engine's buffer reaches B accepted arrivals, so one
// segment may commit zero rounds (after upload drops) or the buffer may
// carry arrivals across segments when B ≠ K.
func (f *Federation) runRoundAsync() error {
	f.trainSegment(f.CommEvery)

	selected := f.Engine.Select(f.allClients())
	f.deliverErr = nil
	for _, idx := range selected {
		callStart := time.Now()
		u, err := f.Transport.Upload(f.Clients[idx])
		obs.GlobalTimers().Add(obs.PhaseComm, time.Since(callStart))
		switch {
		case errors.Is(err, ErrInjectedFault):
			f.Async.AbsorbUploadDrops(1)
			continue
		case err != nil:
			return fmt.Errorf("fed: round %d upload from client %d: %w", f.Rounds, f.Clients[idx].ID, err)
		}
		f.comm.UploadScalars += int64(len(u))
		f.clientSeq[idx]++
		// A length-mismatch reject (ErrBadUpload) is already counted by the
		// engine; the client simply sits this round out.
		_, _ = f.Async.Submit(idx, f.clientSeq[idx], f.clientBase[idx], f.recvUpload(idx, u))
		if f.deliverErr != nil {
			break
		}
	}
	f.syncMirrors()
	return f.deliverErr
}

// allClients returns the pooled 0..N-1 selection candidate slice.
func (f *Federation) allClients() []int {
	all := f.scrAll[:0]
	for i := range f.Clients {
		all = append(all, i)
	}
	f.scrAll = all
	return all
}

// recvUpload moves one upload across the simulated wire: the client's
// encoder frames it (delta + error feedback per the codec config), the frame
// bytes are accounted, and the server-side decode — against the delta
// reference both ends agreed on at the last delivery — becomes the
// contribution the engine aggregates. Under the identity tier the decode is
// bit-exact, which is the degradation pin. The returned payload is the
// pooled per-client decode buffer, valid until this client's next upload.
func (f *Federation) recvUpload(idx int, u Payload) Payload {
	if len(u) == 0 {
		// Nothing to frame; the engine rejects zero-length uploads itself.
		return u
	}
	frame := f.upEnc[idx].Encode(u)
	f.comm.UploadBytes += int64(len(frame))
	fedcore.ObserveWireUpload(len(frame))
	dec, h, err := fedcore.DecodeFrame(frame, f.refs[idx], f.upBufs[idx])
	if err == nil && h.Delta && h.RefTag != f.refTags[idx] {
		err = fedcore.ErrRefMismatch
	}
	if err != nil {
		// Both codec ends live in this struct and update in lockstep, so a
		// decode failure here is a bug, not a network condition.
		panic(fmt.Sprintf("fed: codec desync on client %d upload: %v", idx, err))
	}
	f.upBufs[idx] = dec
	return dec
}

// sendDown moves one payload across the simulated downlink: an absolute
// stateless frame, cached by payload identity so the aggregators' aliased
// personalized payloads (FedAvg, Momentum — every participant gets the same
// model) encode once per commit. Returns the client-side decode and the
// frame length; the decode is the shared downlink buffer, valid until the
// next distinct payload is framed.
func (f *Federation) sendDown(payload Payload) (Payload, int) {
	if len(payload) == 0 {
		return payload, 0
	}
	if f.downPtr == &payload[0] && f.downLen == len(payload) {
		return f.downBuf, f.downFrame
	}
	frame := f.downEnc.Encode(payload)
	dec, _, err := fedcore.DecodeFrame(frame, nil, f.downBuf)
	if err != nil {
		panic(fmt.Sprintf("fed: codec desync on downlink: %v", err))
	}
	f.downBuf = dec
	f.downPtr, f.downLen, f.downFrame = &payload[0], len(payload), len(frame)
	return dec, len(frame)
}

// deliverCommit distributes one committed round's results: participants
// receive their personalized payloads, everyone else the new global. It is
// the Delivery callback for both modes (the sync path wraps it to fold
// upload time into the round's comm duration) and runs under the engine
// locks, so it must not call back into the engine — the committed-round
// counter mirrors Engine.Round for that reason.
func (f *Federation) deliverCommit(personalized map[int]fedcore.Payload, global fedcore.Payload) (int, time.Duration) {
	f.committed++
	f.downPtr = nil // arena buffers are rewritten per commit; drop the cache
	drops := 0
	var commDur time.Duration
	for idx, c := range f.Clients {
		c.CriticLossPre = append(c.CriticLossPre, c.probeCriticLoss())
		payload, ok := personalized[idx]
		if !ok {
			payload = global
		}
		wire, frameLen := f.sendDown(payload)
		callStart := time.Now()
		err := f.Transport.Download(c, wire)
		commDur += time.Since(callStart)
		switch {
		case errors.Is(err, ErrInjectedFault):
			drops++
		case err != nil:
			f.deliverErr = fmt.Errorf("fed: round %d download to client %d: %w", f.committed-1, c.ID, err)
			return drops, commDur
		default:
			f.comm.DownloadScalars += int64(len(payload))
			f.comm.DownloadBytes += int64(frameLen)
			fedcore.ObserveWireDownload(frameLen)
			if f.clientBase != nil {
				// The client installed this commit's global: its next delta
				// is fresh relative to round f.committed.
				f.clientBase[idx] = f.committed
			}
			if f.codec.Delta {
				// Both ends saw this install: it becomes the client's next
				// delta reference, under a fresh tag.
				f.refSeq++
				f.upEnc[idx].SetRef(f.refSeq, wire)
				f.refs[idx] = append(f.refs[idx][:0], wire...)
				f.refTags[idx] = f.refSeq
			}
		}
		c.CriticLossPost = append(c.CriticLossPost, c.probeCriticLoss())
	}
	fedcore.SetCompressionRatio(f.comm.CompressionRatio())
	return drops, commDur
}

// syncMirrors refreshes the exported engine mirrors after rounds commit.
func (f *Federation) syncMirrors() {
	f.Global = f.Engine.Global()
	f.Rounds = f.Engine.Round()
	f.Reports = f.Engine.Reports()
	f.comm.Rounds = f.Rounds
}

// RunEpisodes trains for the given number of episodes per client,
// aggregating every CommEvery episodes. A trailing partial segment (when
// episodes is not a multiple of CommEvery) is trained locally without a
// final aggregation, matching the paper's setup where training ends on a
// local segment.
func (f *Federation) RunEpisodes(episodes int) error {
	full := episodes / f.CommEvery
	for r := 0; r < full; r++ {
		if err := f.RunRound(); err != nil {
			return err
		}
	}
	if rem := episodes % f.CommEvery; rem > 0 {
		f.trainSegment(rem)
	}
	// Async mode: commit any trailing partial buffer so deltas submitted
	// after the last full commit are not lost. A no-op (preserving the sync
	// degradation pin) when every segment's submissions committed exactly.
	if f.Async != nil {
		f.deliverErr = nil
		if _, ok := f.Async.Flush(); ok {
			f.syncMirrors()
		}
		return f.deliverErr
	}
	return nil
}

// AddClient joins a new client mid-training (the Figure-20 scenario),
// initializing it under the engine's late-join policy — the same rule a
// fednet joiner or resyncing straggler gets: the current global payload.
func (f *Federation) AddClient(c *Client) error {
	var round int
	var global Payload
	if f.Async != nil {
		round, global = f.Async.Join(len(f.Clients))
	} else {
		round, global = f.Engine.Join()
	}
	if err := f.Transport.Download(c, global); err != nil {
		return fmt.Errorf("fed: joining client %d: %w", c.ID, err)
	}
	f.Clients = append(f.Clients, c)
	// Join installs are out-of-band raw payloads (matching the networked
	// path's JoinReply): the newcomer gets a fresh encoder with no delta
	// reference, so its first uplink is absolute.
	f.upEnc = append(f.upEnc, fedcore.NewEncoder(f.codec))
	f.refs = append(f.refs, nil)
	f.refTags = append(f.refTags, 0)
	f.upBufs = append(f.upBufs, nil)
	if f.Async != nil {
		f.clientSeq = append(f.clientSeq, 0)
		f.clientBase = append(f.clientBase, round)
	}
	return nil
}

// MeanRewardCurve averages the clients' reward curves elementwise over the
// first minLen episodes common to all clients.
func MeanRewardCurve(clients []*Client) []float64 {
	if len(clients) == 0 {
		return nil
	}
	minLen := len(clients[0].Rewards)
	for _, c := range clients[1:] {
		if len(c.Rewards) < minLen {
			minLen = len(c.Rewards)
		}
	}
	out := make([]float64, minLen)
	for _, c := range clients {
		for i := 0; i < minLen; i++ {
			out[i] += c.Rewards[i]
		}
	}
	inv := 1.0 / float64(len(clients))
	for i := range out {
		out[i] *= inv
	}
	return out
}
