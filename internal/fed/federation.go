package fed

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/obs"
)

// RoundReport records who actually contributed to one aggregation round —
// the partial-participation bookkeeping surfaced on core.TrainResult.
type RoundReport struct {
	// Round is the round index (0-based).
	Round int
	// Selected is how many clients were drawn for the round (K).
	Selected int
	// Participants is how many uploads were actually aggregated
	// (Selected minus injected upload drops).
	Participants int
	// UploadDrops / DownloadDrops count transient transport faults the
	// round absorbed (ErrInjectedFault); a dropped download leaves that
	// client on its previous parameters.
	UploadDrops   int
	DownloadDrops int
}

// Federation drives Algorithm 1: local training segments interleaved with
// server aggregation rounds.
type Federation struct {
	Clients   []*Client
	Transport Transport
	Agg       Aggregator

	// K is the number of clients that participate in each aggregation
	// (K ≤ N; the paper uses K = N/2 for PFRL-DM).
	K int
	// CommEvery is the communication frequency: episodes of local training
	// between aggregations.
	CommEvery int
	// Parallel trains clients in concurrent goroutines within a segment.
	// Results are identical either way: clients are independent and each
	// agent owns its RNG.
	Parallel bool

	// Global is the server-stored payload ψ_G (or the full model for
	// actor+critic transports), delivered to non-participants and late
	// joiners.
	Global Payload

	// Rounds counts completed aggregation rounds.
	Rounds int

	// Reports holds one participation record per completed round.
	Reports []RoundReport

	comm CommStats
	rng  *rand.Rand
}

// Options configures New.
type Options struct {
	K         int
	CommEvery int
	Seed      int64
	Parallel  bool
}

// New assembles a federation and synchronizes all clients with the initial
// global model (the server's ψ_G^(0) in Algorithm 1, taken from client 0's
// initialization so the whole federation shares a starting point, as in
// standard FL).
func New(clients []*Client, transport Transport, agg Aggregator, opts Options) (*Federation, error) {
	if len(clients) == 0 {
		return nil, fmt.Errorf("fed: no clients")
	}
	k := opts.K
	if k <= 0 || k > len(clients) {
		k = len(clients)
	}
	commEvery := opts.CommEvery
	if commEvery <= 0 {
		commEvery = 1
	}
	f := &Federation{
		Clients:   clients,
		Transport: transport,
		Agg:       agg,
		K:         k,
		CommEvery: commEvery,
		Parallel:  opts.Parallel,
		rng:       rand.New(rand.NewSource(opts.Seed)),
	}
	initial, err := transport.Upload(clients[0])
	if err != nil {
		return nil, fmt.Errorf("fed: initial upload from client %d: %w", clients[0].ID, err)
	}
	f.Global = initial
	for _, c := range clients {
		if err := transport.Download(c, f.Global); err != nil {
			return nil, fmt.Errorf("fed: initial sync to client %d: %w", c.ID, err)
		}
	}
	return f, nil
}

// trainSegment runs CommEvery local episodes on every client.
func (f *Federation) trainSegment(episodes int) {
	if !f.Parallel {
		for _, c := range f.Clients {
			c.TrainEpisodes(episodes)
		}
		return
	}
	var wg sync.WaitGroup
	for _, c := range f.Clients {
		wg.Add(1)
		go func(c *Client) {
			defer wg.Done()
			c.TrainEpisodes(episodes)
		}(c)
	}
	wg.Wait()
}

// RunRound performs one full round: a local-training segment followed by an
// aggregation over K randomly selected participants. Participants receive
// their personalized payloads; every other client receives the stored
// global model (Algorithm 1, lines 13–15).
//
// Transient transport faults (ErrInjectedFault) do not fail the round: a
// client whose upload drops or arrives corrupt-length simply does not
// participate, and a client whose download drops keeps its previous
// parameters until the next round. Any other transport error — a
// misconfigured client, say — aborts the round with that error.
func (f *Federation) RunRound() error {
	f.trainSegment(f.CommEvery)

	var selected []int
	if f.K >= len(f.Clients) {
		// Full participation keeps the stable client order, so aggregators
		// with per-client semantics (StaticWeights) map rows to clients.
		selected = make([]int, len(f.Clients))
		for i := range selected {
			selected[i] = i
		}
	} else {
		selected = shuffledSubset(f.rng, len(f.Clients), f.K)
	}
	report := RoundReport{Round: f.Rounds, Selected: len(selected)}
	expect := len(f.Global)
	var commDur time.Duration
	var participants []int // selected clients whose upload made it
	var uploads []Payload
	for _, idx := range selected {
		callStart := time.Now()
		u, err := f.Transport.Upload(f.Clients[idx])
		commDur += time.Since(callStart)
		switch {
		case errors.Is(err, ErrInjectedFault):
			report.UploadDrops++
			continue
		case err != nil:
			return fmt.Errorf("fed: round %d upload from client %d: %w", f.Rounds, f.Clients[idx].ID, err)
		case len(u) != expect:
			// Corrupt-length upload: detectable, so the round survives it.
			report.UploadDrops++
			continue
		}
		participants = append(participants, idx)
		uploads = append(uploads, u)
		f.comm.UploadScalars += int64(len(u))
	}
	report.Participants = len(uploads)
	aggStart := time.Now()
	personalized, global := AggregatePartial(f.Agg, uploads, f.Global)
	aggDur := time.Since(aggStart)
	f.Global = global

	isParticipant := make(map[int]int, len(participants)) // client index -> upload slot
	for i, idx := range participants {
		isParticipant[idx] = i
	}
	for idx, c := range f.Clients {
		c.CriticLossPre = append(c.CriticLossPre, c.probeCriticLoss())
		var payload Payload
		if slot, ok := isParticipant[idx]; ok {
			payload = personalized[slot]
		} else {
			payload = f.Global
		}
		callStart := time.Now()
		err := f.Transport.Download(c, payload)
		commDur += time.Since(callStart)
		switch {
		case errors.Is(err, ErrInjectedFault):
			report.DownloadDrops++
		case err != nil:
			return fmt.Errorf("fed: round %d download to client %d: %w", f.Rounds, c.ID, err)
		default:
			f.comm.DownloadScalars += int64(len(payload))
		}
		c.CriticLossPost = append(c.CriticLossPost, c.probeCriticLoss())
	}
	f.Rounds++
	f.Reports = append(f.Reports, report)
	f.comm.Rounds = f.Rounds

	obs.GlobalTimers().Add(obs.PhaseAggregate, aggDur)
	obs.GlobalTimers().Add(obs.PhaseComm, commDur)
	mRounds.Inc()
	mUploadDrops.Add(uint64(report.UploadDrops))
	mDownloadDrops.Add(uint64(report.DownloadDrops))
	gParticipants.Set(float64(report.Participants))
	hAggregate.Observe(aggDur.Seconds())
	if obs.Active() {
		obs.Emit(obs.E("round").At(-1, report.Round, -1).
			F("selected", float64(report.Selected)).
			F("participants", float64(report.Participants)).
			F("upload_drops", float64(report.UploadDrops)).
			F("download_drops", float64(report.DownloadDrops)).
			F("aggregate_seconds", aggDur.Seconds()).
			F("comm_seconds", commDur.Seconds()))
	}
	return nil
}

// RunEpisodes trains for the given number of episodes per client,
// aggregating every CommEvery episodes. A trailing partial segment (when
// episodes is not a multiple of CommEvery) is trained locally without a
// final aggregation, matching the paper's setup where training ends on a
// local segment.
func (f *Federation) RunEpisodes(episodes int) error {
	full := episodes / f.CommEvery
	for r := 0; r < full; r++ {
		if err := f.RunRound(); err != nil {
			return err
		}
	}
	if rem := episodes % f.CommEvery; rem > 0 {
		f.trainSegment(rem)
	}
	return nil
}

// AddClient joins a new client mid-training (the Figure-20 scenario),
// initializing it from the server's stored global model.
func (f *Federation) AddClient(c *Client) error {
	if err := f.Transport.Download(c, f.Global); err != nil {
		return fmt.Errorf("fed: joining client %d: %w", c.ID, err)
	}
	f.Clients = append(f.Clients, c)
	if f.K > len(f.Clients) {
		f.K = len(f.Clients)
	}
	return nil
}

// MeanRewardCurve averages the clients' reward curves elementwise over the
// first minLen episodes common to all clients.
func MeanRewardCurve(clients []*Client) []float64 {
	if len(clients) == 0 {
		return nil
	}
	minLen := len(clients[0].Rewards)
	for _, c := range clients[1:] {
		if len(c.Rewards) < minLen {
			minLen = len(c.Rewards)
		}
	}
	out := make([]float64, minLen)
	for _, c := range clients {
		for i := 0; i < minLen; i++ {
			out[i] += c.Rewards[i]
		}
	}
	inv := 1.0 / float64(len(clients))
	for i := range out {
		out[i] *= inv
	}
	return out
}
