package fed

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/fedcore"
)

// RoundReport is the engine's per-round participation record — the
// partial-participation bookkeeping surfaced on core.TrainResult.
type RoundReport = fedcore.RoundReport

// Federation is the in-process adapter over the shared round engine
// (internal/fedcore): it drives Algorithm 1 by interleaving local training
// segments with engine rounds, pulling uploads from the engine's selected
// clients and delivering the results over its Transport. All round policy —
// seeded K-of-N selection, partial aggregation, report bookkeeping, the
// late-join rule — lives in the engine; this type owns only the data plane.
type Federation struct {
	Clients   []*Client
	Transport Transport
	Agg       Aggregator

	// Engine is the shared round state machine; the networked fednet.Server
	// wraps the same type, which is what keeps the two paths bit-identical.
	Engine *fedcore.Engine

	// K is the number of clients that participate in each aggregation
	// (K ≤ N; the paper uses K = N/2 for PFRL-DM), as resolved by the
	// engine.
	K int
	// CommEvery is the communication frequency: episodes of local training
	// between aggregations.
	CommEvery int
	// Parallel trains clients in concurrent goroutines within a segment.
	// Results are identical either way: clients are independent and each
	// agent owns its RNG.
	Parallel bool

	// Global mirrors the engine's stored payload ψ_G (or the full model for
	// actor+critic transports) after each round, delivered to
	// non-participants and late joiners.
	Global Payload

	// Rounds mirrors the engine's completed-round count.
	Rounds int

	// Reports mirrors the engine's participation records.
	Reports []RoundReport

	comm CommStats
}

// Options configures New.
type Options struct {
	K         int
	CommEvery int
	Seed      int64
	Parallel  bool
}

// New assembles a federation and synchronizes all clients with the initial
// global model (the server's ψ_G^(0) in Algorithm 1, taken from client 0's
// initialization so the whole federation shares a starting point, as in
// standard FL).
func New(clients []*Client, transport Transport, agg Aggregator, opts Options) (*Federation, error) {
	if len(clients) == 0 {
		return nil, fmt.Errorf("fed: no clients")
	}
	commEvery := opts.CommEvery
	if commEvery <= 0 {
		commEvery = 1
	}
	initial, err := transport.Upload(clients[0])
	if err != nil {
		return nil, fmt.Errorf("fed: initial upload from client %d: %w", clients[0].ID, err)
	}
	engine, err := fedcore.New(agg, initial, fedcore.Options{
		K:       opts.K,
		Clients: len(clients),
		Seed:    opts.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("fed: %w", err)
	}
	f := &Federation{
		Clients:   clients,
		Transport: transport,
		Agg:       agg,
		Engine:    engine,
		K:         engine.K(),
		CommEvery: commEvery,
		Parallel:  opts.Parallel,
		Global:    engine.Global(),
	}
	for _, c := range clients {
		if err := transport.Download(c, f.Global); err != nil {
			return nil, fmt.Errorf("fed: initial sync to client %d: %w", c.ID, err)
		}
	}
	return f, nil
}

// trainSegment runs CommEvery local episodes on every client.
func (f *Federation) trainSegment(episodes int) {
	if !f.Parallel {
		for _, c := range f.Clients {
			c.TrainEpisodes(episodes)
		}
		return
	}
	var wg sync.WaitGroup
	for _, c := range f.Clients {
		wg.Add(1)
		go func(c *Client) {
			defer wg.Done()
			c.TrainEpisodes(episodes)
		}(c)
	}
	wg.Wait()
}

// RunRound performs one full round: a local-training segment followed by an
// engine round over K selected participants. This path pulls: only the
// engine's selected clients upload, so Arrived ≤ Selected in the report.
// Participants receive their personalized payloads; every other client
// receives the stored global model (Algorithm 1, lines 13–15).
//
// Transient transport faults (ErrInjectedFault) do not fail the round: a
// client whose upload drops simply does not participate (corrupt-length
// uploads are filtered by the engine), and a client whose download drops
// keeps its previous parameters until the next round. Any other transport
// error — a misconfigured client, say — surfaces as the returned error; a
// fatal upload error aborts before the engine round, while a fatal download
// error is reported after the round commits (the aggregation itself already
// happened).
func (f *Federation) RunRound() error {
	f.trainSegment(f.CommEvery)

	all := make([]int, len(f.Clients))
	for i := range all {
		all[i] = i
	}
	selected := f.Engine.Select(all)
	stats := fedcore.RoundStats{Expected: len(f.Clients), Selected: len(selected)}
	var commDur time.Duration
	var contribs []fedcore.Contribution
	for _, idx := range selected {
		callStart := time.Now()
		u, err := f.Transport.Upload(f.Clients[idx])
		commDur += time.Since(callStart)
		switch {
		case errors.Is(err, ErrInjectedFault):
			stats.UploadDrops++
			continue
		case err != nil:
			return fmt.Errorf("fed: round %d upload from client %d: %w", f.Rounds, f.Clients[idx].ID, err)
		}
		contribs = append(contribs, fedcore.Contribution{ID: idx, Upload: u})
		f.comm.UploadScalars += int64(len(u))
	}
	stats.Arrived = len(contribs)

	var deliverErr error
	f.Engine.CompleteRound(contribs, stats, func(personalized map[int]fedcore.Payload, global fedcore.Payload) (int, time.Duration) {
		drops := 0
		for idx, c := range f.Clients {
			c.CriticLossPre = append(c.CriticLossPre, c.probeCriticLoss())
			payload, ok := personalized[idx]
			if !ok {
				payload = global
			}
			callStart := time.Now()
			err := f.Transport.Download(c, payload)
			commDur += time.Since(callStart)
			switch {
			case errors.Is(err, ErrInjectedFault):
				drops++
			case err != nil:
				deliverErr = fmt.Errorf("fed: round %d download to client %d: %w", f.Rounds, c.ID, err)
				return drops, commDur
			default:
				f.comm.DownloadScalars += int64(len(payload))
			}
			c.CriticLossPost = append(c.CriticLossPost, c.probeCriticLoss())
		}
		return drops, commDur
	})

	f.Global = f.Engine.Global()
	f.Rounds = f.Engine.Round()
	f.Reports = f.Engine.Reports()
	f.comm.Rounds = f.Rounds
	return deliverErr
}

// RunEpisodes trains for the given number of episodes per client,
// aggregating every CommEvery episodes. A trailing partial segment (when
// episodes is not a multiple of CommEvery) is trained locally without a
// final aggregation, matching the paper's setup where training ends on a
// local segment.
func (f *Federation) RunEpisodes(episodes int) error {
	full := episodes / f.CommEvery
	for r := 0; r < full; r++ {
		if err := f.RunRound(); err != nil {
			return err
		}
	}
	if rem := episodes % f.CommEvery; rem > 0 {
		f.trainSegment(rem)
	}
	return nil
}

// AddClient joins a new client mid-training (the Figure-20 scenario),
// initializing it under the engine's late-join policy — the same rule a
// fednet joiner or resyncing straggler gets: the current global payload.
func (f *Federation) AddClient(c *Client) error {
	_, global := f.Engine.Join()
	if err := f.Transport.Download(c, global); err != nil {
		return fmt.Errorf("fed: joining client %d: %w", c.ID, err)
	}
	f.Clients = append(f.Clients, c)
	return nil
}

// MeanRewardCurve averages the clients' reward curves elementwise over the
// first minLen episodes common to all clients.
func MeanRewardCurve(clients []*Client) []float64 {
	if len(clients) == 0 {
		return nil
	}
	minLen := len(clients[0].Rewards)
	for _, c := range clients[1:] {
		if len(c.Rewards) < minLen {
			minLen = len(c.Rewards)
		}
	}
	out := make([]float64, minLen)
	for _, c := range clients {
		for i := 0; i < minLen; i++ {
			out[i] += c.Rewards[i]
		}
	}
	inv := 1.0 / float64(len(clients))
	for i := range out {
		out[i] *= inv
	}
	return out
}
