package fed

// CommStats accounts for the data exchanged between the clients and the
// server: scalar counts for the §5.2 communication-cost comparison (PFRL-DM
// transmits only public critics; FedAvg/MFPO move full actor+critic models,
// roughly 3x the volume for the paper's architecture) and measured wire
// bytes from the codec frames those scalars actually crossed the wire in.
type CommStats struct {
	// Rounds is the number of aggregation rounds accounted.
	Rounds int
	// UploadScalars / DownloadScalars are cumulative float64 counts across
	// all clients and rounds.
	UploadScalars   int64
	DownloadScalars int64
	// UploadBytes / DownloadBytes are the measured codec frame lengths of
	// the same traffic — what the tier actually put on the wire, header
	// included.
	UploadBytes   int64
	DownloadBytes int64
}

// Total returns the total scalars moved in both directions.
func (s CommStats) Total() int64 { return s.UploadScalars + s.DownloadScalars }

// Bytes returns the measured wire volume: the sum of the codec frame
// lengths, as counted at transmission time (no longer the 8-byte/scalar
// assumption — see RawBytes for that figure).
func (s CommStats) Bytes() int64 { return s.UploadBytes + s.DownloadBytes }

// RawBytes returns the uncompressed volume the same traffic would occupy at
// 8 bytes per float64 scalar — the denominator-free baseline the seed-era
// Bytes reported.
func (s CommStats) RawBytes() int64 { return s.Total() * 8 }

// CompressionRatio returns RawBytes/Bytes — how many times smaller the wire
// traffic was than raw float64 encoding (1 when nothing has been measured;
// slightly below 1 for the identity tier, which pays the frame header).
func (s CommStats) CompressionRatio() float64 {
	if s.Bytes() == 0 {
		return 1
	}
	return float64(s.RawBytes()) / float64(s.Bytes())
}

// Comm returns the federation's cumulative communication statistics.
func (f *Federation) Comm() CommStats { return f.comm }
