package fed

// CommStats accounts for the scalars exchanged between the clients and the
// server — the communication-cost comparison of §5.2 (PFRL-DM transmits
// only public critics; FedAvg/MFPO move full actor+critic models, roughly
// 3x the volume for the paper's architecture).
type CommStats struct {
	// Rounds is the number of aggregation rounds accounted.
	Rounds int
	// UploadScalars / DownloadScalars are cumulative float64 counts across
	// all clients and rounds.
	UploadScalars   int64
	DownloadScalars int64
}

// Total returns the total scalars moved in both directions.
func (s CommStats) Total() int64 { return s.UploadScalars + s.DownloadScalars }

// Bytes returns the wire volume assuming 8-byte float64 encoding.
func (s CommStats) Bytes() int64 { return s.Total() * 8 }

// Comm returns the federation's cumulative communication statistics.
func (f *Federation) Comm() CommStats { return f.comm }
