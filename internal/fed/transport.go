package fed

import (
	"fmt"

	"repro/internal/fedcore"
	"repro/internal/nn"
	"repro/internal/rl"
)

// Payload is a flat parameter vector exchanged between client and server
// (the round engine's wire type).
type Payload = fedcore.Payload

// Transport defines what travels between a client and the server.
type Transport interface {
	// Name identifies the transport in reports.
	Name() string
	// Upload extracts the client's shareable parameters. An error marks
	// the client as unable to contribute this round (wrong agent type,
	// injected fault); it must leave the client unchanged.
	Upload(c *Client) (Payload, error)
	// Download installs a payload into the client.
	Download(c *Client, p Payload) error
	// PayloadSize returns the number of scalars exchanged per direction
	// (the communication-cost accounting of §5.2).
	PayloadSize(c *Client) int
}

// ActorCriticTransport moves the full PPO model (actor and critic), the
// behaviour of traditional FedAvg and MFPO. It requires *rl.PPO agents.
type ActorCriticTransport struct{}

// Name implements Transport.
func (ActorCriticTransport) Name() string { return "actor+critic" }

func ppoOf(c *Client) (*rl.PPO, error) {
	p, ok := c.Agent.(*rl.PPO)
	if !ok {
		return nil, fmt.Errorf("fed: client %d agent is %T, want *rl.PPO", c.ID, c.Agent)
	}
	return p, nil
}

// Upload implements Transport.
func (ActorCriticTransport) Upload(c *Client) (Payload, error) {
	p, err := ppoOf(c)
	if err != nil {
		return nil, err
	}
	actor := nn.FlattenParams(p.Actor)
	critic := nn.FlattenParams(p.Critic)
	return append(actor, critic...), nil
}

// Download implements Transport.
func (ActorCriticTransport) Download(c *Client, payload Payload) error {
	p, err := ppoOf(c)
	if err != nil {
		return err
	}
	na := nn.NumParams(p.Actor)
	nc := nn.NumParams(p.Critic)
	if len(payload) != na+nc {
		return fmt.Errorf("fed: payload size %d, want %d", len(payload), na+nc)
	}
	if err := nn.LoadFlatParams(p.Actor, payload[:na]); err != nil {
		return err
	}
	return nn.LoadFlatParams(p.Critic, payload[na:])
}

// PayloadSize implements Transport.
func (ActorCriticTransport) PayloadSize(c *Client) int {
	p, err := ppoOf(c)
	if err != nil {
		panic(err)
	}
	return nn.NumParams(p.Actor) + nn.NumParams(p.Critic)
}

// PublicCriticTransport moves only the public critic ψ — PFRL-DM's
// communication pattern (actors and local critics never leave the client).
// It requires *rl.DualCriticPPO agents.
type PublicCriticTransport struct{}

// Name implements Transport.
func (PublicCriticTransport) Name() string { return "public-critic" }

func dualOf(c *Client) (*rl.DualCriticPPO, error) {
	d, ok := c.Agent.(*rl.DualCriticPPO)
	if !ok {
		return nil, fmt.Errorf("fed: client %d agent is %T, want *rl.DualCriticPPO", c.ID, c.Agent)
	}
	return d, nil
}

// Upload implements Transport.
func (PublicCriticTransport) Upload(c *Client) (Payload, error) {
	d, err := dualOf(c)
	if err != nil {
		return nil, err
	}
	return d.PublicCriticParams(), nil
}

// Download implements Transport. Installing a new public critic refreshes
// α against the client's most recent trajectories (§4.3: α is re-evaluated
// "each time the model parameters change, including … receiving the global
// model").
func (PublicCriticTransport) Download(c *Client, payload Payload) error {
	d, err := dualOf(c)
	if err != nil {
		return err
	}
	return d.LoadPublicCritic(payload, &c.LastBuf)
}

// PayloadSize implements Transport.
func (PublicCriticTransport) PayloadSize(c *Client) int {
	d, err := dualOf(c)
	if err != nil {
		panic(err)
	}
	return nn.NumParams(d.PublicCritic)
}

// FedProxTransport is ActorCriticTransport plus FedProx client behaviour:
// every download re-anchors the client's proximal regularizer at the
// received global model, so subsequent local updates are pulled toward it
// (the classic drift mitigation for heterogeneous federations, included as
// an extension baseline).
type FedProxTransport struct {
	// Mu is the proximal coefficient applied on the clients.
	Mu float64
}

// Name implements Transport.
func (t FedProxTransport) Name() string { return "fedprox(actor+critic)" }

// Upload implements Transport.
func (t FedProxTransport) Upload(c *Client) (Payload, error) {
	return ActorCriticTransport{}.Upload(c)
}

// Download implements Transport.
func (t FedProxTransport) Download(c *Client, payload Payload) error {
	if err := (ActorCriticTransport{}).Download(c, payload); err != nil {
		return err
	}
	p, err := ppoOf(c)
	if err != nil {
		return err
	}
	p.EnableProximal(t.Mu)
	return nil
}

// PayloadSize implements Transport.
func (t FedProxTransport) PayloadSize(c *Client) int {
	return ActorCriticTransport{}.PayloadSize(c)
}
