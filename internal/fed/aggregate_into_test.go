package fed

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/fedcore"
)

// TestAggregateIntoMatchesAggregate is the aggregator half of the degradation
// pin: for every strategy the pooled arena fast path must reproduce the
// legacy allocating Aggregate bit for bit, at any worker count. Stateful
// aggregators (momentum) are driven through multiple rounds on independent
// instances so their internal state evolves identically on both paths.
func TestAggregateIntoMatchesAggregate(t *testing.T) {
	const k, dim, rounds = 5, 257, 3

	makeUploads := func(rng *rand.Rand) []Payload {
		uploads := make([]Payload, k)
		for i := range uploads {
			uploads[i] = make(Payload, dim)
			for j := range uploads[i] {
				uploads[i][j] = rng.NormFloat64()
			}
		}
		return uploads
	}

	staticW := make([][]float64, k)
	for i := range staticW {
		staticW[i] = make([]float64, k)
		for j := range staticW[i] {
			staticW[i][j] = 1.0 / float64(k)
		}
	}

	cases := []struct {
		name string
		// fresh builds an independent instance per path so stateful
		// aggregators cannot leak rounds across the comparison.
		fresh func() Aggregator
	}{
		{"FedAvg", func() Aggregator { return FedAvg{} }},
		{"Momentum", func() Aggregator { return NewMomentum(0.9) }},
		{"Attention", func() Aggregator { return NewAttention(11) }},
		{"StaticWeights", func() Aggregator { return StaticWeights{W: staticW} }},
	}

	for _, workers := range []int{1, 4} {
		prev := fedcore.SetAggWorkers(workers)
		for _, tc := range cases {
			t.Run(fmt.Sprintf("%s/workers%d", tc.name, workers), func(t *testing.T) {
				legacy, pooled := tc.fresh(), tc.fresh()
				into, ok := pooled.(fedcore.IntoAggregator)
				if !ok {
					t.Fatalf("%s does not implement the pooled fast path", tc.name)
				}
				rng := rand.New(rand.NewSource(31))
				var arena fedcore.PayloadArena
				for round := 0; round < rounds; round++ {
					uploads := makeUploads(rng)
					wantPers, wantGlobal := legacy.Aggregate(uploads)
					gotPers, gotGlobal := into.AggregateInto(uploads, &arena)
					if len(gotPers) != len(wantPers) {
						t.Fatalf("round %d: %d personalized payloads, want %d", round, len(gotPers), len(wantPers))
					}
					for i := range wantPers {
						for j := range wantPers[i] {
							if gotPers[i][j] != wantPers[i][j] {
								t.Fatalf("round %d: personalized[%d][%d] = %v, want %v (bitwise)",
									round, i, j, gotPers[i][j], wantPers[i][j])
							}
						}
					}
					for j := range wantGlobal {
						if gotGlobal[j] != wantGlobal[j] {
							t.Fatalf("round %d: global[%d] = %v, want %v (bitwise)",
								round, j, gotGlobal[j], wantGlobal[j])
						}
					}
				}
			})
		}
		fedcore.SetAggWorkers(prev)
	}
}

// TestEngineRoundSteadyStateAllocs holds the engine's aggregation step — the
// arena-backed AggregatePartialInto the round engine calls every commit — to
// zero allocations once warm, for the aggregators whose data plane is pure
// reduction. (Attention allocates its O(K²) weight matrix by design.)
func TestEngineRoundSteadyStateAllocs(t *testing.T) {
	const k, dim = 4, 2048
	rng := rand.New(rand.NewSource(17))
	uploads := make([]Payload, k)
	for i := range uploads {
		uploads[i] = make(Payload, dim)
		for j := range uploads[i] {
			uploads[i][j] = rng.NormFloat64()
		}
	}
	prevGlobal := make(Payload, dim)

	for _, tc := range []struct {
		name string
		agg  Aggregator
	}{
		{"FedAvg", FedAvg{}},
		{"Momentum", NewMomentum(0.9)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var arena fedcore.PayloadArena
			fedcore.AggregatePartialInto(tc.agg, uploads, prevGlobal, &arena)
			if n := testing.AllocsPerRun(20, func() {
				fedcore.AggregatePartialInto(tc.agg, uploads, prevGlobal, &arena)
			}); n != 0 {
				t.Fatalf("warm %s round allocates %v/op; want 0", tc.name, n)
			}
		})
	}
}
