package fed

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/fedcore"
)

// benchDim matches the public-critic payload width the frozen baselines were
// measured at (538-feature observation, 64-unit hidden layer).
const benchDim = 34561

// BenchmarkFedAggregate measures one steady-state data-plane round — K
// client encodes, K server decodes, and the pooled FedAvg aggregation — the
// composite that scripts/bench_alloc_guard.sh holds to zero allocs/op.
func BenchmarkFedAggregate(b *testing.B) {
	for _, k := range []int{8, 64} {
		b.Run(fmt.Sprintf("K%d", k), func(b *testing.B) {
			benchFedAggregate(b, k, benchDim, fedcore.CodecConfig{})
		})
	}
}

func benchFedAggregate(b *testing.B, k, dim int, codec fedcore.CodecConfig) {
	rng := rand.New(rand.NewSource(7))
	uploads := make([]Payload, k)
	encs := make([]*fedcore.Encoder, k)
	bufs := make([]Payload, k)
	for i := range uploads {
		uploads[i] = make(Payload, dim)
		for j := range uploads[i] {
			uploads[i][j] = rng.NormFloat64()
		}
		encs[i] = fedcore.NewEncoder(codec)
	}
	agg := FedAvg{}
	var arena fedcore.PayloadArena
	scratch := make([]Payload, k)
	round := func() Payload {
		for i := range uploads {
			dec, _, err := fedcore.DecodeFrame(encs[i].Encode(uploads[i]), nil, bufs[i])
			if err != nil {
				b.Fatal(err)
			}
			bufs[i] = dec
			scratch[i] = dec
		}
		_, global := agg.AggregateInto(scratch, &arena)
		return global
	}
	round() // warm the encoders, decode buffers, and arena
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		round()
	}
}
