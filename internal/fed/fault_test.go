package fed

import (
	"errors"
	"math"
	"testing"
	"time"
)

func TestParseFaultSpec(t *testing.T) {
	cases := []struct {
		in      string
		want    FaultSpec
		wantErr bool
	}{
		{"", FaultSpec{}, false},
		{"drop=0.1", FaultSpec{Drop: 0.1}, false},
		{"drop=0.1,delay=0.05:20ms,dup=0.02,corrupt=0.01,seed=7",
			FaultSpec{Drop: 0.1, Delay: 0.05, DelayFor: 20 * time.Millisecond, Duplicate: 0.02, Corrupt: 0.01, Seed: 7}, false},
		{"delay=0.5", FaultSpec{Delay: 0.5}, false},
		{"drop=1.5", FaultSpec{}, true},
		{"drop=-0.1", FaultSpec{}, true},
		{"drop=0.6,delay=0.6", FaultSpec{}, true}, // probabilities sum > 1
		{"bogus=1", FaultSpec{}, true},
		{"drop", FaultSpec{}, true},
		{"seed=abc", FaultSpec{}, true},
	}
	for _, c := range cases {
		got, err := ParseFaultSpec(c.in)
		if (err != nil) != c.wantErr {
			t.Fatalf("ParseFaultSpec(%q) err=%v wantErr=%v", c.in, err, c.wantErr)
		}
		if err == nil && got != c.want {
			t.Fatalf("ParseFaultSpec(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestFaultSpecActive(t *testing.T) {
	if (FaultSpec{Seed: 9}).Active() {
		t.Fatal("seed alone must not activate injection")
	}
	if !(FaultSpec{Drop: 0.01}).Active() {
		t.Fatal("drop probability should activate injection")
	}
}

func TestFaultyTransportPassThroughAtZeroProbability(t *testing.T) {
	a := newDualClient(t, 0, 100)
	plain := PublicCriticTransport{}
	faulty := NewFaultyTransport(PublicCriticTransport{}, FaultSpec{Seed: 3})

	want := mustUpload(t, plain, a)
	got, err := faulty.Upload(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("lengths differ: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("zero-probability injector must be a bitwise pass-through")
		}
	}
	if err := faulty.Download(a, got); err != nil {
		t.Fatal(err)
	}
	if s := faulty.Stats(); s.Total() != 0 {
		t.Fatalf("no events should be injected: %+v", s)
	}
	if faulty.Name() != "faulty(public-critic)" {
		t.Fatalf("name %q", faulty.Name())
	}
}

func TestFaultyTransportDrop(t *testing.T) {
	a := newDualClient(t, 0, 101)
	faulty := NewFaultyTransport(PublicCriticTransport{}, FaultSpec{Drop: 1})
	if _, err := faulty.Upload(a); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("upload err %v, want injected fault", err)
	}
	if err := faulty.Download(a, Payload{1}); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("download err %v, want injected fault", err)
	}
	if s := faulty.Stats(); s.Drops != 2 {
		t.Fatalf("drops %d, want 2", s.Drops)
	}
}

func TestFaultyTransportCorruptLength(t *testing.T) {
	a := newDualClient(t, 0, 102)
	b := newDualClient(t, 1, 103)
	plain := PublicCriticTransport{}
	faulty := NewFaultyTransport(PublicCriticTransport{}, FaultSpec{Corrupt: 1})

	good := mustUpload(t, plain, a)
	bad, err := faulty.Upload(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != len(good)-1 {
		t.Fatalf("corrupt upload length %d, want %d", len(bad), len(good)-1)
	}
	// A corrupt-length download must be detected (error), never silently
	// installed, and must leave the target client unchanged.
	before := mustUpload(t, plain, b)
	if err := faulty.Download(b, good); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("download err %v, want injected fault", err)
	}
	after := mustUpload(t, plain, b)
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("corrupt download must not modify the client")
		}
	}
}

func TestFaultyTransportDuplicate(t *testing.T) {
	a := newDualClient(t, 0, 104)
	b := newDualClient(t, 1, 105)
	plain := PublicCriticTransport{}
	faulty := NewFaultyTransport(PublicCriticTransport{}, FaultSpec{Duplicate: 1})
	p, err := faulty.Upload(a)
	if err != nil {
		t.Fatal(err)
	}
	// Double-install must land on the same state as a single install.
	if err := faulty.Download(b, p); err != nil {
		t.Fatal(err)
	}
	got := mustUpload(t, plain, b)
	for i := range p {
		if got[i] != p[i] {
			t.Fatal("duplicate download must be idempotent")
		}
	}
	if s := faulty.Stats(); s.Duplicates != 2 {
		t.Fatalf("duplicates %d, want 2", s.Duplicates)
	}
}

func TestFaultyTransportDelay(t *testing.T) {
	a := newDualClient(t, 0, 106)
	faulty := NewFaultyTransport(PublicCriticTransport{}, FaultSpec{Delay: 1, DelayFor: time.Millisecond})
	var slept time.Duration
	faulty.sleep = func(d time.Duration) { slept += d }
	if _, err := faulty.Upload(a); err != nil {
		t.Fatal(err)
	}
	if slept != time.Millisecond {
		t.Fatalf("slept %v, want 1ms", slept)
	}
	if s := faulty.Stats(); s.Delays != 1 {
		t.Fatalf("delays %d", s.Delays)
	}
}

// TestPartialAggregation pins the k-of-n regime for every aggregator: a
// round that got k uploads aggregates exactly those k with equal weight
// (the participation-weighted mean), k=1 degenerates to that single
// upload, and a round nobody reached leaves the global payload unchanged.
func TestPartialAggregation(t *testing.T) {
	dim := 64
	mk := func(fill float64) Payload {
		p := make(Payload, dim)
		for i := range p {
			p[i] = fill + float64(i)*0.01
		}
		return p
	}
	all := []Payload{mk(1), mk(2), mk(4)}
	prev := mk(-3)
	meanOf := func(uploads []Payload) Payload {
		out := make(Payload, dim)
		for _, u := range uploads {
			for i, v := range u {
				out[i] += v / float64(len(uploads))
			}
		}
		return out
	}

	aggs := []struct {
		name string
		mk   func() Aggregator
		// exactMean is true when the aggregator's global payload must be
		// exactly the participation-weighted mean of the uploads (FedAvg,
		// and MFPO's first round, which initializes at the mean).
		exactMean bool
	}{
		{"FedAvg", func() Aggregator { return FedAvg{} }, true},
		{"MFPO", func() Aggregator { return NewMomentum(0.5) }, true},
		{"attention", func() Aggregator { return NewAttention(11) }, false},
	}
	for _, ac := range aggs {
		for k := 0; k <= len(all); k++ {
			uploads := all[:k]
			personalized, global := AggregatePartial(ac.mk(), uploads, prev)
			if len(personalized) != k {
				t.Fatalf("%s k=%d: %d personalized payloads", ac.name, k, len(personalized))
			}
			if len(global) != dim {
				t.Fatalf("%s k=%d: global dim %d", ac.name, k, len(global))
			}
			switch {
			case k == 0:
				for i := range prev {
					if global[i] != prev[i] {
						t.Fatalf("%s k=0: global must carry over unchanged", ac.name)
					}
				}
			case k == 1:
				// One participant: every aggregator's weighted mean is that
				// single upload.
				for i := range global {
					if math.Abs(global[i]-uploads[0][i]) > 1e-9 {
						t.Fatalf("%s k=1: global differs from the sole upload at %d", ac.name, i)
					}
				}
			case ac.exactMean:
				want := meanOf(uploads)
				for i := range global {
					if math.Abs(global[i]-want[i]) > 1e-12 {
						t.Fatalf("%s k=%d: global is not the participation-weighted mean at %d: %v vs %v",
							ac.name, k, i, global[i], want[i])
					}
				}
			}
		}
	}

	// Identical uploads: any row-stochastic personalization (attention
	// included) must reproduce the common vector for every k ≥ 1.
	for _, ac := range aggs {
		same := []Payload{mk(5), mk(5)}
		_, global := AggregatePartial(ac.mk(), same, prev)
		for i := range global {
			if math.Abs(global[i]-same[0][i]) > 1e-9 {
				t.Fatalf("%s: identical uploads must aggregate to themselves", ac.name)
			}
		}
	}
}

// TestRunRoundSurvivesTotalDropOut: with every transport call dropping,
// the round still completes — zero participants, global unchanged, and the
// report records the carnage. This is the all-clients-timed-out regime of
// the fault harness.
func TestRunRoundSurvivesTotalDropOut(t *testing.T) {
	clients := []*Client{newDualClient(t, 0, 110), newDualClient(t, 1, 111)}
	plain := PublicCriticTransport{}
	f, err := New(clients, plain, FedAvg{}, Options{K: 2, CommEvery: 1, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	globalBefore := append(Payload(nil), f.Global...)
	// Swap in a transport that drops everything after the initial sync.
	f.Transport = NewFaultyTransport(plain, FaultSpec{Drop: 1})
	if err := f.RunRound(); err != nil {
		t.Fatal(err)
	}
	if f.Rounds != 1 || len(f.Reports) != 1 {
		t.Fatalf("rounds %d reports %d", f.Rounds, len(f.Reports))
	}
	rep := f.Reports[0]
	if rep.Participants != 0 || rep.UploadDrops != 2 || rep.DownloadDrops != 2 {
		t.Fatalf("report %+v", rep)
	}
	for i := range globalBefore {
		if f.Global[i] != globalBefore[i] {
			t.Fatal("global must carry over when every upload dropped")
		}
	}
}

// TestRunRoundDropsCorruptUploads: a corrupt-length upload is detected and
// the client skipped, never fed to the aggregator (which would panic on a
// ragged batch).
func TestRunRoundDropsCorruptUploads(t *testing.T) {
	clients := []*Client{newDualClient(t, 0, 112), newDualClient(t, 1, 113)}
	plain := PublicCriticTransport{}
	f, err := New(clients, plain, FedAvg{}, Options{K: 2, CommEvery: 1, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	f.Transport = NewFaultyTransport(plain, FaultSpec{Corrupt: 1})
	if err := f.RunRound(); err != nil {
		t.Fatal(err)
	}
	rep := f.Reports[0]
	if rep.Participants != 0 || rep.UploadDrops != 2 {
		t.Fatalf("report %+v", rep)
	}
}

// TestDeterminismGolden runs the same 2-client, 3-round federation twice —
// once plain, once through a probability-zero fault injector — and demands
// bitwise-identical final payloads and reward curves. This is the canary
// for any future RNG-threading regression in the round loop or injector.
func TestDeterminismGolden(t *testing.T) {
	run := func(injector bool) (Payload, [][]float64) {
		clients := []*Client{newDualClient(t, 0, 120), newDualClient(t, 1, 121)}
		var tr Transport = PublicCriticTransport{}
		if injector {
			tr = NewFaultyTransport(tr, FaultSpec{Seed: 99})
		}
		f, err := New(clients, tr, NewAttention(7), Options{K: 2, CommEvery: 1, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 3; r++ {
			if err := f.RunRound(); err != nil {
				t.Fatal(err)
			}
		}
		curves := make([][]float64, len(clients))
		for i, c := range clients {
			curves[i] = append([]float64(nil), c.Rewards...)
		}
		return append(Payload(nil), f.Global...), curves
	}

	gA, cA := run(false)
	gB, cB := run(true)
	if len(gA) == 0 || len(gA) != len(gB) {
		t.Fatalf("global lengths %d vs %d", len(gA), len(gB))
	}
	for i := range gA {
		if gA[i] != gB[i] {
			t.Fatalf("global payloads diverge at %d: %v vs %v", i, gA[i], gB[i])
		}
	}
	for ci := range cA {
		if len(cA[ci]) != 3 || len(cA[ci]) != len(cB[ci]) {
			t.Fatalf("client %d curve lengths %d vs %d", ci, len(cA[ci]), len(cB[ci]))
		}
		for e := range cA[ci] {
			if cA[ci][e] != cB[ci][e] {
				t.Fatalf("client %d reward curves diverge at episode %d", ci, e)
			}
		}
	}
}
