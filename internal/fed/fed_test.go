package fed

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cloudsim"
	"repro/internal/fedcore"
	"repro/internal/nn"
	"repro/internal/rl"
	"repro/internal/workload"
)

func TestMeanPayload(t *testing.T) {
	got := meanPayload([]Payload{{1, 2}, {3, 4}})
	if got[0] != 2 || got[1] != 3 {
		t.Fatalf("mean %v", got)
	}
}

func TestMeanPayloadPanics(t *testing.T) {
	for _, uploads := range [][]Payload{nil, {{1}, {1, 2}}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			meanPayload(uploads)
		}()
	}
}

func TestFedAvgAggregator(t *testing.T) {
	p, g := FedAvg{}.Aggregate([]Payload{{0, 0}, {2, 4}})
	if g[0] != 1 || g[1] != 2 {
		t.Fatalf("global %v", g)
	}
	for _, pi := range p {
		if pi[0] != 1 || pi[1] != 2 {
			t.Fatal("FedAvg must send the same global to everyone")
		}
	}
	// Personalized payloads must be independent copies.
	p[0][0] = 99
	if p[1][0] == 99 || g[0] == 99 {
		t.Fatal("payload aliasing")
	}
}

func TestMomentumAggregatorPreservesDirection(t *testing.T) {
	m := NewMomentum(0.9)
	_, g0 := m.Aggregate([]Payload{{0}})
	if g0[0] != 0 {
		t.Fatalf("first round global %v", g0)
	}
	_, g1 := m.Aggregate([]Payload{{1}}) // delta=1, vel=1, global=1
	if g1[0] != 1 {
		t.Fatalf("second round global %v", g1)
	}
	// Third round with uploads equal to current global: plain averaging
	// would stall, momentum keeps moving (vel = 0.9).
	_, g2 := m.Aggregate([]Payload{{1}})
	if math.Abs(g2[0]-1.9) > 1e-12 {
		t.Fatalf("momentum should overshoot to 1.9, got %v", g2[0])
	}
}

func TestAttentionAggregatorMixes(t *testing.T) {
	a := NewAttention(5)
	uploads := []Payload{
		make(Payload, 64), make(Payload, 64), make(Payload, 64),
	}
	rng := rand.New(rand.NewSource(1))
	base := make([]float64, 64)
	for i := range base {
		base[i] = rng.NormFloat64()
	}
	for c := range uploads {
		for i := range uploads[c] {
			uploads[c][i] = base[i] + 0.1*rng.NormFloat64()
		}
	}
	personalized, global := a.Aggregate(uploads)
	if len(personalized) != 3 || len(global) != 64 {
		t.Fatal("shapes wrong")
	}
	if a.LastWeights == nil || len(a.LastWeights) != 3 {
		t.Fatal("LastWeights not recorded")
	}
	// Each personalized payload must be the weight-mix of uploads.
	for i := range personalized {
		for d := 0; d < 64; d++ {
			want := 0.0
			for j := range uploads {
				want += a.LastWeights[i][j] * uploads[j][d]
			}
			if math.Abs(personalized[i][d]-want) > 1e-9 {
				t.Fatalf("personalized[%d][%d] mismatch", i, d)
			}
		}
	}
	// Eq. 22: global = mean of personalized.
	for d := 0; d < 64; d++ {
		want := (personalized[0][d] + personalized[1][d] + personalized[2][d]) / 3
		if math.Abs(global[d]-want) > 1e-9 {
			t.Fatal("global is not the personalized mean")
		}
	}
}

func TestStaticWeights(t *testing.T) {
	s := StaticWeights{W: [][]float64{{0.8, 0.2}, {0.5, 0.5}}}
	p, _ := s.Aggregate([]Payload{{10}, {20}})
	if math.Abs(p[0][0]-12) > 1e-12 || math.Abs(p[1][0]-15) > 1e-12 {
		t.Fatalf("static mix wrong: %v", p)
	}
}

func smallConfig() cloudsim.Config {
	cfg := cloudsim.DefaultConfig([]cloudsim.VMSpec{{CPU: 4, Mem: 16}, {CPU: 8, Mem: 32}})
	return cfg
}

func smallTasks(seed int64, n int) []workload.Task {
	rng := rand.New(rand.NewSource(seed))
	return cloudsim.ClampTasks(workload.SampleDataset(workload.Google, rng, n), smallConfig().VMs)
}

func newPPOClient(t *testing.T, id int, seed int64) *Client {
	t.Helper()
	cfg := smallConfig()
	tasks := smallTasks(seed, 10)
	dim := cloudsim.StateDim(cfg)
	agent := rl.NewPPO(rl.DefaultConfig(dim, cfg.PadVMs+1), rand.New(rand.NewSource(seed*7+1)))
	c, err := NewClient(id, "c", cfg, tasks, agent)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func newDualClient(t *testing.T, id int, seed int64) *Client {
	t.Helper()
	cfg := smallConfig()
	tasks := smallTasks(seed, 10)
	dim := cloudsim.StateDim(cfg)
	agent := rl.NewDualCriticPPO(rl.DefaultConfig(dim, cfg.PadVMs+1), rand.New(rand.NewSource(seed*7+1)))
	c, err := NewClient(id, "c", cfg, tasks, agent)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// mustUpload extracts a payload, failing the test on error.
func mustUpload(t *testing.T, tr Transport, c *Client) Payload {
	t.Helper()
	p, err := tr.Upload(c)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestActorCriticTransportRoundTrip(t *testing.T) {
	a := newPPOClient(t, 0, 1)
	b := newPPOClient(t, 1, 2)
	tr := ActorCriticTransport{}
	payload := mustUpload(t, tr, a)
	if len(payload) != tr.PayloadSize(a) {
		t.Fatal("payload size mismatch")
	}
	if err := tr.Download(b, payload); err != nil {
		t.Fatal(err)
	}
	if err := tr.Download(b, payload[:10]); err == nil {
		t.Fatal("expected size error")
	}
	pa := a.Agent.(*rl.PPO)
	pb := b.Agent.(*rl.PPO)
	fa := nn.FlattenParams(pa.Actor)
	fb := nn.FlattenParams(pb.Actor)
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatal("actor transfer mismatch")
		}
	}
}

func TestPublicCriticTransportOnlyMovesPsi(t *testing.T) {
	a := newDualClient(t, 0, 3)
	b := newDualClient(t, 1, 4)
	tr := PublicCriticTransport{}
	da := a.Agent.(*rl.DualCriticPPO)
	db := b.Agent.(*rl.DualCriticPPO)
	actorBefore := nn.FlattenParams(db.Actor)
	localBefore := nn.FlattenParams(db.LocalCritic)
	if err := tr.Download(b, mustUpload(t, tr, a)); err != nil {
		t.Fatal(err)
	}
	pubA := nn.FlattenParams(da.PublicCritic)
	pubB := nn.FlattenParams(db.PublicCritic)
	for i := range pubA {
		if pubA[i] != pubB[i] {
			t.Fatal("public critic transfer mismatch")
		}
	}
	for i, v := range nn.FlattenParams(db.Actor) {
		if v != actorBefore[i] {
			t.Fatal("actor must not travel")
		}
	}
	for i, v := range nn.FlattenParams(db.LocalCritic) {
		if v != localBefore[i] {
			t.Fatal("local critic must not travel")
		}
	}
	// Communication cost: the dual-critic transport moves fewer scalars
	// than actor+critic would for the same architecture (§5.2 claim).
	if tr.PayloadSize(a) >= nn.NumParams(da.Actor)+nn.NumParams(da.LocalCritic)+nn.NumParams(da.PublicCritic) {
		t.Fatal("public-critic payload should be smaller than the full model")
	}
}

func TestTransportTypeMismatch(t *testing.T) {
	dual := newDualClient(t, 0, 5)
	if err := (ActorCriticTransport{}).Download(dual, Payload{}); err == nil {
		t.Fatal("expected type error")
	}
	if _, err := (ActorCriticTransport{}).Upload(dual); err == nil {
		t.Fatal("expected upload type error, not a panic")
	}
	ppo := newPPOClient(t, 1, 6)
	if err := (PublicCriticTransport{}).Download(ppo, Payload{}); err == nil {
		t.Fatal("expected type error")
	}
	if _, err := (PublicCriticTransport{}).Upload(ppo); err == nil {
		t.Fatal("expected upload type error, not a panic")
	}
	if _, err := (FedProxTransport{Mu: 0.1}).Upload(dual); err == nil {
		t.Fatal("expected upload type error, not a panic")
	}
}

func TestMismatchedClientFailsRoundNotProcess(t *testing.T) {
	// A federation misconfigured with a dual-critic client behind the
	// actor+critic transport must surface an error from New (the initial
	// sync), not panic the process.
	clients := []*Client{newDualClient(t, 0, 7), newDualClient(t, 1, 8)}
	if _, err := New(clients, ActorCriticTransport{}, FedAvg{}, Options{Seed: 1}); err == nil {
		t.Fatal("expected error from misconfigured federation")
	}
}

func TestFederationInitSynchronizes(t *testing.T) {
	clients := []*Client{newPPOClient(t, 0, 10), newPPOClient(t, 1, 11), newPPOClient(t, 2, 12)}
	tr := ActorCriticTransport{}
	_, err := New(clients, tr, FedAvg{}, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ref := mustUpload(t, tr, clients[0])
	for _, c := range clients[1:] {
		got := mustUpload(t, tr, c)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatal("initial sync failed")
			}
		}
	}
}

func TestFederationRoundLifecycle(t *testing.T) {
	clients := []*Client{newDualClient(t, 0, 20), newDualClient(t, 1, 21), newDualClient(t, 2, 22), newDualClient(t, 3, 23)}
	f, err := New(clients, PublicCriticTransport{}, NewAttention(9), Options{K: 2, CommEvery: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.RunEpisodes(5); err != nil { // 2 rounds + 1 trailing episode
		t.Fatal(err)
	}
	if f.Rounds != 2 {
		t.Fatalf("rounds %d, want 2", f.Rounds)
	}
	for _, c := range clients {
		if len(c.Rewards) != 5 {
			t.Fatalf("client %d trained %d episodes, want 5", c.ID, len(c.Rewards))
		}
		if len(c.CriticLossPre) != 2 || len(c.CriticLossPost) != 2 {
			t.Fatalf("probe counts %d/%d", len(c.CriticLossPre), len(c.CriticLossPost))
		}
		if len(c.AlphaHistory) != 5 {
			t.Fatalf("alpha history %d", len(c.AlphaHistory))
		}
	}
	if len(f.Global) == 0 {
		t.Fatal("global payload missing")
	}
}

func TestNonParticipantsGetGlobal(t *testing.T) {
	clients := []*Client{newDualClient(t, 0, 30), newDualClient(t, 1, 31), newDualClient(t, 2, 32)}
	tr := PublicCriticTransport{}
	f, err := New(clients, tr, FedAvg{}, Options{K: 1, CommEvery: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.RunRound(); err != nil {
		t.Fatal(err)
	}
	// With FedAvg over K=1 every client (participant or not) ends up with
	// the same global payload.
	for _, c := range clients {
		got := mustUpload(t, tr, c)
		for i := range f.Global {
			if got[i] != f.Global[i] {
				t.Fatal("client out of sync with global")
			}
		}
	}
}

func TestAddClientReceivesGlobal(t *testing.T) {
	clients := []*Client{newDualClient(t, 0, 40), newDualClient(t, 1, 41)}
	tr := PublicCriticTransport{}
	f, err := New(clients, tr, FedAvg{}, Options{K: 2, CommEvery: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.RunRound(); err != nil {
		t.Fatal(err)
	}
	joiner := newDualClient(t, 99, 42)
	if err := f.AddClient(joiner); err != nil {
		t.Fatal(err)
	}
	got := mustUpload(t, tr, joiner)
	for i := range f.Global {
		if got[i] != f.Global[i] {
			t.Fatal("joiner did not receive global model")
		}
	}
	if len(f.Clients) != 3 {
		t.Fatal("joiner not appended")
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	build := func(parallel bool) []float64 {
		clients := []*Client{newPPOClient(t, 0, 50), newPPOClient(t, 1, 51), newPPOClient(t, 2, 52)}
		f, err := New(clients, ActorCriticTransport{}, FedAvg{}, Options{K: 3, CommEvery: 2, Seed: 6, Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		if err := f.RunEpisodes(4); err != nil {
			t.Fatal(err)
		}
		return MeanRewardCurve(clients)
	}
	serial := build(false)
	par := build(true)
	if len(serial) != len(par) {
		t.Fatal("curve lengths differ")
	}
	for i := range serial {
		if serial[i] != par[i] {
			t.Fatalf("parallel run diverged at episode %d: %v vs %v", i, serial[i], par[i])
		}
	}
}

func TestMeanRewardCurve(t *testing.T) {
	a := &Client{Rewards: []float64{1, 2, 3}}
	b := &Client{Rewards: []float64{3, 4}}
	got := MeanRewardCurve([]*Client{a, b})
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("mean curve %v", got)
	}
	if MeanRewardCurve(nil) != nil {
		t.Fatal("empty input should give nil")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, ActorCriticTransport{}, FedAvg{}, Options{}); err == nil {
		t.Fatal("expected error for no clients")
	}
	// K out of range falls back to N.
	clients := []*Client{newPPOClient(t, 0, 60)}
	f, err := New(clients, ActorCriticTransport{}, FedAvg{}, Options{K: 99, CommEvery: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if f.K != 1 || f.CommEvery != 1 {
		t.Fatalf("defaults wrong: K=%d comm=%d", f.K, f.CommEvery)
	}
}

func TestEngineSelectSubset(t *testing.T) {
	// Selection now lives in the shared round engine; the federation-facing
	// contract is unchanged: K distinct indices drawn without replacement.
	e, err := fedcore.New(FedAvg{}, Payload{0}, fedcore.Options{K: 3, Clients: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	got := e.Select([]int{0, 1, 2, 3, 4})
	if len(got) != 3 {
		t.Fatalf("len %d", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if v < 0 || v >= 5 || seen[v] {
			t.Fatalf("bad subset %v", got)
		}
		seen[v] = true
	}
	if len(e.Select([]int{0, 1})) != 2 {
		t.Fatal("fewer candidates than K should clamp to the candidates")
	}
}

func TestEvaluateProducesMetrics(t *testing.T) {
	c := newPPOClient(t, 0, 70)
	m := c.Evaluate(smallTasks(71, 8))
	if m.Total != 8 {
		t.Fatalf("eval total %d", m.Total)
	}
}

func TestCommStatsAccounting(t *testing.T) {
	clients := []*Client{newDualClient(t, 0, 80), newDualClient(t, 1, 81), newDualClient(t, 2, 82)}
	tr := PublicCriticTransport{}
	f, err := New(clients, tr, FedAvg{}, Options{K: 2, CommEvery: 1, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	size := int64(tr.PayloadSize(clients[0]))
	if err := f.RunRound(); err != nil {
		t.Fatal(err)
	}
	stats := f.Comm()
	if stats.Rounds != 1 {
		t.Fatalf("rounds %d", stats.Rounds)
	}
	// K=2 uploads; every client (3) downloads.
	if stats.UploadScalars != 2*size {
		t.Fatalf("uploads %d, want %d", stats.UploadScalars, 2*size)
	}
	if stats.DownloadScalars != 3*size {
		t.Fatalf("downloads %d, want %d", stats.DownloadScalars, 3*size)
	}
	if stats.Total() != 5*size {
		t.Fatalf("totals wrong: %+v", stats)
	}
	// Measured wire bytes: 5 identity frames, each a 20-byte header plus
	// 8 bytes per scalar.
	frame := int64(fedcore.FrameLen(fedcore.TierIdentity, int(size)))
	if stats.Bytes() != 5*frame {
		t.Fatalf("measured bytes %d, want %d: %+v", stats.Bytes(), 5*frame, stats)
	}
	if stats.RawBytes() != 8*stats.Total() {
		t.Fatalf("raw bytes %d, want %d", stats.RawBytes(), 8*stats.Total())
	}
	// Identity frames pay the header, so the "compression" ratio sits just
	// below 1.
	if r := stats.CompressionRatio(); r <= 0.99 || r >= 1 {
		t.Fatalf("identity compression ratio %v", r)
	}
}

func TestPublicCriticTransportCheaperThanActorCritic(t *testing.T) {
	// The §5.2 communication claim, end to end: for the same architecture,
	// a PFRL-DM round moves fewer scalars than a FedAvg round.
	dual := []*Client{newDualClient(t, 0, 90), newDualClient(t, 1, 91)}
	full := []*Client{newPPOClient(t, 0, 90), newPPOClient(t, 1, 91)}
	fd, err := New(dual, PublicCriticTransport{}, FedAvg{}, Options{K: 2, CommEvery: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	ff, err := New(full, ActorCriticTransport{}, FedAvg{}, Options{K: 2, CommEvery: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := fd.RunRound(); err != nil {
		t.Fatal(err)
	}
	if err := ff.RunRound(); err != nil {
		t.Fatal(err)
	}
	if fd.Comm().Total() >= ff.Comm().Total() {
		t.Fatalf("dual-critic round (%d scalars) should be cheaper than full-model round (%d)",
			fd.Comm().Total(), ff.Comm().Total())
	}
}
