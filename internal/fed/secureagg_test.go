package fed

import (
	"math"
	"math/rand"
	"testing"
)

func randomUploads(seed int64, k, dim int) []Payload {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Payload, k)
	for i := range out {
		out[i] = make(Payload, dim)
		for d := range out[i] {
			out[i][d] = rng.NormFloat64() * 0.1
		}
	}
	return out
}

func TestSecureFedAvgMatchesFedAvg(t *testing.T) {
	uploads := randomUploads(1, 4, 200)
	_, secure := NewSecureFedAvg(7).Aggregate(uploads)
	_, plain := FedAvg{}.Aggregate(uploads)
	for d := range plain {
		if math.Abs(secure[d]-plain[d]) > 1e-9 {
			t.Fatalf("secure mean diverges at %d: %v vs %v", d, secure[d], plain[d])
		}
	}
}

func TestSecureFedAvgMasksHideIndividuals(t *testing.T) {
	uploads := randomUploads(2, 3, 500)
	agg := NewSecureFedAvg(9)
	agg.Aggregate(uploads)
	// Each masked upload must be far from the raw upload — the server
	// can't read individual models.
	for i := range uploads {
		dist := 0.0
		for d := range uploads[i] {
			diff := agg.LastMasked[i][d] - uploads[i][d]
			dist += diff * diff
		}
		rms := math.Sqrt(dist / float64(len(uploads[i])))
		if rms < agg.MaskScale/2 {
			t.Fatalf("upload %d insufficiently masked: rms distance %v", i, rms)
		}
	}
}

func TestSecureFedAvgDeterministicForSeed(t *testing.T) {
	uploads := randomUploads(3, 3, 50)
	_, g1 := NewSecureFedAvg(5).Aggregate(uploads)
	_, g2 := NewSecureFedAvg(5).Aggregate(uploads)
	for d := range g1 {
		if g1[d] != g2[d] {
			t.Fatal("same seed must give identical aggregates")
		}
	}
}

func TestSecureFedAvgSingleClient(t *testing.T) {
	uploads := randomUploads(4, 1, 20)
	_, g := NewSecureFedAvg(1).Aggregate(uploads)
	// No pairs to mask with; the mean is the upload itself.
	for d := range g {
		if g[d] != uploads[0][d] {
			t.Fatal("single-client secure aggregation should be identity")
		}
	}
}

func TestSecureFedAvgInFederation(t *testing.T) {
	clients := []*Client{newPPOClient(t, 0, 100), newPPOClient(t, 1, 101), newPPOClient(t, 2, 102)}
	f, err := New(clients, ActorCriticTransport{}, NewSecureFedAvg(11),
		Options{K: 3, CommEvery: 1, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.RunRound(); err != nil {
		t.Fatal(err)
	}
	// All clients end up synchronized on the (securely computed) mean.
	tr := ActorCriticTransport{}
	ref := mustUpload(t, tr, clients[0])
	for _, c := range clients[1:] {
		got := mustUpload(t, tr, c)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatal("clients diverged under secure aggregation")
			}
		}
	}
}

func TestFedProxTransportAnchorsClients(t *testing.T) {
	clients := []*Client{newPPOClient(t, 0, 110), newPPOClient(t, 1, 111)}
	tr := FedProxTransport{Mu: 0.1}
	f, err := New(clients, tr, FedAvg{}, Options{K: 2, CommEvery: 1, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.RunRound(); err != nil {
		t.Fatal(err)
	}
	if tr.PayloadSize(clients[0]) != (ActorCriticTransport{}).PayloadSize(clients[0]) {
		t.Fatal("FedProx payload should match the plain transport")
	}
}
