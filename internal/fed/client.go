// Package fed implements the in-process federated-reinforcement-learning
// layer of the paper: clients that train scheduling agents in their own
// environments, a Federation adapter that drives the shared round engine
// (internal/fedcore) with K-of-N participation (Algorithm 1), and three
// aggregation strategies — plain FedAvg (McMahan et al.), a server-momentum
// aggregator standing in for MFPO (Yue et al., INFOCOM'24), and the
// multi-head-attention personalizing aggregator of PFRL-DM (§4.4–4.5).
//
// The layer is composed of orthogonal pieces:
//
//   - Transport: what travels between client and server. FedAvg/MFPO move
//     the whole actor+critic; PFRL-DM moves only the public critic.
//   - Aggregator: how the server combines uploads into per-client
//     personalized payloads and a stored global payload for
//     non-participants and late joiners.
//   - The round engine (internal/fedcore): selection, partial-aggregation
//     policy, reports, and the late-join rule — shared with the networked
//     path in internal/fednet.
package fed

import (
	"fmt"
	"time"

	"repro/internal/cloudsim"
	"repro/internal/obs"
	"repro/internal/rl"
	"repro/internal/workload"
)

// EpisodeEnv is a training environment that can restart its episode from
// the client's fixed training data. cloudsim task sets and workflow DAG
// sets both adapt to it, so the federation is agnostic to the environment
// flavour.
type EpisodeEnv interface {
	rl.Environment
	// Begin resets the environment to the start of a training episode.
	Begin()
}

// Client couples an agent with its private environment and training tasks.
type Client struct {
	ID    int
	Name  string
	Env   *cloudsim.Env
	Tasks []workload.Task
	Agent rl.Agent

	// TrainEnv, when non-nil, overrides the default task-set training
	// loop — used for non-task environments such as workflow DAGs.
	TrainEnv EpisodeEnv

	// Rewards is the per-episode total-reward training curve.
	Rewards []float64
	// CriticLossPre / CriticLossPost record the critic's MSE on the most
	// recent trajectories immediately before and after each model download
	// (the Figure-9 probes).
	CriticLossPre  []float64
	CriticLossPost []float64
	// AlphaHistory records α after every episode for dual-critic agents.
	AlphaHistory []float64

	// LastBuf holds the most recent episode's trajectories for loss probes
	// and α refreshes.
	LastBuf rl.Buffer
}

// NewClient builds a federated client. The environment keeps cfg's
// federation-wide padding so all clients share observation shapes.
func NewClient(id int, name string, cfg cloudsim.Config, tasks []workload.Task, agent rl.Agent) (*Client, error) {
	env, err := cloudsim.NewEnv(cfg, tasks)
	if err != nil {
		return nil, fmt.Errorf("fed: client %d: %w", id, err)
	}
	return &Client{ID: id, Name: name, Env: env, Tasks: tasks, Agent: agent}, nil
}

// TrainEpisodes runs n on-policy episodes with local updates, appending to
// the client's reward curve. The last episode's buffer is retained in
// LastBuf for loss probes.
//
// Each episode feeds the observability layer: rollout/update wall-clock
// accumulates into the global phase timers, the shared episode counter and
// latency histograms advance, and — only when an event sink is installed —
// an "episode" event with the update statistics is emitted. None of this
// touches the agents' RNG streams, so instrumented runs stay bit-identical.
func (c *Client) TrainEpisodes(n int) {
	for i := 0; i < n; i++ {
		var env rl.Environment
		if c.TrainEnv != nil {
			c.TrainEnv.Begin()
			env = c.TrainEnv
		} else {
			c.Env.Reset(c.Tasks)
			env = c.Env
		}
		c.LastBuf.Reset()
		rolloutStart := time.Now()
		total := rl.CollectEpisode(env, c.Agent, &c.LastBuf)
		rolloutDur := time.Since(rolloutStart)
		updateStart := time.Now()
		stats := c.Agent.Update(&c.LastBuf)
		updateDur := time.Since(updateStart)
		obs.GlobalTimers().Add(obs.PhaseRollout, rolloutDur)
		obs.GlobalTimers().Add(obs.PhaseUpdate, updateDur)
		mEpisodes.Inc()
		hRollout.Observe(rolloutDur.Seconds())
		hUpdate.Observe(updateDur.Seconds())
		c.Rewards = append(c.Rewards, total)
		if d, ok := c.Agent.(*rl.DualCriticPPO); ok {
			c.AlphaHistory = append(c.AlphaHistory, d.Alpha)
		}
		if obs.Active() {
			e := obs.E("episode").At(c.ID, -1, len(c.Rewards)-1).
				F("reward", total).
				F("steps", float64(c.LastBuf.Len())).
				F("actor_loss", stats.ActorLoss).
				F("critic_loss", stats.CriticLoss).
				F("entropy", stats.Entropy).
				F("approx_kl", stats.ApproxKL).
				F("clip_frac", stats.ClipFrac).
				F("rollout_seconds", rolloutDur.Seconds()).
				F("update_seconds", updateDur.Seconds())
			if d, ok := c.Agent.(*rl.DualCriticPPO); ok {
				e.F("alpha", d.Alpha)
			}
			if c.TrainEnv == nil {
				m := c.Env.Metrics()
				e.F("completed", float64(m.Completed)).F("total_tasks", float64(m.Total))
			}
			obs.Emit(e)
		}
	}
}

// Evaluate runs one greedy episode over the given task set and returns the
// environment metrics. The training environment configuration is reused.
// Agents that support it are evaluated with the deployment-time
// feasibility guard (see rl.EvaluateEpisodeMasked).
func (c *Client) Evaluate(tasks []workload.Task) cloudsim.Metrics {
	env := cloudsim.MustNewEnv(c.Env.Config(), tasks)
	if ma, ok := c.Agent.(rl.MaskedAgent); ok {
		rl.EvaluateEpisodeMasked(env, ma)
	} else {
		rl.EvaluateEpisode(env, c.Agent)
	}
	env.Drain()
	return env.Metrics()
}

// probeCriticLoss measures the critic MSE used by the Figure-9 probes:
// the blended critic for dual-critic agents, the single critic for PPO.
func (c *Client) probeCriticLoss() float64 {
	if c.LastBuf.Len() == 0 {
		return 0
	}
	switch a := c.Agent.(type) {
	case *rl.DualCriticPPO:
		// Probe the network that aggregation touches: the public critic.
		return rl.CriticMSE(a.PublicCritic, &c.LastBuf, a.Cfg.Gamma)
	case *rl.PPO:
		return rl.CriticMSE(a.Critic, &c.LastBuf, a.Cfg.Gamma)
	default:
		return 0
	}
}
