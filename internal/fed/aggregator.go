package fed

import (
	"fmt"

	"repro/internal/attn"
	"repro/internal/fedcore"
)

// Aggregator combines the participating clients' uploads. Aggregate returns
// one personalized payload per upload (same order) plus the new global
// payload stored on the server for non-participants and late joiners. It is
// the round engine's interface; this package provides the concrete
// strategies (FedAvg, MFPO momentum, PFRL-DM attention, static weights).
type Aggregator = fedcore.Aggregator

// AggregatePartial delegates to the round engine's single implementation of
// the partial-participation policy (k-of-n rounds; k=0 keeps the previous
// global payload). Kept here so aggregation call sites and tests read
// naturally next to the strategies.
func AggregatePartial(agg Aggregator, uploads []Payload, prevGlobal Payload) (personalized []Payload, global Payload) {
	return fedcore.AggregatePartial(agg, uploads, prevGlobal)
}

// meanPayload is the allocating mean used by the legacy Aggregate paths and
// SecureFedAvg. It reduces through fedcore.ReduceMeanInto, so its
// accumulation order — and therefore its bits — match the pooled fast path
// exactly.
func meanPayload(uploads []Payload) Payload {
	if len(uploads) == 0 {
		panic("fed: aggregate of zero uploads")
	}
	out := make(Payload, len(uploads[0]))
	fedcore.ReduceMeanInto(out, uploads)
	return out
}

// FedAvg is the classic parameter-averaging aggregator (McMahan et al.):
// every participant receives the same global mean.
type FedAvg struct{}

// Name implements Aggregator.
func (FedAvg) Name() string { return "FedAvg" }

// Aggregate implements Aggregator.
func (FedAvg) Aggregate(uploads []Payload) ([]Payload, Payload) {
	global := meanPayload(uploads)
	personalized := make([]Payload, len(uploads))
	for i := range personalized {
		personalized[i] = append(Payload(nil), global...)
	}
	return personalized, global
}

// AggregateInto implements fedcore.IntoAggregator: the mean reduces into the
// arena's global buffer and every personalized view aliases it — FedAvg
// hands all participants the identical model, so the seed-era K× copies were
// pure overhead. Results are valid until the arena's next round.
func (FedAvg) AggregateInto(uploads []Payload, arena *fedcore.PayloadArena) ([]Payload, Payload) {
	global := arena.Global(len(uploads[0]))
	fedcore.ReduceMeanInto(global, uploads)
	return arena.Alias(len(uploads), global), global
}

// Momentum is the server-side momentum aggregator standing in for MFPO
// (Yue et al., INFOCOM'24): the server keeps a velocity over the aggregate
// update direction, preserving the influence of past rounds —
// exactly the behaviour the paper credits for MFPO's steady-but-suboptimal
// curves in heterogeneous federations (§5.2).
//
//	Δ_t = mean(uploads) − g_t
//	v_t = β·v_{t−1} + Δ_t
//	g_{t+1} = g_t + v_t
type Momentum struct {
	// Beta is the momentum coefficient (0.9 in the experiments).
	Beta float64

	global   Payload
	velocity Payload
}

// NewMomentum returns a server-momentum aggregator with coefficient beta.
func NewMomentum(beta float64) *Momentum { return &Momentum{Beta: beta} }

// Name implements Aggregator.
func (*Momentum) Name() string { return "MFPO" }

// Aggregate implements Aggregator.
func (m *Momentum) Aggregate(uploads []Payload) ([]Payload, Payload) {
	mean := meanPayload(uploads)
	m.step(mean)
	personalized := make([]Payload, len(uploads))
	for i := range personalized {
		personalized[i] = append(Payload(nil), m.global...)
	}
	return personalized, append(Payload(nil), m.global...)
}

// AggregateInto implements fedcore.IntoAggregator. The mean reduces into the
// arena buffer, the velocity/global column update fans out across workers
// (elementwise, so bit-identical at any width), and the personalized views
// alias the aggregator's own global — momentum hands everyone the same
// model. Results are valid until the next round; the engine copy-installs
// the global.
func (m *Momentum) AggregateInto(uploads []Payload, arena *fedcore.PayloadArena) ([]Payload, Payload) {
	mean := arena.Global(len(uploads[0]))
	fedcore.ReduceMeanInto(mean, uploads)
	m.step(mean)
	return arena.Alias(len(uploads), m.global), m.global
}

// step applies the velocity update (or bootstraps state on first contact).
func (m *Momentum) step(mean Payload) {
	if m.global == nil {
		m.global = append(Payload(nil), mean...)
		m.velocity = make(Payload, len(mean))
		return
	}
	if len(mean) != len(m.global) {
		panic(fmt.Sprintf("fed: momentum dim changed %d -> %d", len(m.global), len(mean)))
	}
	if dim := len(m.global); fedcore.SerialChunk(dim, dim) {
		// The closure literal lives in the else branch only: building it
		// here would heap-allocate every round even when it runs serially.
		m.stepChunk(mean, 0, dim)
	} else {
		fedcore.ParallelChunks(dim, dim, func(lo, hi int) { m.stepChunk(mean, lo, hi) })
	}
}

// stepChunk applies the velocity update over columns [lo, hi) — the shared
// kernel of the serial and parallel paths.
func (m *Momentum) stepChunk(mean Payload, lo, hi int) {
	beta := m.Beta
	g, v, u := m.global[lo:hi], m.velocity[lo:hi], mean[lo:hi]
	for j := range g {
		delta := u[j] - g[j]
		v[j] = beta*v[j] + delta
		g[j] += v[j]
	}
}

// Attention is PFRL-DM's personalizing aggregator (§4.4, Algorithm 1
// lines 9–15): multi-head attention weights over the uploaded critics give
// each participant its own mixture ψ_k = Σ_j W[k][j]·ψ_j (Eq. 21), and the
// stored global model is the mean of the personalized models (Eq. 22).
type Attention struct {
	Gen *attn.Aggregator

	// LastWeights is the most recent K×K attention matrix (exposed for the
	// Figure-11 heatmap harness).
	LastWeights [][]float64
}

// NewAttention returns an attention aggregator with the given seed for the
// head projections.
func NewAttention(seed int64) *Attention {
	return &Attention{Gen: attn.NewAggregator(seed)}
}

// Name implements Aggregator.
func (*Attention) Name() string { return "PFRL-DM" }

// Aggregate implements Aggregator.
func (a *Attention) Aggregate(uploads []Payload) ([]Payload, Payload) {
	w := a.Gen.Weights(uploads)
	a.LastWeights = w
	k := len(uploads)
	dim := len(uploads[0])
	personalized := make([]Payload, k)
	for i := range personalized {
		personalized[i] = make(Payload, dim)
	}
	fedcore.WeightedMixInto(personalized, w, uploads)
	// Eq. (22): ψ_G = mean of the personalized models.
	global := meanPayload(personalized)
	return personalized, global
}

// AggregateInto implements fedcore.IntoAggregator: the Eq. 21 mix writes
// into arena-carved views and the Eq. 22 mean into the arena global, both
// through the parallel tree-reduce. The attention weight computation itself
// still allocates (it is O(K²·heads), negligible next to the O(K·dim) data
// plane). Results are valid until the arena's next round.
func (a *Attention) AggregateInto(uploads []Payload, arena *fedcore.PayloadArena) ([]Payload, Payload) {
	w := a.Gen.Weights(uploads)
	a.LastWeights = w
	k := len(uploads)
	dim := len(uploads[0])
	personalized := arena.Payloads(k, dim)
	fedcore.WeightedMixInto(personalized, w, uploads)
	global := arena.Global(dim)
	fedcore.ReduceMeanInto(global, personalized)
	return personalized, global
}

// StaticWeights applies a fixed row-stochastic weight matrix — the
// Fed-Diff-weight / Fed-Same2-weight configurations of §3.3 (Figure 10),
// where one client is manually told to pay more attention to another.
type StaticWeights struct {
	// W[i][j] is the weight participant i assigns to participant j's
	// upload. Rows should sum to 1.
	W [][]float64
}

// Name implements Aggregator.
func (StaticWeights) Name() string { return "static-weights" }

// Aggregate implements Aggregator.
func (s StaticWeights) Aggregate(uploads []Payload) ([]Payload, Payload) {
	k := len(uploads)
	if len(s.W) != k {
		panic(fmt.Sprintf("fed: static weight matrix is %dx? for %d uploads", len(s.W), k))
	}
	dim := len(uploads[0])
	personalized := make([]Payload, k)
	for i := range personalized {
		personalized[i] = make(Payload, dim)
	}
	fedcore.WeightedMixInto(personalized, s.W, uploads)
	return personalized, meanPayload(personalized)
}

// AggregateInto implements fedcore.IntoAggregator with the same arena-backed
// mix-then-mean shape as Attention, minus the weight generation.
func (s StaticWeights) AggregateInto(uploads []Payload, arena *fedcore.PayloadArena) ([]Payload, Payload) {
	k := len(uploads)
	if len(s.W) != k {
		panic(fmt.Sprintf("fed: static weight matrix is %dx? for %d uploads", len(s.W), k))
	}
	dim := len(uploads[0])
	personalized := arena.Payloads(k, dim)
	fedcore.WeightedMixInto(personalized, s.W, uploads)
	global := arena.Global(dim)
	fedcore.ReduceMeanInto(global, personalized)
	return personalized, global
}
