package fed

import (
	"fmt"

	"repro/internal/attn"
	"repro/internal/fedcore"
)

// Aggregator combines the participating clients' uploads. Aggregate returns
// one personalized payload per upload (same order) plus the new global
// payload stored on the server for non-participants and late joiners. It is
// the round engine's interface; this package provides the concrete
// strategies (FedAvg, MFPO momentum, PFRL-DM attention, static weights).
type Aggregator = fedcore.Aggregator

// AggregatePartial delegates to the round engine's single implementation of
// the partial-participation policy (k-of-n rounds; k=0 keeps the previous
// global payload). Kept here so aggregation call sites and tests read
// naturally next to the strategies.
func AggregatePartial(agg Aggregator, uploads []Payload, prevGlobal Payload) (personalized []Payload, global Payload) {
	return fedcore.AggregatePartial(agg, uploads, prevGlobal)
}

func meanPayload(uploads []Payload) Payload {
	if len(uploads) == 0 {
		panic("fed: aggregate of zero uploads")
	}
	dim := len(uploads[0])
	out := make(Payload, dim)
	for i, u := range uploads {
		if len(u) != dim {
			panic(fmt.Sprintf("fed: upload %d has %d params, want %d", i, len(u), dim))
		}
		for j, v := range u {
			out[j] += v
		}
	}
	inv := 1.0 / float64(len(uploads))
	for j := range out {
		out[j] *= inv
	}
	return out
}

// FedAvg is the classic parameter-averaging aggregator (McMahan et al.):
// every participant receives the same global mean.
type FedAvg struct{}

// Name implements Aggregator.
func (FedAvg) Name() string { return "FedAvg" }

// Aggregate implements Aggregator.
func (FedAvg) Aggregate(uploads []Payload) ([]Payload, Payload) {
	global := meanPayload(uploads)
	personalized := make([]Payload, len(uploads))
	for i := range personalized {
		personalized[i] = append(Payload(nil), global...)
	}
	return personalized, global
}

// Momentum is the server-side momentum aggregator standing in for MFPO
// (Yue et al., INFOCOM'24): the server keeps a velocity over the aggregate
// update direction, preserving the influence of past rounds —
// exactly the behaviour the paper credits for MFPO's steady-but-suboptimal
// curves in heterogeneous federations (§5.2).
//
//	Δ_t = mean(uploads) − g_t
//	v_t = β·v_{t−1} + Δ_t
//	g_{t+1} = g_t + v_t
type Momentum struct {
	// Beta is the momentum coefficient (0.9 in the experiments).
	Beta float64

	global   Payload
	velocity Payload
}

// NewMomentum returns a server-momentum aggregator with coefficient beta.
func NewMomentum(beta float64) *Momentum { return &Momentum{Beta: beta} }

// Name implements Aggregator.
func (*Momentum) Name() string { return "MFPO" }

// Aggregate implements Aggregator.
func (m *Momentum) Aggregate(uploads []Payload) ([]Payload, Payload) {
	mean := meanPayload(uploads)
	if m.global == nil {
		m.global = append(Payload(nil), mean...)
		m.velocity = make(Payload, len(mean))
	} else {
		if len(mean) != len(m.global) {
			panic(fmt.Sprintf("fed: momentum dim changed %d -> %d", len(m.global), len(mean)))
		}
		for j := range m.global {
			delta := mean[j] - m.global[j]
			m.velocity[j] = m.Beta*m.velocity[j] + delta
			m.global[j] += m.velocity[j]
		}
	}
	personalized := make([]Payload, len(uploads))
	for i := range personalized {
		personalized[i] = append(Payload(nil), m.global...)
	}
	return personalized, append(Payload(nil), m.global...)
}

// Attention is PFRL-DM's personalizing aggregator (§4.4, Algorithm 1
// lines 9–15): multi-head attention weights over the uploaded critics give
// each participant its own mixture ψ_k = Σ_j W[k][j]·ψ_j (Eq. 21), and the
// stored global model is the mean of the personalized models (Eq. 22).
type Attention struct {
	Gen *attn.Aggregator

	// LastWeights is the most recent K×K attention matrix (exposed for the
	// Figure-11 heatmap harness).
	LastWeights [][]float64
}

// NewAttention returns an attention aggregator with the given seed for the
// head projections.
func NewAttention(seed int64) *Attention {
	return &Attention{Gen: attn.NewAggregator(seed)}
}

// Name implements Aggregator.
func (*Attention) Name() string { return "PFRL-DM" }

// Aggregate implements Aggregator.
func (a *Attention) Aggregate(uploads []Payload) ([]Payload, Payload) {
	w := a.Gen.Weights(uploads)
	a.LastWeights = w
	k := len(uploads)
	dim := len(uploads[0])
	personalized := make([]Payload, k)
	for i := 0; i < k; i++ {
		p := make(Payload, dim)
		for j := 0; j < k; j++ {
			wij := w[i][j]
			for d, v := range uploads[j] {
				p[d] += wij * v
			}
		}
		personalized[i] = p
	}
	// Eq. (22): ψ_G = mean of the personalized models.
	global := meanPayload(personalized)
	return personalized, global
}

// StaticWeights applies a fixed row-stochastic weight matrix — the
// Fed-Diff-weight / Fed-Same2-weight configurations of §3.3 (Figure 10),
// where one client is manually told to pay more attention to another.
type StaticWeights struct {
	// W[i][j] is the weight participant i assigns to participant j's
	// upload. Rows should sum to 1.
	W [][]float64
}

// Name implements Aggregator.
func (StaticWeights) Name() string { return "static-weights" }

// Aggregate implements Aggregator.
func (s StaticWeights) Aggregate(uploads []Payload) ([]Payload, Payload) {
	k := len(uploads)
	if len(s.W) != k {
		panic(fmt.Sprintf("fed: static weight matrix is %dx? for %d uploads", len(s.W), k))
	}
	dim := len(uploads[0])
	personalized := make([]Payload, k)
	for i := 0; i < k; i++ {
		if len(s.W[i]) != k {
			panic("fed: static weight matrix not square")
		}
		p := make(Payload, dim)
		for j := 0; j < k; j++ {
			wij := s.W[i][j]
			for d, v := range uploads[j] {
				p[d] += wij * v
			}
		}
		personalized[i] = p
	}
	return personalized, meanPayload(personalized)
}
