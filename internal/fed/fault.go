package fed

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrInjectedFault marks failures produced by FaultyTransport rather than
// by the wrapped transport. Callers use errors.Is to decide between
// "transient, retry / skip this round" and "misconfiguration, abort".
var ErrInjectedFault = errors.New("fed: injected fault")

// FaultSpec is a deterministic fault-injection schedule: every Upload and
// Download draws one event from a seeded RNG, so a run with a given spec is
// reproducible, and a spec with all probabilities zero is a bitwise
// pass-through (asserted by the determinism golden test).
type FaultSpec struct {
	// Seed drives the event schedule.
	Seed int64
	// Drop is the probability a call fails with ErrInjectedFault.
	Drop float64
	// Delay is the probability a call is stalled by DelayFor before
	// proceeding (a straggler, not a failure).
	Delay float64
	// DelayFor is the injected stall duration (default 10ms when Delay>0).
	DelayFor time.Duration
	// Duplicate is the probability the underlying operation runs twice —
	// an at-least-once delivery double, exercising idempotency.
	Duplicate float64
	// Corrupt is the probability of a corrupt-length payload: uploads come
	// back truncated, downloads hand the inner transport a truncated copy.
	// Length validation in the transports must turn this into an error.
	Corrupt float64
}

// Active reports whether the spec injects anything at all.
func (s FaultSpec) Active() bool {
	return s.Drop > 0 || s.Delay > 0 || s.Duplicate > 0 || s.Corrupt > 0
}

// ParseFaultSpec parses the CLI form "drop=0.1,delay=0.05:20ms,dup=0.02,
// corrupt=0.01,seed=7". Every field is optional; an empty string is the
// zero (inactive) spec.
func ParseFaultSpec(s string) (FaultSpec, error) {
	var spec FaultSpec
	s = strings.TrimSpace(s)
	if s == "" {
		return spec, nil
	}
	for _, field := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return spec, fmt.Errorf("fed: fault spec field %q is not key=value", field)
		}
		var err error
		switch key {
		case "drop":
			spec.Drop, err = parseProb(val)
		case "delay":
			// delay=PROB or delay=PROB:DURATION
			prob, dur, hasDur := strings.Cut(val, ":")
			if spec.Delay, err = parseProb(prob); err == nil && hasDur {
				spec.DelayFor, err = time.ParseDuration(dur)
			}
		case "dup":
			spec.Duplicate, err = parseProb(val)
		case "corrupt":
			spec.Corrupt, err = parseProb(val)
		case "seed":
			spec.Seed, err = strconv.ParseInt(val, 10, 64)
		default:
			return spec, fmt.Errorf("fed: unknown fault spec key %q", key)
		}
		if err != nil {
			return spec, fmt.Errorf("fed: fault spec %s: %w", key, err)
		}
	}
	if total := spec.Drop + spec.Delay + spec.Duplicate + spec.Corrupt; total > 1 {
		return spec, fmt.Errorf("fed: fault probabilities sum to %v > 1", total)
	}
	return spec, nil
}

func parseProb(s string) (float64, error) {
	p, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %v out of [0,1]", p)
	}
	return p, nil
}

// FaultStats counts the events a FaultyTransport injected.
type FaultStats struct {
	Drops, Delays, Duplicates, Corruptions int64
}

// Total returns the number of injected events across all kinds.
func (s FaultStats) Total() int64 {
	return s.Drops + s.Delays + s.Duplicates + s.Corruptions
}

// faultKind is one drawn event.
type faultKind int

const (
	faultNone faultKind = iota
	faultDrop
	faultDelay
	faultDuplicate
	faultCorrupt
)

// FaultyTransport decorates a Transport with deterministic fault
// injection. It is safe for concurrent use (the schedule RNG is locked),
// though concurrent callers observe events in arrival order rather than a
// fixed per-client order — deterministic tests run it serially.
type FaultyTransport struct {
	Inner Transport
	Spec  FaultSpec

	mu    sync.Mutex
	rng   *rand.Rand
	stats FaultStats

	// sleep is stubbed in tests; nil means time.Sleep.
	sleep func(time.Duration)
}

// NewFaultyTransport wraps inner with the given schedule.
func NewFaultyTransport(inner Transport, spec FaultSpec) *FaultyTransport {
	if spec.DelayFor <= 0 {
		spec.DelayFor = 10 * time.Millisecond
	}
	return &FaultyTransport{Inner: inner, Spec: spec, rng: rand.New(rand.NewSource(spec.Seed))}
}

// Name implements Transport.
func (t *FaultyTransport) Name() string { return "faulty(" + t.Inner.Name() + ")" }

// Stats returns a snapshot of the injected-event counters.
func (t *FaultyTransport) Stats() FaultStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// draw picks at most one event for the next call.
func (t *FaultyTransport) draw() faultKind {
	if !t.Spec.Active() {
		return faultNone
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	u := t.rng.Float64()
	switch {
	case u < t.Spec.Drop:
		t.stats.Drops++
		return faultDrop
	case u < t.Spec.Drop+t.Spec.Delay:
		t.stats.Delays++
		return faultDelay
	case u < t.Spec.Drop+t.Spec.Delay+t.Spec.Duplicate:
		t.stats.Duplicates++
		return faultDuplicate
	case u < t.Spec.Drop+t.Spec.Delay+t.Spec.Duplicate+t.Spec.Corrupt:
		t.stats.Corruptions++
		return faultCorrupt
	}
	return faultNone
}

func (t *FaultyTransport) doSleep() {
	if t.sleep != nil {
		t.sleep(t.Spec.DelayFor)
		return
	}
	time.Sleep(t.Spec.DelayFor)
}

// Upload implements Transport.
func (t *FaultyTransport) Upload(c *Client) (Payload, error) {
	switch t.draw() {
	case faultDrop:
		return nil, fmt.Errorf("%w: upload dropped (client %d)", ErrInjectedFault, c.ID)
	case faultDelay:
		t.doSleep()
	case faultDuplicate:
		// At-least-once: extract twice, deliver the second result.
		if _, err := t.Inner.Upload(c); err != nil {
			return nil, err
		}
	case faultCorrupt:
		p, err := t.Inner.Upload(c)
		if err != nil {
			return nil, err
		}
		if len(p) == 0 {
			return nil, fmt.Errorf("%w: corrupt empty upload (client %d)", ErrInjectedFault, c.ID)
		}
		return p[:len(p)-1], nil
	}
	return t.Inner.Upload(c)
}

// Download implements Transport.
func (t *FaultyTransport) Download(c *Client, p Payload) error {
	switch t.draw() {
	case faultDrop:
		return fmt.Errorf("%w: download dropped (client %d)", ErrInjectedFault, c.ID)
	case faultDelay:
		t.doSleep()
	case faultDuplicate:
		if err := t.Inner.Download(c, p); err != nil {
			return err
		}
	case faultCorrupt:
		if len(p) == 0 {
			return fmt.Errorf("%w: corrupt empty download (client %d)", ErrInjectedFault, c.ID)
		}
		// The inner transport's length check turns this into an error;
		// the truncated copy leaves the caller's payload intact.
		if err := t.Inner.Download(c, p[:len(p)-1]); err != nil {
			return fmt.Errorf("%w: corrupt-length download (client %d): %v", ErrInjectedFault, c.ID, err)
		}
		return fmt.Errorf("fed: transport %s accepted a corrupt-length download", t.Inner.Name())
	}
	return t.Inner.Download(c, p)
}

// PayloadSize implements Transport.
func (t *FaultyTransport) PayloadSize(c *Client) int { return t.Inner.PayloadSize(c) }
