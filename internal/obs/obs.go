// Package obs is the observability layer of the PFRL-DM stack: structured
// JSONL events, Prometheus-text-format metrics, and per-phase wall-clock
// timers. It is deliberately dependency-free and allocation-conscious.
//
// Design contract (DESIGN.md §10):
//
//   - Events are opt-in. The default sink is nil, Active() is one atomic
//     load, and instrumentation sites guard event construction with it, so
//     an uninstrumented run pays nothing on the rollout fast path (held to
//     0 allocs/op by rl's TestRolloutStepZeroAlloc).
//   - Metrics are always-on atomics: incrementing a Counter or setting a
//     Gauge never allocates and never takes a lock.
//   - Instrumentation only reads training state; it never touches an RNG
//     or mutates a model, so an instrumented run is bit-identical to an
//     uninstrumented one (asserted by core's golden determinism test).
package obs

import "sync/atomic"

// maxFields bounds an Event's inline payload; fields past the cap are
// dropped rather than spilling to the heap.
const maxFields = 16

// Field is one key/value pair of an Event payload. Val is used when Str is
// empty; the occasional string field carries an error class or RPC method.
type Field struct {
	Key string
	Val float64
	Str string
}

// Event is one structured observability record: a type tag, the standard
// identity labels (client / round / episode, -1 when not applicable), and a
// small ordered payload of numeric or string fields.
type Event struct {
	Type    string
	Client  int
	Round   int
	Episode int
	fields  [maxFields]Field
	nf      int
}

// E starts an event of the given type with all identity labels unset.
func E(typ string) *Event {
	return &Event{Type: typ, Client: -1, Round: -1, Episode: -1}
}

// At sets the identity labels (-1 leaves a label unset).
func (e *Event) At(client, round, episode int) *Event {
	e.Client, e.Round, e.Episode = client, round, episode
	return e
}

// F appends a numeric field.
func (e *Event) F(key string, v float64) *Event {
	if e.nf < maxFields {
		e.fields[e.nf] = Field{Key: key, Val: v}
		e.nf++
	}
	return e
}

// S appends a string field.
func (e *Event) S(key, s string) *Event {
	if e.nf < maxFields {
		e.fields[e.nf] = Field{Key: key, Str: s}
		e.nf++
	}
	return e
}

// Fields returns the payload in insertion order.
func (e *Event) Fields() []Field { return e.fields[:e.nf] }

// Sink consumes events. Implementations must be safe for concurrent use:
// parallel federated clients emit from their own goroutines.
type Sink interface {
	Emit(e *Event)
}

// sinkBox wraps the interface so the global pointer swap is a single word.
type sinkBox struct{ s Sink }

var global atomic.Pointer[sinkBox]

// SetSink installs s as the process-wide event sink and returns the
// previously installed one (nil disables events — the default).
func SetSink(s Sink) Sink {
	var prev *sinkBox
	if s == nil {
		prev = global.Swap(nil)
	} else {
		prev = global.Swap(&sinkBox{s: s})
	}
	if prev == nil {
		return nil
	}
	return prev.s
}

// Active reports whether an event sink is installed. Instrumentation sites
// guard event construction with it so the disabled path costs one atomic
// load and zero allocations.
func Active() bool { return global.Load() != nil }

// Emit delivers e to the installed sink, if any.
func Emit(e *Event) {
	if b := global.Load(); b != nil {
		b.s.Emit(e)
	}
}
