package obs

import (
	"io"
	"math"
	"strconv"
	"sync"
	"time"
)

// JSONLSink serializes events as one JSON object per line:
//
//	{"ts":1712345678901234567,"type":"episode","client":3,"episode":17,"reward":-123.4}
//
// ts is wall-clock Unix nanoseconds. The serialization buffer is reused
// under the lock, so steady-state emission does not grow the heap. Write
// errors are sticky: the first one is retained (see Err) and subsequent
// events are dropped instead of spamming a broken writer.
type JSONLSink struct {
	mu  sync.Mutex
	w   io.Writer
	buf []byte
	err error
}

// NewJSONL builds a sink writing to w. The caller owns w's lifecycle.
func NewJSONL(w io.Writer) *JSONLSink { return &JSONLSink{w: w} }

// Emit implements Sink.
func (s *JSONLSink) Emit(e *Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	b := s.buf[:0]
	b = append(b, `{"ts":`...)
	b = strconv.AppendInt(b, time.Now().UnixNano(), 10)
	b = append(b, `,"type":`...)
	b = strconv.AppendQuote(b, e.Type)
	if e.Client >= 0 {
		b = append(b, `,"client":`...)
		b = strconv.AppendInt(b, int64(e.Client), 10)
	}
	if e.Round >= 0 {
		b = append(b, `,"round":`...)
		b = strconv.AppendInt(b, int64(e.Round), 10)
	}
	if e.Episode >= 0 {
		b = append(b, `,"episode":`...)
		b = strconv.AppendInt(b, int64(e.Episode), 10)
	}
	for _, f := range e.Fields() {
		b = append(b, ',')
		b = strconv.AppendQuote(b, f.Key)
		b = append(b, ':')
		if f.Str != "" {
			b = strconv.AppendQuote(b, f.Str)
		} else {
			b = appendJSONFloat(b, f.Val)
		}
	}
	b = append(b, '}', '\n')
	s.buf = b
	_, s.err = s.w.Write(b)
}

// Err returns the first write error encountered, if any.
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// appendJSONFloat renders v as a JSON number; NaN/±Inf (which JSON cannot
// represent) become null.
func appendJSONFloat(b []byte, v float64) []byte {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return append(b, "null"...)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// MemorySink retains every event in memory — the test double.
type MemorySink struct {
	mu     sync.Mutex
	events []Event
}

// Emit implements Sink.
func (m *MemorySink) Emit(e *Event) {
	m.mu.Lock()
	m.events = append(m.events, *e)
	m.mu.Unlock()
}

// Events returns a snapshot of everything emitted so far.
func (m *MemorySink) Events() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Event(nil), m.events...)
}

// ByType filters the retained events by type tag.
func (m *MemorySink) ByType(typ string) []Event {
	var out []Event
	for _, e := range m.Events() {
		if e.Type == typ {
			out = append(out, e)
		}
	}
	return out
}
