package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("steps_total", "steps")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter %d, want 5", c.Value())
	}
	g := r.Gauge("round", "current round")
	g.Set(3)
	g.Set(-1.5)
	if g.Value() != -1.5 {
		t.Fatalf("gauge %v, want -1.5", g.Value())
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x")
	b := r.Counter("x_total", "x")
	if a != b {
		t.Fatal("re-registration must return the same counter")
	}
	h1 := r.Histogram("h_seconds", "h", nil)
	h2 := r.Histogram("h_seconds", "h", nil)
	if h1 != h2 {
		t.Fatal("re-registration must return the same histogram")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch should panic")
		}
	}()
	r.Gauge("x_total", "now a gauge")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-102.65) > 1e-9 {
		t.Fatalf("sum %v, want 102.65", h.Sum())
	}
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// le is inclusive: 0.05 and 0.1 land in le="0.1".
	for _, want := range []string{
		`lat_seconds_bucket{le="0.1"} 2`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		`lat_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestWriteTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "counts a").Add(7)
	r.Gauge("b", "level of b").Set(2.5)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP a_total counts a\n", "# TYPE a_total counter\n", "a_total 7\n",
		"# HELP b level of b\n", "# TYPE b gauge\n", "b 2.5\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Registration order is preserved.
	if strings.Index(out, "a_total") > strings.Index(out, "# HELP b ") {
		t.Fatalf("metrics out of registration order:\n%s", out)
	}
}

func TestRegistryServeHTTP(t *testing.T) {
	r := NewRegistry()
	r.Gauge("up", "1 while running").Set(1)
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "up 1\n") {
		t.Fatalf("body:\n%s", rec.Body.String())
	}
}

func TestMetricsConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total", "n")
	h := r.Histogram("v_seconds", "v", nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 {
		t.Fatalf("counter %d histogram %d, want 8000", c.Value(), h.Count())
	}
	if math.Abs(h.Sum()-8.0) > 1e-9 {
		t.Fatalf("histogram sum %v, want 8.0", h.Sum())
	}
}

func TestDefaultRegistryShared(t *testing.T) {
	if DefaultRegistry() != DefaultRegistry() {
		t.Fatal("default registry must be a singleton")
	}
}
