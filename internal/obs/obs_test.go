package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSetSinkAndActive(t *testing.T) {
	if Active() {
		t.Fatal("no sink installed yet, Active should be false")
	}
	var m MemorySink
	prev := SetSink(&m)
	if prev != nil {
		t.Fatalf("previous sink should be nil, got %T", prev)
	}
	defer SetSink(nil)
	if !Active() {
		t.Fatal("Active should be true after SetSink")
	}
	Emit(E("test").At(3, 1, 7).F("x", 1.5))
	got := m.Events()
	if len(got) != 1 {
		t.Fatalf("got %d events, want 1", len(got))
	}
	e := got[0]
	if e.Type != "test" || e.Client != 3 || e.Round != 1 || e.Episode != 7 {
		t.Fatalf("labels wrong: %+v", e)
	}
	fs := e.Fields()
	if len(fs) != 1 || fs[0].Key != "x" || fs[0].Val != 1.5 {
		t.Fatalf("fields wrong: %+v", fs)
	}
	if got := SetSink(nil); got != &m {
		t.Fatalf("SetSink(nil) should return the old sink, got %T", got)
	}
	if Active() {
		t.Fatal("Active should be false after SetSink(nil)")
	}
}

func TestEmitWithoutSinkIsNoop(t *testing.T) {
	SetSink(nil)
	Emit(E("ignored").F("x", 1)) // must not panic
}

func TestEventFieldCap(t *testing.T) {
	e := E("cap")
	for i := 0; i < maxFields+5; i++ {
		e.F("k", float64(i))
	}
	if len(e.Fields()) != maxFields {
		t.Fatalf("fields should cap at %d, got %d", maxFields, len(e.Fields()))
	}
}

func TestJSONLSinkEmitsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONL(&buf)
	s.Emit(E("episode").At(2, -1, 5).F("reward", -12.25).S("env", "google"))
	s.Emit(E("round").At(-1, 3, -1).F("participants", 4))
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2: %q", len(lines), buf.String())
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 0 is not valid JSON: %v (%s)", err, lines[0])
	}
	if first["type"] != "episode" || first["client"] != float64(2) || first["episode"] != float64(5) {
		t.Fatalf("unexpected record: %v", first)
	}
	if _, hasRound := first["round"]; hasRound {
		t.Fatal("unset round label must be omitted")
	}
	if first["reward"] != -12.25 || first["env"] != "google" {
		t.Fatalf("payload wrong: %v", first)
	}
	if _, ok := first["ts"]; !ok {
		t.Fatal("ts missing")
	}
	var second map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatal(err)
	}
	if second["type"] != "round" || second["round"] != float64(3) {
		t.Fatalf("unexpected record: %v", second)
	}
}

func TestJSONLSinkNonFiniteBecomesNull(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONL(&buf)
	nan := 0.0
	s.Emit(E("x").F("bad", nan/nan))
	var rec map[string]any
	if err := json.Unmarshal(bytes.TrimSpace(buf.Bytes()), &rec); err != nil {
		t.Fatalf("NaN field broke JSON: %v (%s)", err, buf.String())
	}
	if v, ok := rec["bad"]; !ok || v != nil {
		t.Fatalf("NaN should serialize as null, got %v", v)
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n++
	return 0, errors.New("disk full")
}

func TestJSONLSinkStickyError(t *testing.T) {
	fw := &failWriter{}
	s := NewJSONL(fw)
	s.Emit(E("a"))
	s.Emit(E("b"))
	if s.Err() == nil {
		t.Fatal("error should be retained")
	}
	if fw.n != 1 {
		t.Fatalf("writer should be called once, got %d", fw.n)
	}
}

func TestJSONLSinkConcurrent(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONL(&buf)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s.Emit(E("c").At(g, -1, i).F("v", float64(i)))
			}
		}(g)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 400 {
		t.Fatalf("got %d lines, want 400", len(lines))
	}
	for _, l := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(l), &rec); err != nil {
			t.Fatalf("interleaved write corrupted a line: %v (%s)", err, l)
		}
	}
}

func TestTimersSnapshotAndSub(t *testing.T) {
	var tm Timers
	tm.Add(PhaseRollout, 100*time.Millisecond)
	tm.Add(PhaseUpdate, 40*time.Millisecond)
	before := tm.Snapshot()
	tm.Add(PhaseRollout, 10*time.Millisecond)
	tm.Add(PhaseAggregate, 5*time.Millisecond)
	tm.Add(PhaseComm, 1*time.Millisecond)
	d := tm.Snapshot().Sub(before)
	want := PhaseTimes{Rollout: 10 * time.Millisecond, Aggregate: 5 * time.Millisecond, Comm: time.Millisecond}
	if d != want {
		t.Fatalf("delta %+v, want %+v", d, want)
	}
	if d.Total() != 16*time.Millisecond {
		t.Fatalf("total %v", d.Total())
	}
}

func TestPhaseStrings(t *testing.T) {
	names := map[Phase]string{PhaseRollout: "rollout", PhaseUpdate: "update",
		PhaseAggregate: "aggregate", PhaseComm: "comm", Phase(99): "unknown"}
	for p, want := range names {
		if p.String() != want {
			t.Fatalf("%d -> %q, want %q", p, p.String(), want)
		}
	}
}
