package obs

import (
	"sync/atomic"
	"time"
)

// Phase names the training pipeline stages whose wall-clock time the stack
// accounts for.
type Phase int

const (
	// PhaseRollout is environment interaction: Observe / SelectAction /
	// Value / Step across an episode.
	PhaseRollout Phase = iota
	// PhaseUpdate is the PPO gradient work over a collected buffer.
	PhaseUpdate
	// PhaseAggregate is server-side payload aggregation.
	PhaseAggregate
	// PhaseComm is payload movement: transport uploads and downloads.
	PhaseComm
	numPhases
)

// String returns the phase's display name.
func (p Phase) String() string {
	switch p {
	case PhaseRollout:
		return "rollout"
	case PhaseUpdate:
		return "update"
	case PhaseAggregate:
		return "aggregate"
	case PhaseComm:
		return "comm"
	default:
		return "unknown"
	}
}

// PhaseTimes is a snapshot of accumulated per-phase wall-clock time. With
// parallel clients the phase totals sum CPU-side durations across
// goroutines, so they can exceed elapsed wall time — they are a work
// breakdown, not a timeline.
type PhaseTimes struct {
	Rollout   time.Duration
	Update    time.Duration
	Aggregate time.Duration
	Comm      time.Duration
}

// Sub returns the elementwise difference p − q (the delta between two
// snapshots).
func (p PhaseTimes) Sub(q PhaseTimes) PhaseTimes {
	return PhaseTimes{
		Rollout:   p.Rollout - q.Rollout,
		Update:    p.Update - q.Update,
		Aggregate: p.Aggregate - q.Aggregate,
		Comm:      p.Comm - q.Comm,
	}
}

// Total sums the four phases.
func (p PhaseTimes) Total() time.Duration {
	return p.Rollout + p.Update + p.Aggregate + p.Comm
}

// Timers accumulates per-phase durations with atomic adds — safe for
// concurrent clients, zero allocations.
type Timers struct{ ns [numPhases]atomic.Int64 }

// Add accumulates d into phase p.
func (t *Timers) Add(p Phase, d time.Duration) { t.ns[p].Add(int64(d)) }

// Snapshot returns the current totals.
func (t *Timers) Snapshot() PhaseTimes {
	return PhaseTimes{
		Rollout:   time.Duration(t.ns[PhaseRollout].Load()),
		Update:    time.Duration(t.ns[PhaseUpdate].Load()),
		Aggregate: time.Duration(t.ns[PhaseAggregate].Load()),
		Comm:      time.Duration(t.ns[PhaseComm].Load()),
	}
}

// globalTimers is the process-wide accumulator. Like the tensor pool's
// stats, attribution across concurrent Train calls is exact only for
// sequential runs; callers snapshot before/after and diff.
var globalTimers Timers

// GlobalTimers returns the process-wide phase timers.
func GlobalTimers() *Timers { return &globalTimers }
