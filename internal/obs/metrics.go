package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. The zero value is
// ready to use; Inc/Add are single atomic adds.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 metric that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefBuckets are the default histogram bounds, tuned for the stack's
// latencies: 100µs environment episodes up through minute-scale federated
// rounds (seconds, cumulative "le" semantics).
var DefBuckets = []float64{0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60}

// Histogram counts observations into cumulative buckets, Prometheus-style.
// Observe is lock-free: per-bucket atomic counters plus a CAS-looped sum.
type Histogram struct {
	bounds  []float64 // sorted upper bounds; +Inf bucket is implicit
	counts  []atomic.Uint64
	total   atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v (le is inclusive)
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		upd := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, upd) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

type metric struct {
	name, help string
	kind       metricKind
	c          *Counter
	g          *Gauge
	h          *Histogram
}

// Registry holds named metrics and renders them in the Prometheus text
// exposition format. Registration is idempotent: re-registering a name
// returns the existing instrument (so package-level vars across the stack
// can share one default registry), but re-registering under a different
// kind panics — that is a programming error.
type Registry struct {
	mu     sync.Mutex
	byName map[string]*metric
	order  []*metric
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry { return &Registry{byName: map[string]*metric{}} }

var defaultRegistry = NewRegistry()

// DefaultRegistry is the process-wide registry served by pfrl-node's
// -metrics-addr endpoint. Instrumented packages register into it at init.
func DefaultRegistry() *Registry { return defaultRegistry }

func (r *Registry) register(name, help string, kind metricKind) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %v, was %v", name, kind, m.kind))
		}
		return m
	}
	m := &metric{name: name, help: help, kind: kind}
	switch kind {
	case kindCounter:
		m.c = &Counter{}
	case kindGauge:
		m.g = &Gauge{}
	}
	r.byName[name] = m
	r.order = append(r.order, m)
	return m
}

// Counter returns the counter registered under name, creating it if new.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, kindCounter).c
}

// Gauge returns the gauge registered under name, creating it if new.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, kindGauge).g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket bounds if new (nil means DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	r.mu.Lock()
	if m, ok := r.byName[name]; ok {
		r.mu.Unlock()
		if m.kind != kindHistogram {
			panic(fmt.Sprintf("obs: metric %q re-registered as histogram, was %v", name, m.kind))
		}
		return m.h
	}
	m := &metric{name: name, help: help, kind: kindHistogram, h: newHistogram(buckets)}
	r.byName[name] = m
	r.order = append(r.order, m)
	r.mu.Unlock()
	return m.h
}

// WriteText renders every metric in the Prometheus text exposition format,
// in registration order.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	metrics := append([]*metric(nil), r.order...)
	r.mu.Unlock()
	var buf []byte
	for _, m := range metrics {
		buf = buf[:0]
		buf = append(buf, "# HELP "...)
		buf = append(buf, m.name...)
		buf = append(buf, ' ')
		buf = append(buf, m.help...)
		buf = append(buf, "\n# TYPE "...)
		buf = append(buf, m.name...)
		buf = append(buf, ' ')
		buf = append(buf, m.kind.String()...)
		buf = append(buf, '\n')
		switch m.kind {
		case kindCounter:
			buf = append(buf, m.name...)
			buf = append(buf, ' ')
			buf = strconv.AppendUint(buf, m.c.Value(), 10)
			buf = append(buf, '\n')
		case kindGauge:
			buf = append(buf, m.name...)
			buf = append(buf, ' ')
			buf = appendPromFloat(buf, m.g.Value())
			buf = append(buf, '\n')
		case kindHistogram:
			cum := uint64(0)
			for i, bound := range m.h.bounds {
				cum += m.h.counts[i].Load()
				buf = append(buf, m.name...)
				buf = append(buf, `_bucket{le="`...)
				buf = appendPromFloat(buf, bound)
				buf = append(buf, `"} `...)
				buf = strconv.AppendUint(buf, cum, 10)
				buf = append(buf, '\n')
			}
			buf = append(buf, m.name...)
			buf = append(buf, `_bucket{le="+Inf"} `...)
			buf = strconv.AppendUint(buf, m.h.Count(), 10)
			buf = append(buf, '\n')
			buf = append(buf, m.name...)
			buf = append(buf, "_sum "...)
			buf = appendPromFloat(buf, m.h.Sum())
			buf = append(buf, '\n')
			buf = append(buf, m.name...)
			buf = append(buf, "_count "...)
			buf = strconv.AppendUint(buf, m.h.Count(), 10)
			buf = append(buf, '\n')
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// appendPromFloat renders v the way Prometheus expects (NaN/Inf spelled
// out, shortest round-trip representation otherwise).
func appendPromFloat(b []byte, v float64) []byte {
	switch {
	case math.IsNaN(v):
		return append(b, "NaN"...)
	case math.IsInf(v, +1):
		return append(b, "+Inf"...)
	case math.IsInf(v, -1):
		return append(b, "-Inf"...)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// ServeHTTP implements http.Handler, serving the text exposition — mount it
// at /metrics.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = r.WriteText(w)
}
