package rl

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// vecTestEnvs builds two identical sets of environments (same seeds) with
// per-slot horizons, so compaction kicks in as shorter episodes finish first.
func vecTestEnvs(n, stateDim, actions int) (vec, ref []Environment) {
	for slot := 0; slot < n; slot++ {
		horizon := 6 + 5*slot
		seed := int64(900 + slot)
		vec = append(vec, NewSyntheticEnv(stateDim, actions, horizon, seed))
		ref = append(ref, NewSyntheticEnv(stateDim, actions, horizon, seed))
	}
	return vec, ref
}

func requireTransitionsEqual(t *testing.T, slot int, want, got *Buffer) {
	t.Helper()
	if want.Len() != got.Len() {
		t.Fatalf("slot %d: %d transitions sequential vs %d vectorized", slot, want.Len(), got.Len())
	}
	for i, w := range want.Steps() {
		g := got.Steps()[i]
		if w.Action != g.Action || w.Done != g.Done || w.Truncated != g.Truncated {
			t.Fatalf("slot %d step %d: action/done/truncated diverge: %+v vs %+v", slot, i, w, g)
		}
		for name, pair := range map[string][2]float64{
			"reward":    {w.Reward, g.Reward},
			"logprob":   {w.LogProb, g.LogProb},
			"value":     {w.Value, g.Value},
			"bootstrap": {w.Bootstrap, g.Bootstrap},
		} {
			if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
				t.Fatalf("slot %d step %d: %s %v != %v", slot, i, name, pair[0], pair[1])
			}
		}
		for j := range w.State {
			if math.Float64bits(w.State[j]) != math.Float64bits(g.State[j]) {
				t.Fatalf("slot %d step %d: state[%d] %v != %v", slot, i, j, w.State[j], g.State[j])
			}
		}
	}
}

// TestVecCollectorMatchesSequential pins the vectorized collector's defining
// property: per-slot reward streams and transition buffers are bitwise
// identical to N independent CollectEpisode runs, each with an agent holding
// the same weights and that slot's RNG seed.
func TestVecCollectorMatchesSequential(t *testing.T) {
	const (
		n        = 5
		stateDim = 24
		actions  = 6
		initSeed = 1234
	)
	cfg := DefaultConfig(stateDim, actions)

	t.Run("ppo", func(t *testing.T) {
		shared := NewPPO(cfg, rand.New(rand.NewSource(initSeed)))
		vecEnvs, refEnvs := vecTestEnvs(n, stateDim, actions)
		rngs := make([]*rand.Rand, n)
		for i := range rngs {
			rngs[i] = rand.New(rand.NewSource(int64(5000 + i)))
		}
		col := NewVecCollector(shared, vecEnvs, rngs)
		vecBufs := make([]*Buffer, n)
		for i := range vecBufs {
			vecBufs[i] = &Buffer{}
		}
		totals := col.Collect(vecBufs, nil)

		for slot := 0; slot < n; slot++ {
			agent := NewPPO(cfg, rand.New(rand.NewSource(initSeed))) // same weights
			agent.rng = rand.New(rand.NewSource(int64(5000 + slot))) // slot's stream
			refBuf := &Buffer{}
			refTotal := CollectEpisode(refEnvs[slot], agent, refBuf)
			if math.Float64bits(refTotal) != math.Float64bits(totals[slot]) {
				t.Fatalf("slot %d: total reward %v sequential vs %v vectorized", slot, refTotal, totals[slot])
			}
			requireTransitionsEqual(t, slot, refBuf, vecBufs[slot])
		}
	})

	t.Run("dual-critic", func(t *testing.T) {
		shared := NewDualCriticPPO(cfg, rand.New(rand.NewSource(initSeed)))
		shared.Alpha = 0.3 // off-center blend so both critics matter
		vecEnvs, refEnvs := vecTestEnvs(n, stateDim, actions)
		rngs := make([]*rand.Rand, n)
		for i := range rngs {
			rngs[i] = rand.New(rand.NewSource(int64(7000 + i)))
		}
		col := NewVecCollector(shared, vecEnvs, rngs)
		vecBufs := make([]*Buffer, n)
		for i := range vecBufs {
			vecBufs[i] = &Buffer{}
		}
		totals := col.Collect(vecBufs, nil)

		for slot := 0; slot < n; slot++ {
			agent := NewDualCriticPPO(cfg, rand.New(rand.NewSource(initSeed)))
			agent.Alpha = 0.3
			agent.rng = rand.New(rand.NewSource(int64(7000 + slot)))
			refBuf := &Buffer{}
			refTotal := CollectEpisode(refEnvs[slot], agent, refBuf)
			if math.Float64bits(refTotal) != math.Float64bits(totals[slot]) {
				t.Fatalf("slot %d: total reward %v sequential vs %v vectorized", slot, refTotal, totals[slot])
			}
			requireTransitionsEqual(t, slot, refBuf, vecBufs[slot])
		}
	})
}

// TestVecCollectorReuse checks that a collector can run back-to-back
// collections (environments reset in between) without cross-talk between
// rounds: round two from a fresh collector matches round two of a reused one.
func TestVecCollectorReuse(t *testing.T) {
	const (
		n        = 3
		stateDim = 12
		actions  = 4
	)
	cfg := DefaultConfig(stateDim, actions)
	run := func(rounds int) [][]float64 {
		agent := NewPPO(cfg, rand.New(rand.NewSource(77)))
		envs := make([]Environment, n)
		syn := make([]*SyntheticEnv, n)
		rngs := make([]*rand.Rand, n)
		for i := 0; i < n; i++ {
			syn[i] = NewSyntheticEnv(stateDim, actions, 8+3*i, int64(300+i))
			envs[i] = syn[i]
			rngs[i] = rand.New(rand.NewSource(int64(40 + i)))
		}
		col := NewVecCollector(agent, envs, rngs)
		bufs := make([]*Buffer, n)
		for i := range bufs {
			bufs[i] = &Buffer{}
		}
		var out [][]float64
		var totals []float64
		for r := 0; r < rounds; r++ {
			for i := range syn {
				syn[i].Reset()
				bufs[i].Reset()
			}
			totals = col.Collect(bufs, totals)
			out = append(out, append([]float64(nil), totals...))
		}
		return out
	}
	two := run(2)
	one := run(1)
	for slot := range one[0] {
		if math.Float64bits(one[0][slot]) != math.Float64bits(two[0][slot]) {
			t.Fatalf("slot %d: first-round totals differ across runs", slot)
		}
	}
	// Second round must differ from the first for at least one slot (the RNG
	// streams advanced), proving state actually carries across rounds.
	same := true
	for slot := range two[0] {
		if two[0][slot] != two[1][slot] {
			same = false
		}
	}
	if same {
		t.Fatal("second collection identical to first; RNG streams did not advance")
	}
}

// BenchmarkBatchedRollout measures full-episode collection across N lockstep
// environments (horizon 64 each), the vectorized counterpart of
// BenchmarkRolloutStep. ns/env-step is the comparable per-transition cost.
func BenchmarkBatchedRollout(b *testing.B) {
	for _, n := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("N%d", n), func(b *testing.B) {
			cfg := DefaultConfig(benchStateDim, benchActions)
			agent := NewPPO(cfg, rand.New(rand.NewSource(9)))
			envs := make([]Environment, n)
			syn := make([]*SyntheticEnv, n)
			rngs := make([]*rand.Rand, n)
			for i := 0; i < n; i++ {
				syn[i] = NewSyntheticEnv(benchStateDim, benchActions, benchHorizon, int64(100+i))
				envs[i] = syn[i]
				rngs[i] = rand.New(rand.NewSource(int64(200 + i)))
			}
			col := NewVecCollector(agent, envs, rngs)
			bufs := make([]*Buffer, n)
			for i := range bufs {
				bufs[i] = &Buffer{}
			}
			var totals []float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range syn {
					syn[j].Reset()
					bufs[j].Reset()
				}
				totals = col.Collect(bufs, totals)
			}
			b.StopTimer()
			_ = totals
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n*benchHorizon), "ns/env-step")
		})
	}
}
