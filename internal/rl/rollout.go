package rl

import "repro/internal/obs"

// Environment is the MDP contract the agents train against. cloudsim.Env
// implements it; any other discrete-action environment (a different
// scheduler model, a toy benchmark) can be plugged in without touching the
// agents.
type Environment interface {
	// Observe encodes the current state into dst (reallocating when dst is
	// too small) and returns the buffer.
	Observe(dst []float64) []float64
	// Step executes an action and returns its reward.
	Step(action int) float64
	// Done reports whether the episode has ended.
	Done() bool
	// StateDim returns the observation length.
	StateDim() int
	// NumActions returns the size of the discrete action space.
	NumActions() int
	// FeasibleActions masks the currently admissible actions. The returned
	// slice may be a scratch buffer reused by the environment's next
	// FeasibleActions call (both cloudsim.Env and SyntheticEnv reuse it, so
	// masked evaluation stays allocation-free); callers must not retain it
	// across steps.
	FeasibleActions() []bool
}

// Agent is the training-time contract shared by PPO and DualCriticPPO.
type Agent interface {
	// SelectAction samples from the current policy.
	SelectAction(state []float64) (action int, logProb float64)
	// GreedyAction returns the mode of the policy (evaluation).
	GreedyAction(state []float64) int
	// Value estimates V(state) with the agent's critic(s).
	Value(state []float64) float64
	// Update consumes an on-policy buffer and improves the networks.
	Update(buf *Buffer) UpdateStats
}

// Truncator is an optional Environment refinement that distinguishes a
// horizon/step-cap cut from a true terminal state. Done() must stay true for
// both (it is the episode-boundary signal), but when an environment also
// reports Truncated(), the collector bootstraps the tail of the cut episode
// with the critic's value of the successor state instead of zero — a zero
// bootstrap at a cut writes off the entire continuation and biases every
// advantage upstream of the boundary.
type Truncator interface {
	// Truncated reports whether the current Done() is a horizon cut rather
	// than a terminal. Only meaningful while Done() is true.
	Truncated() bool
}

// MaskedAgent is an Agent whose greedy action can be restricted to the
// environment's feasible set.
type MaskedAgent interface {
	Agent
	// GreedyMaskedAction returns argmax over allowed actions.
	GreedyMaskedAction(state []float64, mask []bool) int
}

// Compile-time interface checks.
var (
	_ Agent       = (*PPO)(nil)
	_ Agent       = (*DualCriticPPO)(nil)
	_ MaskedAgent = (*PPO)(nil)
	_ MaskedAgent = (*DualCriticPPO)(nil)
)

// Rollout metrics, shared via the default registry. Counter bumps are single
// atomic adds and happen at most once per step/episode, preserving the
// zero-allocation rollout contract.
var (
	mEnvSteps = obs.DefaultRegistry().Counter("pfrl_env_steps_total",
		"environment steps taken by training rollouts")
	mTruncations = obs.DefaultRegistry().Counter("pfrl_episode_truncations_total",
		"training episodes cut by a horizon/step cap (tail bootstrapped with the critic)")
)

// CollectEpisode runs one stochastic-policy episode on env, appending every
// transition to buf (with the agent's value estimates for GAE), and returns
// the episode's total reward. The caller is responsible for resetting the
// environment beforehand and may read environment-specific metrics after.
//
// If env implements Truncator and the episode ends on a horizon cut, the
// final transition carries Truncated=true and Bootstrap=V(s_{T+1}) from the
// agent's critic, so advantage estimation does not write off the cut tail.
// The extra Value call runs on the gradient-free inference path and touches
// no RNG, so collection remains bitwise deterministic.
func CollectEpisode(env Environment, agent Agent, buf *Buffer) float64 {
	total := 0.0
	steps := uint64(0)
	state := env.Observe(nil)
	for !env.Done() {
		action, logp := agent.SelectAction(state)
		value := agent.Value(state)
		reward := env.Step(action)
		total += reward
		steps++
		done := env.Done()
		tr := Transition{
			State:   append([]float64(nil), state...),
			Action:  action,
			Reward:  reward,
			LogProb: logp,
			Value:   value,
			Done:    done,
		}
		if !done {
			state = env.Observe(state)
		} else if t, ok := env.(Truncator); ok && t.Truncated() {
			// tr.State is already a private copy, so reusing the scratch
			// buffer for the post-cut observation is safe.
			state = env.Observe(state)
			tr.Truncated = true
			tr.Bootstrap = agent.Value(state)
			mTruncations.Inc()
		}
		buf.Add(tr)
	}
	mEnvSteps.Add(steps)
	return total
}

// EvaluateEpisode runs one greedy episode (no exploration, no recording)
// and returns the total reward.
func EvaluateEpisode(env Environment, agent Agent) float64 {
	total := 0.0
	state := env.Observe(nil)
	for !env.Done() {
		total += env.Step(agent.GreedyAction(state))
		if !env.Done() {
			state = env.Observe(state)
		}
	}
	return total
}

// EvaluateEpisodeMasked runs one greedy episode with the deployment-time
// feasibility guard: the policy only chooses among placements the
// environment can actually admit (plus Wait). Training remains unmasked —
// agents learn feasibility through the Eq. (9) penalties, as in the paper —
// but a deployed scheduler never submits a placement its admission check
// would reject, so evaluation uses the guard.
func EvaluateEpisodeMasked(env Environment, agent MaskedAgent) float64 {
	total := 0.0
	state := env.Observe(nil)
	for !env.Done() {
		total += env.Step(agent.GreedyMaskedAction(state, env.FeasibleActions()))
		if !env.Done() {
			state = env.Observe(state)
		}
	}
	return total
}
