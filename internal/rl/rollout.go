package rl

// Environment is the MDP contract the agents train against. cloudsim.Env
// implements it; any other discrete-action environment (a different
// scheduler model, a toy benchmark) can be plugged in without touching the
// agents.
type Environment interface {
	// Observe encodes the current state into dst (reallocating when dst is
	// too small) and returns the buffer.
	Observe(dst []float64) []float64
	// Step executes an action and returns its reward.
	Step(action int) float64
	// Done reports whether the episode has ended.
	Done() bool
	// StateDim returns the observation length.
	StateDim() int
	// NumActions returns the size of the discrete action space.
	NumActions() int
	// FeasibleActions masks the currently admissible actions.
	FeasibleActions() []bool
}

// Agent is the training-time contract shared by PPO and DualCriticPPO.
type Agent interface {
	// SelectAction samples from the current policy.
	SelectAction(state []float64) (action int, logProb float64)
	// GreedyAction returns the mode of the policy (evaluation).
	GreedyAction(state []float64) int
	// Value estimates V(state) with the agent's critic(s).
	Value(state []float64) float64
	// Update consumes an on-policy buffer and improves the networks.
	Update(buf *Buffer) UpdateStats
}

// MaskedAgent is an Agent whose greedy action can be restricted to the
// environment's feasible set.
type MaskedAgent interface {
	Agent
	// GreedyMaskedAction returns argmax over allowed actions.
	GreedyMaskedAction(state []float64, mask []bool) int
}

// Compile-time interface checks.
var (
	_ Agent       = (*PPO)(nil)
	_ Agent       = (*DualCriticPPO)(nil)
	_ MaskedAgent = (*PPO)(nil)
	_ MaskedAgent = (*DualCriticPPO)(nil)
)

// CollectEpisode runs one stochastic-policy episode on env, appending every
// transition to buf (with the agent's value estimates for GAE), and returns
// the episode's total reward. The caller is responsible for resetting the
// environment beforehand and may read environment-specific metrics after.
func CollectEpisode(env Environment, agent Agent, buf *Buffer) float64 {
	total := 0.0
	state := env.Observe(nil)
	for !env.Done() {
		action, logp := agent.SelectAction(state)
		value := agent.Value(state)
		reward := env.Step(action)
		total += reward
		done := env.Done()
		buf.Add(Transition{
			State:   append([]float64(nil), state...),
			Action:  action,
			Reward:  reward,
			LogProb: logp,
			Value:   value,
			Done:    done,
		})
		if !done {
			state = env.Observe(state)
		}
	}
	return total
}

// EvaluateEpisode runs one greedy episode (no exploration, no recording)
// and returns the total reward.
func EvaluateEpisode(env Environment, agent Agent) float64 {
	total := 0.0
	state := env.Observe(nil)
	for !env.Done() {
		total += env.Step(agent.GreedyAction(state))
		if !env.Done() {
			state = env.Observe(state)
		}
	}
	return total
}

// EvaluateEpisodeMasked runs one greedy episode with the deployment-time
// feasibility guard: the policy only chooses among placements the
// environment can actually admit (plus Wait). Training remains unmasked —
// agents learn feasibility through the Eq. (9) penalties, as in the paper —
// but a deployed scheduler never submits a placement its admission check
// would reject, so evaluation uses the guard.
func EvaluateEpisodeMasked(env Environment, agent MaskedAgent) float64 {
	total := 0.0
	state := env.Observe(nil)
	for !env.Done() {
		total += env.Step(agent.GreedyMaskedAction(state, env.FeasibleActions()))
		if !env.Done() {
			state = env.Observe(state)
		}
	}
	return total
}
