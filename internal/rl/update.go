package rl

import (
	"math/rand"
	"runtime"
	"sync/atomic"

	"repro/internal/autograd"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// UpdateConcurrency selects whether ppoUpdate overlaps the actor and the
// critic optimization of each minibatch on separate goroutines. The two
// steps touch disjoint parameter sets and run on separate pooled tapes, so
// overlapping them changes wall-clock time only — results stay bitwise
// identical (pinned by TestConcurrentUpdateMatchesSequential).
type UpdateConcurrency int32

const (
	// ConcurrencyAuto overlaps when GOMAXPROCS > 1 (the default): on a
	// single-P runtime the extra goroutine only adds scheduling overhead.
	ConcurrencyAuto UpdateConcurrency = iota
	// ConcurrencyOn forces the overlapped pipeline.
	ConcurrencyOn
	// ConcurrencyOff forces the sequential actor-then-critic order.
	ConcurrencyOff
)

var updateConcurrency atomic.Int32

// SetUpdateConcurrency installs the actor/critic overlap mode and returns
// the previous one. Safe to call concurrently with running updates; each
// Update samples the mode once at its start.
func SetUpdateConcurrency(mode UpdateConcurrency) UpdateConcurrency {
	return UpdateConcurrency(updateConcurrency.Swap(int32(mode)))
}

func concurrentUpdateEnabled() bool {
	switch UpdateConcurrency(updateConcurrency.Load()) {
	case ConcurrencyOn:
		return true
	case ConcurrencyOff:
		return false
	default:
		return runtime.GOMAXPROCS(0) > 1
	}
}

// updateScratch owns every reusable buffer of the batched update pipeline,
// hoisting all per-call staging out of ppoUpdate so a steady-state Update
// performs no per-minibatch allocations: the shuffle index, the minibatch
// action/staging matrices, the GAE output slices, and the two pooled tapes
// (actor and critic get separate tapes so their graph builds can proceed
// concurrently). Each agent embeds one; it is not safe for concurrent use,
// matching the agents' one-goroutine-per-agent contract.
type updateScratch struct {
	idx     []int
	actions []int

	// adv/targets receive the GAE pass (agent-owned so GAEInto can reuse
	// them across Update calls).
	adv, targets []float64

	// Minibatch staging, allocated at MiniBatch rows and viewed down for the
	// final partial batch. Rewritten fully for every batch.
	states, oldLogp, advantage, target, oldValue *tensor.Matrix
	stagedRows                                   int

	actorTape, criticTape *autograd.Tape
}

// ensure sizes the scratch for a buffer of n transitions under the given
// minibatch size and state dimension, allocating only on first use or growth.
func (st *updateScratch) ensure(n, mb, stateDim int) {
	if st.actorTape == nil {
		st.actorTape = autograd.NewPooledTape(tensor.DefaultPool())
		st.criticTape = autograd.NewPooledTape(tensor.DefaultPool())
	}
	if cap(st.idx) < n {
		st.idx = make([]int, n)
	}
	st.idx = st.idx[:n]
	if cap(st.actions) < mb {
		st.actions = make([]int, mb)
	}
	if st.states == nil || st.states.Cols != stateDim || st.stagedRows < mb {
		st.states = tensor.New(mb, stateDim)
		st.oldLogp = tensor.New(mb, 1)
		st.advantage = tensor.New(mb, 1)
		st.target = tensor.New(mb, 1)
		st.oldValue = tensor.New(mb, 1)
		st.stagedRows = mb
	}
}

// viewRows reslices a scratch matrix to its first rows rows (the final
// minibatch of an epoch is usually partial). The caller owns m and rewrites
// every viewed element before use.
func viewRows(m *tensor.Matrix, rows int) *tensor.Matrix {
	m.Rows = rows
	m.Data = m.Data[:rows*m.Cols]
	return m
}

// criticModule pairs a critic network with its optimizer for the shared
// update loop.
type criticModule struct {
	net *nn.MLP
	opt *nn.Adam
}

// ppoUpdateSpec feeds the shared minibatch update loop used by both PPO and
// DualCriticPPO. criticLoss produces the scalar loss to minimize for the
// critic networks (a single MSE for PPO; the sum of the two independent
// regressions of Eqs. 16–17 for the dual critic); every module in
// criticModules is stepped.
type ppoUpdateSpec struct {
	cfg Config
	rng *rand.Rand
	// scratch is the agent-owned staging state; required.
	scratch *updateScratch
	buf     *Buffer
	adv     []float64
	targets []float64

	actor    *nn.MLP
	actorOpt *nn.Adam

	// criticLoss builds the scalar critic loss; oldValues holds the
	// collection-time value estimates (for PPO2-style value clipping).
	criticLoss    func(tape *autograd.Tape, states, targets, oldValues *autograd.Value) *autograd.Value
	criticModules []criticModule

	// prox, when non-nil, applies FedProx regularization to every stepped
	// module (see Proximal). Apply only reads shared state, so the actor and
	// critic goroutines may both call it concurrently.
	prox *Proximal
}

// mPPOUpdates counts completed gradient updates across all agents.
var mPPOUpdates = obs.DefaultRegistry().Counter("pfrl_ppo_updates_total",
	"PPO gradient updates completed (all agents)")

// ppoUpdate runs the batched clipped-PPO optimization over the buffer: for
// every epoch, shuffle, stage each minibatch once into the agent's scratch,
// then run the actor step (fused surrogate head, actor tape) and the critic
// step (critic tape) — concurrently when enabled, since the two touch
// disjoint parameters. Numerics are bitwise identical to the historical
// one-op-per-node sequential loop (TestBatchedUpdateMatchesReference).
func ppoUpdate(s ppoUpdateSpec) UpdateStats {
	steps := s.buf.Steps()
	n := len(steps)
	if n == 0 {
		return UpdateStats{}
	}
	defer mPPOUpdates.Inc()
	st := s.scratch
	st.ensure(n, s.cfg.MiniBatch, s.cfg.StateDim)
	idx := st.idx
	for i := range idx {
		idx[i] = i
	}

	// With concurrency enabled, a per-Update worker goroutine runs the
	// critic step of each staged minibatch while the main goroutine runs the
	// actor step. The channel send publishes the freshly staged batch to the
	// worker; the receive of the critic loss joins before the next batch is
	// staged, so the scratch views are never written while the worker reads.
	var jobs chan struct{}
	var cres chan float64
	if concurrentUpdateEnabled() && len(s.criticModules) > 0 {
		jobs = make(chan struct{})
		cres = make(chan float64)
		go func() {
			for range jobs {
				cres <- criticStep(&s)
			}
		}()
		defer close(jobs)
	}

	var stats UpdateStats
	for epoch := 0; epoch < s.cfg.UpdateEpochs; epoch++ {
		s.rng.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		epochActor, epochCritic, epochEntropy := 0.0, 0.0, 0.0
		epochKL, epochClip := 0.0, 0.0
		batches := 0
		for lo := 0; lo < n; lo += s.cfg.MiniBatch {
			hi := lo + s.cfg.MiniBatch
			if hi > n {
				hi = n
			}
			bsz := hi - lo
			states := viewRows(st.states, bsz)
			oldLogp := viewRows(st.oldLogp, bsz)
			advantage := viewRows(st.advantage, bsz)
			target := viewRows(st.target, bsz)
			oldValue := viewRows(st.oldValue, bsz)
			actions := st.actions[:bsz]
			for bi := 0; bi < bsz; bi++ {
				t := idx[lo+bi]
				copy(states.Row(bi), steps[t].State)
				actions[bi] = steps[t].Action
				oldLogp.Data[bi] = steps[t].LogProb
				advantage.Data[bi] = s.adv[t]
				target.Data[bi] = s.targets[t]
				oldValue.Data[bi] = steps[t].Value
			}

			var closs float64
			if jobs != nil {
				jobs <- struct{}{} // critic optimizes this batch concurrently
			}

			// --- Actor step: L = -E[min(r·A, clip(r)·A)] - c·H(π) ---
			// Gradients are already zero here: parameters start with cleared
			// grads and Optimizer.Step consumes them, so no ZeroGrads sweep.
			at := st.actorTape
			at.Reset()
			logits := s.actor.Forward(at, at.Const(states))
			res := autograd.ClippedSurrogateLoss(logits, actions, oldLogp, advantage, s.cfg.Clip, s.cfg.EntCoef)
			res.Loss.Backward()
			if s.prox != nil {
				s.prox.Apply(s.actor)
			}
			nn.ClipGradNorm(s.actor, s.cfg.MaxGradNorm)
			s.actorOpt.Step()
			epochActor += -res.Objective
			epochEntropy += res.Entropy
			// Approximate KL(π_old ‖ π_new) = E[log π_old − log π_new], and
			// the clip fraction: how often the surrogate actually clipped.
			klBatch, clipped := 0.0, 0
			for bi := 0; bi < bsz; bi++ {
				klBatch += oldLogp.Data[bi] - res.ActLogp[bi]
				if r := res.Ratio[bi]; r < 1-s.cfg.Clip || r > 1+s.cfg.Clip {
					clipped++
				}
			}
			epochKL += klBatch / float64(bsz)
			epochClip += float64(clipped) / float64(bsz)

			if jobs != nil {
				closs = <-cres
			} else {
				closs = criticStep(&s)
			}
			epochCritic += closs
			batches++
		}
		if batches > 0 {
			stats = UpdateStats{
				ActorLoss:  epochActor / float64(batches),
				CriticLoss: epochCritic / float64(batches),
				Entropy:    epochEntropy / float64(batches),
				ApproxKL:   epochKL / float64(batches),
				ClipFrac:   epochClip / float64(batches),
			}
		}
		if s.cfg.TargetKL > 0 && batches > 0 && stats.ApproxKL > s.cfg.TargetKL {
			break // the policy moved far enough; further epochs overfit the batch
		}
	}
	return stats
}

// criticStep runs one critic optimization over the currently staged
// minibatch (the scratch views) on the critic tape, and returns the loss.
// It touches only the critic modules and the critic tape, so it may run
// concurrently with the actor step of the same batch.
func criticStep(s *ppoUpdateSpec) float64 {
	st := s.scratch
	// Critic grads are zero on entry for the same reason as the actor's:
	// each cm.opt.Step() below consumes them.
	ct := st.criticTape
	ct.Reset()
	closs := s.criticLoss(ct, ct.Const(st.states), ct.Const(st.target), ct.Const(st.oldValue))
	closs.Backward()
	for _, cm := range s.criticModules {
		if s.prox != nil {
			s.prox.Apply(cm.net)
		}
		nn.ClipGradNorm(cm.net, s.cfg.MaxGradNorm)
		cm.opt.Step()
	}
	return closs.Item()
}
