package rl

import (
	"math/rand"
	"sync"
	"testing"
)

// Benchmark dimensions mirror the paper's scheduler workload: a ~538-feature
// observation, 9 placement actions, one 64-unit hidden layer.
const (
	benchStateDim = 538
	benchActions  = 9
	benchHorizon  = 64
)

func benchAgent(seed int64) *PPO {
	return NewPPO(DefaultConfig(benchStateDim, benchActions), rand.New(rand.NewSource(seed)))
}

// rolloutStep performs the per-transition inference work of CollectEpisode:
// observe, sample an action, estimate the value, step the environment.
func rolloutStep(env *SyntheticEnv, agent *PPO, state []float64) []float64 {
	state = env.Observe(state)
	action, _ := agent.SelectAction(state)
	_ = agent.Value(state)
	_ = env.Step(action)
	if env.Done() {
		env.Reset()
	}
	return state
}

// BenchmarkRolloutStep measures the zero-allocation inference fast path.
// Expected steady state: 0 allocs/op (asserted by TestRolloutStepZeroAlloc).
func BenchmarkRolloutStep(b *testing.B) {
	env := NewSyntheticEnv(benchStateDim, benchActions, benchHorizon, 1)
	agent := benchAgent(2)
	var state []float64
	for i := 0; i < 16; i++ { // warm the agent scratch and the tensor pool
		state = rolloutStep(env, agent, state)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		state = rolloutStep(env, agent, state)
	}
}

// TestRolloutStepZeroAlloc pins the headline tentpole claim: after warmup, a
// full rollout step (Observe + SelectAction + Value + Step) allocates nothing.
func TestRolloutStepZeroAlloc(t *testing.T) {
	env := NewSyntheticEnv(benchStateDim, benchActions, benchHorizon, 1)
	agent := benchAgent(2)
	var state []float64
	for i := 0; i < 16; i++ {
		state = rolloutStep(env, agent, state)
	}
	allocs := testing.AllocsPerRun(200, func() {
		state = rolloutStep(env, agent, state)
	})
	if allocs != 0 {
		t.Fatalf("rollout step allocates %.1f objects/op, want 0", allocs)
	}
}

// benchBuffer fills buf with full episodes until it holds at least minSteps
// transitions.
func benchBuffer(env *SyntheticEnv, agent *PPO, buf *Buffer, minSteps int) {
	for buf.Len() < minSteps {
		env.Reset()
		CollectEpisode(env, agent, buf)
	}
}

// BenchmarkPPOUpdate measures one full PPO update (4 epochs x minibatches of
// 64 over 256 transitions) with the pooled tape and pooled staging buffers.
func BenchmarkPPOUpdate(b *testing.B) {
	env := NewSyntheticEnv(benchStateDim, benchActions, benchHorizon, 3)
	agent := benchAgent(4)
	var buf Buffer
	benchBuffer(env, agent, &buf, 256)
	agent.Update(&buf) // warm the tape spare list and the tensor pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agent.Update(&buf)
	}
}

// TestConcurrentClientsSharedPool mirrors core.trainIndependent: several
// clients, each with its own agent and environment, collect and update
// concurrently while sharing the process-wide tensor pool. Run under -race
// in CI; any unsynchronized pool or tape reuse across goroutines fails there.
func TestConcurrentClientsSharedPool(t *testing.T) {
	const clients = 4
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			env := NewSyntheticEnv(24, 5, 32, seed)
			agent := NewPPO(DefaultConfig(24, 5), rand.New(rand.NewSource(seed)))
			var buf Buffer
			for round := 0; round < 3; round++ {
				buf.Reset()
				env.Reset()
				CollectEpisode(env, agent, &buf)
				stats := agent.Update(&buf)
				if stats != (UpdateStats{}) && stats.Entropy < 0 {
					t.Errorf("client %d: negative entropy %v", seed, stats.Entropy)
				}
				env.Reset()
				EvaluateEpisodeMasked(env, agent)
			}
		}(int64(c + 10))
	}
	wg.Wait()
}
