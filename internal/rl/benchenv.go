package rl

import "math/rand"

// SyntheticEnv is a contextual-bandit Environment used for benchmarking and
// load tests: each step presents a random Gaussian context and rewards the
// action whose fixed scoring vector best matches it. It is deliberately
// cheap and, after construction, allocation-free — Observe copies into the
// caller's buffer and Step regenerates the context in place — so rollout
// benchmarks measure the agent, not the environment.
//
// Unlike the cloudsim environment it has no queueing dynamics, which keeps
// per-step cost constant and lets BenchmarkRolloutStep assert a strict
// 0 allocs/op for the inference fast path.
type SyntheticEnv struct {
	stateDim   int
	numActions int
	horizon    int

	t        int
	rng      *rand.Rand
	state    []float64
	feasible []bool
	weights  []float64 // numActions x stateDim scoring vectors, row-major
}

// NewSyntheticEnv builds an environment with the given observation length,
// action count, and episode length. All randomness derives from seed.
func NewSyntheticEnv(stateDim, numActions, horizon int, seed int64) *SyntheticEnv {
	e := &SyntheticEnv{
		stateDim:   stateDim,
		numActions: numActions,
		horizon:    horizon,
		rng:        rand.New(rand.NewSource(seed)),
		state:      make([]float64, stateDim),
		feasible:   make([]bool, numActions),
		weights:    make([]float64, numActions*stateDim),
	}
	for i := range e.weights {
		e.weights[i] = e.rng.NormFloat64()
	}
	e.Reset()
	return e
}

// Reset starts a new episode.
func (e *SyntheticEnv) Reset() {
	e.t = 0
	e.refresh()
}

// refresh draws the next context and feasibility mask in place.
func (e *SyntheticEnv) refresh() {
	for i := range e.state {
		e.state[i] = e.rng.NormFloat64()
	}
	// Rotate one infeasible action per step so masked evaluation paths get
	// exercised without ever masking everything.
	for a := range e.feasible {
		e.feasible[a] = a != e.t%e.numActions
	}
}

// Observe implements Environment.
func (e *SyntheticEnv) Observe(dst []float64) []float64 {
	if cap(dst) < e.stateDim {
		dst = make([]float64, e.stateDim)
	}
	dst = dst[:e.stateDim]
	copy(dst, e.state)
	return dst
}

// Step implements Environment: the reward is the chosen action's score
// under its fixed weight vector, scaled to O(1).
func (e *SyntheticEnv) Step(action int) float64 {
	if action < 0 || action >= e.numActions {
		panic("rl: SyntheticEnv.Step: action out of range")
	}
	w := e.weights[action*e.stateDim : (action+1)*e.stateDim]
	score := 0.0
	for i, x := range e.state {
		score += w[i] * x
	}
	e.t++
	if !e.Done() {
		e.refresh()
	}
	return score / float64(e.stateDim)
}

// Done implements Environment.
func (e *SyntheticEnv) Done() bool { return e.t >= e.horizon }

// Truncated implements Truncator: the horizon cut is always a truncation —
// the bandit has no terminal state. After the cut, Observe returns the final
// context (refresh is skipped once Done), which stands in for the successor
// state; for a contextual bandit the critic's value of any context is an
// equally valid continuation estimate.
func (e *SyntheticEnv) Truncated() bool { return e.t >= e.horizon }

// StateDim implements Environment.
func (e *SyntheticEnv) StateDim() int { return e.stateDim }

// NumActions implements Environment.
func (e *SyntheticEnv) NumActions() int { return e.numActions }

// FeasibleActions implements Environment. The returned slice is reused
// across steps.
func (e *SyntheticEnv) FeasibleActions() []bool { return e.feasible }

var (
	_ Environment = (*SyntheticEnv)(nil)
	_ Truncator   = (*SyntheticEnv)(nil)
)
