package rl

import (
	"repro/internal/autograd"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Thin aliases so the main test file reads cleanly.

type tensorMatrix = tensor.Matrix

func tensorRowVector(v []float64) *tensorMatrix { return tensor.RowVector(v) }

func nnCopy(dst, src nn.Module) error { return nn.CopyParams(dst, src) }

// trainCriticStep accumulates one MSE gradient of critic vs. buffer returns.
func trainCriticStep(critic *nn.MLP, buf *Buffer) {
	steps := buf.Steps()
	returns := buf.Returns(0.99)
	states := tensor.New(len(steps), len(steps[0].State))
	target := tensor.New(len(steps), 1)
	for i, s := range steps {
		copy(states.Row(i), s.State)
		target.Data[i] = returns[i]
	}
	tape := autograd.NewTape()
	v := critic.Forward(tape, tape.Const(states))
	autograd.Mean(autograd.Square(autograd.Sub(v, tape.Const(target)))).Backward()
}
