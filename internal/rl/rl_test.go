package rl

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cloudsim"
	"repro/internal/nn"
	"repro/internal/workload"
)

func TestBufferReturns(t *testing.T) {
	var b Buffer
	b.Add(Transition{Reward: 1})
	b.Add(Transition{Reward: 2})
	b.Add(Transition{Reward: 3, Done: true})
	g := b.Returns(0.5)
	// G2 = 3; G1 = 2 + 0.5*3 = 3.5; G0 = 1 + 0.5*3.5 = 2.75
	want := []float64{2.75, 3.5, 3}
	for i := range want {
		if math.Abs(g[i]-want[i]) > 1e-12 {
			t.Fatalf("returns %v, want %v", g, want)
		}
	}
}

func TestBufferReturnsResetAtEpisodeBoundary(t *testing.T) {
	var b Buffer
	b.Add(Transition{Reward: 5, Done: true})
	b.Add(Transition{Reward: 7, Done: true})
	g := b.Returns(0.9)
	if g[0] != 5 || g[1] != 7 {
		t.Fatalf("boundary not respected: %v", g)
	}
}

func TestGAEMatchesHandComputation(t *testing.T) {
	var b Buffer
	b.Add(Transition{Reward: 1, Value: 0.5})
	b.Add(Transition{Reward: 2, Value: 1.0, Done: true})
	gamma, lambda := 0.9, 0.8
	adv, targets := b.GAE(gamma, lambda)
	// t=1 terminal: delta1 = 2 + 0 - 1 = 1; gae1 = 1.
	// t=0: delta0 = 1 + 0.9*1.0 - 0.5 = 1.4; gae0 = 1.4 + 0.9*0.8*1 = 2.12.
	if math.Abs(adv[1]-1) > 1e-12 || math.Abs(adv[0]-2.12) > 1e-12 {
		t.Fatalf("adv %v", adv)
	}
	if math.Abs(targets[0]-(2.12+0.5)) > 1e-12 || math.Abs(targets[1]-2.0) > 1e-12 {
		t.Fatalf("targets %v", targets)
	}
}

func TestGAEWithLambdaOneEqualsMonteCarlo(t *testing.T) {
	var b Buffer
	vals := []float64{0.3, -0.2, 0.7}
	rewards := []float64{1, -1, 2}
	for i := range rewards {
		b.Add(Transition{Reward: rewards[i], Value: vals[i], Done: i == 2})
	}
	gamma := 0.95
	adv, _ := b.GAE(gamma, 1.0)
	g := b.Returns(gamma)
	for i := range adv {
		if math.Abs(adv[i]-(g[i]-vals[i])) > 1e-9 {
			t.Fatalf("GAE(λ=1) != MC advantage at %d: %v vs %v", i, adv[i], g[i]-vals[i])
		}
	}
}

func TestGAETruncatedTailUsesBootstrap(t *testing.T) {
	var b Buffer
	b.Add(Transition{Reward: 1, Value: 0.5})
	b.Add(Transition{Reward: 2, Value: 1.0, Done: true, Truncated: true, Bootstrap: 3.0})
	gamma, lambda := 0.9, 0.8
	adv, targets := b.GAE(gamma, lambda)
	// t=1 truncated: delta1 = 2 + 0.9*3.0 - 1 = 3.7; gae1 = 3.7.
	// t=0: delta0 = 1 + 0.9*1.0 - 0.5 = 1.4; gae0 = 1.4 + 0.72*3.7 = 4.064.
	if math.Abs(adv[1]-3.7) > 1e-12 || math.Abs(adv[0]-4.064) > 1e-12 {
		t.Fatalf("adv %v", adv)
	}
	if math.Abs(targets[1]-4.7) > 1e-12 || math.Abs(targets[0]-(4.064+0.5)) > 1e-12 {
		t.Fatalf("targets %v", targets)
	}
	// Returns bootstrap the same way: G1 = 2 + 0.9*3 = 4.7; G0 = 1 + 0.9*4.7.
	g := b.Returns(gamma)
	if math.Abs(g[1]-4.7) > 1e-12 || math.Abs(g[0]-5.23) > 1e-12 {
		t.Fatalf("returns %v", g)
	}
}

// mixedBuffer packs three episodes into one batch: a true terminal, a
// truncated cut with a recorded bootstrap, and an open (non-Done) tail
// closed via SetTailValue.
func mixedBuffer() *Buffer {
	var b Buffer
	b.Add(Transition{Reward: 1, Value: 0.2, Done: true})
	b.Add(Transition{Reward: 2, Value: 0.4})
	b.Add(Transition{Reward: 3, Value: 0.6, Done: true, Truncated: true, Bootstrap: 1.0})
	b.Add(Transition{Reward: 4, Value: 0.8})
	b.SetTailValue(2.0)
	return &b
}

func TestGAEMixedBoundariesHandComputed(t *testing.T) {
	b := mixedBuffer()
	adv, targets := b.GAE(0.5, 0.5)
	// i=3 open tail:  delta = 4 + 0.5*2.0 - 0.8 = 4.2;  gae = 4.2.
	// i=2 truncated:  delta = 3 + 0.5*1.0 - 0.6 = 2.9;  gae resets, = 2.9.
	// i=1:            delta = 2 + 0.5*0.6 - 0.4 = 1.9;  gae = 1.9 + 0.25*2.9 = 2.625.
	// i=0 terminal:   delta = 1 + 0 - 0.2 = 0.8;        gae resets, = 0.8.
	wantAdv := []float64{0.8, 2.625, 2.9, 4.2}
	wantTgt := []float64{1.0, 3.025, 3.5, 5.0}
	for i := range wantAdv {
		if math.Abs(adv[i]-wantAdv[i]) > 1e-12 || math.Abs(targets[i]-wantTgt[i]) > 1e-12 {
			t.Fatalf("adv %v targets %v, want %v %v", adv, targets, wantAdv, wantTgt)
		}
	}
	// Returns: G3 = 4 + 0.5*2 = 5; G2 = 3 + 0.5*1 = 3.5; G1 = 2 + 0.5*3.5;
	// G0 = 1 (terminal boundary zeroes the continuation).
	g := b.Returns(0.5)
	wantG := []float64{1, 3.75, 3.5, 5}
	for i := range wantG {
		if math.Abs(g[i]-wantG[i]) > 1e-12 {
			t.Fatalf("returns %v, want %v", g, wantG)
		}
	}
}

func TestGAELambdaZeroIsOneStepTD(t *testing.T) {
	b := mixedBuffer()
	adv, _ := b.GAE(0.5, 0)
	// λ=0 collapses GAE to the raw TD errors (the deltas above).
	want := []float64{0.8, 1.9, 2.9, 4.2}
	for i := range want {
		if math.Abs(adv[i]-want[i]) > 1e-12 {
			t.Fatalf("λ=0 adv %v, want deltas %v", adv, want)
		}
	}
}

func TestGAELambdaOneEqualsBootstrappedMonteCarlo(t *testing.T) {
	// λ=1 telescopes to G_t − V(s_t) within each segment, where G_t uses the
	// same bootstraps as Returns — including across the truncated boundary
	// and the open tail.
	b := mixedBuffer()
	gamma := 0.95
	adv, _ := b.GAE(gamma, 1.0)
	g := b.Returns(gamma)
	for i, s := range b.Steps() {
		if math.Abs(adv[i]-(g[i]-s.Value)) > 1e-9 {
			t.Fatalf("GAE(λ=1) != bootstrapped MC at %d: %v vs %v", i, adv[i], g[i]-s.Value)
		}
	}
}

func TestCollectEpisodeRecordsTruncation(t *testing.T) {
	// SyntheticEnv always ends on its horizon, so the collector must mark the
	// final transition truncated and attach the critic's bootstrap.
	env := NewSyntheticEnv(6, 4, 5, 42)
	agent := NewPPO(DefaultConfig(6, 4), rand.New(rand.NewSource(43)))
	var buf Buffer
	CollectEpisode(env, agent, &buf)
	steps := buf.Steps()
	if len(steps) != 5 {
		t.Fatalf("got %d transitions, want 5", len(steps))
	}
	last := steps[len(steps)-1]
	if !last.Done || !last.Truncated {
		t.Fatalf("horizon cut must be a truncated terminal: %+v", last)
	}
	if want := agent.Value(env.Observe(nil)); last.Bootstrap != want {
		t.Fatalf("bootstrap %v, want critic value %v of the post-cut state", last.Bootstrap, want)
	}
	for i, s := range steps[:len(steps)-1] {
		if s.Truncated || s.Done {
			t.Fatalf("mid-episode transition %d marked done/truncated", i)
		}
	}
}

func TestNormalizeInPlace(t *testing.T) {
	v := []float64{1, 2, 3, 4}
	NormalizeInPlace(v)
	mean, variance := 0.0, 0.0
	for _, x := range v {
		mean += x
	}
	mean /= 4
	for _, x := range v {
		variance += (x - mean) * (x - mean)
	}
	variance /= 4
	if math.Abs(mean) > 1e-9 || math.Abs(variance-1) > 1e-3 {
		t.Fatalf("normalize gave mean %v var %v", mean, variance)
	}
	// Degenerate cases must not blow up.
	single := []float64{5}
	NormalizeInPlace(single)
	if single[0] != 5 {
		t.Fatal("single element should be untouched")
	}
}

func TestNormalizeInPlaceConstantInputCentersToZero(t *testing.T) {
	// A constant advantage batch carries no preference between actions; the
	// degenerate-variance early-out must still subtract the mean, otherwise
	// the uniform offset passes straight into the surrogate as if it were
	// signal.
	same := []float64{2, 2, 2}
	NormalizeInPlace(same)
	for i, x := range same {
		if x != 0 {
			t.Fatalf("constant input must map to zeros, got %v at index %d", x, i)
		}
	}
	negative := []float64{-7.5, -7.5}
	NormalizeInPlace(negative)
	if negative[0] != 0 || negative[1] != 0 {
		t.Fatalf("negative constant input must map to zeros: %v", negative)
	}
}

func TestBufferReset(t *testing.T) {
	var b Buffer
	b.Add(Transition{})
	b.Reset()
	if b.Len() != 0 {
		t.Fatal("Reset failed")
	}
}

func smallEnv(seed int64, n int) *cloudsim.Env {
	rng := rand.New(rand.NewSource(seed))
	cfg := cloudsim.DefaultConfig([]cloudsim.VMSpec{{CPU: 4, Mem: 16}, {CPU: 8, Mem: 32}})
	tasks := cloudsim.ClampTasks(workload.SampleDataset(workload.Google, rng, n), cfg.VMs)
	return cloudsim.MustNewEnv(cfg, tasks)
}

func TestPPOSelectActionInRange(t *testing.T) {
	env := smallEnv(1, 10)
	agent := NewPPO(DefaultConfig(env.StateDim(), env.NumActions()), rand.New(rand.NewSource(2)))
	state := env.Observe(nil)
	for i := 0; i < 50; i++ {
		a, logp := agent.SelectAction(state)
		if a < 0 || a >= env.NumActions() {
			t.Fatalf("action %d out of range", a)
		}
		if logp > 0 || math.IsNaN(logp) {
			t.Fatalf("bad log-prob %v", logp)
		}
	}
}

func TestPPOUpdateEmptyBufferIsNoop(t *testing.T) {
	agent := NewPPO(DefaultConfig(4, 3), rand.New(rand.NewSource(3)))
	var buf Buffer
	stats := agent.Update(&buf)
	if stats != (UpdateStats{}) {
		t.Fatalf("empty update stats %+v", stats)
	}
}

func TestCollectEpisodeFillsBuffer(t *testing.T) {
	env := smallEnv(4, 15)
	agent := NewPPO(DefaultConfig(env.StateDim(), env.NumActions()), rand.New(rand.NewSource(5)))
	var buf Buffer
	total := CollectEpisode(env, agent, &buf)
	env.Drain()
	m := env.Metrics()
	if buf.Len() == 0 {
		t.Fatal("buffer empty after episode")
	}
	steps := buf.Steps()
	if !steps[len(steps)-1].Done {
		t.Fatal("last transition must be terminal")
	}
	for i, s := range steps[:len(steps)-1] {
		if s.Done {
			t.Fatalf("non-terminal transition %d marked done", i)
		}
	}
	if m.Steps != buf.Len() {
		t.Fatalf("env steps %d != buffer %d", m.Steps, buf.Len())
	}
	if math.IsNaN(total) {
		t.Fatal("NaN total reward")
	}
	// States must be snapshots, not aliases.
	if len(steps) > 1 && &steps[0].State[0] == &steps[1].State[0] {
		t.Fatal("states alias each other")
	}
}

func TestPPOImprovesOnSmallWorkload(t *testing.T) {
	// Train on a small fixed workload; total reward over the last episodes
	// must exceed the first episodes. This is the end-to-end learning check.
	env := smallEnv(6, 25)
	rng := rand.New(rand.NewSource(7))
	cfg := DefaultConfig(env.StateDim(), env.NumActions())
	cfg.ActorLR = 1e-3
	cfg.CriticLR = 1e-3
	agent := NewPPO(cfg, rng)
	taskRng := rand.New(rand.NewSource(8))
	tasks := cloudsim.ClampTasks(workload.SampleDataset(workload.Google, taskRng, 25), env.Config().VMs)

	episodes := 40
	rewards := make([]float64, episodes)
	for ep := 0; ep < episodes; ep++ {
		env.Reset(tasks)
		var buf Buffer
		r := CollectEpisode(env, agent, &buf)
		agent.Update(&buf)
		rewards[ep] = r
	}
	early := mean(rewards[:8])
	late := mean(rewards[episodes-8:])
	if late <= early {
		t.Fatalf("PPO did not improve: early %v late %v", early, late)
	}
}

func mean(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

func TestDualCriticValueBlending(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cfg := DefaultConfig(6, 3)
	d := NewDualCriticPPO(cfg, rng)
	state := make([]float64, 6)
	for i := range state {
		state[i] = rng.NormFloat64()
	}
	vl := d.LocalCritic.Predict(rowOf(state)).Data[0]
	vp := d.PublicCritic.Predict(rowOf(state)).Data[0]
	d.Alpha = 0.3
	want := 0.3*vl + 0.7*vp
	if got := d.Value(state); math.Abs(got-want) > 1e-12 {
		t.Fatalf("blended value %v, want %v", got, want)
	}
	d.Alpha = 1
	if got := d.Value(state); math.Abs(got-vl) > 1e-12 {
		t.Fatal("alpha=1 should be pure local critic")
	}
}

func rowOf(v []float64) *tensorMatrix { return tensorRowVector(v) }

func TestRefreshAlphaPrefersBetterCritic(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	cfg := DefaultConfig(4, 2)
	cfg.Gamma = 0.9
	d := NewDualCriticPPO(cfg, rng)
	// Build a buffer whose returns are all ~0 and force the public critic
	// to output huge values: its loss explodes, so α → 1 (prefer local).
	var buf Buffer
	for i := 0; i < 10; i++ {
		buf.Add(Transition{State: []float64{0.1, 0.2, 0.3, 0.4}, Reward: 0, Done: i == 9})
	}
	for _, p := range d.PublicCritic.Params() {
		p.Data.Fill(3)
	}
	d.RefreshAlpha(&buf)
	// With mean-normalized losses the softmax tops out at 1/(1+e^-2)≈0.88
	// when the other critic is arbitrarily worse.
	if d.Alpha < 0.8 {
		t.Fatalf("alpha %v should strongly prefer the local critic", d.Alpha)
	}
	if d.LastPublicLoss <= d.LastLocalLoss {
		t.Fatal("loss probes inconsistent")
	}
	// And symmetric critics give α = 0.5.
	if err := nnCopy(d.PublicCritic, d.LocalCritic); err != nil {
		t.Fatal(err)
	}
	d.RefreshAlpha(&buf)
	if math.Abs(d.Alpha-0.5) > 1e-9 {
		t.Fatalf("identical critics should give α=0.5, got %v", d.Alpha)
	}
}

func TestRefreshAlphaEmptyBufferNoop(t *testing.T) {
	d := NewDualCriticPPO(DefaultConfig(4, 2), rand.New(rand.NewSource(11)))
	d.Alpha = 0.77
	var buf Buffer
	d.RefreshAlpha(&buf)
	if d.Alpha != 0.77 {
		t.Fatal("empty buffer must not change alpha")
	}
}

func TestPublicCriticRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := NewDualCriticPPO(DefaultConfig(5, 3), rng)
	b := NewDualCriticPPO(DefaultConfig(5, 3), rng)
	flat := a.PublicCriticParams()
	if err := b.LoadPublicCritic(flat, nil); err != nil {
		t.Fatal(err)
	}
	state := []float64{0.1, -0.2, 0.3, 0, 0.5}
	va := a.PublicCritic.Predict(rowOf(state)).Data[0]
	vb := b.PublicCritic.Predict(rowOf(state)).Data[0]
	if math.Abs(va-vb) > 1e-12 {
		t.Fatal("public critic transfer mismatch")
	}
	if err := b.LoadPublicCritic(flat[:5], nil); err == nil {
		t.Fatal("expected length error")
	}
}

func TestDualCriticUpdateRefreshesAlpha(t *testing.T) {
	env := smallEnv(13, 12)
	rng := rand.New(rand.NewSource(14))
	d := NewDualCriticPPO(DefaultConfig(env.StateDim(), env.NumActions()), rng)
	var buf Buffer
	CollectEpisode(env, d, &buf)
	d.Alpha = -1 // sentinel
	d.Update(&buf)
	if d.Alpha < 0 || d.Alpha > 1 {
		t.Fatalf("Update should refresh alpha into [0,1], got %v", d.Alpha)
	}
}

func TestDualCriticImprovesOnSmallWorkload(t *testing.T) {
	env := smallEnv(15, 25)
	rng := rand.New(rand.NewSource(16))
	cfg := DefaultConfig(env.StateDim(), env.NumActions())
	cfg.ActorLR = 1e-3
	cfg.CriticLR = 1e-3
	d := NewDualCriticPPO(cfg, rng)
	taskRng := rand.New(rand.NewSource(17))
	tasks := cloudsim.ClampTasks(workload.SampleDataset(workload.Google, taskRng, 25), env.Config().VMs)
	episodes := 40
	rewards := make([]float64, episodes)
	for ep := 0; ep < episodes; ep++ {
		env.Reset(tasks)
		var buf Buffer
		r := CollectEpisode(env, d, &buf)
		d.Update(&buf)
		rewards[ep] = r
	}
	if late, early := mean(rewards[episodes-8:]), mean(rewards[:8]); late <= early {
		t.Fatalf("dual-critic PPO did not improve: early %v late %v", early, late)
	}
}

func TestEvaluateEpisodeDeterministic(t *testing.T) {
	agent := NewPPO(DefaultConfig(smallEnv(18, 10).StateDim(), smallEnv(18, 10).NumActions()), rand.New(rand.NewSource(19)))
	e1, e2 := smallEnv(18, 10), smallEnv(18, 10)
	r1 := EvaluateEpisode(e1, agent)
	r2 := EvaluateEpisode(e2, agent)
	e1.Drain()
	e2.Drain()
	if r1 != r2 || e1.Metrics() != e2.Metrics() {
		t.Fatal("greedy evaluation should be deterministic")
	}
}

func TestCriticMSEDropsWhenCriticFits(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	critic := nn.NewMLP(rng, "c", []int{3, 16, 1}, nn.ActTanh, 1.0)
	var buf Buffer
	for i := 0; i < 32; i++ {
		s := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		buf.Add(Transition{State: s, Reward: s[0], Done: true}) // return == s[0]
	}
	before := CriticMSE(critic, &buf, 0.99)
	opt := nn.NewAdam(critic, 1e-2)
	for it := 0; it < 200; it++ {
		opt.ZeroGrad()
		trainCriticStep(critic, &buf)
		opt.Step()
	}
	after := CriticMSE(critic, &buf, 0.99)
	if after >= before {
		t.Fatalf("critic MSE did not drop: %v -> %v", before, after)
	}
}

func TestEvaluateEpisodeMaskedNeverInvalid(t *testing.T) {
	// With the feasibility guard an untrained agent completes the workload
	// and never pays an invalid-placement or lazy-wait penalty worse than
	// the environment's forced waits.
	env := smallEnv(30, 20)
	agent := NewPPO(DefaultConfig(env.StateDim(), env.NumActions()), rand.New(rand.NewSource(31)))
	EvaluateEpisodeMasked(env, agent)
	env.Drain()
	m := env.Metrics()
	if m.Completed != m.Total {
		t.Fatalf("masked evaluation should complete all tasks: %d/%d", m.Completed, m.Total)
	}
}

func TestMaskedBeatsUnmaskedForUntrainedAgent(t *testing.T) {
	// The guard can cost reward (lazy-wait penalties instead of cheap
	// invalid-placement penalties) but must deliver better scheduling:
	// lower response time and full completion.
	agent := NewPPO(DefaultConfig(smallEnv(32, 20).StateDim(), smallEnv(32, 20).NumActions()), rand.New(rand.NewSource(33)))
	envM, envU := smallEnv(32, 20), smallEnv(32, 20)
	EvaluateEpisodeMasked(envM, agent)
	EvaluateEpisode(envU, agent)
	envM.Drain()
	envU.Drain()
	mMasked, mUnmasked := envM.Metrics(), envU.Metrics()
	if mMasked.Completed != mMasked.Total {
		t.Fatalf("masked evaluation incomplete: %d/%d", mMasked.Completed, mMasked.Total)
	}
	if mUnmasked.Completed == mUnmasked.Total && mMasked.AvgResponse > mUnmasked.AvgResponse {
		t.Fatalf("masked response %v should beat unmasked %v", mMasked.AvgResponse, mUnmasked.AvgResponse)
	}
}
