package rl

import "repro/internal/nn"

// Proximal adds FedProx-style regularization (Li et al., MLSys 2020) to a
// PPO client: local updates additionally minimize μ/2·‖w − w_ref‖², pulling
// the model toward the last global model and damping client drift in
// heterogeneous federations. It is the classic FL heterogeneity mitigation
// the paper's related work contrasts with personalization, included here as
// an extension baseline.
type Proximal struct {
	// Mu is the proximal coefficient (0 disables the term).
	Mu float64
	// ref maps each regularized module to its reference (global) flat
	// parameter vector.
	ref map[nn.Module][]float64
}

// SetRef captures the given modules' current parameters as the proximal
// reference point. Call after installing a global model.
func (px *Proximal) SetRef(modules ...nn.Module) {
	px.ref = make(map[nn.Module][]float64, len(modules))
	for _, m := range modules {
		px.ref[m] = nn.FlattenParams(m)
	}
}

// Apply adds μ(w − w_ref) — the gradient of the proximal term — to the
// module's accumulated gradients. Modules without a captured reference are
// left untouched, as is everything when Mu is 0.
func (px *Proximal) Apply(m nn.Module) {
	if px.Mu == 0 {
		return
	}
	ref, ok := px.ref[m]
	if !ok {
		return
	}
	off := 0
	for _, p := range m.Params() {
		n := p.NumElems()
		for i := 0; i < n; i++ {
			p.Grad.Data[i] += px.Mu * (p.Data.Data[i] - ref[off+i])
		}
		off += n
	}
}

// EnableProximal turns on FedProx regularization for this agent with the
// given μ and captures the current parameters as the initial reference.
func (p *PPO) EnableProximal(mu float64) {
	p.prox.Mu = mu
	p.prox.SetRef(p.Actor, p.Critic)
}

// RefreshProximalRef re-captures the reference point (call after a global
// model download). A no-op unless EnableProximal was called.
func (p *PPO) RefreshProximalRef() {
	if p.prox.Mu != 0 {
		p.prox.SetRef(p.Actor, p.Critic)
	}
}
