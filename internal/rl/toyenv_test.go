package rl

import (
	"math/rand"
	"testing"
)

// toyEnv is a minimal rl.Environment: a contextual bandit where the state
// one-hot encodes the rewarded action. It proves the agents and rollout
// loops work against any Environment, not just cloudsim, and gives a fast,
// noise-free learning check.
type toyEnv struct {
	rng     *rand.Rand
	actions int
	horizon int

	step   int
	target int
}

func newToyEnv(seed int64, actions, horizon int) *toyEnv {
	e := &toyEnv{rng: rand.New(rand.NewSource(seed)), actions: actions, horizon: horizon}
	e.reset()
	return e
}

func (e *toyEnv) reset() {
	e.step = 0
	e.target = e.rng.Intn(e.actions)
}

func (e *toyEnv) Observe(dst []float64) []float64 {
	if cap(dst) < e.actions {
		dst = make([]float64, e.actions)
	}
	dst = dst[:e.actions]
	for i := range dst {
		dst[i] = 0
	}
	dst[e.target] = 1
	return dst
}

func (e *toyEnv) Step(action int) float64 {
	r := -1.0
	if action == e.target {
		r = 1.0
	}
	e.step++
	e.target = e.rng.Intn(e.actions)
	return r
}

func (e *toyEnv) Done() bool      { return e.step >= e.horizon }
func (e *toyEnv) StateDim() int   { return e.actions }
func (e *toyEnv) NumActions() int { return e.actions }
func (e *toyEnv) FeasibleActions() []bool {
	mask := make([]bool, e.actions)
	for i := range mask {
		mask[i] = true
	}
	return mask
}

var _ Environment = (*toyEnv)(nil)

func TestPPOSolvesContextualBandit(t *testing.T) {
	env := newToyEnv(1, 4, 64)
	cfg := DefaultConfig(4, 4)
	cfg.ActorLR = 5e-3
	cfg.CriticLR = 5e-3
	agent := NewPPO(cfg, rand.New(rand.NewSource(2)))
	var last float64
	for ep := 0; ep < 60; ep++ {
		env.reset()
		var buf Buffer
		last = CollectEpisode(env, agent, &buf)
		agent.Update(&buf)
	}
	// Perfect play scores +64; random scores ≈ -32. Require clear mastery.
	if last < 32 {
		t.Fatalf("PPO failed the bandit: final reward %v", last)
	}
	// The greedy policy should read the one-hot context correctly.
	correct := 0
	for i := 0; i < 4; i++ {
		state := make([]float64, 4)
		state[i] = 1
		if agent.GreedyAction(state) == i {
			correct++
		}
	}
	if correct < 4 {
		t.Fatalf("greedy policy correct on %d/4 contexts", correct)
	}
}

func TestDualCriticSolvesContextualBandit(t *testing.T) {
	env := newToyEnv(3, 3, 48)
	cfg := DefaultConfig(3, 3)
	cfg.ActorLR = 5e-3
	cfg.CriticLR = 5e-3
	agent := NewDualCriticPPO(cfg, rand.New(rand.NewSource(4)))
	var last float64
	for ep := 0; ep < 60; ep++ {
		env.reset()
		var buf Buffer
		last = CollectEpisode(env, agent, &buf)
		agent.Update(&buf)
	}
	if last < 24 { // perfect is +48
		t.Fatalf("dual-critic PPO failed the bandit: final reward %v", last)
	}
}
