package rl

import (
	"math/rand"

	"repro/internal/autograd"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// Config holds the PPO hyperparameters. The defaults mirror §3.1 of the
// paper: one hidden layer of 64 units, actor lr 3e-4, critic lr 1e-4,
// γ = 0.99, clip ε = 0.2.
type Config struct {
	StateDim   int
	NumActions int
	Hidden     []int // hidden layer sizes; nil means [64]

	ActorLR  float64
	CriticLR float64
	Gamma    float64
	Lambda   float64 // GAE λ
	Clip     float64 // ε in Eq. (12)
	EntCoef  float64 // entropy bonus coefficient
	// UpdateEpochs is Ω': optimization passes over the batch per Update.
	UpdateEpochs int
	MiniBatch    int
	MaxGradNorm  float64 // 0 disables clipping

	// ValueClip, when positive, clips the critic's new predictions to
	// within ±ValueClip of the collection-time value estimates and takes
	// the elementwise max of the clipped and unclipped losses (PPO2-style
	// value clipping; 0 disables, the paper's setting).
	ValueClip float64
	// TargetKL, when positive, stops the epoch loop early once the
	// approximate KL(π_old ‖ π_new) of an epoch exceeds it (standard PPO
	// safeguard; 0 disables, the paper's setting).
	TargetKL float64
}

// DefaultConfig returns the paper's hyperparameters for a given
// state/action space.
func DefaultConfig(stateDim, numActions int) Config {
	return Config{
		StateDim:     stateDim,
		NumActions:   numActions,
		Hidden:       []int{64},
		ActorLR:      3e-4,
		CriticLR:     1e-4,
		Gamma:        0.99,
		Lambda:       0.95,
		Clip:         0.2,
		EntCoef:      0.01,
		UpdateEpochs: 4,
		MiniBatch:    64,
		MaxGradNorm:  0.5,
	}
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Hidden == nil {
		out.Hidden = []int{64}
	}
	if out.MiniBatch <= 0 {
		out.MiniBatch = 64
	}
	if out.UpdateEpochs <= 0 {
		out.UpdateEpochs = 4
	}
	return out
}

func (c *Config) actorSizes() []int {
	return append(append([]int{c.StateDim}, c.Hidden...), c.NumActions)
}

func (c *Config) criticSizes() []int {
	return append(append([]int{c.StateDim}, c.Hidden...), 1)
}

// UpdateStats summarizes one Update call.
type UpdateStats struct {
	ActorLoss  float64 // final-epoch mean clipped surrogate (negated objective)
	CriticLoss float64 // final-epoch mean value MSE
	Entropy    float64 // final-epoch mean policy entropy
	ApproxKL   float64 // final-epoch approximate KL(π_old ‖ π_new)
	ClipFrac   float64 // final-epoch fraction of ratios outside [1−ε, 1+ε]
}

// PPO is an independent clipped-surrogate PPO agent with a single critic —
// the paper's baseline and the building block for FedAvg / MFPO clients.
type PPO struct {
	Cfg    Config
	Actor  *nn.MLP
	Critic *nn.MLP

	actorOpt  *nn.Adam
	criticOpt *nn.Adam
	rng       *rand.Rand
	prox      Proximal
	inf       inferScratch
	tape      *autograd.Tape // pooled update tape, reused across Update calls
}

// NewPPO builds an agent with freshly initialized networks.
func NewPPO(cfg Config, rng *rand.Rand) *PPO {
	cfg = cfg.withDefaults()
	p := &PPO{
		Cfg:    cfg,
		Actor:  nn.NewMLP(rng, "actor", cfg.actorSizes(), nn.ActTanh, 0.01),
		Critic: nn.NewMLP(rng, "critic", cfg.criticSizes(), nn.ActTanh, 1.0),
		rng:    rng,
	}
	p.actorOpt = nn.NewAdam(p.Actor, cfg.ActorLR)
	p.criticOpt = nn.NewAdam(p.Critic, cfg.CriticLR)
	return p
}

// SelectAction samples an action from π(·|state) and returns it with its
// log-probability under the current policy. It runs on the zero-allocation
// inference fast path: the gradient-free MLP.Infer plus the agent's reusable
// scratch buffers (see inferScratch), producing logits bitwise identical to
// the tape-based forward pass.
func (p *PPO) SelectAction(state []float64) (action int, logProb float64) {
	dist := p.inf.policyDist(p.Actor, state, p.Cfg.NumActions, nil)
	a := dist.Sample(p.rng)
	return a, dist.LogProb(a)
}

// GreedyAction returns argmax_a π(a|state) (used for evaluation).
func (p *PPO) GreedyAction(state []float64) int {
	return p.inf.policyDist(p.Actor, state, p.Cfg.NumActions, nil).Argmax()
}

// GreedyMaskedAction returns the most probable action among those allowed
// by mask — the deployment-time feasibility guard (a production scheduler
// never submits a placement the admission check would reject).
func (p *PPO) GreedyMaskedAction(state []float64, mask []bool) int {
	return p.inf.policyDist(p.Actor, state, p.Cfg.NumActions, mask).Argmax()
}

// Value returns the critic's estimate V(state).
func (p *PPO) Value(state []float64) float64 {
	return p.Critic.Infer(p.inf.valueBuf(), p.inf.setState(state)).Data[0]
}

// Update runs the clipped PPO update (Eqs. 10–12) over the buffer.
func (p *PPO) Update(buf *Buffer) UpdateStats {
	adv, targets := buf.GAE(p.Cfg.Gamma, p.Cfg.Lambda)
	NormalizeInPlace(adv)
	if p.tape == nil {
		p.tape = autograd.NewPooledTape(tensor.DefaultPool())
	}
	return ppoUpdate(ppoUpdateSpec{
		cfg:      p.Cfg,
		rng:      p.rng,
		tape:     p.tape,
		buf:      buf,
		adv:      adv,
		targets:  targets,
		actor:    p.Actor,
		actorOpt: p.actorOpt,
		criticLoss: func(tape *autograd.Tape, states, targets, oldValues *autograd.Value) *autograd.Value {
			return valueLoss(p.Critic.Forward(tape, states), targets, oldValues, p.Cfg.ValueClip)
		},
		criticModules: []criticModule{
			{net: p.Critic, opt: p.criticOpt},
		},
		prox: &p.prox,
	})
}

// criticModule pairs a critic network with its optimizer for the shared
// update loop.
type criticModule struct {
	net *nn.MLP
	opt *nn.Adam
}

// ppoUpdateSpec feeds the shared minibatch update loop used by both PPO and
// DualCriticPPO. criticLoss produces the scalar loss to minimize for the
// critic networks (a single MSE for PPO; the sum of the two independent
// regressions of Eqs. 16–17 for the dual critic); every module in
// criticModules is stepped.
type ppoUpdateSpec struct {
	cfg Config
	rng *rand.Rand
	// tape, when non-nil, is a caller-owned pooled tape reused across Update
	// calls so node structs amortize to zero; nil gets a fresh pooled tape.
	tape    *autograd.Tape
	buf     *Buffer
	adv     []float64
	targets []float64

	actor    *nn.MLP
	actorOpt *nn.Adam

	// criticLoss builds the scalar critic loss; oldValues holds the
	// collection-time value estimates (for PPO2-style value clipping).
	criticLoss    func(tape *autograd.Tape, states, targets, oldValues *autograd.Value) *autograd.Value
	criticModules []criticModule

	// prox, when non-nil, applies FedProx regularization to every stepped
	// module (see Proximal).
	prox *Proximal
}

// mPPOUpdates counts completed gradient updates across all agents.
var mPPOUpdates = obs.DefaultRegistry().Counter("pfrl_ppo_updates_total",
	"PPO gradient updates completed (all agents)")

func ppoUpdate(s ppoUpdateSpec) UpdateStats {
	steps := s.buf.Steps()
	n := len(steps)
	if n == 0 {
		return UpdateStats{}
	}
	defer mPPOUpdates.Inc()
	stateDim := s.cfg.StateDim
	var stats UpdateStats

	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// One pooled tape serves every actor and critic step: Reset recycles its
	// node structs and intermediate matrices instead of leaving a fresh graph
	// per minibatch for the GC. Staging matrices come from the shared tensor
	// pool and return to it at the end of each batch; the actions slice is
	// reused outright. Results are bitwise identical to the fresh-tape path
	// (see autograd's TestPooledTapeResetMatchesFreshTapes).
	tape := s.tape
	if tape == nil {
		tape = autograd.NewPooledTape(tensor.DefaultPool())
	}
	defer tape.Reset() // drain tape-owned matrices back to the pool
	actions := make([]int, s.cfg.MiniBatch)
	for epoch := 0; epoch < s.cfg.UpdateEpochs; epoch++ {
		s.rng.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		epochActor, epochCritic, epochEntropy := 0.0, 0.0, 0.0
		epochKL, epochClip := 0.0, 0.0
		batches := 0
		for lo := 0; lo < n; lo += s.cfg.MiniBatch {
			hi := lo + s.cfg.MiniBatch
			if hi > n {
				hi = n
			}
			bsz := hi - lo
			states := tensor.Get(bsz, stateDim)
			actions := actions[:bsz]
			oldLogp := tensor.Get(bsz, 1)
			advantage := tensor.Get(bsz, 1)
			target := tensor.Get(bsz, 1)
			oldValue := tensor.Get(bsz, 1)
			for bi := 0; bi < bsz; bi++ {
				t := idx[lo+bi]
				copy(states.Row(bi), steps[t].State)
				actions[bi] = steps[t].Action
				oldLogp.Data[bi] = steps[t].LogProb
				advantage.Data[bi] = s.adv[t]
				target.Data[bi] = s.targets[t]
				oldValue.Data[bi] = steps[t].Value
			}

			// --- Actor step: L = -E[min(r·A, clip(r)·A)] - c·H(π) ---
			nn.ZeroGrads(s.actor)
			tape.Reset()
			sIn := tape.Const(states)
			logits := s.actor.Forward(tape, sIn)
			logp := autograd.LogSoftmaxRows(logits)
			actLogp := autograd.PickCols(logp, actions)
			ratio := autograd.Exp(autograd.Sub(actLogp, tape.Const(oldLogp)))
			advC := tape.Const(advantage)
			surr1 := autograd.Mul(ratio, advC)
			surr2 := autograd.Mul(autograd.Clamp(ratio, 1-s.cfg.Clip, 1+s.cfg.Clip), advC)
			objective := autograd.Mean(autograd.Minimum(surr1, surr2))
			probs := autograd.SoftmaxRows(logits)
			entropy := autograd.Neg(autograd.Mean(autograd.SumRows(autograd.Mul(probs, logp))))
			// Mean over SumRows divides by bsz (matrix is Nx1), so entropy is
			// the batch-mean policy entropy.
			loss := autograd.Sub(autograd.Neg(objective), autograd.Scale(entropy, s.cfg.EntCoef))
			loss.Backward()
			if s.prox != nil {
				s.prox.Apply(s.actor)
			}
			nn.ClipGradNorm(s.actor, s.cfg.MaxGradNorm)
			s.actorOpt.Step()
			epochActor += -objective.Item()
			epochEntropy += entropy.Item()
			// Approximate KL(π_old ‖ π_new) = E[log π_old − log π_new], and
			// the clip fraction: how often the surrogate actually clipped.
			klBatch, clipped := 0.0, 0
			for bi := 0; bi < bsz; bi++ {
				klBatch += oldLogp.Data[bi] - actLogp.Data.Data[bi]
				if r := ratio.Data.Data[bi]; r < 1-s.cfg.Clip || r > 1+s.cfg.Clip {
					clipped++
				}
			}
			epochKL += klBatch / float64(bsz)
			epochClip += float64(clipped) / float64(bsz)

			// --- Critic step(s) ---
			for _, cm := range s.criticModules {
				nn.ZeroGrads(cm.net)
			}
			tape.Reset()
			closs := s.criticLoss(tape, tape.Const(states), tape.Const(target), tape.Const(oldValue))
			closs.Backward()
			for _, cm := range s.criticModules {
				if s.prox != nil {
					s.prox.Apply(cm.net)
				}
				nn.ClipGradNorm(cm.net, s.cfg.MaxGradNorm)
				cm.opt.Step()
			}
			epochCritic += closs.Item()
			// All stats for this batch are read; the staging matrices may
			// return to the pool (the stale Const references die at the next
			// Reset without being read again).
			tensor.Put(states)
			tensor.Put(oldLogp)
			tensor.Put(advantage)
			tensor.Put(target)
			tensor.Put(oldValue)
			batches++
		}
		if batches > 0 {
			stats = UpdateStats{
				ActorLoss:  epochActor / float64(batches),
				CriticLoss: epochCritic / float64(batches),
				Entropy:    epochEntropy / float64(batches),
				ApproxKL:   epochKL / float64(batches),
				ClipFrac:   epochClip / float64(batches),
			}
		}
		if s.cfg.TargetKL > 0 && batches > 0 && stats.ApproxKL > s.cfg.TargetKL {
			break // the policy moved far enough; further epochs overfit the batch
		}
	}
	return stats
}

// valueLoss builds the critic regression loss: plain MSE, or the PPO2
// clipped form max(MSE(v), MSE(vOld + clip(v−vOld, ±ε))) when clip > 0.
func valueLoss(pred, targets, oldValues *autograd.Value, clip float64) *autograd.Value {
	plain := autograd.Square(autograd.Sub(pred, targets))
	if clip <= 0 {
		return autograd.Mean(plain)
	}
	clipped := autograd.Add(oldValues, autograd.Clamp(autograd.Sub(pred, oldValues), -clip, clip))
	clippedSq := autograd.Square(autograd.Sub(clipped, targets))
	// Elementwise max(a,b) = −min(−a,−b).
	worst := autograd.Neg(autograd.Minimum(autograd.Neg(plain), autograd.Neg(clippedSq)))
	return autograd.Mean(worst)
}

// CriticMSE evaluates a critic's mean squared error against the discounted
// returns of the trajectories in buf — the loss probe used for the adaptive
// α (Eq. 15) and for Figure 9.
func CriticMSE(critic *nn.MLP, buf *Buffer, gamma float64) float64 {
	steps := buf.Steps()
	if len(steps) == 0 {
		return 0
	}
	returns := buf.Returns(gamma)
	states := tensor.Get(len(steps), len(steps[0].State))
	for i, s := range steps {
		copy(states.Row(i), s.State)
	}
	v := tensor.Get(len(steps), 1)
	critic.Infer(v, states)
	mse := 0.0
	for i := range returns {
		d := v.Data[i] - returns[i]
		mse += d * d
	}
	tensor.Put(states)
	tensor.Put(v)
	return mse / float64(len(returns))
}
