package rl

import (
	"math/rand"

	"repro/internal/autograd"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Config holds the PPO hyperparameters. The defaults mirror §3.1 of the
// paper: one hidden layer of 64 units, actor lr 3e-4, critic lr 1e-4,
// γ = 0.99, clip ε = 0.2.
type Config struct {
	StateDim   int
	NumActions int
	Hidden     []int // hidden layer sizes; nil means [64]

	ActorLR  float64
	CriticLR float64
	Gamma    float64
	Lambda   float64 // GAE λ
	Clip     float64 // ε in Eq. (12)
	EntCoef  float64 // entropy bonus coefficient
	// UpdateEpochs is Ω': optimization passes over the batch per Update.
	UpdateEpochs int
	MiniBatch    int
	MaxGradNorm  float64 // 0 disables clipping

	// ValueClip, when positive, clips the critic's new predictions to
	// within ±ValueClip of the collection-time value estimates and takes
	// the elementwise max of the clipped and unclipped losses (PPO2-style
	// value clipping; 0 disables, the paper's setting).
	ValueClip float64
	// TargetKL, when positive, stops the epoch loop early once the
	// approximate KL(π_old ‖ π_new) of an epoch exceeds it (standard PPO
	// safeguard; 0 disables, the paper's setting).
	TargetKL float64
}

// DefaultConfig returns the paper's hyperparameters for a given
// state/action space.
func DefaultConfig(stateDim, numActions int) Config {
	return Config{
		StateDim:     stateDim,
		NumActions:   numActions,
		Hidden:       []int{64},
		ActorLR:      3e-4,
		CriticLR:     1e-4,
		Gamma:        0.99,
		Lambda:       0.95,
		Clip:         0.2,
		EntCoef:      0.01,
		UpdateEpochs: 4,
		MiniBatch:    64,
		MaxGradNorm:  0.5,
	}
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Hidden == nil {
		out.Hidden = []int{64}
	}
	if out.MiniBatch <= 0 {
		out.MiniBatch = 64
	}
	if out.UpdateEpochs <= 0 {
		out.UpdateEpochs = 4
	}
	return out
}

func (c *Config) actorSizes() []int {
	return append(append([]int{c.StateDim}, c.Hidden...), c.NumActions)
}

func (c *Config) criticSizes() []int {
	return append(append([]int{c.StateDim}, c.Hidden...), 1)
}

// UpdateStats summarizes one Update call.
type UpdateStats struct {
	ActorLoss  float64 // final-epoch mean clipped surrogate (negated objective)
	CriticLoss float64 // final-epoch mean value MSE
	Entropy    float64 // final-epoch mean policy entropy
	ApproxKL   float64 // final-epoch approximate KL(π_old ‖ π_new)
	ClipFrac   float64 // final-epoch fraction of ratios outside [1−ε, 1+ε]
}

// PPO is an independent clipped-surrogate PPO agent with a single critic —
// the paper's baseline and the building block for FedAvg / MFPO clients.
type PPO struct {
	Cfg    Config
	Actor  *nn.MLP
	Critic *nn.MLP

	actorOpt  *nn.Adam
	criticOpt *nn.Adam
	rng       *rand.Rand
	prox      Proximal
	inf       inferScratch
	upd       updateScratch // batched update pipeline staging (see update.go)
}

// NewPPO builds an agent with freshly initialized networks.
func NewPPO(cfg Config, rng *rand.Rand) *PPO {
	cfg = cfg.withDefaults()
	p := &PPO{
		Cfg:    cfg,
		Actor:  nn.NewMLP(rng, "actor", cfg.actorSizes(), nn.ActTanh, 0.01),
		Critic: nn.NewMLP(rng, "critic", cfg.criticSizes(), nn.ActTanh, 1.0),
		rng:    rng,
	}
	p.actorOpt = nn.NewAdam(p.Actor, cfg.ActorLR)
	p.criticOpt = nn.NewAdam(p.Critic, cfg.CriticLR)
	return p
}

// SelectAction samples an action from π(·|state) and returns it with its
// log-probability under the current policy. It runs on the zero-allocation
// inference fast path: the gradient-free MLP.Infer plus the agent's reusable
// scratch buffers (see inferScratch), producing logits bitwise identical to
// the tape-based forward pass.
func (p *PPO) SelectAction(state []float64) (action int, logProb float64) {
	dist := p.inf.policyDist(p.Actor, state, p.Cfg.NumActions, nil)
	a := dist.Sample(p.rng)
	return a, dist.LogProb(a)
}

// GreedyAction returns argmax_a π(a|state) (used for evaluation).
func (p *PPO) GreedyAction(state []float64) int {
	return p.inf.policyDist(p.Actor, state, p.Cfg.NumActions, nil).Argmax()
}

// GreedyMaskedAction returns the most probable action among those allowed
// by mask — the deployment-time feasibility guard (a production scheduler
// never submits a placement the admission check would reject).
func (p *PPO) GreedyMaskedAction(state []float64, mask []bool) int {
	return p.inf.policyDist(p.Actor, state, p.Cfg.NumActions, mask).Argmax()
}

// Value returns the critic's estimate V(state).
func (p *PPO) Value(state []float64) float64 {
	return p.Critic.Infer(p.inf.valueBuf(), p.inf.setState(state)).Data[0]
}

// Update runs the clipped PPO update (Eqs. 10–12) over the buffer on the
// batched pipeline: GAE into agent-owned scratch, then the fused-surrogate
// minibatch loop of ppoUpdate.
func (p *PPO) Update(buf *Buffer) UpdateStats {
	st := &p.upd
	st.adv, st.targets = buf.GAEInto(p.Cfg.Gamma, p.Cfg.Lambda, st.adv, st.targets)
	NormalizeInPlace(st.adv)
	return ppoUpdate(ppoUpdateSpec{
		cfg:      p.Cfg,
		rng:      p.rng,
		scratch:  st,
		buf:      buf,
		adv:      st.adv,
		targets:  st.targets,
		actor:    p.Actor,
		actorOpt: p.actorOpt,
		criticLoss: func(tape *autograd.Tape, states, targets, oldValues *autograd.Value) *autograd.Value {
			return valueLoss(p.Critic.Forward(tape, states), targets, oldValues, p.Cfg.ValueClip)
		},
		criticModules: []criticModule{
			{net: p.Critic, opt: p.criticOpt},
		},
		prox: &p.prox,
	})
}

// valueLoss builds the critic regression loss: plain MSE, or the PPO2
// clipped form max(MSE(v), MSE(vOld + clip(v−vOld, ±ε))) when clip > 0.
func valueLoss(pred, targets, oldValues *autograd.Value, clip float64) *autograd.Value {
	plain := autograd.Square(autograd.Sub(pred, targets))
	if clip <= 0 {
		return autograd.Mean(plain)
	}
	clipped := autograd.Add(oldValues, autograd.Clamp(autograd.Sub(pred, oldValues), -clip, clip))
	clippedSq := autograd.Square(autograd.Sub(clipped, targets))
	// Elementwise max(a,b) = −min(−a,−b).
	worst := autograd.Neg(autograd.Minimum(autograd.Neg(plain), autograd.Neg(clippedSq)))
	return autograd.Mean(worst)
}

// CriticMSE evaluates a critic's mean squared error against the discounted
// returns of the trajectories in buf — the loss probe used for the adaptive
// α (Eq. 15) and for Figure 9.
func CriticMSE(critic *nn.MLP, buf *Buffer, gamma float64) float64 {
	steps := buf.Steps()
	if len(steps) == 0 {
		return 0
	}
	returns := buf.Returns(gamma)
	states := tensor.Get(len(steps), len(steps[0].State))
	for i, s := range steps {
		copy(states.Row(i), s.State)
	}
	v := tensor.Get(len(steps), 1)
	critic.Infer(v, states)
	mse := 0.0
	for i := range returns {
		d := v.Data[i] - returns[i]
		mse += d * d
	}
	tensor.Put(states)
	tensor.Put(v)
	return mse / float64(len(returns))
}
