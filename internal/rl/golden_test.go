package rl

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/autograd"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// ppoUpdateReference is a frozen verbatim copy of the pre-pipeline ppoUpdate
// loop: one op per tape node (no fused surrogate), a single shared tape,
// pool-sourced staging per minibatch, strictly sequential actor-then-critic
// order. It exists only as the golden reference the batched pipeline must
// match bit for bit.
func ppoUpdateReference(s ppoUpdateSpec) UpdateStats {
	steps := s.buf.Steps()
	n := len(steps)
	if n == 0 {
		return UpdateStats{}
	}
	stateDim := s.cfg.StateDim
	var stats UpdateStats

	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	tape := autograd.NewPooledTape(tensor.DefaultPool())
	defer tape.Reset()
	actions := make([]int, s.cfg.MiniBatch)
	for epoch := 0; epoch < s.cfg.UpdateEpochs; epoch++ {
		s.rng.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		epochActor, epochCritic, epochEntropy := 0.0, 0.0, 0.0
		epochKL, epochClip := 0.0, 0.0
		batches := 0
		for lo := 0; lo < n; lo += s.cfg.MiniBatch {
			hi := lo + s.cfg.MiniBatch
			if hi > n {
				hi = n
			}
			bsz := hi - lo
			states := tensor.Get(bsz, stateDim)
			actions := actions[:bsz]
			oldLogp := tensor.Get(bsz, 1)
			advantage := tensor.Get(bsz, 1)
			target := tensor.Get(bsz, 1)
			oldValue := tensor.Get(bsz, 1)
			for bi := 0; bi < bsz; bi++ {
				t := idx[lo+bi]
				copy(states.Row(bi), steps[t].State)
				actions[bi] = steps[t].Action
				oldLogp.Data[bi] = steps[t].LogProb
				advantage.Data[bi] = s.adv[t]
				target.Data[bi] = s.targets[t]
				oldValue.Data[bi] = steps[t].Value
			}

			nn.ZeroGrads(s.actor)
			tape.Reset()
			sIn := tape.Const(states)
			logits := s.actor.Forward(tape, sIn)
			logp := autograd.LogSoftmaxRows(logits)
			actLogp := autograd.PickCols(logp, actions)
			ratio := autograd.Exp(autograd.Sub(actLogp, tape.Const(oldLogp)))
			advC := tape.Const(advantage)
			surr1 := autograd.Mul(ratio, advC)
			surr2 := autograd.Mul(autograd.Clamp(ratio, 1-s.cfg.Clip, 1+s.cfg.Clip), advC)
			objective := autograd.Mean(autograd.Minimum(surr1, surr2))
			probs := autograd.SoftmaxRows(logits)
			entropy := autograd.Neg(autograd.Mean(autograd.SumRows(autograd.Mul(probs, logp))))
			loss := autograd.Sub(autograd.Neg(objective), autograd.Scale(entropy, s.cfg.EntCoef))
			loss.Backward()
			if s.prox != nil {
				s.prox.Apply(s.actor)
			}
			nn.ClipGradNorm(s.actor, s.cfg.MaxGradNorm)
			s.actorOpt.Step()
			epochActor += -objective.Item()
			epochEntropy += entropy.Item()
			klBatch, clipped := 0.0, 0
			for bi := 0; bi < bsz; bi++ {
				klBatch += oldLogp.Data[bi] - actLogp.Data.Data[bi]
				if r := ratio.Data.Data[bi]; r < 1-s.cfg.Clip || r > 1+s.cfg.Clip {
					clipped++
				}
			}
			epochKL += klBatch / float64(bsz)
			epochClip += float64(clipped) / float64(bsz)

			for _, cm := range s.criticModules {
				nn.ZeroGrads(cm.net)
			}
			tape.Reset()
			closs := s.criticLoss(tape, tape.Const(states), tape.Const(target), tape.Const(oldValue))
			closs.Backward()
			for _, cm := range s.criticModules {
				if s.prox != nil {
					s.prox.Apply(cm.net)
				}
				nn.ClipGradNorm(cm.net, s.cfg.MaxGradNorm)
				cm.opt.Step()
			}
			epochCritic += closs.Item()
			tensor.Put(states)
			tensor.Put(oldLogp)
			tensor.Put(advantage)
			tensor.Put(target)
			tensor.Put(oldValue)
			batches++
		}
		if batches > 0 {
			stats = UpdateStats{
				ActorLoss:  epochActor / float64(batches),
				CriticLoss: epochCritic / float64(batches),
				Entropy:    epochEntropy / float64(batches),
				ApproxKL:   epochKL / float64(batches),
				ClipFrac:   epochClip / float64(batches),
			}
		}
		if s.cfg.TargetKL > 0 && batches > 0 && stats.ApproxKL > s.cfg.TargetKL {
			break
		}
	}
	return stats
}

// referencePPOUpdate mirrors PPO.Update on the frozen reference loop.
func referencePPOUpdate(p *PPO, buf *Buffer) UpdateStats {
	adv, targets := buf.GAE(p.Cfg.Gamma, p.Cfg.Lambda)
	NormalizeInPlace(adv)
	return ppoUpdateReference(ppoUpdateSpec{
		cfg:      p.Cfg,
		rng:      p.rng,
		buf:      buf,
		adv:      adv,
		targets:  targets,
		actor:    p.Actor,
		actorOpt: p.actorOpt,
		criticLoss: func(tape *autograd.Tape, states, targets, oldValues *autograd.Value) *autograd.Value {
			return valueLoss(p.Critic.Forward(tape, states), targets, oldValues, p.Cfg.ValueClip)
		},
		criticModules: []criticModule{{net: p.Critic, opt: p.criticOpt}},
		prox:          &p.prox,
	})
}

// referenceDualUpdate mirrors DualCriticPPO.Update (without the trailing
// RefreshAlpha, which both callers run identically outside the loop).
func referenceDualUpdate(d *DualCriticPPO, buf *Buffer) UpdateStats {
	adv, targets := buf.GAE(d.Cfg.Gamma, d.Cfg.Lambda)
	NormalizeInPlace(adv)
	return ppoUpdateReference(ppoUpdateSpec{
		cfg:      d.Cfg,
		rng:      d.rng,
		buf:      buf,
		adv:      adv,
		targets:  targets,
		actor:    d.Actor,
		actorOpt: d.actorOpt,
		criticLoss: func(tape *autograd.Tape, states, targets, oldValues *autograd.Value) *autograd.Value {
			vl := d.LocalCritic.Forward(tape, states)
			vp := d.PublicCritic.Forward(tape, states)
			lossL := valueLoss(vl, targets, oldValues, d.Cfg.ValueClip)
			lossP := valueLoss(vp, targets, oldValues, d.Cfg.ValueClip)
			return autograd.Add(lossL, lossP)
		},
		criticModules: []criticModule{
			{net: d.LocalCritic, opt: d.localOpt},
			{net: d.PublicCritic, opt: d.publicOpt},
		},
	})
}

func requireStatsEqual(t *testing.T, label string, want, got UpdateStats) {
	t.Helper()
	pairs := []struct {
		name string
		a, b float64
	}{
		{"ActorLoss", want.ActorLoss, got.ActorLoss},
		{"CriticLoss", want.CriticLoss, got.CriticLoss},
		{"Entropy", want.Entropy, got.Entropy},
		{"ApproxKL", want.ApproxKL, got.ApproxKL},
		{"ClipFrac", want.ClipFrac, got.ClipFrac},
	}
	for _, p := range pairs {
		if math.Float64bits(p.a) != math.Float64bits(p.b) {
			t.Fatalf("%s: %s differs: reference %v vs pipeline %v", label, p.name, p.a, p.b)
		}
	}
}

func requireParamsEqual(t *testing.T, label string, want, got nn.Module) {
	t.Helper()
	w, g := nn.FlattenParams(want), nn.FlattenParams(got)
	if len(w) != len(g) {
		t.Fatalf("%s: parameter count differs %d vs %d", label, len(w), len(g))
	}
	for i := range w {
		if math.Float64bits(w[i]) != math.Float64bits(g[i]) {
			t.Fatalf("%s: parameter %d differs: reference %v (%#x) vs pipeline %v (%#x)",
				label, i, w[i], math.Float64bits(w[i]), g[i], math.Float64bits(g[i]))
		}
	}
}

// collectBuffer fills buf with at least minSteps transitions using a
// dedicated collector agent, so the agents under test keep identical rng
// streams for their updates.
func collectBuffer(t *testing.T, stateDim, numActions, minSteps int, seed int64) *Buffer {
	t.Helper()
	env := NewSyntheticEnv(stateDim, numActions, 32, seed)
	collector := NewPPO(DefaultConfig(stateDim, numActions), rand.New(rand.NewSource(seed)))
	var buf Buffer
	for buf.Len() < minSteps {
		env.Reset()
		CollectEpisode(env, collector, &buf)
	}
	return &buf
}

// TestBatchedUpdateMatchesReference pins golden property (a): the batched
// pipeline (fused surrogate head, hoisted scratch, dual tapes) produces
// parameters and statistics bitwise identical to the frozen pre-change
// sequential update, across several rounds so Adam state and scratch reuse
// are exercised. Runs with concurrency forced off so the only variable is
// the pipeline restructure itself; TestConcurrentUpdateMatchesSequential
// covers the concurrent path.
func TestBatchedUpdateMatchesReference(t *testing.T) {
	prev := SetUpdateConcurrency(ConcurrencyOff)
	defer SetUpdateConcurrency(prev)

	const stateDim, numActions = 24, 5
	t.Run("ppo", func(t *testing.T) {
		ref := NewPPO(DefaultConfig(stateDim, numActions), rand.New(rand.NewSource(99)))
		pipe := NewPPO(DefaultConfig(stateDim, numActions), rand.New(rand.NewSource(99)))
		for round := 0; round < 3; round++ {
			buf := collectBuffer(t, stateDim, numActions, 150, int64(70+round))
			ws := referencePPOUpdate(ref, buf)
			gs := pipe.Update(buf)
			requireStatsEqual(t, "ppo stats", ws, gs)
			requireParamsEqual(t, "ppo actor", ref.Actor, pipe.Actor)
			requireParamsEqual(t, "ppo critic", ref.Critic, pipe.Critic)
		}
	})
	t.Run("dual-critic", func(t *testing.T) {
		ref := NewDualCriticPPO(DefaultConfig(stateDim, numActions), rand.New(rand.NewSource(101)))
		pipe := NewDualCriticPPO(DefaultConfig(stateDim, numActions), rand.New(rand.NewSource(101)))
		for round := 0; round < 2; round++ {
			buf := collectBuffer(t, stateDim, numActions, 150, int64(80+round))
			adv, targets := buf.GAE(pipe.Cfg.Gamma, pipe.Cfg.Lambda)
			NormalizeInPlace(adv)
			st := &pipe.upd
			ws := referenceDualUpdate(ref, buf)
			gs := ppoUpdate(ppoUpdateSpec{
				cfg:      pipe.Cfg,
				rng:      pipe.rng,
				scratch:  st,
				buf:      buf,
				adv:      adv,
				targets:  targets,
				actor:    pipe.Actor,
				actorOpt: pipe.actorOpt,
				criticLoss: func(tape *autograd.Tape, states, targets, oldValues *autograd.Value) *autograd.Value {
					vl := pipe.LocalCritic.Forward(tape, states)
					vp := pipe.PublicCritic.Forward(tape, states)
					return autograd.Add(
						valueLoss(vl, targets, oldValues, pipe.Cfg.ValueClip),
						valueLoss(vp, targets, oldValues, pipe.Cfg.ValueClip))
				},
				criticModules: []criticModule{
					{net: pipe.LocalCritic, opt: pipe.localOpt},
					{net: pipe.PublicCritic, opt: pipe.publicOpt},
				},
			})
			requireStatsEqual(t, "dual stats", ws, gs)
			requireParamsEqual(t, "dual actor", ref.Actor, pipe.Actor)
			requireParamsEqual(t, "dual local critic", ref.LocalCritic, pipe.LocalCritic)
			requireParamsEqual(t, "dual public critic", ref.PublicCritic, pipe.PublicCritic)
		}
	})
	t.Run("value-clip-and-target-kl", func(t *testing.T) {
		cfg := DefaultConfig(stateDim, numActions)
		cfg.ValueClip = 0.3
		cfg.TargetKL = 0.02
		ref := NewPPO(cfg, rand.New(rand.NewSource(103)))
		pipe := NewPPO(cfg, rand.New(rand.NewSource(103)))
		buf := collectBuffer(t, stateDim, numActions, 150, 90)
		ws := referencePPOUpdate(ref, buf)
		gs := pipe.Update(buf)
		requireStatsEqual(t, "clip/kl stats", ws, gs)
		requireParamsEqual(t, "clip/kl actor", ref.Actor, pipe.Actor)
		requireParamsEqual(t, "clip/kl critic", ref.Critic, pipe.Critic)
	})
}

// TestConcurrentUpdateMatchesSequential pins golden property (c): running
// the actor and critic steps concurrently (separate tapes, disjoint
// parameters) is bitwise identical to the sequential order, regardless of
// GOMAXPROCS. Exercised under -race by make test-race.
func TestConcurrentUpdateMatchesSequential(t *testing.T) {
	const stateDim, numActions = 24, 5
	seq := NewPPO(DefaultConfig(stateDim, numActions), rand.New(rand.NewSource(55)))
	con := NewPPO(DefaultConfig(stateDim, numActions), rand.New(rand.NewSource(55)))
	prev := SetUpdateConcurrency(ConcurrencyOff)
	defer SetUpdateConcurrency(prev)
	for round := 0; round < 3; round++ {
		buf := collectBuffer(t, stateDim, numActions, 150, int64(60+round))
		SetUpdateConcurrency(ConcurrencyOff)
		ws := seq.Update(buf)
		SetUpdateConcurrency(ConcurrencyOn)
		gs := con.Update(buf)
		requireStatsEqual(t, "concurrency stats", ws, gs)
		requireParamsEqual(t, "concurrency actor", seq.Actor, con.Actor)
		requireParamsEqual(t, "concurrency critic", seq.Critic, con.Critic)
	}
}

// TestPPOUpdateSteadyStateAllocs pins the hoisted-staging claim: after
// warmup, a full PPO update allocates at most a handful of objects (the
// critic closure and module slice built per call) — no per-minibatch or
// per-epoch allocations survive.
func TestPPOUpdateSteadyStateAllocs(t *testing.T) {
	prevProcs := runtime.GOMAXPROCS(1) // deterministic pool reuse
	defer runtime.GOMAXPROCS(prevProcs)
	prev := SetUpdateConcurrency(ConcurrencyOff)
	defer SetUpdateConcurrency(prev)

	env := NewSyntheticEnv(benchStateDim, benchActions, benchHorizon, 3)
	agent := benchAgent(4)
	var buf Buffer
	benchBuffer(env, agent, &buf, 256)
	for i := 0; i < 2; i++ { // warm tapes, pool, and staging
		agent.Update(&buf)
	}
	allocs := testing.AllocsPerRun(5, func() {
		agent.Update(&buf)
	})
	if allocs > 16 {
		t.Fatalf("PPO update allocates %.1f objects/op, want <= 16", allocs)
	}
}
