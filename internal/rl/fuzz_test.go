package rl

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzLoadCheckpoint feeds arbitrary bytes to the agent deserializer.
// Malformed input must produce an error — never a panic, and never the
// construction of an architecture the checkpoint merely claims to carry.
func FuzzLoadCheckpoint(f *testing.F) {
	cfg := Config{StateDim: 4, NumActions: 3, Hidden: []int{8}}
	for i, agent := range []Agent{
		NewPPO(cfg, rand.New(rand.NewSource(1))),
		NewDualCriticPPO(cfg, rand.New(rand.NewSource(2))),
	} {
		var buf bytes.Buffer
		if err := SaveAgent(&buf, agent); err != nil {
			f.Fatalf("seed %d: %v", i, err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte(`{"format":"pfrl-dm/agent/v1","kind":"ppo","config":{"StateDim":-5,"NumActions":2}}`))
	f.Add([]byte(`{"format":"pfrl-dm/agent/v1","kind":"ppo","config":{"StateDim":70000,"NumActions":70000}}`))
	f.Add([]byte(`{"format":"pfrl-dm/agent/v1","kind":"dual-critic","config":{"StateDim":2,"NumActions":2},"actor":[1]}`))
	f.Add([]byte(`{"format":"nope"}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		agent, err := LoadAgent(bytes.NewReader(data), rand.New(rand.NewSource(9)))
		if err != nil {
			return
		}
		// An accepted agent must be re-serializable.
		var out bytes.Buffer
		if err := SaveAgent(&out, agent); err != nil {
			t.Fatalf("accepted checkpoint failed to re-save: %v", err)
		}
		if _, err := LoadAgent(&out, rand.New(rand.NewSource(9))); err != nil {
			t.Fatalf("re-saved checkpoint failed to re-load: %v", err)
		}
	})
}
