package rl

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/nn"
)

func paramDistance(m nn.Module, ref []float64) float64 {
	flat := nn.FlattenParams(m)
	d := 0.0
	for i := range flat {
		d += (flat[i] - ref[i]) * (flat[i] - ref[i])
	}
	return math.Sqrt(d)
}

func TestProximalApplyAddsGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := nn.NewMLP(rng, "m", []int{2, 2}, nn.ActNone, 1.0)
	var px Proximal
	px.Mu = 0.5
	px.SetRef(m)
	// Move a parameter away from the reference; the prox gradient must
	// point back toward it with slope μ.
	p := m.Params()[0]
	p.Data.Data[0] += 2
	nn.ZeroGrads(m)
	px.Apply(m)
	if math.Abs(p.Grad.Data[0]-0.5*2) > 1e-12 {
		t.Fatalf("prox gradient %v, want 1", p.Grad.Data[0])
	}
	// Mu = 0 disables.
	nn.ZeroGrads(m)
	px.Mu = 0
	px.Apply(m)
	if p.Grad.Data[0] != 0 {
		t.Fatal("mu=0 should be a no-op")
	}
	// Unknown module untouched.
	other := nn.NewMLP(rng, "o", []int{2, 2}, nn.ActNone, 1.0)
	px.Mu = 0.5
	nn.ZeroGrads(other)
	px.Apply(other)
	for _, pp := range other.Params() {
		if pp.Grad.Norm2() != 0 {
			t.Fatal("module without reference should be untouched")
		}
	}
}

func TestProximalDampsDrift(t *testing.T) {
	// Two identical agents train on the same trajectories; the FedProx one
	// must stay closer to its initial (reference) parameters.
	build := func(seed int64) (*PPO, *Buffer) {
		rng := rand.New(rand.NewSource(seed))
		a := NewPPO(DefaultConfig(6, 3), rng)
		var buf Buffer
		dataRng := rand.New(rand.NewSource(99))
		for i := 0; i < 64; i++ {
			s := make([]float64, 6)
			for j := range s {
				s[j] = dataRng.NormFloat64()
			}
			buf.Add(Transition{State: s, Action: dataRng.Intn(3),
				Reward: dataRng.NormFloat64(), LogProb: -1.1, Done: i == 63})
		}
		return a, &buf
	}
	free, buf := build(5)
	anchored, _ := build(5)
	refFree := nn.FlattenParams(free.Actor)
	refAnchored := nn.FlattenParams(anchored.Actor)
	anchored.EnableProximal(10)
	for i := 0; i < 10; i++ {
		free.Update(buf)
		anchored.Update(buf)
	}
	dFree := paramDistance(free.Actor, refFree)
	dAnchored := paramDistance(anchored.Actor, refAnchored)
	if dAnchored >= dFree {
		t.Fatalf("proximal should damp drift: anchored %v vs free %v", dAnchored, dFree)
	}
}
