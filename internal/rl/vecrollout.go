package rl

import (
	"fmt"
	"math/rand"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// VecPolicy is the batched, read-only slice of an agent the vectorized
// collector needs: one actor forward and one value estimate over a whole
// batch of states at once. Both PPO and DualCriticPPO implement it on the
// gradient-free inference path, and because every tensor kernel in this repo
// is row-independent, row i of a batched pass is bitwise identical to running
// the same state through the single-row path — which is what makes
// VecCollector's output indistinguishable from sequential collection.
type VecPolicy interface {
	// VecLogits writes the actor logits for every row of states into dst
	// (states.Rows x NumActions).
	VecLogits(dst, states *tensor.Matrix)
	// VecValues writes the value estimate for every row of states into dst
	// (states.Rows x 1) — the critic output, blended for dual-critic agents.
	VecValues(dst, states *tensor.Matrix)
}

// VecLogits implements VecPolicy.
func (p *PPO) VecLogits(dst, states *tensor.Matrix) { p.Actor.Infer(dst, states) }

// VecValues implements VecPolicy.
func (p *PPO) VecValues(dst, states *tensor.Matrix) { p.Critic.Infer(dst, states) }

// VecLogits implements VecPolicy.
func (d *DualCriticPPO) VecLogits(dst, states *tensor.Matrix) { d.Actor.Infer(dst, states) }

// VecValues implements VecPolicy: the Eq. (14) blend α·V_φ + (1−α)·V_ψ,
// row-wise, with exactly the float op order of DualCriticPPO.Value.
func (d *DualCriticPPO) VecValues(dst, states *tensor.Matrix) {
	pool := tensor.DefaultPool()
	tmp := pool.GetUninit(states.Rows, 1) // fully overwritten by Infer
	d.LocalCritic.Infer(dst, states)
	d.PublicCritic.Infer(tmp, states)
	for i := range dst.Data {
		dst.Data[i] = d.Alpha*dst.Data[i] + (1-d.Alpha)*tmp.Data[i]
	}
	pool.Put(tmp)
}

// VecCollector steps N environments in lockstep under one shared policy,
// replacing N single-row actor/critic inferences per step with one batched
// pass each. Environments finish at different times; finished slots drop out
// of the staging batch (rows are compacted in slot order), so the batch
// shrinks as episodes complete.
//
// Each slot owns its RNG and its buffer, and actions for slot i are sampled
// from logits row i in ascending slot order, so the per-slot action, reward,
// and transition streams are bitwise identical to running CollectEpisode
// independently per slot with an agent seeded from that slot's RNG (pinned by
// TestVecCollectorMatchesSequential). A VecCollector is single-goroutine,
// like the agents it wraps.
type VecCollector struct {
	policy     VecPolicy
	envs       []Environment
	rngs       []*rand.Rand
	stateDim   int
	numActions int

	dist      nn.Categorical
	stateBufs [][]float64 // per-slot Observe scratch
	active    []int       // slots still running, ascending
}

// NewVecCollector builds a collector over envs, one RNG per slot. All
// environments must agree on StateDim and NumActions (they share one policy).
func NewVecCollector(policy VecPolicy, envs []Environment, rngs []*rand.Rand) *VecCollector {
	if len(envs) == 0 {
		panic("rl: NewVecCollector needs at least one environment")
	}
	if len(rngs) != len(envs) {
		panic(fmt.Sprintf("rl: NewVecCollector got %d rngs for %d environments", len(rngs), len(envs)))
	}
	sd, na := envs[0].StateDim(), envs[0].NumActions()
	for _, e := range envs[1:] {
		if e.StateDim() != sd || e.NumActions() != na {
			panic("rl: NewVecCollector environments disagree on state/action dimensions")
		}
	}
	return &VecCollector{
		policy:     policy,
		envs:       envs,
		rngs:       rngs,
		stateDim:   sd,
		numActions: na,
		stateBufs:  make([][]float64, len(envs)),
		active:     make([]int, 0, len(envs)),
	}
}

// N returns the number of environment slots.
func (c *VecCollector) N() int { return len(c.envs) }

// Collect runs every environment's current episode to completion, appending
// slot i's transitions to bufs[i], and writes each slot's total reward into
// totals (reallocating when too small). The caller resets the environments
// beforehand, exactly as with CollectEpisode; horizon cuts bootstrap through
// the policy's value estimate the same way (see Truncator).
func (c *VecCollector) Collect(bufs []*Buffer, totals []float64) []float64 {
	n := len(c.envs)
	if len(bufs) != n {
		panic(fmt.Sprintf("rl: VecCollector.Collect got %d buffers for %d environments", len(bufs), n))
	}
	totals = growFloats(totals, n)
	for i := range totals {
		totals[i] = 0
	}

	// Staging matrices hold one row per still-active slot; every row is
	// rewritten before each batched pass, so uninitialized pool buffers are
	// safe. The active set only shrinks, so the row views only shrink too.
	pool := tensor.DefaultPool()
	states := pool.GetUninit(n, c.stateDim)
	logits := pool.GetUninit(n, c.numActions)
	values := pool.GetUninit(n, 1)

	active := c.active[:0]
	for slot, env := range c.envs {
		if !env.Done() {
			c.stateBufs[slot] = env.Observe(c.stateBufs[slot])
			active = append(active, slot)
		}
	}

	steps := uint64(0)
	for len(active) > 0 {
		m := len(active)
		sv := viewRows(states, m)
		lv := viewRows(logits, m)
		vv := viewRows(values, m)
		for i, slot := range active {
			copy(sv.Row(i), c.stateBufs[slot])
		}
		c.policy.VecLogits(lv, sv)
		c.policy.VecValues(vv, sv)

		next := active[:0]
		for i, slot := range active {
			env := c.envs[slot]
			c.dist.SetLogits(lv.Row(i), nil)
			action := c.dist.Sample(c.rngs[slot])
			logp := c.dist.LogProb(action)
			value := vv.Data[i]
			reward := env.Step(action)
			totals[slot] += reward
			steps++
			done := env.Done()
			tr := Transition{
				State:   append([]float64(nil), c.stateBufs[slot]...),
				Action:  action,
				Reward:  reward,
				LogProb: logp,
				Value:   value,
				Done:    done,
			}
			if !done {
				c.stateBufs[slot] = env.Observe(c.stateBufs[slot])
				next = append(next, slot)
			} else if t, ok := env.(Truncator); ok && t.Truncated() {
				// tr.State is already a private copy, so reusing the slot's
				// scratch for the post-cut observation is safe.
				c.stateBufs[slot] = env.Observe(c.stateBufs[slot])
				tr.Truncated = true
				tr.Bootstrap = c.bootstrapValue(c.stateBufs[slot])
				mTruncations.Inc()
			}
			bufs[slot].Add(tr)
		}
		active = next
	}
	mEnvSteps.Add(steps)

	pool.Put(states)
	pool.Put(logits)
	pool.Put(values)
	return totals
}

// bootstrapValue evaluates V(state) for a single post-truncation state — the
// same single-row inference Agent.Value runs, so the bootstrap matches
// sequential collection bitwise.
func (c *VecCollector) bootstrapValue(state []float64) float64 {
	pool := tensor.DefaultPool()
	s := pool.GetUninit(1, c.stateDim)
	copy(s.Data, state)
	v := pool.GetUninit(1, 1)
	c.policy.VecValues(v, s)
	out := v.Data[0]
	pool.Put(s)
	pool.Put(v)
	return out
}
