// Package rl implements the reinforcement-learning agents of the paper:
// clipped-surrogate PPO (Schulman et al. 2017, Eqs. 10–12 of the paper) and
// the dual-critic PPO that is the client-side half of PFRL-DM (§4.3): a
// local critic φ and a public critic ψ whose value estimates are blended
// with an adaptive weight α derived from their respective losses (Eqs.
// 14–15), both regressed toward the observed returns (Eqs. 16–17).
package rl

import "math"

// Transition is one step of experience.
type Transition struct {
	State   []float64
	Action  int
	Reward  float64
	LogProb float64 // log π_old(a|s) at collection time
	Value   float64 // V(s) estimate at collection time (blended for dual-critic)
	Done    bool    // episode terminated after this transition
}

// Buffer accumulates an on-policy trajectory batch.
type Buffer struct {
	steps []Transition
}

// Add appends one transition.
func (b *Buffer) Add(t Transition) { b.steps = append(b.steps, t) }

// Len returns the number of stored transitions.
func (b *Buffer) Len() int { return len(b.steps) }

// Reset clears the buffer, retaining capacity.
func (b *Buffer) Reset() { b.steps = b.steps[:0] }

// Steps exposes the stored transitions (read-only use expected).
func (b *Buffer) Steps() []Transition { return b.steps }

// Returns computes the discounted return-to-go G_t for every step, resetting
// at episode boundaries (Done flags).
func (b *Buffer) Returns(gamma float64) []float64 {
	n := len(b.steps)
	g := make([]float64, n)
	acc := 0.0
	for i := n - 1; i >= 0; i-- {
		if b.steps[i].Done {
			acc = 0
		}
		acc = b.steps[i].Reward + gamma*acc
		g[i] = acc
	}
	return g
}

// GAE computes Generalized Advantage Estimation with the stored value
// estimates, resetting at episode boundaries. It returns (advantages,
// valueTargets) where valueTargets[i] = advantages[i] + Value[i] (the
// λ-return critic target). Terminal states bootstrap with value 0.
func (b *Buffer) GAE(gamma, lambda float64) (adv, targets []float64) {
	n := len(b.steps)
	adv = make([]float64, n)
	targets = make([]float64, n)
	gae := 0.0
	for i := n - 1; i >= 0; i-- {
		s := b.steps[i]
		nextValue := 0.0
		if !s.Done && i+1 < n {
			nextValue = b.steps[i+1].Value
		}
		if s.Done {
			gae = 0
		}
		delta := s.Reward + gamma*nextValue - s.Value
		gae = delta + gamma*lambda*gae
		adv[i] = gae
		targets[i] = gae + s.Value
	}
	return adv, targets
}

// NormalizeInPlace standardizes v to zero mean and unit variance (no-op for
// fewer than two elements or zero variance). PPO normalizes advantages per
// batch for stable updates.
func NormalizeInPlace(v []float64) {
	if len(v) < 2 {
		return
	}
	mean := 0.0
	for _, x := range v {
		mean += x
	}
	mean /= float64(len(v))
	variance := 0.0
	for _, x := range v {
		variance += (x - mean) * (x - mean)
	}
	variance /= float64(len(v))
	if variance < 1e-12 {
		return
	}
	inv := 1.0 / (math.Sqrt(variance) + 1e-8)
	for i := range v {
		v[i] = (v[i] - mean) * inv
	}
}
