// Package rl implements the reinforcement-learning agents of the paper:
// clipped-surrogate PPO (Schulman et al. 2017, Eqs. 10–12 of the paper) and
// the dual-critic PPO that is the client-side half of PFRL-DM (§4.3): a
// local critic φ and a public critic ψ whose value estimates are blended
// with an adaptive weight α derived from their respective losses (Eqs.
// 14–15), both regressed toward the observed returns (Eqs. 16–17).
package rl

import "math"

// Transition is one step of experience.
type Transition struct {
	State   []float64
	Action  int
	Reward  float64
	LogProb float64 // log π_old(a|s) at collection time
	Value   float64 // V(s) estimate at collection time (blended for dual-critic)
	Done    bool    // episode ended after this transition (terminal or truncated)

	// Truncated marks a Done transition whose episode was cut by a horizon
	// or step cap rather than reaching a true terminal state. The MDP would
	// have continued, so advantage and return estimation bootstrap the tail
	// with Bootstrap instead of zero — a zero bootstrap at a cut treats the
	// remaining return as worthless and biases every advantage upstream of
	// the boundary.
	Truncated bool
	// Bootstrap is the critic's estimate V(s_{t+1}) of the state after a
	// truncated transition (recorded by the collector); ignored unless
	// Truncated is set.
	Bootstrap float64
}

// Buffer accumulates an on-policy trajectory batch.
type Buffer struct {
	steps []Transition
	// tailValue bootstraps a batch whose final transition is not Done — a
	// mid-episode batch cut without an environment signal (see SetTailValue).
	tailValue float64
}

// Add appends one transition.
func (b *Buffer) Add(t Transition) { b.steps = append(b.steps, t) }

// Len returns the number of stored transitions.
func (b *Buffer) Len() int { return len(b.steps) }

// Reset clears the buffer, retaining capacity.
func (b *Buffer) Reset() {
	b.steps = b.steps[:0]
	b.tailValue = 0
}

// Steps exposes the stored transitions (read-only use expected).
func (b *Buffer) Steps() []Transition { return b.steps }

// SetTailValue supplies V(s_T), the critic's estimate of the state after
// the final stored transition, for a batch cut mid-episode: agents pass it
// when the last transition is not Done so GAE and Returns can bootstrap
// the open tail instead of assuming a zero continuation. It is ignored
// when the buffer ends on an episode boundary (Done), where the
// per-transition Truncated/Bootstrap fields govern. Reset clears it.
func (b *Buffer) SetTailValue(v float64) { b.tailValue = v }

// TailValue returns the bootstrap value installed by SetTailValue.
func (b *Buffer) TailValue() float64 { return b.tailValue }

// Returns computes the discounted return-to-go G_t for every step,
// resetting at episode boundaries (Done flags). Truncated boundaries and an
// open (non-Done) tail bootstrap with the recorded critic estimates; only
// true terminals contribute a zero continuation.
func (b *Buffer) Returns(gamma float64) []float64 {
	n := len(b.steps)
	g := make([]float64, n)
	acc := 0.0
	if n > 0 && !b.steps[n-1].Done {
		acc = b.tailValue
	}
	for i := n - 1; i >= 0; i-- {
		s := b.steps[i]
		if s.Done {
			if s.Truncated {
				acc = s.Bootstrap
			} else {
				acc = 0
			}
		}
		acc = s.Reward + gamma*acc
		g[i] = acc
	}
	return g
}

// GAE computes Generalized Advantage Estimation with the stored value
// estimates, resetting at episode boundaries. It returns (advantages,
// valueTargets) where valueTargets[i] = advantages[i] + Value[i] (the
// λ-return critic target).
//
// The successor value V(s_{t+1}) in δ_t = r_t + γ·V(s_{t+1}) − V(s_t) is:
// zero at a true terminal, the recorded Bootstrap at a truncated episode
// cut, the tail value installed by SetTailValue at an open (non-Done) batch
// tail, and the next stored transition's Value otherwise. The GAE
// accumulator still resets at every Done boundary — truncation ends the
// trajectory for estimation purposes; it just doesn't zero the tail.
func (b *Buffer) GAE(gamma, lambda float64) (adv, targets []float64) {
	return b.GAEInto(gamma, lambda, nil, nil)
}

// GAEInto is GAE writing into caller-provided slices, which are grown as
// needed and returned resliced to the buffer length — the allocation-free
// variant the update pipeline calls with agent-owned scratch. Passing nil
// slices makes it equivalent to GAE.
func (b *Buffer) GAEInto(gamma, lambda float64, advIn, targetsIn []float64) (adv, targets []float64) {
	n := len(b.steps)
	adv = growFloats(advIn, n)
	targets = growFloats(targetsIn, n)
	gae := 0.0
	for i := n - 1; i >= 0; i-- {
		s := b.steps[i]
		var nextValue float64
		switch {
		case s.Truncated:
			nextValue = s.Bootstrap
		case s.Done:
			nextValue = 0
		case i+1 < n:
			nextValue = b.steps[i+1].Value
		default:
			nextValue = b.tailValue
		}
		if s.Done {
			gae = 0
		}
		delta := s.Reward + gamma*nextValue - s.Value
		gae = delta + gamma*lambda*gae
		adv[i] = gae
		targets[i] = gae + s.Value
	}
	return adv, targets
}

// growFloats reslices s to length n, reallocating only when capacity is
// short. Contents are fully overwritten by the callers.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// NormalizeInPlace standardizes v to zero mean and unit variance (no-op for
// fewer than two elements). PPO normalizes advantages per batch for stable
// updates. A near-zero-variance batch is still centered — a constant
// advantage carries no preference between actions, so it must map to zeros,
// not pass through as a large uniform offset — and only the scale step is
// skipped.
func NormalizeInPlace(v []float64) {
	if len(v) < 2 {
		return
	}
	mean := 0.0
	for _, x := range v {
		mean += x
	}
	mean /= float64(len(v))
	variance := 0.0
	for _, x := range v {
		variance += (x - mean) * (x - mean)
	}
	variance /= float64(len(v))
	for i := range v {
		v[i] -= mean
	}
	if variance < 1e-12 {
		return
	}
	inv := 1.0 / (math.Sqrt(variance) + 1e-8)
	for i := range v {
		v[i] *= inv
	}
}
