package rl

import (
	"math"
	"math/rand"

	"repro/internal/autograd"
	"repro/internal/nn"
)

// DualCriticPPO is the client-side algorithm of PFRL-DM (§4.3). It keeps
// two critics:
//
//   - LocalCritic (φ): never leaves the client; preserves local experience.
//   - PublicCritic (ψ): periodically replaced by the server's personalized
//     aggregate; the only network that travels.
//
// State values blend the two: V(s) = α·V_φ(s) + (1−α)·V_ψ(s) (Eq. 14), with
// α adapted from the critics' losses on the current trajectory buffer via a
// two-way softmax (Eq. 15) so whichever critic currently evaluates the
// client's environment better dominates. Both critics are regressed toward
// the observed returns on every update (Eqs. 16–17).
type DualCriticPPO struct {
	Cfg          Config
	Actor        *nn.MLP
	LocalCritic  *nn.MLP
	PublicCritic *nn.MLP

	// Alpha is the current local-critic weight α ∈ [0,1].
	Alpha float64

	// FixedAlpha, when in [0,1], pins α to a constant instead of the
	// adaptive Eq. (15) rule (the fixed-α ablation). Negative values
	// (the default) keep α adaptive.
	FixedAlpha float64

	actorOpt  *nn.Adam
	localOpt  *nn.Adam
	publicOpt *nn.Adam
	rng       *rand.Rand
	inf       inferScratch
	upd       updateScratch // batched update pipeline staging (see update.go)

	// Loss probes recorded by the most recent RefreshAlpha call.
	LastLocalLoss  float64
	LastPublicLoss float64
}

// NewDualCriticPPO builds a PFRL-DM client agent. Both critics start from
// independent random initializations; α starts at 0.5.
func NewDualCriticPPO(cfg Config, rng *rand.Rand) *DualCriticPPO {
	cfg = cfg.withDefaults()
	d := &DualCriticPPO{
		Cfg:          cfg,
		Actor:        nn.NewMLP(rng, "actor", cfg.actorSizes(), nn.ActTanh, 0.01),
		LocalCritic:  nn.NewMLP(rng, "critic.local", cfg.criticSizes(), nn.ActTanh, 1.0),
		PublicCritic: nn.NewMLP(rng, "critic.public", cfg.criticSizes(), nn.ActTanh, 1.0),
		Alpha:        0.5,
		FixedAlpha:   -1,
		rng:          rng,
	}
	d.actorOpt = nn.NewAdam(d.Actor, cfg.ActorLR)
	d.localOpt = nn.NewAdam(d.LocalCritic, cfg.CriticLR)
	d.publicOpt = nn.NewAdam(d.PublicCritic, cfg.CriticLR)
	return d
}

// SelectAction samples an action and returns it with its log-probability.
// Like PPO.SelectAction it runs on the zero-allocation inference fast path.
func (d *DualCriticPPO) SelectAction(state []float64) (action int, logProb float64) {
	dist := d.inf.policyDist(d.Actor, state, d.Cfg.NumActions, nil)
	a := dist.Sample(d.rng)
	return a, dist.LogProb(a)
}

// GreedyAction returns argmax_a π(a|state).
func (d *DualCriticPPO) GreedyAction(state []float64) int {
	return d.inf.policyDist(d.Actor, state, d.Cfg.NumActions, nil).Argmax()
}

// GreedyMaskedAction returns the most probable action among those allowed
// by mask (see PPO.GreedyMaskedAction).
func (d *DualCriticPPO) GreedyMaskedAction(state []float64, mask []bool) int {
	return d.inf.policyDist(d.Actor, state, d.Cfg.NumActions, mask).Argmax()
}

// Value returns the blended estimate of Eq. (14).
func (d *DualCriticPPO) Value(state []float64) float64 {
	x := d.inf.setState(state)
	vl := d.LocalCritic.Infer(d.inf.valueBuf(), x).Data[0]
	vp := d.PublicCritic.Infer(d.inf.value2Buf(), x).Data[0]
	return d.Alpha*vl + (1-d.Alpha)*vp
}

// RefreshAlpha recomputes α from the two critics' losses on buf (Eq. 15):
//
//	α = e^{−L_φ} / (e^{−L_φ} + e^{−L_ψ})
//
// The paper calls for this "each time the model parameters change": after
// every local update and after receiving a global model. An empty buffer
// leaves α unchanged.
func (d *DualCriticPPO) RefreshAlpha(buf *Buffer) {
	if buf.Len() == 0 {
		return
	}
	lPhi := CriticMSE(d.LocalCritic, buf, d.Cfg.Gamma)
	lPsi := CriticMSE(d.PublicCritic, buf, d.Cfg.Gamma)
	d.LastLocalLoss, d.LastPublicLoss = lPhi, lPsi
	if d.FixedAlpha >= 0 && d.FixedAlpha <= 1 {
		d.Alpha = d.FixedAlpha
		return
	}
	// Eq. (15) applied to relative losses: raw value-MSE magnitudes depend
	// on the return scale (hundreds in this environment), which would
	// saturate the softmax into a hard 0/1 switch. Dividing both losses by
	// their mean makes α scale-invariant while preserving the formula —
	// equal losses still give α = 0.5 and the better critic still
	// dominates smoothly.
	scale := (lPhi + lPsi) / 2
	if scale < 1e-12 {
		d.Alpha = 0.5
		return
	}
	ePhi := math.Exp(-lPhi / scale)
	ePsi := math.Exp(-lPsi / scale)
	d.Alpha = ePhi / (ePhi + ePsi)
}

// Update runs the dual-critic PPO update: the actor uses advantages from
// the blended value estimates (recorded in buf at collection time), and the
// two critics are updated synchronously but independently, each regressed
// toward the return targets at full strength (Eqs. 16–17 — NOT through the
// blended prediction, which would starve whichever critic currently has
// low α weight and degrade the uploads other clients aggregate).
// Afterwards α is refreshed on the same buffer.
func (d *DualCriticPPO) Update(buf *Buffer) UpdateStats {
	st := &d.upd
	st.adv, st.targets = buf.GAEInto(d.Cfg.Gamma, d.Cfg.Lambda, st.adv, st.targets)
	NormalizeInPlace(st.adv)
	stats := ppoUpdate(ppoUpdateSpec{
		cfg:      d.Cfg,
		rng:      d.rng,
		scratch:  st,
		buf:      buf,
		adv:      st.adv,
		targets:  st.targets,
		actor:    d.Actor,
		actorOpt: d.actorOpt,
		criticLoss: func(tape *autograd.Tape, states, targets, oldValues *autograd.Value) *autograd.Value {
			vl := d.LocalCritic.Forward(tape, states)
			vp := d.PublicCritic.Forward(tape, states)
			lossL := valueLoss(vl, targets, oldValues, d.Cfg.ValueClip)
			lossP := valueLoss(vp, targets, oldValues, d.Cfg.ValueClip)
			return autograd.Add(lossL, lossP)
		},
		criticModules: []criticModule{
			{net: d.LocalCritic, opt: d.localOpt},
			{net: d.PublicCritic, opt: d.publicOpt},
		},
	})
	d.RefreshAlpha(buf)
	return stats
}

// PublicCriticParams serializes ψ for transmission to the server. Only the
// public critic travels (§5.2's communication-cost claim).
func (d *DualCriticPPO) PublicCriticParams() []float64 {
	return nn.FlattenParams(d.PublicCritic)
}

// LoadPublicCritic installs a (personalized) public critic received from
// the server, resets ψ's optimizer moments (its parameters jumped), and
// refreshes α against buf when provided.
func (d *DualCriticPPO) LoadPublicCritic(flat []float64, buf *Buffer) error {
	if err := nn.LoadFlatParams(d.PublicCritic, flat); err != nil {
		return err
	}
	d.publicOpt.Reset()
	if buf != nil {
		d.RefreshAlpha(buf)
	}
	return nil
}
