package rl

import (
	"math/rand"
	"testing"

	"repro/internal/autograd"
	"repro/internal/tensor"
)

func TestValueLossPlainMatchesMSE(t *testing.T) {
	tape := autograd.NewTape()
	pred := tape.Const(tensor.ColVector([]float64{1, 2, 3}))
	target := tape.Const(tensor.ColVector([]float64{2, 2, 5}))
	old := tape.Const(tensor.ColVector([]float64{0, 0, 0}))
	got := valueLoss(pred, target, old, 0).Item()
	want := (1.0 + 0 + 4) / 3
	if got != want {
		t.Fatalf("plain value loss %v, want %v", got, want)
	}
}

func TestValueLossClippedIsPessimistic(t *testing.T) {
	// pred moved far from old value; with a small clip the clipped branch
	// must dominate (higher loss).
	tape := autograd.NewTape()
	pred := tape.Const(tensor.ColVector([]float64{5}))
	target := tape.Const(tensor.ColVector([]float64{5}))
	old := tape.Const(tensor.ColVector([]float64{0}))
	plain := valueLoss(pred, target, old, 0).Item() // exact fit: 0
	clipped := valueLoss(pred, target, old, 0.5).Item()
	if plain != 0 {
		t.Fatalf("plain loss %v", plain)
	}
	// Clipped prediction is 0.5, so loss is (0.5-5)^2 = 20.25.
	if clipped != 20.25 {
		t.Fatalf("clipped loss %v, want 20.25", clipped)
	}
}

func TestValueLossGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	predM := tensor.RandNormal(rng, 4, 1, 0, 1)
	targetM := tensor.RandNormal(rng, 4, 1, 0, 1)
	oldM := tensor.RandNormal(rng, 4, 1, 0, 1)
	build := func(tp *autograd.Tape, x *autograd.Value) *autograd.Value {
		return valueLoss(x, tp.Const(targetM), tp.Const(oldM), 0.3)
	}
	tape := autograd.NewTape()
	x := tape.Var(predM)
	build(tape, x).Backward()
	analytic := x.Grad.Clone()
	numeric := autograd.NumericGrad(predM, 1e-6, func() float64 {
		tp := autograd.NewTape()
		return build(tp, tp.Const(predM)).Item()
	})
	if err := autograd.MaxGradError(analytic, numeric); err > 1e-5 {
		t.Fatalf("clipped value loss gradient error %v", err)
	}
}

func TestTargetKLStopsEpochsEarly(t *testing.T) {
	// With a huge LR the policy moves a lot per epoch; a tiny TargetKL must
	// keep the recorded ApproxKL near the trigger point instead of letting
	// 8 epochs pile up drift.
	mkBuf := func() *Buffer {
		var buf Buffer
		rng := rand.New(rand.NewSource(2))
		for i := 0; i < 64; i++ {
			s := make([]float64, 4)
			for j := range s {
				s[j] = rng.NormFloat64()
			}
			buf.Add(Transition{State: s, Action: rng.Intn(3),
				Reward: rng.NormFloat64(), LogProb: -1.1, Done: i == 63})
		}
		return &buf
	}
	run := func(targetKL float64) float64 {
		cfg := DefaultConfig(4, 3)
		cfg.ActorLR = 5e-2
		cfg.UpdateEpochs = 8
		cfg.TargetKL = targetKL
		agent := NewPPO(cfg, rand.New(rand.NewSource(3)))
		stats := agent.Update(mkBuf())
		return stats.ApproxKL
	}
	free := run(0)
	capped := run(1e-4)
	if capped >= free {
		t.Fatalf("TargetKL did not stop early: capped %v vs free %v", capped, free)
	}
}

func TestApproxKLReported(t *testing.T) {
	agent := NewPPO(DefaultConfig(4, 3), rand.New(rand.NewSource(4)))
	var buf Buffer
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 32; i++ {
		s := make([]float64, 4)
		for j := range s {
			s[j] = rng.NormFloat64()
		}
		buf.Add(Transition{State: s, Action: rng.Intn(3), Reward: 1, LogProb: -1.1, Done: i == 31})
	}
	stats := agent.Update(&buf)
	if stats.ApproxKL == 0 {
		t.Fatal("ApproxKL should be reported")
	}
}
