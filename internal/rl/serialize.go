package rl

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"

	"repro/internal/nn"
)

// agentCheckpoint is the on-disk representation of a trained agent.
type agentCheckpoint struct {
	Format string  `json:"format"`
	Kind   string  `json:"kind"` // "ppo" | "dual-critic"
	Cfg    Config  `json:"config"`
	Alpha  float64 `json:"alpha,omitempty"`

	Actor        []float64 `json:"actor"`
	Critic       []float64 `json:"critic,omitempty"`
	LocalCritic  []float64 `json:"localCritic,omitempty"`
	PublicCritic []float64 `json:"publicCritic,omitempty"`
}

const agentFormat = "pfrl-dm/agent/v1"

// SaveAgent serializes a PPO or DualCriticPPO agent as JSON. Optimizer
// moments are not persisted: a reloaded agent is for inference or
// fine-tuning with fresh optimizer state.
func SaveAgent(w io.Writer, agent Agent) error {
	var ck agentCheckpoint
	ck.Format = agentFormat
	switch a := agent.(type) {
	case *PPO:
		ck.Kind = "ppo"
		ck.Cfg = a.Cfg
		ck.Actor = nn.FlattenParams(a.Actor)
		ck.Critic = nn.FlattenParams(a.Critic)
	case *DualCriticPPO:
		ck.Kind = "dual-critic"
		ck.Cfg = a.Cfg
		ck.Alpha = a.Alpha
		ck.Actor = nn.FlattenParams(a.Actor)
		ck.LocalCritic = nn.FlattenParams(a.LocalCritic)
		ck.PublicCritic = nn.FlattenParams(a.PublicCritic)
	default:
		return fmt.Errorf("rl: cannot serialize agent type %T", agent)
	}
	return json.NewEncoder(w).Encode(ck)
}

// LoadAgent reconstructs an agent saved by SaveAgent. The returned agent
// uses rng for its action sampling.
func LoadAgent(r io.Reader, rng *rand.Rand) (Agent, error) {
	var ck agentCheckpoint
	if err := json.NewDecoder(r).Decode(&ck); err != nil {
		return nil, fmt.Errorf("rl: decode agent checkpoint: %w", err)
	}
	if ck.Format != agentFormat {
		return nil, fmt.Errorf("rl: unknown agent checkpoint format %q", ck.Format)
	}
	// Validate the declared architecture and payload lengths before
	// constructing anything: NewPPO/NewDualCriticPPO trust their Config,
	// so a hostile checkpoint must be stopped here, with an error. The
	// constructors apply withDefaults, so validate the defaulted shape.
	cfg := ck.Cfg.withDefaults()
	actorN, err := nn.CheckSizes(cfg.actorSizes())
	if err != nil {
		return nil, fmt.Errorf("rl: checkpoint actor: %w", err)
	}
	criticN, err := nn.CheckSizes(cfg.criticSizes())
	if err != nil {
		return nil, fmt.Errorf("rl: checkpoint critic: %w", err)
	}
	if len(ck.Actor) != actorN {
		return nil, fmt.Errorf("rl: checkpoint carries %d actor params, architecture needs %d", len(ck.Actor), actorN)
	}
	checkCritic := func(name string, got []float64) error {
		if len(got) != criticN {
			return fmt.Errorf("rl: checkpoint carries %d %s params, architecture needs %d", len(got), name, criticN)
		}
		return nil
	}
	switch ck.Kind {
	case "ppo":
		if err := checkCritic("critic", ck.Critic); err != nil {
			return nil, err
		}
		a := NewPPO(ck.Cfg, rng)
		if err := nn.LoadFlatParams(a.Actor, ck.Actor); err != nil {
			return nil, err
		}
		if err := nn.LoadFlatParams(a.Critic, ck.Critic); err != nil {
			return nil, err
		}
		return a, nil
	case "dual-critic":
		if err := checkCritic("local critic", ck.LocalCritic); err != nil {
			return nil, err
		}
		if err := checkCritic("public critic", ck.PublicCritic); err != nil {
			return nil, err
		}
		a := NewDualCriticPPO(ck.Cfg, rng)
		a.Alpha = ck.Alpha
		if err := nn.LoadFlatParams(a.Actor, ck.Actor); err != nil {
			return nil, err
		}
		if err := nn.LoadFlatParams(a.LocalCritic, ck.LocalCritic); err != nil {
			return nil, err
		}
		if err := nn.LoadFlatParams(a.PublicCritic, ck.PublicCritic); err != nil {
			return nil, err
		}
		return a, nil
	default:
		return nil, fmt.Errorf("rl: unknown agent kind %q", ck.Kind)
	}
}

// SaveAgentFile writes an agent checkpoint to path.
func SaveAgentFile(path string, agent Agent) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := SaveAgent(f, agent); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadAgentFile reads an agent checkpoint from path.
func LoadAgentFile(path string, rng *rand.Rand) (Agent, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadAgent(f, rng)
}
