package rl

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
)

func TestSaveLoadPPO(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewPPO(DefaultConfig(6, 4), rng)
	var buf bytes.Buffer
	if err := SaveAgent(&buf, a); err != nil {
		t.Fatal(err)
	}
	loadedAgent, err := LoadAgent(&buf, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	b, ok := loadedAgent.(*PPO)
	if !ok {
		t.Fatalf("loaded %T", loadedAgent)
	}
	state := []float64{0.1, -0.2, 0.3, 0.4, -0.5, 0.6}
	if a.GreedyAction(state) != b.GreedyAction(state) {
		t.Fatal("policies disagree after round trip")
	}
	if a.Value(state) != b.Value(state) {
		t.Fatal("critics disagree after round trip")
	}
}

func TestSaveLoadDualCritic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := NewDualCriticPPO(DefaultConfig(5, 3), rng)
	a.Alpha = 0.73
	var buf bytes.Buffer
	if err := SaveAgent(&buf, a); err != nil {
		t.Fatal(err)
	}
	loadedAgent, err := LoadAgent(&buf, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	b, ok := loadedAgent.(*DualCriticPPO)
	if !ok {
		t.Fatalf("loaded %T", loadedAgent)
	}
	if b.Alpha != 0.73 {
		t.Fatalf("alpha %v", b.Alpha)
	}
	state := []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	if a.Value(state) != b.Value(state) {
		t.Fatal("blended values disagree after round trip")
	}
}

func TestLoadAgentRejectsGarbage(t *testing.T) {
	if _, err := LoadAgent(strings.NewReader("not json"), rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("expected decode error")
	}
	if _, err := LoadAgent(strings.NewReader(`{"format":"other"}`), rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("expected format error")
	}
	if _, err := LoadAgent(strings.NewReader(`{"format":"pfrl-dm/agent/v1","kind":"weird"}`), rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("expected kind error")
	}
}

func TestAgentFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "agent.json")
	a := NewPPO(DefaultConfig(3, 2), rand.New(rand.NewSource(5)))
	if err := SaveAgentFile(path, a); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadAgentFile(path, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	state := []float64{1, 2, 3}
	if loaded.(*PPO).Value(state) != a.Value(state) {
		t.Fatal("file round trip mismatch")
	}
	if _, err := LoadAgentFile(filepath.Join(dir, "missing.json"), rand.New(rand.NewSource(7))); err == nil {
		t.Fatal("expected missing-file error")
	}
}
