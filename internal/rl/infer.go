package rl

import (
	"repro/internal/nn"
	"repro/internal/tensor"
)

// inferScratch holds the per-agent buffers behind the zero-allocation
// rollout fast path. Every SelectAction/GreedyAction/Value call funnels one
// state through these reusable matrices and the reusable Categorical instead
// of allocating fresh ones, so a steady-state rollout step allocates nothing
// (asserted by TestRolloutStepZeroAlloc and BenchmarkRolloutStep).
//
// Buffers are lazily sized on first use, so agents built through any path —
// NewPPO, NewDualCriticPPO, or deserialization — need no extra setup. The
// scratch is owned by exactly one agent and makes the agent's inference
// methods non-reentrant: one goroutine per agent, which is already the
// contract everywhere in this repo (each federated client owns its agent).
type inferScratch struct {
	state  *tensor.Matrix // 1 x StateDim staging row
	logits *tensor.Matrix // 1 x NumActions actor head output
	value  *tensor.Matrix // 1 x 1 critic output
	value2 *tensor.Matrix // 1 x 1 second critic output (dual-critic agents)
	dist   nn.Categorical
}

// setState copies state into the persistent 1xN staging row and returns it.
func (s *inferScratch) setState(state []float64) *tensor.Matrix {
	if s.state == nil || s.state.Cols != len(state) {
		s.state = tensor.New(1, len(state))
	}
	copy(s.state.Data, state)
	return s.state
}

func (s *inferScratch) logitsBuf(n int) *tensor.Matrix {
	if s.logits == nil || s.logits.Cols != n {
		s.logits = tensor.New(1, n)
	}
	return s.logits
}

func (s *inferScratch) valueBuf() *tensor.Matrix {
	if s.value == nil {
		s.value = tensor.New(1, 1)
	}
	return s.value
}

func (s *inferScratch) value2Buf() *tensor.Matrix {
	if s.value2 == nil {
		s.value2 = tensor.New(1, 1)
	}
	return s.value2
}

// policyDist refreshes the reusable categorical from the actor's logits for
// the given state and returns it. This is the shared core of
// SelectAction/GreedyAction/GreedyMaskedAction on both agent types.
func (s *inferScratch) policyDist(actor *nn.MLP, state []float64, numActions int, mask []bool) *nn.Categorical {
	x := s.setState(state)
	logits := actor.Infer(s.logitsBuf(numActions), x)
	s.dist.SetLogits(logits.Row(0), mask)
	return &s.dist
}
