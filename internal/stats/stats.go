// Package stats provides the statistical utilities used by the evaluation
// harness: descriptive statistics, empirical CDFs, and the pair-wise
// Wilcoxon signed-rank test the paper uses for Table 4.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Variance returns the population variance (0 for fewer than 2 values).
func Variance(v []float64) float64 {
	if len(v) < 2 {
		return 0
	}
	m := Mean(v)
	s := 0.0
	for _, x := range v {
		s += (x - m) * (x - m)
	}
	return s / float64(len(v))
}

// Std returns the population standard deviation.
func Std(v []float64) float64 { return math.Sqrt(Variance(v)) }

// Median returns the middle value (mean of the two middle values for even
// lengths). It returns NaN for empty input.
func Median(v []float64) float64 { return Percentile(v, 0.5) }

// Percentile returns the q-th percentile (q in [0,1]) with linear
// interpolation. It returns NaN for empty input.
func Percentile(v []float64, q float64) float64 {
	if len(v) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// MovingAverage smooths v with a trailing window of the given size (the
// convergence plots use this). Window sizes < 2 return a copy.
func MovingAverage(v []float64, window int) []float64 {
	out := make([]float64, len(v))
	if window < 2 {
		copy(out, v)
		return out
	}
	sum := 0.0
	for i, x := range v {
		sum += x
		if i >= window {
			sum -= v[i-window]
		}
		n := i + 1
		if n > window {
			n = window
		}
		out[i] = sum / float64(n)
	}
	return out
}

// WilcoxonResult reports a pair-wise Wilcoxon signed-rank test.
type WilcoxonResult struct {
	// WPlus and WMinus are the rank sums of positive and negative
	// differences.
	WPlus, WMinus float64
	// N is the number of non-zero differences actually tested.
	N int
	// P is the two-sided p-value.
	P float64
	// Exact reports whether the exact permutation distribution was used
	// (true for N <= ExactLimit) rather than the normal approximation.
	Exact bool
}

// ExactLimit is the largest N for which Wilcoxon computes the exact
// permutation distribution; beyond it the normal approximation with tie and
// continuity corrections is used.
const ExactLimit = 25

// Wilcoxon runs the two-sided Wilcoxon signed-rank test on paired samples
// x and y (testing H0: median difference is zero). Zero differences are
// dropped, tied absolute differences get average ranks. It returns an error
// for mismatched lengths or when no non-zero differences remain.
func Wilcoxon(x, y []float64) (WilcoxonResult, error) {
	if len(x) != len(y) {
		return WilcoxonResult{}, fmt.Errorf("stats: Wilcoxon needs paired samples, got %d vs %d", len(x), len(y))
	}
	type diff struct {
		abs float64
		pos bool
	}
	var diffs []diff
	for i := range x {
		d := x[i] - y[i]
		if d != 0 {
			diffs = append(diffs, diff{abs: math.Abs(d), pos: d > 0})
		}
	}
	n := len(diffs)
	if n == 0 {
		return WilcoxonResult{}, fmt.Errorf("stats: Wilcoxon has no non-zero differences")
	}
	sort.Slice(diffs, func(i, j int) bool { return diffs[i].abs < diffs[j].abs })

	// Average ranks for ties. Ranks are half-integers, so store 2×rank as
	// integers for the exact DP.
	ranks2 := make([]int, n) // 2 × rank
	tieCorrection := 0.0
	for i := 0; i < n; {
		j := i
		for j < n && diffs[j].abs == diffs[i].abs {
			j++
		}
		// average rank of positions i..j-1 (1-based): (i+1 + j) / 2
		avg2 := (i + 1) + j // 2 × average rank
		for k := i; k < j; k++ {
			ranks2[k] = avg2
		}
		t := float64(j - i)
		tieCorrection += t*t*t - t
		i = j
	}

	wPlus2 := 0
	for i, d := range diffs {
		if d.pos {
			wPlus2 += ranks2[i]
		}
	}
	total2 := n * (n + 1) // 2 × n(n+1)/2
	res := WilcoxonResult{
		WPlus:  float64(wPlus2) / 2,
		WMinus: float64(total2-wPlus2) / 2,
		N:      n,
	}

	if n <= ExactLimit {
		res.Exact = true
		res.P = exactP(ranks2, wPlus2, total2)
	} else {
		mean := float64(n*(n+1)) / 4
		variance := float64(n*(n+1)*(2*n+1))/24 - tieCorrection/48
		w := math.Min(res.WPlus, res.WMinus)
		// Continuity correction toward the mean.
		z := (w - mean + 0.5) / math.Sqrt(variance)
		res.P = 2 * normalCDF(z)
	}
	if res.P > 1 {
		res.P = 1
	}
	return res, nil
}

// exactP computes the exact two-sided p-value by dynamic programming over
// the 2^n sign assignments: counts[s] = number of assignments with
// (2×W+) == s.
func exactP(ranks2 []int, wPlus2, total2 int) float64 {
	counts := make([]float64, total2+1)
	counts[0] = 1
	for _, r := range ranks2 {
		for s := total2; s >= r; s-- {
			counts[s] += counts[s-r]
		}
	}
	totalAssignments := math.Pow(2, float64(len(ranks2)))
	// Two-sided: P(W+ <= w) + P(W+ >= total - w) with w the observed W+.
	// By symmetry of the null distribution this equals
	// 2·P(W+ <= min(w, total-w)).
	w := wPlus2
	if total2-wPlus2 < w {
		w = total2 - wPlus2
	}
	cum := 0.0
	for s := 0; s <= w; s++ {
		cum += counts[s]
	}
	p := 2 * cum / totalAssignments
	// Guard against double-counting the exact center.
	if p > 1 {
		p = 1
	}
	return p
}

// normalCDF returns P(Z <= z) for a standard normal variable.
func normalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// ECDF returns the empirical CDF of v evaluated at each distinct value:
// (sorted distinct values, cumulative fractions).
func ECDF(v []float64) (xs, fs []float64) {
	if len(v) == 0 {
		return nil, nil
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	n := float64(len(s))
	for i := 0; i < len(s); {
		j := i
		for j < len(s) && s[j] == s[i] {
			j++
		}
		xs = append(xs, s[i])
		fs = append(fs, float64(j)/n)
		i = j
	}
	return xs, fs
}
