package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDescriptiveBasics(t *testing.T) {
	v := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(v) != 5 {
		t.Fatalf("mean %v", Mean(v))
	}
	if Std(v) != 2 {
		t.Fatalf("std %v", Std(v))
	}
	if Median(v) != 4.5 {
		t.Fatalf("median %v", Median(v))
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("degenerate inputs")
	}
	if !math.IsNaN(Median(nil)) {
		t.Fatal("median of empty should be NaN")
	}
}

func TestPercentile(t *testing.T) {
	v := []float64{1, 2, 3, 4, 5}
	if Percentile(v, 0) != 1 || Percentile(v, 1) != 5 {
		t.Fatal("extremes wrong")
	}
	if Percentile(v, 0.5) != 3 {
		t.Fatal("median wrong")
	}
	if got := Percentile(v, 0.25); got != 2 {
		t.Fatalf("P25 = %v", got)
	}
	if got := Percentile([]float64{1, 2}, 0.5); got != 1.5 {
		t.Fatalf("interpolation %v", got)
	}
}

func TestMovingAverage(t *testing.T) {
	v := []float64{1, 2, 3, 4}
	ma := MovingAverage(v, 2)
	want := []float64{1, 1.5, 2.5, 3.5}
	for i := range want {
		if math.Abs(ma[i]-want[i]) > 1e-12 {
			t.Fatalf("ma %v, want %v", ma, want)
		}
	}
	same := MovingAverage(v, 1)
	for i := range v {
		if same[i] != v[i] {
			t.Fatal("window 1 should copy")
		}
	}
}

func TestWilcoxonAllSameSign(t *testing.T) {
	// 10 pairs, x uniformly better (all differences negative): the exact
	// two-sided p is 2/2^10 ≈ 1.95e-3 — the value the paper's Table 4
	// reports (1.93e-3 up to rounding/implementation detail).
	x := make([]float64, 10)
	y := make([]float64, 10)
	for i := range x {
		x[i] = float64(i)
		y[i] = float64(i) + 1 + float64(i)*0.1
	}
	res, err := Wilcoxon(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Fatal("n=10 should use the exact distribution")
	}
	if res.WPlus != 0 || res.WMinus != 55 {
		t.Fatalf("rank sums %v/%v", res.WPlus, res.WMinus)
	}
	want := 2.0 / 1024.0
	if math.Abs(res.P-want) > 1e-12 {
		t.Fatalf("p=%v, want %v", res.P, want)
	}
}

func TestWilcoxonSymmetric(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	y := []float64{2, 1, 4, 3, 6, 5, 8, 7}
	res, err := Wilcoxon(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0.5 {
		t.Fatalf("balanced differences should not be significant: p=%v", res.P)
	}
}

func TestWilcoxonKnownValue(t *testing.T) {
	// Classic textbook example (Wilcoxon 1945-style): n=9 non-zero diffs.
	x := []float64{125, 115, 130, 140, 140, 115, 140, 125, 140, 135}
	y := []float64{110, 122, 125, 120, 140, 124, 123, 137, 135, 145}
	res, err := Wilcoxon(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 9 {
		t.Fatalf("N=%d, want 9 (one zero difference dropped)", res.N)
	}
	// Hand computation: |diffs| = {15,7,5,20,9,17,12,5,10}, average ranks
	// for the tied 5s are 1.5; W+ = 7+1.5+9+8+1.5 = 27, W- = 18.
	if res.WPlus != 27 || res.WMinus != 18 {
		t.Fatalf("W+=%v W-=%v, want 27/18", res.WPlus, res.WMinus)
	}
	// Not significant: exact two-sided p is ≈0.59–0.65 for W=18, n=9.
	if res.P < 0.5 || res.P > 0.75 {
		t.Fatalf("p=%v, want ≈0.6", res.P)
	}
}

func TestWilcoxonTiesGetAverageRanks(t *testing.T) {
	x := []float64{1, 1, 1, 10}
	y := []float64{0, 0, 0, 0}
	res, err := Wilcoxon(x, y)
	if err != nil {
		t.Fatal(err)
	}
	// |diffs| = 1,1,1,10 → ranks 2,2,2,4; all positive → W+ = 10.
	if res.WPlus != 10 || res.WMinus != 0 {
		t.Fatalf("W+=%v W-=%v", res.WPlus, res.WMinus)
	}
}

func TestWilcoxonErrors(t *testing.T) {
	if _, err := Wilcoxon([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, err := Wilcoxon([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Fatal("all-zero differences should error")
	}
}

func TestWilcoxonNormalApproxLargeN(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 60
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = x[i] + 0.8 + 0.3*rng.NormFloat64() // strong consistent shift
	}
	res, err := Wilcoxon(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact {
		t.Fatal("n=60 should use the normal approximation")
	}
	if res.P > 1e-4 {
		t.Fatalf("strong shift should be highly significant, p=%v", res.P)
	}
}

func TestWilcoxonExactMatchesApproxInOverlap(t *testing.T) {
	// For moderate n without ties the exact and approximate p-values
	// should be close.
	rng := rand.New(rand.NewSource(2))
	n := 20
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = x[i] + 0.4*rng.NormFloat64() + 0.1
	}
	exact, err := Wilcoxon(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !exact.Exact {
		t.Fatal("expected exact path")
	}
	// Recompute the approximate p-value from the same rank sums.
	mean := float64(n*(n+1)) / 4
	variance := float64(n*(n+1)*(2*n+1)) / 24
	w := math.Min(exact.WPlus, exact.WMinus)
	z := (w - mean + 0.5) / math.Sqrt(variance)
	approx := 2 * 0.5 * math.Erfc(-z/math.Sqrt2)
	// The normal approximation is only trustworthy outside the far tail.
	if exact.P > 1e-2 && math.Abs(math.Log(exact.P)-math.Log(approx)) > 0.5 {
		t.Fatalf("exact %v and approx %v diverge", exact.P, approx)
	}
}

func TestECDF(t *testing.T) {
	xs, fs := ECDF([]float64{3, 1, 3, 2})
	wantX := []float64{1, 2, 3}
	wantF := []float64{0.25, 0.5, 1.0}
	for i := range wantX {
		if xs[i] != wantX[i] || math.Abs(fs[i]-wantF[i]) > 1e-12 {
			t.Fatalf("ECDF (%v,%v)", xs, fs)
		}
	}
	if x, f := ECDF(nil); x != nil || f != nil {
		t.Fatal("empty ECDF should be nil")
	}
}

func TestPropWilcoxonPValueValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(40)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		res, err := Wilcoxon(x, y)
		if err != nil {
			return true // all-zero diffs is valid rejection
		}
		if res.P < 0 || res.P > 1 || math.IsNaN(res.P) {
			return false
		}
		// Rank sums partition n(n+1)/2.
		return math.Abs(res.WPlus+res.WMinus-float64(res.N*(res.N+1))/2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropNullUniformityRough(t *testing.T) {
	// Under H0 the test should reject at ~5% for alpha=0.05; allow a loose
	// band since we only run 200 trials.
	rng := rand.New(rand.NewSource(99))
	rejections := 0
	trials := 200
	for tr := 0; tr < trials; tr++ {
		n := 15
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		res, err := Wilcoxon(x, y)
		if err != nil {
			continue
		}
		if res.P < 0.05 {
			rejections++
		}
	}
	rate := float64(rejections) / float64(trials)
	if rate > 0.12 {
		t.Fatalf("null rejection rate %v too high", rate)
	}
}
