// Package autograd implements a tape-based reverse-mode automatic
// differentiation engine over tensor.Matrix values.
//
// A Tape records every operation in execution order; because operations are
// appended as they run, iterating the tape in reverse is a valid topological
// order for backpropagation. The engine supports exactly the operator set
// needed by the PPO agents and the attention aggregator in this repository:
// dense layers, pointwise nonlinearities, softmax/log-softmax, the clipped
// surrogate objective (elementwise min and clamp), and scalar reductions.
//
// Typical usage:
//
//	tape := autograd.NewTape()
//	x := tape.Const(batch)                     // input, no gradient
//	w := tape.Param(weights, weightGrads)      // leaf with external grad buffer
//	y := autograd.Tanh(autograd.MatMul(x, w))
//	loss := autograd.Mean(autograd.Square(autograd.Sub(y, target)))
//	loss.Backward()                            // weightGrads now holds dLoss/dW
package autograd

import (
	"fmt"

	"repro/internal/tensor"
)

// Value is a node in the computation graph. Data holds the forward result;
// Grad (lazily allocated) accumulates the gradient of the final scalar output
// with respect to this node.
type Value struct {
	Data *tensor.Matrix
	Grad *tensor.Matrix

	tape         *Tape
	requiresGrad bool
	back         func()
}

// Tape records operations for reverse-mode differentiation. A Tape is not
// safe for concurrent use; build one graph per goroutine.
type Tape struct {
	nodes []*Value
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{} }

// Len returns the number of recorded nodes (useful in tests).
func (t *Tape) Len() int { return len(t.nodes) }

// node registers a freshly computed value on the tape.
func (t *Tape) node(data *tensor.Matrix, requiresGrad bool, back func()) *Value {
	v := &Value{Data: data, tape: t, requiresGrad: requiresGrad, back: back}
	t.nodes = append(t.nodes, v)
	return v
}

// Const registers data as a constant leaf: no gradient is computed for it.
// The matrix is NOT copied; callers must not mutate it while the tape is live.
func (t *Tape) Const(data *tensor.Matrix) *Value {
	return t.node(data, false, nil)
}

// Var registers data as a differentiable leaf whose gradient is allocated
// internally (read it from Value.Grad after Backward).
func (t *Tape) Var(data *tensor.Matrix) *Value {
	return t.node(data, true, nil)
}

// Param registers data as a differentiable leaf whose gradient accumulates
// into the caller-provided buffer grad (shape must match). This lets
// optimizers own their gradient storage across steps.
func (t *Tape) Param(data, grad *tensor.Matrix) *Value {
	if !data.SameShape(grad) {
		panic(fmt.Sprintf("autograd: Param grad shape %dx%d != data shape %dx%d",
			grad.Rows, grad.Cols, data.Rows, data.Cols))
	}
	v := t.node(data, true, nil)
	v.Grad = grad
	return v
}

// ensureGrad allocates the gradient buffer if needed and returns it.
func (v *Value) ensureGrad() *tensor.Matrix {
	if v.Grad == nil {
		v.Grad = tensor.New(v.Data.Rows, v.Data.Cols)
	}
	return v.Grad
}

// accum adds delta into v's gradient if v participates in differentiation.
func (v *Value) accum(delta *tensor.Matrix) {
	if !v.requiresGrad {
		return
	}
	v.ensureGrad().AddInPlace(delta)
}

// accumScaled adds s*delta into v's gradient if v participates.
func (v *Value) accumScaled(delta *tensor.Matrix, s float64) {
	if !v.requiresGrad {
		return
	}
	v.ensureGrad().AddScaledInPlace(delta, s)
}

// Item returns the sole element of a 1x1 value. It panics otherwise.
func (v *Value) Item() float64 {
	if v.Data.Rows != 1 || v.Data.Cols != 1 {
		panic(fmt.Sprintf("autograd: Item on %dx%d value", v.Data.Rows, v.Data.Cols))
	}
	return v.Data.Data[0]
}

// Backward runs reverse-mode differentiation from v, which must be a 1x1
// scalar. Gradients accumulate into every reachable leaf (Var/Param).
func (v *Value) Backward() {
	if v.Data.Rows != 1 || v.Data.Cols != 1 {
		panic(fmt.Sprintf("autograd: Backward on non-scalar %dx%d value", v.Data.Rows, v.Data.Cols))
	}
	v.ensureGrad().Data[0] += 1
	t := v.tape
	for i := len(t.nodes) - 1; i >= 0; i-- {
		n := t.nodes[i]
		if n.back != nil && n.Grad != nil && n.requiresGrad {
			n.back()
		}
	}
}

func sameTape(a, b *Value) *Tape {
	if a.tape != b.tape {
		panic("autograd: operands from different tapes")
	}
	return a.tape
}
