// Package autograd implements a tape-based reverse-mode automatic
// differentiation engine over tensor.Matrix values.
//
// A Tape records every operation in execution order; because operations are
// appended as they run, iterating the tape in reverse is a valid topological
// order for backpropagation. The engine supports exactly the operator set
// needed by the PPO agents and the attention aggregator in this repository:
// dense layers, pointwise nonlinearities, softmax/log-softmax, the clipped
// surrogate objective (elementwise min and clamp), and scalar reductions.
//
// Typical usage:
//
//	tape := autograd.NewTape()
//	x := tape.Const(batch)                     // input, no gradient
//	w := tape.Param(weights, weightGrads)      // leaf with external grad buffer
//	y := autograd.Tanh(autograd.MatMul(x, w))
//	loss := autograd.Mean(autograd.Square(autograd.Sub(y, target)))
//	loss.Backward()                            // weightGrads now holds dLoss/dW
//
// Hot loops that rebuild the same graph repeatedly (the PPO minibatch
// update) should use a pooled tape instead and Reset it between builds:
//
//	tape := autograd.NewPooledTape(tensor.DefaultPool())
//	for each minibatch {
//		tape.Reset() // recycles nodes and matrices from the previous build
//		... build graph, Backward, read results ...
//	}
//
// A pooled tape draws every forward result, gradient, and backward
// temporary from its tensor.Pool and returns them on Reset, so steady-state
// graph construction allocates nothing.
package autograd

import (
	"fmt"

	"repro/internal/tensor"
)

// Value is a node in the computation graph. Data holds the forward result;
// Grad (lazily allocated) accumulates the gradient of the final scalar output
// with respect to this node.
type Value struct {
	Data *tensor.Matrix
	Grad *tensor.Matrix

	tape         *Tape
	requiresGrad bool
	ownsData     bool // Data came from the tape's pool (op output)
	ownsGrad     bool // Grad came from the tape's pool (not a Param buffer)
	back         func()

	// Closure-free backward state for the hot operators (see backward.go).
	// A per-call `back` closure heap-allocates its capture block, and at
	// ~15 operator applications per PPO minibatch those closures were the
	// last per-update allocation source; the hot ops instead record an
	// opcode plus operands/auxiliary state in these pooled slots and
	// Backward dispatches statically. Reset wipes them with the rest of the
	// struct. Ops off the update hot path still use `back`.
	op         opcode
	srcA, srcB *Value
	aux0, aux1, aux2, aux3, aux4 *tensor.Matrix
	auxS0      float64
	auxIdx     []int
}

// Tape records operations for reverse-mode differentiation. A Tape is not
// safe for concurrent use; build one graph per goroutine.
type Tape struct {
	nodes []*Value
	// spare holds recycled Value structs (filled by Reset, drained by node).
	spare []*Value
	// scratch holds pooled matrices used by op internals (selection masks)
	// that must stay live until Backward runs; Reset releases them.
	scratch []*tensor.Matrix
	// pool, when non-nil, supplies and recycles every tape-owned matrix.
	pool *tensor.Pool
}

// NewTape returns an empty, unpooled tape: every node and matrix is freshly
// allocated and left to the garbage collector.
func NewTape() *Tape { return &Tape{} }

// NewPooledTape returns a tape that draws tape-owned matrices (op outputs,
// gradients, backward temporaries) from pool and returns them on Reset.
// Reusing one pooled tape across graph builds makes steady-state graph
// construction allocation-free.
func NewPooledTape(pool *tensor.Pool) *Tape { return &Tape{pool: pool} }

// Len returns the number of recorded nodes (useful in tests).
func (t *Tape) Len() int { return len(t.nodes) }

// Reset discards the recorded graph and recycles its storage: tape-owned
// matrices go back to the pool and node structs are kept for reuse. Leaf
// data (Const/Var/Param) and Param gradient buffers are caller-owned and
// untouched. Any Value or tape-owned matrix from before the Reset must not
// be used afterwards.
func (t *Tape) Reset() {
	for _, v := range t.nodes {
		if t.pool != nil {
			if v.ownsData {
				t.pool.Put(v.Data)
			}
			if v.ownsGrad && v.Grad != nil {
				t.pool.Put(v.Grad)
			}
		}
		*v = Value{}
		t.spare = append(t.spare, v)
	}
	t.nodes = t.nodes[:0]
	if t.pool != nil {
		for _, m := range t.scratch {
			t.pool.Put(m)
		}
	}
	t.scratch = t.scratch[:0]
}

// alloc returns a zeroed rows x cols matrix from the tape's pool (or a fresh
// allocation for unpooled tapes).
func (t *Tape) alloc(rows, cols int) *tensor.Matrix {
	if t.pool != nil {
		return t.pool.Get(rows, cols)
	}
	return tensor.New(rows, cols)
}

// release returns a matrix obtained from alloc once no live node references
// it (backward temporaries). Unpooled tapes leave it to the GC.
func (t *Tape) release(m *tensor.Matrix) {
	if t.pool != nil {
		t.pool.Put(m)
	}
}

// allocScratch returns a pooled matrix that stays live until Reset — used by
// ops that capture auxiliary state (selection masks) in backward closures.
func (t *Tape) allocScratch(rows, cols int) *tensor.Matrix {
	m := t.alloc(rows, cols)
	t.scratch = append(t.scratch, m)
	return m
}

// node registers a value on the tape, recycling a spare Value struct when
// one is available. ownsData marks data as tape-owned (recycled on Reset).
func (t *Tape) node(data *tensor.Matrix, requiresGrad, ownsData bool, back func()) *Value {
	var v *Value
	if n := len(t.spare); n > 0 {
		v = t.spare[n-1]
		t.spare[n-1] = nil
		t.spare = t.spare[:n-1]
	} else {
		v = new(Value)
	}
	v.Data, v.tape, v.requiresGrad, v.ownsData, v.back = data, t, requiresGrad, ownsData, back
	t.nodes = append(t.nodes, v)
	return v
}

// opNode allocates a tape-owned output matrix and registers it; the common
// entry point for operator forward passes.
func (t *Tape) opNode(rows, cols int, requiresGrad bool) *Value {
	return t.node(t.alloc(rows, cols), requiresGrad, true, nil)
}

// Const registers data as a constant leaf: no gradient is computed for it.
// The matrix is NOT copied; callers must not mutate it while the tape is live.
func (t *Tape) Const(data *tensor.Matrix) *Value {
	return t.node(data, false, false, nil)
}

// Var registers data as a differentiable leaf whose gradient is allocated
// internally (read it from Value.Grad after Backward and before any Reset).
func (t *Tape) Var(data *tensor.Matrix) *Value {
	return t.node(data, true, false, nil)
}

// Param registers data as a differentiable leaf whose gradient accumulates
// into the caller-provided buffer grad (shape must match). This lets
// optimizers own their gradient storage across steps; Reset never recycles
// a Param's gradient buffer.
func (t *Tape) Param(data, grad *tensor.Matrix) *Value {
	if !data.SameShape(grad) {
		panic(fmt.Sprintf("autograd: Param grad shape %dx%d != data shape %dx%d",
			grad.Rows, grad.Cols, data.Rows, data.Cols))
	}
	v := t.node(data, true, false, nil)
	v.Grad = grad
	return v
}

// ensureGrad allocates the gradient buffer if needed and returns it.
func (v *Value) ensureGrad() *tensor.Matrix {
	if v.Grad == nil {
		v.Grad = v.tape.alloc(v.Data.Rows, v.Data.Cols)
		v.ownsGrad = true
	}
	return v.Grad
}

// accum adds delta into v's gradient if v participates in differentiation.
func (v *Value) accum(delta *tensor.Matrix) {
	if !v.requiresGrad {
		return
	}
	v.ensureGrad().AddInPlace(delta)
}

// accumScaled adds s*delta into v's gradient if v participates.
func (v *Value) accumScaled(delta *tensor.Matrix, s float64) {
	if !v.requiresGrad {
		return
	}
	v.ensureGrad().AddScaledInPlace(delta, s)
}

// Item returns the sole element of a 1x1 value. It panics otherwise.
func (v *Value) Item() float64 {
	if v.Data.Rows != 1 || v.Data.Cols != 1 {
		panic(fmt.Sprintf("autograd: Item on %dx%d value", v.Data.Rows, v.Data.Cols))
	}
	return v.Data.Data[0]
}

// Backward runs reverse-mode differentiation from v, which must be a 1x1
// scalar. Gradients accumulate into every reachable leaf (Var/Param).
func (v *Value) Backward() {
	if v.Data.Rows != 1 || v.Data.Cols != 1 {
		panic(fmt.Sprintf("autograd: Backward on non-scalar %dx%d value", v.Data.Rows, v.Data.Cols))
	}
	v.ensureGrad().Data[0] += 1
	t := v.tape
	for i := len(t.nodes) - 1; i >= 0; i-- {
		n := t.nodes[i]
		if n.Grad == nil || !n.requiresGrad {
			continue
		}
		if n.op != opNone {
			opBackward(n)
		} else if n.back != nil {
			n.back()
		}
	}
}

func sameTape(a, b *Value) *Tape {
	if a.tape != b.tape {
		panic("autograd: operands from different tapes")
	}
	return a.tape
}
