package autograd

import (
	"fmt"
	"math"
)

// Every operator below allocates its forward result through the tape
// (pool-backed for pooled tapes) and computes it with the tensor package's
// in-place kernels, which are bitwise identical to the allocating ones.
// Backward closures draw their temporaries from the tape as well and release
// them as soon as the gradient has been accumulated, so a pooled tape's
// backward pass recycles a handful of scratch matrices instead of allocating
// per node.

// MatMul returns a·b with gradients da += g·bᵀ and db += aᵀ·g.
func MatMul(a, b *Value) *Value {
	t := sameTape(a, b)
	out := t.opNode(a.Data.Rows, b.Data.Cols, a.requiresGrad || b.requiresGrad)
	a.Data.MatMulInto(b.Data, out.Data)
	out.op, out.srcA, out.srcB = opMatMul, a, b
	return out
}

// Add returns a+b elementwise.
func Add(a, b *Value) *Value {
	t := sameTape(a, b)
	out := t.opNode(a.Data.Rows, a.Data.Cols, a.requiresGrad || b.requiresGrad)
	a.Data.AddInto(b.Data, out.Data)
	out.op, out.srcA, out.srcB = opAdd, a, b
	return out
}

// Sub returns a-b elementwise.
func Sub(a, b *Value) *Value {
	t := sameTape(a, b)
	out := t.opNode(a.Data.Rows, a.Data.Cols, a.requiresGrad || b.requiresGrad)
	a.Data.SubInto(b.Data, out.Data)
	out.op, out.srcA, out.srcB = opSub, a, b
	return out
}

// Mul returns the elementwise product a∘b.
func Mul(a, b *Value) *Value {
	t := sameTape(a, b)
	out := t.opNode(a.Data.Rows, a.Data.Cols, a.requiresGrad || b.requiresGrad)
	a.Data.MulElemInto(b.Data, out.Data)
	out.back = func() {
		if a.requiresGrad {
			tmp := t.alloc(out.Data.Rows, out.Data.Cols)
			out.Grad.MulElemInto(b.Data, tmp)
			a.accum(tmp)
			t.release(tmp)
		}
		if b.requiresGrad {
			tmp := t.alloc(out.Data.Rows, out.Data.Cols)
			out.Grad.MulElemInto(a.Data, tmp)
			b.accum(tmp)
			t.release(tmp)
		}
	}
	return out
}

// Div returns the elementwise quotient a/b.
func Div(a, b *Value) *Value {
	t := sameTape(a, b)
	out := t.opNode(a.Data.Rows, a.Data.Cols, a.requiresGrad || b.requiresGrad)
	a.Data.DivElemInto(b.Data, out.Data)
	out.back = func() {
		if a.requiresGrad {
			tmp := t.alloc(out.Data.Rows, out.Data.Cols)
			out.Grad.DivElemInto(b.Data, tmp)
			a.accum(tmp)
			t.release(tmp)
		}
		if b.requiresGrad {
			// d/db (a/b) = -a/b²
			tmp := t.alloc(out.Data.Rows, out.Data.Cols)
			out.Grad.MulElemInto(a.Data, tmp)
			tmp.DivElemInto(b.Data, tmp)
			tmp.DivElemInto(b.Data, tmp)
			b.accumScaled(tmp, -1)
			t.release(tmp)
		}
	}
	return out
}

// AddRow adds a 1xC bias row vector to every row of a (a dense layer bias).
func AddRow(a, bias *Value) *Value {
	t := sameTape(a, bias)
	out := t.opNode(a.Data.Rows, a.Data.Cols, a.requiresGrad || bias.requiresGrad)
	a.Data.AddRowBroadcastInto(bias.Data, out.Data)
	out.op, out.srcA, out.srcB = opAddRow, a, bias
	return out
}

// Scale returns s·a.
func Scale(a *Value, s float64) *Value {
	t := a.tape
	out := t.opNode(a.Data.Rows, a.Data.Cols, a.requiresGrad)
	a.Data.ScaleInto(s, out.Data)
	out.op, out.srcA, out.auxS0 = opScale, a, s
	return out
}

// AddScalar returns a + s elementwise.
func AddScalar(a *Value, s float64) *Value {
	t := a.tape
	out := t.opNode(a.Data.Rows, a.Data.Cols, a.requiresGrad)
	a.Data.AddScalarInto(s, out.Data)
	out.back = func() { a.accum(out.Grad) }
	return out
}

// Neg returns -a.
func Neg(a *Value) *Value { return Scale(a, -1) }

// Tanh returns tanh(a) elementwise.
func Tanh(a *Value) *Value {
	t := a.tape
	out := t.opNode(a.Data.Rows, a.Data.Cols, a.requiresGrad)
	a.Data.ApplyInto(math.Tanh, out.Data)
	out.op, out.srcA = opTanh, a
	return out
}

// ReLU returns max(a, 0) elementwise.
func ReLU(a *Value) *Value {
	t := a.tape
	out := t.opNode(a.Data.Rows, a.Data.Cols, a.requiresGrad)
	a.Data.ApplyInto(func(x float64) float64 {
		if x > 0 {
			return x
		}
		return 0
	}, out.Data)
	out.back = func() {
		tmp := t.alloc(a.Data.Rows, a.Data.Cols) // zeroed
		for i, x := range a.Data.Data {
			if x > 0 {
				tmp.Data[i] = out.Grad.Data[i]
			}
		}
		a.accum(tmp)
		t.release(tmp)
	}
	return out
}

// Sigmoid returns 1/(1+e^{-a}) elementwise.
func Sigmoid(a *Value) *Value {
	t := a.tape
	out := t.opNode(a.Data.Rows, a.Data.Cols, a.requiresGrad)
	a.Data.ApplyInto(func(x float64) float64 {
		return 1 / (1 + math.Exp(-x))
	}, out.Data)
	out.back = func() {
		tmp := t.alloc(out.Data.Rows, out.Data.Cols)
		out.Data.ApplyInto(func(y float64) float64 { return y * (1 - y) }, tmp)
		out.Grad.MulElemInto(tmp, tmp)
		a.accum(tmp)
		t.release(tmp)
	}
	return out
}

// Exp returns e^a elementwise.
func Exp(a *Value) *Value {
	t := a.tape
	out := t.opNode(a.Data.Rows, a.Data.Cols, a.requiresGrad)
	a.Data.ApplyInto(math.Exp, out.Data)
	out.back = func() {
		tmp := t.alloc(out.Data.Rows, out.Data.Cols)
		out.Grad.MulElemInto(out.Data, tmp)
		a.accum(tmp)
		t.release(tmp)
	}
	return out
}

// Log returns ln(a) elementwise. Behaviour for non-positive inputs follows
// math.Log (NaN / -Inf); callers are expected to keep inputs positive.
func Log(a *Value) *Value {
	t := a.tape
	out := t.opNode(a.Data.Rows, a.Data.Cols, a.requiresGrad)
	a.Data.ApplyInto(math.Log, out.Data)
	out.back = func() {
		tmp := t.alloc(out.Data.Rows, out.Data.Cols)
		out.Grad.DivElemInto(a.Data, tmp)
		a.accum(tmp)
		t.release(tmp)
	}
	return out
}

// Square returns a² elementwise.
func Square(a *Value) *Value {
	t := a.tape
	out := t.opNode(a.Data.Rows, a.Data.Cols, a.requiresGrad)
	a.Data.ApplyInto(func(x float64) float64 { return x * x }, out.Data)
	out.op, out.srcA = opSquare, a
	return out
}

// Sum returns the 1x1 sum of all elements of a.
func Sum(a *Value) *Value {
	t := a.tape
	out := t.opNode(1, 1, a.requiresGrad)
	out.Data.Data[0] = a.Data.Sum()
	out.back = func() {
		tmp := t.alloc(a.Data.Rows, a.Data.Cols)
		tmp.Fill(out.Grad.Data[0])
		a.accum(tmp)
		t.release(tmp)
	}
	return out
}

// Mean returns the 1x1 mean of all elements of a.
func Mean(a *Value) *Value {
	n := len(a.Data.Data)
	if n == 0 {
		panic("autograd: Mean of empty value")
	}
	t := a.tape
	out := t.opNode(1, 1, a.requiresGrad)
	out.Data.Data[0] = a.Data.Mean()
	out.op, out.srcA = opMean, a
	return out
}

// Minimum returns the elementwise minimum of a and b. Where the values tie,
// the gradient flows to a (this matches the PPO convention where ties are
// irrelevant).
func Minimum(a, b *Value) *Value {
	t := sameTape(a, b)
	if !a.Data.SameShape(b.Data) {
		panic(fmt.Sprintf("autograd: Minimum shape mismatch %dx%d vs %dx%d",
			a.Data.Rows, a.Data.Cols, b.Data.Rows, b.Data.Cols))
	}
	out := t.opNode(a.Data.Rows, a.Data.Cols, a.requiresGrad || b.requiresGrad)
	data := out.Data
	// fromA[i] == 1 marks elements taken from a; kept as tape scratch so the
	// backward closure can route gradients without holding heap garbage.
	fromA := t.allocScratch(a.Data.Rows, a.Data.Cols)
	for i := range data.Data {
		if a.Data.Data[i] <= b.Data.Data[i] {
			data.Data[i] = a.Data.Data[i]
			fromA.Data[i] = 1
		} else {
			data.Data[i] = b.Data.Data[i]
		}
	}
	out.op, out.srcA, out.srcB, out.aux0 = opMinimum, a, b, fromA
	return out
}

// Clamp returns a with every element clipped into [lo, hi]. The gradient is
// passed through inside the interval and zero outside (the straight-through
// behaviour PyTorch's clamp has, which PPO's clipped objective relies on).
func Clamp(a *Value, lo, hi float64) *Value {
	t := a.tape
	out := t.opNode(a.Data.Rows, a.Data.Cols, a.requiresGrad)
	data := out.Data
	inside := t.allocScratch(a.Data.Rows, a.Data.Cols)
	for i, x := range a.Data.Data {
		switch {
		case x < lo:
			data.Data[i] = lo
		case x > hi:
			data.Data[i] = hi
		default:
			data.Data[i] = x
			inside.Data[i] = 1
		}
	}
	out.op, out.srcA, out.aux0 = opClamp, a, inside
	return out
}

// SoftmaxRows applies a numerically stable softmax to each row of a.
func SoftmaxRows(a *Value) *Value {
	t := a.tape
	out := t.opNode(a.Data.Rows, a.Data.Cols, a.requiresGrad)
	s := out.Data
	a.Data.SoftmaxRowsInto(s)
	out.back = func() {
		// dx = s ∘ (g - rowdot(g, s))
		tmp := t.alloc(s.Rows, s.Cols)
		for i := 0; i < s.Rows; i++ {
			srow := s.Row(i)
			grow := out.Grad.Row(i)
			dot := 0.0
			for j := range srow {
				dot += srow[j] * grow[j]
			}
			drow := tmp.Row(i)
			for j := range srow {
				drow[j] = srow[j] * (grow[j] - dot)
			}
		}
		a.accum(tmp)
		t.release(tmp)
	}
	return out
}

// LogSoftmaxRows applies a numerically stable log-softmax to each row of a.
func LogSoftmaxRows(a *Value) *Value {
	t := a.tape
	out := t.opNode(a.Data.Rows, a.Data.Cols, a.requiresGrad)
	ls := out.Data
	a.Data.LogSoftmaxRowsInto(ls)
	out.back = func() {
		// dx = g - softmax ∘ rowsum(g)
		tmp := t.alloc(ls.Rows, ls.Cols)
		for i := 0; i < ls.Rows; i++ {
			lrow := ls.Row(i)
			grow := out.Grad.Row(i)
			gsum := 0.0
			for _, g := range grow {
				gsum += g
			}
			drow := tmp.Row(i)
			for j := range lrow {
				drow[j] = grow[j] - math.Exp(lrow[j])*gsum
			}
		}
		a.accum(tmp)
		t.release(tmp)
	}
	return out
}

// PickCols returns an Nx1 column whose i-th entry is a[i, idx[i]].
// It is used to select the log-probability of the action actually taken.
// The tape captures idx without copying; callers must not mutate it until
// after Backward (or the next Reset).
func PickCols(a *Value, idx []int) *Value {
	if len(idx) != a.Data.Rows {
		panic(fmt.Sprintf("autograd: PickCols got %d indices for %d rows", len(idx), a.Data.Rows))
	}
	t := a.tape
	out := t.opNode(a.Data.Rows, 1, a.requiresGrad)
	for i, j := range idx {
		if j < 0 || j >= a.Data.Cols {
			panic(fmt.Sprintf("autograd: PickCols index %d out of range [0,%d)", j, a.Data.Cols))
		}
		out.Data.Data[i] = a.Data.At(i, j)
	}
	out.back = func() {
		tmp := t.alloc(a.Data.Rows, a.Data.Cols)
		for i, j := range idx {
			tmp.Set(i, j, out.Grad.Data[i])
		}
		a.accum(tmp)
		t.release(tmp)
	}
	return out
}

// SumRows returns an Nx1 column of per-row sums.
func SumRows(a *Value) *Value {
	t := a.tape
	out := t.opNode(a.Data.Rows, 1, a.requiresGrad)
	a.Data.SumRowsInto(out.Data)
	out.back = func() {
		tmp := t.alloc(a.Data.Rows, a.Data.Cols)
		for i := 0; i < a.Data.Rows; i++ {
			g := out.Grad.Data[i]
			drow := tmp.Row(i)
			for j := range drow {
				drow[j] = g
			}
		}
		a.accum(tmp)
		t.release(tmp)
	}
	return out
}

// ConcatCols concatenates a (NxA) and b (NxB) into an Nx(A+B) value.
func ConcatCols(a, b *Value) *Value {
	t := sameTape(a, b)
	if a.Data.Rows != b.Data.Rows {
		panic(fmt.Sprintf("autograd: ConcatCols row mismatch %d vs %d", a.Data.Rows, b.Data.Rows))
	}
	n, ca, cb := a.Data.Rows, a.Data.Cols, b.Data.Cols
	out := t.opNode(n, ca+cb, a.requiresGrad || b.requiresGrad)
	data := out.Data
	for i := 0; i < n; i++ {
		copy(data.Row(i)[:ca], a.Data.Row(i))
		copy(data.Row(i)[ca:], b.Data.Row(i))
	}
	out.back = func() {
		if a.requiresGrad {
			da := t.alloc(n, ca)
			for i := 0; i < n; i++ {
				copy(da.Row(i), out.Grad.Row(i)[:ca])
			}
			a.accum(da)
			t.release(da)
		}
		if b.requiresGrad {
			db := t.alloc(n, cb)
			for i := 0; i < n; i++ {
				copy(db.Row(i), out.Grad.Row(i)[ca:])
			}
			b.accum(db)
			t.release(db)
		}
	}
	return out
}
