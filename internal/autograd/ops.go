package autograd

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// MatMul returns a·b with gradients da += g·bᵀ and db += aᵀ·g.
func MatMul(a, b *Value) *Value {
	t := sameTape(a, b)
	out := t.node(a.Data.MatMul(b.Data), a.requiresGrad || b.requiresGrad, nil)
	out.back = func() {
		g := out.Grad
		if a.requiresGrad {
			a.accum(g.MatMulTransB(b.Data))
		}
		if b.requiresGrad {
			b.accum(a.Data.MatMulTransA(g))
		}
	}
	return out
}

// Add returns a+b elementwise.
func Add(a, b *Value) *Value {
	t := sameTape(a, b)
	out := t.node(a.Data.Add(b.Data), a.requiresGrad || b.requiresGrad, nil)
	out.back = func() {
		a.accum(out.Grad)
		b.accum(out.Grad)
	}
	return out
}

// Sub returns a-b elementwise.
func Sub(a, b *Value) *Value {
	t := sameTape(a, b)
	out := t.node(a.Data.Sub(b.Data), a.requiresGrad || b.requiresGrad, nil)
	out.back = func() {
		a.accum(out.Grad)
		b.accumScaled(out.Grad, -1)
	}
	return out
}

// Mul returns the elementwise product a∘b.
func Mul(a, b *Value) *Value {
	t := sameTape(a, b)
	out := t.node(a.Data.MulElem(b.Data), a.requiresGrad || b.requiresGrad, nil)
	out.back = func() {
		if a.requiresGrad {
			a.accum(out.Grad.MulElem(b.Data))
		}
		if b.requiresGrad {
			b.accum(out.Grad.MulElem(a.Data))
		}
	}
	return out
}

// Div returns the elementwise quotient a/b.
func Div(a, b *Value) *Value {
	t := sameTape(a, b)
	out := t.node(a.Data.DivElem(b.Data), a.requiresGrad || b.requiresGrad, nil)
	out.back = func() {
		if a.requiresGrad {
			a.accum(out.Grad.DivElem(b.Data))
		}
		if b.requiresGrad {
			// d/db (a/b) = -a/b²
			d := out.Grad.MulElem(a.Data)
			d = d.DivElem(b.Data).DivElem(b.Data)
			b.accumScaled(d, -1)
		}
	}
	return out
}

// AddRow adds a 1xC bias row vector to every row of a (a dense layer bias).
func AddRow(a, bias *Value) *Value {
	t := sameTape(a, bias)
	out := t.node(a.Data.AddRowBroadcast(bias.Data), a.requiresGrad || bias.requiresGrad, nil)
	out.back = func() {
		a.accum(out.Grad)
		if bias.requiresGrad {
			bias.accum(out.Grad.SumCols())
		}
	}
	return out
}

// Scale returns s·a.
func Scale(a *Value, s float64) *Value {
	out := a.tape.node(a.Data.Scale(s), a.requiresGrad, nil)
	out.back = func() { a.accumScaled(out.Grad, s) }
	return out
}

// AddScalar returns a + s elementwise.
func AddScalar(a *Value, s float64) *Value {
	out := a.tape.node(a.Data.AddScalar(s), a.requiresGrad, nil)
	out.back = func() { a.accum(out.Grad) }
	return out
}

// Neg returns -a.
func Neg(a *Value) *Value { return Scale(a, -1) }

// Tanh returns tanh(a) elementwise.
func Tanh(a *Value) *Value {
	out := a.tape.node(a.Data.Apply(math.Tanh), a.requiresGrad, nil)
	out.back = func() {
		// d tanh = 1 - tanh²
		d := out.Data.Apply(func(y float64) float64 { return 1 - y*y })
		a.accum(out.Grad.MulElem(d))
	}
	return out
}

// ReLU returns max(a, 0) elementwise.
func ReLU(a *Value) *Value {
	out := a.tape.node(a.Data.Apply(func(x float64) float64 {
		if x > 0 {
			return x
		}
		return 0
	}), a.requiresGrad, nil)
	out.back = func() {
		d := tensor.New(a.Data.Rows, a.Data.Cols)
		for i, x := range a.Data.Data {
			if x > 0 {
				d.Data[i] = out.Grad.Data[i]
			}
		}
		a.accum(d)
	}
	return out
}

// Sigmoid returns 1/(1+e^{-a}) elementwise.
func Sigmoid(a *Value) *Value {
	out := a.tape.node(a.Data.Apply(func(x float64) float64 {
		return 1 / (1 + math.Exp(-x))
	}), a.requiresGrad, nil)
	out.back = func() {
		d := out.Data.Apply(func(y float64) float64 { return y * (1 - y) })
		a.accum(out.Grad.MulElem(d))
	}
	return out
}

// Exp returns e^a elementwise.
func Exp(a *Value) *Value {
	out := a.tape.node(a.Data.Apply(math.Exp), a.requiresGrad, nil)
	out.back = func() { a.accum(out.Grad.MulElem(out.Data)) }
	return out
}

// Log returns ln(a) elementwise. Behaviour for non-positive inputs follows
// math.Log (NaN / -Inf); callers are expected to keep inputs positive.
func Log(a *Value) *Value {
	out := a.tape.node(a.Data.Apply(math.Log), a.requiresGrad, nil)
	out.back = func() { a.accum(out.Grad.DivElem(a.Data)) }
	return out
}

// Square returns a² elementwise.
func Square(a *Value) *Value {
	out := a.tape.node(a.Data.Apply(func(x float64) float64 { return x * x }), a.requiresGrad, nil)
	out.back = func() {
		d := out.Grad.MulElem(a.Data)
		a.accumScaled(d, 2)
	}
	return out
}

// Sum returns the 1x1 sum of all elements of a.
func Sum(a *Value) *Value {
	out := a.tape.node(tensor.FromSlice(1, 1, []float64{a.Data.Sum()}), a.requiresGrad, nil)
	out.back = func() {
		a.accum(tensor.Full(a.Data.Rows, a.Data.Cols, out.Grad.Data[0]))
	}
	return out
}

// Mean returns the 1x1 mean of all elements of a.
func Mean(a *Value) *Value {
	n := len(a.Data.Data)
	if n == 0 {
		panic("autograd: Mean of empty value")
	}
	out := a.tape.node(tensor.FromSlice(1, 1, []float64{a.Data.Mean()}), a.requiresGrad, nil)
	out.back = func() {
		a.accum(tensor.Full(a.Data.Rows, a.Data.Cols, out.Grad.Data[0]/float64(n)))
	}
	return out
}

// Minimum returns the elementwise minimum of a and b. Where the values tie,
// the gradient flows to a (this matches the PPO convention where ties are
// irrelevant).
func Minimum(a, b *Value) *Value {
	t := sameTape(a, b)
	if !a.Data.SameShape(b.Data) {
		panic(fmt.Sprintf("autograd: Minimum shape mismatch %dx%d vs %dx%d",
			a.Data.Rows, a.Data.Cols, b.Data.Rows, b.Data.Cols))
	}
	data := tensor.New(a.Data.Rows, a.Data.Cols)
	fromA := make([]bool, len(data.Data))
	for i := range data.Data {
		if a.Data.Data[i] <= b.Data.Data[i] {
			data.Data[i] = a.Data.Data[i]
			fromA[i] = true
		} else {
			data.Data[i] = b.Data.Data[i]
		}
	}
	out := t.node(data, a.requiresGrad || b.requiresGrad, nil)
	out.back = func() {
		da := tensor.New(data.Rows, data.Cols)
		db := tensor.New(data.Rows, data.Cols)
		for i, fa := range fromA {
			if fa {
				da.Data[i] = out.Grad.Data[i]
			} else {
				db.Data[i] = out.Grad.Data[i]
			}
		}
		a.accum(da)
		b.accum(db)
	}
	return out
}

// Clamp returns a with every element clipped into [lo, hi]. The gradient is
// passed through inside the interval and zero outside (the straight-through
// behaviour PyTorch's clamp has, which PPO's clipped objective relies on).
func Clamp(a *Value, lo, hi float64) *Value {
	data := tensor.New(a.Data.Rows, a.Data.Cols)
	inside := make([]bool, len(data.Data))
	for i, x := range a.Data.Data {
		switch {
		case x < lo:
			data.Data[i] = lo
		case x > hi:
			data.Data[i] = hi
		default:
			data.Data[i] = x
			inside[i] = true
		}
	}
	out := a.tape.node(data, a.requiresGrad, nil)
	out.back = func() {
		d := tensor.New(data.Rows, data.Cols)
		for i, in := range inside {
			if in {
				d.Data[i] = out.Grad.Data[i]
			}
		}
		a.accum(d)
	}
	return out
}

// SoftmaxRows applies a numerically stable softmax to each row of a.
func SoftmaxRows(a *Value) *Value {
	s := a.Data.SoftmaxRows()
	out := a.tape.node(s, a.requiresGrad, nil)
	out.back = func() {
		// dx = s ∘ (g - rowdot(g, s))
		d := tensor.New(s.Rows, s.Cols)
		for i := 0; i < s.Rows; i++ {
			srow := s.Row(i)
			grow := out.Grad.Row(i)
			dot := 0.0
			for j := range srow {
				dot += srow[j] * grow[j]
			}
			drow := d.Row(i)
			for j := range srow {
				drow[j] = srow[j] * (grow[j] - dot)
			}
		}
		a.accum(d)
	}
	return out
}

// LogSoftmaxRows applies a numerically stable log-softmax to each row of a.
func LogSoftmaxRows(a *Value) *Value {
	ls := a.Data.LogSoftmaxRows()
	out := a.tape.node(ls, a.requiresGrad, nil)
	out.back = func() {
		// dx = g - softmax ∘ rowsum(g)
		d := tensor.New(ls.Rows, ls.Cols)
		for i := 0; i < ls.Rows; i++ {
			lrow := ls.Row(i)
			grow := out.Grad.Row(i)
			gsum := 0.0
			for _, g := range grow {
				gsum += g
			}
			drow := d.Row(i)
			for j := range lrow {
				drow[j] = grow[j] - math.Exp(lrow[j])*gsum
			}
		}
		a.accum(d)
	}
	return out
}

// PickCols returns an Nx1 column whose i-th entry is a[i, idx[i]].
// It is used to select the log-probability of the action actually taken.
func PickCols(a *Value, idx []int) *Value {
	if len(idx) != a.Data.Rows {
		panic(fmt.Sprintf("autograd: PickCols got %d indices for %d rows", len(idx), a.Data.Rows))
	}
	data := tensor.New(a.Data.Rows, 1)
	for i, j := range idx {
		if j < 0 || j >= a.Data.Cols {
			panic(fmt.Sprintf("autograd: PickCols index %d out of range [0,%d)", j, a.Data.Cols))
		}
		data.Data[i] = a.Data.At(i, j)
	}
	out := a.tape.node(data, a.requiresGrad, nil)
	out.back = func() {
		d := tensor.New(a.Data.Rows, a.Data.Cols)
		for i, j := range idx {
			d.Set(i, j, out.Grad.Data[i])
		}
		a.accum(d)
	}
	return out
}

// SumRows returns an Nx1 column of per-row sums.
func SumRows(a *Value) *Value {
	out := a.tape.node(a.Data.SumRows(), a.requiresGrad, nil)
	out.back = func() {
		d := tensor.New(a.Data.Rows, a.Data.Cols)
		for i := 0; i < a.Data.Rows; i++ {
			g := out.Grad.Data[i]
			drow := d.Row(i)
			for j := range drow {
				drow[j] = g
			}
		}
		a.accum(d)
	}
	return out
}

// ConcatCols concatenates a (NxA) and b (NxB) into an Nx(A+B) value.
func ConcatCols(a, b *Value) *Value {
	t := sameTape(a, b)
	if a.Data.Rows != b.Data.Rows {
		panic(fmt.Sprintf("autograd: ConcatCols row mismatch %d vs %d", a.Data.Rows, b.Data.Rows))
	}
	n, ca, cb := a.Data.Rows, a.Data.Cols, b.Data.Cols
	data := tensor.New(n, ca+cb)
	for i := 0; i < n; i++ {
		copy(data.Row(i)[:ca], a.Data.Row(i))
		copy(data.Row(i)[ca:], b.Data.Row(i))
	}
	out := t.node(data, a.requiresGrad || b.requiresGrad, nil)
	out.back = func() {
		if a.requiresGrad {
			da := tensor.New(n, ca)
			for i := 0; i < n; i++ {
				copy(da.Row(i), out.Grad.Row(i)[:ca])
			}
			a.accum(da)
		}
		if b.requiresGrad {
			db := tensor.New(n, cb)
			for i := 0; i < n; i++ {
				copy(db.Row(i), out.Grad.Row(i)[ca:])
			}
			b.accum(db)
		}
	}
	return out
}
