package autograd

import (
	"math"

	"repro/internal/tensor"
)

// NumericGrad estimates d f / d input by central finite differences with
// step h. f must rebuild its computation from the (mutated) input each call
// and return a scalar. The input matrix is restored before returning.
func NumericGrad(input *tensor.Matrix, h float64, f func() float64) *tensor.Matrix {
	g := tensor.New(input.Rows, input.Cols)
	for i := range input.Data {
		orig := input.Data[i]
		input.Data[i] = orig + h
		fp := f()
		input.Data[i] = orig - h
		fm := f()
		input.Data[i] = orig
		g.Data[i] = (fp - fm) / (2 * h)
	}
	return g
}

// MaxGradError returns the largest relative error between an analytic
// gradient and a numeric one, using max(1, |num|) as the denominator so tiny
// gradients compare absolutely.
func MaxGradError(analytic, numeric *tensor.Matrix) float64 {
	worst := 0.0
	for i := range analytic.Data {
		denom := math.Max(1, math.Abs(numeric.Data[i]))
		e := math.Abs(analytic.Data[i]-numeric.Data[i]) / denom
		if e > worst {
			worst = e
		}
	}
	return worst
}
