package autograd

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// composedSurrogate builds the historical fifteen-node PPO actor-head graph
// that ClippedSurrogateLoss fuses, exactly as internal/rl composed it.
func composedSurrogate(tp *Tape, logits *Value, actions []int, oldLogp, adv *tensor.Matrix, clip, entCoef float64) (loss, objective, entropy, actLogp, ratio *Value) {
	logp := LogSoftmaxRows(logits)
	actLogp = PickCols(logp, actions)
	ratio = Exp(Sub(actLogp, tp.Const(oldLogp)))
	advC := tp.Const(adv)
	surr1 := Mul(ratio, advC)
	surr2 := Mul(Clamp(ratio, 1-clip, 1+clip), advC)
	objective = Mean(Minimum(surr1, surr2))
	probs := SoftmaxRows(logits)
	entropy = Neg(Mean(SumRows(Mul(probs, logp))))
	loss = Sub(Neg(objective), Scale(entropy, entCoef))
	return loss, objective, entropy, actLogp, ratio
}

func bitsEqual(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

func requireSameBits(t *testing.T, label string, want, got []float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: length mismatch %d vs %d", label, len(want), len(got))
	}
	for i := range want {
		if !bitsEqual(want[i], got[i]) {
			t.Fatalf("%s: element %d differs: composed %v (%#x) vs fused %v (%#x)",
				label, i, want[i], math.Float64bits(want[i]), got[i], math.Float64bits(got[i]))
		}
	}
}

// TestClippedSurrogateLossMatchesComposedOps pins the fused actor head to the
// op composition it replaces: loss, stats outputs, and the gradient reaching
// the logits must be bitwise identical, across ratio regimes that exercise
// both clamp branches, Minimum ties (zero advantage), and entCoef == 0.
func TestClippedSurrogateLossMatchesComposedOps(t *testing.T) {
	cases := []struct {
		name          string
		n, a          int
		clip, entCoef float64
		spread        float64 // scale of oldLogp perturbation: larger → more clipping
		seed          int64
	}{
		{"small", 5, 3, 0.2, 0.01, 0.1, 1},
		{"wide-actions", 7, 9, 0.2, 0.01, 0.5, 2},
		{"minibatch", 64, 9, 0.2, 0.01, 1.5, 3},
		{"no-entropy", 16, 4, 0.2, 0, 0.5, 4},
		{"tight-clip", 32, 6, 0.05, 0.02, 1.0, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(tc.seed))
			logits := tensor.RandNormal(rng, tc.n, tc.a, 0, 2)
			actions := make([]int, tc.n)
			oldLogp := tensor.New(tc.n, 1)
			adv := tensor.New(tc.n, 1)
			// oldLogp near the current log-prob so ratios cluster around 1,
			// with spread pushing some outside [1-clip, 1+clip]. A few zero
			// advantages force surr1 == surr2 ties in Minimum.
			lsm := logits.Clone()
			logits.LogSoftmaxRowsInto(lsm)
			for i := 0; i < tc.n; i++ {
				actions[i] = rng.Intn(tc.a)
				oldLogp.Data[i] = lsm.Data[i*tc.a+actions[i]] + tc.spread*rng.NormFloat64()
				if i%5 == 0 {
					adv.Data[i] = 0
				} else {
					adv.Data[i] = rng.NormFloat64()
				}
			}

			ct := NewTape()
			cx := ct.Var(logits)
			loss, obj, ent, actLogp, ratio := composedSurrogate(ct, cx, actions, oldLogp, adv, tc.clip, tc.entCoef)
			loss.Backward()

			ft := NewTape()
			fx := ft.Var(logits)
			res := ClippedSurrogateLoss(fx, actions, oldLogp, adv, tc.clip, tc.entCoef)
			res.Loss.Backward()

			if !bitsEqual(loss.Item(), res.Loss.Item()) {
				t.Fatalf("loss differs: composed %v vs fused %v", loss.Item(), res.Loss.Item())
			}
			if !bitsEqual(obj.Item(), res.Objective) {
				t.Fatalf("objective differs: composed %v vs fused %v", obj.Item(), res.Objective)
			}
			if !bitsEqual(ent.Item(), res.Entropy) {
				t.Fatalf("entropy differs: composed %v vs fused %v", ent.Item(), res.Entropy)
			}
			requireSameBits(t, "actLogp", actLogp.Data.Data, res.ActLogp)
			requireSameBits(t, "ratio", ratio.Data.Data, res.Ratio)
			requireSameBits(t, "logits grad", cx.Grad.Data, fx.Grad.Data)
		})
	}
}

// TestClippedSurrogateLossTapeReuse runs the fused op twice on one pooled
// tape with a Reset in between; recycled scratch must not change any output.
func TestClippedSurrogateLossTapeReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n, a = 12, 5
	logits := tensor.RandNormal(rng, n, a, 0, 1)
	actions := make([]int, n)
	oldLogp := tensor.RandNormal(rng, n, 1, -1.5, 0.3)
	adv := tensor.RandNormal(rng, n, 1, 0, 1)
	for i := range actions {
		actions[i] = rng.Intn(a)
	}

	tape := NewPooledTape(tensor.NewPool())
	run := func() (float64, *tensor.Matrix) {
		tape.Reset()
		x := tape.Var(logits)
		res := ClippedSurrogateLoss(x, actions, oldLogp, adv, 0.2, 0.01)
		res.Loss.Backward()
		return res.Loss.Item(), x.Grad.Clone()
	}
	l1, g1 := run()
	l2, g2 := run()
	if !bitsEqual(l1, l2) {
		t.Fatalf("loss changed across tape reuse: %v vs %v", l1, l2)
	}
	requireSameBits(t, "grad across reuse", g1.Data, g2.Data)
}

func TestClippedSurrogateLossActionOutOfRangePanics(t *testing.T) {
	tape := NewTape()
	logits := tape.Var(tensor.New(2, 3))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range action")
		}
	}()
	ClippedSurrogateLoss(logits, []int{0, 3}, tensor.New(2, 1), tensor.New(2, 1), 0.2, 0.01)
}
