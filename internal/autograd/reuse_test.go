package autograd

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// buildLoss constructs a representative PPO-shaped graph (dense layers,
// softmax machinery, clip/min surrogate, reductions) on the given tape and
// runs Backward, returning the loss value. All parameter gradients
// accumulate into the supplied buffers.
func buildLoss(tape *Tape, x, w1, b1, w2, b2 *tensor.Matrix, g1, gb1, g2, gb2 *tensor.Matrix, idx []int) float64 {
	xc := tape.Const(x)
	w1v := tape.Param(w1, g1)
	b1v := tape.Param(b1, gb1)
	w2v := tape.Param(w2, g2)
	b2v := tape.Param(b2, gb2)

	h := Tanh(AddRow(MatMul(xc, w1v), b1v))
	logits := AddRow(MatMul(h, w2v), b2v)
	logp := LogSoftmaxRows(logits)
	picked := PickCols(logp, idx)
	ratio := Exp(Sub(picked, Scale(picked, 0.5))) // synthetic old-logp
	clipped := Clamp(ratio, 0.8, 1.2)
	surr := Minimum(ratio, clipped)
	probs := SoftmaxRows(logits)
	ent := Neg(Mean(SumRows(Mul(probs, logp))))
	loss := Sub(Neg(Mean(surr)), Scale(ent, 0.01))
	loss.Backward()
	return loss.Item()
}

// TestPooledTapeResetMatchesFreshTapes asserts the core pooled-tape
// guarantee: rebuilding a graph on a Reset pooled tape produces bitwise
// identical losses and gradients to building it on a fresh unpooled tape
// every time.
func TestPooledTapeResetMatchesFreshTapes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const batch, in, hid, out = 7, 11, 16, 5
	x := tensor.RandNormal(rng, batch, in, 0, 1)
	w1 := tensor.RandNormal(rng, in, hid, 0, 0.5)
	b1 := tensor.RandNormal(rng, 1, hid, 0, 0.1)
	w2 := tensor.RandNormal(rng, hid, out, 0, 0.5)
	b2 := tensor.RandNormal(rng, 1, out, 0, 0.1)
	idx := make([]int, batch)
	for i := range idx {
		idx[i] = rng.Intn(out)
	}

	grads := func() (a, b, c, d *tensor.Matrix) {
		return tensor.New(in, hid), tensor.New(1, hid), tensor.New(hid, out), tensor.New(1, out)
	}

	pool := tensor.NewPool()
	pooled := NewPooledTape(pool)
	for round := 0; round < 4; round++ {
		fg1, fgb1, fg2, fgb2 := grads()
		fresh := NewTape()
		wantLoss := buildLoss(fresh, x, w1, b1, w2, b2, fg1, fgb1, fg2, fgb2, idx)

		pg1, pgb1, pg2, pgb2 := grads()
		pooled.Reset()
		gotLoss := buildLoss(pooled, x, w1, b1, w2, b2, pg1, pgb1, pg2, pgb2, idx)

		if math.Float64bits(wantLoss) != math.Float64bits(gotLoss) {
			t.Fatalf("round %d: loss %v (pooled) != %v (fresh)", round, gotLoss, wantLoss)
		}
		for name, pair := range map[string][2]*tensor.Matrix{
			"w1": {pg1, fg1}, "b1": {pgb1, fgb1}, "w2": {pg2, fg2}, "b2": {pgb2, fgb2},
		} {
			got, want := pair[0], pair[1]
			for i := range want.Data {
				if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
					t.Fatalf("round %d: grad %s[%d] = %v, want %v", round, name, i, got.Data[i], want.Data[i])
				}
			}
		}
	}
	if gets, hits := pool.Stats(); hits == 0 {
		t.Fatalf("pooled tape never recycled a matrix (gets=%d hits=%d)", gets, hits)
	}
}

// TestPooledTapeSteadyStateDoesNotGrow checks that Reset actually recycles
// node structs: the spare list bounds total node allocation across rebuilds.
func TestPooledTapeSteadyStateDoesNotGrow(t *testing.T) {
	pool := tensor.NewPool()
	tape := NewPooledTape(pool)
	x := tensor.Full(3, 4, 1)
	w := tensor.Full(4, 2, 0.5)
	g := tensor.New(4, 2)

	var lens []int
	for i := 0; i < 5; i++ {
		tape.Reset()
		g.Zero()
		loss := Mean(Square(MatMul(tape.Const(x), tape.Param(w, g))))
		loss.Backward()
		lens = append(lens, tape.Len())
	}
	for i := 1; i < len(lens); i++ {
		if lens[i] != lens[0] {
			t.Fatalf("tape length drifted across resets: %v", lens)
		}
	}
	gets, hits := pool.Stats()
	if hits == 0 || gets == 0 {
		t.Fatalf("expected pool traffic, got gets=%d hits=%d", gets, hits)
	}
}

// TestParamGradSurvivesReset ensures Reset never recycles caller-owned
// Param gradient buffers.
func TestParamGradSurvivesReset(t *testing.T) {
	pool := tensor.NewPool()
	tape := NewPooledTape(pool)
	w := tensor.Full(2, 2, 1)
	g := tensor.New(2, 2)
	loss := Mean(Square(tape.Param(w, g)))
	loss.Backward()
	want := append([]float64(nil), g.Data...)
	tape.Reset()
	// Drain the pool into fresh buffers; if g had been recycled, one of
	// these would alias it and the next write would corrupt want.
	for i := 0; i < 8; i++ {
		pool.Get(2, 2).Fill(99)
	}
	for i, v := range g.Data {
		if v != want[i] {
			t.Fatalf("param grad corrupted after Reset: %v", g.Data)
		}
	}
}
