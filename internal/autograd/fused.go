package autograd

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// SurrogateResult bundles the outputs of ClippedSurrogateLoss. ActLogp and
// Ratio alias tape-owned scratch (valid until the next Reset); they feed the
// caller's KL / clip-fraction statistics without extra graph nodes.
type SurrogateResult struct {
	Loss      *Value  // 1x1 node: -objective - entCoef*entropy
	Objective float64 // mean clipped surrogate E[min(r·A, clip(r)·A)]
	Entropy   float64 // mean policy entropy H(π)
	ActLogp   []float64
	Ratio     []float64
}

// ClippedSurrogateLoss fuses the PPO actor-head op chain
//
//	logp    = LogSoftmaxRows(logits)
//	ratio   = Exp(PickCols(logp, actions) - oldLogp)
//	surr    = Minimum(ratio·A, Clamp(ratio, 1∓ε)·A)
//	entropy = -Mean(SumRows(SoftmaxRows(logits) ∘ logp))
//	loss    = -Mean(surr) - entCoef*entropy
//
// into a single destination-passing node: one forward pass over the batch
// and one two-phase backward that writes logits' gradient directly, instead
// of fifteen tape nodes each with their own output, gradient, and backward
// temporaries.
//
// The fusion is an optimization only — both passes transcribe the exact
// floating-point operation order of the composed ops, down to the
// AddInPlace-onto-zeroed-gradient identities and the order in which the
// softmax-entropy and log-softmax branches accumulate into logits.Grad, so
// results are bitwise identical to the composition (pinned by
// TestClippedSurrogateLossMatchesComposedOps). The subtle invariant forcing
// a single fused node rather than separate fused pieces: logp's gradient is
// the SUM of the entropy-product and picked-action contributions, and the
// log-softmax backward of that sum is not bitwise equal to the sum of the
// two backwards taken separately.
//
// actions, oldLogp (Nx1), and advantage (Nx1) are captured without copying;
// callers must not mutate them until after Backward (or the next Reset).

// Per-row mask bits stored in the fused node's masks scratch (values 0..3 are
// exactly representable, so the float round-trip is lossless).
const (
	surrogateFromA  = 1 // Minimum took surr1 (ties included)
	surrogateInside = 2 // Clamp passed the ratio through unclipped
)
func ClippedSurrogateLoss(logits *Value, actions []int, oldLogp, advantage *tensor.Matrix, clip, entCoef float64) SurrogateResult {
	t := logits.tape
	n, a := logits.Data.Rows, logits.Data.Cols
	if len(actions) != n {
		panic(fmt.Sprintf("autograd: ClippedSurrogateLoss got %d actions for %d rows", len(actions), n))
	}
	if oldLogp.Rows != n || oldLogp.Cols != 1 {
		panic(fmt.Sprintf("autograd: ClippedSurrogateLoss oldLogp is %dx%d, want %dx1", oldLogp.Rows, oldLogp.Cols, n))
	}
	if advantage.Rows != n || advantage.Cols != 1 {
		panic(fmt.Sprintf("autograd: ClippedSurrogateLoss advantage is %dx%d, want %dx1", advantage.Rows, advantage.Cols, n))
	}
	lo, hi := 1-clip, 1+clip

	// Forward state the backward pass reads; scratch lives until Reset.
	logp := t.allocScratch(n, a)
	probs := t.allocScratch(n, a)
	ratio := t.allocScratch(n, 1)
	actLogp := t.allocScratch(n, 1)
	masks := t.allocScratch(n, 1) // surrogateFromA | surrogateInside bits

	logits.Data.LogSoftmaxRowsInto(logp)
	logits.Data.SoftmaxRowsInto(probs)

	minSum := 0.0
	for i := 0; i < n; i++ {
		ai := actions[i]
		if ai < 0 || ai >= a {
			panic(fmt.Sprintf("autograd: ClippedSurrogateLoss action %d out of range [0,%d)", ai, a))
		}
		al := logp.Data[i*a+ai]
		actLogp.Data[i] = al
		r := math.Exp(al - oldLogp.Data[i])
		ratio.Data[i] = r
		surr1 := r * advantage.Data[i]
		var c float64
		mask := 0
		switch {
		case r < lo:
			c = lo
		case r > hi:
			c = hi
		default:
			c = r
			mask |= surrogateInside
		}
		surr2 := c * advantage.Data[i]
		if surr1 <= surr2 {
			mask |= surrogateFromA
			minSum += surr1
		} else {
			minSum += surr2
		}
		masks.Data[i] = float64(mask)
	}
	objective := minSum / float64(n)

	entSum := 0.0
	for i := 0; i < n; i++ {
		lrow := logp.Data[i*a : (i+1)*a]
		prow := probs.Data[i*a : (i+1)*a]
		rowSum := 0.0
		for j := range prow {
			rowSum += prow[j] * lrow[j]
		}
		entSum += rowSum
	}
	entropy := -1 * (entSum / float64(n))
	lossVal := (-1 * objective) - (entCoef * entropy)

	out := t.opNode(1, 1, logits.requiresGrad)
	out.Data.Data[0] = lossVal
	// Closure-free backward: record the forward state in the node's slots and
	// let surrogateBackward (backward.go) run the two-phase gradient.
	out.op = opSurrogate
	out.srcA = logits
	out.aux0, out.aux1, out.aux2, out.aux3, out.aux4 = logp, probs, ratio, masks, advantage
	out.auxIdx = actions
	out.auxS0 = entCoef
	return SurrogateResult{
		Loss:      out,
		Objective: objective,
		Entropy:   entropy,
		ActLogp:   actLogp.Data,
		Ratio:     ratio.Data,
	}
}
