package autograd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

const gradTol = 1e-6

// checkGrad verifies the analytic gradient of build(input-node) w.r.t. input
// against central finite differences. build must produce a scalar Value.
func checkGrad(t *testing.T, name string, input *tensor.Matrix, build func(tp *Tape, x *Value) *Value) {
	t.Helper()
	tape := NewTape()
	x := tape.Var(input)
	out := build(tape, x)
	out.Backward()
	analytic := x.Grad.Clone()

	numeric := NumericGrad(input, 1e-6, func() float64 {
		tp := NewTape()
		return build(tp, tp.Var(input)).Item()
	})
	if err := MaxGradError(analytic, numeric); err > gradTol {
		t.Fatalf("%s: gradient error %v > %v\nanalytic=%v\nnumeric=%v", name, err, gradTol, analytic, numeric)
	}
}

func TestGradMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := tensor.RandNormal(rng, 3, 4, 0, 1)
	b := tensor.RandNormal(rng, 4, 2, 0, 1)
	checkGrad(t, "matmul-left", a, func(tp *Tape, x *Value) *Value {
		return Sum(MatMul(x, tp.Const(b)))
	})
	checkGrad(t, "matmul-right", b, func(tp *Tape, x *Value) *Value {
		return Sum(MatMul(tp.Const(a), x))
	})
}

func TestGradAddSubMulDiv(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := tensor.RandNormal(rng, 2, 3, 0, 1)
	b := tensor.RandUniform(rng, 2, 3, 0.5, 2.0) // positive for Div
	checkGrad(t, "add", a, func(tp *Tape, x *Value) *Value { return Sum(Add(x, tp.Const(b))) })
	checkGrad(t, "sub", a, func(tp *Tape, x *Value) *Value { return Sum(Sub(x, tp.Const(b))) })
	checkGrad(t, "mul", a, func(tp *Tape, x *Value) *Value { return Sum(Mul(x, tp.Const(b))) })
	checkGrad(t, "div-num", a, func(tp *Tape, x *Value) *Value { return Sum(Div(x, tp.Const(b))) })
	checkGrad(t, "div-den", b, func(tp *Tape, x *Value) *Value { return Sum(Div(tp.Const(a), x)) })
}

func TestGradAddRow(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := tensor.RandNormal(rng, 4, 3, 0, 1)
	bias := tensor.RandNormal(rng, 1, 3, 0, 1)
	checkGrad(t, "addrow-main", a, func(tp *Tape, x *Value) *Value {
		return Sum(Square(AddRow(x, tp.Const(bias))))
	})
	checkGrad(t, "addrow-bias", bias, func(tp *Tape, x *Value) *Value {
		return Sum(Square(AddRow(tp.Const(a), x)))
	})
}

func TestGradActivations(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := tensor.RandNormal(rng, 3, 3, 0, 1.5)
	checkGrad(t, "tanh", a, func(tp *Tape, x *Value) *Value { return Sum(Tanh(x)) })
	checkGrad(t, "sigmoid", a, func(tp *Tape, x *Value) *Value { return Sum(Sigmoid(x)) })
	checkGrad(t, "exp", a, func(tp *Tape, x *Value) *Value { return Sum(Exp(x)) })
	checkGrad(t, "square", a, func(tp *Tape, x *Value) *Value { return Sum(Square(x)) })

	// ReLU and Clamp need inputs away from their kinks for finite differences.
	shifted := a.Apply(func(v float64) float64 {
		if math.Abs(v) < 0.05 {
			return v + 0.2
		}
		return v
	})
	checkGrad(t, "relu", shifted, func(tp *Tape, x *Value) *Value { return Sum(ReLU(x)) })
	checkGrad(t, "clamp", shifted, func(tp *Tape, x *Value) *Value { return Sum(Clamp(x, -0.8, 0.8)) })

	pos := tensor.RandUniform(rng, 3, 3, 0.5, 3)
	checkGrad(t, "log", pos, func(tp *Tape, x *Value) *Value { return Sum(Log(x)) })
}

func TestGradScaleNegAddScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := tensor.RandNormal(rng, 2, 2, 0, 1)
	checkGrad(t, "scale", a, func(tp *Tape, x *Value) *Value { return Sum(Scale(x, 2.5)) })
	checkGrad(t, "neg", a, func(tp *Tape, x *Value) *Value { return Sum(Neg(x)) })
	checkGrad(t, "addscalar", a, func(tp *Tape, x *Value) *Value { return Sum(Square(AddScalar(x, 3))) })
}

func TestGradReductions(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := tensor.RandNormal(rng, 3, 4, 0, 1)
	checkGrad(t, "mean", a, func(tp *Tape, x *Value) *Value { return Mean(Square(x)) })
	checkGrad(t, "sumrows", a, func(tp *Tape, x *Value) *Value { return Sum(Square(SumRows(x))) })
}

func TestGradMinimum(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := tensor.RandNormal(rng, 3, 3, 0, 1)
	b := tensor.RandNormal(rng, 3, 3, 0, 1)
	// Perturb ties away (finite differences break at the kink).
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) < 0.05 {
			a.Data[i] += 0.2
		}
	}
	checkGrad(t, "min-a", a, func(tp *Tape, x *Value) *Value { return Sum(Minimum(x, tp.Const(b))) })
	checkGrad(t, "min-b", b, func(tp *Tape, x *Value) *Value { return Sum(Minimum(tp.Const(a), x)) })
}

func TestGradSoftmax(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := tensor.RandNormal(rng, 3, 5, 0, 2)
	w := tensor.RandNormal(rng, 3, 5, 0, 1) // random weighting so grads are nontrivial
	checkGrad(t, "softmaxrows", a, func(tp *Tape, x *Value) *Value {
		return Sum(Mul(SoftmaxRows(x), tp.Const(w)))
	})
	checkGrad(t, "logsoftmaxrows", a, func(tp *Tape, x *Value) *Value {
		return Sum(Mul(LogSoftmaxRows(x), tp.Const(w)))
	})
}

func TestGradPickCols(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := tensor.RandNormal(rng, 4, 6, 0, 1)
	idx := []int{2, 0, 5, 3}
	checkGrad(t, "pickcols", a, func(tp *Tape, x *Value) *Value {
		return Sum(Square(PickCols(LogSoftmaxRows(x), idx)))
	})
}

func TestGradConcatCols(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := tensor.RandNormal(rng, 3, 2, 0, 1)
	b := tensor.RandNormal(rng, 3, 4, 0, 1)
	checkGrad(t, "concat-a", a, func(tp *Tape, x *Value) *Value {
		return Sum(Square(ConcatCols(x, tp.Const(b))))
	})
	checkGrad(t, "concat-b", b, func(tp *Tape, x *Value) *Value {
		return Sum(Square(ConcatCols(tp.Const(a), x)))
	})
}

func TestGradMLPChain(t *testing.T) {
	// A full 2-layer MLP with MSE loss: the composition every agent uses.
	rng := rand.New(rand.NewSource(11))
	x := tensor.RandNormal(rng, 5, 8, 0, 1)
	w1 := tensor.XavierUniform(rng, 8, 16).T() // 8x16? Xavier gives fanOut x fanIn; we want 8->16 as x·W with W 8x16
	w1 = tensor.RandNormal(rng, 8, 16, 0, 0.5)
	b1 := tensor.RandNormal(rng, 1, 16, 0, 0.1)
	w2 := tensor.RandNormal(rng, 16, 1, 0, 0.5)
	b2 := tensor.RandNormal(rng, 1, 1, 0, 0.1)
	target := tensor.RandNormal(rng, 5, 1, 0, 1)

	build := func(tp *Tape, params map[string]*Value) *Value {
		h := Tanh(AddRow(MatMul(tp.Const(x), params["w1"]), params["b1"]))
		y := AddRow(MatMul(h, params["w2"]), params["b2"])
		return Mean(Square(Sub(y, tp.Const(target))))
	}
	mats := map[string]*tensor.Matrix{"w1": w1, "b1": b1, "w2": w2, "b2": b2}
	for name, m := range mats {
		tape := NewTape()
		params := map[string]*Value{}
		for n2, m2 := range mats {
			if n2 == name {
				params[n2] = tape.Var(m2)
			} else {
				params[n2] = tape.Const(m2)
			}
		}
		out := build(tape, params)
		out.Backward()
		analytic := params[name].Grad.Clone()
		numeric := NumericGrad(m, 1e-6, func() float64 {
			tp := NewTape()
			ps := map[string]*Value{}
			for n2, m2 := range mats {
				ps[n2] = tp.Const(m2)
			}
			return build(tp, ps).Item()
		})
		if err := MaxGradError(analytic, numeric); err > gradTol {
			t.Fatalf("MLP grad wrt %s: error %v", name, err)
		}
	}
}

func TestParamAccumulatesIntoBuffer(t *testing.T) {
	data := tensor.FromSlice(1, 2, []float64{2, 3})
	grad := tensor.New(1, 2)
	tape := NewTape()
	p := tape.Param(data, grad)
	Sum(Square(p)).Backward()
	want := tensor.FromSlice(1, 2, []float64{4, 6})
	if !grad.ApproxEqual(want, 1e-12) {
		t.Fatalf("Param grad buffer = %v, want %v", grad, want)
	}
	if p.Grad != grad {
		t.Fatal("Param should use the external buffer")
	}
}

func TestParamShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTape().Param(tensor.New(2, 2), tensor.New(2, 3))
}

func TestBackwardNonScalarPanics(t *testing.T) {
	tape := NewTape()
	v := tape.Var(tensor.New(2, 2))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	v.Backward()
}

func TestItemNonScalarPanics(t *testing.T) {
	tape := NewTape()
	v := tape.Var(tensor.New(2, 2))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	v.Item()
}

func TestCrossTapePanics(t *testing.T) {
	t1, t2 := NewTape(), NewTape()
	a := t1.Var(tensor.New(1, 1))
	b := t2.Var(tensor.New(1, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Add(a, b)
}

func TestConstReceivesNoGrad(t *testing.T) {
	tape := NewTape()
	c := tape.Const(tensor.FromSlice(1, 1, []float64{2}))
	v := tape.Var(tensor.FromSlice(1, 1, []float64{3}))
	Mul(c, v).Backward()
	if c.Grad != nil {
		t.Fatal("Const should not accumulate gradient")
	}
	if v.Grad.Data[0] != 2 {
		t.Fatalf("Var grad = %v, want 2", v.Grad.Data[0])
	}
}

func TestGradAccumulationAcrossUses(t *testing.T) {
	// f(x) = x·x + 3x  =>  f'(x) = 2x + 3
	tape := NewTape()
	x := tape.Var(tensor.FromSlice(1, 1, []float64{5}))
	out := Add(Mul(x, x), Scale(x, 3))
	out.Backward()
	if got := x.Grad.Data[0]; math.Abs(got-13) > 1e-12 {
		t.Fatalf("grad = %v, want 13", got)
	}
}

func TestMinimumTieGoesToA(t *testing.T) {
	tape := NewTape()
	a := tape.Var(tensor.FromSlice(1, 1, []float64{1}))
	b := tape.Var(tensor.FromSlice(1, 1, []float64{1}))
	Minimum(a, b).Backward()
	if a.Grad.Data[0] != 1 {
		t.Fatal("tie gradient should go to a")
	}
	if b.Grad != nil && b.Grad.Data[0] != 0 {
		t.Fatal("tie gradient should not go to b")
	}
}

func TestPickColsOutOfRangePanics(t *testing.T) {
	tape := NewTape()
	a := tape.Var(tensor.New(2, 3))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PickCols(a, []int{0, 3})
}

// Property: for random small MLP losses, the analytic gradient matches
// numeric within tolerance. This is the load-bearing invariant of the engine.
func TestPropGradcheckRandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, in, hidden := 1+r.Intn(3), 1+r.Intn(4), 1+r.Intn(4)
		x := tensor.RandNormal(r, rows, in, 0, 1)
		w := tensor.RandNormal(r, in, hidden, 0, 1)
		build := func(tp *Tape, wv *Value) *Value {
			h := Tanh(MatMul(tp.Const(x), wv))
			return Mean(Square(h))
		}
		tape := NewTape()
		wv := tape.Var(w)
		build(tape, wv).Backward()
		analytic := wv.Grad.Clone()
		numeric := NumericGrad(w, 1e-6, func() float64 {
			tp := NewTape()
			return build(tp, tp.Const(w)).Item()
		})
		return MaxGradError(analytic, numeric) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkForwardBackwardMLP(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.RandNormal(rng, 64, 128, 0, 1)
	w1 := tensor.RandNormal(rng, 128, 64, 0, 0.1)
	b1 := tensor.New(1, 64)
	w2 := tensor.RandNormal(rng, 64, 9, 0, 0.1)
	b2 := tensor.New(1, 9)
	g1, gb1 := tensor.New(128, 64), tensor.New(1, 64)
	g2, gb2 := tensor.New(64, 9), tensor.New(1, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g1.Zero()
		gb1.Zero()
		g2.Zero()
		gb2.Zero()
		tp := NewTape()
		h := Tanh(AddRow(MatMul(tp.Const(x), tp.Param(w1, g1)), tp.Param(b1, gb1)))
		y := AddRow(MatMul(h, tp.Param(w2, g2)), tp.Param(b2, gb2))
		Mean(Square(y)).Backward()
	}
}
