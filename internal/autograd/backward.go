package autograd

import "math"

// opcode identifies a hot operator whose backward pass runs through the
// static opBackward dispatch instead of a heap-allocated closure. Every case
// transcribes the corresponding historical closure body verbatim, so the
// dispatch change is invisible to the numerics (the gradcheck suite and the
// rl package's golden update tests pin this).
type opcode uint8

const (
	opNone opcode = iota
	opMatMul
	opAdd
	opSub
	opAddRow
	opScale
	opTanh
	opSquare
	opMean
	opMinimum
	opClamp
	opSurrogate
)

func opBackward(n *Value) {
	t := n.tape
	switch n.op {
	case opMatMul:
		a, b := n.srcA, n.srcB
		g := n.Grad
		if a.requiresGrad {
			tmp := t.alloc(a.Data.Rows, a.Data.Cols)
			g.MatMulTransBInto(b.Data, tmp)
			a.accum(tmp)
			t.release(tmp)
		}
		if b.requiresGrad {
			tmp := t.alloc(b.Data.Rows, b.Data.Cols)
			a.Data.MatMulTransAInto(g, tmp)
			b.accum(tmp)
			t.release(tmp)
		}
	case opAdd:
		n.srcA.accum(n.Grad)
		n.srcB.accum(n.Grad)
	case opSub:
		n.srcA.accum(n.Grad)
		n.srcB.accumScaled(n.Grad, -1)
	case opAddRow:
		a, bias := n.srcA, n.srcB
		a.accum(n.Grad)
		if bias.requiresGrad {
			tmp := t.alloc(1, n.Data.Cols)
			n.Grad.SumColsInto(tmp)
			bias.accum(tmp)
			t.release(tmp)
		}
	case opScale:
		n.srcA.accumScaled(n.Grad, n.auxS0)
	case opTanh:
		// d tanh = 1 - tanh²; fused into one accumulation pass (bitwise
		// identical to the ApplyInto + MulElemInto + accum it replaces).
		if a := n.srcA; a.requiresGrad {
			a.ensureGrad().AddTanhGradInPlace(n.Grad, n.Data)
		}
	case opSquare:
		a := n.srcA
		tmp := t.alloc(n.Data.Rows, n.Data.Cols)
		n.Grad.MulElemInto(a.Data, tmp)
		a.accumScaled(tmp, 2)
		t.release(tmp)
	case opMean:
		a := n.srcA
		tmp := t.alloc(a.Data.Rows, a.Data.Cols)
		tmp.Fill(n.Grad.Data[0] / float64(len(a.Data.Data)))
		a.accum(tmp)
		t.release(tmp)
	case opMinimum:
		a, b := n.srcA, n.srcB
		fromA := n.aux0
		da := t.alloc(n.Data.Rows, n.Data.Cols)
		db := t.alloc(n.Data.Rows, n.Data.Cols)
		for i, fa := range fromA.Data {
			if fa == 1 {
				da.Data[i] = n.Grad.Data[i]
			} else {
				db.Data[i] = n.Grad.Data[i]
			}
		}
		a.accum(da)
		b.accum(db)
		t.release(da)
		t.release(db)
	case opClamp:
		inside := n.aux0
		tmp := t.alloc(n.Data.Rows, n.Data.Cols)
		for i, in := range inside.Data {
			if in == 1 {
				tmp.Data[i] = n.Grad.Data[i]
			}
		}
		n.srcA.accum(tmp)
		t.release(tmp)
	case opSurrogate:
		surrogateBackward(n)
	}
}

// surrogateBackward is the two-phase backward of ClippedSurrogateLoss; see
// fused.go for the derivation and the slot layout.
func surrogateBackward(out *Value) {
	t := out.tape
	logits := out.srcA
	logp, probs, ratio, masks, advantage := out.aux0, out.aux1, out.aux2, out.aux3, out.aux4
	actions := out.auxIdx
	entCoef := out.auxS0
	n, a := logp.Rows, logp.Cols

	g := out.Grad.Data[0]
	// Scalar grad chain down both branches of the loss, with the composed
	// ops' 0+x accumulation-onto-zeroed-buffer steps kept explicit (they
	// matter only for signed zeros, but exactness is the whole point here).
	noG := 0 + g             // Neg(objective) node
	scG := 0 + -1*g          // Scale(entropy, entCoef) node
	neG := 0 + entCoef*scG   // entropy node
	meG := 0 + -1*neG        // Mean(SumRows(...)) node
	fill := meG / float64(n) // grad broadcast by Mean's backward
	muG := 0 + (0 + fill)    // through SumRows then into Mul(probs, logp)
	objG := 0 + -1*noG
	mFill := objG / float64(n)
	minvG := 0 + mFill

	rowG := t.alloc(1, a)
	grow := rowG.Data

	// Phase A: the SoftmaxRows backward of the entropy product — the first
	// accumulation into logits.Grad in the composed graph.
	dA := t.alloc(n, a)
	for i := 0; i < n; i++ {
		lrow := logp.Data[i*a : (i+1)*a]
		prow := probs.Data[i*a : (i+1)*a]
		for j := range grow {
			grow[j] = 0 + muG*lrow[j]
		}
		dot := 0.0
		for j := range prow {
			dot += prow[j] * grow[j]
		}
		drow := dA.Data[i*a : (i+1)*a]
		for j := range drow {
			drow[j] = prow[j] * (grow[j] - dot)
		}
	}
	logits.accum(dA)
	t.release(dA)

	// Phase B: the LogSoftmaxRows backward over logp's combined gradient —
	// entropy product plus the picked-action surrogate chain.
	dB := t.alloc(n, a)
	for i := 0; i < n; i++ {
		mask := int(masks.Data[i])
		var m1g, m2g float64
		if mask&surrogateFromA != 0 {
			m1g = 0 + minvG
		} else {
			m2g = 0 + minvG
		}
		clG := 0 + m2g*advantage.Data[i]
		clPass := 0.0
		if mask&surrogateInside != 0 {
			clPass = clG
		}
		ratioG := (0 + clPass) + m1g*advantage.Data[i]
		sbG := 0 + ratioG*ratio.Data[i]
		pickG := 0 + sbG

		lrow := logp.Data[i*a : (i+1)*a]
		prow := probs.Data[i*a : (i+1)*a]
		for j := range grow {
			grow[j] = (0 + muG*prow[j]) + 0
		}
		ai := actions[i]
		grow[ai] = (0 + muG*prow[ai]) + pickG
		gsum := 0.0
		for _, gv := range grow {
			gsum += gv
		}
		drow := dB.Data[i*a : (i+1)*a]
		for j := range drow {
			drow[j] = grow[j] - math.Exp(lrow[j])*gsum
		}
	}
	logits.accum(dB)
	t.release(dB)
	t.release(rowG)
}
