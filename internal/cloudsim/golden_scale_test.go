package cloudsim

import (
	"math/rand"
	"testing"

	"repro/internal/workload"
)

// Golden degradation tests: each scalable-engine feature, dialed to its
// neutral setting, must reproduce the legacy engine bit-for-bit — same
// observations, same reward stream, same metrics.

// driveLockstep steps a and b with the same seeded action mix (random
// actions, so valid placements, invalid placements, and waits all occur)
// and fails on the first divergence in rewards, observations, or episode
// state. Both envs must have the same action-space size.
func driveLockstep(t *testing.T, a, b *Env, seed int64) {
	t.Helper()
	if a.NumActions() != b.NumActions() {
		t.Fatalf("action spaces differ: %d vs %d", a.NumActions(), b.NumActions())
	}
	if a.StateDim() != b.StateDim() {
		t.Fatalf("state dims differ: %d vs %d", a.StateDim(), b.StateDim())
	}
	rng := rand.New(rand.NewSource(seed))
	var obsA, obsB []float64
	step := 0
	for !a.Done() {
		if b.Done() {
			t.Fatalf("step %d: second env finished first", step)
		}
		obsA = a.Observe(obsA)
		obsB = b.Observe(obsB)
		for i := range obsA {
			if obsA[i] != obsB[i] {
				t.Fatalf("step %d: observation[%d] differs: %v vs %v", step, i, obsA[i], obsB[i])
			}
		}
		action := rng.Intn(a.NumActions())
		ra, rb := a.Step(action), b.Step(action)
		if ra != rb {
			t.Fatalf("step %d action %d: reward %v vs %v", step, action, ra, rb)
		}
		step++
	}
	if !b.Done() {
		t.Fatalf("first env finished at step %d, second still running", step)
	}
	a.Drain()
	b.Drain()
	ma, mb := a.Metrics(), b.Metrics()
	if ma != mb {
		t.Fatalf("metrics diverge:\n%+v\n%+v", ma, mb)
	}
	if len(a.Records()) != len(b.Records()) {
		t.Fatalf("record counts diverge: %d vs %d", len(a.Records()), len(b.Records()))
	}
	for i := range a.Records() {
		if a.Records()[i] != b.Records()[i] {
			t.Fatalf("record %d diverges: %+v vs %+v", i, a.Records()[i], b.Records()[i])
		}
	}
}

func goldenCluster() []VMSpec {
	return []VMSpec{
		{CPU: 4, Mem: 8}, {CPU: 8, Mem: 16}, {CPU: 2, Mem: 4},
		{CPU: 16, Mem: 64}, {CPU: 8, Mem: 32}, {CPU: 4, Mem: 8},
	}
}

// TestGoldenTopKIdentity: TopK ≥ len(VMs) (with no aggregate block) is the
// identity candidate mapping and must be bit-identical to the per-VM
// engine with PadVMs = TopK.
func TestGoldenTopKIdentity(t *testing.T) {
	specs := goldenCluster()
	for seed := int64(1); seed <= 5; seed++ {
		tasks := invWorkload(specs, 120, seed)

		legacy := DefaultConfig(specs)
		env := MustNewEnv(legacy, tasks)

		topk := legacy
		topk.TopK = len(specs) // == PadVMs, so NumActions and StateDim agree
		envK := MustNewEnv(topk, tasks)

		driveLockstep(t, env, envK, seed*31)
	}
}

// TestGoldenStreamingSampler: a SamplerSource must reproduce the
// materialized ClampTasks(Sample(...)) episode bit-for-bit — same reward
// stream, observations, metrics, and records.
func TestGoldenStreamingSampler(t *testing.T) {
	specs := goldenCluster()
	m := workload.Lookup(workload.Google)
	for seed := int64(1); seed <= 5; seed++ {
		const n = 120
		tasks := ClampTasks(m.Sample(rand.New(rand.NewSource(seed)), n), specs)
		cfg := DefaultConfig(specs)
		env := MustNewEnv(cfg, tasks)

		src := NewSamplerSource(m, seed, n, specs)
		envS, err := NewEnvSource(cfg, src)
		if err != nil {
			t.Fatal(err)
		}
		driveLockstep(t, env, envS, seed*37)
	}
}

// TestGoldenOversubOne: oversubscription ratio 1.0 must be bit-identical
// to the non-oversubscribed engine (ratio handling must not take any float
// round trip at 1.0).
func TestGoldenOversubOne(t *testing.T) {
	specs := goldenCluster()
	for seed := int64(1); seed <= 5; seed++ {
		tasks := invWorkload(specs, 120, seed)
		plain := DefaultConfig(specs)
		env := MustNewEnv(plain, tasks)

		one := plain
		one.Oversub = 1.0
		envO := MustNewEnv(one, tasks)

		driveLockstep(t, env, envO, seed*41)
	}
}

// TestGoldenSliceSourceReset: resetting onto an external SliceSource is
// bit-identical to the materialized Reset path (they share the admit loop).
func TestGoldenSliceSourceReset(t *testing.T) {
	specs := goldenCluster()
	tasks := invWorkload(specs, 120, 9)
	cfg := DefaultConfig(specs)
	env := MustNewEnv(cfg, tasks)
	envS := MustNewEnv(cfg, nil)
	envS.cfg.MaxSteps = env.cfg.MaxSteps // MustNewEnv(nil) derived a smaller cap
	if err := envS.ResetSource(NewSliceSource(tasks)); err != nil {
		t.Fatal(err)
	}
	driveLockstep(t, env, envS, 43)
}
