package cloudsim

// VoidMarker fills observation positions that do not exist in this client's
// cluster (padded VM slots, padded vCPU slots, empty queue slots) — the
// "void" positions of Fig. 6. Using −1 keeps voids distinguishable from
// idle-but-present resources (which encode as 0).
const VoidMarker = -1.0

// StateDim returns the observation length for a configuration:
//
//	L·d  (remaining capacity per VM slot)
//	L·U  (per-vCPU completion progress)
//	Q·d  (requested resources of the first Q queued tasks)
func StateDim(cfg Config) int {
	return cfg.PadVMs*NumResources + cfg.PadVMs*cfg.PadVCPUs + cfg.QueueDepth*NumResources
}

// StateDim returns the environment's observation length.
func (e *Env) StateDim() int { return StateDim(e.cfg) }

// Observe encodes the current state S = (S^VM, S^vCPU, S^Queue) into dst,
// allocating when dst is too small, and returns the buffer. Layout:
//
//	[0, L·d)            per-VM remaining CPU and memory, normalized by the
//	                    federation caps MaxCPU / MaxMem; void VMs = −1.
//	[L·d, L·d+L·U)      per-vCPU completion progress in (0,1]; idle = 0,
//	                    void (vCPU or VM beyond this cluster) = −1.
//	[L·d+L·U, end)      first Q queued tasks' normalized (CPU, Mem)
//	                    requests; empty queue slots = −1.
func (e *Env) Observe(dst []float64) []float64 {
	dim := e.StateDim()
	if cap(dst) < dim {
		dst = make([]float64, dim)
	}
	dst = dst[:dim]

	cfg := e.cfg
	off := 0
	// S^VM: remaining capacities.
	for i := 0; i < cfg.PadVMs; i++ {
		if i < len(e.vms) {
			dst[off] = float64(e.vms[i].freeCPU) / float64(cfg.MaxCPU)
			dst[off+1] = e.vms[i].freeMem / cfg.MaxMem
		} else {
			dst[off] = VoidMarker
			dst[off+1] = VoidMarker
		}
		off += NumResources
	}
	// S^vCPU: running-state progress.
	for i := 0; i < cfg.PadVMs; i++ {
		for k := 0; k < cfg.PadVCPUs; k++ {
			switch {
			case i >= len(e.vms) || k >= e.vms[i].Spec.CPU:
				dst[off] = VoidMarker
			default:
				dst[off] = e.vms[i].progress(k, e.now)
			}
			off++
		}
	}
	// S^Queue: requested resources of the visible queue prefix.
	for q := 0; q < cfg.QueueDepth; q++ {
		if q < len(e.queue) {
			dst[off] = float64(e.queue[q].CPU) / float64(cfg.MaxCPU)
			dst[off+1] = e.queue[q].Mem / cfg.MaxMem
		} else {
			dst[off] = VoidMarker
			dst[off+1] = VoidMarker
		}
		off += NumResources
	}
	return dst
}
