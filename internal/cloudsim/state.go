package cloudsim

// VoidMarker fills observation positions that do not exist in this client's
// cluster (padded VM slots, padded vCPU slots, empty queue slots) — the
// "void" positions of Fig. 6. Using −1 keeps voids distinguishable from
// idle-but-present resources (which encode as 0).
const VoidMarker = -1.0

// StateDim returns the observation length for a configuration:
//
//	L·d  (remaining capacity per VM slot)
//	L·U  (per-vCPU completion progress)
//	Q·d  (requested resources of the first Q queued tasks)
func StateDim(cfg Config) int {
	return cfg.PadVMs*NumResources + cfg.PadVMs*cfg.PadVCPUs + cfg.QueueDepth*NumResources
}

// StateDim returns the environment's observation length.
func (e *Env) StateDim() int { return StateDim(e.cfg) }

// Observe encodes the current state S = (S^VM, S^vCPU, S^Queue) into dst,
// allocating when dst is too small, and returns the buffer. Layout:
//
//	[0, L·d)            per-VM remaining CPU and memory, normalized by the
//	                    federation caps MaxCPU / MaxMem; void VMs = −1.
//	[L·d, L·d+L·U)      per-vCPU completion progress in (0,1]; idle = 0,
//	                    void (vCPU or VM beyond this cluster) = −1.
//	[L·d+L·U, end)      first Q queued tasks' normalized (CPU, Mem)
//	                    requests; empty queue slots = −1.
func (e *Env) Observe(dst []float64) []float64 {
	dim := e.StateDim()
	if cap(dst) < dim {
		dst = make([]float64, dim)
	}
	dst = dst[:dim]

	// Start from the precomputed prototype: every void marker, idle-vCPU
	// zero, and empty-queue slot is already in place, so the loops below
	// only write positions that actually carry state.
	copy(dst, e.obsProto)

	cfg := e.cfg
	// S^VM: remaining capacities of the real VMs.
	for i, vm := range e.vms {
		dst[NumResources*i] = float64(vm.freeCPU) / float64(cfg.MaxCPU)
		dst[NumResources*i+1] = vm.freeMem / cfg.MaxMem
	}
	// S^vCPU: running-state progress, read straight from each VM's dense
	// per-vCPU (owner, start, duration) arrays — no per-slot task lookups,
	// and idle vCPUs keep the prototype's zero.
	now := e.now
	off := cfg.PadVMs * NumResources
	for _, vm := range e.vms {
		for k, owner := range vm.vcpuOwner {
			if owner == -1 {
				continue
			}
			p := float64(now-vm.vcpuStart[k]+1) / float64(vm.vcpuDur[k])
			if p > 1 {
				p = 1
			}
			dst[off+k] = p
		}
		off += cfg.PadVCPUs
	}
	// S^Queue: requested resources of the visible queue prefix.
	off = cfg.PadVMs*NumResources + cfg.PadVMs*cfg.PadVCPUs
	qlen := e.QueueLen()
	if qlen > cfg.QueueDepth {
		qlen = cfg.QueueDepth
	}
	for q := 0; q < qlen; q++ {
		t := &e.queue[e.qhead+q]
		dst[off] = float64(t.CPU) / float64(cfg.MaxCPU)
		dst[off+1] = t.Mem / cfg.MaxMem
		off += NumResources
	}
	return dst
}

// buildObsProto precomputes the static part of the observation: void
// markers for padded VM slots, padded vCPUs, and empty queue positions,
// and zeros for idle-but-present vCPUs. Observe copies it into the output
// buffer and overwrites only the dynamic positions. The prototype depends
// solely on the configuration, so Reset reuses it.
func (e *Env) buildObsProto() {
	dim := e.StateDim()
	if len(e.obsProto) == dim {
		return
	}
	p := make([]float64, dim)
	cfg := e.cfg
	off := 0
	for i := 0; i < cfg.PadVMs; i++ {
		if i >= len(e.vms) {
			p[off] = VoidMarker
			p[off+1] = VoidMarker
		}
		off += NumResources
	}
	for i := 0; i < cfg.PadVMs; i++ {
		real := 0
		if i < len(e.vms) {
			real = e.vms[i].Spec.CPU
		}
		for k := real; k < cfg.PadVCPUs; k++ {
			p[off+k] = VoidMarker
		}
		off += cfg.PadVCPUs
	}
	for q := 0; q < cfg.QueueDepth; q++ {
		p[off] = VoidMarker
		p[off+1] = VoidMarker
		off += NumResources
	}
	e.obsProto = p
}
