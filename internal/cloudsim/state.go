package cloudsim

// VoidMarker fills observation positions that do not exist in this client's
// cluster (padded VM slots, padded vCPU slots, empty queue slots) — the
// "void" positions of Fig. 6. Using −1 keeps voids distinguishable from
// idle-but-present resources (which encode as 0).
const VoidMarker = -1.0

// padSlots returns the number of VM slots in the observation and action
// space: TopK candidate slots in scalable mode, PadVMs otherwise.
func (c *Config) padSlots() int {
	if c.TopK > 0 {
		return c.TopK
	}
	return c.PadVMs
}

// aggDim returns the width of the aggregate-utilization block appended to a
// scalable observation: CPU and memory utilization histograms of UtilBuckets
// buckets each, plus total used-CPU fraction, used-memory fraction, and a
// squashed queue length. Zero when the block is disabled.
func aggDim(cfg Config) int {
	if cfg.TopK > 0 && cfg.UtilBuckets > 0 {
		return 2*cfg.UtilBuckets + 3
	}
	return 0
}

// StateDim returns the observation length for a configuration:
//
//	L·d  (remaining capacity per VM slot; L = TopK in scalable mode)
//	L·U  (per-vCPU completion progress)
//	Q·d  (requested resources of the first Q queued tasks)
//	[2B+3 aggregate block, scalable mode with UtilBuckets = B > 0]
func StateDim(cfg Config) int {
	l := cfg.padSlots()
	return l*NumResources + l*cfg.PadVCPUs + cfg.QueueDepth*NumResources + aggDim(cfg)
}

// StateDim returns the environment's observation length.
func (e *Env) StateDim() int { return StateDim(e.cfg) }

// Observe encodes the current state S = (S^VM, S^vCPU, S^Queue) into dst,
// allocating when dst is too small, and returns the buffer. Layout:
//
//	[0, L·d)            per-VM remaining CPU and memory, normalized by the
//	                    federation caps MaxCPU / MaxMem; void VMs = −1.
//	[L·d, L·d+L·U)      per-vCPU completion progress in (0,1]; idle = 0,
//	                    void (vCPU or VM beyond this cluster) = −1.
//	[L·d+L·U, +Q·d)     first Q queued tasks' normalized (CPU, Mem)
//	                    requests; empty queue slots = −1.
//	[end−(2B+3), end)   aggregate block (scalable mode with UtilBuckets=B):
//	                    cluster-wide CPU and memory utilization histograms,
//	                    used-CPU and used-memory fractions, queue length
//	                    squashed to [0,1).
//
// In ranked top-k mode (0 < TopK < len(VMs)) the L VM slots describe the
// TopK best-fitting candidates for the head task (see Candidates), not
// fixed VM indices; with TopK ≥ len(VMs) slot i is VM i and the encoding is
// bit-identical to the per-VM observation with PadVMs = TopK.
func (e *Env) Observe(dst []float64) []float64 {
	dim := e.StateDim()
	if cap(dst) < dim {
		dst = make([]float64, dim)
	}
	dst = dst[:dim]
	if e.ranked {
		e.observeRanked(dst)
		return dst
	}

	// Start from the precomputed prototype: every void marker, idle-vCPU
	// zero, and empty-queue slot is already in place, so the loops below
	// only write positions that actually carry state.
	copy(dst, e.obsProto)

	cfg := e.cfg
	l := cfg.padSlots()
	// S^VM: remaining capacities of the real VMs.
	for i, vm := range e.vms {
		dst[NumResources*i] = float64(vm.freeCPU) / float64(cfg.MaxCPU)
		dst[NumResources*i+1] = vm.freeMem / cfg.MaxMem
	}
	// S^vCPU: running-state progress, read straight from each VM's dense
	// per-vCPU (owner, start, duration) arrays — no per-slot task lookups,
	// and idle vCPUs keep the prototype's zero.
	now := e.now
	off := l * NumResources
	for _, vm := range e.vms {
		for k, owner := range vm.vcpuOwner {
			if owner == -1 {
				continue
			}
			p := float64(now-vm.vcpuStart[k]+1) / float64(vm.vcpuDur[k])
			if p > 1 {
				p = 1
			}
			dst[off+k] = p
		}
		off += cfg.PadVCPUs
	}
	// S^Queue: requested resources of the visible queue prefix.
	off = l*NumResources + l*cfg.PadVCPUs
	qlen := e.QueueLen()
	if qlen > cfg.QueueDepth {
		qlen = cfg.QueueDepth
	}
	for q := 0; q < qlen; q++ {
		t := &e.queue[e.qhead+q]
		dst[off] = float64(t.CPU) / float64(cfg.MaxCPU)
		dst[off+1] = t.Mem / cfg.MaxMem
		off += NumResources
	}
	if e.aggOn {
		e.writeAgg(dst[dim-aggDim(cfg):])
	}
	return dst
}

// observeRanked writes the candidate-slot observation: the same three-part
// layout, but VM slot s describes the s-th ranked feasible candidate for
// the head task (void past the feasible prefix), followed by the optional
// aggregate block.
func (e *Env) observeRanked(dst []float64) {
	cfg := e.cfg
	k := cfg.TopK
	cand := e.Candidates()
	off := 0
	for s := 0; s < k; s++ {
		if vi := cand[s]; vi >= 0 {
			vm := e.vms[vi]
			dst[off] = float64(vm.freeCPU) / float64(cfg.MaxCPU)
			dst[off+1] = vm.freeMem / cfg.MaxMem
		} else {
			dst[off], dst[off+1] = VoidMarker, VoidMarker
		}
		off += NumResources
	}
	now := e.now
	for s := 0; s < k; s++ {
		vi := cand[s]
		if vi < 0 {
			for u := 0; u < cfg.PadVCPUs; u++ {
				dst[off+u] = VoidMarker
			}
			off += cfg.PadVCPUs
			continue
		}
		vm := e.vms[vi]
		for u, owner := range vm.vcpuOwner {
			if owner == -1 {
				dst[off+u] = 0
				continue
			}
			p := float64(now-vm.vcpuStart[u]+1) / float64(vm.vcpuDur[u])
			if p > 1 {
				p = 1
			}
			dst[off+u] = p
		}
		for u := len(vm.vcpuOwner); u < cfg.PadVCPUs; u++ {
			dst[off+u] = VoidMarker
		}
		off += cfg.PadVCPUs
	}
	qlen := e.QueueLen()
	if qlen > cfg.QueueDepth {
		qlen = cfg.QueueDepth
	}
	for q := 0; q < cfg.QueueDepth; q++ {
		if q < qlen {
			t := &e.queue[e.qhead+q]
			dst[off] = float64(t.CPU) / float64(cfg.MaxCPU)
			dst[off+1] = t.Mem / cfg.MaxMem
		} else {
			dst[off], dst[off+1] = VoidMarker, VoidMarker
		}
		off += NumResources
	}
	if e.aggOn {
		e.writeAgg(dst[off:])
	}
}

// writeAgg fills the 2B+3 aggregate block from the incrementally maintained
// histograms and totals: per-bucket VM fractions by CPU then memory
// utilization, cluster used-CPU and used-memory fractions, and the queue
// length squashed by q/(q+32).
func (e *Env) writeAgg(dst []float64) {
	b := e.cfg.UtilBuckets
	n := float64(len(e.vms))
	for i := 0; i < b; i++ {
		dst[i] = float64(e.histCPU[i]) / n
	}
	for i := 0; i < b; i++ {
		dst[b+i] = float64(e.histMem[i]) / n
	}
	dst[2*b] = float64(e.usedCPU) / float64(e.capCPUTot)
	dst[2*b+1] = e.usedMem / e.capMemTot
	ql := float64(e.QueueLen())
	dst[2*b+2] = ql / (ql + 32)
}

// buildObsProto precomputes the static part of the observation: void
// markers for padded VM slots, padded vCPUs, and empty queue positions,
// and zeros for idle-but-present vCPUs. Observe copies it into the output
// buffer and overwrites only the dynamic positions. The prototype depends
// solely on the configuration, so Reset reuses it. Ranked mode rewrites the
// whole buffer per Observe (candidates move), so its prototype is unused.
func (e *Env) buildObsProto() {
	dim := e.StateDim()
	if len(e.obsProto) == dim {
		return
	}
	p := make([]float64, dim)
	e.obsProto = p
	if e.cfg.TopK > 0 && e.cfg.TopK < len(e.vms) {
		return
	}
	cfg := e.cfg
	l := cfg.padSlots()
	off := 0
	for i := 0; i < l; i++ {
		if i >= len(e.vms) {
			p[off] = VoidMarker
			p[off+1] = VoidMarker
		}
		off += NumResources
	}
	for i := 0; i < l; i++ {
		real := 0
		if i < len(e.vms) {
			real = e.vms[i].capCPU
		}
		for k := real; k < cfg.PadVCPUs; k++ {
			p[off+k] = VoidMarker
		}
		off += cfg.PadVCPUs
	}
	for q := 0; q < cfg.QueueDepth; q++ {
		p[off] = VoidMarker
		p[off+1] = VoidMarker
		off += NumResources
	}
}
