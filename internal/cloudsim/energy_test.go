package cloudsim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/workload"
)

func TestPowerModelDraw(t *testing.T) {
	p := PowerModel{IdleWatts: 100, PeakWatts: 300}
	if p.draw(0.5, false) != 0 {
		t.Fatal("scaled-to-zero VM should draw nothing")
	}
	if p.draw(0, true) != 100 {
		t.Fatal("busy idle-util VM should draw idle watts")
	}
	if p.draw(1, true) != 300 {
		t.Fatal("fully utilized VM should draw peak watts")
	}
	if p.draw(0.5, true) != 200 {
		t.Fatal("linear interpolation wrong")
	}
}

func TestObjectiveWeightsNormalization(t *testing.T) {
	w := ObjectiveWeights{}.normalized(0.7)
	if w.Response != 0.7 || math.Abs(w.LoadBalance-0.3) > 1e-12 || w.Energy != 0 || w.Cost != 0 {
		t.Fatalf("zero weights should fall back to rho: %+v", w)
	}
	w = ObjectiveWeights{Response: 2, LoadBalance: 1, Energy: 1, Cost: 0}.normalized(0.5)
	if math.Abs(w.Response-0.5) > 1e-12 || math.Abs(w.Energy-0.25) > 1e-12 {
		t.Fatalf("normalization wrong: %+v", w)
	}
}

func TestEnergyAccountingIntegratesOverTime(t *testing.T) {
	cfg := DefaultConfig([]VMSpec{{CPU: 2, Mem: 8}})
	tasks := []workload.Task{{ID: 0, Arrival: 0, CPU: 2, Mem: 4, Duration: 3}}
	env := MustNewEnv(cfg, tasks)
	env.Step(0) // place; VM fully utilized for 3 slots
	env.Drain()
	m := env.Metrics()
	// Slots 1,2,3 are accumulated by advanceTime with the task running at
	// full CPU (progress checks happen after completion sweep, so the slot
	// where it finishes counts as idle). Exact accounting: slots 1 and 2
	// busy at peak, slot 3 the task has finished.
	want := 2 * cfg.Power.PeakWatts
	if math.Abs(m.EnergyWattSlots-want) > 1e-9 {
		t.Fatalf("energy %v, want %v", m.EnergyWattSlots, want)
	}
	if m.Cost <= 0 {
		t.Fatal("busy VM should accrue cost")
	}
}

func TestIdleClusterDrawsNothing(t *testing.T) {
	cfg := DefaultConfig([]VMSpec{{CPU: 4, Mem: 16}, {CPU: 8, Mem: 32}})
	env := MustNewEnv(cfg, []workload.Task{{ID: 0, Arrival: 5, CPU: 1, Mem: 1, Duration: 1}})
	for i := 0; i < 4; i++ {
		env.Step(env.WaitAction())
	}
	m := env.Metrics()
	if m.EnergyWattSlots != 0 || m.Cost != 0 {
		t.Fatalf("idle cluster drew energy %v cost %v", m.EnergyWattSlots, m.Cost)
	}
}

func TestEnergyRewardPrefersConsolidation(t *testing.T) {
	// Load balancing is zero-weighted here to isolate the energy term
	// (spreading naturally wins the balance term, consolidation the
	// energy term — the weights decide the trade).
	cfg := DefaultConfig([]VMSpec{{CPU: 8, Mem: 32}, {CPU: 8, Mem: 32}})
	cfg.Objectives = ObjectiveWeights{Response: 1, LoadBalance: 0, Energy: 2, Cost: 0}
	tasks := []workload.Task{
		{ID: 0, Arrival: 0, CPU: 2, Mem: 4, Duration: 5},
		{ID: 1, Arrival: 0, CPU: 2, Mem: 4, Duration: 5},
	}
	// Consolidating run: both tasks on VM 0.
	env1 := MustNewEnv(cfg, tasks)
	env1.Step(0)
	rConsolidate := env1.Step(0)
	// Spreading run: second task wakes VM 1.
	env2 := MustNewEnv(cfg, tasks)
	env2.Step(0)
	rSpread := env2.Step(1)
	if rConsolidate <= rSpread {
		t.Fatalf("energy objective should reward consolidation: %v vs %v", rConsolidate, rSpread)
	}
}

func TestCostRewardPrefersBusyAndCheapVMs(t *testing.T) {
	cfg := DefaultConfig([]VMSpec{{CPU: 2, Mem: 8}, {CPU: 32, Mem: 256}})
	cfg.Objectives = ObjectiveWeights{Response: 1, LoadBalance: 0, Energy: 0, Cost: 3}
	tasks := []workload.Task{
		{ID: 0, Arrival: 0, CPU: 1, Mem: 1, Duration: 5},
		{ID: 1, Arrival: 0, CPU: 1, Mem: 1, Duration: 5},
	}
	// Waking the big expensive VM should earn less than reusing the busy one.
	env1 := MustNewEnv(cfg, tasks)
	env1.Step(0)
	rReuse := env1.Step(0)
	env2 := MustNewEnv(cfg, tasks)
	env2.Step(0)
	rWakeBig := env2.Step(1)
	if rReuse <= rWakeBig {
		t.Fatalf("cost objective should reward reuse: %v vs %v", rReuse, rWakeBig)
	}
}

func TestExplicitPricesValidatedAndUsed(t *testing.T) {
	cfg := DefaultConfig([]VMSpec{{CPU: 2, Mem: 8}, {CPU: 2, Mem: 8}})
	cfg.Prices = []float64{1} // wrong length
	if err := cfg.Validate(); err == nil {
		t.Fatal("expected price length error")
	}
	cfg.Prices = []float64{1, 10}
	env := MustNewEnv(cfg, []workload.Task{{ID: 0, Arrival: 0, CPU: 1, Mem: 1, Duration: 2}})
	env.Step(1) // run on the expensive VM
	env.Drain()
	costExpensive := env.Metrics().Cost
	env2 := MustNewEnv(cfg, []workload.Task{{ID: 0, Arrival: 0, CPU: 1, Mem: 1, Duration: 2}})
	env2.Step(0)
	env2.Drain()
	costCheap := env2.Metrics().Cost
	if costExpensive <= costCheap {
		t.Fatalf("explicit prices ignored: %v vs %v", costExpensive, costCheap)
	}
}

func TestDefaultRewardUnchangedByEnergyCode(t *testing.T) {
	// With zero Objectives the reward must match the paper's two-term form
	// exactly — the extension is strictly opt-in.
	rng := rand.New(rand.NewSource(1))
	cfg := DefaultConfig([]VMSpec{{CPU: 8, Mem: 64}, {CPU: 16, Mem: 128}})
	tasks := ClampTasks(workload.SampleDataset(workload.Google, rng, 40), cfg.VMs)
	env := MustNewEnv(cfg, tasks)
	p := FirstFit{}
	for !env.Done() {
		a := p.SelectAction(env)
		r := env.Step(a)
		if a != env.WaitAction() {
			want := cfg.Rho*env.lastRespReward + (1-cfg.Rho)*env.lastLoadReward
			if math.Abs(r-want) > 1e-12 {
				t.Fatalf("default reward diverged: %v vs %v", r, want)
			}
		}
	}
}

func TestEnergyAwareTrainingEnvelope(t *testing.T) {
	// End to end: a consolidating policy (first-fit) must cost less energy
	// than a spreading policy (worst-fit) under the power model.
	rng := rand.New(rand.NewSource(2))
	cfg := DefaultConfig([]VMSpec{{CPU: 8, Mem: 64}, {CPU: 8, Mem: 64}, {CPU: 8, Mem: 64}})
	tasks := ClampTasks(workload.SampleDataset(workload.Google, rng, 100), cfg.VMs)
	ff := RunEpisode(MustNewEnv(cfg, tasks), FirstFit{})
	wf := RunEpisode(MustNewEnv(cfg, tasks), WorstFit{})
	if ff.EnergyWattSlots >= wf.EnergyWattSlots {
		t.Fatalf("first-fit energy %v should beat worst-fit %v", ff.EnergyWattSlots, wf.EnergyWattSlots)
	}
}
