package cloudsim

import "repro/internal/workload"

// ClampTasks returns a copy of tasks in which every task fits at least one
// VM in vms. Without this, a task larger than every VM would block the FIFO
// queue head forever and the episode could only end at the step cap. The
// paper sets VM capacities "referring to the machine specifications defined
// by the cloud workloads" (§5.1), which implies the same compatibility; we
// enforce it explicitly.
//
// A task that already fits some VM is returned unchanged. Otherwise it is
// clamped to the single VM that preserves the largest fraction of the
// original request (both dimensions are clamped against that one VM, so the
// result is guaranteed feasible).
func ClampTasks(tasks []workload.Task, vms []VMSpec) []workload.Task {
	out := append([]workload.Task(nil), tasks...)
	for i := range out {
		out[i] = ClampTask(out[i], vms)
	}
	return out
}

// ClampTask applies the ClampTasks policy to a single task, so streaming
// sources can clamp on the fly without materializing the episode. The math
// is identical to ClampTasks (which delegates here).
func ClampTask(t workload.Task, vms []VMSpec) workload.Task {
	if fitsAny(t, vms) {
		return t
	}
	best, bestScore := 0, -1.0
	for j, v := range vms {
		cpuFrac := 1.0
		if t.CPU > v.CPU {
			cpuFrac = float64(v.CPU) / float64(t.CPU)
		}
		memFrac := 1.0
		if t.Mem > v.Mem {
			memFrac = v.Mem / t.Mem
		}
		if score := cpuFrac * memFrac; score > bestScore {
			best, bestScore = j, score
		}
	}
	v := vms[best]
	if t.CPU > v.CPU {
		t.CPU = v.CPU
	}
	if t.Mem > v.Mem {
		t.Mem = v.Mem
	}
	return t
}

func fitsAny(t workload.Task, vms []VMSpec) bool {
	for _, v := range vms {
		if t.CPU <= v.CPU && t.Mem <= v.Mem {
			return true
		}
	}
	return false
}
