package cloudsim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/workload"
)

// TestRetirementOrderDeterministic pins the determinism fix of the
// event-driven engine. Two tasks finish on the same VM in the same slot;
// their memory sizes are chosen so that adding the freed amounts back in
// different orders yields different float64 results. The old map-backed
// store retired same-slot tasks in Go map-iteration order, so freeMem could
// come out as either value depending on the run — the completion heap
// retires in (finish slot, task ID) order, always.
func TestRetirementOrderDeterministic(t *testing.T) {
	const memA, memB = 0.1, 3.3 // task 0 and task 1 memory, GiB
	// freeMem after both placements, then freed in ID order / reverse order.
	base := (16.0 - memA) - memB
	idOrder := (base + memA) + memB
	revOrder := (base + memB) + memA
	if idOrder == revOrder {
		t.Fatal("test constants are not order-sensitive; pick different memory sizes")
	}

	cfg := DefaultConfig([]VMSpec{{CPU: 4, Mem: 16}})
	tasks := []workload.Task{
		{ID: 0, Arrival: 0, CPU: 1, Mem: memA, Duration: 2},
		{ID: 1, Arrival: 0, CPU: 1, Mem: memB, Duration: 2},
	}
	for trial := 0; trial < 100; trial++ {
		env := MustNewEnv(cfg, tasks)
		env.Step(0) // place task 0 at slot 0, finishes at slot 2
		env.Step(0) // place task 1 at slot 0, finishes at slot 2
		env.Drain()
		got := env.VMs()[0].FreeMem()
		if got != idOrder {
			t.Fatalf("trial %d: freeMem %.20g, want ID-order accumulation %.20g (reverse order gives %.20g)",
				trial, got, idOrder, revOrder)
		}
	}
}

// TestCompletionHeapOrder checks the heap primitive directly: pops come out
// sorted by (finish, task ID) regardless of push order.
func TestCompletionHeapOrder(t *testing.T) {
	e := &Env{}
	in := []completion{
		{finish: 5, id: 9}, {finish: 3, id: 2}, {finish: 5, id: 1},
		{finish: 1, id: 7}, {finish: 3, id: 0}, {finish: 5, id: 4},
	}
	for _, c := range in {
		e.heapPush(c)
	}
	prev := completion{finish: -1, id: -1}
	for range in {
		c := e.heapPop()
		if completionLess(c, prev) {
			t.Fatalf("heap popped %v after %v", c, prev)
		}
		prev = c
	}
	if len(e.heap) != 0 {
		t.Fatalf("heap not drained: %d left", len(e.heap))
	}
}

// TestQueueCursorLifecycle exercises the cursor-indexed waiting and pending
// queues: FIFO order across arrivals, placements, and injections, plus the
// cursor resets that let the backing arrays be reused instead of pinned by
// re-slicing.
func TestQueueCursorLifecycle(t *testing.T) {
	const n = 200
	cfg := DefaultConfig([]VMSpec{{CPU: 64, Mem: 512}})
	tasks := make([]workload.Task, n)
	for i := range tasks {
		tasks[i] = workload.Task{ID: i, Arrival: i / 50, CPU: 1, Mem: 1, Duration: 1}
	}
	env := MustNewEnv(cfg, tasks)
	placed := 0
	for !env.Done() {
		if _, ok := env.HeadTask(); ok && env.VMs()[0].Fits(mustHead(env)) {
			env.Step(0)
			placed++
			if placed == n/2 {
				env.Inject(workload.Task{ID: n, Arrival: 0, CPU: 1, Mem: 1, Duration: 1})
			}
		} else {
			env.Step(env.WaitAction())
		}
	}
	recs := env.Records()
	if len(recs) != n+1 {
		t.Fatalf("completed %d, want %d", len(recs), n+1)
	}
	// FIFO: placement order must follow queue order — tasks 0..99 (arrival
	// waves 0 and 1), then the injected task entered the queue mid-wave;
	// starts must be non-decreasing either way.
	for i := 1; i < len(recs); i++ {
		if recs[i].Start < recs[i-1].Start {
			t.Fatalf("placements out of order: record %d starts at %d after %d",
				i, recs[i].Start, recs[i-1].Start)
		}
	}
	// Cursors must have been reset when their queues drained, so the
	// buffers are reusable rather than re-sliced away.
	if env.qhead != 0 || len(env.queue) != 0 {
		t.Fatalf("waiting queue not compacted: qhead=%d len=%d", env.qhead, len(env.queue))
	}
	if env.PendingLen() != 0 || !env.srcDone || env.hasPeek {
		t.Fatalf("source not drained: pending=%d srcDone=%v hasPeek=%v",
			env.PendingLen(), env.srcDone, env.hasPeek)
	}
	if cap(env.queue) > 4*n {
		t.Fatalf("queue backing array grew unboundedly: cap %d", cap(env.queue))
	}
}

func mustHead(env *Env) workload.Task {
	h, ok := env.HeadTask()
	if !ok {
		panic("no head task")
	}
	return h
}

// TestStepZeroAllocSteadyState pins the engine-side half of the rollout
// fast path: after one warm episode, a full environment interaction —
// Observe into a reused buffer, FeasibleActionsInto into a reused mask,
// action choice, Step, and the in-place Reset at episode end — allocates
// nothing.
func TestStepZeroAllocSteadyState(t *testing.T) {
	specs := benchCluster()
	tasks := benchWorkload(specs, 200)
	env := MustNewEnv(DefaultConfig(specs), tasks)
	buf := make([]float64, env.StateDim())
	mask := make([]bool, env.NumActions())
	stepOnce := func() {
		buf = env.Observe(buf)
		mask = env.FeasibleActionsInto(mask)
		env.Step(benchFirstFit(env))
		if env.Done() {
			env.Reset(tasks)
		}
	}
	for !env.Done() { // warm episode: grow every internal buffer
		buf = env.Observe(buf)
		mask = env.FeasibleActionsInto(mask)
		env.Step(benchFirstFit(env))
	}
	env.Reset(tasks)
	if allocs := testing.AllocsPerRun(500, stepOnce); allocs != 0 {
		t.Fatalf("env step allocates %.1f objects/op in steady state, want 0", allocs)
	}
}

// scratchLoadBalance recomputes Eq. (4) from the VM free counters alone,
// with the same summation order as Env.loadBalance but none of its cached
// inputs — the independent reference the cache is checked against.
func scratchLoadBalance(cfg Config, vms []*VM) float64 {
	n := float64(len(vms))
	total := 0.0
	for i := 0; i < NumResources; i++ {
		avg := 0.0
		for _, vm := range vms {
			avg += 1 - scratchUtil(vm, i)
		}
		avg /= n
		variance := 0.0
		for _, vm := range vms {
			d := (1 - scratchUtil(vm, i)) - avg
			variance += d * d
		}
		total += cfg.ResourceWeights[i] * math.Sqrt(variance/n)
	}
	return total
}

func scratchUtil(v *VM, resource int) float64 {
	switch resource {
	case 0:
		if v.Spec.CPU == 0 {
			return 0
		}
		return float64(v.Spec.CPU-v.freeCPU) / float64(v.Spec.CPU)
	default:
		if v.Spec.Mem == 0 {
			return 0
		}
		return (v.Spec.Mem - v.freeMem) / v.Spec.Mem
	}
}

// TestCachedStatsMatchScratchRecompute drives a seeded episode on a 3-VM
// cluster and, after every step, checks that the cached utilization /
// remaining fractions and the load-balance value read from them are
// bit-equal to a from-scratch recompute off the raw free counters. It also
// folds the per-slot accumulators (util, load-balance, energy, cost)
// independently and requires bit-equality at the end.
func TestCachedStatsMatchScratchRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := DefaultConfig([]VMSpec{{CPU: 4, Mem: 16}, {CPU: 8, Mem: 32}, {CPU: 16, Mem: 64}})
	tasks := ClampTasks(workload.SampleDataset(workload.Google, rng, 80), cfg.VMs)
	env := MustNewEnv(cfg, tasks)

	// Shadow accumulators, folded exactly like accumulateSlotStats.
	var utilSum [NumResources]float64
	loadBalSum, energySum, costSum := 0.0, 0.0, 0.0
	slots := 0
	accumulate := func() {
		for i := 0; i < NumResources; i++ {
			s := 0.0
			for _, vm := range env.vms {
				s += scratchUtil(vm, i)
			}
			utilSum[i] += s / float64(len(env.vms))
		}
		loadBalSum += scratchLoadBalance(cfg, env.vms)
		for i, vm := range env.vms {
			busy := vm.RunningTasks() > 0
			energySum += cfg.Power.draw(scratchUtil(vm, 0), busy)
			if busy {
				costSum += env.vmPrice(i)
			}
		}
		slots++
	}
	accumulate() // mirror the slot-0 accumulation done by Reset

	check := func(step int) {
		for i, vm := range env.vms {
			for r := 0; r < NumResources; r++ {
				if vm.util[r] != scratchUtil(vm, r) {
					t.Fatalf("step %d VM %d: cached util[%d]=%v, scratch %v",
						step, i, r, vm.util[r], scratchUtil(vm, r))
				}
				if vm.rem[r] != 1-scratchUtil(vm, r) {
					t.Fatalf("step %d VM %d: cached rem[%d]=%v, scratch %v",
						step, i, r, vm.rem[r], 1-scratchUtil(vm, r))
				}
			}
		}
		if got, want := env.loadBalance(), scratchLoadBalance(cfg, env.vms); got != want {
			t.Fatalf("step %d: cached loadBalance %v, scratch %v", step, got, want)
		}
	}

	p := FirstFit{}
	step := 0
	for !env.Done() {
		before := env.now
		env.Step(p.SelectAction(env))
		step++
		if env.now != before { // time advanced: fold one slot into the shadow
			accumulate()
		}
		check(step)
	}
	for len(env.heap) > 0 {
		env.advanceTime()
		accumulate()
		check(step)
	}

	if slots != env.slots {
		t.Fatalf("shadow folded %d slots, env %d", slots, env.slots)
	}
	for i := 0; i < NumResources; i++ {
		if utilSum[i] != env.utilSum[i] {
			t.Fatalf("utilSum[%d]: shadow %v, env %v", i, utilSum[i], env.utilSum[i])
		}
	}
	if loadBalSum != env.loadBalSum {
		t.Fatalf("loadBalSum: shadow %v, env %v", loadBalSum, env.loadBalSum)
	}
	if energySum != env.energySum {
		t.Fatalf("energySum: shadow %v, env %v", energySum, env.energySum)
	}
	if costSum != env.costSum {
		t.Fatalf("costSum: shadow %v, env %v", costSum, env.costSum)
	}
}

// TestSlotStatsHandComputed pins the per-slot accounting against a
// hand-computed reference table on a tiny 3-VM scenario with
// paper-friendly numbers (Eqs. 4, 24, 25 and the energy/cost models).
func TestSlotStatsHandComputed(t *testing.T) {
	cfg := DefaultConfig([]VMSpec{{CPU: 2, Mem: 8}, {CPU: 2, Mem: 8}, {CPU: 4, Mem: 16}})
	tasks := []workload.Task{
		{ID: 0, Arrival: 0, CPU: 2, Mem: 8, Duration: 3}, // fills VM 0 exactly
		{ID: 1, Arrival: 0, CPU: 2, Mem: 4, Duration: 2}, // half of VM 2's CPU
	}
	env := MustNewEnv(cfg, tasks)

	// Slot 0 pre-placement: empty cluster, perfectly balanced.
	if lb := env.LoadBalance(); lb != 0 {
		t.Fatalf("empty cluster load balance %v, want 0", lb)
	}

	env.Step(0) // task 0 -> VM 0, both resources fully used
	// Remaining fractions now (0, 1, 1) for CPU and memory alike:
	// avg = 2/3, variance = ((0-2/3)^2 + (1/3)^2 + (1/3)^2)/3 = 2/9.
	{
		avg := (0.0 + 1.0 + 1.0) / 3.0
		v := ((0-avg)*(0-avg) + (1-avg)*(1-avg) + (1-avg)*(1-avg)) / 3.0
		want := 0.5*math.Sqrt(v) + 0.5*math.Sqrt(v)
		if got := env.LoadBalance(); got != want {
			t.Fatalf("load balance after first placement: %v, want %v", got, want)
		}
	}

	env.Step(2) // task 1 -> VM 2: CPU rem 0.5, mem rem 12/16 = 0.75
	{
		cpuAvg := (0.0 + 1.0 + 0.5) / 3.0
		cpuVar := ((0-cpuAvg)*(0-cpuAvg) + (1-cpuAvg)*(1-cpuAvg) + (0.5-cpuAvg)*(0.5-cpuAvg)) / 3.0
		memAvg := (0.0 + 1.0 + 0.75) / 3.0
		memVar := ((0-memAvg)*(0-memAvg) + (1-memAvg)*(1-memAvg) + (0.75-memAvg)*(0.75-memAvg)) / 3.0
		want := 0.5*math.Sqrt(cpuVar) + 0.5*math.Sqrt(memVar)
		if got := env.LoadBalance(); got != want {
			t.Fatalf("load balance after second placement: %v, want %v", got, want)
		}
	}

	// Both tasks are placed, so the episode is complete; advance the clock
	// directly to fold slot 1 (both tasks still running) into the stats.
	env.advanceTime()
	// The slot-1 accumulation sees VM0 fully busy, VM1 idle, VM2 half CPU /
	// quarter mem. Slot 0 (accumulated at Reset) saw an empty cluster.
	{
		wantCPUUtil := (1.0 + 0.0 + 0.5) / 3.0
		wantMemUtil := (1.0 + 0.0 + 0.25) / 3.0
		if env.utilSum[0] != wantCPUUtil || env.utilSum[1] != wantMemUtil {
			t.Fatalf("utilSum (%v, %v), want (%v, %v)",
				env.utilSum[0], env.utilSum[1], wantCPUUtil, wantMemUtil)
		}
		// Energy: VM0 at full CPU draws peak 300 W; VM1 idle draws 0;
		// VM2 at half CPU draws 100 + 0.5*200 = 200 W.
		if env.energySum != 500 {
			t.Fatalf("energySum %v, want 500", env.energySum)
		}
		// Cost: busy VMs bill capacity-derived prices, VM0 = 2 + 8/8 = 3,
		// VM2 = 4 + 16/8 = 6.
		if env.costSum != 9 {
			t.Fatalf("costSum %v, want 9", env.costSum)
		}
		if env.slots != 2 {
			t.Fatalf("slots %d, want 2", env.slots)
		}
	}

	// Drain the schedule: task 1 finishes at slot 2, task 0 at slot 3.
	env.Drain()
	m := env.Metrics()
	if m.Makespan != 3 || m.Completed != 2 {
		t.Fatalf("makespan %d completed %d, want 3 and 2", m.Makespan, m.Completed)
	}
	// AvgUtil (Eq. 24): mean over 4 slots (0..3) of the weighted util.
	// Slot 0: 0. Slot 1: as above. Slot 2: task 1 finished -> VM2 idle.
	// Slot 3: task 0 finished -> all idle.
	{
		slot1 := 0.5*((1.0+0.0+0.5)/3.0) + 0.5*((1.0+0.0+0.25)/3.0)
		slot2 := 0.5*(1.0/3.0) + 0.5*(1.0/3.0)
		want := (slot1 + slot2) / 4.0
		if math.Abs(m.AvgUtil-want) > 1e-15 {
			t.Fatalf("AvgUtil %v, want %v", m.AvgUtil, want)
		}
	}
}

// TestObserveMatchesNaiveEncoding guards the prototype-copy Observe fast
// path: on every step of a seeded episode, the encoded observation must be
// bit-identical to a naive re-encoding that walks all positions.
func TestObserveMatchesNaiveEncoding(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cfg := DefaultConfig([]VMSpec{{CPU: 4, Mem: 16}, {CPU: 8, Mem: 32}})
	cfg.PadVMs = 3 // one void VM slot
	tasks := ClampTasks(workload.SampleDataset(workload.Alibaba2017, rng, 50), cfg.VMs)
	env := MustNewEnv(cfg, tasks)

	naive := func() []float64 {
		out := make([]float64, env.StateDim())
		off := 0
		for i := 0; i < cfg.PadVMs; i++ {
			if i < len(env.vms) {
				out[off] = float64(env.vms[i].freeCPU) / float64(cfg.MaxCPU)
				out[off+1] = env.vms[i].freeMem / cfg.MaxMem
			} else {
				out[off], out[off+1] = VoidMarker, VoidMarker
			}
			off += NumResources
		}
		for i := 0; i < cfg.PadVMs; i++ {
			for k := 0; k < cfg.PadVCPUs; k++ {
				if i >= len(env.vms) || k >= env.vms[i].Spec.CPU {
					out[off] = VoidMarker
				} else {
					out[off] = env.vms[i].progress(k, env.now)
				}
				off++
			}
		}
		for q := 0; q < cfg.QueueDepth; q++ {
			if q < env.QueueLen() {
				tk := env.queue[env.qhead+q]
				out[off] = float64(tk.CPU) / float64(cfg.MaxCPU)
				out[off+1] = tk.Mem / cfg.MaxMem
			} else {
				out[off], out[off+1] = VoidMarker, VoidMarker
			}
			off += NumResources
		}
		return out
	}

	var buf []float64
	p := FirstFit{}
	for !env.Done() {
		buf = env.Observe(buf)
		want := naive()
		for i := range want {
			if buf[i] != want[i] {
				t.Fatalf("observation mismatch at position %d: fast %v, naive %v", i, buf[i], want[i])
			}
		}
		env.Step(p.SelectAction(env))
	}
}

// TestFeasibleActionsIntoMatches checks the Into variant against the
// allocating entry point and the scratch-reuse contract.
func TestFeasibleActionsIntoMatches(t *testing.T) {
	cfg := DefaultConfig([]VMSpec{{CPU: 2, Mem: 4}, {CPU: 8, Mem: 32}})
	tasks := []workload.Task{{ID: 0, Arrival: 0, CPU: 4, Mem: 8, Duration: 2}}
	env := MustNewEnv(cfg, tasks)
	a := env.FeasibleActions()
	b := env.FeasibleActionsInto(make([]bool, env.NumActions()))
	if len(a) != len(b) {
		t.Fatalf("mask lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("mask mismatch at %d: %v vs %v", i, a[i], b[i])
		}
	}
	if &env.FeasibleActions()[0] != &a[0] {
		t.Fatal("FeasibleActions should reuse its scratch mask")
	}
}
