package cloudsim

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/workload"
)

// This file is the simulator invariant-test harness: a randomized-action
// driver that runs many (seed, policy, configuration) episodes and asserts
// global engine invariants after every Step — at 20 VMs with exhaustive
// per-step checks and at 500 VMs with sampled deep checks, in legacy,
// identity, ranked top-k, and oversubscribed modes.

// tieredCluster builds an n-VM cluster cycling through the four hardware
// tiers used by the benchmarks.
func tieredCluster(n int) []VMSpec {
	mix := []VMSpec{{CPU: 8, Mem: 64}, {CPU: 16, Mem: 128}, {CPU: 32, Mem: 256}, {CPU: 64, Mem: 512}}
	specs := make([]VMSpec, n)
	for i := range specs {
		specs[i] = mix[i%len(mix)]
	}
	return specs
}

// invWorkload samples a clamped Google-model workload for the cluster.
func invWorkload(specs []VMSpec, n int, seed int64) []workload.Task {
	m := workload.Lookup(workload.Google)
	return ClampTasks(m.Sample(rand.New(rand.NewSource(seed)), n), specs)
}

// invariantRun drives env to completion with pick, checking engine
// invariants after every step. deepEvery > 0 additionally cross-checks the
// incremental ranked-mode state against scratch recomputation (and the
// candidate index against a brute-force ranking) every deepEvery steps.
func invariantRun(t *testing.T, env *Env, pick func(*Env, *rand.Rand) int, rng *rand.Rand, deepEvery int) {
	t.Helper()

	// Retirement-order and exactly-once accounting via the retire hook.
	lastFinish, lastID := -1, -1
	retired := make(map[int]int)
	env.retireHook = func(c completion) {
		if c.finish < lastFinish || (c.finish == lastFinish && c.id <= lastID) {
			t.Fatalf("heap popped (%d,%d) after (%d,%d)", c.finish, c.id, lastFinish, lastID)
		}
		lastFinish, lastID = c.finish, c.id
		retired[c.id]++
		if retired[c.id] > 1 {
			t.Fatalf("task %d retired %d times", c.id, retired[c.id])
		}
	}
	defer func() { env.retireHook = nil }()

	prevPulled, prevPlaced := 0, 0
	steps := 0
	for !env.Done() {
		env.Step(pick(env, rng))
		steps++
		// Cursor monotonicity: pulls and placements never regress.
		if env.pulled < prevPulled {
			t.Fatalf("source pull counter regressed: %d -> %d", prevPulled, env.pulled)
		}
		if len(env.completed) < prevPlaced {
			t.Fatalf("placement count regressed: %d -> %d", prevPlaced, len(env.completed))
		}
		prevPulled, prevPlaced = env.pulled, len(env.completed)
		checkStepInvariants(t, env)
		if deepEvery > 0 && steps%deepEvery == 0 {
			checkDeepInvariants(t, env)
		}
	}
	env.Drain()
	checkStepInvariants(t, env)
	checkDeepInvariants(t, env)

	// After draining, every placed task has retired exactly once and
	// nothing is left in flight.
	if len(env.heap) != 0 {
		t.Fatalf("completion heap not empty after Drain: %d entries", len(env.heap))
	}
	for _, vm := range env.VMs() {
		if vm.RunningTasks() != 0 {
			t.Fatalf("VM still running %d tasks after Drain", vm.RunningTasks())
		}
	}
	if len(retired) != len(env.completed) {
		t.Fatalf("retired %d distinct tasks, placed %d", len(retired), len(env.completed))
	}
	for _, r := range env.Records() {
		if retired[r.Task.ID] != 1 {
			t.Fatalf("placed task %d retired %d times", r.Task.ID, retired[r.Task.ID])
		}
	}
	if !env.Truncated() && env.SourceErr() == nil && len(env.completed) != env.totalTasks {
		t.Fatalf("episode done with %d of %d tasks placed", len(env.completed), env.totalTasks)
	}
}

// checkStepInvariants asserts the per-VM resource-accounting invariants:
// free counters within [0, cap], committed vCPUs never beyond the
// oversubscription cap, the vCPU owner table consistent with the task
// store, and queue cursors in range.
func checkStepInvariants(t *testing.T, env *Env) {
	t.Helper()
	if env.qhead < 0 || env.qhead > len(env.queue) {
		t.Fatalf("queue cursor out of range: qhead=%d len=%d", env.qhead, len(env.queue))
	}
	for vi, vm := range env.VMs() {
		if vm.freeCPU < 0 || vm.freeCPU > vm.capCPU {
			t.Fatalf("VM %d freeCPU %d outside [0,%d]", vi, vm.freeCPU, vm.capCPU)
		}
		if vm.freeMem < -1e-9 || vm.freeMem > vm.capMem+1e-9 {
			t.Fatalf("VM %d freeMem %g outside [0,%g]", vi, vm.freeMem, vm.capMem)
		}
		// Owner table vs store: every occupied vCPU belongs to exactly one
		// active task, and each active task owns exactly task.CPU vCPUs.
		ownedBy := make(map[int]int)
		occupied := 0
		for k, owner := range vm.vcpuOwner {
			if owner == -1 {
				continue
			}
			occupied++
			ownedBy[owner]++
			if owner >= len(vm.store) || !vm.store[owner].active {
				t.Fatalf("VM %d vCPU %d owned by dead store slot %d", vi, k, owner)
			}
		}
		sumCPU, sumMem := 0, 0.0
		vm.forEachRunning(func(r *running) {
			sumCPU += r.task.CPU
			sumMem += r.task.Mem
			slot := r.vcpus
			if len(slot) != r.task.CPU {
				t.Fatalf("VM %d task %d holds %d vCPUs, requested %d", vi, r.task.ID, len(slot), r.task.CPU)
			}
		})
		if occupied != vm.capCPU-vm.freeCPU || sumCPU != occupied {
			t.Fatalf("VM %d vCPU accounting: owners=%d cap-free=%d tasks=%d",
				vi, occupied, vm.capCPU-vm.freeCPU, sumCPU)
		}
		if math.Abs(sumMem-(vm.capMem-vm.freeMem)) > 1e-6 {
			t.Fatalf("VM %d memory accounting: tasks=%g cap-free=%g", vi, sumMem, vm.capMem-vm.freeMem)
		}
	}
}

// checkDeepInvariants cross-checks the ranked-mode incremental state
// (whole-cluster accumulators, aggregate histograms, and the candidate
// index) against scratch recomputation.
func checkDeepInvariants(t *testing.T, env *Env) {
	t.Helper()
	if env.aggOn {
		histCPU := make([]int, env.cfg.UtilBuckets)
		histMem := make([]int, env.cfg.UtilBuckets)
		usedCPU, usedMem := 0, 0.0
		for _, vm := range env.VMs() {
			histCPU[env.utilBucket(vm.util[0])]++
			histMem[env.utilBucket(vm.util[1])]++
			usedCPU += vm.capCPU - vm.freeCPU
			usedMem += vm.capMem - vm.freeMem
		}
		for b := range histCPU {
			if histCPU[b] != env.histCPU[b] || histMem[b] != env.histMem[b] {
				t.Fatalf("histogram drift in bucket %d: cpu %d/%d mem %d/%d",
					b, env.histCPU[b], histCPU[b], env.histMem[b], histMem[b])
			}
		}
		if usedCPU != env.usedCPU || math.Abs(usedMem-env.usedMem) > 1e-6 {
			t.Fatalf("usage drift: cpu %d/%d mem %g/%g", env.usedCPU, usedCPU, env.usedMem, usedMem)
		}
	}
	if !env.ranked {
		return
	}
	// Accumulators vs scratch scans.
	var sumUtil, sumRem, sumRem2 [NumResources]float64
	busy, busyUtil, busyPrice := 0, 0.0, 0.0
	for i, vm := range env.VMs() {
		for r := 0; r < NumResources; r++ {
			sumUtil[r] += vm.util[r]
			sumRem[r] += vm.rem[r]
			sumRem2[r] += vm.rem[r] * vm.rem[r]
		}
		if vm.RunningTasks() > 0 {
			busy++
			busyUtil += vm.util[0]
			busyPrice += env.vmPrice(i)
		}
	}
	for r := 0; r < NumResources; r++ {
		if math.Abs(sumUtil[r]-env.sumUtil[r]) > 1e-6 ||
			math.Abs(sumRem[r]-env.sumRem[r]) > 1e-6 ||
			math.Abs(sumRem2[r]-env.sumRem2[r]) > 1e-6 {
			t.Fatalf("accumulator drift on resource %d", r)
		}
	}
	if busy != env.busyVMs || math.Abs(busyUtil-env.sumBusyCPUUtil) > 1e-6 ||
		math.Abs(busyPrice-env.sumBusyPrice) > 1e-6 {
		t.Fatalf("busy-VM accumulator drift: %d/%d %g/%g %g/%g",
			env.busyVMs, busy, env.sumBusyCPUUtil, busyUtil, env.sumBusyPrice, busyPrice)
	}
	// Candidate index vs brute-force ranking.
	head, ok := env.HeadTask()
	if !ok {
		return
	}
	type key struct{ c, m, i int }
	var want []key
	for i, vm := range env.VMs() {
		if vm.Fits(head) {
			want = append(want, key{cpuClassOf(vm.freeCPU), memClassOf(vm.freeMem), i})
		}
	}
	sort.Slice(want, func(a, b int) bool {
		if want[a].c != want[b].c {
			return want[a].c < want[b].c
		}
		if want[a].m != want[b].m {
			return want[a].m < want[b].m
		}
		return want[a].i < want[b].i
	})
	if len(want) > env.cfg.TopK {
		want = want[:env.cfg.TopK]
	}
	got := env.Candidates()
	for s := range got {
		switch {
		case s < len(want) && int(got[s]) != want[s].i:
			t.Fatalf("candidate slot %d: got VM %d, brute force wants %d", s, got[s], want[s].i)
		case s >= len(want) && got[s] != -1:
			t.Fatalf("candidate slot %d: got VM %d past %d feasible VMs", s, got[s], len(want))
		}
		if got[s] >= 0 && !env.VMs()[got[s]].Fits(head) {
			t.Fatalf("candidate slot %d: VM %d does not fit head task", s, got[s])
		}
	}
}

// invariant driver policies: pure-random actions (mostly invalid at large
// action counts — exercises penalties and time advancement), feasible-only
// random actions, and the heuristic portfolio.
func pickRandom(env *Env, rng *rand.Rand) int { return rng.Intn(env.NumActions()) }

func pickFeasible(env *Env, rng *rand.Rand) int {
	mask := env.FeasibleActions()
	n := 0
	for _, ok := range mask {
		if ok {
			n++
		}
	}
	pick := rng.Intn(n)
	for a, ok := range mask {
		if ok {
			if pick == 0 {
				return a
			}
			pick--
		}
	}
	return env.WaitAction()
}

func policyPicker(p Policy) func(*Env, *rand.Rand) int {
	return func(env *Env, _ *rand.Rand) int { return p.SelectAction(env) }
}

// invariantConfigs returns the mode matrix for a cluster: legacy per-VM,
// identity top-k, ranked top-k with aggregates, and ranked + oversubscribed.
func invariantConfigs(specs []VMSpec) map[string]Config {
	legacy := DefaultConfig(specs)
	identity := legacy
	identity.TopK = len(specs)
	ranked := legacy
	ranked.TopK = 4
	ranked.UtilBuckets = 4
	oversub := ranked
	oversub.Oversub = 1.5
	oversub.PadVCPUs = oversubCPU(legacy.PadVCPUs, 1.5)
	return map[string]Config{
		"legacy": legacy, "identity": identity, "ranked": ranked, "oversub": oversub,
	}
}

// TestInvariants20VMs runs the full policy × mode × seed matrix on a 20-VM
// cluster with per-step invariant checks and frequent deep checks.
func TestInvariants20VMs(t *testing.T) {
	specs := benchCluster()
	for name, cfg := range invariantConfigs(specs) {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				tasks := invWorkload(specs, 150, seed)
				env := MustNewEnv(cfg, tasks)
				policies := []struct {
					name string
					pick func(*Env, *rand.Rand) int
				}{
					{"random", pickRandom},
					{"feasible", pickFeasible},
					{"first-fit", policyPicker(FirstFit{})},
					{"best-fit", policyPicker(BestFit{})},
					{"worst-fit", policyPicker(WorstFit{})},
					{"round-robin", policyPicker(&RoundRobin{})},
					{"random-fit", policyPicker(RandomFit{Rng: rand.New(rand.NewSource(seed))})},
				}
				for _, p := range policies {
					env.Reset(tasks)
					invariantRun(t, env, p.pick, rand.New(rand.NewSource(seed*101+1)), 10)
					if t.Failed() {
						t.Fatalf("invariants failed: seed %d policy %s", seed, p.name)
					}
				}
			}
		})
	}
}

// TestInvariants500VMs runs the harness at 500 VMs in ranked and
// oversubscribed modes (the scalable code paths), with per-step accounting
// checks and sampled deep checks.
func TestInvariants500VMs(t *testing.T) {
	specs := tieredCluster(500)
	for _, mode := range []string{"ranked", "oversub"} {
		cfg := invariantConfigs(specs)[mode]
		cfg.TopK = 8
		t.Run(mode, func(t *testing.T) {
			for seed := int64(1); seed <= 2; seed++ {
				tasks := invWorkload(specs, 1500, seed)
				env := MustNewEnv(cfg, tasks)
				for _, pick := range []func(*Env, *rand.Rand) int{
					pickRandom, policyPicker(BestFit{}), policyPicker(&RoundRobin{}),
				} {
					env.Reset(tasks)
					invariantRun(t, env, pick, rand.New(rand.NewSource(seed*7+3)), 200)
				}
			}
		})
	}
}

// TestInvariantsStreamingSource runs the harness over a streaming sampler
// source (tasks never materialized) including an unknown-total CSV-style
// wrapper, exercising the peek/pull path under random actions.
func TestInvariantsStreamingSource(t *testing.T) {
	specs := benchCluster()
	cfg := invariantConfigs(specs)["ranked"]
	m := workload.Lookup(workload.Google)
	for seed := int64(1); seed <= 3; seed++ {
		src := NewSamplerSource(m, seed, 200, specs)
		env, err := NewEnvSource(cfg, src)
		if err != nil {
			t.Fatal(err)
		}
		invariantRun(t, env, pickFeasible, rand.New(rand.NewSource(seed)), 25)

		// Same source via an unknown-total wrapper: requires MaxSteps.
		src.Rewind()
		cfgU := cfg
		cfgU.MaxSteps = 20000
		envU, err := NewEnvSource(cfgU, unknownTotal{src})
		if err != nil {
			t.Fatal(err)
		}
		invariantRun(t, envU, pickFeasible, rand.New(rand.NewSource(seed)), 25)
		if envU.SourceErr() != nil {
			t.Fatalf("unexpected source error: %v", envU.SourceErr())
		}
	}
}

// unknownTotal masks a source's total, modeling CSV-style streams.
type unknownTotal struct{ src TaskSource }

func (u unknownTotal) Next() (workload.Task, bool) { return u.src.Next() }
func (u unknownTotal) Total() int                  { return -1 }
func (u unknownTotal) Err() error                  { return u.src.Err() }

// TestUnknownTotalRequiresMaxSteps pins the guard: an unknown-total source
// without a step cap is a configuration error, not a hang.
func TestUnknownTotalRequiresMaxSteps(t *testing.T) {
	specs := benchCluster()
	cfg := DefaultConfig(specs)
	src := NewSamplerSource(workload.Lookup(workload.Google), 1, 10, specs)
	if _, err := NewEnvSource(cfg, unknownTotal{src}); err == nil {
		t.Fatal("NewEnvSource accepted an unknown-total source without MaxSteps")
	}
	// Envs built through NewEnv/NewEnvSource always carry a materialized
	// MaxSteps, so resetting one onto an unknown-total source is fine.
	env := MustNewEnv(cfg, nil)
	if err := env.ResetSource(unknownTotal{src}); err != nil {
		t.Fatalf("ResetSource with a materialized MaxSteps: %v", err)
	}
}

// TestSourceFailureShutsDownDeterministically pins srcFail: a source that
// yields a malformed task (or regressing arrivals) stops feeding, reports
// SourceErr, and the episode completes over the tasks already admitted.
func TestSourceFailureShutsDownDeterministically(t *testing.T) {
	specs := []VMSpec{{CPU: 4, Mem: 8}}
	cfg := DefaultConfig(specs)
	cfg.MaxSteps = 500
	cases := []struct {
		name  string
		tasks []workload.Task
	}{
		{"zero-duration", []workload.Task{
			{ID: 0, Arrival: 0, CPU: 1, Mem: 1, Duration: 2},
			{ID: 1, Arrival: 1, CPU: 1, Mem: 1, Duration: 0},
			{ID: 2, Arrival: 2, CPU: 1, Mem: 1, Duration: 2},
		}},
		{"arrival-regression", []workload.Task{
			{ID: 0, Arrival: 3, CPU: 1, Mem: 1, Duration: 2},
			{ID: 1, Arrival: 1, CPU: 1, Mem: 1, Duration: 2},
		}},
		{"bad-memory", []workload.Task{
			{ID: 0, Arrival: 0, CPU: 1, Mem: 1, Duration: 2},
			{ID: 1, Arrival: 0, CPU: 1, Mem: math.NaN(), Duration: 2},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			env, err := NewEnvSource(cfg, &scriptedSource{tasks: tc.tasks})
			if err != nil {
				t.Fatal(err)
			}
			for !env.Done() {
				env.Step(FirstFit{}.SelectAction(env))
				checkStepInvariants(t, env)
			}
			env.Drain()
			if env.SourceErr() == nil {
				t.Fatal("source error not reported")
			}
			if got := len(env.Records()); got != 1 {
				t.Fatalf("placed %d tasks, want exactly the 1 valid pre-failure task", got)
			}
		})
	}
}

// scriptedSource replays a fixed script without validation (unlike
// SliceSource it can carry malformed tasks) and claims an unknown total so
// validation failures are attributable to the environment, with totals
// recomputed by srcFail.
type scriptedSource struct {
	tasks []workload.Task
	pos   int
}

func (s *scriptedSource) Next() (workload.Task, bool) {
	if s.pos >= len(s.tasks) {
		return workload.Task{}, false
	}
	t := s.tasks[s.pos]
	s.pos++
	return t, true
}

func (s *scriptedSource) Total() int { return -1 }
func (s *scriptedSource) Err() error { return nil }

// failingSource errors mid-stream, exercising the Err() branch of the
// admit loop.
type failingSource struct{ emitted int }

func (s *failingSource) Next() (workload.Task, bool) {
	if s.emitted >= 2 {
		return workload.Task{}, false
	}
	s.emitted++
	return workload.Task{ID: s.emitted, Arrival: 0, CPU: 1, Mem: 1, Duration: 1}, true
}

func (s *failingSource) Total() int { return -1 }
func (s *failingSource) Err() error {
	if s.emitted >= 2 {
		return fmt.Errorf("backing store went away")
	}
	return nil
}

// TestCSVSourceMidStreamFailure drives an episode from a CSV trace whose
// 11th row is invalid (malformed field or arrival regression): the ten good
// rows must be admitted and placed exactly as from a fully-valid trace, and
// the failure must surface deterministically via SourceErr — run twice, the
// two episodes are identical.
func TestCSVSourceMidStreamFailure(t *testing.T) {
	specs := []VMSpec{{CPU: 8, Mem: 16}, {CPU: 8, Mem: 16}}
	good := ClampTasks(workload.Lookup(workload.Google).Sample(rand.New(rand.NewSource(21)), 10), specs)
	var buf bytes.Buffer
	if err := workload.ExportCSV(&buf, good); err != nil {
		t.Fatal(err)
	}
	prefix := buf.String()
	lastArrival := good[len(good)-1].Arrival
	cases := map[string]string{
		"malformed-row": "x,bogus,1,1,1,0\n",
		"out-of-order":  fmt.Sprintf("10,%d,1,1,1,0\n", lastArrival-1),
	}
	for name, bad := range cases {
		t.Run(name, func(t *testing.T) {
			run := func() ([]TaskRecord, error) {
				src, err := NewCSVSource(strings.NewReader(prefix + bad))
				if err != nil {
					t.Fatal(err)
				}
				cfg := DefaultConfig(specs)
				cfg.MaxSteps = 500
				env, err := NewEnvSource(cfg, src)
				if err != nil {
					t.Fatal(err)
				}
				for !env.Done() {
					env.Step(FirstFit{}.SelectAction(env))
					checkStepInvariants(t, env)
				}
				env.Drain()
				return append([]TaskRecord(nil), env.Records()...), env.SourceErr()
			}
			recs, srcErr := run()
			if srcErr == nil {
				t.Fatal("mid-stream CSV failure not surfaced via SourceErr")
			}
			if len(recs) != len(good) {
				t.Fatalf("placed %d tasks, want the %d valid pre-failure rows", len(recs), len(good))
			}
			recs2, srcErr2 := run()
			if srcErr2 == nil || srcErr2.Error() != srcErr.Error() {
				t.Fatalf("shutdown not deterministic: %v vs %v", srcErr, srcErr2)
			}
			if len(recs2) != len(recs) {
				t.Fatalf("record counts differ across runs: %d vs %d", len(recs2), len(recs))
			}
			for i := range recs {
				if recs[i] != recs2[i] {
					t.Fatalf("record %d differs across runs: %+v vs %+v", i, recs[i], recs2[i])
				}
			}
		})
	}
}

func TestSourceErrPropagates(t *testing.T) {
	cfg := DefaultConfig([]VMSpec{{CPU: 4, Mem: 8}})
	cfg.MaxSteps = 100
	env, err := NewEnvSource(cfg, &failingSource{})
	if err != nil {
		t.Fatal(err)
	}
	for !env.Done() {
		env.Step(FirstFit{}.SelectAction(env))
	}
	env.Drain()
	if env.SourceErr() == nil {
		t.Fatal("mid-stream source error not surfaced via SourceErr")
	}
	if len(env.Records()) != 2 {
		t.Fatalf("placed %d tasks, want the 2 emitted before the failure", len(env.Records()))
	}
}
