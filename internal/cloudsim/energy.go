package cloudsim

import "repro/internal/workload"

// The paper notes its reward "can be easily extended to accommodate other
// optimization objectives, such as makespan, cost, energy consumption"
// (§4.2). This file makes that concrete: a linear power model and a
// per-slot billing model per VM, two additional reward terms, and the
// corresponding episode metrics. Both default to "off" so the baseline
// environment matches the paper exactly.

// PowerModel is the standard linear server power curve: a powered-on VM
// draws IdleWatts plus (PeakWatts−IdleWatts)·cpuUtilization. VMs with no
// running tasks are assumed scaled to zero (no draw) — the setting in
// which placement policy actually moves the energy bill.
type PowerModel struct {
	IdleWatts float64
	PeakWatts float64
}

// DefaultPowerModel approximates a commodity 2-socket server.
func DefaultPowerModel() PowerModel { return PowerModel{IdleWatts: 100, PeakWatts: 300} }

// draw returns the instantaneous wattage for a VM at the given CPU
// utilization; zero when the VM runs nothing.
func (p PowerModel) draw(cpuUtil float64, busy bool) float64 {
	if !busy {
		return 0
	}
	return p.IdleWatts + (p.PeakWatts-p.IdleWatts)*cpuUtil
}

// ObjectiveWeights generalizes Eq. (6): the placement reward becomes
//
//	R = wR·R_res + wL·R_load + wE·R_energy + wC·R_cost
//
// with the weights normalized to sum 1. R_energy rewards placements that
// add little marginal power (consolidating onto already-busy VMs);
// R_cost rewards placements that avoid waking a billed VM. Zero-value
// weights reproduce the paper's two-term reward via Config.Rho.
//
// The SLO fields shape and score placements per service class, outside the
// normalized mix: SLOWaitCost subtracts cost·wait from every placement of a
// task in that class, and SLOWaitTarget sets the per-class wait threshold
// (in slots) behind Metrics.PerSLO violation counts. All-zero SLO fields
// reproduce the unshaped reward and metrics bit-for-bit.
type ObjectiveWeights struct {
	Response    float64
	LoadBalance float64
	Energy      float64
	Cost        float64

	SLOWaitCost   [workload.NumSLOClasses]float64
	SLOWaitTarget [workload.NumSLOClasses]int
}

// sloIndex clamps a task's class into the weights/metrics range, so tasks
// from hand-built traces with out-of-range classes count as best-effort.
func sloIndex(c workload.SLOClass) int {
	if c < 0 || int(c) >= workload.NumSLOClasses {
		return 0
	}
	return int(c)
}

// normalized returns the weights scaled to sum to 1; an all-zero value
// falls back to the paper's (ρ, 1−ρ) pair.
func (w ObjectiveWeights) normalized(rho float64) ObjectiveWeights {
	sum := w.Response + w.LoadBalance + w.Energy + w.Cost
	if sum <= 0 {
		return ObjectiveWeights{Response: rho, LoadBalance: 1 - rho}
	}
	return ObjectiveWeights{
		Response:    w.Response / sum,
		LoadBalance: w.LoadBalance / sum,
		Energy:      w.Energy / sum,
		Cost:        w.Cost / sum,
	}
}

// energyReward scores a placement by its marginal power draw: 1 for a
// free placement (consolidation onto a busy VM adds only dynamic power),
// approaching 0 for waking the largest idle VM.
func (e *Env) energyReward(vm *VM, wasBusy bool, utilBefore, utilAfter float64) float64 {
	pm := e.cfg.Power
	marginal := pm.draw(utilAfter, true) - pm.draw(utilBefore, wasBusy)
	if marginal < 0 {
		marginal = 0
	}
	if pm.PeakWatts <= 0 {
		return 1
	}
	r := 1 - marginal/pm.PeakWatts
	if r < 0 {
		r = 0
	}
	return r
}

// costReward scores a placement 1 when the VM was already billed (busy)
// and proportionally less the pricier the VM it wakes.
func (e *Env) costReward(vmIdx int, wasBusy bool) float64 {
	if wasBusy {
		return 1
	}
	maxPrice := 0.0
	for i := range e.vms {
		if p := e.vmPrice(i); p > maxPrice {
			maxPrice = p
		}
	}
	if maxPrice <= 0 {
		return 1
	}
	return 1 - e.vmPrice(vmIdx)/maxPrice
}

// vmPrice returns the per-slot price of VM i. With no explicit price table
// the price is proportional to capacity (CPU + Mem/8, a rough on-demand
// pricing shape).
func (e *Env) vmPrice(i int) float64 {
	if len(e.cfg.Prices) == len(e.vms) && len(e.cfg.Prices) > 0 {
		return e.cfg.Prices[i]
	}
	spec := e.vms[i].Spec
	return float64(spec.CPU) + spec.Mem/8
}
