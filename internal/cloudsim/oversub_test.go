package cloudsim

import (
	"testing"

	"repro/internal/workload"
)

// TestSlowedDurationTable pins the placement-time slowdown model on a VM
// with spec {2 vCPU, 4 GiB} at ratio 2 (cap 4 vCPU): while committed vCPUs
// stay within the 2 physical cores the task runs at full speed; past that,
// runtime stretches by usedAfter/physical, rounded up.
func TestSlowedDurationTable(t *testing.T) {
	cases := []struct {
		name     string
		freeCPU  int // free schedulable vCPUs before placement (cap 4)
		cpu, dur int
		want     int
	}{
		{"within-physical", 4, 2, 4, 4},           // usedAfter 2 ≤ 2
		{"first-overcommit", 2, 1, 2, 3},          // usedAfter 3 → ⌈2·3/2⌉
		{"full-overcommit", 1, 1, 2, 4},           // usedAfter 4 → ⌈2·4/2⌉
		{"overcommit-odd-ceil", 4, 3, 5, 8},       // usedAfter 3 → ⌈5·3/2⌉
		{"whole-cap-single-task", 4, 4, 1, 2},     // usedAfter 4 → ⌈1·4/2⌉
		{"boundary-exact-physical", 3, 1, 7, 7},   // usedAfter 2 ≤ 2
		{"one-slot-task-slowed", 2, 2, 1, 2},      // usedAfter 4 → ⌈1·4/2⌉
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := &VM{}
			v.reset(VMSpec{CPU: 2, Mem: 4}, 2)
			if v.capCPU != 4 || v.capMem != 8 {
				t.Fatalf("cap = (%d, %g), want (4, 8)", v.capCPU, v.capMem)
			}
			v.freeCPU = tc.freeCPU
			if got := v.slowedDuration(tc.cpu, tc.dur); got != tc.want {
				t.Fatalf("slowedDuration(cpu=%d, dur=%d) with free %d = %d, want %d",
					tc.cpu, tc.dur, tc.freeCPU, got, tc.want)
			}
		})
	}
}

// TestOversubScenarioHandComputed works a full 3-VM oversubscription
// episode out by hand: three tasks stacked on VM0 (spec 2 vCPU / 4 GiB,
// ratio 2 → cap 4 vCPU / 8 GiB) and one on VM1.
//
//	A {2 vCPU, 2 GiB, dur 4} at t=0: committed 2 ≤ 2 physical  → dur 4, finish 4
//	B {1 vCPU, 2 GiB, dur 2} at t=0: committed 3 > 2           → ⌈2·3/2⌉ = 3, finish 3
//	C {1 vCPU, 2 GiB, dur 2} at t=0: committed 4 > 2           → ⌈2·4/2⌉ = 4, finish 4
//	D {1 vCPU, 2 GiB, dur 3} at t=0 on empty VM1               → dur 3, finish 3
//
// Retirement order by (finish, task ID): (3,B), (3,D), (4,A), (4,C).
func TestOversubScenarioHandComputed(t *testing.T) {
	specs := []VMSpec{{CPU: 2, Mem: 4}, {CPU: 2, Mem: 4}, {CPU: 2, Mem: 4}}
	cfg := DefaultConfig(specs)
	cfg.Oversub = 2
	cfg.PadVCPUs = 4 // caps grow to 4 schedulable vCPUs per VM
	cfg.MaxCPU = 4
	tasks := []workload.Task{
		{ID: 0, Arrival: 0, CPU: 2, Mem: 2, Duration: 4}, // A
		{ID: 1, Arrival: 0, CPU: 1, Mem: 2, Duration: 2}, // B
		{ID: 2, Arrival: 0, CPU: 1, Mem: 2, Duration: 2}, // C
		{ID: 3, Arrival: 0, CPU: 1, Mem: 2, Duration: 3}, // D
	}
	env := MustNewEnv(cfg, tasks)

	var popped []completion
	env.retireHook = func(c completion) { popped = append(popped, c) }
	defer func() { env.retireHook = nil }()

	for _, action := range []int{0, 0, 0, 1} {
		env.Step(action)
	}
	if !env.Done() {
		t.Fatal("all four tasks placed; episode should be done")
	}
	env.Drain()

	wantRecords := []TaskRecord{
		{Task: tasks[0], Start: 0, Finish: 4},
		{Task: tasks[1], Start: 0, Finish: 3},
		{Task: tasks[2], Start: 0, Finish: 4},
		{Task: tasks[3], Start: 0, Finish: 3},
	}
	wantRecords[0].Task.Duration = 4 // unchanged
	wantRecords[1].Task.Duration = 3 // slowed from 2
	wantRecords[2].Task.Duration = 4 // slowed from 2
	wantRecords[3].Task.Duration = 3 // unchanged
	recs := env.Records()
	if len(recs) != len(wantRecords) {
		t.Fatalf("%d records, want %d", len(recs), len(wantRecords))
	}
	for i, want := range wantRecords {
		if recs[i] != want {
			t.Fatalf("record %d: got %+v, want %+v", i, recs[i], want)
		}
	}

	wantPops := []struct{ finish, id int }{{3, 1}, {3, 3}, {4, 0}, {4, 2}}
	if len(popped) != len(wantPops) {
		t.Fatalf("%d retirements, want %d", len(popped), len(wantPops))
	}
	for i, want := range wantPops {
		if popped[i].finish != want.finish || popped[i].id != want.id {
			t.Fatalf("retirement %d: got (%d,%d), want (%d,%d)",
				i, popped[i].finish, popped[i].id, want.finish, want.id)
		}
	}

	// Everything returned to the free pool.
	for i, vm := range env.VMs() {
		if vm.FreeCPU() != vm.CapCPU() || vm.FreeMem() != vm.CapMem() {
			t.Fatalf("VM %d not fully freed: %d/%d CPU, %g/%g mem",
				i, vm.FreeCPU(), vm.CapCPU(), vm.FreeMem(), vm.CapMem())
		}
	}
}

// TestOversubConfigValidate pins the configuration guards around the
// oversubscription knob.
func TestOversubConfigValidate(t *testing.T) {
	base := DefaultConfig([]VMSpec{{CPU: 4, Mem: 8}})
	bad := base
	bad.Oversub = 0.5
	if err := bad.Validate(); err == nil {
		t.Fatal("Oversub 0.5 accepted")
	}
	bad = base
	bad.Oversub = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative Oversub accepted")
	}
	// Ratio 2 doubles capCPU to 8 > PadVCPUs 4: must be rejected until the
	// padding cap is raised to cover the oversubscribed vCPUs.
	bad = base
	bad.Oversub = 2
	if err := bad.Validate(); err == nil {
		t.Fatal("capCPU > PadVCPUs accepted")
	}
	ok := base
	ok.Oversub = 2
	ok.PadVCPUs = 8
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid oversubscribed config rejected: %v", err)
	}
	for _, ratio := range []float64{0, 1} {
		off := base
		off.Oversub = ratio
		if err := off.Validate(); err != nil {
			t.Fatalf("Oversub %v (off) rejected: %v", ratio, err)
		}
	}
}

// TestOversubAdmitsBeyondPhysical pins the headline capability: a VM's
// schedulable capacity exceeds its physical resources, so placements that
// the plain engine rejects are admitted (and slowed).
func TestOversubAdmitsBeyondPhysical(t *testing.T) {
	specs := []VMSpec{{CPU: 2, Mem: 2}}
	tasks := []workload.Task{
		{ID: 0, Arrival: 0, CPU: 2, Mem: 2, Duration: 2},
		{ID: 1, Arrival: 0, CPU: 2, Mem: 2, Duration: 2},
	}
	plain := DefaultConfig(specs)
	env := MustNewEnv(plain, tasks)
	env.Step(0)
	if r := env.Step(0); r >= 0 {
		t.Fatalf("plain engine admitted a second task on a full VM (reward %v)", r)
	}

	over := plain
	over.Oversub = 2
	over.PadVCPUs = 4
	envO := MustNewEnv(over, tasks)
	envO.Step(0)
	if r := envO.Step(0); r <= 0 {
		t.Fatalf("oversubscribed engine rejected an in-cap placement (reward %v)", r)
	}
	recs := envO.Records()
	if recs[1].Task.Duration != 4 { // committed 4 on 2 physical → ⌈2·4/2⌉
		t.Fatalf("second task duration %d, want 4 (slowed)", recs[1].Task.Duration)
	}
}
