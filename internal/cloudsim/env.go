package cloudsim

import (
	"fmt"
	"math"

	"repro/internal/workload"
)

// NumResources is d in the paper: the number of resource dimensions
// (vCPU and memory).
const NumResources = 2

// Config parameterizes an Env. PadVMs / PadVCPUs are the federation-wide
// caps L and U^vcpu: every client's observation is padded to these sizes so
// all agents share network shapes (§4.1, "void" positions in Fig. 6).
type Config struct {
	VMs []VMSpec

	// Observation padding and normalization (federation-wide constants).
	PadVMs     int     // L: observation covers this many VM slots
	PadVCPUs   int     // U^vcpu: per-VM vCPU slots in the observation
	MaxCPU     int     // U^vcpu normalization cap for requests/capacities
	MaxMem     float64 // U^mem normalization cap in GiB
	QueueDepth int     // Q: queued tasks visible in the observation

	// Reward shaping.
	Rho             float64               // ρ in Eq. (6); weight of the response reward
	ResourceWeights [NumResources]float64 // w_i in Eqs. (4), (9), (24)
	LazyPenalty     float64               // negative constant for waiting despite a feasible VM

	// Extended objectives (§4.2's "easily extended" reward). A zero-value
	// Objectives reproduces the paper's two-term reward from Rho.
	Objectives ObjectiveWeights
	// Power models VM energy draw for the energy objective and metrics.
	Power PowerModel
	// Prices optionally gives per-VM per-slot prices (len must equal
	// len(VMs)); when empty, prices are derived from capacity.
	Prices []float64

	// MaxSteps caps an episode (0 means a generous default of
	// 50·len(tasks)+1000 steps).
	MaxSteps int
}

// DefaultConfig returns the configuration used throughout the experiments:
// ρ = 0.5, equal resource weights, lazy penalty −8 (slightly worse than the
// worst invalid-placement penalty −e^Σw·util ≥ −e).
func DefaultConfig(vms []VMSpec) Config {
	return Config{
		VMs:             vms,
		PadVMs:          len(vms),
		PadVCPUs:        maxVCPU(vms),
		MaxCPU:          maxVCPU(vms),
		MaxMem:          maxMem(vms),
		QueueDepth:      5,
		Rho:             0.5,
		ResourceWeights: [NumResources]float64{0.5, 0.5},
		LazyPenalty:     -8,
		Power:           DefaultPowerModel(),
	}
}

func maxVCPU(vms []VMSpec) int {
	m := 1
	for _, v := range vms {
		if v.CPU > m {
			m = v.CPU
		}
	}
	return m
}

func maxMem(vms []VMSpec) float64 {
	m := 1.0
	for _, v := range vms {
		if v.Mem > m {
			m = v.Mem
		}
	}
	return m
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	switch {
	case len(c.VMs) == 0:
		return fmt.Errorf("cloudsim: no VMs")
	case c.PadVMs < len(c.VMs):
		return fmt.Errorf("cloudsim: PadVMs %d < actual VMs %d", c.PadVMs, len(c.VMs))
	case c.QueueDepth < 1:
		return fmt.Errorf("cloudsim: QueueDepth must be >= 1")
	case c.Rho < 0 || c.Rho > 1:
		return fmt.Errorf("cloudsim: Rho must be in [0,1]")
	case c.MaxCPU < 1 || c.MaxMem <= 0:
		return fmt.Errorf("cloudsim: invalid normalization caps")
	case len(c.Prices) > 0 && len(c.Prices) != len(c.VMs):
		return fmt.Errorf("cloudsim: %d prices for %d VMs", len(c.Prices), len(c.VMs))
	}
	for _, v := range c.VMs {
		if v.CPU < 1 || v.Mem <= 0 {
			return fmt.Errorf("cloudsim: invalid VM spec %+v", v)
		}
		if v.CPU > c.PadVCPUs {
			return fmt.Errorf("cloudsim: VM has %d vCPUs > PadVCPUs %d", v.CPU, c.PadVCPUs)
		}
	}
	return nil
}

// TaskRecord is the outcome of one completed task.
type TaskRecord struct {
	Task   workload.Task
	Start  int // slot the task was placed
	Finish int // slot the task completed
}

// Wait returns the task's queueing delay j^wait.
func (r TaskRecord) Wait() int { return r.Start - r.Task.Arrival }

// Response returns j^res = j^wait + j^run (Eq. 3).
func (r TaskRecord) Response() int { return r.Finish - r.Task.Arrival }

// completion is one entry of the cluster-wide completion heap: a task in a
// VM's store, keyed by the slot it finishes in with the task ID as the
// tie-break. The ordering makes same-slot retirements deterministic.
type completion struct {
	finish int
	id     int
	vm     int32
	slot   int32
}

// completionLess orders the heap by (finish slot, task ID).
func completionLess(a, b completion) bool {
	return a.finish < b.finish || (a.finish == b.finish && a.id < b.id)
}

// Env is one client's scheduling environment. It is deterministic: all
// stochasticity lives in the workload sampling and the agent's policy.
// An Env is not safe for concurrent use.
//
// The state engine is event-driven: every placement pushes its known finish
// slot onto a completion min-heap, and advancing time pops exactly the
// tasks that finish — in (finish slot, task ID) order — instead of scanning
// every VM. The waiting and pending queues are cursor-indexed so popping
// does not re-slice the backing arrays forever, and Reset reuses all
// buffers, keeping steady-state Step at zero allocations.
type Env struct {
	cfg  Config
	vms  []*VM
	now  int
	step int

	pending []workload.Task // sorted by arrival; phead..len not yet arrived
	phead   int
	queue   []workload.Task // waiting queue (FIFO); qhead..len are waiting
	qhead   int

	heap []completion // min-heap of outstanding task completions

	mask     []bool    // scratch reused by FeasibleActions
	obsProto []float64 // static observation template (see buildObsProto)

	completed  []TaskRecord
	totalTasks int

	// Time-integrated accumulators for Eqs. (24)–(25). Slot 0 counts.
	utilSum    [NumResources]float64
	loadBalSum float64
	energySum  float64 // watt-slots across all VMs
	costSum    float64 // price-slots across busy VMs
	slots      int

	// Last placement's component rewards (see placementReward).
	lastRespReward float64
	lastLoadReward float64
}

// NewEnv creates an environment and loads the given task set.
func NewEnv(cfg Config, tasks []workload.Task) (*Env, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 50*len(tasks) + 1000
	}
	e := &Env{cfg: cfg}
	e.Reset(tasks)
	return e, nil
}

// MustNewEnv is NewEnv that panics on configuration errors (test helper).
func MustNewEnv(cfg Config, tasks []workload.Task) *Env {
	e, err := NewEnv(cfg, tasks)
	if err != nil {
		panic(err)
	}
	return e
}

// Reset reinitializes the environment with a new task set, keeping the
// configuration. Tasks must be sorted by arrival (workload generators
// guarantee this). All internal buffers are reused, so resetting with a
// same-shaped workload does not allocate in steady state.
func (e *Env) Reset(tasks []workload.Task) {
	if len(e.vms) != len(e.cfg.VMs) {
		e.vms = make([]*VM, len(e.cfg.VMs))
		for i := range e.vms {
			e.vms[i] = &VM{}
		}
	}
	for i, spec := range e.cfg.VMs {
		e.vms[i].reset(spec)
	}
	e.now = 0
	e.step = 0
	e.pending = append(e.pending[:0], tasks...)
	e.phead = 0
	e.queue = e.queue[:0]
	e.qhead = 0
	e.heap = e.heap[:0]
	e.completed = e.completed[:0]
	e.totalTasks = len(tasks)
	e.buildObsProto()
	e.utilSum = [NumResources]float64{}
	e.loadBalSum = 0
	e.energySum = 0
	e.costSum = 0
	e.slots = 0
	e.admitArrivals()
	e.accumulateSlotStats()
}

// Config returns the environment configuration.
func (e *Env) Config() Config { return e.cfg }

// Now returns the current time slot.
func (e *Env) Now() int { return e.now }

// QueueLen returns the number of waiting tasks.
func (e *Env) QueueLen() int { return len(e.queue) - e.qhead }

// PendingLen returns the number of tasks that have not yet arrived.
func (e *Env) PendingLen() int { return len(e.pending) - e.phead }

// HeadTask returns the task at the head of the waiting queue.
func (e *Env) HeadTask() (workload.Task, bool) {
	if e.qhead == len(e.queue) {
		return workload.Task{}, false
	}
	return e.queue[e.qhead], true
}

// popHead removes the waiting queue's head. Popping advances a cursor
// rather than re-slicing, and the buffer is compacted once the consumed
// prefix dominates it, so a long episode does not pin the whole backing
// array the way `queue = queue[1:]` did.
func (e *Env) popHead() {
	e.qhead++
	switch {
	case e.qhead == len(e.queue):
		e.queue = e.queue[:0]
		e.qhead = 0
	case e.qhead >= 64 && 2*e.qhead >= len(e.queue):
		n := copy(e.queue, e.queue[e.qhead:])
		e.queue = e.queue[:n]
		e.qhead = 0
	}
}

// VMs exposes the simulated machines (read-only use expected).
func (e *Env) VMs() []*VM { return e.vms }

// NumActions returns |A| = PadVMs + 1; the last action index is Wait.
func (e *Env) NumActions() int { return e.cfg.PadVMs + 1 }

// WaitAction returns the index encoding the paper's action −1 (do nothing).
func (e *Env) WaitAction() int { return e.cfg.PadVMs }

// Done reports whether the episode has ended: all tasks completed, or the
// step cap was hit.
func (e *Env) Done() bool {
	return len(e.completed) == e.totalTasks || e.step >= e.cfg.MaxSteps
}

// Truncated reports whether the episode ended on the MaxSteps cap with work
// still outstanding — a horizon cut, not a terminal. The scheduling MDP
// would have kept running, so value estimation should bootstrap the tail
// (see rl.Truncator) instead of treating the unfinished tasks as worthless.
func (e *Env) Truncated() bool {
	return e.step >= e.cfg.MaxSteps && len(e.completed) != e.totalTasks
}

// FeasibleActions returns a mask over the action space: placements that fit
// the head task, plus Wait (always allowed). With an empty queue only Wait
// is feasible. The returned slice is a scratch buffer reused by the next
// FeasibleActions call; callers that need to retain it across steps should
// use FeasibleActionsInto with their own buffer.
func (e *Env) FeasibleActions() []bool {
	e.mask = e.FeasibleActionsInto(e.mask)
	return e.mask
}

// FeasibleActionsInto writes the feasibility mask into dst (reallocating
// when dst is too small) and returns the buffer, so rollout loops can stay
// allocation-free.
func (e *Env) FeasibleActionsInto(dst []bool) []bool {
	n := e.NumActions()
	if cap(dst) < n {
		dst = make([]bool, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = false
	}
	dst[e.WaitAction()] = true
	head, ok := e.HeadTask()
	if !ok {
		return dst
	}
	for i, vm := range e.vms {
		dst[i] = vm.Fits(head)
	}
	return dst
}

// anyFeasiblePlacement reports whether some real VM fits the head task.
func (e *Env) anyFeasiblePlacement() bool {
	head, ok := e.HeadTask()
	if !ok {
		return false
	}
	for _, vm := range e.vms {
		if vm.Fits(head) {
			return true
		}
	}
	return false
}

// Step executes one action and returns the reward. Semantics (§4.2):
//
//   - Valid placement: the head task starts on the chosen VM now; reward
//     Eq. (6); time does NOT advance, so the agent may keep scheduling
//     within the slot.
//   - Invalid placement (VM index ≥ len(VMs), a padded "void" VM, or
//     insufficient free resources): reward Eq. (9); the task stays queued
//     and time advances one slot.
//   - Wait with a feasible VM available: the lazy penalty; time advances.
//   - Wait with no feasible placement (or empty queue): reward 0; time
//     advances.
//
// Step panics if called after Done or with an out-of-range action.
func (e *Env) Step(action int) float64 {
	if e.Done() {
		panic("cloudsim: Step after episode end")
	}
	if action < 0 || action >= e.NumActions() {
		panic(fmt.Sprintf("cloudsim: action %d out of range [0,%d)", action, e.NumActions()))
	}
	e.step++

	head, hasHead := e.HeadTask()
	if action == e.WaitAction() || !hasHead {
		reward := 0.0
		if hasHead && e.anyFeasiblePlacement() {
			reward = e.cfg.LazyPenalty
			mSimLazyWaits.Inc()
		} else {
			mSimIdleWaits.Inc()
		}
		e.advanceTime()
		return reward
	}

	if action >= len(e.vms) || !e.vms[action].Fits(head) {
		// Invalid: denied and penalized by the target VM's utilization
		// (Eq. 9). Void VM slots count as fully utilized.
		reward := e.invalidPenalty(action)
		mSimInvalid.Inc()
		e.advanceTime()
		return reward
	}

	// Valid placement.
	mSimPlacements.Inc()
	vm := e.vms[action]
	before := e.loadBalance()
	wasBusy := vm.RunningTasks() > 0
	utilBefore := vm.utilization(0)
	slot := vm.place(head, e.now)
	e.heapPush(completion{
		finish: e.now + head.Duration,
		id:     head.ID,
		vm:     int32(action),
		slot:   int32(slot),
	})
	e.popHead()
	after := e.loadBalance()
	utilAfter := vm.utilization(0)
	// The record's Finish is known at placement time because the simulator
	// is deterministic (fixed durations, no preemption).
	e.completed = append(e.completed, TaskRecord{
		Task:   head,
		Start:  e.now,
		Finish: e.now + head.Duration,
	})
	base := e.placementReward(head, before, after)
	w := e.cfg.Objectives.normalized(e.cfg.Rho)
	if w.Energy == 0 && w.Cost == 0 {
		return base
	}
	// Extended objective mix: rescale the two paper terms into the
	// normalized weight vector and add the energy/cost terms.
	respTerm, loadTerm := e.lastRespReward, e.lastLoadReward
	return w.Response*respTerm + w.LoadBalance*loadTerm +
		w.Energy*e.energyReward(vm, wasBusy, utilBefore, utilAfter) +
		w.Cost*e.costReward(action, wasBusy)
}

// invalidPenalty implements Eq. (9): −e^{Σ_i w_i·util_i} for the denied VM.
func (e *Env) invalidPenalty(action int) float64 {
	s := 0.0
	if action < len(e.vms) {
		for i := 0; i < NumResources; i++ {
			s += e.cfg.ResourceWeights[i] * e.vms[action].utilization(i)
		}
	} else {
		// Padded void VM: treat as fully utilized.
		for i := 0; i < NumResources; i++ {
			s += e.cfg.ResourceWeights[i]
		}
	}
	return -math.Exp(s)
}

// placementReward implements Eqs. (6)–(8). The two component terms are
// retained in lastRespReward / lastLoadReward so the extended-objective mix
// can reuse them without recomputation.
func (e *Env) placementReward(t workload.Task, loadBefore, loadAfter float64) float64 {
	wait := float64(e.now - t.Arrival)
	run := float64(t.Duration)
	res := wait + run
	// Eq. (7): R_res = e^{j_run/j_res} ∈ (1, e]; rescale to (0,1] so the two
	// reward terms share a scale (the paper normalizes by j_run; dividing by
	// e keeps the same ordering and bounds the sum by 1).
	rRes := math.Exp(run/res) / math.E

	// Eq. (8) as printed: Load_c = LoadBal(t') − LoadBal(t); reward 1 when
	// the placement improves (or preserves) balance, else the raw Load_c
	// (a small positive number well below 1, so worsening placements earn
	// strictly less than improving ones).
	loadC := loadAfter - loadBefore
	rLoad := 1.0
	if loadC > 0 {
		rLoad = loadC
	}
	e.lastRespReward, e.lastLoadReward = rRes, rLoad
	return e.cfg.Rho*rRes + (1-e.cfg.Rho)*rLoad
}

// loadBalance implements Eq. (4): the weighted std-dev of per-VM remaining
// fractions across resources. Lower is more balanced.
func (e *Env) loadBalance() float64 {
	n := float64(len(e.vms))
	total := 0.0
	for i := 0; i < NumResources; i++ {
		avg := 0.0
		for _, vm := range e.vms {
			avg += vm.remainingFraction(i)
		}
		avg /= n
		variance := 0.0
		for _, vm := range e.vms {
			d := vm.remainingFraction(i) - avg
			variance += d * d
		}
		total += e.cfg.ResourceWeights[i] * math.Sqrt(variance/n)
	}
	return total
}

// LoadBalance exposes Eq. (4) for metrics and tests.
func (e *Env) LoadBalance() float64 { return e.loadBalance() }

// advanceTime moves the clock one slot: tasks whose finish slot has come
// are popped off the completion heap (in deterministic (finish, task ID)
// order), new arrivals join the queue, and the per-slot metric accumulators
// update. The pop loop touches only tasks that actually finish, so slots
// where nothing completes cost O(1) instead of a full cluster scan.
func (e *Env) advanceTime() {
	e.now++
	for len(e.heap) > 0 && e.heap[0].finish <= e.now {
		c := e.heapPop()
		e.vms[c.vm].retire(int(c.slot))
	}
	e.admitArrivals()
	e.accumulateSlotStats()
}

// heapPush adds a completion to the min-heap.
func (e *Env) heapPush(c completion) {
	e.heap = append(e.heap, c)
	i := len(e.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !completionLess(e.heap[i], e.heap[parent]) {
			break
		}
		e.heap[i], e.heap[parent] = e.heap[parent], e.heap[i]
		i = parent
	}
}

// heapPop removes and returns the earliest completion.
func (e *Env) heapPop() completion {
	top := e.heap[0]
	n := len(e.heap) - 1
	e.heap[0] = e.heap[n]
	e.heap = e.heap[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && completionLess(e.heap[l], e.heap[small]) {
			small = l
		}
		if r < n && completionLess(e.heap[r], e.heap[small]) {
			small = r
		}
		if small == i {
			break
		}
		e.heap[i], e.heap[small] = e.heap[small], e.heap[i]
		i = small
	}
	return top
}

func (e *Env) admitArrivals() {
	for e.phead < len(e.pending) && e.pending[e.phead].Arrival <= e.now {
		e.queue = append(e.queue, e.pending[e.phead])
		e.phead++
	}
	if e.phead == len(e.pending) {
		e.pending = e.pending[:0]
		e.phead = 0
	}
}

func (e *Env) accumulateSlotStats() {
	for i := 0; i < NumResources; i++ {
		s := 0.0
		for _, vm := range e.vms {
			s += vm.utilization(i)
		}
		e.utilSum[i] += s / float64(len(e.vms))
	}
	e.loadBalSum += e.loadBalance()
	for i, vm := range e.vms {
		busy := vm.RunningTasks() > 0
		e.energySum += e.cfg.Power.draw(vm.utilization(0), busy)
		if busy {
			e.costSum += e.vmPrice(i)
		}
	}
	e.slots++
}

// Inject appends a task to the waiting queue with arrival time = Now. It
// supports dynamic task sources — notably workflow DAGs, where a stage
// becomes schedulable only when its dependencies complete (the paper's
// stated future work). Injection also increments the episode's expected
// task count unless ExpectTotal pre-announced it.
func (e *Env) Inject(t workload.Task) {
	if t.Arrival < e.now {
		t.Arrival = e.now
	}
	e.queue = append(e.queue, t)
	// Keep Done meaningful: the expected count must cover every task the
	// environment knows about. ExpectTotal may already have reserved
	// headroom for this injection.
	if known := e.QueueLen() + e.PendingLen() + len(e.completed); e.totalTasks < known {
		e.totalTasks = known
	}
}

// ExpectTotal declares the episode's true task count up front, so Done
// stays false while future injections are still outstanding (e.g. workflow
// stages whose dependencies have not completed yet). n must be at least
// the number of tasks currently known to the environment.
func (e *Env) ExpectTotal(n int) {
	known := e.QueueLen() + e.PendingLen() + len(e.completed)
	if n < known {
		panic(fmt.Sprintf("cloudsim: ExpectTotal(%d) below known task count %d", n, known))
	}
	e.totalTasks = n
}
