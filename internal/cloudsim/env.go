package cloudsim

import (
	"fmt"
	"math"

	"repro/internal/workload"
)

// NumResources is d in the paper: the number of resource dimensions
// (vCPU and memory).
const NumResources = 2

// Config parameterizes an Env. PadVMs / PadVCPUs are the federation-wide
// caps L and U^vcpu: every client's observation is padded to these sizes so
// all agents share network shapes (§4.1, "void" positions in Fig. 6).
type Config struct {
	VMs []VMSpec

	// Observation padding and normalization (federation-wide constants).
	PadVMs     int     // L: observation covers this many VM slots
	PadVCPUs   int     // U^vcpu: per-VM vCPU slots in the observation
	MaxCPU     int     // U^vcpu normalization cap for requests/capacities
	MaxMem     float64 // U^mem normalization cap in GiB
	QueueDepth int     // Q: queued tasks visible in the observation

	// Reward shaping.
	Rho             float64               // ρ in Eq. (6); weight of the response reward
	ResourceWeights [NumResources]float64 // w_i in Eqs. (4), (9), (24)
	LazyPenalty     float64               // negative constant for waiting despite a feasible VM

	// Extended objectives (§4.2's "easily extended" reward). A zero-value
	// Objectives reproduces the paper's two-term reward from Rho.
	Objectives ObjectiveWeights
	// Power models VM energy draw for the energy objective and metrics.
	Power PowerModel
	// Prices optionally gives per-VM per-slot prices (len must equal
	// len(VMs)); when empty, prices are derived from capacity.
	Prices []float64

	// MaxSteps caps an episode (0 means a generous default of
	// 50·len(tasks)+1000 steps).
	MaxSteps int
}

// DefaultConfig returns the configuration used throughout the experiments:
// ρ = 0.5, equal resource weights, lazy penalty −8 (slightly worse than the
// worst invalid-placement penalty −e^Σw·util ≥ −e).
func DefaultConfig(vms []VMSpec) Config {
	return Config{
		VMs:             vms,
		PadVMs:          len(vms),
		PadVCPUs:        maxVCPU(vms),
		MaxCPU:          maxVCPU(vms),
		MaxMem:          maxMem(vms),
		QueueDepth:      5,
		Rho:             0.5,
		ResourceWeights: [NumResources]float64{0.5, 0.5},
		LazyPenalty:     -8,
		Power:           DefaultPowerModel(),
	}
}

func maxVCPU(vms []VMSpec) int {
	m := 1
	for _, v := range vms {
		if v.CPU > m {
			m = v.CPU
		}
	}
	return m
}

func maxMem(vms []VMSpec) float64 {
	m := 1.0
	for _, v := range vms {
		if v.Mem > m {
			m = v.Mem
		}
	}
	return m
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	switch {
	case len(c.VMs) == 0:
		return fmt.Errorf("cloudsim: no VMs")
	case c.PadVMs < len(c.VMs):
		return fmt.Errorf("cloudsim: PadVMs %d < actual VMs %d", c.PadVMs, len(c.VMs))
	case c.QueueDepth < 1:
		return fmt.Errorf("cloudsim: QueueDepth must be >= 1")
	case c.Rho < 0 || c.Rho > 1:
		return fmt.Errorf("cloudsim: Rho must be in [0,1]")
	case c.MaxCPU < 1 || c.MaxMem <= 0:
		return fmt.Errorf("cloudsim: invalid normalization caps")
	case len(c.Prices) > 0 && len(c.Prices) != len(c.VMs):
		return fmt.Errorf("cloudsim: %d prices for %d VMs", len(c.Prices), len(c.VMs))
	}
	for _, v := range c.VMs {
		if v.CPU < 1 || v.Mem <= 0 {
			return fmt.Errorf("cloudsim: invalid VM spec %+v", v)
		}
		if v.CPU > c.PadVCPUs {
			return fmt.Errorf("cloudsim: VM has %d vCPUs > PadVCPUs %d", v.CPU, c.PadVCPUs)
		}
	}
	return nil
}

// TaskRecord is the outcome of one completed task.
type TaskRecord struct {
	Task   workload.Task
	Start  int // slot the task was placed
	Finish int // slot the task completed
}

// Wait returns the task's queueing delay j^wait.
func (r TaskRecord) Wait() int { return r.Start - r.Task.Arrival }

// Response returns j^res = j^wait + j^run (Eq. 3).
func (r TaskRecord) Response() int { return r.Finish - r.Task.Arrival }

// Env is one client's scheduling environment. It is deterministic: all
// stochasticity lives in the workload sampling and the agent's policy.
// An Env is not safe for concurrent use.
type Env struct {
	cfg  Config
	vms  []*VM
	now  int
	step int

	pending    []workload.Task // sorted by arrival, not yet arrived
	queue      []workload.Task // waiting queue (FIFO)
	completed  []TaskRecord
	totalTasks int

	// Time-integrated accumulators for Eqs. (24)–(25). Slot 0 counts.
	utilSum    [NumResources]float64
	loadBalSum float64
	energySum  float64 // watt-slots across all VMs
	costSum    float64 // price-slots across busy VMs
	slots      int

	// Last placement's component rewards (see placementReward).
	lastRespReward float64
	lastLoadReward float64
}

// NewEnv creates an environment and loads the given task set.
func NewEnv(cfg Config, tasks []workload.Task) (*Env, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 50*len(tasks) + 1000
	}
	e := &Env{cfg: cfg}
	e.Reset(tasks)
	return e, nil
}

// MustNewEnv is NewEnv that panics on configuration errors (test helper).
func MustNewEnv(cfg Config, tasks []workload.Task) *Env {
	e, err := NewEnv(cfg, tasks)
	if err != nil {
		panic(err)
	}
	return e
}

// Reset reinitializes the environment with a new task set, keeping the
// configuration. Tasks must be sorted by arrival (workload generators
// guarantee this).
func (e *Env) Reset(tasks []workload.Task) {
	e.vms = make([]*VM, len(e.cfg.VMs))
	for i, spec := range e.cfg.VMs {
		e.vms[i] = newVM(spec)
	}
	e.now = 0
	e.step = 0
	e.pending = append([]workload.Task(nil), tasks...)
	e.queue = nil
	e.completed = e.completed[:0]
	e.totalTasks = len(tasks)
	e.utilSum = [NumResources]float64{}
	e.loadBalSum = 0
	e.energySum = 0
	e.costSum = 0
	e.slots = 0
	e.admitArrivals()
	e.accumulateSlotStats()
}

// Config returns the environment configuration.
func (e *Env) Config() Config { return e.cfg }

// Now returns the current time slot.
func (e *Env) Now() int { return e.now }

// QueueLen returns the number of waiting tasks.
func (e *Env) QueueLen() int { return len(e.queue) }

// PendingLen returns the number of tasks that have not yet arrived.
func (e *Env) PendingLen() int { return len(e.pending) }

// HeadTask returns the task at the head of the waiting queue.
func (e *Env) HeadTask() (workload.Task, bool) {
	if len(e.queue) == 0 {
		return workload.Task{}, false
	}
	return e.queue[0], true
}

// VMs exposes the simulated machines (read-only use expected).
func (e *Env) VMs() []*VM { return e.vms }

// NumActions returns |A| = PadVMs + 1; the last action index is Wait.
func (e *Env) NumActions() int { return e.cfg.PadVMs + 1 }

// WaitAction returns the index encoding the paper's action −1 (do nothing).
func (e *Env) WaitAction() int { return e.cfg.PadVMs }

// Done reports whether the episode has ended: all tasks completed, or the
// step cap was hit.
func (e *Env) Done() bool {
	return len(e.completed) == e.totalTasks || e.step >= e.cfg.MaxSteps
}

// Truncated reports whether the episode ended on the MaxSteps cap with work
// still outstanding — a horizon cut, not a terminal. The scheduling MDP
// would have kept running, so value estimation should bootstrap the tail
// (see rl.Truncator) instead of treating the unfinished tasks as worthless.
func (e *Env) Truncated() bool {
	return e.step >= e.cfg.MaxSteps && len(e.completed) != e.totalTasks
}

// FeasibleActions returns a mask over the action space: placements that fit
// the head task, plus Wait (always allowed). With an empty queue only Wait
// is feasible.
func (e *Env) FeasibleActions() []bool {
	mask := make([]bool, e.NumActions())
	mask[e.WaitAction()] = true
	head, ok := e.HeadTask()
	if !ok {
		return mask
	}
	for i, vm := range e.vms {
		mask[i] = vm.Fits(head)
	}
	return mask
}

// anyFeasiblePlacement reports whether some real VM fits the head task.
func (e *Env) anyFeasiblePlacement() bool {
	head, ok := e.HeadTask()
	if !ok {
		return false
	}
	for _, vm := range e.vms {
		if vm.Fits(head) {
			return true
		}
	}
	return false
}

// Step executes one action and returns the reward. Semantics (§4.2):
//
//   - Valid placement: the head task starts on the chosen VM now; reward
//     Eq. (6); time does NOT advance, so the agent may keep scheduling
//     within the slot.
//   - Invalid placement (VM index ≥ len(VMs), a padded "void" VM, or
//     insufficient free resources): reward Eq. (9); the task stays queued
//     and time advances one slot.
//   - Wait with a feasible VM available: the lazy penalty; time advances.
//   - Wait with no feasible placement (or empty queue): reward 0; time
//     advances.
//
// Step panics if called after Done or with an out-of-range action.
func (e *Env) Step(action int) float64 {
	if e.Done() {
		panic("cloudsim: Step after episode end")
	}
	if action < 0 || action >= e.NumActions() {
		panic(fmt.Sprintf("cloudsim: action %d out of range [0,%d)", action, e.NumActions()))
	}
	e.step++

	head, hasHead := e.HeadTask()
	if action == e.WaitAction() || !hasHead {
		reward := 0.0
		if hasHead && e.anyFeasiblePlacement() {
			reward = e.cfg.LazyPenalty
			mSimLazyWaits.Inc()
		} else {
			mSimIdleWaits.Inc()
		}
		e.advanceTime()
		return reward
	}

	if action >= len(e.vms) || !e.vms[action].Fits(head) {
		// Invalid: denied and penalized by the target VM's utilization
		// (Eq. 9). Void VM slots count as fully utilized.
		reward := e.invalidPenalty(action)
		mSimInvalid.Inc()
		e.advanceTime()
		return reward
	}

	// Valid placement.
	mSimPlacements.Inc()
	vm := e.vms[action]
	before := e.loadBalance()
	wasBusy := vm.RunningTasks() > 0
	utilBefore := vm.utilization(0)
	vm.place(head, e.now)
	e.queue = e.queue[1:]
	after := e.loadBalance()
	utilAfter := vm.utilization(0)
	// The record's Finish is known at placement time because the simulator
	// is deterministic (fixed durations, no preemption).
	e.completed = append(e.completed, TaskRecord{
		Task:   head,
		Start:  e.now,
		Finish: e.now + head.Duration,
	})
	base := e.placementReward(head, before, after)
	w := e.cfg.Objectives.normalized(e.cfg.Rho)
	if w.Energy == 0 && w.Cost == 0 {
		return base
	}
	// Extended objective mix: rescale the two paper terms into the
	// normalized weight vector and add the energy/cost terms.
	respTerm, loadTerm := e.lastRespReward, e.lastLoadReward
	return w.Response*respTerm + w.LoadBalance*loadTerm +
		w.Energy*e.energyReward(vm, wasBusy, utilBefore, utilAfter) +
		w.Cost*e.costReward(action, wasBusy)
}

// invalidPenalty implements Eq. (9): −e^{Σ_i w_i·util_i} for the denied VM.
func (e *Env) invalidPenalty(action int) float64 {
	s := 0.0
	if action < len(e.vms) {
		for i := 0; i < NumResources; i++ {
			s += e.cfg.ResourceWeights[i] * e.vms[action].utilization(i)
		}
	} else {
		// Padded void VM: treat as fully utilized.
		for i := 0; i < NumResources; i++ {
			s += e.cfg.ResourceWeights[i]
		}
	}
	return -math.Exp(s)
}

// placementReward implements Eqs. (6)–(8). The two component terms are
// retained in lastRespReward / lastLoadReward so the extended-objective mix
// can reuse them without recomputation.
func (e *Env) placementReward(t workload.Task, loadBefore, loadAfter float64) float64 {
	wait := float64(e.now - t.Arrival)
	run := float64(t.Duration)
	res := wait + run
	// Eq. (7): R_res = e^{j_run/j_res} ∈ (1, e]; rescale to (0,1] so the two
	// reward terms share a scale (the paper normalizes by j_run; dividing by
	// e keeps the same ordering and bounds the sum by 1).
	rRes := math.Exp(run/res) / math.E

	// Eq. (8) as printed: Load_c = LoadBal(t') − LoadBal(t); reward 1 when
	// the placement improves (or preserves) balance, else the raw Load_c
	// (a small positive number well below 1, so worsening placements earn
	// strictly less than improving ones).
	loadC := loadAfter - loadBefore
	rLoad := 1.0
	if loadC > 0 {
		rLoad = loadC
	}
	e.lastRespReward, e.lastLoadReward = rRes, rLoad
	return e.cfg.Rho*rRes + (1-e.cfg.Rho)*rLoad
}

// loadBalance implements Eq. (4): the weighted std-dev of per-VM remaining
// fractions across resources. Lower is more balanced.
func (e *Env) loadBalance() float64 {
	n := float64(len(e.vms))
	total := 0.0
	for i := 0; i < NumResources; i++ {
		avg := 0.0
		for _, vm := range e.vms {
			avg += vm.remainingFraction(i)
		}
		avg /= n
		variance := 0.0
		for _, vm := range e.vms {
			d := vm.remainingFraction(i) - avg
			variance += d * d
		}
		total += e.cfg.ResourceWeights[i] * math.Sqrt(variance/n)
	}
	return total
}

// LoadBalance exposes Eq. (4) for metrics and tests.
func (e *Env) LoadBalance() float64 { return e.loadBalance() }

// advanceTime moves the clock one slot: running tasks progress and finish,
// new arrivals join the queue, and the per-slot metric accumulators update.
func (e *Env) advanceTime() {
	e.now++
	for _, vm := range e.vms {
		vm.collectFinished(e.now)
	}
	e.admitArrivals()
	e.accumulateSlotStats()
}

func (e *Env) admitArrivals() {
	for len(e.pending) > 0 && e.pending[0].Arrival <= e.now {
		e.queue = append(e.queue, e.pending[0])
		e.pending = e.pending[1:]
	}
}

func (e *Env) accumulateSlotStats() {
	for i := 0; i < NumResources; i++ {
		s := 0.0
		for _, vm := range e.vms {
			s += vm.utilization(i)
		}
		e.utilSum[i] += s / float64(len(e.vms))
	}
	e.loadBalSum += e.loadBalance()
	for i, vm := range e.vms {
		busy := vm.RunningTasks() > 0
		e.energySum += e.cfg.Power.draw(vm.utilization(0), busy)
		if busy {
			e.costSum += e.vmPrice(i)
		}
	}
	e.slots++
}

// Inject appends a task to the waiting queue with arrival time = Now. It
// supports dynamic task sources — notably workflow DAGs, where a stage
// becomes schedulable only when its dependencies complete (the paper's
// stated future work). Injection also increments the episode's expected
// task count unless ExpectTotal pre-announced it.
func (e *Env) Inject(t workload.Task) {
	if t.Arrival < e.now {
		t.Arrival = e.now
	}
	e.queue = append(e.queue, t)
	// Keep Done meaningful: the expected count must cover every task the
	// environment knows about. ExpectTotal may already have reserved
	// headroom for this injection.
	if known := len(e.queue) + len(e.pending) + len(e.completed); e.totalTasks < known {
		e.totalTasks = known
	}
}

// ExpectTotal declares the episode's true task count up front, so Done
// stays false while future injections are still outstanding (e.g. workflow
// stages whose dependencies have not completed yet). n must be at least
// the number of tasks currently known to the environment.
func (e *Env) ExpectTotal(n int) {
	known := len(e.queue) + len(e.pending) + len(e.completed)
	if n < known {
		panic(fmt.Sprintf("cloudsim: ExpectTotal(%d) below known task count %d", n, known))
	}
	e.totalTasks = n
}
