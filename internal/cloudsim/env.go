package cloudsim

import (
	"fmt"
	"math"

	"repro/internal/workload"
)

// NumResources is d in the paper: the number of resource dimensions
// (vCPU and memory).
const NumResources = 2

// Config parameterizes an Env. PadVMs / PadVCPUs are the federation-wide
// caps L and U^vcpu: every client's observation is padded to these sizes so
// all agents share network shapes (§4.1, "void" positions in Fig. 6).
type Config struct {
	VMs []VMSpec

	// Observation padding and normalization (federation-wide constants).
	PadVMs     int     // L: observation covers this many VM slots
	PadVCPUs   int     // U^vcpu: per-VM vCPU slots in the observation
	MaxCPU     int     // U^vcpu normalization cap for requests/capacities
	MaxMem     float64 // U^mem normalization cap in GiB
	QueueDepth int     // Q: queued tasks visible in the observation

	// TopK switches the observation and action space to the scalable
	// fixed-width form: the policy sees the TopK best-fitting candidate VMs
	// for the head task (plus aggregate utilization buckets, see
	// UtilBuckets) and actions address candidate slots, so StateDim and
	// NumActions stay constant as the cluster grows. 0 keeps the per-VM
	// observation. TopK ≥ len(VMs) degrades to the identity mapping
	// (candidate slot i = VM i) and runs the exact legacy code paths, so it
	// is bit-identical to the per-VM engine with PadVMs = TopK.
	TopK int
	// UtilBuckets adds 2·UtilBuckets+3 aggregate features to a TopK
	// observation: CPU and memory utilization histograms over all VMs plus
	// total used-CPU, used-memory, and queue-length summaries. 0 disables
	// the aggregate block (required for bit-identical TopK degradation).
	UtilBuckets int
	// Oversub is the vCPU/memory oversubscription ratio: every VM
	// advertises floor(CPU·Oversub) schedulable vCPUs and Mem·Oversub GiB.
	// Tasks placed while a VM's committed vCPUs exceed its physical count
	// run slowed down (see VM.slowedDuration). 0 or 1 disables
	// oversubscription, bit-identically to the non-oversubscribed engine.
	Oversub float64

	// Reward shaping.
	Rho             float64               // ρ in Eq. (6); weight of the response reward
	ResourceWeights [NumResources]float64 // w_i in Eqs. (4), (9), (24)
	LazyPenalty     float64               // negative constant for waiting despite a feasible VM

	// Extended objectives (§4.2's "easily extended" reward). A zero-value
	// Objectives reproduces the paper's two-term reward from Rho.
	Objectives ObjectiveWeights
	// Power models VM energy draw for the energy objective and metrics.
	Power PowerModel
	// Prices optionally gives per-VM per-slot prices (len must equal
	// len(VMs)); when empty, prices are derived from capacity.
	Prices []float64

	// MaxSteps caps an episode (0 means a generous default of
	// 50·len(tasks)+1000 steps; sources with unknown totals require an
	// explicit cap).
	MaxSteps int
}

// DefaultConfig returns the configuration used throughout the experiments:
// ρ = 0.5, equal resource weights, lazy penalty −8 (slightly worse than the
// worst invalid-placement penalty −e^Σw·util ≥ −e).
func DefaultConfig(vms []VMSpec) Config {
	return Config{
		VMs:             vms,
		PadVMs:          len(vms),
		PadVCPUs:        maxVCPU(vms),
		MaxCPU:          maxVCPU(vms),
		MaxMem:          maxMem(vms),
		QueueDepth:      5,
		Rho:             0.5,
		ResourceWeights: [NumResources]float64{0.5, 0.5},
		LazyPenalty:     -8,
		Power:           DefaultPowerModel(),
	}
}

func maxVCPU(vms []VMSpec) int {
	m := 1
	for _, v := range vms {
		if v.CPU > m {
			m = v.CPU
		}
	}
	return m
}

func maxMem(vms []VMSpec) float64 {
	m := 1.0
	for _, v := range vms {
		if v.Mem > m {
			m = v.Mem
		}
	}
	return m
}

// NumActions returns the action-space size |A| for a configuration: TopK+1
// candidate slots in scalable mode, PadVMs+1 VM slots otherwise; the last
// index is always Wait. Exposed at package level so training code can size
// policy networks from a Config alone.
func NumActions(cfg Config) int {
	if cfg.TopK > 0 {
		return cfg.TopK + 1
	}
	return cfg.PadVMs + 1
}

// ratio returns the effective oversubscription ratio (1 = off).
func (c *Config) ratio() float64 {
	if c.Oversub > 1 {
		return c.Oversub
	}
	return 1
}

// oversubCPU returns the schedulable vCPU count of a VM with cpu physical
// vCPUs under the given ratio.
func oversubCPU(cpu int, ratio float64) int {
	if ratio <= 1 {
		return cpu
	}
	return int(float64(cpu)*ratio + 1e-9)
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	switch {
	case len(c.VMs) == 0:
		return fmt.Errorf("cloudsim: no VMs")
	case c.PadVMs < len(c.VMs):
		return fmt.Errorf("cloudsim: PadVMs %d < actual VMs %d", c.PadVMs, len(c.VMs))
	case c.QueueDepth < 1:
		return fmt.Errorf("cloudsim: QueueDepth must be >= 1")
	case c.Rho < 0 || c.Rho > 1:
		return fmt.Errorf("cloudsim: Rho must be in [0,1]")
	case c.MaxCPU < 1 || c.MaxMem <= 0:
		return fmt.Errorf("cloudsim: invalid normalization caps")
	case len(c.Prices) > 0 && len(c.Prices) != len(c.VMs):
		return fmt.Errorf("cloudsim: %d prices for %d VMs", len(c.Prices), len(c.VMs))
	case c.TopK < 0:
		return fmt.Errorf("cloudsim: TopK must be >= 0")
	case c.UtilBuckets < 0:
		return fmt.Errorf("cloudsim: UtilBuckets must be >= 0")
	case c.Oversub != 0 && c.Oversub < 1:
		return fmt.Errorf("cloudsim: Oversub ratio %v must be 0 (off) or >= 1", c.Oversub)
	}
	for _, v := range c.VMs {
		if v.CPU < 1 || v.Mem <= 0 {
			return fmt.Errorf("cloudsim: invalid VM spec %+v", v)
		}
		if cap := oversubCPU(v.CPU, c.ratio()); cap > c.PadVCPUs {
			return fmt.Errorf("cloudsim: VM has %d schedulable vCPUs > PadVCPUs %d", cap, c.PadVCPUs)
		}
	}
	return nil
}

// TaskRecord is the outcome of one completed task. Under oversubscription
// the Task's Duration is the effective (slowed) runtime, frozen at
// placement time.
type TaskRecord struct {
	Task   workload.Task
	Start  int // slot the task was placed
	Finish int // slot the task completed
}

// Wait returns the task's queueing delay j^wait.
func (r TaskRecord) Wait() int { return r.Start - r.Task.Arrival }

// Response returns j^res = j^wait + j^run (Eq. 3).
func (r TaskRecord) Response() int { return r.Finish - r.Task.Arrival }

// completion is one entry of the cluster-wide completion heap: a task in a
// VM's store, keyed by the slot it finishes in with the task ID as the
// tie-break. The ordering makes same-slot retirements deterministic.
type completion struct {
	finish int
	id     int
	vm     int32
	slot   int32
}

// completionLess orders the heap by (finish slot, task ID).
func completionLess(a, b completion) bool {
	return a.finish < b.finish || (a.finish == b.finish && a.id < b.id)
}

// Env is one client's scheduling environment. It is deterministic: all
// stochasticity lives in the workload sampling and the agent's policy.
// An Env is not safe for concurrent use.
//
// The state engine is event-driven: every placement pushes its known finish
// slot onto a completion min-heap, and advancing time pops exactly the
// tasks that finish — in (finish slot, task ID) order — instead of scanning
// every VM. Arrivals are pulled incrementally from a TaskSource through a
// one-task peek buffer, so episodes are never materialized; the waiting
// queue is cursor-indexed so popping does not re-slice the backing array
// forever, and Reset reuses all buffers, keeping steady-state Step at zero
// allocations.
//
// In ranked top-k mode (0 < TopK < len(VMs)) the engine additionally keeps
// the candidate index and incremental whole-cluster accumulators (sums of
// utilizations, remaining fractions and their squares, busy power and
// price), so one Step costs O(TopK + completions in the slot) rather than
// O(VMs) — the property the 5000-VM cluster benchmarks pin.
type Env struct {
	cfg  Config
	vms  []*VM
	now  int
	step int

	// Streaming arrival state: src feeds tasks through a one-task peek.
	src         TaskSource
	ownSlice    SliceSource // backs the Reset([]workload.Task) path
	sliceBuf    []workload.Task
	peek        workload.Task
	hasPeek     bool
	srcDone     bool
	srcErr      error
	pulled      int // tasks pulled from src (including the peek)
	knownTotal  int // src.Total() at reset; -1 when unknown
	lastArrival int

	queue []workload.Task // waiting queue (FIFO); qhead..len are waiting
	qhead int

	heap []completion // min-heap of outstanding task completions

	mask     []bool    // scratch reused by FeasibleActions
	obsProto []float64 // static observation template (see buildObsProto)

	completed  []TaskRecord
	totalTasks int

	// Mode flags, fixed at Reset.
	ranked bool // candidate index active (0 < TopK < len(VMs))
	aggOn  bool // aggregate observation block active (TopK>0 && UtilBuckets>0)
	hooks  bool // per-VM change hooks needed (ranked || aggOn)

	// Static cluster-wide capacity summaries (post-oversubscription).
	maxCapCPU int
	maxCapMem float64
	capCPUTot int
	capMemTot float64

	// Ranked-mode candidate cache (see Candidates).
	idx       *vmIndex
	cand      []int32
	candValid bool

	// Ranked-mode incremental accumulators, maintained by the VM-change
	// hooks so per-slot stats cost O(1) instead of a cluster scan. Legacy
	// and identity modes keep the exact full scans for bit-identity.
	sumUtil        [NumResources]float64
	sumRem         [NumResources]float64
	sumRem2        [NumResources]float64
	busyVMs        int
	sumBusyCPUUtil float64
	sumBusyPrice   float64

	// Aggregate-observation state (aggOn): per-bucket VM counts by
	// utilization, plus absolute used totals.
	histCPU []int
	histMem []int
	usedCPU int
	usedMem float64

	// Time-integrated accumulators for Eqs. (24)–(25). Slot 0 counts.
	utilSum    [NumResources]float64
	loadBalSum float64
	energySum  float64 // watt-slots across all VMs
	costSum    float64 // price-slots across busy VMs
	slots      int

	// Last placement's component rewards (see placementReward).
	lastRespReward float64
	lastLoadReward float64

	// Per-class wait scratch reused by Metrics, so repeated metric reads
	// stay allocation-free once capacities are established.
	sloWaits [workload.NumSLOClasses][]float64

	// retireHook, when set, observes every completion pop in order (test
	// hook for the invariant harness; nil in production).
	retireHook func(completion)
}

// NewEnv creates an environment and loads the given task set.
func NewEnv(cfg Config, tasks []workload.Task) (*Env, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 50*len(tasks) + 1000
	}
	e := &Env{cfg: cfg}
	e.Reset(tasks)
	return e, nil
}

// MustNewEnv is NewEnv that panics on configuration errors (test helper).
func MustNewEnv(cfg Config, tasks []workload.Task) *Env {
	e, err := NewEnv(cfg, tasks)
	if err != nil {
		panic(err)
	}
	return e
}

// NewEnvSource creates an environment fed by a streaming task source. When
// the source's total is unknown (Total() < 0), Config.MaxSteps must be set:
// the step cap is the only guaranteed episode bound.
func NewEnvSource(cfg Config, src TaskSource) (*Env, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxSteps == 0 {
		n := src.Total()
		if n < 0 {
			return nil, fmt.Errorf("cloudsim: source with unknown total requires an explicit MaxSteps")
		}
		cfg.MaxSteps = 50*n + 1000
	}
	e := &Env{cfg: cfg}
	e.resetWith(src)
	return e, nil
}

// Reset reinitializes the environment with a new task set, keeping the
// configuration. Tasks must be sorted by arrival (workload generators
// guarantee this). All internal buffers are reused, so resetting with a
// same-shaped workload does not allocate in steady state.
func (e *Env) Reset(tasks []workload.Task) {
	e.sliceBuf = append(e.sliceBuf[:0], tasks...)
	e.ownSlice.reset(e.sliceBuf)
	e.resetWith(&e.ownSlice)
}

// ResetSource reinitializes the environment on a caller-provided streaming
// source. The source must be freshly positioned (rewind reusable sources
// before passing them). Sources with unknown totals require the
// environment's MaxSteps cap to already be set.
func (e *Env) ResetSource(src TaskSource) error {
	if src.Total() < 0 && e.cfg.MaxSteps == 0 {
		return fmt.Errorf("cloudsim: source with unknown total requires an explicit MaxSteps")
	}
	e.resetWith(src)
	return nil
}

// resetWith re-derives every piece of episode state from the configuration
// and the given source.
func (e *Env) resetWith(src TaskSource) {
	ratio := e.cfg.ratio()
	if len(e.vms) != len(e.cfg.VMs) {
		e.vms = make([]*VM, len(e.cfg.VMs))
		for i := range e.vms {
			e.vms[i] = &VM{}
		}
	}
	for i, spec := range e.cfg.VMs {
		e.vms[i].reset(spec, ratio)
	}
	e.now = 0
	e.step = 0
	e.queue = e.queue[:0]
	e.qhead = 0
	e.heap = e.heap[:0]
	e.completed = e.completed[:0]

	e.src = src
	e.knownTotal = src.Total()
	e.totalTasks = 0
	if e.knownTotal > 0 {
		e.totalTasks = e.knownTotal
	}
	e.srcDone = false
	e.srcErr = nil
	e.hasPeek = false
	e.pulled = 0
	e.lastArrival = 0

	e.ranked = e.cfg.TopK > 0 && e.cfg.TopK < len(e.vms)
	e.aggOn = e.cfg.TopK > 0 && e.cfg.UtilBuckets > 0
	e.hooks = e.ranked || e.aggOn
	e.maxCapCPU, e.maxCapMem = 0, 0
	e.capCPUTot, e.capMemTot = 0, 0
	for _, vm := range e.vms {
		if vm.capCPU > e.maxCapCPU {
			e.maxCapCPU = vm.capCPU
		}
		if vm.capMem > e.maxCapMem {
			e.maxCapMem = vm.capMem
		}
		e.capCPUTot += vm.capCPU
		e.capMemTot += vm.capMem
	}

	e.buildObsProto()
	e.initScalableState()
	e.utilSum = [NumResources]float64{}
	e.loadBalSum = 0
	e.energySum = 0
	e.costSum = 0
	e.slots = 0
	e.admitArrivals()
	e.accumulateSlotStats()
}

// initScalableState (re)builds the candidate index, the incremental
// whole-cluster accumulators, and the aggregate-observation histograms for
// the freshly reset (all-idle) cluster.
func (e *Env) initScalableState() {
	e.candValid = false
	if e.cfg.TopK > 0 && cap(e.cand) < e.cfg.TopK {
		e.cand = make([]int32, 0, e.cfg.TopK)
	}
	n := len(e.vms)
	if e.ranked {
		e.idx = newVMIndex(n, e.maxCapCPU, e.maxCapMem)
		for i, vm := range e.vms {
			e.idx.add(i, cpuClassOf(vm.freeCPU), memClassOf(vm.freeMem))
		}
		for r := 0; r < NumResources; r++ {
			e.sumUtil[r] = 0
			e.sumRem[r] = float64(n)  // every rem is exactly 1 at reset
			e.sumRem2[r] = float64(n) // 1² per VM
		}
		e.busyVMs = 0
		e.sumBusyCPUUtil = 0
		e.sumBusyPrice = 0
	}
	if e.aggOn {
		b := e.cfg.UtilBuckets
		if len(e.histCPU) != b {
			e.histCPU = make([]int, b)
			e.histMem = make([]int, b)
		}
		for i := 0; i < b; i++ {
			e.histCPU[i], e.histMem[i] = 0, 0
		}
		e.histCPU[0], e.histMem[0] = n, n // idle VMs all sit in bucket 0
		e.usedCPU = 0
		e.usedMem = 0
	}
}

// utilBucket maps a utilization in [0,1] to its histogram bucket.
func (e *Env) utilBucket(u float64) int {
	b := int(u * float64(e.cfg.UtilBuckets))
	if b >= e.cfg.UtilBuckets {
		b = e.cfg.UtilBuckets - 1
	}
	if b < 0 {
		b = 0
	}
	return b
}

// preVMChange removes VM i's contributions from every incremental structure
// before a place/retire mutates it. Paired with postVMChange.
func (e *Env) preVMChange(i int) {
	if !e.hooks {
		return
	}
	v := e.vms[i]
	if e.ranked {
		e.idx.remove(i, cpuClassOf(v.freeCPU), memClassOf(v.freeMem))
		for r := 0; r < NumResources; r++ {
			e.sumUtil[r] -= v.util[r]
			e.sumRem[r] -= v.rem[r]
			e.sumRem2[r] -= v.rem[r] * v.rem[r]
		}
		if v.live > 0 {
			e.busyVMs--
			e.sumBusyCPUUtil -= v.util[0]
			e.sumBusyPrice -= e.vmPrice(i)
		}
	}
	if e.aggOn {
		e.histCPU[e.utilBucket(v.util[0])]--
		e.histMem[e.utilBucket(v.util[1])]--
		e.usedCPU -= v.capCPU - v.freeCPU
		e.usedMem -= v.capMem - v.freeMem
	}
}

// postVMChange re-adds VM i's contributions after a place/retire and
// invalidates the candidate cache.
func (e *Env) postVMChange(i int) {
	e.candValid = false
	if !e.hooks {
		return
	}
	v := e.vms[i]
	if e.ranked {
		e.idx.add(i, cpuClassOf(v.freeCPU), memClassOf(v.freeMem))
		for r := 0; r < NumResources; r++ {
			e.sumUtil[r] += v.util[r]
			e.sumRem[r] += v.rem[r]
			e.sumRem2[r] += v.rem[r] * v.rem[r]
		}
		if v.live > 0 {
			e.busyVMs++
			e.sumBusyCPUUtil += v.util[0]
			e.sumBusyPrice += e.vmPrice(i)
		}
	}
	if e.aggOn {
		e.histCPU[e.utilBucket(v.util[0])]++
		e.histMem[e.utilBucket(v.util[1])]++
		e.usedCPU += v.capCPU - v.freeCPU
		e.usedMem += v.capMem - v.freeMem
	}
}

// Config returns the environment configuration.
func (e *Env) Config() Config { return e.cfg }

// Now returns the current time slot.
func (e *Env) Now() int { return e.now }

// QueueLen returns the number of waiting tasks.
func (e *Env) QueueLen() int { return len(e.queue) - e.qhead }

// PendingLen returns the number of tasks known to be on their way but not
// yet arrived: the peeked task plus, for known-total sources, whatever the
// source has not emitted yet. Unknown-total sources report only the peek.
func (e *Env) PendingLen() int {
	p := 0
	if e.hasPeek {
		p++
	}
	if !e.srcDone && e.knownTotal >= 0 {
		if rem := e.knownTotal - e.pulled; rem > 0 {
			p += rem
		}
	}
	return p
}

// SourceErr returns the error that shut down the episode's task source
// (malformed task, arrival-order regression, or a failing source), or nil.
// After a source failure the environment stops pulling and the episode
// completes deterministically over the tasks already admitted.
func (e *Env) SourceErr() error { return e.srcErr }

// HeadTask returns the task at the head of the waiting queue.
func (e *Env) HeadTask() (workload.Task, bool) {
	if e.qhead == len(e.queue) {
		return workload.Task{}, false
	}
	return e.queue[e.qhead], true
}

// popHead removes the waiting queue's head. Popping advances a cursor
// rather than re-slicing, and the buffer is compacted once the consumed
// prefix dominates it, so a long episode does not pin the whole backing
// array the way `queue = queue[1:]` did.
func (e *Env) popHead() {
	e.qhead++
	e.candValid = false
	switch {
	case e.qhead == len(e.queue):
		e.queue = e.queue[:0]
		e.qhead = 0
	case e.qhead >= 64 && 2*e.qhead >= len(e.queue):
		n := copy(e.queue, e.queue[e.qhead:])
		e.queue = e.queue[:n]
		e.qhead = 0
	}
}

// VMs exposes the simulated machines (read-only use expected).
func (e *Env) VMs() []*VM { return e.vms }

// NumActions returns |A|: TopK+1 candidate slots in scalable mode,
// PadVMs+1 VM slots otherwise; the last action index is Wait.
func (e *Env) NumActions() int { return NumActions(e.cfg) }

// WaitAction returns the index encoding the paper's action −1 (do nothing).
func (e *Env) WaitAction() int { return e.NumActions() - 1 }

// Done reports whether the episode has ended: all tasks completed, or the
// step cap was hit. With an unknown-total source the episode stays open
// while the source may still emit tasks.
func (e *Env) Done() bool {
	if e.step >= e.cfg.MaxSteps {
		return true
	}
	if e.knownTotal < 0 && !e.srcDone {
		return false
	}
	return len(e.completed) == e.totalTasks
}

// Truncated reports whether the episode ended on the MaxSteps cap with work
// still outstanding — a horizon cut, not a terminal. The scheduling MDP
// would have kept running, so value estimation should bootstrap the tail
// (see rl.Truncator) instead of treating the unfinished tasks as worthless.
func (e *Env) Truncated() bool {
	if e.step < e.cfg.MaxSteps {
		return false
	}
	if e.knownTotal < 0 && !e.srcDone {
		return true
	}
	return len(e.completed) != e.totalTasks
}

// FeasibleActions returns a mask over the action space: placements that fit
// the head task, plus Wait (always allowed). With an empty queue only Wait
// is feasible. The returned slice is a scratch buffer reused by the next
// FeasibleActions call; callers that need to retain it across steps should
// use FeasibleActionsInto with their own buffer.
func (e *Env) FeasibleActions() []bool {
	e.mask = e.FeasibleActionsInto(e.mask)
	return e.mask
}

// FeasibleActionsInto writes the feasibility mask into dst (reallocating
// when dst is too small) and returns the buffer, so rollout loops can stay
// allocation-free. In ranked mode the mask covers candidate slots, which
// are feasible by construction (void slots are not).
func (e *Env) FeasibleActionsInto(dst []bool) []bool {
	n := e.NumActions()
	if cap(dst) < n {
		dst = make([]bool, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = false
	}
	dst[e.WaitAction()] = true
	head, ok := e.HeadTask()
	if !ok {
		return dst
	}
	if e.ranked {
		for s, vi := range e.Candidates() {
			dst[s] = vi >= 0
		}
		return dst
	}
	for i, vm := range e.vms {
		dst[i] = vm.Fits(head)
	}
	return dst
}

// anyFeasiblePlacement reports whether some real VM fits the head task.
// Ranked mode reads the candidate cache instead of scanning the cluster.
func (e *Env) anyFeasiblePlacement() bool {
	head, ok := e.HeadTask()
	if !ok {
		return false
	}
	if e.ranked {
		return e.Candidates()[0] >= 0
	}
	for _, vm := range e.vms {
		if vm.Fits(head) {
			return true
		}
	}
	return false
}

// Step executes one action and returns the reward. Semantics (§4.2):
//
//   - Valid placement: the head task starts on the chosen VM now; reward
//     Eq. (6); time does NOT advance, so the agent may keep scheduling
//     within the slot.
//   - Invalid placement (a void slot, a VM with insufficient free
//     resources, or in ranked mode a void candidate slot): reward Eq. (9);
//     the task stays queued and time advances one slot.
//   - Wait with a feasible VM available: the lazy penalty; time advances.
//   - Wait with no feasible placement (or empty queue): reward 0; time
//     advances.
//
// In ranked mode actions address candidate slots; the slot is resolved to
// its VM against the current head task before the rules above apply.
//
// Step panics if called after Done or with an out-of-range action.
func (e *Env) Step(action int) float64 {
	if e.Done() {
		panic("cloudsim: Step after episode end")
	}
	if action < 0 || action >= e.NumActions() {
		panic(fmt.Sprintf("cloudsim: action %d out of range [0,%d)", action, e.NumActions()))
	}
	e.step++

	head, hasHead := e.HeadTask()
	if action == e.WaitAction() || !hasHead {
		reward := 0.0
		if hasHead && e.anyFeasiblePlacement() {
			reward = e.cfg.LazyPenalty
			mSimLazyWaits.Inc()
		} else {
			mSimIdleWaits.Inc()
		}
		e.advanceTime()
		return reward
	}

	vmIdx := action
	if e.ranked {
		vmIdx = int(e.Candidates()[action])
	}
	if vmIdx < 0 || vmIdx >= len(e.vms) || !e.vms[vmIdx].Fits(head) {
		// Invalid: denied and penalized by the target VM's utilization
		// (Eq. 9). Void slots count as fully utilized.
		reward := e.invalidPenalty(vmIdx)
		mSimInvalid.Inc()
		e.advanceTime()
		return reward
	}

	// Valid placement. Under oversubscription the task's effective duration
	// is frozen now, from the VM's physical CPU pressure after placement.
	mSimPlacements.Inc()
	vm := e.vms[vmIdx]
	eff := head
	eff.Duration = vm.slowedDuration(head.CPU, head.Duration)
	before := e.loadBalance()
	wasBusy := vm.RunningTasks() > 0
	utilBefore := vm.utilization(0)
	e.preVMChange(vmIdx)
	slot := vm.place(eff, e.now)
	e.postVMChange(vmIdx)
	e.heapPush(completion{
		finish: e.now + eff.Duration,
		id:     eff.ID,
		vm:     int32(vmIdx),
		slot:   int32(slot),
	})
	e.popHead()
	after := e.loadBalance()
	utilAfter := vm.utilization(0)
	// The record's Finish is known at placement time because the simulator
	// is deterministic (fixed durations, no preemption).
	e.completed = append(e.completed, TaskRecord{
		Task:   eff,
		Start:  e.now,
		Finish: e.now + eff.Duration,
	})
	reward := e.placementReward(eff, before, after)
	w := e.cfg.Objectives.normalized(e.cfg.Rho)
	if w.Energy != 0 || w.Cost != 0 {
		// Extended objective mix: rescale the two paper terms into the
		// normalized weight vector and add the energy/cost terms.
		respTerm, loadTerm := e.lastRespReward, e.lastLoadReward
		reward = w.Response*respTerm + w.LoadBalance*loadTerm +
			w.Energy*e.energyReward(vm, wasBusy, utilBefore, utilAfter) +
			w.Cost*e.costReward(vmIdx, wasBusy)
	}
	// SLO shaping: a per-class linear wait cost on top of the mix, guarded
	// so the zero-cost default reproduces the unshaped reward bit-for-bit.
	if cost := e.cfg.Objectives.SLOWaitCost[sloIndex(eff.SLO)]; cost != 0 {
		reward -= cost * float64(e.now-eff.Arrival)
	}
	return reward
}

// invalidPenalty implements Eq. (9): −e^{Σ_i w_i·util_i} for the denied VM.
// vmIdx < 0 or beyond the cluster is a void slot, treated as fully utilized.
func (e *Env) invalidPenalty(vmIdx int) float64 {
	s := 0.0
	if vmIdx >= 0 && vmIdx < len(e.vms) {
		for i := 0; i < NumResources; i++ {
			s += e.cfg.ResourceWeights[i] * e.vms[vmIdx].utilization(i)
		}
	} else {
		// Padded void VM: treat as fully utilized.
		for i := 0; i < NumResources; i++ {
			s += e.cfg.ResourceWeights[i]
		}
	}
	return -math.Exp(s)
}

// placementReward implements Eqs. (6)–(8). The two component terms are
// retained in lastRespReward / lastLoadReward so the extended-objective mix
// can reuse them without recomputation.
func (e *Env) placementReward(t workload.Task, loadBefore, loadAfter float64) float64 {
	wait := float64(e.now - t.Arrival)
	run := float64(t.Duration)
	res := wait + run
	// Eq. (7): R_res = e^{j_run/j_res} ∈ (1, e]; rescale to (0,1] so the two
	// reward terms share a scale (the paper normalizes by j_run; dividing by
	// e keeps the same ordering and bounds the sum by 1).
	rRes := math.Exp(run/res) / math.E

	// Eq. (8) as printed: Load_c = LoadBal(t') − LoadBal(t); reward 1 when
	// the placement improves (or preserves) balance, else the raw Load_c
	// (a small positive number well below 1, so worsening placements earn
	// strictly less than improving ones).
	loadC := loadAfter - loadBefore
	rLoad := 1.0
	if loadC > 0 {
		rLoad = loadC
	}
	e.lastRespReward, e.lastLoadReward = rRes, rLoad
	return e.cfg.Rho*rRes + (1-e.cfg.Rho)*rLoad
}

// loadBalance implements Eq. (4): the weighted std-dev of per-VM remaining
// fractions across resources. Lower is more balanced. Ranked mode reads the
// incrementally maintained sums (O(1)); other modes keep the exact two-pass
// scan for bit-identity with the small-cluster engine.
func (e *Env) loadBalance() float64 {
	if e.ranked {
		return e.loadBalanceFast()
	}
	n := float64(len(e.vms))
	total := 0.0
	for i := 0; i < NumResources; i++ {
		avg := 0.0
		for _, vm := range e.vms {
			avg += vm.remainingFraction(i)
		}
		avg /= n
		variance := 0.0
		for _, vm := range e.vms {
			d := vm.remainingFraction(i) - avg
			variance += d * d
		}
		total += e.cfg.ResourceWeights[i] * math.Sqrt(variance/n)
	}
	return total
}

// loadBalanceFast computes Eq. (4) from the running Σrem and Σrem² sums:
// Var = E[X²] − E[X]², clamped at 0 against accumulated rounding.
func (e *Env) loadBalanceFast() float64 {
	n := float64(len(e.vms))
	total := 0.0
	for i := 0; i < NumResources; i++ {
		mean := e.sumRem[i] / n
		variance := e.sumRem2[i]/n - mean*mean
		if variance < 0 {
			variance = 0
		}
		total += e.cfg.ResourceWeights[i] * math.Sqrt(variance)
	}
	return total
}

// LoadBalance exposes Eq. (4) for metrics and tests.
func (e *Env) LoadBalance() float64 { return e.loadBalance() }

// advanceTime moves the clock one slot: tasks whose finish slot has come
// are popped off the completion heap (in deterministic (finish, task ID)
// order), new arrivals join the queue, and the per-slot metric accumulators
// update. The pop loop touches only tasks that actually finish, so slots
// where nothing completes cost O(1) instead of a full cluster scan.
func (e *Env) advanceTime() {
	e.now++
	for len(e.heap) > 0 && e.heap[0].finish <= e.now {
		c := e.heapPop()
		e.preVMChange(int(c.vm))
		e.vms[c.vm].retire(int(c.slot))
		e.postVMChange(int(c.vm))
		if e.retireHook != nil {
			e.retireHook(c)
		}
	}
	e.admitArrivals()
	e.accumulateSlotStats()
}

// heapPush adds a completion to the min-heap.
func (e *Env) heapPush(c completion) {
	e.heap = append(e.heap, c)
	i := len(e.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !completionLess(e.heap[i], e.heap[parent]) {
			break
		}
		e.heap[i], e.heap[parent] = e.heap[parent], e.heap[i]
		i = parent
	}
}

// heapPop removes and returns the earliest completion.
func (e *Env) heapPop() completion {
	top := e.heap[0]
	n := len(e.heap) - 1
	e.heap[0] = e.heap[n]
	e.heap = e.heap[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && completionLess(e.heap[l], e.heap[small]) {
			small = l
		}
		if r < n && completionLess(e.heap[r], e.heap[small]) {
			small = r
		}
		if small == i {
			break
		}
		e.heap[i], e.heap[small] = e.heap[small], e.heap[i]
		i = small
	}
	return top
}

// validateTask rejects requests the simulator cannot execute: zero or
// negative vCPUs, non-positive / non-finite memory, zero or negative
// duration.
func validateTask(t workload.Task) error {
	switch {
	case t.CPU < 1:
		return fmt.Errorf("cloudsim: task %d requests %d vCPUs", t.ID, t.CPU)
	case !(t.Mem > 0) || math.IsInf(t.Mem, 1):
		// The negated comparison also catches NaN.
		return fmt.Errorf("cloudsim: task %d requests non-positive or non-finite memory %v", t.ID, t.Mem)
	case t.Duration < 1:
		return fmt.Errorf("cloudsim: task %d has duration %d", t.ID, t.Duration)
	}
	return nil
}

// srcFail shuts the task source down deterministically: no further pulls,
// and the episode's expected total shrinks to the tasks already admitted,
// so Done() is reachable over exactly the pre-failure work.
func (e *Env) srcFail(err error) {
	e.srcErr = err
	e.srcDone = true
	e.hasPeek = false
	e.knownTotal = -1
	e.totalTasks = len(e.completed) + e.QueueLen()
}

// admitArrivals pulls tasks from the source through the one-task peek
// buffer and admits everything that has arrived by the current slot. Every
// pull is validated (well-formed request, non-decreasing arrival); the
// first violation shuts the source down via srcFail, never corrupting
// engine state.
func (e *Env) admitArrivals() {
	for {
		if !e.hasPeek {
			if e.srcDone {
				return
			}
			t, ok := e.src.Next()
			if !ok {
				e.srcDone = true
				if err := e.src.Err(); err != nil {
					e.srcFail(err)
				} else if e.knownTotal >= 0 && e.pulled < e.knownTotal {
					e.srcFail(fmt.Errorf("cloudsim: source ended after %d of %d tasks", e.pulled, e.knownTotal))
				}
				return
			}
			if err := validateTask(t); err != nil {
				e.srcFail(err)
				return
			}
			if t.Arrival < 0 || t.Arrival < e.lastArrival {
				e.srcFail(fmt.Errorf("cloudsim: task %d arrival %d regresses (last %d)", t.ID, t.Arrival, e.lastArrival))
				return
			}
			e.pulled++
			if e.knownTotal < 0 {
				e.totalTasks++
			}
			e.lastArrival = t.Arrival
			e.peek = t
			e.hasPeek = true
		}
		if e.peek.Arrival > e.now {
			return
		}
		e.queue = append(e.queue, e.peek)
		e.hasPeek = false
		e.candValid = false
	}
}

// accumulateSlotStats folds one slot into the Eq. (24)–(25) and energy/cost
// accumulators. Ranked mode reads the incrementally maintained sums (O(1));
// other modes keep the exact cluster scan for bit-identity.
func (e *Env) accumulateSlotStats() {
	if e.ranked {
		n := float64(len(e.vms))
		for i := 0; i < NumResources; i++ {
			e.utilSum[i] += e.sumUtil[i] / n
		}
		e.loadBalSum += e.loadBalanceFast()
		pm := e.cfg.Power
		e.energySum += float64(e.busyVMs)*pm.IdleWatts + (pm.PeakWatts-pm.IdleWatts)*e.sumBusyCPUUtil
		e.costSum += e.sumBusyPrice
		e.slots++
		return
	}
	for i := 0; i < NumResources; i++ {
		s := 0.0
		for _, vm := range e.vms {
			s += vm.utilization(i)
		}
		e.utilSum[i] += s / float64(len(e.vms))
	}
	e.loadBalSum += e.loadBalance()
	for i, vm := range e.vms {
		busy := vm.RunningTasks() > 0
		e.energySum += e.cfg.Power.draw(vm.utilization(0), busy)
		if busy {
			e.costSum += e.vmPrice(i)
		}
	}
	e.slots++
}

// Inject appends a task to the waiting queue with arrival time = Now. It
// supports dynamic task sources — notably workflow DAGs, where a stage
// becomes schedulable only when its dependencies complete (the paper's
// stated future work). Malformed and over-capacity tasks (which no VM could
// ever run) are rejected with an error and leave the environment untouched.
// Injection also increments the episode's expected task count unless
// ExpectTotal pre-announced it.
func (e *Env) Inject(t workload.Task) error {
	if err := validateTask(t); err != nil {
		return err
	}
	if t.CPU > e.maxCapCPU || t.Mem > e.maxCapMem {
		return fmt.Errorf("cloudsim: task %d (%d vCPU, %.3g GiB) exceeds every VM's capacity (max %d vCPU, %.3g GiB)",
			t.ID, t.CPU, t.Mem, e.maxCapCPU, e.maxCapMem)
	}
	if t.Arrival < e.now {
		t.Arrival = e.now
	}
	e.queue = append(e.queue, t)
	e.candValid = false
	// Keep Done meaningful: the expected count must cover every task the
	// environment knows about. ExpectTotal may already have reserved
	// headroom for this injection.
	if known := e.QueueLen() + e.PendingLen() + len(e.completed); e.totalTasks < known {
		e.totalTasks = known
	}
	return nil
}

// ExpectTotal declares the episode's true task count up front, so Done
// stays false while future injections are still outstanding (e.g. workflow
// stages whose dependencies have not completed yet). n must be at least
// the number of tasks currently known to the environment.
func (e *Env) ExpectTotal(n int) {
	known := e.QueueLen() + e.PendingLen() + len(e.completed)
	if n < known {
		panic(fmt.Sprintf("cloudsim: ExpectTotal(%d) below known task count %d", n, known))
	}
	e.totalTasks = n
}
