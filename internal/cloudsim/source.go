package cloudsim

import (
	"io"
	"math/rand"

	"repro/internal/workload"
)

// TaskSource feeds an episode's arrivals incrementally, so thousand-VM /
// million-task episodes never materialize a full []workload.Task. The
// environment pulls at most one task ahead of the clock (a single-task peek
// buffer), which keeps memory O(queue), not O(episode).
//
// Contract: Next returns tasks with non-decreasing Arrival slots and valid
// requests (CPU ≥ 1, finite Mem > 0, Duration ≥ 1, Arrival ≥ 0) — the
// environment re-validates every pull and shuts the source down
// deterministically on the first violation (see Env.SourceErr). Total
// reports the number of tasks the source will emit, or -1 when unknown
// (e.g. a CSV trace of unknown length); unknown-total sources require an
// explicit Config.MaxSteps. Err reports why Next returned false early, nil
// after a clean end.
type TaskSource interface {
	Next() (workload.Task, bool)
	Total() int
	Err() error
}

// SliceSource adapts a materialized task slice to the TaskSource interface —
// the trivial source backing the existing Env.Reset([]workload.Task) path.
type SliceSource struct {
	tasks []workload.Task
	pos   int
}

// NewSliceSource copies tasks into an owned buffer and returns a source over
// them. Tasks must be sorted by arrival, as with Env.Reset.
func NewSliceSource(tasks []workload.Task) *SliceSource {
	return &SliceSource{tasks: append([]workload.Task(nil), tasks...)}
}

// reset points the source at a caller-owned backing slice without copying
// (internal: Env reuses its own buffer across Resets to stay allocation-free).
func (s *SliceSource) reset(tasks []workload.Task) {
	s.tasks = tasks
	s.pos = 0
}

// Next implements TaskSource.
func (s *SliceSource) Next() (workload.Task, bool) {
	if s.pos >= len(s.tasks) {
		return workload.Task{}, false
	}
	t := s.tasks[s.pos]
	s.pos++
	return t, true
}

// Total implements TaskSource.
func (s *SliceSource) Total() int { return len(s.tasks) }

// Err implements TaskSource: a slice never fails.
func (s *SliceSource) Err() error { return nil }

// Rewind restarts the source from the first task (for repeated episodes).
func (s *SliceSource) Rewind() { s.pos = 0 }

// SamplerSource draws tasks lazily from a workload model via
// workload.Model.Stream, so the task sequence is bit-identical to
// workload.Model.Sample with the same seed but the episode is generated one
// task at a time. An optional clamp cluster applies ClampTask per task,
// mirroring the ClampTasks(Sample(...)) idiom without the intermediate slice.
type SamplerSource struct {
	model  *workload.Model
	seed   int64
	n      int
	clamp  []VMSpec
	stream *workload.Stream
}

// NewSamplerSource returns a source emitting n tasks from the model under
// the given seed. When clamp is non-nil, every task is clamped to fit at
// least one of the given VMs (see ClampTask).
func NewSamplerSource(m *workload.Model, seed int64, n int, clamp []VMSpec) *SamplerSource {
	s := &SamplerSource{model: m, seed: seed, n: n, clamp: clamp}
	s.Rewind()
	return s
}

// Next implements TaskSource.
func (s *SamplerSource) Next() (workload.Task, bool) {
	t, ok := s.stream.Next()
	if !ok {
		return workload.Task{}, false
	}
	if s.clamp != nil {
		t = ClampTask(t, s.clamp)
	}
	return t, true
}

// Total implements TaskSource.
func (s *SamplerSource) Total() int { return s.n }

// Err implements TaskSource: sampling never fails.
func (s *SamplerSource) Err() error { return nil }

// Rewind restarts the stream from the seed, regenerating the identical task
// sequence (for repeated episodes).
func (s *SamplerSource) Rewind() {
	s.stream = s.model.Stream(rand.New(rand.NewSource(s.seed)), s.n)
}

// SpecSource draws tasks lazily from a compiled workload spec via
// workload.Compiled.Stream, so multi-tenant spec-driven episodes are
// generated one task at a time, bit-identical to Compiled.Sample under the
// same seed. An optional clamp cluster applies ClampTask per task, like
// SamplerSource.
type SpecSource struct {
	spec   *workload.Compiled
	seed   int64
	n      int
	clamp  []VMSpec
	stream workload.TaskStream
}

// NewSpecSource returns a source emitting n tasks from the compiled spec
// under the given seed. When clamp is non-nil, every task is clamped to fit
// at least one of the given VMs (see ClampTask).
func NewSpecSource(spec *workload.Compiled, seed int64, n int, clamp []VMSpec) *SpecSource {
	s := &SpecSource{spec: spec, seed: seed, n: n, clamp: clamp}
	s.Rewind()
	return s
}

// Next implements TaskSource.
func (s *SpecSource) Next() (workload.Task, bool) {
	t, ok := s.stream.Next()
	if !ok {
		return workload.Task{}, false
	}
	if s.clamp != nil {
		t = ClampTask(t, s.clamp)
	}
	return t, true
}

// Total implements TaskSource.
func (s *SpecSource) Total() int { return s.n }

// Err implements TaskSource: sampling never fails.
func (s *SpecSource) Err() error { return nil }

// Rewind restarts the stream from the seed, regenerating the identical
// task sequence (for repeated episodes).
func (s *SpecSource) Rewind() {
	s.stream = s.spec.Stream(rand.New(rand.NewSource(s.seed)), s.n)
}

// CSVSource replays a trace in the workload ExportCSV format one row at a
// time. The total is unknown up front (Total returns -1), so environments
// driven by a CSVSource must set Config.MaxSteps explicitly. A CSVSource is
// one-shot: construct a new one per episode.
type CSVSource struct {
	stream *workload.CSVStream
}

// NewCSVSource validates the CSV header and returns a streaming source.
func NewCSVSource(r io.Reader) (*CSVSource, error) {
	stream, err := workload.NewCSVStream(r)
	if err != nil {
		return nil, err
	}
	return &CSVSource{stream: stream}, nil
}

// Next implements TaskSource.
func (s *CSVSource) Next() (workload.Task, bool) { return s.stream.Next() }

// Total implements TaskSource: a CSV trace's length is unknown up front.
func (s *CSVSource) Total() int { return -1 }

// Err implements TaskSource.
func (s *CSVSource) Err() error { return s.stream.Err() }
