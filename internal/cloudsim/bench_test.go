package cloudsim

import (
	"math/rand"
	"testing"

	"repro/internal/workload"
)

// benchCluster is the default 20-VM heterogeneous cluster used by the
// simulator-core benchmarks: the Table-3 capacity mix (8/16/32/64 vCPU
// tiers) at a scale where Step and Observe costs are dominated by the
// engine, not the workload generator.
func benchCluster() []VMSpec {
	var specs []VMSpec
	add := func(n, cpu int, mem float64) {
		for i := 0; i < n; i++ {
			specs = append(specs, VMSpec{CPU: cpu, Mem: mem})
		}
	}
	add(8, 8, 64)
	add(6, 16, 128)
	add(4, 32, 256)
	add(2, 64, 512)
	return specs
}

// benchWorkload samples a seeded Google-trace task set clamped to the
// cluster, so every benchmark run schedules the identical episode.
func benchWorkload(specs []VMSpec, n int) []workload.Task {
	rng := rand.New(rand.NewSource(1))
	return ClampTasks(workload.SampleDataset(workload.Google, rng, n), specs)
}

// benchFirstFit picks the lowest-indexed VM that fits the head task; Wait
// otherwise. Inlined here (rather than FirstFit.SelectAction) so the
// benchmarks time the environment, not interface dispatch.
func benchFirstFit(env *Env) int {
	head, ok := env.HeadTask()
	if !ok {
		return env.WaitAction()
	}
	for i, vm := range env.VMs() {
		if vm.Fits(head) {
			return i
		}
	}
	return env.WaitAction()
}

// BenchmarkEnvStep measures the per-decision hot path of a training
// rollout on the environment side: Observe into a reused buffer, a
// first-fit action choice, and Step. Episodes restart in place, so the
// numbers reflect steady state across episode boundaries.
func BenchmarkEnvStep(b *testing.B) {
	specs := benchCluster()
	tasks := benchWorkload(specs, 400)
	env := MustNewEnv(DefaultConfig(specs), tasks)
	buf := make([]float64, env.StateDim())
	// Warm one full episode so internal buffers reach steady state.
	for !env.Done() {
		buf = env.Observe(buf)
		env.Step(benchFirstFit(env))
	}
	env.Reset(tasks)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = env.Observe(buf)
		env.Step(benchFirstFit(env))
		if env.Done() {
			env.Reset(tasks)
		}
	}
}

// BenchmarkObserve isolates the state-encoding cost with a half-loaded
// cluster (the regime Observe spends most of an episode in).
func BenchmarkObserve(b *testing.B) {
	specs := benchCluster()
	tasks := benchWorkload(specs, 400)
	env := MustNewEnv(DefaultConfig(specs), tasks)
	for i := 0; i < 200 && !env.Done(); i++ {
		env.Step(benchFirstFit(env))
	}
	buf := make([]float64, env.StateDim())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = env.Observe(buf)
	}
}

// BenchmarkEpisode measures a complete seeded episode: Reset, the
// first-fit decision loop with observations, Drain, and Metrics.
func BenchmarkEpisode(b *testing.B) {
	specs := benchCluster()
	tasks := benchWorkload(specs, 400)
	env := MustNewEnv(DefaultConfig(specs), tasks)
	buf := make([]float64, env.StateDim())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.Reset(tasks)
		for !env.Done() {
			buf = env.Observe(buf)
			env.Step(benchFirstFit(env))
		}
		env.Drain()
		_ = env.Metrics()
	}
}
