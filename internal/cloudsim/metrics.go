package cloudsim

// Metrics are the four evaluation measures of §5.1.
type Metrics struct {
	// AvgResponse is Eq. (23): mean of j^res over completed tasks, in slots.
	AvgResponse float64
	// Makespan is the completion slot of the last task.
	Makespan int
	// AvgUtil is Eq. (24): the time-averaged, resource-weighted mean VM
	// utilization, in [0,1].
	AvgUtil float64
	// AvgLoadBal is Eq. (25): the time-averaged Eq. (4) imbalance
	// (lower is better).
	AvgLoadBal float64
	// Completed and Total report scheduling coverage; Completed < Total
	// means the episode hit its step cap with tasks still queued.
	Completed int
	Total     int
	// Steps is the number of agent decisions taken.
	Steps int
	// EnergyWattSlots is the time-integrated power draw across VMs (the
	// extended energy objective; watt·slots).
	EnergyWattSlots float64
	// Cost is the accumulated per-slot billing of busy VMs (the extended
	// cost objective; price·slots).
	Cost float64
}

// Drain advances time until every placed task has finished executing, so
// the time-integrated metrics cover the full schedule. It does not place
// any queued tasks. Call after the decision loop ends.
func (e *Env) Drain() {
	for len(e.heap) > 0 {
		e.advanceTime()
	}
}

// Metrics summarizes the episode so far.
func (e *Env) Metrics() Metrics {
	m := Metrics{Completed: len(e.completed), Total: e.totalTasks, Steps: e.step}
	if len(e.completed) > 0 {
		sum := 0.0
		for _, r := range e.completed {
			sum += float64(r.Response())
			if r.Finish > m.Makespan {
				m.Makespan = r.Finish
			}
		}
		m.AvgResponse = sum / float64(len(e.completed))
	}
	if e.slots > 0 {
		util := 0.0
		for i := 0; i < NumResources; i++ {
			util += e.cfg.ResourceWeights[i] * e.utilSum[i]
		}
		m.AvgUtil = util / float64(e.slots)
		m.AvgLoadBal = e.loadBalSum / float64(e.slots)
	}
	m.EnergyWattSlots = e.energySum
	m.Cost = e.costSum
	return m
}

// Records returns the completion records accumulated so far.
func (e *Env) Records() []TaskRecord { return e.completed }
