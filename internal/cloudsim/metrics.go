package cloudsim

import (
	"sort"

	"repro/internal/workload"
)

// SLOMetrics summarizes queueing behavior for one service class.
type SLOMetrics struct {
	Class     workload.SLOClass
	Completed int
	// AvgWait / WaitP50 / WaitP95 summarize the class's queueing delays
	// j^wait in slots.
	AvgWait float64
	WaitP50 float64
	WaitP95 float64
	// Violations counts completed tasks whose wait exceeded the class's
	// Config.Objectives.SLOWaitTarget (a zero target tracks nothing).
	Violations int
}

// Metrics are the four evaluation measures of §5.1.
type Metrics struct {
	// AvgResponse is Eq. (23): mean of j^res over completed tasks, in slots.
	AvgResponse float64
	// Makespan is the completion slot of the last task.
	Makespan int
	// AvgUtil is Eq. (24): the time-averaged, resource-weighted mean VM
	// utilization, in [0,1].
	AvgUtil float64
	// AvgLoadBal is Eq. (25): the time-averaged Eq. (4) imbalance
	// (lower is better).
	AvgLoadBal float64
	// Completed and Total report scheduling coverage; Completed < Total
	// means the episode hit its step cap with tasks still queued.
	Completed int
	Total     int
	// Steps is the number of agent decisions taken.
	Steps int
	// EnergyWattSlots is the time-integrated power draw across VMs (the
	// extended energy objective; watt·slots).
	EnergyWattSlots float64
	// Cost is the accumulated per-slot billing of busy VMs (the extended
	// cost objective; price·slots).
	Cost float64
	// PerSLO breaks queueing delay down by service class, indexed by
	// workload.SLOClass.
	PerSLO [workload.NumSLOClasses]SLOMetrics
}

// Drain advances time until every placed task has finished executing, so
// the time-integrated metrics cover the full schedule. It does not place
// any queued tasks. Call after the decision loop ends.
func (e *Env) Drain() {
	for len(e.heap) > 0 {
		e.advanceTime()
	}
}

// Metrics summarizes the episode so far.
func (e *Env) Metrics() Metrics {
	m := Metrics{Completed: len(e.completed), Total: e.totalTasks, Steps: e.step}
	if len(e.completed) > 0 {
		sum := 0.0
		for _, r := range e.completed {
			sum += float64(r.Response())
			if r.Finish > m.Makespan {
				m.Makespan = r.Finish
			}
		}
		m.AvgResponse = sum / float64(len(e.completed))
	}
	if e.slots > 0 {
		util := 0.0
		for i := 0; i < NumResources; i++ {
			util += e.cfg.ResourceWeights[i] * e.utilSum[i]
		}
		m.AvgUtil = util / float64(e.slots)
		m.AvgLoadBal = e.loadBalSum / float64(e.slots)
	}
	m.EnergyWattSlots = e.energySum
	m.Cost = e.costSum
	e.perSLOMetrics(&m)
	return m
}

// perSLOMetrics fills Metrics.PerSLO from the completion records, reusing
// the env-owned wait buffers so repeated Metrics calls do not allocate in
// steady state.
func (e *Env) perSLOMetrics(m *Metrics) {
	for c := range e.sloWaits {
		e.sloWaits[c] = e.sloWaits[c][:0]
	}
	for _, r := range e.completed {
		c := sloIndex(r.Task.SLO)
		e.sloWaits[c] = append(e.sloWaits[c], float64(r.Wait()))
	}
	for c := range m.PerSLO {
		s := &m.PerSLO[c]
		s.Class = workload.SLOClass(c)
		waits := e.sloWaits[c]
		s.Completed = len(waits)
		if len(waits) == 0 {
			continue
		}
		sort.Float64s(waits)
		sum := 0.0
		target := float64(e.cfg.Objectives.SLOWaitTarget[c])
		for _, w := range waits {
			sum += w
			if target > 0 && w > target {
				s.Violations++
			}
		}
		s.AvgWait = sum / float64(len(waits))
		s.WaitP50 = waitPercentile(waits, 0.50)
		s.WaitP95 = waitPercentile(waits, 0.95)
	}
}

// waitPercentile linearly interpolates a percentile of a sorted sample.
func waitPercentile(sorted []float64, q float64) float64 {
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}

// Records returns the completion records accumulated so far.
func (e *Env) Records() []TaskRecord { return e.completed }
