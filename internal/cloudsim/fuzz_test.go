package cloudsim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/workload"
)

// FuzzStreamInject feeds arbitrary bytes through the streaming
// TaskSource/Inject path: decoded task scripts carry out-of-order arrivals,
// zero/negative durations, non-positive and over-capacity requests. The
// engine must reject or error deterministically — SourceErr for source
// violations, an Inject error for malformed injections — and never corrupt
// resource accounting (checked with the invariant harness after every
// step).
func FuzzStreamInject(f *testing.F) {
	f.Add(int64(1), []byte{})
	f.Add(int64(2), []byte{1, 1, 8, 2, 0, 1, 2, 16, 3, 0})          // two valid tasks
	f.Add(int64(3), []byte{1, 1, 8, 0, 0})                          // zero duration
	f.Add(int64(4), []byte{5, 1, 8, 2, 0, 0x80, 1, 8, 2, 0})        // arrival regression
	f.Add(int64(5), []byte{1, 0, 8, 2, 0})                          // zero CPU
	f.Add(int64(6), []byte{1, 1, 0, 2, 0})                          // zero memory
	f.Add(int64(7), []byte{1, 1, 255, 2, 0})                        // infinite memory
	f.Add(int64(8), []byte{1, 100, 8, 2, 0})                        // over-capacity CPU

	f.Fuzz(func(t *testing.T, seed int64, data []byte) {
		specs := []VMSpec{{CPU: 4, Mem: 8}, {CPU: 2, Mem: 2}, {CPU: 8, Mem: 16}}
		cfg := DefaultConfig(specs)
		cfg.TopK = 2
		cfg.UtilBuckets = 3
		cfg.Oversub = 1.5
		cfg.PadVCPUs = oversubCPU(cfg.PadVCPUs, 1.5)
		cfg.MaxSteps = 300
		maxCapCPU := oversubCPU(8, 1.5)
		maxCapMem := 16 * 1.5

		// Decode a task script: 5 bytes per task — signed arrival delta,
		// signed CPU, memory eighth-GiBs (255 = +Inf), signed duration,
		// spare. Any field can be invalid; the first invalid pull must shut
		// the source down via SourceErr.
		var script []workload.Task
		arr := 0
		for i := 0; i+5 <= len(data) && len(script) < 64; i += 5 {
			arr += int(int8(data[i]))
			mem := float64(data[i+2]) / 8
			if data[i+2] == 255 {
				mem = math.Inf(1)
			}
			script = append(script, workload.Task{
				ID:       len(script),
				Arrival:  arr,
				CPU:      int(int8(data[i+1])),
				Mem:      mem,
				Duration: int(int8(data[i+3])),
			})
		}
		env, err := NewEnvSource(cfg, &scriptedSource{tasks: script})
		if err != nil {
			t.Fatalf("NewEnvSource: %v", err)
		}
		rng := rand.New(rand.NewSource(seed))
		steps := 0
		for !env.Done() {
			if steps%7 == 3 {
				inj := workload.Task{
					ID:       1000 + steps,
					Arrival:  rng.Intn(60) - 10,
					CPU:      rng.Intn(20) - 5,
					Mem:      float64(rng.Intn(50)) - 5,
					Duration: rng.Intn(6) - 2,
				}
				qBefore, pBefore := env.QueueLen(), len(env.completed)
				err := env.Inject(inj)
				// Deterministic accept/reject contract.
				wantErr := inj.CPU < 1 || !(inj.Mem > 0) || inj.Duration < 1 ||
					inj.CPU > maxCapCPU || inj.Mem > maxCapMem
				if wantErr && err == nil {
					t.Fatalf("Inject accepted malformed/over-capacity task %+v", inj)
				}
				if !wantErr && err != nil {
					t.Fatalf("Inject rejected valid task %+v: %v", inj, err)
				}
				if err != nil && (env.QueueLen() != qBefore || len(env.completed) != pBefore) {
					t.Fatal("failed Inject mutated engine state")
				}
			}
			env.Step(rng.Intn(env.NumActions()))
			steps++
			checkStepInvariants(t, env)
		}
		env.Drain()
		checkStepInvariants(t, env)

		// Source shutdown is deterministic: an error implies the script's
		// first violation was reached with exactly the valid prefix pulled,
		// and a clean drain implies the script had no violation at all.
		bad := firstViolation(script)
		if serr := env.SourceErr(); serr != nil {
			if bad < 0 {
				t.Fatalf("SourceErr %v on a violation-free script", serr)
			}
			if env.pulled != bad {
				t.Fatalf("pulled %d valid tasks, want the %d before the violation", env.pulled, bad)
			}
		} else if env.srcDone && bad >= 0 {
			t.Fatalf("source drained cleanly past a violation at task %d", bad)
		}
	})
}

// firstViolation returns the index of the first task the environment's
// source validation must reject, or -1.
func firstViolation(script []workload.Task) int {
	last := 0
	for i, t := range script {
		if t.CPU < 1 || !(t.Mem > 0) || math.IsInf(t.Mem, 1) || t.Duration < 1 ||
			t.Arrival < 0 || t.Arrival < last {
			return i
		}
		last = t.Arrival
	}
	return -1
}
