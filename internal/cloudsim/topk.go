package cloudsim

import (
	"math/bits"

	"repro/internal/workload"
)

// This file implements the scalable fixed-width observation's candidate
// index: with Config.TopK = k in (0, len(VMs)), the action space becomes
// k+1 candidate slots and the policy sees only the k best-fitting feasible
// VMs for the current head task, so policy input width and NumActions stay
// constant as the cluster grows.
//
// The index buckets VMs by their free-capacity classes
//
//	cpuClass = bits.Len(freeCPU)        (power-of-two bands)
//	memClass = bits.Len(floor(freeMem))
//
// and keeps, per (cpuClass, memClass) bucket, a hierarchical bitset over VM
// indices plus non-empty summary masks. Candidate selection for a head task
// requesting (c, m) iterates cpuClass ascending from bits.Len(c) and
// memClass ascending from bits.Len(floor(m)) — any lower class provably
// cannot fit, any strictly higher class provably fits in that dimension, and
// only the boundary classes need the exact Fits check that every popped VM
// gets anyway. The resulting deterministic ranking is
//
//	(free-CPU class asc, free-mem class asc, VM index asc)
//
// — a coarse tightest-fit order with ascending-index tie-break, pinned by
// TestTopKSelectionHandComputed. Selection costs O(k + classes + boundary
// misfits), independent of the total VM count; index maintenance is O(1)
// per VM capacity change.

// cpuClassOf bands a free vCPU count by bit length: 0, 1, 2-3, 4-7, ...
func cpuClassOf(freeCPU int) int { return bits.Len(uint(freeCPU)) }

// memClassOf bands free memory by the bit length of its floor in GiB.
// Values too large for an exact int conversion collapse into class 63,
// beyond any real VM's class (float→int conversion of an out-of-range
// value is not defined in Go, and a task requesting 2^62 GiB fits nothing).
func memClassOf(freeMem float64) int {
	if freeMem <= 0 {
		return 0
	}
	if freeMem >= float64(int64(1)<<62) {
		return 63
	}
	return bits.Len(uint(int(freeMem)))
}

// vmBucket is one (cpuClass, memClass) cell: a bitset over VM indices with a
// one-level summary (bit w of summary set iff word w of bitsets is nonzero)
// so iteration skips empty regions.
type vmBucket struct {
	words   []uint64
	summary []uint64
	count   int
}

func (b *vmBucket) add(i int) {
	w := i >> 6
	b.words[w] |= 1 << (uint(i) & 63)
	b.summary[w>>6] |= 1 << (uint(w) & 63)
	b.count++
}

func (b *vmBucket) remove(i int) {
	w := i >> 6
	b.words[w] &^= 1 << (uint(i) & 63)
	if b.words[w] == 0 {
		b.summary[w>>6] &^= 1 << (uint(w) & 63)
	}
	b.count--
}

// vmIndex is the cluster-wide candidate index. Class counts are tiny
// (≤ bits.Len of the largest capacity, so ~8 CPU × ~12 memory classes even
// with oversubscription), which keeps the whole structure a few hundred KB
// at 5000 VMs.
type vmIndex struct {
	nCPU, nMem int
	words      int // bitset words per bucket
	swords     int // summary words per bucket
	buckets    []vmBucket

	cpuNonempty uint64   // bit c set iff any bucket in cpu class c is non-empty
	memNonempty []uint64 // per cpu class: bit m set iff bucket (c,m) non-empty
}

// newVMIndex sizes the index for n VMs with the given maximum per-VM
// capacities (post-oversubscription).
func newVMIndex(n, maxCapCPU int, maxCapMem float64) *vmIndex {
	idx := &vmIndex{
		nCPU:  cpuClassOf(maxCapCPU) + 1,
		nMem:  memClassOf(maxCapMem) + 1,
		words: (n + 63) / 64,
	}
	idx.swords = (idx.words + 63) / 64
	idx.buckets = make([]vmBucket, idx.nCPU*idx.nMem)
	for i := range idx.buckets {
		idx.buckets[i].words = make([]uint64, idx.words)
		idx.buckets[i].summary = make([]uint64, idx.swords)
	}
	idx.memNonempty = make([]uint64, idx.nCPU)
	return idx
}

func (idx *vmIndex) bucket(c, m int) *vmBucket { return &idx.buckets[c*idx.nMem+m] }

// add registers VM i under its free-capacity classes.
func (idx *vmIndex) add(i, c, m int) {
	b := idx.bucket(c, m)
	b.add(i)
	idx.memNonempty[c] |= 1 << uint(m)
	idx.cpuNonempty |= 1 << uint(c)
}

// remove deregisters VM i from its (previous) free-capacity classes.
func (idx *vmIndex) remove(i, c, m int) {
	b := idx.bucket(c, m)
	b.remove(i)
	if b.count == 0 {
		idx.memNonempty[c] &^= 1 << uint(m)
		if idx.memNonempty[c] == 0 {
			idx.cpuNonempty &^= 1 << uint(c)
		}
	}
}

// appendVMs walks the bucket's VM indices ascending, appending to dst until
// it holds max entries; only VMs passing fits survive (the class bands are
// safe pruning, not exact feasibility). Returns the extended slice.
func (b *vmBucket) appendVMs(dst []int32, max int, fits func(int) bool) []int32 {
	for sw, sword := range b.summary {
		for sword != 0 {
			w := sw<<6 + bits.TrailingZeros64(sword)
			sword &= sword - 1
			word := b.words[w]
			for word != 0 {
				i := w<<6 + bits.TrailingZeros64(word)
				word &= word - 1
				if fits(i) {
					dst = append(dst, int32(i))
					if len(dst) >= max {
						return dst
					}
				}
			}
		}
	}
	return dst
}

// Candidates returns the current candidate slot → VM index mapping, of
// length Config.TopK, padded with -1 void slots past the feasible
// candidates (the non-void entries always form a prefix). The slice is a
// scratch buffer owned by the environment, valid until the next state
// change; it is only meaningful in ranked mode (Ranked() true).
func (e *Env) Candidates() []int32 {
	if e.candValid {
		return e.cand
	}
	k := e.cfg.TopK
	e.cand = e.cand[:0]
	if head, ok := e.HeadTask(); ok {
		e.cand = e.idx.collect(e.cand, k, head, e.vms)
	}
	for len(e.cand) < k {
		e.cand = append(e.cand, -1)
	}
	e.candValid = true
	return e.cand
}

// collect gathers up to k feasible VMs for head in the documented ranking
// order: ascending cpuClass from the head's CPU class, ascending memClass
// from the head's memory class, ascending VM index.
func (idx *vmIndex) collect(dst []int32, k int, head workload.Task, vms []*VM) []int32 {
	fits := func(i int) bool { return vms[i].Fits(head) }
	hc := cpuClassOf(head.CPU)
	hm := memClassOf(head.Mem)
	if hm >= 64 { // request beyond any representable class: nothing can fit
		return dst
	}
	cpuMask := idx.cpuNonempty &^ (1<<uint(hc) - 1)
	for cpuMask != 0 {
		c := bits.TrailingZeros64(cpuMask)
		cpuMask &= cpuMask - 1
		memMask := idx.memNonempty[c] &^ (1<<uint(hm) - 1)
		for memMask != 0 {
			m := bits.TrailingZeros64(memMask)
			memMask &= memMask - 1
			dst = idx.bucket(c, m).appendVMs(dst, k, fits)
			if len(dst) >= k {
				return dst
			}
		}
	}
	return dst
}

// Ranked reports whether the environment runs in ranked top-k mode: a
// candidate index in front of a cluster larger than TopK. With TopK ≥
// len(VMs) the candidate slots degenerate to the identity VM mapping and
// the engine uses the exact legacy code paths (identity mode).
func (e *Env) Ranked() bool { return e.ranked }

// CandidateVM maps an action in [0, TopK) to the VM index it addresses in
// the current state, or -1 for a void slot. In identity mode slot i is VM i.
func (e *Env) CandidateVM(slot int) int {
	if e.ranked {
		return int(e.Candidates()[slot])
	}
	if slot < len(e.vms) {
		return slot
	}
	return -1
}
