package cloudsim

import "repro/internal/obs"

// Step-outcome counters, registered into the default registry. Each Step
// takes exactly one branch, so pfrl_sim_placements_total +
// pfrl_sim_invalid_placements_total + pfrl_sim_lazy_waits_total +
// pfrl_sim_idle_waits_total equals the total simulator steps. Counter bumps
// are single atomic adds and never allocate.
var (
	simReg = obs.DefaultRegistry()

	mSimPlacements = simReg.Counter("pfrl_sim_placements_total",
		"valid task placements executed by the simulator")
	mSimInvalid = simReg.Counter("pfrl_sim_invalid_placements_total",
		"placements denied (void VM, out-of-range, or insufficient resources)")
	mSimLazyWaits = simReg.Counter("pfrl_sim_lazy_waits_total",
		"Wait actions taken while a feasible placement existed")
	mSimIdleWaits = simReg.Counter("pfrl_sim_idle_waits_total",
		"Wait actions with nothing placeable (empty queue or no feasible VM)")
)
