package cloudsim

import (
	"testing"

	"repro/internal/workload"
)

func TestInjectAddsToQueueAndTotal(t *testing.T) {
	cfg := DefaultConfig([]VMSpec{{CPU: 4, Mem: 16}})
	env := MustNewEnv(cfg, nil)
	if !env.Done() {
		t.Fatal("empty env should start done")
	}
	env.Inject(workload.Task{ID: 0, Arrival: 0, CPU: 1, Mem: 1, Duration: 1})
	if env.Done() {
		t.Fatal("injection should reopen the episode")
	}
	if env.QueueLen() != 1 {
		t.Fatalf("queue %d", env.QueueLen())
	}
	env.Step(0)
	if !env.Done() {
		t.Fatal("placing the injected task should finish the episode")
	}
}

func TestInjectBackdatedArrivalClamped(t *testing.T) {
	cfg := DefaultConfig([]VMSpec{{CPU: 4, Mem: 16}})
	env := MustNewEnv(cfg, []workload.Task{{ID: 0, Arrival: 0, CPU: 1, Mem: 1, Duration: 1}})
	env.Step(env.WaitAction()) // now = 1
	env.Inject(workload.Task{ID: 1, Arrival: 0, CPU: 1, Mem: 1, Duration: 1})
	// The injected task's wait time must not be negative.
	env.Step(0)
	env.Step(0)
	for _, r := range env.Records() {
		if r.Wait() < 0 {
			t.Fatalf("negative wait for injected task: %+v", r)
		}
	}
}

func TestExpectTotalKeepsEpisodeOpen(t *testing.T) {
	cfg := DefaultConfig([]VMSpec{{CPU: 4, Mem: 16}})
	env := MustNewEnv(cfg, []workload.Task{{ID: 0, Arrival: 0, CPU: 1, Mem: 1, Duration: 1}})
	env.ExpectTotal(2)
	env.Step(0)
	if env.Done() {
		t.Fatal("episode must stay open until the announced total is placed")
	}
	env.Inject(workload.Task{ID: 1, Arrival: 0, CPU: 1, Mem: 1, Duration: 1})
	env.Step(0)
	if !env.Done() {
		t.Fatal("episode should end once the announced total completes")
	}
}

func TestExpectTotalBelowKnownPanics(t *testing.T) {
	cfg := DefaultConfig([]VMSpec{{CPU: 4, Mem: 16}})
	env := MustNewEnv(cfg, []workload.Task{
		{ID: 0, Arrival: 0, CPU: 1, Mem: 1, Duration: 1},
		{ID: 1, Arrival: 0, CPU: 1, Mem: 1, Duration: 1},
	})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	env.ExpectTotal(1)
}

func TestInjectUnderExpectTotalDoesNotInflate(t *testing.T) {
	cfg := DefaultConfig([]VMSpec{{CPU: 4, Mem: 16}})
	env := MustNewEnv(cfg, nil)
	env.ExpectTotal(2)
	env.Inject(workload.Task{ID: 0, Arrival: 0, CPU: 1, Mem: 1, Duration: 1})
	env.Inject(workload.Task{ID: 1, Arrival: 0, CPU: 1, Mem: 1, Duration: 1})
	env.Step(0)
	env.Step(0)
	if !env.Done() {
		t.Fatal("ExpectTotal headroom should be consumed by injections, not added to")
	}
}
