package cloudsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/workload"
)

func twoVMConfig() Config {
	return DefaultConfig([]VMSpec{{CPU: 4, Mem: 16}, {CPU: 8, Mem: 32}})
}

func simpleTasks() []workload.Task {
	return []workload.Task{
		{ID: 0, Arrival: 0, CPU: 2, Mem: 4, Duration: 3},
		{ID: 1, Arrival: 0, CPU: 4, Mem: 8, Duration: 2},
		{ID: 2, Arrival: 2, CPU: 1, Mem: 2, Duration: 1},
	}
}

func TestConfigValidate(t *testing.T) {
	good := twoVMConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.VMs = nil },
		func(c *Config) { c.PadVMs = 1 },
		func(c *Config) { c.QueueDepth = 0 },
		func(c *Config) { c.Rho = 1.5 },
		func(c *Config) { c.MaxCPU = 0 },
		func(c *Config) { c.MaxMem = 0 },
		func(c *Config) { c.VMs = []VMSpec{{CPU: 0, Mem: 1}} },
		func(c *Config) { c.PadVCPUs = 2 }, // VM has 8 vCPUs > pad
	}
	for i, mutate := range bad {
		c := twoVMConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestEnvTruncatedDistinguishesCapFromCompletion(t *testing.T) {
	cfg := twoVMConfig()
	cfg.MaxSteps = 2
	env := MustNewEnv(cfg, simpleTasks())
	if env.Done() || env.Truncated() {
		t.Fatal("fresh episode must be neither done nor truncated")
	}
	wait := env.WaitAction()
	env.Step(wait)
	env.Step(wait)
	if !env.Done() || !env.Truncated() {
		t.Fatalf("step cap with outstanding tasks must be a truncation (done=%v truncated=%v)",
			env.Done(), env.Truncated())
	}

	// A completed workload at the same step count is a true terminal.
	cfg2 := twoVMConfig()
	cfg2.MaxSteps = 50
	env2 := MustNewEnv(cfg2, simpleTasks()[:1])
	env2.Step(1) // place the only task on the big VM
	for !env2.Done() {
		env2.Step(env2.WaitAction())
	}
	if env2.Truncated() {
		t.Fatal("a fully completed workload is terminal, not truncated")
	}
}

func TestEnvInitialState(t *testing.T) {
	env := MustNewEnv(twoVMConfig(), simpleTasks())
	if env.Now() != 0 {
		t.Fatal("clock should start at 0")
	}
	if env.QueueLen() != 2 {
		t.Fatalf("arrivals at slot 0 should be queued: %d", env.QueueLen())
	}
	if env.PendingLen() != 1 {
		t.Fatalf("task arriving at slot 2 should be pending: %d", env.PendingLen())
	}
	if env.NumActions() != 3 || env.WaitAction() != 2 {
		t.Fatalf("action space wrong: %d/%d", env.NumActions(), env.WaitAction())
	}
}

func TestValidPlacementDoesNotAdvanceTime(t *testing.T) {
	env := MustNewEnv(twoVMConfig(), simpleTasks())
	r := env.Step(0)
	if env.Now() != 0 {
		t.Fatal("valid placement must not advance the clock")
	}
	if r <= 0 {
		t.Fatalf("valid placement reward should be positive, got %v", r)
	}
	if env.QueueLen() != 1 {
		t.Fatal("head task should leave the queue")
	}
	if env.VMs()[0].FreeCPU() != 2 || env.VMs()[0].FreeMem() != 12 {
		t.Fatalf("resources not deducted: %d/%v", env.VMs()[0].FreeCPU(), env.VMs()[0].FreeMem())
	}
}

func TestWaitAdvancesTime(t *testing.T) {
	env := MustNewEnv(twoVMConfig(), simpleTasks())
	r := env.Step(env.WaitAction())
	if env.Now() != 1 {
		t.Fatal("wait must advance the clock")
	}
	if r != env.Config().LazyPenalty {
		t.Fatalf("waiting with feasible VMs must incur the lazy penalty, got %v", r)
	}
}

func TestWaitWithoutFeasiblePlacementIsFree(t *testing.T) {
	cfg := DefaultConfig([]VMSpec{{CPU: 2, Mem: 4}})
	tasks := []workload.Task{
		{ID: 0, Arrival: 0, CPU: 2, Mem: 4, Duration: 5},
		{ID: 1, Arrival: 0, CPU: 2, Mem: 4, Duration: 1},
	}
	env := MustNewEnv(cfg, tasks)
	if r := env.Step(0); r <= 0 {
		t.Fatalf("first placement should succeed, got %v", r)
	}
	// VM now full; waiting is the only sensible move and must cost nothing.
	if r := env.Step(env.WaitAction()); r != 0 {
		t.Fatalf("forced wait should be free, got %v", r)
	}
}

func TestInvalidPlacementPenalty(t *testing.T) {
	cfg := DefaultConfig([]VMSpec{{CPU: 2, Mem: 4}, {CPU: 8, Mem: 32}})
	tasks := []workload.Task{{ID: 0, Arrival: 0, CPU: 4, Mem: 8, Duration: 2}}
	env := MustNewEnv(cfg, tasks)
	r := env.Step(0) // does not fit VM 0
	if r > -1 || r < -math.E {
		t.Fatalf("invalid placement penalty %v outside [-e,-1]", r)
	}
	if env.Now() != 1 {
		t.Fatal("denied action must advance the clock")
	}
	if env.QueueLen() != 1 {
		t.Fatal("denied task must stay queued")
	}
}

func TestVoidVMPenaltyIsWorst(t *testing.T) {
	cfg := twoVMConfig()
	cfg.PadVMs = 4 // two void VM slots
	env := MustNewEnv(cfg, simpleTasks())
	r := env.Step(3) // void VM
	if math.Abs(r-(-math.E)) > 1e-12 {
		t.Fatalf("void VM penalty %v, want -e", r)
	}
}

func TestStepPanicsOnBadAction(t *testing.T) {
	env := MustNewEnv(twoVMConfig(), simpleTasks())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	env.Step(99)
}

func TestStepPanicsAfterDone(t *testing.T) {
	cfg := DefaultConfig([]VMSpec{{CPU: 4, Mem: 16}})
	env := MustNewEnv(cfg, []workload.Task{{ID: 0, Arrival: 0, CPU: 1, Mem: 1, Duration: 1}})
	env.Step(0)
	if !env.Done() {
		t.Fatal("episode should end when all tasks are placed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	env.Step(0)
}

func TestTaskLifecycleAndResponse(t *testing.T) {
	cfg := DefaultConfig([]VMSpec{{CPU: 2, Mem: 8}})
	tasks := []workload.Task{
		{ID: 0, Arrival: 0, CPU: 2, Mem: 4, Duration: 3},
		{ID: 1, Arrival: 1, CPU: 2, Mem: 4, Duration: 2},
	}
	env := MustNewEnv(cfg, tasks)
	env.Step(0) // place task 0 at slot 0
	// Task 1 arrives at slot 1 but VM is busy until slot 3.
	for env.Now() < 3 {
		env.Step(env.WaitAction())
	}
	if env.VMs()[0].RunningTasks() != 0 {
		t.Fatal("task 0 should have finished by slot 3")
	}
	env.Step(0) // place task 1 at slot 3 (waited 2 slots)
	env.Drain()
	recs := env.Records()
	if len(recs) != 2 {
		t.Fatalf("records %d", len(recs))
	}
	if recs[0].Response() != 3 || recs[0].Wait() != 0 {
		t.Fatalf("task0 response/wait %d/%d", recs[0].Response(), recs[0].Wait())
	}
	if recs[1].Wait() != 2 || recs[1].Response() != 4 {
		t.Fatalf("task1 response/wait %d/%d", recs[1].Response(), recs[1].Wait())
	}
	m := env.Metrics()
	if m.Makespan != 5 {
		t.Fatalf("makespan %d, want 5", m.Makespan)
	}
	if math.Abs(m.AvgResponse-3.5) > 1e-12 {
		t.Fatalf("avg response %v, want 3.5", m.AvgResponse)
	}
}

func TestResourceConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := DefaultConfig([]VMSpec{{CPU: 8, Mem: 32}, {CPU: 16, Mem: 64}})
	tasks := ClampTasks(workload.SampleDataset(workload.Google, rng, 60), cfg.VMs)
	env := MustNewEnv(cfg, tasks)
	policy := FirstFit{}
	check := func() {
		for i, vm := range env.VMs() {
			usedCPU, usedMem := 0, 0.0
			busyVcpus := 0
			vm.forEachRunning(func(r *running) {
				usedCPU += r.task.CPU
				usedMem += r.task.Mem
				busyVcpus += len(r.vcpus)
			})
			if vm.freeCPU+usedCPU != vm.Spec.CPU {
				t.Fatalf("VM %d CPU leak: free %d used %d spec %d", i, vm.freeCPU, usedCPU, vm.Spec.CPU)
			}
			if math.Abs(vm.freeMem+usedMem-vm.Spec.Mem) > 1e-9 {
				t.Fatalf("VM %d mem leak", i)
			}
			owned := 0
			for _, o := range vm.vcpuOwner {
				if o != -1 {
					owned++
				}
			}
			if owned != busyVcpus || owned != usedCPU {
				t.Fatalf("VM %d vCPU accounting: owned %d busy %d used %d", i, owned, busyVcpus, usedCPU)
			}
		}
	}
	for !env.Done() {
		env.Step(policy.SelectAction(env))
		check()
	}
	env.Drain()
	check()
	m := env.Metrics()
	if m.Completed != m.Total {
		t.Fatalf("first-fit should complete all tasks: %d/%d", m.Completed, m.Total)
	}
}

func TestObserveLayout(t *testing.T) {
	cfg := twoVMConfig()
	cfg.PadVMs = 3
	cfg.PadVCPUs = 8
	env := MustNewEnv(cfg, simpleTasks())
	dim := env.StateDim()
	want := 3*2 + 3*8 + 5*2
	if dim != want {
		t.Fatalf("StateDim %d, want %d", dim, want)
	}
	s := env.Observe(nil)
	if len(s) != dim {
		t.Fatalf("obs len %d", len(s))
	}
	// VM 0 free capacity: 4/8 CPU (MaxCPU=8), 16/32 mem.
	if s[0] != 0.5 || s[1] != 0.5 {
		t.Fatalf("VM0 capacities %v %v", s[0], s[1])
	}
	// VM slot 2 is void.
	if s[4] != VoidMarker || s[5] != VoidMarker {
		t.Fatalf("void VM slot should be -1: %v %v", s[4], s[5])
	}
	// vCPU block: VM0 has 4 real vCPUs (idle=0) then 4 void.
	base := 6
	for k := 0; k < 4; k++ {
		if s[base+k] != 0 {
			t.Fatalf("idle vCPU should be 0, got %v", s[base+k])
		}
	}
	for k := 4; k < 8; k++ {
		if s[base+k] != VoidMarker {
			t.Fatalf("void vCPU should be -1, got %v", s[base+k])
		}
	}
	// Queue block: first task (CPU 2, Mem 4) normalized by 8/32.
	qbase := 3*2 + 3*8
	if s[qbase] != 0.25 || s[qbase+1] != 0.125 {
		t.Fatalf("queue head encoding %v %v", s[qbase], s[qbase+1])
	}
	// Queue slot 2 onwards empty.
	if s[qbase+4] != VoidMarker {
		t.Fatal("empty queue slot should be -1")
	}
}

func TestObserveProgress(t *testing.T) {
	cfg := twoVMConfig()
	env := MustNewEnv(cfg, simpleTasks())
	env.Step(0) // place task 0 (CPU 2, duration 3) on VM 0 at slot 0
	s := env.Observe(nil)
	base := 2 * 2 // after S^VM block (PadVMs=2)
	// Two busy vCPUs with progress 1/3 (slot 0 counts as in progress).
	if math.Abs(s[base]-1.0/3) > 1e-12 || math.Abs(s[base+1]-1.0/3) > 1e-12 {
		t.Fatalf("busy vCPU progress %v %v, want 1/3", s[base], s[base+1])
	}
	if s[base+2] != 0 {
		t.Fatal("free vCPU should be 0")
	}
}

func TestObserveReusesBuffer(t *testing.T) {
	env := MustNewEnv(twoVMConfig(), simpleTasks())
	buf := make([]float64, env.StateDim())
	got := env.Observe(buf)
	if &got[0] != &buf[0] {
		t.Fatal("Observe should reuse a large-enough buffer")
	}
}

func TestFeasibleActions(t *testing.T) {
	cfg := DefaultConfig([]VMSpec{{CPU: 2, Mem: 4}, {CPU: 8, Mem: 32}})
	tasks := []workload.Task{{ID: 0, Arrival: 0, CPU: 4, Mem: 8, Duration: 2}}
	env := MustNewEnv(cfg, tasks)
	mask := env.FeasibleActions()
	if mask[0] {
		t.Fatal("VM0 should not fit")
	}
	if !mask[1] || !mask[2] {
		t.Fatal("VM1 and wait should be feasible")
	}
}

func TestDoneOnMaxSteps(t *testing.T) {
	cfg := DefaultConfig([]VMSpec{{CPU: 1, Mem: 1}})
	cfg.MaxSteps = 5
	// A task that can never fit keeps the queue blocked.
	tasks := []workload.Task{{ID: 0, Arrival: 0, CPU: 1, Mem: 2, Duration: 1}}
	env := MustNewEnv(cfg, tasks)
	steps := 0
	for !env.Done() {
		env.Step(env.WaitAction())
		steps++
		if steps > 100 {
			t.Fatal("episode did not terminate")
		}
	}
	if steps != 5 {
		t.Fatalf("expected cap at 5 steps, took %d", steps)
	}
	if m := env.Metrics(); m.Completed != 0 {
		t.Fatal("blocked task should not complete")
	}
}

func TestClampTasks(t *testing.T) {
	vms := []VMSpec{{CPU: 4, Mem: 8}, {CPU: 8, Mem: 4}}
	tasks := []workload.Task{{CPU: 16, Mem: 32}, {CPU: 2, Mem: 2}}
	out := ClampTasks(tasks, vms)
	if !fitsAny(out[0], vms) {
		t.Fatalf("clamped task must fit some VM: %+v", out[0])
	}
	if out[0].CPU != 4 || out[0].Mem != 8 {
		t.Fatalf("clamp wrong: %+v", out[0])
	}
	if out[1].CPU != 2 || out[1].Mem != 2 {
		t.Fatal("small task should be untouched")
	}
	if tasks[0].CPU != 16 {
		t.Fatal("ClampTasks must not mutate input")
	}
}

func TestLoadBalanceZeroWhenUniform(t *testing.T) {
	cfg := DefaultConfig([]VMSpec{{CPU: 4, Mem: 16}, {CPU: 4, Mem: 16}})
	env := MustNewEnv(cfg, nil)
	if lb := env.LoadBalance(); lb != 0 {
		t.Fatalf("identical idle VMs should be perfectly balanced, got %v", lb)
	}
}

func TestLoadBalanceIncreasesWithImbalance(t *testing.T) {
	cfg := DefaultConfig([]VMSpec{{CPU: 4, Mem: 16}, {CPU: 4, Mem: 16}})
	tasks := []workload.Task{{ID: 0, Arrival: 0, CPU: 4, Mem: 16, Duration: 5}}
	env := MustNewEnv(cfg, tasks)
	before := env.LoadBalance()
	env.Step(0)
	if env.LoadBalance() <= before {
		t.Fatal("loading one VM fully should worsen balance")
	}
}

func TestResetRestoresCleanState(t *testing.T) {
	env := MustNewEnv(twoVMConfig(), simpleTasks())
	env.Step(0)
	env.Step(env.WaitAction())
	env.Reset(simpleTasks())
	if env.Now() != 0 || len(env.Records()) != 0 || env.QueueLen() != 2 {
		t.Fatal("Reset did not restore initial state")
	}
	for _, vm := range env.VMs() {
		if vm.FreeCPU() != vm.Spec.CPU {
			t.Fatal("Reset left resources allocated")
		}
	}
}

func TestHeuristicPoliciesCompleteRealWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := DefaultConfig([]VMSpec{{CPU: 8, Mem: 64}, {CPU: 16, Mem: 128}, {CPU: 32, Mem: 256}})
	base := ClampTasks(workload.SampleDataset(workload.Alibaba2017, rng, 120), cfg.VMs)
	policies := []Policy{FirstFit{}, BestFit{}, WorstFit{}, RandomFit{Rng: rng}, &RoundRobin{}}
	for _, p := range policies {
		env := MustNewEnv(cfg, base)
		m := RunEpisode(env, p)
		if m.Completed != m.Total {
			t.Errorf("%s completed %d/%d", p.Name(), m.Completed, m.Total)
		}
		if m.AvgResponse <= 0 || m.Makespan <= 0 {
			t.Errorf("%s produced degenerate metrics %+v", p.Name(), m)
		}
		if m.AvgUtil < 0 || m.AvgUtil > 1 {
			t.Errorf("%s utilization out of range: %v", p.Name(), m.AvgUtil)
		}
	}
}

func TestWorstFitBalancesBetterThanFirstFit(t *testing.T) {
	// Spreading policy should produce lower time-averaged imbalance than
	// packing everything onto the first VM, on a uniform cluster.
	rng := rand.New(rand.NewSource(3))
	cfg := DefaultConfig([]VMSpec{{CPU: 16, Mem: 64}, {CPU: 16, Mem: 64}, {CPU: 16, Mem: 64}})
	tasks := ClampTasks(workload.SampleDataset(workload.Google, rng, 150), cfg.VMs)
	ff := RunEpisode(MustNewEnv(cfg, tasks), FirstFit{})
	wf := RunEpisode(MustNewEnv(cfg, tasks), WorstFit{})
	if wf.AvgLoadBal >= ff.AvgLoadBal {
		t.Fatalf("worst-fit balance %v should beat first-fit %v", wf.AvgLoadBal, ff.AvgLoadBal)
	}
}

func TestPropEpisodeInvariants(t *testing.T) {
	// For random workloads and clusters: every record has non-negative wait,
	// response >= duration, all placements respected capacity, and when the
	// step cap is generous first-fit completes everything.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		specs := []VMSpec{
			{CPU: 4 + rng.Intn(12), Mem: 16 + 16*float64(rng.Intn(8))},
			{CPU: 8 + rng.Intn(24), Mem: 32 + 32*float64(rng.Intn(8))},
		}
		cfg := DefaultConfig(specs)
		cfg.MaxSteps = 200000 // genuinely generous: long HPC jobs on 2 VMs wait a lot
		id := workload.AllDatasets()[rng.Intn(workload.NumDatasets)]
		tasks := ClampTasks(workload.SampleDataset(id, rng, 40), specs)
		env := MustNewEnv(cfg, tasks)
		m := RunEpisode(env, FirstFit{})
		if m.Completed != m.Total {
			return false
		}
		for _, r := range env.Records() {
			if r.Wait() < 0 || r.Response() < r.Task.Duration {
				return false
			}
		}
		return m.AvgUtil >= 0 && m.AvgUtil <= 1 && m.AvgLoadBal >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPlacementRewardBounds(t *testing.T) {
	// ρ·(0,1] + (1-ρ)·(0,1] placement rewards must lie in (0, 1].
	rng := rand.New(rand.NewSource(4))
	cfg := DefaultConfig([]VMSpec{{CPU: 8, Mem: 64}, {CPU: 16, Mem: 128}})
	tasks := ClampTasks(workload.SampleDataset(workload.KVM2019, rng, 80), cfg.VMs)
	env := MustNewEnv(cfg, tasks)
	p := FirstFit{}
	for !env.Done() {
		a := p.SelectAction(env)
		r := env.Step(a)
		if a != env.WaitAction() && a < len(env.VMs()) {
			if r > 1.0000001 {
				t.Fatalf("placement reward %v > 1", r)
			}
		}
	}
}
