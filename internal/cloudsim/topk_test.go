package cloudsim

import (
	"testing"

	"repro/internal/workload"
)

// topkCluster is the 4-VM hand-computed selection fixture. Free-capacity
// classes at reset (cpuClass = bits.Len(freeCPU), memClass =
// bits.Len(⌊freeMem⌋)):
//
//	VM0 {2, 2}  → (2, 2)
//	VM1 {4, 8}  → (3, 4)
//	VM2 {2, 2}  → (2, 2)   (class tie with VM0 — index breaks it)
//	VM3 {8, 4}  → (4, 3)
func topkCluster() []VMSpec {
	return []VMSpec{{CPU: 2, Mem: 2}, {CPU: 4, Mem: 8}, {CPU: 2, Mem: 2}, {CPU: 8, Mem: 4}}
}

func topkConfig(k int) Config {
	cfg := DefaultConfig(topkCluster())
	cfg.TopK = k
	return cfg
}

// TestTopKSelectionHandComputed pins the candidate ranking — (cpuClass asc,
// memClass asc, VM index asc) with exact-fit filtering at class boundaries
// — against hand-worked tables on the 4-VM fixture.
func TestTopKSelectionHandComputed(t *testing.T) {
	cases := []struct {
		name string
		head workload.Task
		want []int32
	}{
		// {2,2}: classes (2,2). Class-(2,2): VM0 then VM2 (index tie-break);
		// class (3,4): VM1; VM3 at cpu class 4 falls off the k=3 table.
		{"tie-break-by-index", workload.Task{CPU: 2, Mem: 2, Duration: 1}, []int32{0, 2, 1}},
		// {1,1}: everything fits; same class walk as above.
		{"all-fit", workload.Task{CPU: 1, Mem: 1, Duration: 1}, []int32{0, 2, 1}},
		// {3,5}: cpu class 2 VMs are boundary misfits (freeCPU 2 < 3) and the
		// exact Fits check rejects them; VM1 (4,8) is the only fit — VM3 has
		// mem 4 < 5 despite memClass 3 ≥ hm 3 (boundary misfit, filtered).
		{"boundary-misfits-filtered", workload.Task{CPU: 3, Mem: 5, Duration: 1}, []int32{1, -1, -1}},
		// {8,4}: only VM3 fits (VM1's cpu class 3 < hc 4 is pruned wholesale).
		{"exact-largest", workload.Task{CPU: 8, Mem: 4, Duration: 1}, []int32{3, -1, -1}},
		// {5,3}: VM1 is in cpu class 3 = hc but freeCPU 4 < 5 (boundary
		// misfit); VM3 fits.
		{"cpu-boundary-misfit", workload.Task{CPU: 5, Mem: 3, Duration: 1}, []int32{3, -1, -1}},
		// Nothing fits: all slots void.
		{"nothing-fits", workload.Task{CPU: 9, Mem: 9, Duration: 1}, []int32{-1, -1, -1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.head.ID = 0
			env := MustNewEnv(topkConfig(3), []workload.Task{tc.head})
			got := env.Candidates()
			if len(got) != 3 {
				t.Fatalf("candidate table length %d, want 3", len(got))
			}
			for s := range got {
				if got[s] != tc.want[s] {
					t.Fatalf("slot %d: got VM %d, want %d (table %v vs %v)",
						s, got[s], tc.want[s], got, tc.want)
				}
			}
		})
	}
}

// TestTopKRankingTracksPlacements pins the re-ranking after a placement
// changes a VM's classes: VM0 drops out once its free CPU hits zero.
func TestTopKRankingTracksPlacements(t *testing.T) {
	tasks := []workload.Task{
		{ID: 0, Arrival: 0, CPU: 2, Mem: 1, Duration: 5},
		{ID: 1, Arrival: 0, CPU: 1, Mem: 1, Duration: 1},
	}
	env := MustNewEnv(topkConfig(3), tasks)
	// Head {2,1}: same walk as the {2,2} table → [0, 2, 1].
	want := []int32{0, 2, 1}
	for s, vi := range env.Candidates() {
		if vi != want[s] {
			t.Fatalf("before placement, slot %d: got %d want %d", s, vi, want[s])
		}
	}
	// Place on candidate slot 0 = VM0, exhausting its CPU (free 0/1).
	env.Step(0)
	// Head {1,1}: VM0's cpu class 0 < hc 1 is pruned; VM2 (2,2), VM1 (3,4),
	// VM3 (4,3) in that order.
	want = []int32{2, 1, 3}
	for s, vi := range env.Candidates() {
		if vi != want[s] {
			t.Fatalf("after placement, slot %d: got %d want %d", s, vi, want[s])
		}
	}
	if got := env.CandidateVM(1); got != 1 {
		t.Fatalf("CandidateVM(1) = %d, want 1", got)
	}
}

// TestCandidateVMIdentityMode: with TopK ≥ len(VMs) the slot→VM mapping is
// the identity, void past the cluster.
func TestCandidateVMIdentityMode(t *testing.T) {
	cfg := topkConfig(4) // == len(VMs): identity, not ranked
	env := MustNewEnv(cfg, []workload.Task{{ID: 0, CPU: 1, Mem: 1, Duration: 1}})
	if env.Ranked() {
		t.Fatal("TopK == len(VMs) should not be ranked mode")
	}
	for i := 0; i < 4; i++ {
		if got := env.CandidateVM(i); got != i {
			t.Fatalf("identity CandidateVM(%d) = %d", i, got)
		}
	}
	cfg.TopK = 6
	cfg.PadVMs = 6
	env = MustNewEnv(cfg, []workload.Task{{ID: 0, CPU: 1, Mem: 1, Duration: 1}})
	if got := env.CandidateVM(5); got != -1 {
		t.Fatalf("identity CandidateVM(5) = %d, want -1 (void)", got)
	}
}

// TestRankedStateDimAndActions pins the fixed-width property: StateDim and
// NumActions depend on TopK, not on the cluster size.
func TestRankedStateDimAndActions(t *testing.T) {
	mk := func(n int) Config {
		cfg := DefaultConfig(tieredCluster(n))
		cfg.TopK = 8
		cfg.UtilBuckets = 10
		return cfg
	}
	small, large := mk(20), mk(500)
	if StateDim(small) != StateDim(large) {
		t.Fatalf("StateDim grew with cluster: %d vs %d", StateDim(small), StateDim(large))
	}
	if NumActions(small) != 9 || NumActions(large) != 9 {
		t.Fatalf("NumActions not fixed at k+1: %d / %d", NumActions(small), NumActions(large))
	}
	want := 8*NumResources + 8*small.PadVCPUs + small.QueueDepth*NumResources + 2*10 + 3
	if StateDim(small) != want {
		t.Fatalf("ranked StateDim = %d, want %d", StateDim(small), want)
	}
}

// TestRankedHeuristicSlots pins the heuristic→candidate-slot mapping in
// ranked mode on the hand-computed fixture.
func TestRankedHeuristicSlots(t *testing.T) {
	tasks := []workload.Task{{ID: 0, Arrival: 0, CPU: 2, Mem: 2, Duration: 2}}
	env := MustNewEnv(topkConfig(3), tasks)
	// Candidates are [0, 2, 1]: slot 0 is the tightest fit, slot 2 the
	// loosest surfaced, and VM0 has the lowest VM index.
	if got := (BestFit{}).SelectAction(env); got != 0 {
		t.Fatalf("BestFit slot = %d, want 0", got)
	}
	if got := (WorstFit{}).SelectAction(env); got != 2 {
		t.Fatalf("WorstFit slot = %d, want 2", got)
	}
	if got := (FirstFit{}).SelectAction(env); got != 0 {
		t.Fatalf("FirstFit slot = %d, want 0", got)
	}
	rr := &RoundRobin{}
	if a, b := rr.SelectAction(env), rr.SelectAction(env); a != 0 || b != 1 {
		t.Fatalf("RoundRobin slots = %d,%d, want 0,1", a, b)
	}

	// After exhausting VM0 the head {1,1} candidates are [2, 1, 3]; the
	// lowest VM index (1) now sits in slot 1.
	env = MustNewEnv(topkConfig(3), []workload.Task{
		{ID: 0, Arrival: 0, CPU: 2, Mem: 1, Duration: 5},
		{ID: 1, Arrival: 0, CPU: 1, Mem: 1, Duration: 1},
	})
	env.Step(0)
	if got := (FirstFit{}).SelectAction(env); got != 1 {
		t.Fatalf("FirstFit slot after re-rank = %d, want 1 (VM1)", got)
	}
}
