package cloudsim

import "math/rand"

// Policy selects the next action given the environment. Heuristic policies
// here are used as sanity baselines and in the examples; the RL agents in
// internal/rl implement the same contract through their own rollout loops.
type Policy interface {
	// SelectAction returns an action index in [0, env.NumActions()).
	SelectAction(env *Env) int
	// Name identifies the policy in reports.
	Name() string
}

// candPrefixLen returns the number of feasible (non-void) candidate slots
// in ranked mode. Non-void entries always form a prefix.
func candPrefixLen(env *Env) int {
	cand := env.Candidates()
	n := 0
	for n < len(cand) && cand[n] >= 0 {
		n++
	}
	return n
}

// FirstFit places the head task on the lowest-indexed VM that fits it,
// waiting when none does. In ranked mode it picks the candidate slot whose
// VM index is lowest (the candidates are the only visible VMs).
type FirstFit struct{}

// Name implements Policy.
func (FirstFit) Name() string { return "first-fit" }

// SelectAction implements Policy.
func (FirstFit) SelectAction(env *Env) int {
	head, ok := env.HeadTask()
	if !ok {
		return env.WaitAction()
	}
	if env.Ranked() {
		cand := env.Candidates()
		best, slot := -1, -1
		for s, vi := range cand {
			if vi < 0 {
				break
			}
			if best == -1 || int(vi) < best {
				best, slot = int(vi), s
			}
		}
		if slot == -1 {
			return env.WaitAction()
		}
		return slot
	}
	for i, vm := range env.VMs() {
		if vm.Fits(head) {
			return i
		}
	}
	return env.WaitAction()
}

// BestFit places the head task on the fitting VM with the least leftover
// weighted capacity after placement (tightest fit), waiting when none fits.
// In ranked mode candidate slot 0 is already the tightest-fitting candidate
// (the index ranks by ascending free-capacity class), so BestFit takes it.
type BestFit struct{}

// Name implements Policy.
func (BestFit) Name() string { return "best-fit" }

// SelectAction implements Policy.
func (BestFit) SelectAction(env *Env) int {
	head, ok := env.HeadTask()
	if !ok {
		return env.WaitAction()
	}
	if env.Ranked() {
		if env.Candidates()[0] >= 0 {
			return 0
		}
		return env.WaitAction()
	}
	cfg := env.Config()
	best, bestScore := -1, 0.0
	for i, vm := range env.VMs() {
		if !vm.Fits(head) {
			continue
		}
		leftCPU := float64(vm.FreeCPU()-head.CPU) / float64(cfg.MaxCPU)
		leftMem := (vm.FreeMem() - head.Mem) / cfg.MaxMem
		score := cfg.ResourceWeights[0]*leftCPU + cfg.ResourceWeights[1]*leftMem
		if best == -1 || score < bestScore {
			best, bestScore = i, score
		}
	}
	if best == -1 {
		return env.WaitAction()
	}
	return best
}

// WorstFit places the head task on the fitting VM with the most leftover
// capacity (spreads load), waiting when none fits. In ranked mode it takes
// the last feasible candidate slot — the loosest fit the index surfaced.
type WorstFit struct{}

// Name implements Policy.
func (WorstFit) Name() string { return "worst-fit" }

// SelectAction implements Policy.
func (WorstFit) SelectAction(env *Env) int {
	head, ok := env.HeadTask()
	if !ok {
		return env.WaitAction()
	}
	if env.Ranked() {
		if n := candPrefixLen(env); n > 0 {
			return n - 1
		}
		return env.WaitAction()
	}
	cfg := env.Config()
	best, bestScore := -1, 0.0
	for i, vm := range env.VMs() {
		if !vm.Fits(head) {
			continue
		}
		leftCPU := float64(vm.FreeCPU()-head.CPU) / float64(cfg.MaxCPU)
		leftMem := (vm.FreeMem() - head.Mem) / cfg.MaxMem
		score := cfg.ResourceWeights[0]*leftCPU + cfg.ResourceWeights[1]*leftMem
		if best == -1 || score > bestScore {
			best, bestScore = i, score
		}
	}
	if best == -1 {
		return env.WaitAction()
	}
	return best
}

// RandomFit places the head task on a uniformly random fitting VM,
// waiting when none fits.
type RandomFit struct{ Rng *rand.Rand }

// Name implements Policy.
func (RandomFit) Name() string { return "random-fit" }

// SelectAction implements Policy.
func (p RandomFit) SelectAction(env *Env) int {
	head, ok := env.HeadTask()
	if !ok {
		return env.WaitAction()
	}
	if env.Ranked() {
		if n := candPrefixLen(env); n > 0 {
			return p.Rng.Intn(n)
		}
		return env.WaitAction()
	}
	var fits []int
	for i, vm := range env.VMs() {
		if vm.Fits(head) {
			fits = append(fits, i)
		}
	}
	if len(fits) == 0 {
		return env.WaitAction()
	}
	return fits[p.Rng.Intn(len(fits))]
}

// RoundRobin cycles placement across VMs, skipping to the next fitting VM;
// it waits when nothing fits.
type RoundRobin struct{ next int }

// Name implements Policy.
func (*RoundRobin) Name() string { return "round-robin" }

// SelectAction implements Policy.
func (p *RoundRobin) SelectAction(env *Env) int {
	head, ok := env.HeadTask()
	if !ok {
		return env.WaitAction()
	}
	if env.Ranked() {
		if n := candPrefixLen(env); n > 0 {
			s := p.next % n
			p.next = (s + 1) % n
			return s
		}
		return env.WaitAction()
	}
	n := len(env.VMs())
	for k := 0; k < n; k++ {
		i := (p.next + k) % n
		if env.VMs()[i].Fits(head) {
			p.next = (i + 1) % n
			return i
		}
	}
	return env.WaitAction()
}

// RunEpisode drives env with policy until the episode ends, drains running
// tasks, and returns the final metrics.
func RunEpisode(env *Env, policy Policy) Metrics {
	for !env.Done() {
		env.Step(policy.SelectAction(env))
	}
	env.Drain()
	return env.Metrics()
}
