// Package cloudsim implements the paper's cloud task-scheduling environment
// (§4.1–4.2): a discrete-time cluster of heterogeneous VMs, a FIFO waiting
// queue fed by a workload trace, the three-part state encoding
// (S^VM, S^vCPU, S^Queue), the composite reward (response time + load
// balancing, with invalid-action and lazy-wait penalties), and the four
// evaluation metrics (average response time, makespan, average utilization,
// average load balancing). It also provides classic heuristic schedulers
// (first-fit, best-fit, random, round-robin) as sanity baselines.
package cloudsim

import (
	"fmt"

	"repro/internal/workload"
)

// VMSpec describes a virtual machine's capacity: vCPU count and memory GiB.
type VMSpec struct {
	CPU int
	Mem float64
}

// running is one task executing on a VM.
type running struct {
	task  workload.Task
	start int // slot the task was placed
	vcpus []int
}

// VM is a simulated virtual machine. The zero value is unusable; create VMs
// through NewEnv.
type VM struct {
	Spec    VMSpec
	freeCPU int
	freeMem float64
	// vcpuOwner[k] indexes into tasks for the task occupying vCPU k, or -1.
	vcpuOwner []int
	tasks     map[int]*running // keyed by task ID
}

func newVM(spec VMSpec) *VM {
	owner := make([]int, spec.CPU)
	for i := range owner {
		owner[i] = -1
	}
	return &VM{
		Spec:      spec,
		freeCPU:   spec.CPU,
		freeMem:   spec.Mem,
		vcpuOwner: owner,
		tasks:     make(map[int]*running),
	}
}

// FreeCPU returns the currently unallocated vCPU count.
func (v *VM) FreeCPU() int { return v.freeCPU }

// FreeMem returns the currently unallocated memory in GiB.
func (v *VM) FreeMem() float64 { return v.freeMem }

// Fits reports whether the task's request fits in the VM's free resources.
func (v *VM) Fits(t workload.Task) bool {
	return t.CPU <= v.freeCPU && t.Mem <= v.freeMem
}

// place starts t on the VM at the given slot. The caller must have verified
// Fits; place panics otherwise (an environment invariant violation).
func (v *VM) place(t workload.Task, now int) {
	if !v.Fits(t) {
		panic(fmt.Sprintf("cloudsim: place on full VM (task %d needs %d/%.2f, free %d/%.2f)",
			t.ID, t.CPU, t.Mem, v.freeCPU, v.freeMem))
	}
	r := &running{task: t, start: now}
	assigned := 0
	for k := range v.vcpuOwner {
		if v.vcpuOwner[k] == -1 {
			v.vcpuOwner[k] = t.ID
			r.vcpus = append(r.vcpus, k)
			assigned++
			if assigned == t.CPU {
				break
			}
		}
	}
	if assigned != t.CPU {
		panic("cloudsim: free vCPU accounting out of sync")
	}
	v.freeCPU -= t.CPU
	v.freeMem -= t.Mem
	v.tasks[t.ID] = r
}

// collectFinished removes tasks whose duration has elapsed by slot now and
// returns them. A task placed at slot s with duration d finishes when
// now >= s+d.
func (v *VM) collectFinished(now int) []*running {
	var done []*running
	for id, r := range v.tasks {
		if now-r.start >= r.task.Duration {
			done = append(done, r)
			for _, k := range r.vcpus {
				v.vcpuOwner[k] = -1
			}
			v.freeCPU += r.task.CPU
			v.freeMem += r.task.Mem
			delete(v.tasks, id)
		}
	}
	return done
}

// utilization returns the used fraction of resource i (0 = CPU, 1 = memory).
func (v *VM) utilization(resource int) float64 {
	switch resource {
	case 0:
		if v.Spec.CPU == 0 {
			return 0
		}
		return float64(v.Spec.CPU-v.freeCPU) / float64(v.Spec.CPU)
	case 1:
		if v.Spec.Mem == 0 {
			return 0
		}
		return (v.Spec.Mem - v.freeMem) / v.Spec.Mem
	default:
		panic(fmt.Sprintf("cloudsim: unknown resource %d", resource))
	}
}

// remainingFraction returns the free fraction of resource i — the "load"
// m^load(t,i) of Eq. (4), defined in the paper as remaining/total.
func (v *VM) remainingFraction(resource int) float64 {
	return 1 - v.utilization(resource)
}

// progress returns the completion fraction of the task on vCPU k at slot
// now, in (0,1], or 0 if the vCPU is idle. A task that just started counts
// the current slot as in progress, so its progress is 1/duration.
func (v *VM) progress(k, now int) float64 {
	id := v.vcpuOwner[k]
	if id == -1 {
		return 0
	}
	r := v.tasks[id]
	p := float64(now-r.start+1) / float64(r.task.Duration)
	if p > 1 {
		p = 1
	}
	return p
}

// RunningTasks returns the number of tasks currently executing.
func (v *VM) RunningTasks() int { return len(v.tasks) }
