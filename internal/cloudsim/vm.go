// Package cloudsim implements the paper's cloud task-scheduling environment
// (§4.1–4.2): a discrete-time cluster of heterogeneous VMs, a FIFO waiting
// queue fed by a workload trace, the three-part state encoding
// (S^VM, S^vCPU, S^Queue), the composite reward (response time + load
// balancing, with invalid-action and lazy-wait penalties), and the four
// evaluation metrics (average response time, makespan, average utilization,
// average load balancing). It also provides classic heuristic schedulers
// (first-fit, best-fit, random, round-robin) as sanity baselines.
package cloudsim

import (
	"fmt"

	"repro/internal/workload"
)

// VMSpec describes a virtual machine's capacity: vCPU count and memory GiB.
type VMSpec struct {
	CPU int
	Mem float64
}

// running is one task executing on a VM, stored in the VM's dense task
// store. Store slots are recycled through a free list, so the vcpus slice
// keeps its capacity across occupants and steady-state placement does not
// allocate.
type running struct {
	task   workload.Task
	start  int // slot the task was placed
	vcpus  []int
	active bool
}

// VM is a simulated virtual machine. The zero value is unusable; create VMs
// through NewEnv.
//
// The hot-path state is incremental: placements and retirements update the
// dense per-vCPU arrays and the cached utilization/remaining fractions, so
// Observe and the reward terms never walk a task collection. Tasks live in
// a slice-backed store addressed by slot index (not a map), which keeps
// retirement order under the environment's control — the completion heap in
// Env retires tasks in (finish slot, task ID) order, making the float
// accumulation into freeMem deterministic. The previous map-backed store
// retired same-slot tasks in Go map-iteration order, so two tasks finishing
// together could sum their freed memory in either order and produce runs
// that differ in the last bit.
type VM struct {
	Spec VMSpec
	// Schedulable capacity after oversubscription: capCPU = ⌊CPU·ratio⌋
	// vCPUs, capMem = Mem·ratio GiB. With ratio 1 these are exactly the
	// Spec values (no float round trip), keeping the non-oversubscribed
	// engine bit-identical.
	capCPU  int
	capMem  float64
	freeCPU int
	freeMem float64

	// store is the dense task store; freeSlots lists recyclable indices and
	// live counts the occupied ones.
	store     []running
	freeSlots []int
	live      int

	// Per-vCPU state mirrored for Observe: vcpuOwner[k] is the store slot
	// occupying vCPU k (or -1), with the occupant's placement slot and
	// duration alongside so progress needs no indirection.
	vcpuOwner []int
	vcpuStart []int
	vcpuDur   []int

	// Cached pure functions of (Spec, freeCPU, freeMem), refreshed on every
	// place/retire. util is the used fraction per resource, rem = 1 − util.
	util [NumResources]float64
	rem  [NumResources]float64
}

func newVM(spec VMSpec) *VM {
	v := &VM{}
	v.reset(spec, 1)
	return v
}

// reset restores the VM to an empty machine with the given capacity under
// the given oversubscription ratio, reusing every internal buffer it
// already owns.
func (v *VM) reset(spec VMSpec, ratio float64) {
	v.Spec = spec
	if ratio > 1 {
		v.capCPU = oversubCPU(spec.CPU, ratio)
		v.capMem = spec.Mem * ratio
	} else {
		v.capCPU = spec.CPU
		v.capMem = spec.Mem
	}
	v.freeCPU = v.capCPU
	v.freeMem = v.capMem
	if cap(v.vcpuOwner) < v.capCPU {
		v.vcpuOwner = make([]int, v.capCPU)
		v.vcpuStart = make([]int, v.capCPU)
		v.vcpuDur = make([]int, v.capCPU)
	}
	v.vcpuOwner = v.vcpuOwner[:v.capCPU]
	v.vcpuStart = v.vcpuStart[:v.capCPU]
	v.vcpuDur = v.vcpuDur[:v.capCPU]
	for i := range v.vcpuOwner {
		v.vcpuOwner[i] = -1
	}
	// Keep the store entries (and their vcpus capacity); recycle every slot.
	v.freeSlots = v.freeSlots[:0]
	for i := len(v.store) - 1; i >= 0; i-- {
		v.store[i].active = false
		v.freeSlots = append(v.freeSlots, i)
	}
	v.live = 0
	v.refreshCache()
}

// refreshCache recomputes the cached utilization and remaining fractions.
// Both are pure functions of the free counters, so the cached values are
// bit-identical to computing them on demand.
func (v *VM) refreshCache() {
	if v.capCPU == 0 {
		v.util[0] = 0
	} else {
		v.util[0] = float64(v.capCPU-v.freeCPU) / float64(v.capCPU)
	}
	if v.capMem == 0 {
		v.util[1] = 0
	} else {
		v.util[1] = (v.capMem - v.freeMem) / v.capMem
	}
	for i := 0; i < NumResources; i++ {
		v.rem[i] = 1 - v.util[i]
	}
}

// FreeCPU returns the currently unallocated vCPU count.
func (v *VM) FreeCPU() int { return v.freeCPU }

// FreeMem returns the currently unallocated memory in GiB.
func (v *VM) FreeMem() float64 { return v.freeMem }

// CapCPU returns the schedulable vCPU count (Spec.CPU scaled by the
// oversubscription ratio).
func (v *VM) CapCPU() int { return v.capCPU }

// CapMem returns the schedulable memory in GiB (Spec.Mem scaled by the
// oversubscription ratio).
func (v *VM) CapMem() float64 { return v.capMem }

// slowedDuration returns the effective runtime of a task requesting cpu
// vCPUs for dur slots if placed on this VM now. While the VM's committed
// vCPUs stay within the physical count the task runs at full speed; past
// it, runtime stretches by the commit ratio (committed/physical after
// placement), rounded up to whole slots — a simple proportional-sharing
// slowdown frozen at placement time, which keeps the simulator
// event-driven (finish slots never change after placement).
func (v *VM) slowedDuration(cpu, dur int) int {
	usedAfter := v.capCPU - v.freeCPU + cpu
	if usedAfter <= v.Spec.CPU {
		return dur
	}
	return (dur*usedAfter + v.Spec.CPU - 1) / v.Spec.CPU
}

// Fits reports whether the task's request fits in the VM's free resources.
func (v *VM) Fits(t workload.Task) bool {
	return t.CPU <= v.freeCPU && t.Mem <= v.freeMem
}

// place starts t on the VM at the given slot and returns the store index
// holding it (the handle the completion heap retires it by). The caller
// must have verified Fits; place panics otherwise (an environment
// invariant violation).
func (v *VM) place(t workload.Task, now int) int {
	if !v.Fits(t) {
		panic(fmt.Sprintf("cloudsim: place on full VM (task %d needs %d/%.2f, free %d/%.2f)",
			t.ID, t.CPU, t.Mem, v.freeCPU, v.freeMem))
	}
	var slot int
	if n := len(v.freeSlots); n > 0 {
		slot = v.freeSlots[n-1]
		v.freeSlots = v.freeSlots[:n-1]
	} else {
		v.store = append(v.store, running{})
		slot = len(v.store) - 1
	}
	r := &v.store[slot]
	r.task = t
	r.start = now
	r.active = true
	if cap(r.vcpus) < t.CPU {
		r.vcpus = make([]int, 0, t.CPU)
	}
	r.vcpus = r.vcpus[:0]
	assigned := 0
	for k := range v.vcpuOwner {
		if v.vcpuOwner[k] == -1 {
			v.vcpuOwner[k] = slot
			v.vcpuStart[k] = now
			v.vcpuDur[k] = t.Duration
			r.vcpus = append(r.vcpus, k)
			assigned++
			if assigned == t.CPU {
				break
			}
		}
	}
	if assigned != t.CPU {
		panic("cloudsim: free vCPU accounting out of sync")
	}
	v.freeCPU -= t.CPU
	v.freeMem -= t.Mem
	v.live++
	v.refreshCache()
	return slot
}

// retire releases the task in the given store slot: vCPUs, CPU, and memory
// return to the free pool and the slot joins the free list. Retirement
// order is chosen by the caller (Env's completion heap), which is what
// makes the freeMem float accumulation deterministic.
func (v *VM) retire(slot int) {
	r := &v.store[slot]
	if !r.active {
		panic("cloudsim: retire of an empty store slot")
	}
	for _, k := range r.vcpus {
		v.vcpuOwner[k] = -1
	}
	v.freeCPU += r.task.CPU
	v.freeMem += r.task.Mem
	r.active = false
	v.live--
	v.freeSlots = append(v.freeSlots, slot)
	v.refreshCache()
}

// utilization returns the used fraction of resource i (0 = CPU, 1 = memory).
func (v *VM) utilization(resource int) float64 {
	if resource < 0 || resource >= NumResources {
		panic(fmt.Sprintf("cloudsim: unknown resource %d", resource))
	}
	return v.util[resource]
}

// remainingFraction returns the free fraction of resource i — the "load"
// m^load(t,i) of Eq. (4), defined in the paper as remaining/total.
func (v *VM) remainingFraction(resource int) float64 {
	if resource < 0 || resource >= NumResources {
		panic(fmt.Sprintf("cloudsim: unknown resource %d", resource))
	}
	return v.rem[resource]
}

// progress returns the completion fraction of the task on vCPU k at slot
// now, in (0,1], or 0 if the vCPU is idle. A task that just started counts
// the current slot as in progress, so its progress is 1/duration.
func (v *VM) progress(k, now int) float64 {
	if v.vcpuOwner[k] == -1 {
		return 0
	}
	p := float64(now-v.vcpuStart[k]+1) / float64(v.vcpuDur[k])
	if p > 1 {
		p = 1
	}
	return p
}

// RunningTasks returns the number of tasks currently executing.
func (v *VM) RunningTasks() int { return v.live }

// forEachRunning calls f for every task currently executing, in store-slot
// order (test and invariant-check helper; the engine itself never scans).
func (v *VM) forEachRunning(f func(*running)) {
	for i := range v.store {
		if v.store[i].active {
			f(&v.store[i])
		}
	}
}
