package cloudsim

import (
	"math/rand"
	"testing"

	"repro/internal/workload"
)

// Heuristic-portfolio coverage: expected placements per step on a tiny
// cluster, worked out by hand, plus determinism across repeated RunEpisode
// calls on a Reset environment.

// heuristicCluster: VM0 {4,8}, VM1 {2,2}, VM2 {8,16}; MaxCPU 8, MaxMem 16,
// resource weights 0.5/0.5 (DefaultConfig).
func heuristicCluster() []VMSpec {
	return []VMSpec{{CPU: 4, Mem: 8}, {CPU: 2, Mem: 2}, {CPU: 8, Mem: 16}}
}

func heuristicTasks() []workload.Task {
	return []workload.Task{
		{ID: 0, Arrival: 0, CPU: 2, Mem: 2, Duration: 3},
		{ID: 1, Arrival: 0, CPU: 2, Mem: 2, Duration: 3},
		{ID: 2, Arrival: 0, CPU: 4, Mem: 4, Duration: 2},
		{ID: 3, Arrival: 0, CPU: 1, Mem: 1, Duration: 1},
	}
}

// TestHeuristicPlacementsHandComputed drives each policy through the same
// four placements and pins every action. Leftover score = 0.5·leftCPU/8 +
// 0.5·leftMem/16; all four tasks place at t=0 (valid placements do not
// advance time).
func TestHeuristicPlacementsHandComputed(t *testing.T) {
	cases := []struct {
		name   string
		policy Policy
		want   []int
	}{
		// First fit scans VM indices: VM0, VM0, then t2 {4,4} skips the
		// drained VM0 (free 0) and small VM1 → VM2; t3 {1,1} → VM1.
		{"first-fit", FirstFit{}, []int{0, 0, 2, 1}},
		// Best fit minimizes leftover: t0 → VM1 (leftover 0), t1 → VM0
		// (0.3125 vs VM2's 0.8125), t2 → VM2 (only fit), t3 → VM0
		// (0.21875 vs VM2's 0.53125).
		{"best-fit", BestFit{}, []int{1, 0, 2, 0}},
		// Worst fit maximizes leftover: t0 → VM2 (0.8125), t1 → VM2
		// (0.625), t2 → VM2 again (0.25 vs VM0's 0.125), t3 → VM0
		// (0.40625 vs VM1's 0.09375).
		{"worst-fit", WorstFit{}, []int{2, 2, 2, 0}},
		// Round robin cycles: VM0, VM1, then t2 lands on VM2 and t3 wraps
		// to VM0.
		{"round-robin", &RoundRobin{}, []int{0, 1, 2, 0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			env := MustNewEnv(DefaultConfig(heuristicCluster()), heuristicTasks())
			for step, want := range tc.want {
				got := tc.policy.SelectAction(env)
				if got != want {
					t.Fatalf("step %d: %s chose action %d, want %d", step, tc.policy.Name(), got, want)
				}
				if r := env.Step(got); r <= 0 {
					t.Fatalf("step %d: expected a valid placement, reward %v", step, r)
				}
			}
			if !env.Done() {
				t.Fatal("all four tasks placed; episode should be done")
			}
		})
	}
}

// TestHeuristicWaitsWhenNothingFits pins the wait fallback for every
// policy, in both legacy and ranked modes.
func TestHeuristicWaitsWhenNothingFits(t *testing.T) {
	specs := []VMSpec{{CPU: 2, Mem: 2}, {CPU: 2, Mem: 2}, {CPU: 2, Mem: 2}}
	ranked := DefaultConfig(specs)
	ranked.TopK = 2
	for _, mode := range []struct {
		name string
		cfg  Config
	}{
		{"legacy", DefaultConfig(specs)},
		{"ranked", ranked},
	} {
		t.Run(mode.name, func(t *testing.T) {
			// One {2,2} task per VM plus a blocked extra head.
			var tasks []workload.Task
			for j := 0; j <= len(specs); j++ {
				tasks = append(tasks, workload.Task{ID: j, Arrival: 0, CPU: 2, Mem: 2, Duration: 9})
			}
			env := MustNewEnv(mode.cfg, tasks)
			for i := 0; i < len(env.VMs()); i++ {
				if env.Ranked() {
					env.Step(0) // slot 0 always maps to a fresh fitting VM
				} else {
					env.Step(i)
				}
			}
			// Queue still has one blocked head and every VM is full.
			if _, ok := env.HeadTask(); !ok {
				t.Fatal("expected a blocked head task")
			}
			policies := []Policy{FirstFit{}, BestFit{}, WorstFit{}, &RoundRobin{},
				RandomFit{Rng: rand.New(rand.NewSource(1))}}
			for _, p := range policies {
				if got := p.SelectAction(env); got != env.WaitAction() {
					t.Fatalf("%s chose %d on a saturated cluster, want Wait (%d)",
						p.Name(), got, env.WaitAction())
				}
			}
		})
	}
}

// TestRunEpisodeDeterministic pins determinism: repeated RunEpisode calls
// on a Reset environment (with equivalently seeded policy state) produce
// identical metrics and records, in legacy and ranked modes.
func TestRunEpisodeDeterministic(t *testing.T) {
	specs := benchCluster()
	tasks := invWorkload(specs, 200, 5)
	configs := map[string]Config{"legacy": DefaultConfig(specs)}
	ranked := DefaultConfig(specs)
	ranked.TopK = 4
	ranked.UtilBuckets = 4
	configs["ranked"] = ranked

	for name, cfg := range configs {
		t.Run(name, func(t *testing.T) {
			env := MustNewEnv(cfg, tasks)
			mkPolicies := func() []Policy {
				return []Policy{FirstFit{}, BestFit{}, WorstFit{}, &RoundRobin{},
					RandomFit{Rng: rand.New(rand.NewSource(7))}}
			}
			for i, p := range mkPolicies() {
				env.Reset(tasks)
				m1 := RunEpisode(env, p)
				r1 := append([]TaskRecord(nil), env.Records()...)
				env.Reset(tasks)
				m2 := RunEpisode(env, mkPolicies()[i])
				r2 := env.Records()
				if m1 != m2 {
					t.Fatalf("%s metrics diverge across reruns:\n%+v\n%+v", p.Name(), m1, m2)
				}
				if len(r1) != len(r2) {
					t.Fatalf("%s record counts diverge: %d vs %d", p.Name(), len(r1), len(r2))
				}
				for j := range r1 {
					if r1[j] != r2[j] {
						t.Fatalf("%s record %d diverges: %+v vs %+v", p.Name(), j, r1[j], r2[j])
					}
				}
			}
		})
	}
}
