package cloudsim

import (
	"math/rand"
	"testing"

	"repro/internal/workload"
)

// sloTestTasks is a 3-task episode, one task per service class, on a single
// 4-vCPU VM. The forced serialization makes every wait hand-computable.
func sloTestTasks() []workload.Task {
	return []workload.Task{
		{ID: 0, Arrival: 0, CPU: 4, Mem: 8, Duration: 2, SLO: workload.SLOCritical},
		{ID: 1, Arrival: 0, CPU: 4, Mem: 8, Duration: 1, SLO: workload.SLOStandard},
		{ID: 2, Arrival: 1, CPU: 2, Mem: 4, Duration: 3, SLO: workload.SLOBestEffort},
	}
}

// runSLOEpisode drives the canonical schedule: place the head whenever it
// fits the single VM, otherwise wait.
func runSLOEpisode(t *testing.T, cfg Config) *Env {
	t.Helper()
	env := MustNewEnv(cfg, sloTestTasks())
	for !env.Done() {
		head, ok := env.HeadTask()
		if ok && env.vms[0].Fits(head) {
			env.Step(0)
		} else {
			env.Step(env.WaitAction())
		}
	}
	env.Drain()
	return env
}

// TestPerSLOMetricsHandComputed pins Metrics.PerSLO against a schedule
// worked out by hand:
//
//	t0 (critical, 4 vCPU, dur 2): placed at slot 0        -> wait 0
//	t1 (standard, 4 vCPU, dur 1): waits for t0, slot 2    -> wait 2
//	t2 (best-effort, 2 vCPU, dur 3): waits for t1, slot 3 -> wait 2
//
// With wait targets {best-effort: 0, standard: 1, critical: 1}, only t1
// (wait 2 > 1) violates.
func TestPerSLOMetricsHandComputed(t *testing.T) {
	cfg := DefaultConfig([]VMSpec{{CPU: 4, Mem: 16}})
	cfg.Objectives.SLOWaitTarget = [workload.NumSLOClasses]int{0, 1, 1}
	env := runSLOEpisode(t, cfg)
	m := env.Metrics()
	if m.Completed != 3 {
		t.Fatalf("completed %d tasks, want 3", m.Completed)
	}
	want := [workload.NumSLOClasses]SLOMetrics{
		{Class: workload.SLOBestEffort, Completed: 1, AvgWait: 2, WaitP50: 2, WaitP95: 2, Violations: 0},
		{Class: workload.SLOStandard, Completed: 1, AvgWait: 2, WaitP50: 2, WaitP95: 2, Violations: 1},
		{Class: workload.SLOCritical, Completed: 1, AvgWait: 0, WaitP50: 0, WaitP95: 0, Violations: 0},
	}
	if m.PerSLO != want {
		t.Fatalf("PerSLO = %+v\nwant %+v", m.PerSLO, want)
	}
}

// TestWaitPercentileHandComputed pins the interpolating percentile helper.
func TestWaitPercentileHandComputed(t *testing.T) {
	waits := []float64{1, 2, 10}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.5, 2}, {1, 10},
		{0.95, 9.2},  // pos 1.9: 2 + 0.9*(10-2)
		{0.25, 1.5},  // pos 0.5: 1 + 0.5*(2-1)
		{0.75, 6.0},  // pos 1.5: 2 + 0.5*(10-2)
	}
	for _, c := range cases {
		if got := waitPercentile(waits, c.q); got != c.want {
			t.Errorf("waitPercentile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

// TestSLOWaitCostShapesReward checks the shaping term is exactly
// cost·wait, per class, on top of the unshaped reward.
func TestSLOWaitCostShapesReward(t *testing.T) {
	base := DefaultConfig([]VMSpec{{CPU: 4, Mem: 16}})
	shaped := base
	shaped.Objectives.SLOWaitCost = [workload.NumSLOClasses]float64{0.25, 0.5, 4}

	envA := MustNewEnv(base, sloTestTasks())
	envB := MustNewEnv(shaped, sloTestTasks())
	// The hand-computed schedule: waits are t0 (critical) 0, t1 (standard)
	// 2, t2 (best-effort) 2; shaping shifts the two delayed placements by
	// 0.5·2 and 0.25·2.
	wantShift := []float64{4 * 0, 0.5 * 2, 0.25 * 2}
	placements := 0
	for !envA.Done() {
		head, ok := envA.HeadTask()
		act := envA.WaitAction()
		if ok && envA.vms[0].Fits(head) {
			act = 0
		}
		ra := envA.Step(act)
		rb := envB.Step(act)
		if act != envA.WaitAction() {
			if rb != ra-wantShift[placements] {
				t.Fatalf("placement %d: shaped reward %v, want %v - %v", placements, rb, ra, wantShift[placements])
			}
			placements++
		} else if rb != ra {
			t.Fatalf("wait rewards diverged: %v vs %v", rb, ra)
		}
	}
	if placements != 3 {
		t.Fatalf("made %d placements, want 3", placements)
	}
}

// TestSLOZeroIsBitIdentical is the degradation golden for the SLO layer:
// with all SLO weights zero, a seeded episode over SLO-tagged tasks yields
// exactly the same rewards and (non-PerSLO) metrics as an environment that
// never heard of service classes — and wait targets alone only add
// violation counts, never touching rewards.
func TestSLOZeroIsBitIdentical(t *testing.T) {
	specs := []VMSpec{{CPU: 8, Mem: 32}, {CPU: 4, Mem: 16}, {CPU: 16, Mem: 64}}
	tasks := ClampTasks(workload.SampleDataset(workload.K8S, rand.New(rand.NewSource(3)), 120), specs)

	plain := DefaultConfig(specs)
	targeted := DefaultConfig(specs)
	targeted.Objectives.SLOWaitTarget = [workload.NumSLOClasses]int{5, 5, 5}

	envA := MustNewEnv(plain, tasks)
	envB := MustNewEnv(targeted, tasks)
	rng := rand.New(rand.NewSource(7))
	for !envA.Done() {
		act := rng.Intn(envA.NumActions())
		ra, rb := envA.Step(act), envB.Step(act)
		if ra != rb {
			t.Fatalf("rewards diverged under zero SLO cost: %v vs %v", ra, rb)
		}
	}
	envA.Drain()
	envB.Drain()
	ma, mb := envA.Metrics(), envB.Metrics()
	ma.PerSLO, mb.PerSLO = [workload.NumSLOClasses]SLOMetrics{}, [workload.NumSLOClasses]SLOMetrics{}
	if ma != mb {
		t.Fatalf("metrics diverged under zero SLO cost:\n%+v\n%+v", ma, mb)
	}
}

// TestSLOIndexClampsUnknownClasses checks out-of-range classes in
// hand-built traces are counted (and shaped) as best-effort.
func TestSLOIndexClampsUnknownClasses(t *testing.T) {
	if sloIndex(workload.SLOClass(-2)) != 0 || sloIndex(workload.SLOClass(99)) != 0 {
		t.Fatal("out-of-range classes must clamp to best-effort")
	}
	cfg := DefaultConfig([]VMSpec{{CPU: 4, Mem: 16}})
	tasks := []workload.Task{{ID: 0, Arrival: 0, CPU: 1, Mem: 1, Duration: 1, SLO: workload.SLOClass(99)}}
	env := MustNewEnv(cfg, tasks)
	env.Step(0)
	env.Drain()
	m := env.Metrics()
	if m.PerSLO[0].Completed != 1 {
		t.Fatalf("clamped task not counted as best-effort: %+v", m.PerSLO)
	}
}

// TestSpecSourceMatchesSample pins SpecSource against the materialized
// ClampTasks(Compiled.Sample(...)) idiom.
func TestSpecSourceMatchesSample(t *testing.T) {
	spec, err := workload.PresetSpec(workload.Google)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	specs := []VMSpec{{CPU: 2, Mem: 4}, {CPU: 4, Mem: 8}}
	want := ClampTasks(comp.Sample(rand.New(rand.NewSource(21)), 200), specs)
	src := NewSpecSource(comp, 21, 200, specs)
	if src.Total() != 200 {
		t.Fatalf("Total = %d", src.Total())
	}
	for i := range want {
		got, ok := src.Next()
		if !ok {
			t.Fatalf("source ended at task %d", i)
		}
		if got != want[i] {
			t.Fatalf("task %d = %+v, want %+v", i, got, want[i])
		}
	}
	if _, ok := src.Next(); ok {
		t.Fatal("source emitted extra tasks")
	}
	src.Rewind()
	if got, ok := src.Next(); !ok || got != want[0] {
		t.Fatalf("rewound source emitted %+v, want %+v", got, want[0])
	}
}
