package core

import "testing"

// Tiny-config smoke tests for the experiment runners that were previously
// exercised only through the CLI. Each runner is checked for curve lengths
// and for bit-identical results across two identical runs — the same
// determinism contract the training path guarantees.

func sameCurve(t *testing.T, name string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: curve lengths %d vs %d across identical runs", name, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: episode %d diverged across identical runs: %v vs %v", name, i, a[i], b[i])
		}
	}
}

func TestRunCommFrequencySmoke(t *testing.T) {
	cfg := tinyConfig(5)
	freqs := []int{1, 2}
	run := func() map[int][]float64 {
		out, err := RunCommFrequency(cfg, freqs)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(freqs) {
		t.Fatalf("got %d curves, want %d", len(a), len(freqs))
	}
	for _, fr := range freqs {
		if len(a[fr]) != cfg.Episodes {
			t.Fatalf("freq %d: curve length %d, want %d", fr, len(a[fr]), cfg.Episodes)
		}
		sameCurve(t, "comm-frequency", a[fr], b[fr])
	}
	if sameLen := len(a[1]) == len(a[2]); !sameLen {
		t.Fatal("frequencies should train the same episode count")
	}
}

func TestRunAblationSmoke(t *testing.T) {
	cfg := tinyConfig(6)
	for _, variant := range []AblationVariant{AblationFull, AblationNoDualCritic, AblationNoAttention, AblationFixedAlpha} {
		a, err := RunAblation(cfg, variant, 0)
		if err != nil {
			t.Fatalf("%s: %v", variant, err)
		}
		if len(a) != cfg.Episodes {
			t.Fatalf("%s: curve length %d, want %d", variant, len(a), cfg.Episodes)
		}
		b, err := RunAblation(cfg, variant, 0)
		if err != nil {
			t.Fatalf("%s: %v", variant, err)
		}
		sameCurve(t, string(variant), a, b)
	}
}

func TestRunNewAgentSmoke(t *testing.T) {
	cfg := tinyConfig(7)
	const warmup, join = 2, 2
	run := func() *NewAgentResult {
		r, err := RunNewAgent(cfg, warmup, join)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if len(a.Joined) != join {
		t.Fatalf("joined curve length %d, want %d", len(a.Joined), join)
	}
	if len(a.Fresh) != join {
		t.Fatalf("fresh curve length %d, want %d", len(a.Fresh), join)
	}
	sameCurve(t, "new-agent joined", a.Joined, b.Joined)
	sameCurve(t, "new-agent fresh", a.Fresh, b.Fresh)
}
