package core

import (
	"fmt"
	"math/rand"

	"repro/internal/attn"
	"repro/internal/cloudsim"
	"repro/internal/fed"
	"repro/internal/fedcore"
	"repro/internal/nn"
	"repro/internal/rl"
	"repro/internal/stats"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------------
// Figure 7 — iso-train vs heter-train response times (§3.1)
// ---------------------------------------------------------------------------

// IsoHeterResult holds, per client, the average response time of the four
// train/test combinations of §3.1.
type IsoHeterResult struct {
	Clients []string
	// Indexed [client]: response time of the model trained on the named
	// set, tested on the named set.
	IsoTrainIsoTest     []float64
	IsoTrainHeterTest   []float64
	HeterTrainIsoTest   []float64
	HeterTrainHeterTest []float64
}

// RunIsoHeter reproduces the §3.1 exploratory experiment: for each client
// environment, a PPO scheduler is trained once on the client's own task
// distribution (iso-train) and once on the combined heterogeneous
// distribution (heter-train), then evaluated on both iso-test and
// heter-test. The paper's observation is that heter-trained models achieve
// lower response times across test sets.
func RunIsoHeter(cfg ExperimentConfig) (*IsoHeterResult, error) {
	data, err := SampleClientData(cfg)
	if err != nil {
		return nil, err
	}
	caps := CapsFor(cfg.Specs)

	// Build the combined heterogeneous train/test pools (§3.1).
	var allTrain, allTest [][]workload.Task
	for _, d := range data {
		allTrain = append(allTrain, d.Train)
		allTest = append(allTest, d.Test)
	}
	heterTrainPool := workload.Combine(allTrain...)
	heterTestPool := workload.Combine(allTest...)

	res := &IsoHeterResult{}
	for i, d := range data {
		res.Clients = append(res.Clients, d.Spec.Name)
		envCfg := caps.EnvConfig(d.Spec)
		if cfg.EpisodeStepCap > 0 {
			envCfg.MaxSteps = cfg.EpisodeStepCap
		}
		dim := cloudsim.StateDim(envCfg)
		actions := cloudsim.NumActions(envCfg)
		mixRng := rand.New(rand.NewSource(cfg.Seed + int64(i)*31 + 5))

		// Same-size training budgets for a fair comparison.
		heterTrain := cloudsim.ClampTasks(
			workload.Subsample(mixRng, heterTrainPool, len(d.Train)), d.Spec.VMs)
		heterTest := cloudsim.ClampTasks(
			workload.Subsample(mixRng, heterTestPool, len(d.Test)), d.Spec.VMs)

		train := func(tasks []workload.Task, seedOff int64) (*rl.PPO, error) {
			agent := rl.NewPPO(cfg.rlConfig(dim, actions),
				rand.New(rand.NewSource(cfg.Seed+seedOff)))
			env, err := cloudsim.NewEnv(envCfg, tasks)
			if err != nil {
				return nil, err
			}
			for ep := 0; ep < cfg.Episodes; ep++ {
				env.Reset(tasks)
				var buf rl.Buffer
				rl.CollectEpisode(env, agent, &buf)
				agent.Update(&buf)
			}
			return agent, nil
		}
		evalResponse := func(agent *rl.PPO, tasks []workload.Task) float64 {
			env := cloudsim.MustNewEnv(envCfg, tasks)
			rl.EvaluateEpisodeMasked(env, agent)
			env.Drain()
			return env.Metrics().AvgResponse
		}

		isoAgent, err := train(d.Train, int64(i)*1009+1)
		if err != nil {
			return nil, err
		}
		heterAgent, err := train(heterTrain, int64(i)*1009+2)
		if err != nil {
			return nil, err
		}
		res.IsoTrainIsoTest = append(res.IsoTrainIsoTest, evalResponse(isoAgent, d.Test))
		res.IsoTrainHeterTest = append(res.IsoTrainHeterTest, evalResponse(isoAgent, heterTest))
		res.HeterTrainIsoTest = append(res.HeterTrainIsoTest, evalResponse(heterAgent, d.Test))
		res.HeterTrainHeterTest = append(res.HeterTrainHeterTest, evalResponse(heterAgent, heterTest))
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// Figures 8, 15 — convergence comparisons
// ---------------------------------------------------------------------------

// RunConvergence trains the given algorithms on one shared configuration
// and returns the mean reward curve per algorithm, keyed by name.
func RunConvergence(cfg ExperimentConfig, algs []Algorithm) (map[string][]float64, map[Algorithm]*TrainResult, error) {
	curves := make(map[string][]float64, len(algs))
	results := make(map[Algorithm]*TrainResult, len(algs))
	for _, alg := range algs {
		r, err := Train(alg, cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("core: %v: %w", alg, err)
		}
		curves[alg.String()] = r.MeanCurve
		results[alg] = r
	}
	return curves, results, nil
}

// ---------------------------------------------------------------------------
// Figure 9 — critic loss before/after aggregation
// ---------------------------------------------------------------------------

// CriticLossSeries averages the per-round critic-loss probes across a
// run's clients: the critic MSE immediately before the aggregated model is
// installed and immediately after. FedAvg shows post > pre (aggregation
// hurts local evaluation), the paper's Figure 9.
func CriticLossSeries(r *TrainResult) (pre, post []float64) {
	if len(r.Clients) == 0 {
		return nil, nil
	}
	rounds := len(r.Clients[0].CriticLossPre)
	for _, c := range r.Clients[1:] {
		if len(c.CriticLossPre) < rounds {
			rounds = len(c.CriticLossPre)
		}
	}
	pre = make([]float64, rounds)
	post = make([]float64, rounds)
	for _, c := range r.Clients {
		for i := 0; i < rounds; i++ {
			pre[i] += c.CriticLossPre[i]
			post[i] += c.CriticLossPost[i]
		}
	}
	inv := 1.0 / float64(len(r.Clients))
	for i := 0; i < rounds; i++ {
		pre[i] *= inv
		post[i] *= inv
	}
	return pre, post
}

// ---------------------------------------------------------------------------
// Figure 10 — manually weighting similar clients (§3.3)
// ---------------------------------------------------------------------------

// WeightConfigResult maps each §3.3 configuration name to client C1's
// reward curve.
type WeightConfigResult map[string][]float64

// RunWeightConfigs reproduces the four Figure-10 configurations:
// Fed-Diff, Fed-Diff-weight, Fed-Same2 and Fed-Same2-weight. In the
// "-weight" variants client C1 pays extra attention to its designated
// partner (C2, or its twin C1'); in the others plain averaging is used.
func RunWeightConfigs(cfg ExperimentConfig) (WeightConfigResult, error) {
	base := Table2Specs()
	if len(cfg.Specs) >= 4 {
		base = cfg.Specs
	}
	diffSpecs := []ClientSpec{base[0], base[1], base[2], base[3]}
	// Fed-Same2: C1 and a twin C1' (same cluster, same dataset), plus C3, C4.
	twin := base[0]
	twin.Name = base[0].Name + "'"
	sameSpecs := []ClientSpec{base[0], twin, base[2], base[3]}

	// C1 pays 0.4 to itself and its partner, 0.1 to the rest.
	weighted := [][]float64{
		{0.4, 0.4, 0.1, 0.1},
		{0.25, 0.25, 0.25, 0.25},
		{0.25, 0.25, 0.25, 0.25},
		{0.25, 0.25, 0.25, 0.25},
	}
	uniform := [][]float64{
		{0.25, 0.25, 0.25, 0.25},
		{0.25, 0.25, 0.25, 0.25},
		{0.25, 0.25, 0.25, 0.25},
		{0.25, 0.25, 0.25, 0.25},
	}

	configs := []struct {
		name  string
		specs []ClientSpec
		w     [][]float64
	}{
		{"Fed-Diff", diffSpecs, uniform},
		{"Fed-Diff-weight", diffSpecs, weighted},
		{"Fed-Same2", sameSpecs, uniform},
		{"Fed-Same2-weight", sameSpecs, weighted},
	}

	out := WeightConfigResult{}
	for ci, conf := range configs {
		runCfg := cfg
		runCfg.Specs = conf.specs
		// Twin clients must sample independent task sets: SampleClientData
		// already derives per-index seeds, which differ for C1 and C1'.
		data, err := SampleClientData(runCfg)
		if err != nil {
			return nil, err
		}
		clients, err := BuildClients(AlgFedAvg, runCfg, data)
		if err != nil {
			return nil, err
		}
		f, err := fed.New(clients, fed.ActorCriticTransport{}, fed.StaticWeights{W: conf.w},
			fed.Options{K: len(clients), CommEvery: runCfg.CommEvery, Seed: runCfg.Seed + int64(ci), Parallel: runCfg.Parallel})
		if err != nil {
			return nil, err
		}
		if err := f.RunEpisodes(runCfg.Episodes); err != nil {
			return nil, err
		}
		out[conf.name] = append([]float64(nil), clients[0].Rewards...)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Figures 11–13 — weight-generation heatmaps (§3.3)
// ---------------------------------------------------------------------------

// HeatmapResult holds the three K×K weight matrices of §3.3 for clients
// (C1, C1', C2, C3), where C1 and C1' share an environment.
type HeatmapResult struct {
	Labels    []string
	Attention [][]float64
	KL        [][]float64
	Cosine    [][]float64
}

// RunWeightHeatmaps trains four dual-critic clients from a shared public
// critic initialization — C1 and C1' in identical environments — and
// compares the weights the three generators produce from the resulting
// critic models (Figures 11, 12, 13).
func RunWeightHeatmaps(cfg ExperimentConfig) (*HeatmapResult, error) {
	base := Table2Specs()
	if len(cfg.Specs) >= 3 {
		base = cfg.Specs
	}
	twin := base[0]
	twin.Name = base[0].Name + "'"
	specs := []ClientSpec{base[0], twin, base[1], base[2]}
	runCfg := cfg
	runCfg.Specs = specs

	data, err := SampleClientData(runCfg)
	if err != nil {
		return nil, err
	}
	clients, err := BuildClients(AlgPFRLDM, runCfg, data)
	if err != nil {
		return nil, err
	}
	// Shared starting point, as in federated training (fed.New performs the
	// initial sync); no aggregation rounds — we only watch the local drift.
	transport := fed.PublicCriticTransport{}
	if _, err := fed.New(clients, transport, fed.FedAvg{}, fed.Options{K: len(clients), CommEvery: 1, Seed: runCfg.Seed}); err != nil {
		return nil, err
	}
	trainIndependent(clients, runCfg.Episodes, runCfg.Parallel)

	uploads := make([][]float64, len(clients))
	labels := make([]string, len(clients))
	for i, c := range clients {
		if uploads[i], err = transport.Upload(c); err != nil {
			return nil, err
		}
		labels[i] = specs[i].Name
	}
	return &HeatmapResult{
		Labels:    labels,
		Attention: attn.NewAggregator(runCfg.Seed).Weights(uploads),
		KL:        attn.KLWeights(uploads),
		Cosine:    attn.CosineWeights(uploads),
	}, nil
}

// ---------------------------------------------------------------------------
// Figures 16–19 and Table 4 — hybrid-workload generalization (§5.3)
// ---------------------------------------------------------------------------

// HybridEval holds per-client evaluation metrics for one algorithm.
type HybridEval struct {
	Algorithm   Algorithm
	Clients     []string
	AvgResponse []float64
	Makespan    []float64
	AvgUtil     []float64
	AvgLoadBal  []float64
}

// EvalHybrid evaluates a trained run on the §5.3 hybrid test sets: per
// client, 20% of tasks keep the native distribution and 80% are drawn from
// the other clients' datasets; VM specifications stay fixed.
func EvalHybrid(r *TrainResult, cfg ExperimentConfig, nativeFrac float64) *HybridEval {
	he := &HybridEval{Algorithm: r.Algorithm}
	nTest := int(float64(cfg.TasksPerClient) * (1 - cfg.TrainFrac))
	if nTest < 10 {
		nTest = 10
	}
	for i, c := range r.Clients {
		spec := r.Data[i].Spec
		var others []workload.DatasetID
		for j, d := range r.Data {
			if j != i {
				others = append(others, d.Spec.Dataset)
			}
		}
		// The hybrid set depends only on (seed, client), not the algorithm,
		// so all algorithms face identical test conditions.
		mixRng := rand.New(rand.NewSource(cfg.Seed + 7907*int64(i+1)))
		mix := cloudsim.ClampTasks(
			workload.HybridMix(mixRng, spec.Dataset, others, nTest, nativeFrac), spec.VMs)
		m := c.Evaluate(mix)
		he.Clients = append(he.Clients, spec.Name)
		he.AvgResponse = append(he.AvgResponse, m.AvgResponse)
		he.Makespan = append(he.Makespan, float64(m.Makespan))
		he.AvgUtil = append(he.AvgUtil, m.AvgUtil)
		he.AvgLoadBal = append(he.AvgLoadBal, m.AvgLoadBal)
	}
	return he
}

// WilcoxonTable reproduces Table 4: the pair-wise Wilcoxon signed-rank
// p-values between PFRL-DM and every other algorithm, for each of the four
// metrics, over the per-client results.
type WilcoxonTable struct {
	Metrics    []string
	Algorithms []string
	// P[m][a] is the p-value for metric m against algorithm a.
	P [][]float64
}

// BuildWilcoxonTable computes Table 4 from hybrid evaluations. evals must
// include AlgPFRLDM.
func BuildWilcoxonTable(evals map[Algorithm]*HybridEval) (*WilcoxonTable, error) {
	ref, ok := evals[AlgPFRLDM]
	if !ok {
		return nil, fmt.Errorf("core: Wilcoxon table needs a PFRL-DM evaluation")
	}
	metricOf := func(e *HybridEval) [][]float64 {
		return [][]float64{e.AvgResponse, e.Makespan, e.AvgUtil, e.AvgLoadBal}
	}
	tbl := &WilcoxonTable{
		Metrics: []string{"Average response", "Average makespan", "Average resource utilization", "Average load balancing"},
	}
	refM := metricOf(ref)
	for _, alg := range []Algorithm{AlgFedAvg, AlgMFPO, AlgPPO} {
		e, ok := evals[alg]
		if !ok {
			continue
		}
		tbl.Algorithms = append(tbl.Algorithms, alg.String())
		other := metricOf(e)
		for mi := range tbl.Metrics {
			if len(tbl.P) <= mi {
				tbl.P = append(tbl.P, nil)
			}
			res, err := stats.Wilcoxon(refM[mi], other[mi])
			p := 1.0
			if err == nil {
				p = res.P
			}
			tbl.P[mi] = append(tbl.P[mi], p)
		}
	}
	return tbl, nil
}

// ---------------------------------------------------------------------------
// Figure 20 — a new agent joins the federation (§5.3)
// ---------------------------------------------------------------------------

// NewAgentResult compares a client joining an established PFRL-DM
// federation against a fresh independent PPO in the same environment.
type NewAgentResult struct {
	// Joined is the reward curve of the agent initialized from the server
	// model; Fresh is the from-scratch PPO curve.
	Joined []float64
	Fresh  []float64
}

// RunNewAgent trains a PFRL-DM federation for warmupEpisodes, then adds a
// new client whose environment clones client 1's, initializing it from the
// server's global critic (both its public and local critics, the joining
// bootstrap), and trains for joinEpisodes more. A fresh PPO baseline trains
// in an identical environment for the same number of episodes. Note: since
// PFRL-DM never transmits actors, the joiner's advantage comes from
// value-function warm-starting rather than an instant policy transfer (see
// EXPERIMENTS.md for how this compares to the paper's Figure 20).
func RunNewAgent(cfg ExperimentConfig, warmupEpisodes, joinEpisodes int) (*NewAgentResult, error) {
	warmCfg := cfg
	warmCfg.Episodes = warmupEpisodes
	r, err := Train(AlgPFRLDM, warmCfg)
	if err != nil {
		return nil, err
	}
	f := r.Federation

	// Clone client 1's environment definition with fresh task samples.
	caps := CapsFor(cfg.Specs)
	spec := cfg.Specs[0]
	spec.Name = spec.Name + "-new"
	joinRng := rand.New(rand.NewSource(cfg.Seed + 424243))
	tasks := cloudsim.ClampTasks(
		workload.SampleDataset(spec.Dataset, joinRng, cfg.TasksPerClient), spec.VMs)
	train, _ := workload.Split(tasks, cfg.TrainFrac)
	envCfg := caps.EnvConfig(spec)
	if cfg.EpisodeStepCap > 0 {
		envCfg.MaxSteps = cfg.EpisodeStepCap
	}
	dim := cloudsim.StateDim(envCfg)
	actions := cloudsim.NumActions(envCfg)

	joiner := rl.NewDualCriticPPO(cfg.rlConfig(dim, actions),
		rand.New(rand.NewSource(cfg.Seed+515151)))
	jc, err := fed.NewClient(len(f.Clients), spec.Name, envCfg, train, joiner)
	if err != nil {
		return nil, err
	}
	if err := f.AddClient(jc); err != nil {
		return nil, err
	}
	// Joining bootstrap: the server model also seeds the local critic so the
	// newcomer starts with a trained value function.
	if err := nn.CopyParams(joiner.LocalCritic, joiner.PublicCritic); err != nil {
		return nil, err
	}
	if err := f.RunEpisodes(joinEpisodes); err != nil {
		return nil, err
	}

	fresh := rl.NewPPO(cfg.rlConfig(dim, actions), rand.New(rand.NewSource(cfg.Seed+616161)))
	fc, err := fed.NewClient(999, spec.Name+"-fresh", envCfg, train, fresh)
	if err != nil {
		return nil, err
	}
	fc.TrainEpisodes(joinEpisodes)

	joined := append([]float64(nil), jc.Rewards...)
	if len(joined) > joinEpisodes {
		joined = joined[:joinEpisodes]
	}
	return &NewAgentResult{Joined: joined, Fresh: append([]float64(nil), fc.Rewards...)}, nil
}

// ---------------------------------------------------------------------------
// Figure 21 — communication frequency sweep
// ---------------------------------------------------------------------------

// RunCommFrequency trains PFRL-DM at several communication frequencies and
// returns the mean reward curve per frequency.
func RunCommFrequency(cfg ExperimentConfig, freqs []int) (map[int][]float64, error) {
	out := make(map[int][]float64, len(freqs))
	for _, fr := range freqs {
		c := cfg
		c.CommEvery = fr
		r, err := Train(AlgPFRLDM, c)
		if err != nil {
			return nil, err
		}
		out[fr] = r.MeanCurve
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Ablations (design choices called out in DESIGN.md)
// ---------------------------------------------------------------------------

// AblationVariant names one ablation configuration.
type AblationVariant string

// The supported ablation variants.
const (
	// AblationFull is PFRL-DM as published.
	AblationFull AblationVariant = "pfrl-dm"
	// AblationNoDualCritic pins α to 0: clients rely purely on the shared
	// public critic (no local critic influence).
	AblationNoDualCritic AblationVariant = "no-dual-critic"
	// AblationNoAttention replaces the attention aggregator with plain
	// FedAvg over public critics (dual critic retained).
	AblationNoAttention AblationVariant = "no-attention"
	// AblationFixedAlpha pins α to 0.5 instead of the adaptive Eq. (15).
	AblationFixedAlpha AblationVariant = "fixed-alpha"
)

// RunAblation trains one PFRL-DM variant and returns its mean reward curve.
func RunAblation(cfg ExperimentConfig, variant AblationVariant, attentionHeads int) ([]float64, error) {
	data, err := SampleClientData(cfg)
	if err != nil {
		return nil, err
	}
	clients, err := BuildClients(AlgPFRLDM, cfg, data)
	if err != nil {
		return nil, err
	}
	for _, c := range clients {
		d := c.Agent.(*rl.DualCriticPPO)
		switch variant {
		case AblationNoDualCritic:
			d.FixedAlpha = 0
		case AblationFixedAlpha:
			d.FixedAlpha = 0.5
		}
	}
	var agg fed.Aggregator
	if variant == AblationNoAttention {
		agg = fed.FedAvg{}
	} else {
		a := fed.NewAttention(cfg.Seed)
		if attentionHeads > 0 {
			a.Gen.Heads = attentionHeads
		}
		agg = a
	}
	k := cfg.K
	if k <= 0 {
		k = fedcore.DefaultK(len(clients))
	}
	f, err := fed.New(clients, fed.PublicCriticTransport{}, agg,
		fed.Options{K: k, CommEvery: cfg.CommEvery, Seed: cfg.Seed, Parallel: cfg.Parallel})
	if err != nil {
		return nil, err
	}
	if err := f.RunEpisodes(cfg.Episodes); err != nil {
		return nil, err
	}
	return fed.MeanRewardCurve(clients), nil
}
