package core

import (
	"math"
	"testing"

	"repro/internal/cloudsim"
	"repro/internal/fed"
	"repro/internal/rl"
	"repro/internal/workload"
)

// tinyConfig is the smallest configuration that exercises every code path:
// 3 heterogeneous clients, 30 tasks, 4 episodes.
func tinyConfig(seed int64) ExperimentConfig {
	cfg := DefaultExperiment(seed)
	cfg.Specs = ScaleSpecs(Table2Specs(), 4)[:3]
	cfg.TasksPerClient = 30
	cfg.Episodes = 4
	cfg.CommEvery = 2
	cfg.EpisodeStepCap = 150
	cfg.Parallel = false
	return cfg
}

func TestTableSpecs(t *testing.T) {
	t2 := Table2Specs()
	if len(t2) != 4 {
		t.Fatalf("Table 2 has %d clients", len(t2))
	}
	if len(t2[0].VMs) != 5 { // (16,128,4)+(32,256,1)
		t.Fatalf("Table 2 client 1 has %d VMs, want 5", len(t2[0].VMs))
	}
	t3 := Table3Specs()
	if len(t3) != 10 {
		t.Fatalf("Table 3 has %d clients", len(t3))
	}
	if len(t3[0].VMs) != 7 { // 1+4+2
		t.Fatalf("Table 3 client 1 has %d VMs, want 7", len(t3[0].VMs))
	}
	// Every dataset appears exactly once in Table 3.
	seen := map[workload.DatasetID]bool{}
	for _, s := range t3 {
		if seen[s.Dataset] {
			t.Fatalf("dataset %v duplicated", s.Dataset)
		}
		seen[s.Dataset] = true
	}
	if len(seen) != 10 {
		t.Fatal("Table 3 should cover all ten datasets")
	}
}

func TestScaleSpecs(t *testing.T) {
	specs := Table3Specs()
	scaled := ScaleSpecs(specs, 4)
	if scaled[0].VMs[0].CPU != 2 || scaled[0].VMs[0].Mem != 16 {
		t.Fatalf("scaled VM %+v", scaled[0].VMs[0])
	}
	// Original untouched.
	if specs[0].VMs[0].CPU != 8 {
		t.Fatal("ScaleSpecs mutated input")
	}
	// Scale 1 is a deep copy.
	copy1 := ScaleSpecs(specs, 1)
	copy1[0].VMs[0].CPU = 999
	if specs[0].VMs[0].CPU == 999 {
		t.Fatal("scale-1 copy aliases input")
	}
	// Never below minimums.
	tiny := ScaleSpecs([]ClientSpec{{VMs: []cloudsim.VMSpec{{CPU: 2, Mem: 1}}}}, 100)
	if tiny[0].VMs[0].CPU < 1 || tiny[0].VMs[0].Mem < 0.5 {
		t.Fatal("scaling floor violated")
	}
}

func TestCapsUniformAcrossClients(t *testing.T) {
	cfg := tinyConfig(1)
	caps := CapsFor(cfg.Specs)
	dims := map[int]bool{}
	for _, s := range cfg.Specs {
		envCfg := caps.EnvConfig(s)
		if err := envCfg.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		dims[cloudsim.StateDim(envCfg)] = true
	}
	if len(dims) != 1 {
		t.Fatalf("state dims differ across clients: %v", dims)
	}
}

func TestSampleClientData(t *testing.T) {
	cfg := tinyConfig(2)
	data, err := SampleClientData(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != len(cfg.Specs) {
		t.Fatal("wrong client count")
	}
	for _, d := range data {
		if len(d.Train)+len(d.Test) != cfg.TasksPerClient {
			t.Fatalf("%s: %d train + %d test != %d", d.Spec.Name, len(d.Train), len(d.Test), cfg.TasksPerClient)
		}
		for _, task := range append(append([]workload.Task{}, d.Train...), d.Test...) {
			fits := false
			for _, vm := range d.Spec.VMs {
				if task.CPU <= vm.CPU && task.Mem <= vm.Mem {
					fits = true
					break
				}
			}
			if !fits {
				t.Fatalf("%s: task %+v fits no VM", d.Spec.Name, task)
			}
		}
	}
	// Deterministic for a seed.
	again, err := SampleClientData(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if again[0].Train[0] != data[0].Train[0] {
		t.Fatal("sampling not deterministic")
	}
}

func TestTrainAllAlgorithms(t *testing.T) {
	for _, alg := range AllAlgorithms() {
		cfg := tinyConfig(3)
		r, err := Train(alg, cfg)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if len(r.MeanCurve) != cfg.Episodes {
			t.Fatalf("%v: curve length %d, want %d", alg, len(r.MeanCurve), cfg.Episodes)
		}
		if alg == AlgPPO {
			if r.Federation != nil {
				t.Fatal("independent PPO should have no federation")
			}
		} else if r.Federation == nil {
			t.Fatalf("%v: federation missing", alg)
		}
		for _, c := range r.Clients {
			_, isDual := c.Agent.(*rl.DualCriticPPO)
			if (alg == AlgPFRLDM) != isDual {
				t.Fatalf("%v: wrong agent type %T", alg, c.Agent)
			}
		}
	}
}

func TestTrainPFRLDMUsesHalfParticipation(t *testing.T) {
	cfg := tinyConfig(4)
	cfg.Specs = ScaleSpecs(Table2Specs(), 4) // 4 clients -> K=2
	r, err := Train(AlgPFRLDM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Federation.K != 2 {
		t.Fatalf("K=%d, want N/2=2", r.Federation.K)
	}
}

func TestRunConvergence(t *testing.T) {
	cfg := tinyConfig(5)
	curves, results, err := RunConvergence(cfg, []Algorithm{AlgPPO, AlgFedAvg})
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 2 || len(results) != 2 {
		t.Fatal("missing results")
	}
	if len(curves["PPO"]) != cfg.Episodes || len(curves["FedAvg"]) != cfg.Episodes {
		t.Fatal("curve lengths wrong")
	}
}

func TestCriticLossSeries(t *testing.T) {
	cfg := tinyConfig(6)
	r, err := Train(AlgFedAvg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pre, post := CriticLossSeries(r)
	rounds := cfg.Episodes / cfg.CommEvery
	if len(pre) != rounds || len(post) != rounds {
		t.Fatalf("probe lengths %d/%d, want %d", len(pre), len(post), rounds)
	}
	for i := range pre {
		if pre[i] < 0 || post[i] < 0 {
			t.Fatal("negative loss probe")
		}
	}
}

func TestEvalHybridDeterministicTestSets(t *testing.T) {
	cfg := tinyConfig(7)
	r1, err := Train(AlgPPO, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e1 := EvalHybrid(r1, cfg, 0.2)
	e2 := EvalHybrid(r1, cfg, 0.2)
	if len(e1.AvgResponse) != len(cfg.Specs) {
		t.Fatal("per-client metrics missing")
	}
	for i := range e1.AvgResponse {
		if e1.AvgResponse[i] != e2.AvgResponse[i] {
			t.Fatal("hybrid evaluation not deterministic")
		}
		if e1.AvgUtil[i] < 0 || e1.AvgUtil[i] > 1 {
			t.Fatalf("utilization out of range: %v", e1.AvgUtil[i])
		}
	}
}

func TestBuildWilcoxonTable(t *testing.T) {
	mk := func(alg Algorithm, base float64) *HybridEval {
		e := &HybridEval{Algorithm: alg}
		for i := 0; i < 10; i++ {
			v := base + float64(i)
			e.AvgResponse = append(e.AvgResponse, v)
			e.Makespan = append(e.Makespan, v*2)
			e.AvgUtil = append(e.AvgUtil, 0.5+base/100)
			e.AvgLoadBal = append(e.AvgLoadBal, 0.1+base/100)
		}
		return e
	}
	evals := map[Algorithm]*HybridEval{
		AlgPFRLDM: mk(AlgPFRLDM, 0),
		AlgPPO:    mk(AlgPPO, 5),
		AlgFedAvg: mk(AlgFedAvg, 7),
		AlgMFPO:   mk(AlgMFPO, 3),
	}
	tbl, err := BuildWilcoxonTable(evals)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Metrics) != 4 || len(tbl.Algorithms) != 3 {
		t.Fatalf("table shape %dx%d", len(tbl.Metrics), len(tbl.Algorithms))
	}
	// PFRL-DM uniformly better on response -> p = 2/2^10.
	want := 2.0 / 1024.0
	if math.Abs(tbl.P[0][0]-want) > 1e-9 {
		t.Fatalf("p=%v, want %v", tbl.P[0][0], want)
	}
	if _, err := BuildWilcoxonTable(map[Algorithm]*HybridEval{AlgPPO: mk(AlgPPO, 1)}); err == nil {
		t.Fatal("missing PFRL-DM should error")
	}
}

func TestRunWeightConfigs(t *testing.T) {
	cfg := tinyConfig(8)
	cfg.Specs = ScaleSpecs(Table2Specs(), 4)
	res, err := RunWeightConfigs(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"Fed-Diff", "Fed-Diff-weight", "Fed-Same2", "Fed-Same2-weight"} {
		if len(res[name]) != cfg.Episodes {
			t.Fatalf("%s curve length %d", name, len(res[name]))
		}
	}
}

func TestRunWeightHeatmaps(t *testing.T) {
	cfg := tinyConfig(9)
	res, err := RunWeightHeatmaps(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Labels) != 4 {
		t.Fatalf("labels %v", res.Labels)
	}
	if res.Labels[1] != res.Labels[0]+"'" {
		t.Fatalf("twin label wrong: %v", res.Labels)
	}
	for _, m := range [][][]float64{res.Attention, res.KL, res.Cosine} {
		if len(m) != 4 {
			t.Fatal("matrix not 4x4")
		}
		for _, row := range m {
			sum := 0.0
			for _, v := range row {
				sum += v
			}
			if math.Abs(sum-1) > 1e-6 {
				t.Fatalf("row not stochastic: %v", row)
			}
		}
	}
}

func TestRunNewAgent(t *testing.T) {
	cfg := tinyConfig(10)
	res, err := RunNewAgent(cfg, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Joined) != 3 || len(res.Fresh) != 3 {
		t.Fatalf("curves %d/%d, want 3/3", len(res.Joined), len(res.Fresh))
	}
}

func TestRunCommFrequency(t *testing.T) {
	cfg := tinyConfig(11)
	out, err := RunCommFrequency(cfg, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(out[1]) != cfg.Episodes || len(out[2]) != cfg.Episodes {
		t.Fatal("frequency curves wrong")
	}
}

func TestRunAblationVariants(t *testing.T) {
	cfg := tinyConfig(12)
	for _, v := range []AblationVariant{AblationFull, AblationNoDualCritic, AblationNoAttention, AblationFixedAlpha} {
		curve, err := RunAblation(cfg, v, 0)
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if len(curve) != cfg.Episodes {
			t.Fatalf("%s: curve length %d", v, len(curve))
		}
	}
}

func TestRunIsoHeter(t *testing.T) {
	cfg := tinyConfig(13)
	cfg.Episodes = 3
	res, err := RunIsoHeter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := len(cfg.Specs)
	if len(res.Clients) != n || len(res.IsoTrainIsoTest) != n ||
		len(res.HeterTrainHeterTest) != n {
		t.Fatal("result vectors incomplete")
	}
	for i := 0; i < n; i++ {
		for _, v := range []float64{res.IsoTrainIsoTest[i], res.IsoTrainHeterTest[i], res.HeterTrainIsoTest[i], res.HeterTrainHeterTest[i]} {
			if v <= 0 || math.IsNaN(v) {
				t.Fatalf("degenerate response time %v", v)
			}
		}
	}
}

func TestAlgorithmStrings(t *testing.T) {
	if AlgPFRLDM.String() != "PFRL-DM" || AlgPPO.String() != "PPO" ||
		AlgFedAvg.String() != "FedAvg" || AlgMFPO.String() != "MFPO" {
		t.Fatal("algorithm names wrong")
	}
	if len(AllAlgorithms()) != 4 {
		t.Fatal("expected 4 algorithms")
	}
}

func TestVMsHelperPanicsOnBadTriples(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	vms(1, 2)
}

func TestFederationClientsShareGlobalAfterTraining(t *testing.T) {
	cfg := tinyConfig(14)
	r, err := Train(AlgFedAvg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// After the last aggregation round every FedAvg client holds the same
	// model modulo the trailing local segment; with CommEvery dividing
	// Episodes there is no trailing segment... here 4 % 2 == 0, so the last
	// action was a download: all clients identical.
	tr := fed.ActorCriticTransport{}
	ref, err := tr.Upload(r.Clients[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range r.Clients[1:] {
		got, err := tr.Upload(c)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatal("FedAvg clients diverged after final aggregation")
			}
		}
	}
}

func TestTrainExtensionAlgorithms(t *testing.T) {
	for _, alg := range ExtensionAlgorithms() {
		cfg := tinyConfig(40)
		r, err := Train(alg, cfg)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if len(r.MeanCurve) != cfg.Episodes || r.Federation == nil {
			t.Fatalf("%v: incomplete result", alg)
		}
	}
	if AlgFedProx.String() != "FedProx" || AlgSecureFedAvg.String() != "SecureFedAvg" {
		t.Fatal("extension names wrong")
	}
}

// TestTrainReportsPoolTraffic asserts the pooled fast path is actually live
// end-to-end: a full (tiny) training run must route its tensor traffic
// through the shared pool and recycle most of it.
func TestTrainReportsPoolTraffic(t *testing.T) {
	res, err := Train(AlgPPO, tinyConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	if res.PoolGets == 0 {
		t.Fatal("Train recorded no tensor-pool traffic; the pooled path is not in use")
	}
	if res.PoolRecycled == 0 {
		t.Fatalf("Train recycled nothing out of %d pool requests", res.PoolGets)
	}
	hitRate := float64(res.PoolRecycled) / float64(res.PoolGets)
	if hitRate < 0.5 {
		t.Fatalf("pool hit rate %.2f, want >= 0.5 (gets=%d recycled=%d)",
			hitRate, res.PoolGets, res.PoolRecycled)
	}
}

func TestTrainReportsParticipationAndFaults(t *testing.T) {
	// A fault-free run surfaces full participation and zero fault counts.
	cfg := tinyConfig(17)
	r, err := Train(AlgFedAvg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rounds := cfg.Episodes / cfg.CommEvery
	if len(r.Participation) != rounds {
		t.Fatalf("participation for %d rounds, want %d", len(r.Participation), rounds)
	}
	for i, p := range r.Participation {
		if p != len(cfg.Specs) {
			t.Fatalf("round %d participation %d, want full %d", i, p, len(cfg.Specs))
		}
	}
	if r.Faults.Total() != 0 {
		t.Fatalf("fault counters %+v without an injector", r.Faults)
	}

	// With an always-drop injector every round still completes — with zero
	// participants — and the injected events are counted on the result.
	cfg = tinyConfig(17)
	cfg.Faults = fed.FaultSpec{Drop: 1, Seed: 3}
	r, err = Train(AlgFedAvg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Participation) != rounds {
		t.Fatalf("faulty run participation length %d, want %d", len(r.Participation), rounds)
	}
	for i, p := range r.Participation {
		if p != 0 {
			t.Fatalf("round %d participation %d under total drop", i, p)
		}
	}
	if r.Faults.Drops == 0 {
		t.Fatalf("fault counters %+v, want recorded drops", r.Faults)
	}
}
