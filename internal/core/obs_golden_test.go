package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/fed"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/rl"
)

func goldenObsConfig() ExperimentConfig {
	cfg := DefaultExperiment(42)
	cfg.Specs = cfg.Specs[:3]
	cfg.TasksPerClient = 30
	cfg.Episodes = 4
	cfg.CommEvery = 2
	cfg.EpisodeStepCap = 5 * cfg.TasksPerClient
	cfg.Parallel = false
	return cfg
}

// flattenAgents concatenates every network parameter of every client, in
// client order — the full model state of a run.
func flattenAgents(t *testing.T, clients []*fed.Client) []float64 {
	t.Helper()
	var out []float64
	collect := func(m *nn.MLP) {
		for _, p := range m.Params() {
			out = append(out, p.Data.Data...)
		}
	}
	for _, c := range clients {
		switch a := c.Agent.(type) {
		case *rl.DualCriticPPO:
			collect(a.Actor)
			collect(a.LocalCritic)
			collect(a.PublicCritic)
		case *rl.PPO:
			collect(a.Actor)
			collect(a.Critic)
		default:
			t.Fatalf("unexpected agent type %T", c.Agent)
		}
	}
	return out
}

// TestInstrumentedTrainingIsBitIdentical is the observability layer's core
// contract: installing an event sink (and all the always-on metric and timer
// updates that ride along) must not perturb training in any way. The same
// seeded run with and without a JSONL sink must produce bit-identical model
// weights and reward curves — instrumentation only reads state and never
// touches an RNG stream.
func TestInstrumentedTrainingIsBitIdentical(t *testing.T) {
	base, err := Train(AlgPFRLDM, goldenObsConfig())
	if err != nil {
		t.Fatal(err)
	}
	baseParams := flattenAgents(t, base.Clients)

	var events bytes.Buffer
	sink := obs.NewJSONL(&events)
	prev := obs.SetSink(sink)
	instr, err := Train(AlgPFRLDM, goldenObsConfig())
	obs.SetSink(prev)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Err(); err != nil {
		t.Fatalf("event sink failed: %v", err)
	}
	instrParams := flattenAgents(t, instr.Clients)

	if len(baseParams) != len(instrParams) {
		t.Fatalf("parameter counts differ: %d vs %d", len(baseParams), len(instrParams))
	}
	for i := range baseParams {
		if baseParams[i] != instrParams[i] {
			t.Fatalf("weights diverge at parameter %d: %v vs %v (instrumentation must be invisible)",
				i, baseParams[i], instrParams[i])
		}
	}
	if len(base.MeanCurve) != len(instr.MeanCurve) {
		t.Fatalf("curve lengths differ: %d vs %d", len(base.MeanCurve), len(instr.MeanCurve))
	}
	for i := range base.MeanCurve {
		if base.MeanCurve[i] != instr.MeanCurve[i] {
			t.Fatalf("reward curves diverge at episode %d: %v vs %v",
				i, base.MeanCurve[i], instr.MeanCurve[i])
		}
	}

	// The instrumented run must actually have observed something.
	lines := strings.Split(strings.TrimSpace(events.String()), "\n")
	if len(lines) < 2 || lines[0] == "" {
		t.Fatalf("expected a non-trivial event stream, got %d lines", len(lines))
	}
	var sawEpisode, sawRound bool
	for _, l := range lines {
		if strings.Contains(l, `"type":"episode"`) {
			sawEpisode = true
		}
		if strings.Contains(l, `"type":"round"`) {
			sawRound = true
		}
	}
	if !sawEpisode || !sawRound {
		t.Fatalf("event stream missing episode/round events (episode=%v round=%v)", sawEpisode, sawRound)
	}
	if instr.Phases.Rollout <= 0 || instr.Phases.Update <= 0 ||
		instr.Phases.Aggregate <= 0 || instr.Phases.Total() <= 0 {
		t.Fatalf("phase timers not populated: %+v", instr.Phases)
	}
}
