// Package core orchestrates the PFRL-DM system end to end: it wires the
// cloud-scheduling environments (internal/cloudsim), the workload models
// (internal/workload), the PPO / dual-critic agents (internal/rl), and the
// federated layer (internal/fed) into the experiments reported in the
// paper. Every figure and table in the evaluation has a runner here; the
// bench harness and the CLI tools are thin wrappers around this package.
package core

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/cloudsim"
	"repro/internal/fed"
	"repro/internal/fedcore"
	"repro/internal/obs"
	"repro/internal/rl"
	"repro/internal/tensor"
	"repro/internal/workload"
)

// Algorithm selects one of the compared training schemes (§5.1).
type Algorithm int

const (
	// AlgPPO trains each client independently (the non-federated baseline).
	AlgPPO Algorithm = iota
	// AlgFedAvg federates full actor+critic models with plain averaging.
	AlgFedAvg
	// AlgMFPO federates full models through the server-momentum aggregator
	// standing in for MFPO.
	AlgMFPO
	// AlgPFRLDM is the paper's method: dual-critic clients, public-critic
	// transport, multi-head-attention personalization.
	AlgPFRLDM
	// AlgFedProx is an extension baseline: FedAvg plus client-side proximal
	// regularization (Li et al., MLSys 2020).
	AlgFedProx
	// AlgSecureFedAvg is an extension baseline: FedAvg computed under
	// simulated pairwise-masked secure aggregation (§3.4 threat model).
	AlgSecureFedAvg
)

// String returns the algorithm's display name.
func (a Algorithm) String() string {
	switch a {
	case AlgPPO:
		return "PPO"
	case AlgFedAvg:
		return "FedAvg"
	case AlgMFPO:
		return "MFPO"
	case AlgPFRLDM:
		return "PFRL-DM"
	case AlgFedProx:
		return "FedProx"
	case AlgSecureFedAvg:
		return "SecureFedAvg"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// AllAlgorithms lists the paper's four compared schemes in presentation
// order.
func AllAlgorithms() []Algorithm {
	return []Algorithm{AlgPFRLDM, AlgMFPO, AlgFedAvg, AlgPPO}
}

// ExtensionAlgorithms lists the additional baselines built on top of the
// paper (not part of its evaluation).
func ExtensionAlgorithms() []Algorithm {
	return []Algorithm{AlgFedProx, AlgSecureFedAvg}
}

// ClientSpec is one client's environment definition: its cluster and the
// workload dataset it draws tasks from (Tables 2 and 3).
type ClientSpec struct {
	Name    string
	VMs     []cloudsim.VMSpec
	Dataset workload.DatasetID
	// Workload, when non-nil, overrides Dataset: the client draws its tasks
	// from the declarative spec (workload.ParseSpec / workload.PresetSpec)
	// instead of a builtin model, enabling multi-tenant mixes and SLO-tagged
	// traffic per client.
	Workload *workload.Spec
}

// Table2Specs returns the 4-client exploratory setup of Table 2.
func Table2Specs() []ClientSpec {
	return []ClientSpec{
		{Name: "Client1", VMs: vms(16, 128, 4, 32, 256, 1), Dataset: workload.Google},
		{Name: "Client2", VMs: vms(32, 256, 3), Dataset: workload.Alibaba2017},
		{Name: "Client3", VMs: vms(16, 128, 2, 32, 256, 2), Dataset: workload.HPCHF},
		{Name: "Client4", VMs: vms(16, 128, 3, 32, 256, 2), Dataset: workload.KVM2019},
	}
}

// Table3Specs returns the 10-client main evaluation setup of Table 3.
func Table3Specs() []ClientSpec {
	return []ClientSpec{
		{Name: "Client1", VMs: vms(8, 64, 1, 16, 128, 4, 64, 512, 2), Dataset: workload.Google},
		{Name: "Client2", VMs: vms(8, 64, 3, 32, 128, 3, 64, 512, 1), Dataset: workload.Alibaba2017},
		{Name: "Client3", VMs: vms(8, 64, 3, 32, 256, 2, 64, 512, 2), Dataset: workload.Alibaba2018},
		{Name: "Client4", VMs: vms(8, 64, 2, 32, 256, 3, 40, 256, 2), Dataset: workload.HPCKS},
		{Name: "Client5", VMs: vms(8, 64, 1, 48, 256, 2, 64, 512, 3), Dataset: workload.HPCHF},
		{Name: "Client6", VMs: vms(16, 128, 1, 32, 256, 3, 40, 256, 3), Dataset: workload.HPCWZ},
		{Name: "Client7", VMs: vms(16, 128, 1, 40, 256, 3, 32, 200, 3), Dataset: workload.KVM2019},
		{Name: "Client8", VMs: vms(16, 128, 4, 64, 512, 1), Dataset: workload.KVM2020},
		{Name: "Client9", VMs: vms(8, 64, 2, 16, 128, 2, 64, 512, 1), Dataset: workload.CERITSC},
		{Name: "Client10", VMs: vms(8, 128, 2, 16, 128, 4), Dataset: workload.K8S},
	}
}

// vms expands (cpu, mem, count) triples into a VM list.
func vms(triples ...int) []cloudsim.VMSpec {
	if len(triples)%3 != 0 {
		panic("core: vms wants (cpu, mem, count) triples")
	}
	var out []cloudsim.VMSpec
	for i := 0; i < len(triples); i += 3 {
		for c := 0; c < triples[i+2]; c++ {
			out = append(out, cloudsim.VMSpec{CPU: triples[i], Mem: float64(triples[i+1])})
		}
	}
	return out
}

// ScaleSpecs divides every VM's capacity by scale (keeping at least 1 vCPU
// and 0.5 GiB), shrinking the observation space so scaled-down experiment
// suites run quickly while preserving the relative heterogeneity between
// clients. scale <= 1 returns a deep copy.
func ScaleSpecs(specs []ClientSpec, scale int) []ClientSpec {
	out := make([]ClientSpec, len(specs))
	for i, s := range specs {
		ns := s
		ns.VMs = make([]cloudsim.VMSpec, len(s.VMs))
		for j, v := range s.VMs {
			if scale > 1 {
				v.CPU = max(1, v.CPU/scale)
				v.Mem = maxf(0.5, v.Mem/float64(scale))
			}
			ns.VMs[j] = v
		}
		out[i] = ns
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// FederationCaps computes the federation-wide observation constants shared
// by every client (§4.1: all agents must have identical network shapes, so
// smaller clusters are padded with voids).
type FederationCaps struct {
	PadVMs   int
	PadVCPUs int
	MaxCPU   int
	MaxMem   float64
}

// CapsFor derives the caps from a set of client specs.
func CapsFor(specs []ClientSpec) FederationCaps {
	caps := FederationCaps{PadVMs: 1, PadVCPUs: 1, MaxCPU: 1, MaxMem: 1}
	for _, s := range specs {
		if len(s.VMs) > caps.PadVMs {
			caps.PadVMs = len(s.VMs)
		}
		for _, v := range s.VMs {
			if v.CPU > caps.PadVCPUs {
				caps.PadVCPUs = v.CPU
				caps.MaxCPU = v.CPU
			}
			if v.Mem > caps.MaxMem {
				caps.MaxMem = v.Mem
			}
		}
	}
	return caps
}

// EnvConfig builds one client's cloudsim configuration under the
// federation caps.
func (caps FederationCaps) EnvConfig(spec ClientSpec) cloudsim.Config {
	cfg := cloudsim.DefaultConfig(spec.VMs)
	cfg.PadVMs = caps.PadVMs
	cfg.PadVCPUs = caps.PadVCPUs
	cfg.MaxCPU = caps.MaxCPU
	cfg.MaxMem = caps.MaxMem
	return cfg
}

// ExperimentConfig parameterizes a training run. The zero value is not
// usable; start from DefaultExperiment.
type ExperimentConfig struct {
	Specs          []ClientSpec
	TasksPerClient int
	TrainFrac      float64
	Episodes       int
	CommEvery      int
	// K is the number of clients aggregated per round (0 means N/2,
	// the paper's setting for PFRL-DM; FedAvg/MFPO always use all N).
	K        int
	Seed     int64
	Parallel bool
	// ActorLR / CriticLR override the paper defaults when non-zero (the
	// scaled-down suites use slightly larger rates to converge in fewer
	// episodes).
	ActorLR  float64
	CriticLR float64
	// EpisodeStepCap bounds decision steps per episode (0 = cloudsim
	// default).
	EpisodeStepCap int
	// MFPOBeta is the server-momentum coefficient for AlgMFPO
	// (0 means the default, 0.5).
	MFPOBeta float64
	// Faults, when active, wraps the federation transport in a seeded
	// fault injector (fed.FaultyTransport) — the chaos-testing knob for
	// robustness experiments. Ignored by AlgPPO (no transport).
	Faults fed.FaultSpec
	// Async switches the federation to buffered asynchronous aggregation
	// with staleness-weighted mixing (fedcore.AsyncEngine). Ignored by
	// AlgPPO (no federation).
	Async bool
	// StalenessBound caps accepted staleness in async mode (negative =
	// unbounded, zero = fresh only — with Buffer = K this degrades to the
	// sync engine bit-identically).
	StalenessBound int
	// Buffer is the async commit trigger B; <= 0 resolves to K.
	Buffer int
	// SLOWaitCost / SLOWaitTarget are forwarded into every client's
	// cloudsim.Config.Objectives, enabling per-service-class reward shaping
	// and violation accounting. All-zero (the default) reproduces the
	// unshaped paper reward exactly.
	SLOWaitCost   [workload.NumSLOClasses]float64
	SLOWaitTarget [workload.NumSLOClasses]int
	// Codec configures the federation's payload wire codec: quantization
	// tier and delta encoding (§ communication cost). The zero value is the
	// lossless identity tier, which reproduces uncompressed runs bit-exactly.
	// Ignored by AlgPPO (no federation).
	Codec fedcore.CodecConfig
	// AggWorkers overrides the aggregation worker count for this run
	// (0 = GOMAXPROCS). Any worker count produces bit-identical globals;
	// the knob trades wall-clock for CPU on large payloads.
	AggWorkers int
}

// DefaultExperiment returns the scaled-down counterpart of the paper's main
// setup: Table 3 clients at 1/4 capacity, 120 tasks per client, 40
// episodes with communication every 5 — small enough for a laptop, large
// enough to show every qualitative result. Paper scale is recovered with
// Specs: Table3Specs(), TasksPerClient: 3500, Episodes: 500, CommEvery: 25.
func DefaultExperiment(seed int64) ExperimentConfig {
	return ExperimentConfig{
		Specs:          ScaleSpecs(Table3Specs(), 4),
		TasksPerClient: 120,
		TrainFrac:      0.6,
		Episodes:       40,
		CommEvery:      5,
		Seed:           seed,
		Parallel:       true,
		ActorLR:        1e-3,
		CriticLR:       1e-3,
		// Bound episodes: an untrained policy would otherwise burn tens of
		// thousands of wait steps before the last task completes.
		EpisodeStepCap: 5 * 120,
	}
}

// rlConfig builds the agent hyperparameters for a state/action space.
func (c ExperimentConfig) rlConfig(stateDim, numActions int) rl.Config {
	cfg := rl.DefaultConfig(stateDim, numActions)
	if c.ActorLR > 0 {
		cfg.ActorLR = c.ActorLR
	}
	if c.CriticLR > 0 {
		cfg.CriticLR = c.CriticLR
	}
	return cfg
}

// ClientData bundles one client's sampled train/test splits.
type ClientData struct {
	Spec  ClientSpec
	Train []workload.Task
	Test  []workload.Task
}

// SampleClientData draws each client's tasks from its dataset model (3500
// per client at paper scale, §5.1) or, when ClientSpec.Workload is set, from
// its compiled declarative spec, clamps them to the client's cluster, and
// splits train/test. It fails only when a client's workload spec does not
// compile.
func SampleClientData(cfg ExperimentConfig) ([]ClientData, error) {
	out := make([]ClientData, len(cfg.Specs))
	for i, spec := range cfg.Specs {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
		var tasks []workload.Task
		if spec.Workload != nil {
			comp, err := spec.Workload.Compile()
			if err != nil {
				return nil, fmt.Errorf("core: client %d (%s): %w", i, spec.Name, err)
			}
			tasks = comp.Sample(rng, cfg.TasksPerClient)
		} else {
			tasks = workload.SampleDataset(spec.Dataset, rng, cfg.TasksPerClient)
		}
		tasks = cloudsim.ClampTasks(tasks, spec.VMs)
		train, test := workload.Split(tasks, cfg.TrainFrac)
		out[i] = ClientData{Spec: spec, Train: train, Test: test}
	}
	return out, nil
}

// TrainResult is the outcome of one training run.
type TrainResult struct {
	Algorithm Algorithm
	Clients   []*fed.Client
	// Federation is nil for AlgPPO (independent training).
	Federation *fed.Federation
	// MeanCurve is the across-client mean of per-episode total rewards
	// (the paper's Figure 8/15 convergence series).
	MeanCurve []float64
	Data      []ClientData
	// PoolGets and PoolRecycled record the shared tensor pool's traffic
	// (requests and free-list hits) during this Train call — the
	// observability hook behind the perf experiment's hit-rate readout.
	// Concurrent Train calls share the process-wide pool, so attribution is
	// exact only for sequential runs (how the bench harness runs them).
	PoolGets, PoolRecycled int64
	// Participation is the number of uploads aggregated in each round
	// (equals K every round unless faults dropped clients out).
	Participation []int
	// Faults counts the transport faults injected during the run (zero
	// unless ExperimentConfig.Faults was active).
	Faults fed.FaultStats
	// Phases breaks the run's wall-clock down by pipeline stage
	// (rollout/update/aggregate/comm), diffed from the process-wide phase
	// timers like the pool stats: with Parallel clients the totals sum time
	// across goroutines, and attribution is exact only for sequential Train
	// calls (how the bench harness runs them).
	Phases obs.PhaseTimes
	// Comm is the federation's communication ledger: scalar counts plus
	// measured wire bytes of every codec frame (zero for AlgPPO).
	Comm fed.CommStats
	// CompressionRatio is raw payload bytes over measured wire bytes for
	// the whole run — 1.0 under the identity tier, >1 under quantization
	// (0 for AlgPPO, which moves no payloads).
	CompressionRatio float64
}

// recordPoolStats fills the pool-traffic fields from a Stats snapshot taken
// when Train started.
func (r *TrainResult) recordPoolStats(startGets, startHits int64) {
	gets, hits := tensor.DefaultPool().Stats()
	r.PoolGets = gets - startGets
	r.PoolRecycled = hits - startHits
}

// BuildClients constructs the federated clients (environments + agents)
// for an algorithm.
func BuildClients(alg Algorithm, cfg ExperimentConfig, data []ClientData) ([]*fed.Client, error) {
	caps := CapsFor(cfg.Specs)
	clients := make([]*fed.Client, len(data))
	for i, d := range data {
		envCfg := caps.EnvConfig(d.Spec)
		if cfg.EpisodeStepCap > 0 {
			envCfg.MaxSteps = cfg.EpisodeStepCap
		}
		envCfg.Objectives.SLOWaitCost = cfg.SLOWaitCost
		envCfg.Objectives.SLOWaitTarget = cfg.SLOWaitTarget
		dim := cloudsim.StateDim(envCfg)
		actions := cloudsim.NumActions(envCfg)
		agentRng := rand.New(rand.NewSource(cfg.Seed + 104729*int64(i+1)))
		var agent rl.Agent
		if alg == AlgPFRLDM {
			agent = rl.NewDualCriticPPO(cfg.rlConfig(dim, actions), agentRng)
		} else {
			agent = rl.NewPPO(cfg.rlConfig(dim, actions), agentRng)
		}
		c, err := fed.NewClient(i, d.Spec.Name, envCfg, d.Train, agent)
		if err != nil {
			return nil, err
		}
		clients[i] = c
	}
	return clients, nil
}

// Train runs one full training under the given algorithm.
func Train(alg Algorithm, cfg ExperimentConfig) (*TrainResult, error) {
	data, err := SampleClientData(cfg)
	if err != nil {
		return nil, err
	}
	clients, err := BuildClients(alg, cfg, data)
	if err != nil {
		return nil, err
	}
	res := &TrainResult{Algorithm: alg, Clients: clients, Data: data}
	startGets, startHits := tensor.DefaultPool().Stats()
	phaseStart := obs.GlobalTimers().Snapshot()

	if alg == AlgPPO {
		trainIndependent(clients, cfg.Episodes, cfg.Parallel)
		res.MeanCurve = fed.MeanRewardCurve(clients)
		res.recordPoolStats(startGets, startHits)
		res.Phases = obs.GlobalTimers().Snapshot().Sub(phaseStart)
		return res, nil
	}

	var transport fed.Transport
	var agg fed.Aggregator
	switch alg {
	case AlgFedAvg:
		transport, agg = fed.ActorCriticTransport{}, fed.FedAvg{}
	case AlgMFPO:
		beta := cfg.MFPOBeta
		if beta == 0 {
			beta = 0.5
		}
		transport, agg = fed.ActorCriticTransport{}, fed.NewMomentum(beta)
	case AlgFedProx:
		transport, agg = fed.FedProxTransport{Mu: 0.01}, fed.FedAvg{}
	case AlgSecureFedAvg:
		transport, agg = fed.ActorCriticTransport{}, fed.NewSecureFedAvg(cfg.Seed)
	case AlgPFRLDM:
		transport, agg = fed.PublicCriticTransport{}, fed.NewAttention(cfg.Seed)
	default:
		return nil, fmt.Errorf("core: unknown algorithm %v", alg)
	}
	// cfg.K wins when set; otherwise the baselines aggregate everyone and
	// PFRL-DM uses the paper's K = N/2 default. The engine clamps to [1, N].
	k := cfg.K
	if k <= 0 {
		k = len(clients)
		if alg == AlgPFRLDM {
			k = fedcore.DefaultK(len(clients))
		}
	}
	if cfg.AggWorkers > 0 {
		// Process-wide knob: concurrent Train calls share it, like the
		// tensor pool and phase timers.
		fedcore.SetAggWorkers(cfg.AggWorkers)
	}
	f, err := fed.New(clients, transport, agg, fed.Options{
		K: k, CommEvery: cfg.CommEvery, Seed: cfg.Seed, Parallel: cfg.Parallel,
		Async: cfg.Async, StalenessBound: cfg.StalenessBound, Buffer: cfg.Buffer,
		Codec: cfg.Codec,
	})
	if err != nil {
		return nil, err
	}
	// Faults model network flakiness during training rounds; the initial
	// provisioning sync in fed.New stays clean, so even an always-drop spec
	// yields a (degenerate) run instead of a setup failure.
	var faulty *fed.FaultyTransport
	if cfg.Faults.Active() {
		faulty = fed.NewFaultyTransport(transport, cfg.Faults)
		f.Transport = faulty
	}
	if err := f.RunEpisodes(cfg.Episodes); err != nil {
		return nil, err
	}
	res.Federation = f
	res.Participation = make([]int, len(f.Reports))
	for i, rep := range f.Reports {
		res.Participation[i] = rep.Participants
	}
	if faulty != nil {
		res.Faults = faulty.Stats()
	}
	res.MeanCurve = fed.MeanRewardCurve(clients)
	res.recordPoolStats(startGets, startHits)
	res.Phases = obs.GlobalTimers().Snapshot().Sub(phaseStart)
	res.Comm = f.Comm()
	res.CompressionRatio = res.Comm.CompressionRatio()
	return res, nil
}

// trainIndependent trains clients without any federation.
func trainIndependent(clients []*fed.Client, episodes int, parallel bool) {
	if !parallel {
		for _, c := range clients {
			c.TrainEpisodes(episodes)
		}
		return
	}
	var wg sync.WaitGroup
	for _, c := range clients {
		wg.Add(1)
		go func(c *fed.Client) {
			defer wg.Done()
			c.TrainEpisodes(episodes)
		}(c)
	}
	wg.Wait()
}
