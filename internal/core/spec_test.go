package core

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

// specConfig returns a tiny experiment where client 0 draws tasks from a
// declarative workload spec (the Google preset) and client 1 from a builtin
// dataset, with SLO shaping turned on.
func specConfig(seed int64) (ExperimentConfig, error) {
	cfg := tinyConfig(seed)
	spec, err := workload.PresetSpec(workload.Google)
	if err != nil {
		return cfg, err
	}
	cfg.Specs[0].Workload = spec
	cfg.SLOWaitCost = [workload.NumSLOClasses]float64{0.001, 0.002, 0.01}
	cfg.SLOWaitTarget = [workload.NumSLOClasses]int{0, 10, 5}
	return cfg, nil
}

// TestSpecDrivenSampleMatchesDataset pins the ClientSpec.Workload override:
// a client whose spec is the preset of its dataset samples an identical
// task set (the spec engine's preset bit-identity, observed through
// SampleClientData's own seeding and clamping).
func TestSpecDrivenSampleMatchesDataset(t *testing.T) {
	cfg := tinyConfig(5)
	legacy, err := SampleClientData(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfg.Specs {
		spec, err := workload.PresetSpec(cfg.Specs[i].Dataset)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Specs[i].Workload = spec
	}
	viaSpec, err := SampleClientData(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range legacy {
		if len(legacy[i].Train) != len(viaSpec[i].Train) {
			t.Fatalf("client %d: train sizes differ", i)
		}
		for j := range legacy[i].Train {
			if legacy[i].Train[j] != viaSpec[i].Train[j] {
				t.Fatalf("client %d train task %d: %+v != %+v", i, j, legacy[i].Train[j], viaSpec[i].Train[j])
			}
		}
	}
}

// TestSpecDrivenTrainDeterminism runs a tiny spec-driven federated training
// twice and requires identical reward curves — the end-to-end determinism
// check for the spec → sample → env → SLO-shaped-reward path.
func TestSpecDrivenTrainDeterminism(t *testing.T) {
	run := func() []float64 {
		cfg, err := specConfig(11)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Train(AlgFedAvg, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanCurve
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("curve lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("episode %d: %v != %v", i, a[i], b[i])
		}
	}
}

// TestSpecDrivenTrainBadSpec checks a non-compiling client spec surfaces a
// wrapped error naming the client instead of panicking mid-train.
func TestSpecDrivenTrainBadSpec(t *testing.T) {
	cfg := tinyConfig(3)
	cfg.Specs[1].Workload = &workload.Spec{Name: "broken"} // no clients
	_, err := Train(AlgPPO, cfg)
	if err == nil {
		t.Fatal("want error for spec with no clients")
	}
	if !strings.Contains(err.Error(), "client 1") || !strings.Contains(err.Error(), cfg.Specs[1].Name) {
		t.Fatalf("error %q does not name the failing client", err)
	}
}
