package tensor

import (
	"math/rand"
	"testing"
)

func TestPoolGetZeroesRecycledBuffers(t *testing.T) {
	p := NewPool()
	m := p.Get(4, 8)
	m.Fill(42)
	p.Put(m)
	r := p.Get(4, 8)
	for i, v := range r.Data {
		if v != 0 {
			t.Fatalf("recycled buffer not zeroed at %d: %v", i, v)
		}
	}
	if r.Rows != 4 || r.Cols != 8 {
		t.Fatalf("recycled shape %dx%d, want 4x8", r.Rows, r.Cols)
	}
}

func TestPoolReshapesAcrossGets(t *testing.T) {
	p := NewPool()
	m := p.Get(2, 16)
	m.Fill(7)
	p.Put(m)
	// A differently shaped request in the same size class must reuse the
	// buffer and still come back clean.
	r := p.Get(8, 4)
	if r.Rows != 8 || r.Cols != 4 || len(r.Data) != 32 {
		t.Fatalf("got %dx%d len %d", r.Rows, r.Cols, len(r.Data))
	}
	for _, v := range r.Data {
		if v != 0 {
			t.Fatalf("reshaped recycled buffer not zeroed: %v", v)
		}
	}
	if gets, hits := p.Stats(); gets != 2 || hits != 1 {
		t.Fatalf("stats gets=%d hits=%d, want 2/1", gets, hits)
	}
}

// TestDirtyRecycledBufferMatMulInto is the aliasing regression guard: a
// buffer released with stale values must not leak them into MatMulInto's
// accumulation when recycled as a destination.
func TestDirtyRecycledBufferMatMulInto(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := RandNormal(rng, 5, 7, 0, 1)
	b := RandNormal(rng, 7, 3, 0, 1)
	want := a.MatMul(b)

	p := NewPool()
	dirty := p.Get(5, 3)
	dirty.Fill(1e9) // poison
	p.Put(dirty)
	dst := p.Get(5, 3)
	a.MatMulInto(b, dst)
	for i := range want.Data {
		if dst.Data[i] != want.Data[i] {
			t.Fatalf("stale values leaked into MatMulInto at %d: got %v want %v", i, dst.Data[i], want.Data[i])
		}
	}
}

func TestPoolSmallAndOversizeRequests(t *testing.T) {
	p := NewPool()
	z := p.Get(0, 5)
	if z.Rows != 0 || z.Cols != 5 || len(z.Data) != 0 {
		t.Fatalf("zero-row get: %dx%d len %d", z.Rows, z.Cols, len(z.Data))
	}
	p.Put(z) // must not panic or corrupt the pool
	m := p.Get(3, 3)
	if len(m.Data) != 9 {
		t.Fatalf("len %d after zero-size put", len(m.Data))
	}
}

func TestPoolConcurrentGetPut(t *testing.T) {
	p := NewPool()
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(seed int64) {
			defer func() { done <- struct{}{} }()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 500; i++ {
				m := p.Get(1+rng.Intn(16), 1+rng.Intn(16))
				m.Fill(float64(i))
				p.Put(m)
			}
		}(int64(g))
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if m := p.Get(4, 4); m.Data[0] != 0 {
		t.Fatalf("post-stress get not zeroed")
	}
}
