package tensor

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelThreshold is the minimum number of multiply-accumulate operations
// (rows*cols*inner) above which the scalar matmul kernels fan out across
// goroutines. Below the threshold the goroutine overhead dominates any
// speedup for the small matrices used by the 64-unit MLPs in this
// repository. simdParallelThreshold is the same knob for the AVX-512 path,
// whose per-MAC cost is several times lower, so fanning out pays off only
// for proportionally larger products.
const (
	parallelThreshold     = 64 * 1024
	simdParallelThreshold = 512 * 1024
)

// matmulWorkers caps the goroutine fan-out width for the tiled kernels.
// Zero (the default) means "GOMAXPROCS at call time". Accessed atomically so
// concurrent matmuls can read it without a lock.
var matmulWorkers atomic.Int64

// SetMatMulWorkers sets the worker count for the row-tiled matmul fan-out
// and returns the previous setting. n <= 0 restores the GOMAXPROCS-following
// default. Tiling splits output rows, and every output element's
// accumulation stays within one worker, so results are identical for any
// worker count.
func SetMatMulWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(matmulWorkers.Swap(int64(n)))
}

// workerCount returns the effective fan-out width.
func workerCount() int {
	if n := int(matmulWorkers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// shouldParallelize reports whether a kernel over the given row count and
// estimated work (total multiply-accumulates) is worth fanning out. Callers
// check it before building the parallelRows closure so the serial fast path
// stays allocation-free (the closure would otherwise escape to the heap on
// every call) — on a single-worker configuration it is always false for the
// same reason.
func shouldParallelize(rows, work int) bool {
	threshold := parallelThreshold
	if simdEnabled {
		threshold = simdParallelThreshold
	}
	return work >= threshold && rows >= 2 && workerCount() > 1
}

// parallelRows runs fn over the row range [0, rows), split into contiguous
// blocks across up to workerCount goroutines. All matmul variants share this
// fan-out so their parallel behaviour stays identical. Callers have already
// decided via shouldParallelize that fanning out is worthwhile.
func parallelRows(rows, work int, fn func(lo, hi int)) {
	if !shouldParallelize(rows, work) {
		fn(0, rows)
		return
	}
	workers := workerCount()
	if workers > rows {
		workers = rows
	}
	chunk := (rows + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// MatMul returns the matrix product m · b.
// It panics if m.Cols != b.Rows. Large products are tiled by row blocks
// across GOMAXPROCS goroutines.
func (m *Matrix) MatMul(b *Matrix) *Matrix {
	return m.MatMulInto(b, New(m.Rows, b.Cols))
}

// MatMulInto computes dst = m · b and returns dst. dst is zeroed first (the
// kernel accumulates), must have shape m.Rows x b.Cols, and must not alias m
// or b. Large products are tiled by row blocks across GOMAXPROCS goroutines.
func (m *Matrix) MatMulInto(b, dst *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %dx%d · %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	dst.assertShape(m.Rows, b.Cols, "MatMulInto")
	if aliases(dst, m) || aliases(dst, b) {
		panic("tensor: MatMulInto dst aliases an operand")
	}
	dst.Zero()
	if work := m.Rows * m.Cols * b.Cols; shouldParallelize(m.Rows, work) {
		parallelRows(m.Rows, work, func(lo, hi int) {
			matmulRange(dst, m, b, lo, hi)
		})
	} else {
		matmulRange(dst, m, b, 0, m.Rows)
	}
	return dst
}

// matmulKBlock is the k-panel height of the cache-blocked SIMD kernels: 64
// rows of b at the repo's typical ≤64 hidden columns is ≤32 KiB, so a panel
// stays L1-resident while every output row in the range streams over it.
// Panels are visited in ascending k order, so each output element still
// accumulates in exactly the order of the unblocked scalar kernel.
const matmulKBlock = 64

// matmulRange computes rows [lo,hi) of out = m·b using an ikj loop order so
// the inner loop walks both b and out contiguously.
func matmulRange(out, m, b *Matrix, lo, hi int) {
	n, p := m.Cols, b.Cols
	if simdEnabled && p >= 8 && n > 0 {
		matmulRangeSIMD(out, m, b, lo, hi)
		return
	}
	for i := lo; i < hi; i++ {
		mrow := m.Data[i*n : (i+1)*n]
		orow := out.Data[i*p : (i+1)*p]
		for k, mv := range mrow {
			if mv == 0 {
				continue
			}
			brow := b.Data[k*p : (k+1)*p]
			for j, bv := range brow {
				orow[j] += mv * bv
			}
		}
	}
}

// matmulRangeSIMD is the cache-blocked AVX-512 variant of matmulRange. The
// full-width column groups go through axpyCols (bitwise identical to the
// scalar inner loop); the p%8 tail columns run the scalar loop. Requires
// b.Cols >= 8 and m.Cols > 0.
func matmulRangeSIMD(out, m, b *Matrix, lo, hi int) {
	n, p := m.Cols, b.Cols
	p8 := p &^ 7
	for k0 := 0; k0 < n; k0 += matmulKBlock {
		kn := n - k0
		if kn > matmulKBlock {
			kn = matmulKBlock
		}
		bp := &b.Data[k0*p]
		for i := lo; i < hi; i++ {
			axpyCols(&out.Data[i*p], bp, &m.Data[i*n+k0], kn, p8, p, 1)
		}
	}
	if p8 == p {
		return
	}
	for i := lo; i < hi; i++ {
		mrow := m.Data[i*n : (i+1)*n]
		orow := out.Data[i*p : (i+1)*p]
		for k, mv := range mrow {
			if mv == 0 {
				continue
			}
			brow := b.Data[k*p : (k+1)*p]
			for j := p8; j < p; j++ {
				orow[j] += mv * brow[j]
			}
		}
	}
}

// MatMulTransB returns m · bᵀ without materializing the transpose.
func (m *Matrix) MatMulTransB(b *Matrix) *Matrix {
	return m.MatMulTransBInto(b, New(m.Rows, b.Rows))
}

// MatMulTransBInto computes dst = m · bᵀ and returns dst. dst must have
// shape m.Rows x b.Rows and must not alias m or b. Large products fan out by
// row blocks like MatMul.
func (m *Matrix) MatMulTransBInto(b, dst *Matrix) *Matrix {
	if m.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransB shape mismatch %dx%d · (%dx%d)ᵀ", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	dst.assertShape(m.Rows, b.Rows, "MatMulTransBInto")
	if aliases(dst, m) || aliases(dst, b) {
		panic("tensor: MatMulTransBInto dst aliases an operand")
	}
	if work := m.Rows * m.Cols * b.Rows; shouldParallelize(m.Rows, work) {
		parallelRows(m.Rows, work, func(lo, hi int) {
			matmulTransBRange(dst, m, b, lo, hi)
		})
	} else {
		matmulTransBRange(dst, m, b, 0, m.Rows)
	}
	return dst
}

// matmulTransBRange computes rows [lo,hi) of out = m·bᵀ: each output row is
// a set of dot products between one row of m and every row of b.
func matmulTransBRange(out, m, b *Matrix, lo, hi int) {
	n := m.Cols
	for i := lo; i < hi; i++ {
		mrow := m.Data[i*n : (i+1)*n]
		orow := out.Data[i*b.Rows : (i+1)*b.Rows]
		for j := 0; j < b.Rows; j++ {
			brow := b.Data[j*n : (j+1)*n]
			s := 0.0
			for k, mv := range mrow {
				s += mv * brow[k]
			}
			orow[j] = s
		}
	}
}

// MatMulTransA returns mᵀ · b without materializing the transpose.
func (m *Matrix) MatMulTransA(b *Matrix) *Matrix {
	return m.MatMulTransAInto(b, New(m.Cols, b.Cols))
}

// MatMulTransAInto computes dst = mᵀ · b and returns dst. dst is zeroed
// first (the kernel accumulates), must have shape m.Cols x b.Cols, and must
// not alias m or b. Large products fan out across goroutines by blocks of
// output rows (columns of m), so every k-accumulation stays within one
// goroutine and the summation order matches the serial kernel exactly.
func (m *Matrix) MatMulTransAInto(b, dst *Matrix) *Matrix {
	if m.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransA shape mismatch (%dx%d)ᵀ · %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	dst.assertShape(m.Cols, b.Cols, "MatMulTransAInto")
	if aliases(dst, m) || aliases(dst, b) {
		panic("tensor: MatMulTransAInto dst aliases an operand")
	}
	dst.Zero()
	if work := m.Rows * m.Cols * b.Cols; shouldParallelize(m.Cols, work) {
		parallelRows(m.Cols, work, func(lo, hi int) {
			matmulTransARange(dst, m, b, lo, hi)
		})
	} else {
		matmulTransARange(dst, m, b, 0, m.Cols)
	}
	return dst
}

// matmulTransARange computes output rows [lo,hi) of out = mᵀ·b, i.e. the
// contributions of columns lo..hi of m. The k loop stays outermost (as in
// the historical serial kernel) so accumulation order per output element is
// identical regardless of how the row range is partitioned.
func matmulTransARange(out, m, b *Matrix, lo, hi int) {
	if simdEnabled && b.Cols >= 8 && m.Rows > 0 {
		matmulTransARangeSIMD(out, m, b, lo, hi)
		return
	}
	for k := 0; k < m.Rows; k++ {
		mrow := m.Data[k*m.Cols : (k+1)*m.Cols]
		brow := b.Data[k*b.Cols : (k+1)*b.Cols]
		for i := lo; i < hi; i++ {
			mv := mrow[i]
			if mv == 0 {
				continue
			}
			orow := out.Data[i*b.Cols : (i+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += mv * bv
			}
		}
	}
}

// matmulTransARangeSIMD is the cache-blocked AVX-512 variant of
// matmulTransARange. Each output row i reads column i of m with stride
// m.Cols (a strided scalar stream the out-of-order core hides well);
// accumulation per element runs over ascending k exactly like the scalar
// k-outermost kernel. Requires b.Cols >= 8 and m.Rows > 0.
func matmulTransARangeSIMD(out, m, b *Matrix, lo, hi int) {
	p := b.Cols
	p8 := p &^ 7
	for k0 := 0; k0 < m.Rows; k0 += matmulKBlock {
		kn := m.Rows - k0
		if kn > matmulKBlock {
			kn = matmulKBlock
		}
		bp := &b.Data[k0*p]
		for i := lo; i < hi; i++ {
			axpyCols(&out.Data[i*p], bp, &m.Data[k0*m.Cols+i], kn, p8, p, m.Cols)
		}
	}
	if p8 == p {
		return
	}
	for k := 0; k < m.Rows; k++ {
		mrow := m.Data[k*m.Cols : (k+1)*m.Cols]
		brow := b.Data[k*p : (k+1)*p]
		for i := lo; i < hi; i++ {
			mv := mrow[i]
			if mv == 0 {
				continue
			}
			orow := out.Data[i*p : (i+1)*p]
			for j := p8; j < p; j++ {
				orow[j] += mv * brow[j]
			}
		}
	}
}
