package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// parallelThreshold is the minimum number of multiply-accumulate operations
// (rows*cols*inner) above which MatMul fans out across goroutines. Below the
// threshold the goroutine overhead dominates any speedup for the small
// matrices used by the 64-unit MLPs in this repository.
const parallelThreshold = 64 * 1024

// MatMul returns the matrix product m · b.
// It panics if m.Cols != b.Rows. Large products are tiled by row blocks
// across GOMAXPROCS goroutines.
func (m *Matrix) MatMul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %dx%d · %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := New(m.Rows, b.Cols)
	work := m.Rows * m.Cols * b.Cols
	if work < parallelThreshold || m.Rows < 2 {
		matmulRange(out, m, b, 0, m.Rows)
		return out
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > m.Rows {
		workers = m.Rows
	}
	chunk := (m.Rows + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < m.Rows; lo += chunk {
		hi := lo + chunk
		if hi > m.Rows {
			hi = m.Rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matmulRange(out, m, b, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// matmulRange computes rows [lo,hi) of out = m·b using an ikj loop order so
// the inner loop walks both b and out contiguously.
func matmulRange(out, m, b *Matrix, lo, hi int) {
	n, p := m.Cols, b.Cols
	for i := lo; i < hi; i++ {
		mrow := m.Data[i*n : (i+1)*n]
		orow := out.Data[i*p : (i+1)*p]
		for k, mv := range mrow {
			if mv == 0 {
				continue
			}
			brow := b.Data[k*p : (k+1)*p]
			for j, bv := range brow {
				orow[j] += mv * bv
			}
		}
	}
}

// MatMulTransB returns m · bᵀ without materializing the transpose.
func (m *Matrix) MatMulTransB(b *Matrix) *Matrix {
	if m.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransB shape mismatch %dx%d · (%dx%d)ᵀ", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := New(m.Rows, b.Rows)
	n := m.Cols
	for i := 0; i < m.Rows; i++ {
		mrow := m.Data[i*n : (i+1)*n]
		orow := out.Data[i*b.Rows : (i+1)*b.Rows]
		for j := 0; j < b.Rows; j++ {
			brow := b.Data[j*n : (j+1)*n]
			s := 0.0
			for k, mv := range mrow {
				s += mv * brow[k]
			}
			orow[j] = s
		}
	}
	return out
}

// MatMulTransA returns mᵀ · b without materializing the transpose.
func (m *Matrix) MatMulTransA(b *Matrix) *Matrix {
	if m.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransA shape mismatch (%dx%d)ᵀ · %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := New(m.Cols, b.Cols)
	for k := 0; k < m.Rows; k++ {
		mrow := m.Data[k*m.Cols : (k+1)*m.Cols]
		brow := b.Data[k*b.Cols : (k+1)*b.Cols]
		for i, mv := range mrow {
			if mv == 0 {
				continue
			}
			orow := out.Data[i*b.Cols : (i+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += mv * bv
			}
		}
	}
	return out
}
