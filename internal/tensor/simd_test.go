package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// fillMixed fills data with a mix of ordinary values, exact zeros of both
// signs, and denormals — the populations where a SIMD kernel could diverge
// from the scalar one (zero-skip guards, flush-to-zero, signed-zero sums).
func fillMixed(rng *rand.Rand, data []float64) {
	for i := range data {
		switch rng.Intn(10) {
		case 0:
			data[i] = 0
		case 1:
			data[i] = math.Copysign(0, -1)
		case 2:
			data[i] = 5e-324 * float64(1+rng.Intn(100)) // subnormal
		default:
			data[i] = rng.NormFloat64()
		}
	}
}

func cloneMatrix(m *Matrix) *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

func requireBitIdentical(t *testing.T, label string, want, got []float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: length mismatch %d vs %d", label, len(want), len(got))
	}
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("%s: element %d differs: scalar %v (%#x) vs simd %v (%#x)",
				label, i, want[i], math.Float64bits(want[i]), got[i], math.Float64bits(got[i]))
		}
	}
}

// simdShapes covers full panels (32- and 8-column groups), scalar tails
// (cols % 8 != 0), sub-vector widths that bypass SIMD entirely, and inner
// dimensions spanning several cache blocks.
var simdShapes = []struct{ rows, inner, cols int }{
	{1, 1, 1},
	{3, 5, 7},
	{2, 9, 8},
	{4, 17, 9},
	{5, 64, 16},
	{7, 65, 33},
	{64, 538, 64},
	{9, 130, 65},
	{1, 200, 40},
	{16, 3, 72},
}

func TestMatMulSIMDMatchesScalar(t *testing.T) {
	if !SIMDEnabled() {
		t.Skip("no AVX-512 on this machine")
	}
	rng := rand.New(rand.NewSource(41))
	for _, sh := range simdShapes {
		m := New(sh.rows, sh.inner)
		b := New(sh.inner, sh.cols)
		fillMixed(rng, m.Data)
		fillMixed(rng, b.Data)

		scalarOut := New(sh.rows, sh.cols)
		simdOut := New(sh.rows, sh.cols)
		prev := setSIMD(false)
		m.MatMulInto(b, scalarOut)
		setSIMD(true)
		m.MatMulInto(b, simdOut)
		setSIMD(prev)
		requireBitIdentical(t, "MatMulInto", scalarOut.Data, simdOut.Data)
	}
}

func TestMatMulTransASIMDMatchesScalar(t *testing.T) {
	if !SIMDEnabled() {
		t.Skip("no AVX-512 on this machine")
	}
	rng := rand.New(rand.NewSource(42))
	for _, sh := range simdShapes {
		// out = mᵀ·b is sh.rows x sh.cols, with the shared dim sh.inner.
		m := New(sh.inner, sh.rows)
		b := New(sh.inner, sh.cols)
		fillMixed(rng, m.Data)
		fillMixed(rng, b.Data)

		scalarOut := New(sh.rows, sh.cols)
		simdOut := New(sh.rows, sh.cols)
		prev := setSIMD(false)
		m.MatMulTransAInto(b, scalarOut)
		setSIMD(true)
		m.MatMulTransAInto(b, simdOut)
		setSIMD(prev)
		requireBitIdentical(t, "MatMulTransAInto", scalarOut.Data, simdOut.Data)
	}
}

func TestAddInPlaceSIMDMatchesScalar(t *testing.T) {
	if !SIMDEnabled() {
		t.Skip("no AVX-512 on this machine")
	}
	rng := rand.New(rand.NewSource(43))
	for _, n := range []int{1, 7, 8, 9, 31, 32, 33, 64, 100, 537} {
		a := New(1, n)
		b := New(1, n)
		fillMixed(rng, a.Data)
		fillMixed(rng, b.Data)
		scalarA := cloneMatrix(a)
		prev := setSIMD(false)
		scalarA.AddInPlace(b)
		setSIMD(true)
		a.AddInPlace(b)
		setSIMD(prev)
		requireBitIdentical(t, "AddInPlace", scalarA.Data, a.Data)
	}
}

func TestAddScaledInPlaceSIMDMatchesScalar(t *testing.T) {
	if !SIMDEnabled() {
		t.Skip("no AVX-512 on this machine")
	}
	rng := rand.New(rand.NewSource(44))
	for _, n := range []int{1, 8, 9, 33, 100, 537} {
		for _, s := range []float64{1.7, -0.3, 0, math.Copysign(0, -1), 5e-324} {
			a := New(1, n)
			b := New(1, n)
			fillMixed(rng, a.Data)
			fillMixed(rng, b.Data)
			scalarA := cloneMatrix(a)
			prev := setSIMD(false)
			scalarA.AddScaledInPlace(b, s)
			setSIMD(true)
			a.AddScaledInPlace(b, s)
			setSIMD(prev)
			requireBitIdentical(t, "AddScaledInPlace", scalarA.Data, a.Data)
		}
	}
}

func TestAddTanhGradSIMDMatchesScalar(t *testing.T) {
	if !SIMDEnabled() {
		t.Skip("no AVX-512 on this machine")
	}
	rng := rand.New(rand.NewSource(47))
	for _, n := range []int{1, 7, 8, 9, 33, 64, 100, 537} {
		dst := New(1, n)
		g := New(1, n)
		y := New(1, n)
		fillMixed(rng, dst.Data)
		fillMixed(rng, g.Data)
		for i := range y.Data {
			y.Data[i] = math.Tanh(rng.NormFloat64()) // tanh outputs ∈ (-1,1)
		}
		scalarDst := cloneMatrix(dst)
		prev := setSIMD(false)
		scalarDst.AddTanhGradInPlace(g, y)
		setSIMD(true)
		dst.AddTanhGradInPlace(g, y)
		setSIMD(prev)
		requireBitIdentical(t, "AddTanhGradInPlace", scalarDst.Data, dst.Data)
	}
}

func TestAdamUpdateSIMDMatchesScalar(t *testing.T) {
	if !SIMDEnabled() {
		t.Skip("no AVX-512 on this machine")
	}
	rng := rand.New(rand.NewSource(45))
	const lr, beta1, beta2, eps = 3e-4, 0.9, 0.999, 1e-8
	for _, n := range []int{1, 8, 15, 64, 70, 537} {
		p1 := make([]float64, n)
		g := make([]float64, n)
		m1 := make([]float64, n)
		v1 := make([]float64, n)
		fillMixed(rng, p1)
		fillMixed(rng, m1)
		for i := range v1 {
			v1[i] = math.Abs(rng.NormFloat64()) // second moments are nonnegative
		}
		p2 := append([]float64(nil), p1...)
		m2 := append([]float64(nil), m1...)
		v2 := append([]float64(nil), v1...)

		// Several consecutive steps exercise evolving moment state. The
		// gradient is consumed by each call, so every step gets a fresh
		// fill and each path its own copy.
		for step := 1; step <= 3; step++ {
			fillMixed(rng, g)
			g1 := append([]float64(nil), g...)
			g2 := append([]float64(nil), g...)
			bc1 := 1 - math.Pow(beta1, float64(step))
			bc2 := 1 - math.Pow(beta2, float64(step))
			prev := setSIMD(false)
			AdamUpdate(p1, g1, m1, v1, lr, beta1, beta2, eps, bc1, bc2)
			setSIMD(true)
			AdamUpdate(p2, g2, m2, v2, lr, beta1, beta2, eps, bc1, bc2)
			setSIMD(prev)
			for i := range g1 {
				if g1[i] != 0 || g2[i] != 0 {
					t.Fatalf("AdamUpdate left gradient residue at %d: scalar %v simd %v", i, g1[i], g2[i])
				}
			}
		}
		requireBitIdentical(t, "AdamUpdate p", p1, p2)
		requireBitIdentical(t, "AdamUpdate m", m1, m2)
		requireBitIdentical(t, "AdamUpdate v", v1, v2)
	}
}

func TestSetMatMulWorkers(t *testing.T) {
	prev := SetMatMulWorkers(3)
	defer SetMatMulWorkers(prev)
	if got := SetMatMulWorkers(0); got != 3 {
		t.Fatalf("SetMatMulWorkers returned %d, want 3", got)
	}
	// Worker count must not change results: run a product large enough to
	// fan out under both settings and compare bitwise.
	rng := rand.New(rand.NewSource(46))
	m := New(96, 300)
	b := New(300, 64)
	fillMixed(rng, m.Data)
	fillMixed(rng, b.Data)
	one := New(96, 64)
	many := New(96, 64)
	SetMatMulWorkers(1)
	m.MatMulInto(b, one)
	SetMatMulWorkers(4)
	m.MatMulInto(b, many)
	SetMatMulWorkers(prev)
	requireBitIdentical(t, "MatMulInto workers", one.Data, many.Data)
}
