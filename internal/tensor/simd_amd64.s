//go:build amd64

#include "textflag.h"

// func x86HasAVX512() bool
//
// AVX-512F requires CPU support (CPUID.7.0:EBX bit 16) and OS support for
// the ZMM/opmask register state (OSXSAVE set, XCR0 bits 1,2,5,6,7).
TEXT ·x86HasAVX512(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	ANDL $(1<<27), CX // OSXSAVE
	JZ   no
	XORL CX, CX
	XGETBV
	ANDL $0xE6, AX    // XMM|YMM|opmask|ZMM_hi256|hi16_ZMM
	CMPL AX, $0xE6
	JNE  no
	MOVL $7, AX
	XORL CX, CX
	CPUID
	ANDL $(1<<16), BX // AVX512F
	JZ   no
	MOVB $1, ret+0(FP)
	RET
no:
	MOVB $0, ret+0(FP)
	RET

// func axpyCols(dst, b, s *float64, k, cols, bStride, sStride int)
//
// for t in [0,k): dst[0:cols] += s[t*sStride] * b[t*bStride : +cols]
//
// cols must be a positive multiple of 8. The j-dimension (columns) is what
// gets vectorized; every output element keeps the scalar kernels' exact
// k-ascending mul-then-add sequence, and zero scalars are skipped just like
// the scalar `if mv == 0 { continue }` guard (SHLQ $1 drops the sign bit, so
// -0.0 is skipped too). No FMA anywhere: VMULPD then VADDPD round twice,
// exactly like the Go code.
//
// Columns are consumed in 64-wide panels (8 ZMM accumulators held across the
// whole k loop — the repo's MLPs are 64 units wide, so the common case is a
// single panel), then 32-wide, then 8-wide. Each column belongs to exactly
// one panel, so the panel split never reorders any element's accumulation.
TEXT ·axpyCols(SB), NOSPLIT, $0-56
	MOVQ dst+0(FP), DI
	MOVQ b+8(FP), SI
	MOVQ s+16(FP), DX
	MOVQ k+24(FP), R8
	MOVQ cols+32(FP), R9
	MOVQ bStride+40(FP), R10
	MOVQ sStride+48(FP), R11
	SHLQ $3, R9  // cols in bytes
	SHLQ $3, R10 // b row stride in bytes
	SHLQ $3, R11 // s stride in bytes
	XORQ R12, R12 // byte offset into the column panel

panel64: // 8 ZMM accumulators = 64 columns per pass
	MOVQ R9, AX
	SUBQ R12, AX
	CMPQ AX, $512
	JLT  panel32
	VMOVUPD (DI)(R12*1), Z0
	VMOVUPD 64(DI)(R12*1), Z1
	VMOVUPD 128(DI)(R12*1), Z2
	VMOVUPD 192(DI)(R12*1), Z3
	VMOVUPD 256(DI)(R12*1), Z20
	VMOVUPD 320(DI)(R12*1), Z21
	VMOVUPD 384(DI)(R12*1), Z22
	VMOVUPD 448(DI)(R12*1), Z23
	LEAQ (SI)(R12*1), BX // &b[panel start]
	MOVQ DX, CX          // &s[0]
	MOVQ R8, R13         // k countdown

k64:
	MOVQ (CX), AX
	SHLQ $1, AX // ±0.0 → ZF set → skip, matching the scalar guard
	JZ   skip64
	VBROADCASTSD (CX), Z4
	VMULPD (BX), Z4, Z5
	VADDPD Z5, Z0, Z0
	VMULPD 64(BX), Z4, Z6
	VADDPD Z6, Z1, Z1
	VMULPD 128(BX), Z4, Z7
	VADDPD Z7, Z2, Z2
	VMULPD 192(BX), Z4, Z8
	VADDPD Z8, Z3, Z3
	VMULPD 256(BX), Z4, Z24
	VADDPD Z24, Z20, Z20
	VMULPD 320(BX), Z4, Z25
	VADDPD Z25, Z21, Z21
	VMULPD 384(BX), Z4, Z26
	VADDPD Z26, Z22, Z22
	VMULPD 448(BX), Z4, Z27
	VADDPD Z27, Z23, Z23

skip64:
	ADDQ R10, BX
	ADDQ R11, CX
	DECQ R13
	JNZ  k64
	VMOVUPD Z0, (DI)(R12*1)
	VMOVUPD Z1, 64(DI)(R12*1)
	VMOVUPD Z2, 128(DI)(R12*1)
	VMOVUPD Z3, 192(DI)(R12*1)
	VMOVUPD Z20, 256(DI)(R12*1)
	VMOVUPD Z21, 320(DI)(R12*1)
	VMOVUPD Z22, 384(DI)(R12*1)
	VMOVUPD Z23, 448(DI)(R12*1)
	ADDQ $512, R12
	JMP  panel64

panel32: // 4 ZMM accumulators = 32 columns per pass
	MOVQ R9, AX
	SUBQ R12, AX
	CMPQ AX, $256
	JLT  panel8
	VMOVUPD (DI)(R12*1), Z0
	VMOVUPD 64(DI)(R12*1), Z1
	VMOVUPD 128(DI)(R12*1), Z2
	VMOVUPD 192(DI)(R12*1), Z3
	LEAQ (SI)(R12*1), BX // &b[panel start]
	MOVQ DX, CX          // &s[0]
	MOVQ R8, R13         // k countdown

k32:
	MOVQ (CX), AX
	SHLQ $1, AX // ±0.0 → ZF set → skip, matching the scalar guard
	JZ   skip32
	VBROADCASTSD (CX), Z4
	VMULPD (BX), Z4, Z5
	VADDPD Z5, Z0, Z0
	VMULPD 64(BX), Z4, Z6
	VADDPD Z6, Z1, Z1
	VMULPD 128(BX), Z4, Z7
	VADDPD Z7, Z2, Z2
	VMULPD 192(BX), Z4, Z8
	VADDPD Z8, Z3, Z3

skip32:
	ADDQ R10, BX
	ADDQ R11, CX
	DECQ R13
	JNZ  k32
	VMOVUPD Z0, (DI)(R12*1)
	VMOVUPD Z1, 64(DI)(R12*1)
	VMOVUPD Z2, 128(DI)(R12*1)
	VMOVUPD Z3, 192(DI)(R12*1)
	ADDQ $256, R12
	JMP  panel32

panel8: // single ZMM = 8 columns per pass
	CMPQ R12, R9
	JGE  done
	VMOVUPD (DI)(R12*1), Z0
	LEAQ (SI)(R12*1), BX
	MOVQ DX, CX
	MOVQ R8, R13

k8:
	MOVQ (CX), AX
	SHLQ $1, AX
	JZ   skip8
	VBROADCASTSD (CX), Z4
	VMULPD (BX), Z4, Z5
	VADDPD Z5, Z0, Z0

skip8:
	ADDQ R10, BX
	ADDQ R11, CX
	DECQ R13
	JNZ  k8
	VMOVUPD Z0, (DI)(R12*1)
	ADDQ $64, R12
	JMP  panel8

done:
	VZEROUPPER
	RET

// func vecAdd(dst, src *float64, n int)
//
// dst[0:n] += src[0:n], n a positive multiple of 8.
TEXT ·vecAdd(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	XORQ R12, R12

add32:
	CMPQ CX, $32
	JLT  add8
	VMOVUPD (DI)(R12*1), Z0
	VMOVUPD 64(DI)(R12*1), Z1
	VMOVUPD 128(DI)(R12*1), Z2
	VMOVUPD 192(DI)(R12*1), Z3
	VADDPD (SI)(R12*1), Z0, Z0
	VADDPD 64(SI)(R12*1), Z1, Z1
	VADDPD 128(SI)(R12*1), Z2, Z2
	VADDPD 192(SI)(R12*1), Z3, Z3
	VMOVUPD Z0, (DI)(R12*1)
	VMOVUPD Z1, 64(DI)(R12*1)
	VMOVUPD Z2, 128(DI)(R12*1)
	VMOVUPD Z3, 192(DI)(R12*1)
	ADDQ $256, R12
	SUBQ $32, CX
	JMP  add32

add8:
	TESTQ CX, CX
	JZ    addDone
	VMOVUPD (DI)(R12*1), Z0
	VADDPD (SI)(R12*1), Z0, Z0
	VMOVUPD Z0, (DI)(R12*1)
	ADDQ $64, R12
	SUBQ $8, CX
	JMP  add8

addDone:
	VZEROUPPER
	RET

// func tanhGradCols(dst, grad, y *float64, n int)
//
// dst[0:n] += grad * (1 - y*y), n a positive multiple of 8 — the fused tanh
// backward. Per element the op order is mul(y,y), sub(1,·), mul(grad,·),
// add(dst,·): exactly the historical ApplyInto + MulElemInto + AddInPlace
// sequence, each correctly rounded, so lanes match the scalar loop bitwise.
TEXT ·tanhGradCols(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ grad+8(FP), SI
	MOVQ y+16(FP), DX
	MOVQ n+24(FP), CX
	MOVQ $0x3FF0000000000000, AX // 1.0
	VPBROADCASTQ AX, Z9
	XORQ R12, R12

tanh8:
	TESTQ CX, CX
	JZ    tanhDone
	VMOVUPD (DX)(R12*1), Z0    // y
	VMULPD Z0, Z0, Z0          // y*y
	VSUBPD Z0, Z9, Z0          // 1 - y*y
	VMULPD (SI)(R12*1), Z0, Z0 // grad * (1 - y*y)
	VADDPD (DI)(R12*1), Z0, Z0
	VMOVUPD Z0, (DI)(R12*1)
	ADDQ $64, R12
	SUBQ $8, CX
	JMP  tanh8

tanhDone:
	VZEROUPPER
	RET

// func adamCols(p, grad, m, v *float64, n int, beta1, c1, beta2, c2, bc1, bc2, lr, eps float64)
//
// Element-wise Adam, transcribing adamScalar's float op order exactly:
//
//	m' = beta1*m + c1*g          (c1 = 1-beta1)
//	v' = beta2*v + (c2*g)*g      (c2 = 1-beta2)
//	p -= (lr*(m'/bc1)) / (sqrt(v'/bc2) + eps)
//
// The gradient is consumed and cleared in the same pass: its cache lines are
// already resident from the load, and the zero stores hide under the div/sqrt
// latency, so the caller saves a separate full-gradient memset sweep.
//
// mul/add/sub/div/sqrt are all correctly rounded, so lanes == scalar loop.
TEXT ·adamCols(SB), NOSPLIT, $0-104
	MOVQ p+0(FP), DI
	MOVQ grad+8(FP), SI
	MOVQ m+16(FP), R8
	MOVQ v+24(FP), R9
	MOVQ n+32(FP), CX
	VBROADCASTSD beta1+40(FP), Z10
	VBROADCASTSD c1+48(FP), Z11
	VBROADCASTSD beta2+56(FP), Z12
	VBROADCASTSD c2+64(FP), Z13
	VBROADCASTSD bc1+72(FP), Z14
	VBROADCASTSD bc2+80(FP), Z15
	VBROADCASTSD lr+88(FP), Z16
	VBROADCASTSD eps+96(FP), Z17
	VXORPD X9, X9, X9       // zero block stored back over the consumed gradient
	XORQ R12, R12

	// Two 8-lane blocks per iteration, instructions interleaved. The div →
	// sqrt → div critical path of one block (~80 cycles) far exceeds the
	// divider unit's occupancy (~60), so a second independent chain keeps
	// the divider busy through the first chain's latency stalls. Lanes stay
	// element-wise independent: order of blocks cannot change results.
adamLoop16:
	CMPQ CX, $16
	JLT  adamLoop
	VMOVUPD (SI)(R12*1), Z0    // g    lo
	VMOVUPD 64(SI)(R12*1), Z18 // g    hi
	VMOVUPD (R8)(R12*1), Z1    // m    lo
	VMOVUPD 64(R8)(R12*1), Z19 // m    hi
	VMOVUPD (R9)(R12*1), Z2    // v    lo
	VMOVUPD 64(R9)(R12*1), Z20 // v    hi
	VMOVUPD (DI)(R12*1), Z3    // p    lo
	VMOVUPD 64(DI)(R12*1), Z21 // p    hi
	VMULPD Z10, Z1, Z1         // beta1*m
	VMULPD Z10, Z19, Z19
	VMULPD Z11, Z0, Z4         // c1*g
	VMULPD Z11, Z18, Z22
	VADDPD Z4, Z1, Z1          // m'
	VADDPD Z22, Z19, Z19
	VMULPD Z12, Z2, Z2         // beta2*v
	VMULPD Z12, Z20, Z20
	VMULPD Z13, Z0, Z5         // c2*g
	VMULPD Z13, Z18, Z23
	VMULPD Z0, Z5, Z5          // (c2*g)*g
	VMULPD Z18, Z23, Z23
	VADDPD Z5, Z2, Z2          // v'
	VADDPD Z23, Z20, Z20
	VMOVUPD Z9, (SI)(R12*1)    // g consumed; clear in place
	VMOVUPD Z9, 64(SI)(R12*1)
	VMOVUPD Z1, (R8)(R12*1)
	VMOVUPD Z19, 64(R8)(R12*1)
	VMOVUPD Z2, (R9)(R12*1)
	VMOVUPD Z20, 64(R9)(R12*1)
	VDIVPD Z14, Z1, Z6         // mhat = m'/bc1
	VDIVPD Z15, Z2, Z7         // vhat = v'/bc2
	VDIVPD Z14, Z19, Z22
	VDIVPD Z15, Z20, Z23
	VSQRTPD Z7, Z7
	VSQRTPD Z23, Z23
	VADDPD Z17, Z7, Z7         // sqrt(vhat)+eps
	VADDPD Z17, Z23, Z23
	VMULPD Z6, Z16, Z6         // lr*mhat
	VMULPD Z22, Z16, Z22
	VDIVPD Z7, Z6, Z6          // step
	VDIVPD Z23, Z22, Z22
	VSUBPD Z6, Z3, Z3          // p - step
	VSUBPD Z22, Z21, Z21
	VMOVUPD Z3, (DI)(R12*1)
	VMOVUPD Z21, 64(DI)(R12*1)
	ADDQ $128, R12
	SUBQ $16, CX
	JMP  adamLoop16

adamLoop:
	TESTQ CX, CX
	JZ    adamDone
	VMOVUPD (SI)(R12*1), Z0 // g
	VMOVUPD (R8)(R12*1), Z1 // m
	VMOVUPD (R9)(R12*1), Z2 // v
	VMOVUPD (DI)(R12*1), Z3 // p
	VMULPD Z10, Z1, Z1      // beta1*m
	VMULPD Z11, Z0, Z4      // c1*g
	VADDPD Z4, Z1, Z1       // m'
	VMULPD Z12, Z2, Z2      // beta2*v
	VMULPD Z13, Z0, Z5      // c2*g
	VMULPD Z0, Z5, Z5       // (c2*g)*g
	VADDPD Z5, Z2, Z2       // v'
	VMOVUPD Z9, (SI)(R12*1) // g consumed; clear in place
	VMOVUPD Z1, (R8)(R12*1)
	VMOVUPD Z2, (R9)(R12*1)
	VDIVPD Z14, Z1, Z6      // mhat = m'/bc1
	VDIVPD Z15, Z2, Z7      // vhat = v'/bc2
	VSQRTPD Z7, Z7
	VADDPD Z17, Z7, Z7      // sqrt(vhat)+eps
	VMULPD Z6, Z16, Z6      // lr*mhat
	VDIVPD Z7, Z6, Z6       // step
	VSUBPD Z6, Z3, Z3       // p - step
	VMOVUPD Z3, (DI)(R12*1)
	ADDQ $64, R12
	SUBQ $8, CX
	JMP  adamLoop

adamDone:
	VZEROUPPER
	RET
