// Package tensor provides a dense, row-major float64 matrix type and the
// linear-algebra kernels used by the autograd engine and neural networks in
// this repository. It is deliberately small: two-dimensional matrices only,
// explicit shapes, and no hidden allocation in the hot paths that accept a
// destination.
//
// Vectors are represented as matrices with one row (row vector) or one
// column (column vector); helper constructors are provided for both.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix of float64 values.
//
// The zero value is an empty 0x0 matrix. All operations that return a new
// Matrix allocate exactly one backing slice. Methods never retain references
// to argument matrices.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// New returns a zero-initialized matrix with the given shape.
// It panics if rows or cols is negative.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice returns a rows x cols matrix that copies the provided data.
// It panics if len(data) != rows*cols.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice got %d values for %dx%d", len(data), rows, cols))
	}
	m := New(rows, cols)
	copy(m.Data, data)
	return m
}

// FromRows builds a matrix from a slice of equal-length rows.
// It panics if the rows have differing lengths.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("tensor: FromRows row %d has %d cols, want %d", i, len(r), cols))
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m
}

// RowVector returns a 1 x n matrix copying v.
func RowVector(v []float64) *Matrix { return FromSlice(1, len(v), v) }

// ColVector returns an n x 1 matrix copying v.
func ColVector(v []float64) *Matrix { return FromSlice(len(v), 1, v) }

// Full returns a rows x cols matrix with every element set to v.
func Full(rows, cols int, v float64) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = v
	}
	return m
}

// Eye returns the n x n identity matrix.
func Eye(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 {
	m.boundsCheck(i, j)
	return m.Data[i*m.Cols+j]
}

// Set stores v at row i, column j.
func (m *Matrix) Set(i, j int, v float64) {
	m.boundsCheck(i, j)
	m.Data[i*m.Cols+j] = v
}

func (m *Matrix) boundsCheck(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("tensor: index (%d,%d) out of range for %dx%d", i, j, m.Rows, m.Cols))
	}
}

// Row returns row i as a slice aliasing the matrix storage.
// Mutating the returned slice mutates the matrix.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.Rows {
		panic(fmt.Sprintf("tensor: row %d out of range for %dx%d", i, m.Rows, m.Cols))
	}
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// CopyFrom copies src into m. The shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	m.assertSameShape(src, "CopyFrom")
	copy(m.Data, src.Data)
}

// Zero sets every element of m to zero.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element of m to v.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// SameShape reports whether m and b have identical dimensions.
func (m *Matrix) SameShape(b *Matrix) bool { return m.Rows == b.Rows && m.Cols == b.Cols }

func (m *Matrix) assertSameShape(b *Matrix, op string) {
	if !m.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, m.Rows, m.Cols, b.Rows, b.Cols))
	}
}

// Add returns m + b elementwise.
func (m *Matrix) Add(b *Matrix) *Matrix {
	m.assertSameShape(b, "Add")
	out := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = v + b.Data[i]
	}
	return out
}

// AddInPlace sets m = m + b and returns m.
func (m *Matrix) AddInPlace(b *Matrix) *Matrix {
	m.assertSameShape(b, "AddInPlace")
	i := 0
	if simdEnabled {
		if n8 := len(m.Data) &^ 7; n8 > 0 {
			vecAdd(&m.Data[0], &b.Data[0], n8)
			i = n8
		}
	}
	for ; i < len(m.Data); i++ {
		m.Data[i] += b.Data[i]
	}
	return m
}

// AddScaledInPlace sets m = m + s*b and returns m.
func (m *Matrix) AddScaledInPlace(b *Matrix, s float64) *Matrix {
	m.assertSameShape(b, "AddScaledInPlace")
	i := 0
	// The s != 0 guard is for bit-exactness, not speed: axpyCols skips zero
	// scalars outright, whereas the scalar loop's `x += 0*v` can flip a -0.0
	// element to +0.0 (signed-zero addition). With s == 0 the scalar loop
	// runs instead, preserving those semantics.
	if simdEnabled && s != 0 {
		if n8 := len(m.Data) &^ 7; n8 > 0 {
			axpyCols(&m.Data[0], &b.Data[0], &s, 1, n8, 0, 0)
			i = n8
		}
	}
	for ; i < len(m.Data); i++ {
		m.Data[i] += s * b.Data[i]
	}
	return m
}

// Sub returns m - b elementwise.
func (m *Matrix) Sub(b *Matrix) *Matrix {
	m.assertSameShape(b, "Sub")
	out := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = v - b.Data[i]
	}
	return out
}

// MulElem returns the elementwise (Hadamard) product m ∘ b.
func (m *Matrix) MulElem(b *Matrix) *Matrix {
	m.assertSameShape(b, "MulElem")
	out := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = v * b.Data[i]
	}
	return out
}

// DivElem returns the elementwise quotient m / b.
func (m *Matrix) DivElem(b *Matrix) *Matrix {
	m.assertSameShape(b, "DivElem")
	out := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = v / b.Data[i]
	}
	return out
}

// Scale returns s*m.
func (m *Matrix) Scale(s float64) *Matrix {
	out := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = s * v
	}
	return out
}

// ScaleInPlace sets m = s*m and returns m.
func (m *Matrix) ScaleInPlace(s float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// AddScalar returns m + s applied elementwise.
func (m *Matrix) AddScalar(s float64) *Matrix {
	out := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = v + s
	}
	return out
}

// Apply returns f applied elementwise to m.
func (m *Matrix) Apply(f func(float64) float64) *Matrix {
	out := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = f(v)
	}
	return out
}

// ApplyInPlace applies f elementwise in place and returns m.
func (m *Matrix) ApplyInPlace(f func(float64) float64) *Matrix {
	for i, v := range m.Data {
		m.Data[i] = f(v)
	}
	return m
}

// T returns the transpose of m.
func (m *Matrix) T() *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			out.Data[j*m.Rows+i] = v
		}
	}
	return out
}

// AddRowBroadcast returns m with the 1 x Cols row vector b added to each row.
func (m *Matrix) AddRowBroadcast(b *Matrix) *Matrix {
	if b.Rows != 1 || b.Cols != m.Cols {
		panic(fmt.Sprintf("tensor: AddRowBroadcast wants 1x%d, got %dx%d", m.Cols, b.Rows, b.Cols))
	}
	out := New(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		src := m.Data[i*m.Cols : (i+1)*m.Cols]
		dst := out.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range src {
			dst[j] = v + b.Data[j]
		}
	}
	return out
}

// Sum returns the sum of all elements.
func (m *Matrix) Sum() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for an empty matrix).
func (m *Matrix) Mean() float64 {
	if len(m.Data) == 0 {
		return 0
	}
	return m.Sum() / float64(len(m.Data))
}

// Max returns the maximum element. It panics on an empty matrix.
func (m *Matrix) Max() float64 {
	if len(m.Data) == 0 {
		panic("tensor: Max of empty matrix")
	}
	mx := m.Data[0]
	for _, v := range m.Data[1:] {
		if v > mx {
			mx = v
		}
	}
	return mx
}

// Min returns the minimum element. It panics on an empty matrix.
func (m *Matrix) Min() float64 {
	if len(m.Data) == 0 {
		panic("tensor: Min of empty matrix")
	}
	mn := m.Data[0]
	for _, v := range m.Data[1:] {
		if v < mn {
			mn = v
		}
	}
	return mn
}

// SumRows returns a Rows x 1 column vector whose i-th entry is the sum of row i.
func (m *Matrix) SumRows() *Matrix {
	out := New(m.Rows, 1)
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		for _, v := range m.Row(i) {
			s += v
		}
		out.Data[i] = s
	}
	return out
}

// SumCols returns a 1 x Cols row vector whose j-th entry is the sum of column j.
func (m *Matrix) SumCols() *Matrix {
	out := New(1, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j] += v
		}
	}
	return out
}

// Norm2 returns the Frobenius (L2) norm of m.
func (m *Matrix) Norm2() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Dot returns the inner product of two matrices of identical shape,
// treating them as flat vectors.
func (m *Matrix) Dot(b *Matrix) float64 {
	m.assertSameShape(b, "Dot")
	s := 0.0
	for i, v := range m.Data {
		s += v * b.Data[i]
	}
	return s
}

// SoftmaxRows returns a matrix whose rows are the softmax of the rows of m,
// computed with the max-subtraction trick for numerical stability.
func (m *Matrix) SoftmaxRows() *Matrix {
	out := New(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		src := m.Row(i)
		dst := out.Row(i)
		mx := src[0]
		for _, v := range src[1:] {
			if v > mx {
				mx = v
			}
		}
		sum := 0.0
		for j, v := range src {
			e := math.Exp(v - mx)
			dst[j] = e
			sum += e
		}
		inv := 1.0 / sum
		for j := range dst {
			dst[j] *= inv
		}
	}
	return out
}

// LogSoftmaxRows returns log(softmax) per row, computed stably.
func (m *Matrix) LogSoftmaxRows() *Matrix {
	out := New(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		src := m.Row(i)
		dst := out.Row(i)
		mx := src[0]
		for _, v := range src[1:] {
			if v > mx {
				mx = v
			}
		}
		sum := 0.0
		for _, v := range src {
			sum += math.Exp(v - mx)
		}
		lse := mx + math.Log(sum)
		for j, v := range src {
			dst[j] = v - lse
		}
	}
	return out
}

// ApproxEqual reports whether m and b have the same shape and all elements
// differ by at most tol.
func (m *Matrix) ApproxEqual(b *Matrix, tol float64) bool {
	if !m.SameShape(b) {
		return false
	}
	for i, v := range m.Data {
		if math.Abs(v-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// HasNaN reports whether any element of m is NaN or infinite.
func (m *Matrix) HasNaN() bool {
	for _, v := range m.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

// String renders the matrix for debugging; large matrices are elided.
func (m *Matrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Matrix(%dx%d)[", m.Rows, m.Cols)
	const maxShow = 8
	for i := 0; i < m.Rows && i < maxShow; i++ {
		if i > 0 {
			b.WriteString("; ")
		}
		row := m.Row(i)
		for j, v := range row {
			if j >= maxShow {
				b.WriteString(" …")
				break
			}
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.4g", v)
		}
	}
	if m.Rows > maxShow {
		b.WriteString("; …")
	}
	b.WriteByte(']')
	return b.String()
}
