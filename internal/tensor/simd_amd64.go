//go:build amd64

package tensor

// SIMD fast paths for the hot kernels. The assembly routines in simd_amd64.s
// vectorize ACROSS OUTPUT COLUMNS only: every output element still sees the
// exact same sequence of scalar multiply-then-add operations, in the same
// k-ascending order, as the portable Go loops. Separate VMULPD + VADDPD are
// used instead of FMA precisely because a fused multiply-add rounds once
// where the scalar code rounds twice — FMA would change low-order bits and
// break the repo's bit-reproducibility guarantee. Under that constraint the
// SIMD kernels are bitwise identical to the scalar kernels (pinned by
// TestAxpySIMDMatchesScalar and friends), so enabling them never changes a
// training run.

// simdEnabled gates all assembly fast paths. It is true when the CPU and OS
// support AVX-512F. Tests flip it via setSIMD to compare both paths.
var simdEnabled = x86HasAVX512()

// setSIMD overrides the runtime SIMD choice; it returns the previous value
// so tests can restore it. Disabling always works; enabling on a machine
// without AVX-512 would fault, so enable only re-arms the detected value.
func setSIMD(on bool) bool {
	prev := simdEnabled
	simdEnabled = on && x86HasAVX512()
	return prev
}

// SIMDEnabled reports whether the AVX-512 fast paths are active.
func SIMDEnabled() bool { return simdEnabled }

// x86HasAVX512 reports CPU + OS support for AVX-512F (CPUID leaf 7 EBX bit
// 16, with OSXSAVE and XCR0 opmask/ZMM state enabled).
func x86HasAVX512() bool

// axpyCols computes, for t in [0,k): dst[0:cols] += s[t*sStride] * b[t*bStride : +cols],
// with cols a positive multiple of 8. Scalars equal to zero are skipped
// entirely, matching the `if mv == 0 { continue }` guard in the scalar
// kernels (the test is on the value bits shifted left by one, so -0.0 is
// skipped exactly like +0.0). Accumulators live in registers for the whole
// k loop; per output element the operation sequence is add(mul(s,b)) in
// k-ascending order — identical to the scalar loops.
//
//go:noescape
func axpyCols(dst, b, s *float64, k, cols, bStride, sStride int)

// vecAdd computes dst[0:n] += src[0:n] for n a positive multiple of 8.
//
//go:noescape
func vecAdd(dst, src *float64, n int)

// tanhGradCols computes dst[0:n] += grad * (1 - y*y) for n a positive
// multiple of 8 — the fused tanh backward, bitwise identical to the separate
// ApplyInto(1-y²) + MulElemInto + AddInPlace passes it replaces.
//
//go:noescape
func tanhGradCols(dst, grad, y *float64, n int)

// adamCols applies the element-wise Adam update to n elements (n a positive
// multiple of 8), transcribing the exact float op order of the scalar rule
// in adamScalar, and clears grad in the same pass. All ops involved (mul,
// add, sub, div, sqrt) are correctly rounded under IEEE-754, so the vector
// lanes match the scalar loop bitwise.
//
//go:noescape
func adamCols(p, grad, m, v *float64, n int, beta1, c1, beta2, c2, bc1, bc2, lr, eps float64)
