package tensor

import (
	"fmt"
	"math"
)

// This file holds the destination-passing ("Into") variants of the
// allocating operations in tensor.go. Each computes exactly the same values
// in exactly the same floating-point order as its allocating counterpart, so
// results are bitwise identical — the property the pooled autograd tape and
// the nn inference fast path rely on (and that the tests assert).
//
// Unless documented otherwise, dst may alias the receiver or the operand:
// every kernel below either reads src[i] strictly before writing dst[i], or
// explicitly rejects aliasing (the matmul family, which accumulates).

// assertShape panics unless m is rows x cols.
func (m *Matrix) assertShape(rows, cols int, op string) {
	if m.Rows != rows || m.Cols != cols {
		panic(fmt.Sprintf("tensor: %s wants dst %dx%d, got %dx%d", op, rows, cols, m.Rows, m.Cols))
	}
}

// aliases reports whether a and b share backing storage.
func aliases(a, b *Matrix) bool {
	return len(a.Data) > 0 && len(b.Data) > 0 && &a.Data[0] == &b.Data[0]
}

// AddInto sets dst = m + b elementwise and returns dst.
func (m *Matrix) AddInto(b, dst *Matrix) *Matrix {
	m.assertSameShape(b, "AddInto")
	dst.assertShape(m.Rows, m.Cols, "AddInto")
	for i, v := range m.Data {
		dst.Data[i] = v + b.Data[i]
	}
	return dst
}

// SubInto sets dst = m - b elementwise and returns dst.
func (m *Matrix) SubInto(b, dst *Matrix) *Matrix {
	m.assertSameShape(b, "SubInto")
	dst.assertShape(m.Rows, m.Cols, "SubInto")
	for i, v := range m.Data {
		dst.Data[i] = v - b.Data[i]
	}
	return dst
}

// MulElemInto sets dst = m ∘ b elementwise and returns dst.
func (m *Matrix) MulElemInto(b, dst *Matrix) *Matrix {
	m.assertSameShape(b, "MulElemInto")
	dst.assertShape(m.Rows, m.Cols, "MulElemInto")
	for i, v := range m.Data {
		dst.Data[i] = v * b.Data[i]
	}
	return dst
}

// AddTanhGradInPlace accumulates m += grad ∘ (1 − y∘y) and returns m — the
// fused tanh backward. Per element the float op order is mul(y,y), sub(1,·),
// mul(grad,·), add: exactly the ApplyInto + MulElemInto + AddInPlace sequence
// it replaces, so the fusion is bitwise invisible.
func (m *Matrix) AddTanhGradInPlace(grad, y *Matrix) *Matrix {
	m.assertSameShape(grad, "AddTanhGradInPlace")
	m.assertSameShape(y, "AddTanhGradInPlace")
	i := 0
	if simdEnabled {
		if n8 := len(m.Data) &^ 7; n8 > 0 {
			tanhGradCols(&m.Data[0], &grad.Data[0], &y.Data[0], n8)
			i = n8
		}
	}
	for ; i < len(m.Data); i++ {
		t := 1 - y.Data[i]*y.Data[i]
		m.Data[i] += grad.Data[i] * t
	}
	return m
}

// DivElemInto sets dst = m / b elementwise and returns dst.
func (m *Matrix) DivElemInto(b, dst *Matrix) *Matrix {
	m.assertSameShape(b, "DivElemInto")
	dst.assertShape(m.Rows, m.Cols, "DivElemInto")
	for i, v := range m.Data {
		dst.Data[i] = v / b.Data[i]
	}
	return dst
}

// ScaleInto sets dst = s*m and returns dst.
func (m *Matrix) ScaleInto(s float64, dst *Matrix) *Matrix {
	dst.assertShape(m.Rows, m.Cols, "ScaleInto")
	for i, v := range m.Data {
		dst.Data[i] = s * v
	}
	return dst
}

// AddScalarInto sets dst = m + s elementwise and returns dst.
func (m *Matrix) AddScalarInto(s float64, dst *Matrix) *Matrix {
	dst.assertShape(m.Rows, m.Cols, "AddScalarInto")
	for i, v := range m.Data {
		dst.Data[i] = v + s
	}
	return dst
}

// ApplyInto sets dst = f(m) elementwise and returns dst.
func (m *Matrix) ApplyInto(f func(float64) float64, dst *Matrix) *Matrix {
	dst.assertShape(m.Rows, m.Cols, "ApplyInto")
	for i, v := range m.Data {
		dst.Data[i] = f(v)
	}
	return dst
}

// AddRowBroadcastInto sets dst = m with the 1 x Cols row vector b added to
// each row, and returns dst.
func (m *Matrix) AddRowBroadcastInto(b, dst *Matrix) *Matrix {
	if b.Rows != 1 || b.Cols != m.Cols {
		panic(fmt.Sprintf("tensor: AddRowBroadcastInto wants 1x%d, got %dx%d", m.Cols, b.Rows, b.Cols))
	}
	dst.assertShape(m.Rows, m.Cols, "AddRowBroadcastInto")
	for i := 0; i < m.Rows; i++ {
		src := m.Data[i*m.Cols : (i+1)*m.Cols]
		out := dst.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range src {
			out[j] = v + b.Data[j]
		}
	}
	return dst
}

// SumRowsInto sets the Rows x 1 dst to per-row sums of m and returns dst.
func (m *Matrix) SumRowsInto(dst *Matrix) *Matrix {
	dst.assertShape(m.Rows, 1, "SumRowsInto")
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		for _, v := range m.Row(i) {
			s += v
		}
		dst.Data[i] = s
	}
	return dst
}

// SumColsInto sets the 1 x Cols dst to per-column sums of m and returns dst.
// dst must not alias m.
func (m *Matrix) SumColsInto(dst *Matrix) *Matrix {
	dst.assertShape(1, m.Cols, "SumColsInto")
	if aliases(m, dst) {
		panic("tensor: SumColsInto dst aliases m")
	}
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			dst.Data[j] += v
		}
	}
	return dst
}

// SoftmaxRowsInto writes the row-wise softmax of m into dst (which may alias
// m) and returns dst.
func (m *Matrix) SoftmaxRowsInto(dst *Matrix) *Matrix {
	dst.assertShape(m.Rows, m.Cols, "SoftmaxRowsInto")
	for i := 0; i < m.Rows; i++ {
		src := m.Row(i)
		out := dst.Row(i)
		mx := src[0]
		for _, v := range src[1:] {
			if v > mx {
				mx = v
			}
		}
		sum := 0.0
		for j, v := range src {
			e := math.Exp(v - mx)
			out[j] = e
			sum += e
		}
		inv := 1.0 / sum
		for j := range out {
			out[j] *= inv
		}
	}
	return dst
}

// LogSoftmaxRowsInto writes the row-wise log-softmax of m into dst (which
// may alias m) and returns dst.
func (m *Matrix) LogSoftmaxRowsInto(dst *Matrix) *Matrix {
	dst.assertShape(m.Rows, m.Cols, "LogSoftmaxRowsInto")
	for i := 0; i < m.Rows; i++ {
		src := m.Row(i)
		out := dst.Row(i)
		mx := src[0]
		for _, v := range src[1:] {
			if v > mx {
				mx = v
			}
		}
		sum := 0.0
		for _, v := range src {
			sum += math.Exp(v - mx)
		}
		lse := mx + math.Log(sum)
		for j, v := range src {
			out[j] = v - lse
		}
	}
	return dst
}
