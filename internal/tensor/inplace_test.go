package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// bitwiseEqual fails the test unless got and want match exactly (including
// shape) — the Into variants promise bit-identical results, not approximate
// ones.
func bitwiseEqual(t *testing.T, op string, got, want *Matrix) {
	t.Helper()
	if !got.SameShape(want) {
		t.Fatalf("%s: shape %dx%d vs %dx%d", op, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
			t.Fatalf("%s: element %d differs: got %v want %v", op, i, got.Data[i], want.Data[i])
		}
	}
}

func TestIntoVariantsMatchAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := RandNormal(rng, 6, 9, 0, 1)
	b := RandNormal(rng, 6, 9, 0.5, 2)
	bias := RandNormal(rng, 1, 9, 0, 1)
	dst := func() *Matrix { return New(6, 9) }

	bitwiseEqual(t, "AddInto", a.AddInto(b, dst()), a.Add(b))
	bitwiseEqual(t, "SubInto", a.SubInto(b, dst()), a.Sub(b))
	bitwiseEqual(t, "MulElemInto", a.MulElemInto(b, dst()), a.MulElem(b))
	bitwiseEqual(t, "DivElemInto", a.DivElemInto(b, dst()), a.DivElem(b))
	bitwiseEqual(t, "ScaleInto", a.ScaleInto(3.7, dst()), a.Scale(3.7))
	bitwiseEqual(t, "AddScalarInto", a.AddScalarInto(-1.25, dst()), a.AddScalar(-1.25))
	bitwiseEqual(t, "ApplyInto", a.ApplyInto(math.Tanh, dst()), a.Apply(math.Tanh))
	bitwiseEqual(t, "AddRowBroadcastInto", a.AddRowBroadcastInto(bias, dst()), a.AddRowBroadcast(bias))
	bitwiseEqual(t, "SumRowsInto", a.SumRowsInto(New(6, 1)), a.SumRows())
	bitwiseEqual(t, "SumColsInto", a.SumColsInto(New(1, 9)), a.SumCols())
	bitwiseEqual(t, "SoftmaxRowsInto", a.SoftmaxRowsInto(dst()), a.SoftmaxRows())
	bitwiseEqual(t, "LogSoftmaxRowsInto", a.LogSoftmaxRowsInto(dst()), a.LogSoftmaxRows())
}

func TestIntoVariantsAllowAliasedDst(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	src := RandNormal(rng, 5, 5, 0, 1)

	check := func(op string, into func(m *Matrix) *Matrix, want *Matrix) {
		c := src.Clone()
		bitwiseEqual(t, op, into(c), want)
	}
	check("AddInto aliased", func(m *Matrix) *Matrix { return m.AddInto(m, m) }, src.Add(src))
	check("ScaleInto aliased", func(m *Matrix) *Matrix { return m.ScaleInto(2, m) }, src.Scale(2))
	check("SoftmaxRowsInto aliased", func(m *Matrix) *Matrix { return m.SoftmaxRowsInto(m) }, src.SoftmaxRows())
	check("LogSoftmaxRowsInto aliased", func(m *Matrix) *Matrix { return m.LogSoftmaxRowsInto(m) }, src.LogSoftmaxRows())
	check("ApplyInto aliased", func(m *Matrix) *Matrix { return m.ApplyInto(math.Tanh, m) }, src.Apply(math.Tanh))
}

// naiveMatMul is an independent triple-loop reference for the matmul family.
func naiveMatMul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for k := 0; k < a.Cols; k++ {
			for j := 0; j < b.Cols; j++ {
				out.Data[i*b.Cols+j] += a.Data[i*a.Cols+k] * b.Data[k*b.Cols+j]
			}
		}
	}
	return out
}

func TestMatMulVariantsSerialAndParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// Small stays below parallelThreshold; big crosses it so the row-block
	// fan-out path is exercised for all three kernels.
	for _, size := range []struct{ m, n, p int }{{4, 5, 3}, {70, 64, 48}} {
		a := RandNormal(rng, size.m, size.n, 0, 1)
		b := RandNormal(rng, size.n, size.p, 0, 1)
		prod := a.MatMul(b)
		if !prod.ApproxEqual(naiveMatMul(a, b), 1e-9) {
			t.Fatalf("MatMul %dx%dx%d deviates from naive reference", size.m, size.n, size.p)
		}
		bitwiseEqual(t, "MatMulInto", a.MatMulInto(b, New(size.m, size.p)), prod)

		bt := b.T() // p x n
		tb := a.MatMulTransB(bt)
		if !tb.ApproxEqual(prod, 1e-12) {
			t.Fatalf("MatMulTransB deviates from MatMul at %dx%dx%d", size.m, size.n, size.p)
		}
		bitwiseEqual(t, "MatMulTransBInto", a.MatMulTransBInto(bt, New(size.m, size.p)), tb)

		at := a.T() // n x m
		ta := at.MatMulTransA(b)
		if !ta.ApproxEqual(prod, 1e-12) {
			t.Fatalf("MatMulTransA deviates from MatMul at %dx%dx%d", size.m, size.n, size.p)
		}
		bitwiseEqual(t, "MatMulTransAInto", at.MatMulTransAInto(b, New(size.m, size.p)), ta)
	}
}

func TestMatMulIntoRejectsAliasedDst(t *testing.T) {
	a := New(3, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("MatMulInto accepted an aliased dst")
		}
	}()
	a.MatMulInto(a, a)
}
