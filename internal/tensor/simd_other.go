//go:build !amd64

package tensor

// Non-amd64 builds have no SIMD fast path; the portable scalar kernels are
// always used. These stubs keep the call sites compiling and, as a safety
// net, implement the same semantics in pure Go.

var simdEnabled = false

func setSIMD(bool) bool { return false }

// SIMDEnabled reports whether the AVX-512 fast paths are active.
func SIMDEnabled() bool { return false }

func x86HasAVX512() bool { return false }

func axpyCols(dst, b, s *float64, k, cols, bStride, sStride int) {
	dstS := unsafeSlice(dst, cols)
	for t := 0; t < k; t++ {
		sv := *offsetPtr(s, t*sStride)
		if sv == 0 {
			continue
		}
		bRow := unsafeSlice(offsetPtr(b, t*bStride), cols)
		for j := range dstS {
			dstS[j] += sv * bRow[j]
		}
	}
}

func vecAdd(dst, src *float64, n int) {
	d, sl := unsafeSlice(dst, n), unsafeSlice(src, n)
	for i := range d {
		d[i] += sl[i]
	}
}

func tanhGradCols(dst, grad, y *float64, n int) {
	d, g, ys := unsafeSlice(dst, n), unsafeSlice(grad, n), unsafeSlice(y, n)
	for i := range d {
		t := 1 - ys[i]*ys[i]
		d[i] += g[i] * t
	}
}

func adamCols(p, grad, m, v *float64, n int, beta1, c1, beta2, c2, bc1, bc2, lr, eps float64) {
	adamScalar(unsafeSlice(p, n), unsafeSlice(grad, n), unsafeSlice(m, n), unsafeSlice(v, n), lr, beta1, beta2, eps, bc1, bc2)
}
