package tensor

import "sync"

// poolBuckets is the number of size classes the pool tracks. Bucket b holds
// matrices whose backing slice has capacity in [2^b, 2^(b+1)); requests above
// the largest class bypass the pool entirely.
const poolBuckets = 26 // up to 2^25 elements ≈ 256 MiB of float64

// Pool recycles Matrix backing storage through size-bucketed free lists. It
// exists to take the allocator and GC out of the training hot loop: forward
// and backward passes churn through thousands of small, identically shaped
// matrices per update, and without reuse the allocator dominates the
// runtime of the simulate/learn loop.
//
// Matrices returned by Get are always fully zeroed, even when recycled, so a
// dirty buffer released by one computation can never leak stale values into
// the next (in particular into accumulating kernels such as MatMulInto).
//
// A Pool is safe for concurrent use; the zero value is ready to use.
// Put-ting a matrix while any reference to it is still live is a caller bug,
// exactly like freeing live memory.
type Pool struct {
	mu   sync.Mutex
	free [poolBuckets][]*Matrix

	// counters for tests and diagnostics (guarded by mu).
	gets, hits int64
}

// NewPool returns an empty pool. Equivalent to new(Pool); provided for
// symmetry with the rest of the package's constructors.
func NewPool() *Pool { return new(Pool) }

// defaultPool backs the package-level Get/Put helpers and is shared by the
// autograd tapes and the nn inference path.
var defaultPool Pool

// DefaultPool returns the process-wide shared pool.
func DefaultPool() *Pool { return &defaultPool }

// Get returns a zeroed rows x cols matrix from the shared default pool.
func Get(rows, cols int) *Matrix { return defaultPool.Get(rows, cols) }

// Put releases m back to the shared default pool.
func Put(m *Matrix) { defaultPool.Put(m) }

// bucketFor returns the smallest bucket whose capacity class (2^b) can hold
// n elements, or poolBuckets when n is too large to pool.
func bucketFor(n int) int {
	b := 0
	for 1<<b < n {
		b++
		if b >= poolBuckets {
			return poolBuckets
		}
	}
	return b
}

// Get returns a zeroed rows x cols matrix, recycling a free buffer of a
// sufficient size class when one is available.
func (p *Pool) Get(rows, cols int) *Matrix {
	m, recycled := p.get(rows, cols)
	if recycled {
		m.Zero() // recycled buffers must never leak stale values
	}
	return m
}

// GetUninit returns a rows x cols matrix whose contents are unspecified: a
// recycled buffer keeps whatever values its previous owner left behind. Only
// callers that overwrite every element before reading any (e.g. the
// transpose scratch in MatMulTransAInto) may use it; everything else goes
// through Get, which zeroes defensively.
func (p *Pool) GetUninit(rows, cols int) *Matrix {
	m, _ := p.get(rows, cols)
	return m
}

func (p *Pool) get(rows, cols int) (m *Matrix, recycled bool) {
	if rows < 0 || cols < 0 {
		return New(rows, cols), false // defer to New's shape panic
	}
	need := rows * cols
	b := bucketFor(need)
	if b >= poolBuckets {
		return New(rows, cols), false
	}
	p.mu.Lock()
	p.gets++
	if n := len(p.free[b]); n > 0 {
		m = p.free[b][n-1]
		p.free[b][n-1] = nil
		p.free[b] = p.free[b][:n-1]
		p.hits++
	}
	p.mu.Unlock()
	if m == nil {
		return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, need, 1<<b)}, false
	}
	m.Rows, m.Cols = rows, cols
	m.Data = m.Data[:need]
	return m, true
}

// Put releases m's backing storage for reuse. Nil matrices and matrices too
// large (or too odd) to pool are dropped silently; the caller must not use m
// afterwards.
func (p *Pool) Put(m *Matrix) {
	if m == nil || cap(m.Data) == 0 {
		return
	}
	// File under the largest class the capacity fully covers, so a later Get
	// from that bucket is guaranteed enough room.
	b := 0
	for b+1 < poolBuckets && 1<<(b+1) <= cap(m.Data) {
		b++
	}
	m.Data = m.Data[:0]
	p.mu.Lock()
	p.free[b] = append(p.free[b], m)
	p.mu.Unlock()
}

// Stats reports how many Get calls the pool has served and how many were
// satisfied by a recycled buffer.
func (p *Pool) Stats() (gets, hits int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.gets, p.hits
}
