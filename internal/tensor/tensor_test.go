package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewShape(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("New(3,4) = %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("New not zero-initialized")
		}
	}
}

func TestNewPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative shape")
		}
	}()
	New(-1, 2)
}

func TestFromSlice(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	if m.At(0, 0) != 1 || m.At(0, 2) != 3 || m.At(1, 0) != 4 || m.At(1, 2) != 6 {
		t.Fatalf("FromSlice layout wrong: %v", m.Data)
	}
}

func TestFromSlicePanicsOnBadLen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice(2, 2, []float64{1, 2, 3})
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows != 3 || m.Cols != 2 || m.At(2, 1) != 6 {
		t.Fatalf("FromRows wrong: %v", m)
	}
	empty := FromRows(nil)
	if empty.Rows != 0 || empty.Cols != 0 {
		t.Fatal("FromRows(nil) should be 0x0")
	}
}

func TestFromRowsRagged(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestVectors(t *testing.T) {
	rv := RowVector([]float64{1, 2, 3})
	cv := ColVector([]float64{1, 2, 3})
	if rv.Rows != 1 || rv.Cols != 3 || cv.Rows != 3 || cv.Cols != 1 {
		t.Fatal("vector constructors wrong shapes")
	}
}

func TestAtSetBounds(t *testing.T) {
	m := New(2, 2)
	m.Set(1, 1, 7)
	if m.At(1, 1) != 7 {
		t.Fatal("Set/At roundtrip failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for OOB At")
		}
	}()
	m.At(2, 0)
}

func TestRowAliases(t *testing.T) {
	m := FromSlice(2, 2, []float64{1, 2, 3, 4})
	r := m.Row(1)
	r[0] = 99
	if m.At(1, 0) != 99 {
		t.Fatal("Row should alias storage")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := FromSlice(1, 2, []float64{1, 2})
	c := m.Clone()
	c.Data[0] = 42
	if m.Data[0] == 42 {
		t.Fatal("Clone should deep copy")
	}
}

func TestAddSubMulDiv(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	b := FromSlice(2, 2, []float64{5, 6, 7, 8})
	if got := a.Add(b); !got.ApproxEqual(FromSlice(2, 2, []float64{6, 8, 10, 12}), 0) {
		t.Fatalf("Add: %v", got)
	}
	if got := b.Sub(a); !got.ApproxEqual(Full(2, 2, 4), 0) {
		t.Fatalf("Sub: %v", got)
	}
	if got := a.MulElem(b); !got.ApproxEqual(FromSlice(2, 2, []float64{5, 12, 21, 32}), 0) {
		t.Fatalf("MulElem: %v", got)
	}
	if got := b.DivElem(a); !got.ApproxEqual(FromSlice(2, 2, []float64{5, 3, 7.0 / 3, 2}), 1e-12) {
		t.Fatalf("DivElem: %v", got)
	}
}

func TestInPlaceOps(t *testing.T) {
	a := FromSlice(1, 3, []float64{1, 2, 3})
	b := FromSlice(1, 3, []float64{10, 20, 30})
	a.AddInPlace(b)
	if !a.ApproxEqual(FromSlice(1, 3, []float64{11, 22, 33}), 0) {
		t.Fatalf("AddInPlace: %v", a)
	}
	a.AddScaledInPlace(b, -1)
	if !a.ApproxEqual(FromSlice(1, 3, []float64{1, 2, 3}), 1e-12) {
		t.Fatalf("AddScaledInPlace: %v", a)
	}
	a.ScaleInPlace(2)
	if !a.ApproxEqual(FromSlice(1, 3, []float64{2, 4, 6}), 0) {
		t.Fatalf("ScaleInPlace: %v", a)
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	New(2, 2).Add(New(2, 3))
}

func TestTranspose(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	want := FromSlice(3, 2, []float64{1, 4, 2, 5, 3, 6})
	if got := m.T(); !got.ApproxEqual(want, 0) {
		t.Fatalf("T: %v", got)
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	want := FromSlice(2, 2, []float64{58, 64, 139, 154})
	if got := a.MatMul(b); !got.ApproxEqual(want, 1e-12) {
		t.Fatalf("MatMul: %v", got)
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := RandNormal(rng, 5, 5, 0, 1)
	if got := m.MatMul(Eye(5)); !got.ApproxEqual(m, 1e-12) {
		t.Fatal("M·I != M")
	}
	if got := Eye(5).MatMul(m); !got.ApproxEqual(m, 1e-12) {
		t.Fatal("I·M != M")
	}
}

func TestMatMulParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Big enough to exceed parallelThreshold.
	a := RandNormal(rng, 80, 100, 0, 1)
	b := RandNormal(rng, 100, 90, 0, 1)
	got := a.MatMul(b)
	want := New(80, 90)
	matmulRange(want, a, b, 0, 80)
	if !got.ApproxEqual(want, 1e-9) {
		t.Fatal("parallel MatMul disagrees with serial kernel")
	}
}

func TestMatMulTransB(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := RandNormal(rng, 4, 6, 0, 1)
	b := RandNormal(rng, 5, 6, 0, 1)
	if got, want := a.MatMulTransB(b), a.MatMul(b.T()); !got.ApproxEqual(want, 1e-10) {
		t.Fatal("MatMulTransB disagrees with explicit transpose")
	}
}

func TestMatMulTransA(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := RandNormal(rng, 6, 4, 0, 1)
	b := RandNormal(rng, 6, 5, 0, 1)
	if got, want := a.MatMulTransA(b), a.T().MatMul(b); !got.ApproxEqual(want, 1e-10) {
		t.Fatal("MatMulTransA disagrees with explicit transpose")
	}
}

func TestMatMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 3).MatMul(New(2, 3))
}

func TestAddRowBroadcast(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := RowVector([]float64{10, 20, 30})
	want := FromSlice(2, 3, []float64{11, 22, 33, 14, 25, 36})
	if got := m.AddRowBroadcast(b); !got.ApproxEqual(want, 0) {
		t.Fatalf("AddRowBroadcast: %v", got)
	}
}

func TestReductions(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	if m.Sum() != 21 {
		t.Fatalf("Sum = %v", m.Sum())
	}
	if m.Mean() != 3.5 {
		t.Fatalf("Mean = %v", m.Mean())
	}
	if m.Max() != 6 || m.Min() != 1 {
		t.Fatalf("Max/Min = %v/%v", m.Max(), m.Min())
	}
	if got := m.SumRows(); !got.ApproxEqual(ColVector([]float64{6, 15}), 0) {
		t.Fatalf("SumRows: %v", got)
	}
	if got := m.SumCols(); !got.ApproxEqual(RowVector([]float64{5, 7, 9}), 0) {
		t.Fatalf("SumCols: %v", got)
	}
}

func TestMeanEmpty(t *testing.T) {
	if New(0, 0).Mean() != 0 {
		t.Fatal("Mean of empty should be 0")
	}
}

func TestNormDot(t *testing.T) {
	a := FromSlice(1, 3, []float64{3, 4, 0})
	if a.Norm2() != 5 {
		t.Fatalf("Norm2 = %v", a.Norm2())
	}
	b := FromSlice(1, 3, []float64{1, 1, 1})
	if a.Dot(b) != 7 {
		t.Fatalf("Dot = %v", a.Dot(b))
	}
}

func TestSoftmaxRows(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 1000, 1000, 1000})
	s := m.SoftmaxRows()
	for i := 0; i < 2; i++ {
		sum := 0.0
		for _, v := range s.Row(i) {
			if v <= 0 || v >= 1 {
				t.Fatalf("softmax value out of (0,1): %v", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("softmax row %d sums to %v", i, sum)
		}
	}
	// Large-magnitude row must not produce NaN (stability).
	if s.HasNaN() {
		t.Fatal("softmax produced NaN on large inputs")
	}
	// Monotonic: larger logit -> larger probability.
	if !(s.At(0, 2) > s.At(0, 1) && s.At(0, 1) > s.At(0, 0)) {
		t.Fatal("softmax not monotone in logits")
	}
}

func TestLogSoftmaxRowsConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := RandNormal(rng, 4, 7, 0, 3)
	ls := m.LogSoftmaxRows()
	sm := m.SoftmaxRows()
	for i := range ls.Data {
		if math.Abs(math.Exp(ls.Data[i])-sm.Data[i]) > 1e-10 {
			t.Fatal("exp(logsoftmax) != softmax")
		}
	}
}

func TestApplyAndScalar(t *testing.T) {
	m := FromSlice(1, 3, []float64{1, 4, 9})
	if got := m.Apply(math.Sqrt); !got.ApproxEqual(FromSlice(1, 3, []float64{1, 2, 3}), 1e-12) {
		t.Fatalf("Apply: %v", got)
	}
	if got := m.AddScalar(1); !got.ApproxEqual(FromSlice(1, 3, []float64{2, 5, 10}), 0) {
		t.Fatalf("AddScalar: %v", got)
	}
	m.ApplyInPlace(func(v float64) float64 { return -v })
	if m.Data[0] != -1 {
		t.Fatal("ApplyInPlace failed")
	}
}

func TestHasNaN(t *testing.T) {
	m := FromSlice(1, 2, []float64{1, math.NaN()})
	if !m.HasNaN() {
		t.Fatal("HasNaN missed NaN")
	}
	m2 := FromSlice(1, 2, []float64{1, math.Inf(1)})
	if !m2.HasNaN() {
		t.Fatal("HasNaN missed Inf")
	}
	if New(2, 2).HasNaN() {
		t.Fatal("HasNaN false positive")
	}
}

func TestStringDoesNotPanic(t *testing.T) {
	_ = New(20, 20).String()
	_ = New(0, 0).String()
}

// --- Property-based tests ---

func randMatrixPair(r *rand.Rand) (*Matrix, *Matrix) {
	rows := 1 + r.Intn(6)
	cols := 1 + r.Intn(6)
	a := RandNormal(r, rows, cols, 0, 10)
	b := RandNormal(r, rows, cols, 0, 10)
	return a, b
}

func TestPropAddCommutative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randMatrixPair(r)
		return a.Add(b).ApproxEqual(b.Add(a), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, _ := randMatrixPair(r)
		return a.T().T().ApproxEqual(a, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropMatMulDistributes(t *testing.T) {
	// A·(B+C) == A·B + A·C
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, m, p := 1+r.Intn(5), 1+r.Intn(5), 1+r.Intn(5)
		a := RandNormal(r, n, m, 0, 2)
		b := RandNormal(r, m, p, 0, 2)
		c := RandNormal(r, m, p, 0, 2)
		lhs := a.MatMul(b.Add(c))
		rhs := a.MatMul(b).Add(a.MatMul(c))
		return lhs.ApproxEqual(rhs, 1e-8)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropMatMulTransposeIdentity(t *testing.T) {
	// (A·B)ᵀ == Bᵀ·Aᵀ
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, m, p := 1+r.Intn(5), 1+r.Intn(5), 1+r.Intn(5)
		a := RandNormal(r, n, m, 0, 2)
		b := RandNormal(r, m, p, 0, 2)
		return a.MatMul(b).T().ApproxEqual(b.T().MatMul(a.T()), 1e-8)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropSoftmaxRowsSumToOne(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, _ := randMatrixPair(r)
		s := a.SoftmaxRows()
		for i := 0; i < s.Rows; i++ {
			sum := 0.0
			for _, v := range s.Row(i) {
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropScaleLinear(t *testing.T) {
	f := func(seed int64, s float64) bool {
		if math.IsNaN(s) || math.IsInf(s, 0) || math.Abs(s) > 1e6 {
			return true
		}
		r := rand.New(rand.NewSource(seed))
		a, b := randMatrixPair(r)
		lhs := a.Add(b).Scale(s)
		rhs := a.Scale(s).Add(b.Scale(s))
		return lhs.ApproxEqual(rhs, 1e-6*(1+math.Abs(s)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestXavierBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := XavierUniform(rng, 30, 50)
	a := math.Sqrt(6.0 / 80.0)
	for _, v := range m.Data {
		if v < -a || v >= a {
			t.Fatalf("Xavier value %v outside [-%v,%v)", v, a, a)
		}
	}
}

func TestHeNormalStats(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := HeNormal(rng, 100, 200)
	mean := m.Mean()
	if math.Abs(mean) > 0.01 {
		t.Fatalf("He mean too large: %v", mean)
	}
	varSum := 0.0
	for _, v := range m.Data {
		varSum += (v - mean) * (v - mean)
	}
	variance := varSum / float64(len(m.Data))
	want := 2.0 / 200.0
	if math.Abs(variance-want) > 0.002 {
		t.Fatalf("He variance %v, want ~%v", variance, want)
	}
}

func TestOrthogonalRows(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := OrthogonalScaled(rng, 4, 16, 1.0)
	for i := 0; i < 4; i++ {
		ri := RowVector(m.Row(i))
		if math.Abs(ri.Norm2()-1) > 1e-9 {
			t.Fatalf("row %d norm %v", i, ri.Norm2())
		}
		for j := 0; j < i; j++ {
			rj := RowVector(m.Row(j))
			if math.Abs(ri.Dot(rj)) > 1e-9 {
				t.Fatalf("rows %d,%d not orthogonal: %v", i, j, ri.Dot(rj))
			}
		}
	}
}

func TestRandUniformRange(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := RandUniform(rng, 10, 10, -2, 3)
	if m.Min() < -2 || m.Max() >= 3 {
		t.Fatalf("uniform out of range: [%v,%v]", m.Min(), m.Max())
	}
}

func BenchmarkMatMul64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := RandNormal(rng, 64, 538, 0, 1)
	w := RandNormal(rng, 538, 64, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.MatMul(w)
	}
}

func BenchmarkMatMulLargeParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := RandNormal(rng, 256, 256, 0, 1)
	w := RandNormal(rng, 256, 256, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.MatMul(w)
	}
}
