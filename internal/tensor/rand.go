package tensor

import (
	"math"
	"math/rand"
)

// RandUniform returns a rows x cols matrix with elements drawn uniformly
// from [lo, hi) using rng.
func RandUniform(rng *rand.Rand, rows, cols int, lo, hi float64) *Matrix {
	m := New(rows, cols)
	span := hi - lo
	for i := range m.Data {
		m.Data[i] = lo + span*rng.Float64()
	}
	return m
}

// RandNormal returns a rows x cols matrix with elements drawn from
// N(mean, std²) using rng.
func RandNormal(rng *rand.Rand, rows, cols int, mean, std float64) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = mean + std*rng.NormFloat64()
	}
	return m
}

// XavierUniform returns a fanOut x fanIn weight matrix initialized with the
// Glorot/Xavier uniform scheme: U(-a, a) with a = sqrt(6/(fanIn+fanOut)).
// The orientation (rows = fanOut) matches nn.Linear's weight layout.
func XavierUniform(rng *rand.Rand, fanOut, fanIn int) *Matrix {
	a := math.Sqrt(6.0 / float64(fanIn+fanOut))
	return RandUniform(rng, fanOut, fanIn, -a, a)
}

// HeNormal returns a fanOut x fanIn weight matrix initialized with the
// He/Kaiming normal scheme: N(0, 2/fanIn), suited to ReLU activations.
func HeNormal(rng *rand.Rand, fanOut, fanIn int) *Matrix {
	return RandNormal(rng, fanOut, fanIn, 0, math.Sqrt(2.0/float64(fanIn)))
}

// OrthogonalScaled returns a fanOut x fanIn matrix whose rows are
// orthonormalized via Gram-Schmidt over Gaussian draws, scaled by gain.
// Orthogonal initialization is the standard choice for PPO policy layers.
func OrthogonalScaled(rng *rand.Rand, fanOut, fanIn int, gain float64) *Matrix {
	m := RandNormal(rng, fanOut, fanIn, 0, 1)
	// Gram-Schmidt across rows (or as many as fit in the row space).
	for i := 0; i < fanOut; i++ {
		ri := m.Row(i)
		for j := 0; j < i && j < fanIn; j++ {
			rj := m.Row(j)
			dot := 0.0
			for k := range ri {
				dot += ri[k] * rj[k]
			}
			for k := range ri {
				ri[k] -= dot * rj[k]
			}
		}
		norm := 0.0
		for _, v := range ri {
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm < 1e-12 {
			// Degenerate row (possible when fanOut > fanIn); re-draw it.
			for k := range ri {
				ri[k] = rng.NormFloat64()
			}
			norm = 0
			for _, v := range ri {
				norm += v * v
			}
			norm = math.Sqrt(norm)
		}
		inv := gain / norm
		for k := range ri {
			ri[k] *= inv
		}
	}
	return m
}
