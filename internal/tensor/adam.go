package tensor

import (
	"math"
	"unsafe"
)

// AdamUpdate applies one element-wise Adam step over flat parameter storage:
//
//	m = beta1*m + (1-beta1)*g
//	v = beta2*v + (1-beta2)*g*g
//	p -= lr * (m/bc1) / (sqrt(v/bc2) + eps)
//
// bc1 and bc2 are the bias-correction terms 1-beta^t, computed once per step
// by the caller. All four slices must have the same length.
//
// The gradient g is consumed and cleared: every element is zero on return,
// folded into the same pass over the data so the caller skips a separate
// zeroing sweep before the next backward accumulation. The AVX-512 fast
// path transcribes the scalar loop's exact float op order using only
// correctly-rounded instructions, so results are bitwise identical either
// way (pinned by TestAdamUpdateSIMDMatchesScalar).
func AdamUpdate(p, g, m, v []float64, lr, beta1, beta2, eps, bc1, bc2 float64) {
	n := len(p)
	if len(g) != n || len(m) != n || len(v) != n {
		panic("tensor: AdamUpdate slice length mismatch")
	}
	i := 0
	if simdEnabled {
		if n8 := n &^ 7; n8 > 0 {
			adamCols(&p[0], &g[0], &m[0], &v[0], n8, beta1, 1-beta1, beta2, 1-beta2, bc1, bc2, lr, eps)
			i = n8
		}
	}
	adamScalar(p[i:], g[i:], m[i:], v[i:], lr, beta1, beta2, eps, bc1, bc2)
}

// adamScalar is the portable reference Adam kernel; the assembly fast path
// must match it bitwise. Like the fast path, it clears g as it goes.
func adamScalar(p, g, m, v []float64, lr, beta1, beta2, eps, bc1, bc2 float64) {
	c1, c2 := 1-beta1, 1-beta2
	for j, gv := range g {
		m[j] = beta1*m[j] + c1*gv
		v[j] = beta2*v[j] + c2*gv*gv
		g[j] = 0
		mhat := m[j] / bc1
		vhat := v[j] / bc2
		p[j] -= lr * mhat / (math.Sqrt(vhat) + eps)
	}
}

// unsafeSlice reconstructs a []float64 of length n from a base pointer; used
// only by the pure-Go SIMD stand-ins, which receive pointer+stride arguments
// shaped for the assembly kernels.
func unsafeSlice(p *float64, n int) []float64 {
	return unsafe.Slice(p, n)
}

// offsetPtr returns p advanced by n elements.
func offsetPtr(p *float64, n int) *float64 {
	return (*float64)(unsafe.Add(unsafe.Pointer(p), uintptr(n)*unsafe.Sizeof(float64(0))))
}
