// Package workflow extends the scheduling environment to DAG-structured
// jobs — the paper's stated future work ("we plan to further explore the
// application of the proposed algorithm on workflow datasets with
// dependencies", §6).
//
// A Workflow is a DAG of stages; a stage becomes schedulable only when all
// of its dependencies have finished executing. The Env wrapper drives a
// cloudsim.Env, injecting stages as they are released, and implements
// rl.Environment so the PPO / dual-critic agents (and the whole federated
// stack) train on workflow workloads unchanged.
package workflow

import (
	"fmt"
	"math/rand"

	"repro/internal/cloudsim"
	"repro/internal/workload"
)

// Stage is one node of a workflow DAG. Deps lists the indices of stages
// that must complete before this stage can be scheduled; a valid workflow
// is topologically indexed (every dependency index is smaller than the
// stage's own index), which rules out cycles by construction.
type Stage struct {
	CPU      int
	Mem      float64
	Duration int
	Deps     []int
}

// Workflow is a DAG-structured job arriving as a unit.
type Workflow struct {
	ID      int
	Arrival int
	Stages  []Stage
}

// Validate checks topological indexing and stage sanity.
func (w *Workflow) Validate() error {
	if len(w.Stages) == 0 {
		return fmt.Errorf("workflow %d: no stages", w.ID)
	}
	for i, s := range w.Stages {
		if s.CPU < 1 || s.Mem <= 0 || s.Duration < 1 {
			return fmt.Errorf("workflow %d stage %d: invalid resources (%d cpu, %v mem, %d dur)",
				w.ID, i, s.CPU, s.Mem, s.Duration)
		}
		for _, d := range s.Deps {
			if d < 0 || d >= i {
				return fmt.Errorf("workflow %d stage %d: dependency %d not topologically ordered", w.ID, i, d)
			}
		}
	}
	return nil
}

// NumStages returns the stage count.
func (w *Workflow) NumStages() int { return len(w.Stages) }

// CriticalPath returns the length (total duration) of the longest
// dependency chain — the minimum possible makespan of the workflow on an
// unbounded cluster.
func (w *Workflow) CriticalPath() int {
	finish := make([]int, len(w.Stages))
	for i, s := range w.Stages {
		start := 0
		for _, d := range s.Deps {
			if finish[d] > start {
				start = finish[d]
			}
		}
		finish[i] = start + s.Duration
	}
	longest := 0
	for _, f := range finish {
		if f > longest {
			longest = f
		}
	}
	return longest
}

// Roots returns the indices of stages with no dependencies.
func (w *Workflow) Roots() []int {
	var roots []int
	for i, s := range w.Stages {
		if len(s.Deps) == 0 {
			roots = append(roots, i)
		}
	}
	return roots
}

// Shape selects the generator's DAG topology.
type Shape int

const (
	// ShapeChain is a linear pipeline s0 → s1 → … → sn.
	ShapeChain Shape = iota
	// ShapeForkJoin is one source fanning out to parallel branches that
	// join into one sink (map-reduce style).
	ShapeForkJoin
	// ShapeRandomDAG wires each stage to 1–3 random earlier stages.
	ShapeRandomDAG
)

// String names the shape.
func (s Shape) String() string {
	switch s {
	case ShapeChain:
		return "chain"
	case ShapeForkJoin:
		return "fork-join"
	case ShapeRandomDAG:
		return "random-dag"
	default:
		return fmt.Sprintf("Shape(%d)", int(s))
	}
}

// GenConfig parameterizes the workflow generator. Stage resource demands
// are drawn from a workload dataset model so workflow experiments inherit
// the same cross-client heterogeneity as the task experiments.
type GenConfig struct {
	Dataset    workload.DatasetID
	Shape      Shape
	MinStages  int
	MaxStages  int
	ArrivalGap int // mean slots between workflow arrivals (geometric)
}

// DefaultGenConfig returns a mid-size fork-join generator over the given
// dataset model.
func DefaultGenConfig(dataset workload.DatasetID) GenConfig {
	return GenConfig{Dataset: dataset, Shape: ShapeForkJoin, MinStages: 3, MaxStages: 8, ArrivalGap: 20}
}

// Generate samples n workflows with non-decreasing arrivals.
func Generate(rng *rand.Rand, cfg GenConfig, n int) []Workflow {
	if cfg.MinStages < 1 || cfg.MaxStages < cfg.MinStages {
		panic(fmt.Sprintf("workflow: invalid stage bounds [%d,%d]", cfg.MinStages, cfg.MaxStages))
	}
	if cfg.ArrivalGap < 1 {
		cfg.ArrivalGap = 1
	}
	model := workload.Lookup(cfg.Dataset)
	// Draw per-stage resource templates from the dataset model.
	templates := model.Sample(rng, n*cfg.MaxStages)
	ti := 0
	nextTemplate := func() workload.Task {
		t := templates[ti%len(templates)]
		ti++
		return t
	}

	out := make([]Workflow, 0, n)
	arrival := 0
	for id := 0; id < n; id++ {
		nStages := cfg.MinStages + rng.Intn(cfg.MaxStages-cfg.MinStages+1)
		w := Workflow{ID: id, Arrival: arrival}
		for i := 0; i < nStages; i++ {
			t := nextTemplate()
			s := Stage{CPU: t.CPU, Mem: t.Mem, Duration: t.Duration}
			switch cfg.Shape {
			case ShapeChain:
				if i > 0 {
					s.Deps = []int{i - 1}
				}
			case ShapeForkJoin:
				switch {
				case i == 0:
					// source
				case i == nStages-1 && nStages > 2:
					// sink joins every branch
					for b := 1; b < nStages-1; b++ {
						s.Deps = append(s.Deps, b)
					}
				default:
					s.Deps = []int{0}
				}
			case ShapeRandomDAG:
				if i > 0 {
					nDeps := 1 + rng.Intn(3)
					if nDeps > i {
						nDeps = i
					}
					seen := map[int]bool{}
					for len(s.Deps) < nDeps {
						d := rng.Intn(i)
						if !seen[d] {
							seen[d] = true
							s.Deps = append(s.Deps, d)
						}
					}
				}
			default:
				panic("workflow: unknown shape " + cfg.Shape.String())
			}
			w.Stages = append(w.Stages, s)
		}
		if err := w.Validate(); err != nil {
			panic("workflow: generator produced invalid workflow: " + err.Error())
		}
		out = append(out, w)
		// Geometric-ish inter-arrival gap with the configured mean.
		gap := 1
		for rng.Float64() > 1.0/float64(cfg.ArrivalGap) {
			gap++
			if gap > 10*cfg.ArrivalGap {
				break
			}
		}
		arrival += gap
	}
	return out
}

// ClampToVMs shrinks stage demands so every stage fits at least one VM of
// the cluster (mirrors cloudsim.ClampTasks: a stage that fits no VM would
// block the FIFO queue forever). A stage that already fits some VM is
// unchanged; otherwise it is clamped against the single VM preserving the
// largest fraction of its request.
func ClampToVMs(wfs []Workflow, vms []cloudsim.VMSpec) []Workflow {
	out := make([]Workflow, len(wfs))
	for i, w := range wfs {
		nw := w
		nw.Stages = append([]Stage(nil), w.Stages...)
		for j := range nw.Stages {
			s := &nw.Stages[j]
			if stageFitsAny(*s, vms) {
				continue
			}
			best, bestScore := 0, -1.0
			for vi, v := range vms {
				cpuFrac := 1.0
				if s.CPU > v.CPU {
					cpuFrac = float64(v.CPU) / float64(s.CPU)
				}
				memFrac := 1.0
				if s.Mem > v.Mem {
					memFrac = v.Mem / s.Mem
				}
				if score := cpuFrac * memFrac; score > bestScore {
					best, bestScore = vi, score
				}
			}
			v := vms[best]
			if s.CPU > v.CPU {
				s.CPU = v.CPU
			}
			if s.Mem > v.Mem {
				s.Mem = v.Mem
			}
		}
		out[i] = nw
	}
	return out
}

func stageFitsAny(s Stage, vms []cloudsim.VMSpec) bool {
	for _, v := range vms {
		if s.CPU <= v.CPU && s.Mem <= v.Mem {
			return true
		}
	}
	return false
}
