package workflow

import (
	"math/rand"
	"testing"

	"repro/internal/cloudsim"
	"repro/internal/fed"
	"repro/internal/rl"
	"repro/internal/workload"
)

func newWorkflowClient(t *testing.T, id int, dataset workload.DatasetID, seed int64) *fed.Client {
	t.Helper()
	cfg := cloudsim.DefaultConfig([]cloudsim.VMSpec{{CPU: 4, Mem: 16}, {CPU: 8, Mem: 32}})
	cfg.MaxSteps = 400
	gen := DefaultGenConfig(dataset)
	gen.MaxStages = 4
	rng := rand.New(rand.NewSource(seed))
	wfs := ClampToVMs(Generate(rng, gen, 3), cfg.VMs)
	agent := rl.NewDualCriticPPO(
		rl.DefaultConfig(cloudsim.StateDim(cfg), cfg.PadVMs+1),
		rand.New(rand.NewSource(seed*13+1)))
	c, err := NewFederatedClient(id, dataset.String(), cfg, wfs, agent)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFederatedWorkflowTraining(t *testing.T) {
	// PFRL-DM over clients that schedule workflow DAGs: the federation
	// machinery (public-critic transport, attention aggregation) must run
	// unchanged on the workflow environment.
	clients := []*fed.Client{
		newWorkflowClient(t, 0, workload.Google, 1),
		newWorkflowClient(t, 1, workload.K8S, 2),
		newWorkflowClient(t, 2, workload.KVM2019, 3),
	}
	f, err := fed.New(clients, fed.PublicCriticTransport{}, fed.NewAttention(4),
		fed.Options{K: 2, CommEvery: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.RunEpisodes(3); err != nil {
		t.Fatal(err)
	}
	if f.Rounds != 3 {
		t.Fatalf("rounds %d", f.Rounds)
	}
	for _, c := range clients {
		if len(c.Rewards) != 3 {
			t.Fatalf("client %d trained %d episodes", c.ID, len(c.Rewards))
		}
		if c.LastBuf.Len() == 0 {
			t.Fatalf("client %d has no trajectories", c.ID)
		}
	}
	if f.Comm().Total() == 0 {
		t.Fatal("no communication recorded")
	}
}

func TestEvaluateWorkflows(t *testing.T) {
	cfg := cloudsim.DefaultConfig([]cloudsim.VMSpec{{CPU: 4, Mem: 16}, {CPU: 8, Mem: 32}})
	cfg.MaxSteps = 400
	rng := rand.New(rand.NewSource(6))
	gen := DefaultGenConfig(workload.Google)
	gen.MaxStages = 4
	wfs := ClampToVMs(Generate(rng, gen, 3), cfg.VMs)
	agent := rl.NewPPO(rl.DefaultConfig(cloudsim.StateDim(cfg), cfg.PadVMs+1),
		rand.New(rand.NewSource(7)))
	recs, m, err := EvaluateWorkflows(cfg, wfs, agent)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("workflows completed %d/3", len(recs))
	}
	if m.Completed != m.Total {
		t.Fatalf("stages completed %d/%d", m.Completed, m.Total)
	}
}

func TestEpisodeAdapterBegin(t *testing.T) {
	cfg := cloudsim.DefaultConfig([]cloudsim.VMSpec{{CPU: 4, Mem: 16}})
	wfs := []Workflow{chainWorkflow(0, 0, 1, 1)}
	env, err := NewEnv(cfg, wfs)
	if err != nil {
		t.Fatal(err)
	}
	a := NewEpisodeAdapter(env, wfs)
	env.Step(0)
	a.Begin()
	if env.Inner().Now() != 0 || len(env.Inner().Records()) != 0 {
		t.Fatal("Begin did not restart the episode")
	}
}
