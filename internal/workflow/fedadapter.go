package workflow

import (
	"repro/internal/cloudsim"
	"repro/internal/fed"
	"repro/internal/rl"
)

// EpisodeAdapter makes a workflow environment trainable inside a federated
// client (fed.EpisodeEnv): Begin restarts the episode from the client's
// fixed workflow set.
type EpisodeAdapter struct {
	*Env
	wfs []Workflow
}

// NewEpisodeAdapter wraps env with its training workflow set.
func NewEpisodeAdapter(env *Env, wfs []Workflow) *EpisodeAdapter {
	return &EpisodeAdapter{Env: env, wfs: wfs}
}

// Begin implements fed.EpisodeEnv.
func (a *EpisodeAdapter) Begin() { a.Env.Reset(a.wfs) }

// NewFederatedClient builds a fed.Client that trains on workflow DAGs
// instead of flat task sets — federated learning of workflow schedulers,
// the combination of the paper's framework with its stated future work.
// The returned client's Evaluate method is not meaningful for workflows;
// use EvaluateWorkflows instead.
func NewFederatedClient(id int, name string, cfg cloudsim.Config, wfs []Workflow, agent rl.Agent) (*fed.Client, error) {
	env, err := NewEnv(cfg, wfs)
	if err != nil {
		return nil, err
	}
	c, err := fed.NewClient(id, name, cfg, nil, agent)
	if err != nil {
		return nil, err
	}
	c.TrainEnv = NewEpisodeAdapter(env, wfs)
	return c, nil
}

// EvaluateWorkflows runs one greedy (feasibility-guarded) episode over the
// given workflow set and returns the per-workflow records and stage
// metrics.
func EvaluateWorkflows(cfg cloudsim.Config, wfs []Workflow, agent rl.MaskedAgent) ([]WorkflowRecord, cloudsim.Metrics, error) {
	env, err := NewEnv(cfg, wfs)
	if err != nil {
		return nil, cloudsim.Metrics{}, err
	}
	state := env.Observe(nil)
	for !env.Done() {
		env.Step(agent.GreedyMaskedAction(state, env.FeasibleActions()))
		if !env.Done() {
			state = env.Observe(state)
		}
	}
	env.Drain()
	return env.WorkflowRecords(), env.Metrics(), nil
}
