package workflow

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cloudsim"
	"repro/internal/rl"
	"repro/internal/workload"
)

func chainWorkflow(id, arrival int, durations ...int) Workflow {
	w := Workflow{ID: id, Arrival: arrival}
	for i, d := range durations {
		s := Stage{CPU: 1, Mem: 1, Duration: d}
		if i > 0 {
			s.Deps = []int{i - 1}
		}
		w.Stages = append(w.Stages, s)
	}
	return w
}

func TestValidate(t *testing.T) {
	good := chainWorkflow(0, 0, 1, 2, 3)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Workflow{
		{ID: 1},
		{ID: 2, Stages: []Stage{{CPU: 0, Mem: 1, Duration: 1}}},
		{ID: 3, Stages: []Stage{{CPU: 1, Mem: 1, Duration: 1}, {CPU: 1, Mem: 1, Duration: 1, Deps: []int{1}}}},
		{ID: 4, Stages: []Stage{{CPU: 1, Mem: 1, Duration: 1, Deps: []int{0}}}},
	}
	for _, w := range bad {
		if err := w.Validate(); err == nil {
			t.Errorf("workflow %d: expected validation error", w.ID)
		}
	}
}

func TestCriticalPath(t *testing.T) {
	chain := chainWorkflow(0, 0, 2, 3, 4)
	if got := chain.CriticalPath(); got != 9 {
		t.Fatalf("chain critical path %d, want 9", got)
	}
	// Fork-join: source(1) -> {a(5), b(2)} -> sink(1): critical = 1+5+1.
	fj := Workflow{Stages: []Stage{
		{CPU: 1, Mem: 1, Duration: 1},
		{CPU: 1, Mem: 1, Duration: 5, Deps: []int{0}},
		{CPU: 1, Mem: 1, Duration: 2, Deps: []int{0}},
		{CPU: 1, Mem: 1, Duration: 1, Deps: []int{1, 2}},
	}}
	if got := fj.CriticalPath(); got != 7 {
		t.Fatalf("fork-join critical path %d, want 7", got)
	}
}

func TestRoots(t *testing.T) {
	fj := Workflow{Stages: []Stage{
		{CPU: 1, Mem: 1, Duration: 1},
		{CPU: 1, Mem: 1, Duration: 1},
		{CPU: 1, Mem: 1, Duration: 1, Deps: []int{0, 1}},
	}}
	roots := fj.Roots()
	if len(roots) != 2 || roots[0] != 0 || roots[1] != 1 {
		t.Fatalf("roots %v", roots)
	}
}

func TestGenerateShapes(t *testing.T) {
	for _, shape := range []Shape{ShapeChain, ShapeForkJoin, ShapeRandomDAG} {
		rng := rand.New(rand.NewSource(int64(shape) + 1))
		cfg := DefaultGenConfig(workload.Google)
		cfg.Shape = shape
		wfs := Generate(rng, cfg, 20)
		if len(wfs) != 20 {
			t.Fatalf("%v: generated %d", shape, len(wfs))
		}
		prev := -1
		for _, w := range wfs {
			if err := w.Validate(); err != nil {
				t.Fatalf("%v: %v", shape, err)
			}
			if w.Arrival <= prev {
				t.Fatalf("%v: arrivals not strictly increasing", shape)
			}
			prev = w.Arrival
			if w.NumStages() < cfg.MinStages || w.NumStages() > cfg.MaxStages {
				t.Fatalf("%v: stage count %d outside bounds", shape, w.NumStages())
			}
			if shape == ShapeChain {
				for i := 1; i < len(w.Stages); i++ {
					if len(w.Stages[i].Deps) != 1 || w.Stages[i].Deps[0] != i-1 {
						t.Fatalf("chain stage %d deps %v", i, w.Stages[i].Deps)
					}
				}
			}
		}
	}
}

func TestGenerateInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Generate(rand.New(rand.NewSource(1)), GenConfig{MinStages: 3, MaxStages: 2}, 1)
}

func TestClampToVMs(t *testing.T) {
	vms := []cloudsim.VMSpec{{CPU: 4, Mem: 8}}
	wfs := []Workflow{{ID: 0, Stages: []Stage{{CPU: 16, Mem: 32, Duration: 1}}}}
	out := ClampToVMs(wfs, vms)
	if out[0].Stages[0].CPU != 4 || out[0].Stages[0].Mem != 8 {
		t.Fatalf("clamp wrong: %+v", out[0].Stages[0])
	}
	if wfs[0].Stages[0].CPU != 16 {
		t.Fatal("input mutated")
	}
}

func envFor(t *testing.T, wfs []Workflow) *Env {
	t.Helper()
	cfg := cloudsim.DefaultConfig([]cloudsim.VMSpec{{CPU: 4, Mem: 16}, {CPU: 8, Mem: 32}})
	env, err := NewEnv(cfg, ClampToVMs(wfs, cfg.VMs))
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestEnvRespectsDependencies(t *testing.T) {
	// A 2-stage chain: stage 1 must not be schedulable before stage 0
	// finishes, even with idle VMs.
	env := envFor(t, []Workflow{chainWorkflow(0, 0, 3, 2)})
	if env.Inner().QueueLen() != 1 {
		t.Fatalf("only the root should be queued, got %d", env.Inner().QueueLen())
	}
	env.Step(0) // place stage 0 at t=0, finishes at t=3
	if env.Inner().QueueLen() != 0 {
		t.Fatal("stage 1 must not be released while stage 0 runs")
	}
	// Wait until the dependency finishes.
	for env.Inner().Now() < 3 {
		env.Step(env.WaitAction())
	}
	if env.Inner().QueueLen() != 1 {
		t.Fatalf("stage 1 should be released at t=3, queue=%d", env.Inner().QueueLen())
	}
	env.Step(0)
	if !env.Done() {
		t.Fatal("all stages placed; episode should end")
	}
	env.Drain()
	recs := env.WorkflowRecords()
	if len(recs) != 1 {
		t.Fatalf("workflow records %d", len(recs))
	}
	// Chain 3+2 starting at 0 with instant placements: finish at 5.
	if recs[0].Finish != 5 || recs[0].Response() != 5 {
		t.Fatalf("workflow finish %d response %d, want 5/5", recs[0].Finish, recs[0].Response())
	}
	if recs[0].Stretch() != 1.0 {
		t.Fatalf("uncontended chain stretch %v, want 1", recs[0].Stretch())
	}
}

func TestEnvForkJoinParallelism(t *testing.T) {
	// source(1) -> {a(4), b(4)} -> sink(1). With two VMs the branches run
	// in parallel: finish = 1 + 4 + 1 = 6 with eager placement.
	fj := Workflow{ID: 0, Stages: []Stage{
		{CPU: 2, Mem: 4, Duration: 1},
		{CPU: 2, Mem: 4, Duration: 4, Deps: []int{0}},
		{CPU: 2, Mem: 4, Duration: 4, Deps: []int{0}},
		{CPU: 2, Mem: 4, Duration: 1, Deps: []int{1, 2}},
	}}
	env := envFor(t, []Workflow{fj})
	policy := cloudsim.FirstFit{}
	for !env.Done() {
		// Use the inner env for the heuristic's introspection.
		env.Step(policy.SelectAction(env.Inner()))
	}
	env.Drain()
	recs := env.WorkflowRecords()
	if len(recs) != 1 {
		t.Fatalf("records %d", len(recs))
	}
	if recs[0].Finish != 6 {
		t.Fatalf("fork-join finish %d, want 6 (parallel branches)", recs[0].Finish)
	}
}

func TestEnvLateArrival(t *testing.T) {
	env := envFor(t, []Workflow{chainWorkflow(0, 4, 1)})
	if env.Inner().QueueLen() != 0 {
		t.Fatal("workflow must not be admitted before its arrival")
	}
	for env.Inner().Now() < 4 {
		env.Step(env.WaitAction())
	}
	if env.Inner().QueueLen() != 1 {
		t.Fatal("workflow should be admitted at its arrival slot")
	}
}

func TestEnvMultipleWorkflowsComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := DefaultGenConfig(workload.Google)
	cfg.MaxStages = 5
	wfs := Generate(rng, cfg, 8)
	env := envFor(t, wfs)
	policy := cloudsim.FirstFit{}
	for !env.Done() {
		env.Step(policy.SelectAction(env.Inner()))
	}
	env.Drain()
	recs := env.WorkflowRecords()
	if len(recs) != len(wfs) {
		t.Fatalf("completed %d of %d workflows", len(recs), len(wfs))
	}
	for _, r := range recs {
		if r.Response() < r.Critical {
			t.Fatalf("workflow %d response %d below critical path %d", r.ID, r.Response(), r.Critical)
		}
		if r.Stretch() < 1 {
			t.Fatalf("stretch %v < 1", r.Stretch())
		}
	}
	m := env.Metrics()
	if m.Completed != env.TotalStages() {
		t.Fatalf("stage completion %d/%d", m.Completed, env.TotalStages())
	}
}

func TestEnvImplementsRLEnvironment(t *testing.T) {
	var _ rl.Environment = (*Env)(nil)
}

func TestPPOTrainsOnWorkflows(t *testing.T) {
	// End to end: a PPO agent can train on the workflow environment
	// through the standard rollout loop.
	rng := rand.New(rand.NewSource(8))
	cfg := DefaultGenConfig(workload.K8S)
	cfg.MaxStages = 4
	wfs := Generate(rng, cfg, 5)
	env := envFor(t, wfs)
	agent := rl.NewPPO(rl.DefaultConfig(env.StateDim(), env.NumActions()), rand.New(rand.NewSource(9)))
	for ep := 0; ep < 3; ep++ {
		env.Reset(ClampToVMs(wfs, env.Inner().Config().VMs))
		var buf rl.Buffer
		rl.CollectEpisode(env, agent, &buf)
		if buf.Len() == 0 {
			t.Fatal("no transitions collected")
		}
		agent.Update(&buf)
	}
}

func TestEnvResetRestoresState(t *testing.T) {
	wfs := []Workflow{chainWorkflow(0, 0, 2, 2)}
	env := envFor(t, wfs)
	env.Step(0)
	env.Reset(ClampToVMs(wfs, env.Inner().Config().VMs))
	if env.Inner().Now() != 0 || env.Inner().QueueLen() != 1 {
		t.Fatal("Reset did not restore the initial release state")
	}
	if env.Done() {
		t.Fatal("fresh episode should not be done")
	}
}

func TestPropGeneratedDAGsScheduleable(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := GenConfig{
			Dataset:    workload.AllDatasets()[int(uint64(seed)%10)],
			Shape:      Shape(int(uint64(seed) % 3)),
			MinStages:  2,
			MaxStages:  5,
			ArrivalGap: 5,
		}
		wfs := Generate(rng, cfg, 4)
		vms := []cloudsim.VMSpec{{CPU: 8, Mem: 64}, {CPU: 16, Mem: 128}}
		envCfg := cloudsim.DefaultConfig(vms)
		envCfg.MaxSteps = 100000
		env, err := NewEnv(envCfg, ClampToVMs(wfs, vms))
		if err != nil {
			return false
		}
		policy := cloudsim.FirstFit{}
		for !env.Done() {
			env.Step(policy.SelectAction(env.Inner()))
		}
		env.Drain()
		return len(env.WorkflowRecords()) == len(wfs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestShapeString(t *testing.T) {
	if ShapeChain.String() != "chain" || ShapeForkJoin.String() != "fork-join" ||
		ShapeRandomDAG.String() != "random-dag" {
		t.Fatal("shape names wrong")
	}
}
