package workflow

import (
	"fmt"
	"sort"

	"repro/internal/cloudsim"
	"repro/internal/workload"
)

// Env schedules workflow DAGs on a cloudsim cluster. It implements
// rl.Environment: the agents see exactly the same observation/action/reward
// interface as the flat-task environment, but a stage only enters the
// waiting queue once all of its dependencies have finished executing.
type Env struct {
	inner *cloudsim.Env
	cfg   cloudsim.Config
	wfs   []Workflow

	// Global stage ids: gid = offset[wf] + stage index.
	offset []int
	total  int

	// DAG bookkeeping.
	indegree  []int   // unmet dependencies per gid
	succs     [][]int // gid -> dependent gids
	released  []bool
	completed []bool
	admitted  []bool // per workflow: roots injected

	// Placed-but-unfinished stages, ordered by finish slot.
	outstanding []placedStage
	processed   int // prefix of inner.Records() already scanned
}

type placedStage struct {
	gid    int
	finish int
}

// NewEnv builds a workflow environment. The configuration is the same as
// cloudsim's; stage demands should already fit the cluster (see ClampToVMs).
func NewEnv(cfg cloudsim.Config, wfs []Workflow) (*Env, error) {
	total := 0
	for i := range wfs {
		if err := wfs[i].Validate(); err != nil {
			return nil, err
		}
		total += wfs[i].NumStages()
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 50*total + 1000
	}
	e := &Env{cfg: cfg}
	inner, err := cloudsim.NewEnv(cfg, nil)
	if err != nil {
		return nil, err
	}
	e.inner = inner
	e.Reset(wfs)
	return e, nil
}

// Reset reinitializes the environment with a new workflow set.
func (e *Env) Reset(wfs []Workflow) {
	e.wfs = wfs
	e.offset = make([]int, len(wfs))
	e.total = 0
	for i := range wfs {
		e.offset[i] = e.total
		e.total += wfs[i].NumStages()
	}
	e.indegree = make([]int, e.total)
	e.succs = make([][]int, e.total)
	for wi := range wfs {
		for si, s := range wfs[wi].Stages {
			gid := e.offset[wi] + si
			e.indegree[gid] = len(s.Deps)
			for _, d := range s.Deps {
				dep := e.offset[wi] + d
				e.succs[dep] = append(e.succs[dep], gid)
			}
		}
	}
	e.released = make([]bool, e.total)
	e.completed = make([]bool, e.total)
	e.admitted = make([]bool, len(wfs))
	e.outstanding = e.outstanding[:0]
	e.processed = 0

	e.inner.Reset(nil)
	e.inner.ExpectTotal(e.total)
	e.sync()
}

// gidToStage resolves a global stage id.
func (e *Env) gidToStage(gid int) (wf, stage int) {
	wf = sort.Search(len(e.offset), func(i int) bool { return e.offset[i] > gid }) - 1
	return wf, gid - e.offset[wf]
}

// sync releases everything releasable at the current slot: workflows whose
// arrival has come (roots) and stages whose dependencies have finished.
func (e *Env) sync() {
	now := e.inner.Now()
	// Collect newly placed stages from the inner records.
	recs := e.inner.Records()
	for ; e.processed < len(recs); e.processed++ {
		r := recs[e.processed]
		e.outstanding = append(e.outstanding, placedStage{gid: r.Task.ID, finish: r.Finish})
	}
	// Admit workflows that have arrived.
	for wi := range e.wfs {
		if !e.admitted[wi] && e.wfs[wi].Arrival <= now {
			e.admitted[wi] = true
			for _, root := range e.wfs[wi].Roots() {
				e.release(e.offset[wi]+root, now)
			}
		}
	}
	// Complete stages whose finish slot has passed, releasing successors.
	// Repeat until a fixed point (a completion can release a zero-duration
	// chain only through injection, so one pass suffices, but the loop is
	// cheap and robust).
	for changed := true; changed; {
		changed = false
		keep := e.outstanding[:0]
		for _, ps := range e.outstanding {
			if ps.finish <= now && !e.completed[ps.gid] {
				e.completed[ps.gid] = true
				for _, succ := range e.succs[ps.gid] {
					e.indegree[succ]--
					if e.indegree[succ] == 0 {
						e.release(succ, now)
					}
				}
				changed = true
			} else if !e.completed[ps.gid] {
				keep = append(keep, ps)
			}
		}
		e.outstanding = keep
	}
}

// release injects stage gid into the inner waiting queue.
func (e *Env) release(gid, now int) {
	if e.released[gid] {
		return
	}
	e.released[gid] = true
	wi, si := e.gidToStage(gid)
	s := e.wfs[wi].Stages[si]
	if err := e.inner.Inject(workload.Task{
		ID:       gid,
		Arrival:  now,
		CPU:      s.CPU,
		Mem:      s.Mem,
		Duration: s.Duration,
	}); err != nil {
		// Workflows are clamped to the cluster at construction, so a
		// rejected stage is an internal invariant violation, not user input.
		panic(err)
	}
}

// --- rl.Environment ---

// Observe delegates to the inner environment.
func (e *Env) Observe(dst []float64) []float64 { return e.inner.Observe(dst) }

// StateDim delegates to the inner environment.
func (e *Env) StateDim() int { return e.inner.StateDim() }

// NumActions delegates to the inner environment.
func (e *Env) NumActions() int { return e.inner.NumActions() }

// WaitAction delegates to the inner environment.
func (e *Env) WaitAction() int { return e.inner.WaitAction() }

// FeasibleActions delegates to the inner environment. The returned slice
// is the inner environment's scratch mask, reused by its next call.
func (e *Env) FeasibleActions() []bool { return e.inner.FeasibleActions() }

// Done delegates to the inner environment (all stages placed or step cap).
func (e *Env) Done() bool { return e.inner.Done() }

// Truncated delegates to the inner environment (step-cap cut with stages
// still outstanding), satisfying rl.Truncator.
func (e *Env) Truncated() bool { return e.inner.Truncated() }

// Step forwards the action and then releases any newly schedulable stages.
func (e *Env) Step(action int) float64 {
	r := e.inner.Step(action)
	e.sync()
	return r
}

// Drain finishes all running stages and settles the DAG bookkeeping.
func (e *Env) Drain() {
	e.inner.Drain()
	e.sync()
}

// Metrics returns the inner per-stage metrics (response, makespan,
// utilization, load balance over stages).
func (e *Env) Metrics() cloudsim.Metrics { return e.inner.Metrics() }

// Inner exposes the wrapped cloudsim environment.
func (e *Env) Inner() *cloudsim.Env { return e.inner }

// WorkflowRecord summarizes one finished workflow.
type WorkflowRecord struct {
	ID       int
	Arrival  int
	Finish   int // completion slot of the last stage
	Stages   int
	Critical int // critical-path lower bound
}

// Response returns the workflow's end-to-end latency.
func (r WorkflowRecord) Response() int { return r.Finish - r.Arrival }

// Stretch returns response / critical-path — 1.0 is the unbounded-cluster
// optimum; higher means queueing or serialization overhead.
func (r WorkflowRecord) Stretch() float64 {
	if r.Critical == 0 {
		return 1
	}
	return float64(r.Response()) / float64(r.Critical)
}

// WorkflowRecords returns a record per fully completed workflow.
func (e *Env) WorkflowRecords() []WorkflowRecord {
	finishByGid := map[int]int{}
	for _, rec := range e.inner.Records() {
		finishByGid[rec.Task.ID] = rec.Finish
	}
	var out []WorkflowRecord
	for wi, w := range e.wfs {
		finish := 0
		done := true
		for si := range w.Stages {
			f, ok := finishByGid[e.offset[wi]+si]
			if !ok || !e.completed[e.offset[wi]+si] && f > e.inner.Now() {
				// Stage not placed, or placed but not finished by now.
				if !ok {
					done = false
					break
				}
			}
			if f > finish {
				finish = f
			}
		}
		if !done {
			continue
		}
		out = append(out, WorkflowRecord{
			ID: w.ID, Arrival: w.Arrival, Finish: finish,
			Stages: w.NumStages(), Critical: w.CriticalPath(),
		})
	}
	return out
}

// TotalStages returns the number of stages across all workflows.
func (e *Env) TotalStages() int { return e.total }

// String summarizes progress for debugging.
func (e *Env) String() string {
	placed := len(e.inner.Records())
	return fmt.Sprintf("workflow.Env{t=%d placed=%d/%d queue=%d}",
		e.inner.Now(), placed, e.total, e.inner.QueueLen())
}
