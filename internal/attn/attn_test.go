package attn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// syntheticEmbeddings builds K client embeddings that mimic federated
// training from a shared initialization: every vector is base + drift,
// where clients 0 and 1 share a drift direction (same environment) and the
// others drift independently.
func syntheticEmbeddings(rng *rand.Rand, k, dim int, baseScale, driftScale float64) [][]float64 {
	base := make([]float64, dim)
	for i := range base {
		base[i] = baseScale * rng.NormFloat64()
	}
	shared := make([]float64, dim)
	for i := range shared {
		shared[i] = rng.NormFloat64()
	}
	out := make([][]float64, k)
	for c := 0; c < k; c++ {
		e := make([]float64, dim)
		for i := range e {
			drift := rng.NormFloat64()
			if c < 2 {
				// Same-environment pair: aligned drift plus small noise.
				drift = shared[i] + 0.2*rng.NormFloat64()
			}
			e[i] = base[i] + driftScale*drift
		}
		out[c] = e
	}
	return out
}

func assertRowStochastic(t *testing.T, w [][]float64) {
	t.Helper()
	for i, row := range w {
		sum := 0.0
		for _, v := range row {
			if v < 0 || v > 1 {
				t.Fatalf("weight out of [0,1]: w[%d]=%v", i, row)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
}

func TestAttentionWeightsRowStochastic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	emb := syntheticEmbeddings(rng, 4, 200, 1.0, 0.05)
	w := NewAggregator(7).Weights(emb)
	if len(w) != 4 || len(w[0]) != 4 {
		t.Fatalf("shape %dx%d", len(w), len(w[0]))
	}
	assertRowStochastic(t, w)
}

func TestAttentionFocusesOnSimilarClients(t *testing.T) {
	// The Figure-11 property: same-environment clients 0 and 1 must pay
	// each other markedly more attention than the average pair.
	rng := rand.New(rand.NewSource(2))
	emb := syntheticEmbeddings(rng, 4, 400, 1.0, 0.05)
	w := NewAggregator(7).Weights(emb)
	if f := Focus(w, 0, 1); f < 1.5 {
		t.Fatalf("attention focus(0,1)=%v, want > 1.5 (w=%v)", f, w)
	}
	if f := Focus(w, 1, 0); f < 1.5 {
		t.Fatalf("attention focus(1,0)=%v, want > 1.5", f)
	}
	// And an unrelated pair should not be favored.
	if Focus(w, 2, 3) > Focus(w, 0, 1) {
		t.Fatal("unrelated pair outranks the similar pair")
	}
}

func TestCosineFailsToFocusUnderSharedInit(t *testing.T) {
	// The Figure-13 property: with a dominant shared component, cosine
	// weights are near-uniform.
	rng := rand.New(rand.NewSource(3))
	emb := syntheticEmbeddings(rng, 4, 400, 1.0, 0.05)
	w := CosineWeights(emb)
	assertRowStochastic(t, w)
	for i := range w {
		for j := range w[i] {
			if math.Abs(w[i][j]-0.25) > 0.05 {
				t.Fatalf("cosine weights should be near uniform, got w[%d][%d]=%v", i, j, w[i][j])
			}
		}
	}
}

func TestKLFailsToFocusUnderSharedInit(t *testing.T) {
	// The Figure-12 property.
	rng := rand.New(rand.NewSource(4))
	emb := syntheticEmbeddings(rng, 4, 400, 1.0, 0.05)
	w := KLWeights(emb)
	assertRowStochastic(t, w)
	if f := Focus(w, 0, 1); f > 1.3 {
		t.Fatalf("KL weights unexpectedly focus: %v", f)
	}
}

func TestAttentionBeatsBaselinesAtFocusing(t *testing.T) {
	// The cross-figure comparison the paper's §3.3 draws.
	rng := rand.New(rand.NewSource(5))
	emb := syntheticEmbeddings(rng, 4, 400, 1.0, 0.05)
	fa := Focus(NewAggregator(7).Weights(emb), 0, 1)
	fc := Focus(CosineWeights(emb), 0, 1)
	fk := Focus(KLWeights(emb), 0, 1)
	if !(fa > fc && fa > fk) {
		t.Fatalf("attention focus %v should exceed cosine %v and KL %v", fa, fc, fk)
	}
}

func TestAttentionDeterministicForSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	emb := syntheticEmbeddings(rng, 3, 100, 1.0, 0.1)
	w1 := NewAggregator(42).Weights(emb)
	w2 := NewAggregator(42).Weights(emb)
	for i := range w1 {
		for j := range w1[i] {
			if w1[i][j] != w2[i][j] {
				t.Fatal("same seed must give identical weights")
			}
		}
	}
	w3 := NewAggregator(43).Weights(emb)
	same := true
	for i := range w1 {
		for j := range w1[i] {
			if w1[i][j] != w3[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds should give different weights")
	}
}

func TestAttentionIdenticalEmbeddingsUniform(t *testing.T) {
	// With all-identical embeddings, centering leaves zero drift and the
	// softmax must fall back to uniform rows.
	e := make([]float64, 50)
	for i := range e {
		e[i] = float64(i)
	}
	emb := [][]float64{e, e, e}
	w := NewAggregator(1).Weights(emb)
	assertRowStochastic(t, w)
	for i := range w {
		for j := range w[i] {
			if math.Abs(w[i][j]-1.0/3) > 1e-9 {
				t.Fatalf("identical embeddings should give uniform weights, got %v", w)
			}
		}
	}
}

func TestWeightsPanicOnRaggedInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewAggregator(1).Weights([][]float64{{1, 2}, {1}})
}

func TestWeightsPanicOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewAggregator(1).Weights(nil)
}

func TestKLDivergenceProperties(t *testing.T) {
	p := []float64{0.7, 0.2, 0.1}
	q := []float64{0.1, 0.2, 0.7}
	if klDivergence(p, p) > 1e-9 {
		t.Fatal("KL(p||p) should be ~0")
	}
	if klDivergence(p, q) <= 0 {
		t.Fatal("KL(p||q) should be positive for p != q")
	}
}

func TestSoftmaxVecStable(t *testing.T) {
	out := softmaxVec([]float64{1000, 1000, 1000})
	for _, v := range out {
		if math.Abs(v-1.0/3) > 1e-9 {
			t.Fatalf("softmaxVec unstable: %v", out)
		}
	}
}

func TestFocusEdgeCases(t *testing.T) {
	if Focus([][]float64{{1}}, 0, 0) != 1 {
		t.Fatal("single client focus should be 1")
	}
	uniform := [][]float64{{0.5, 0.5}, {0.5, 0.5}}
	if math.Abs(Focus(uniform, 0, 1)-1) > 1e-9 {
		t.Fatal("uniform matrix focus should be 1")
	}
}

func TestPropAllGeneratorsRowStochastic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(6)
		dim := 10 + rng.Intn(100)
		emb := make([][]float64, k)
		for i := range emb {
			emb[i] = make([]float64, dim)
			for j := range emb[i] {
				emb[i][j] = rng.NormFloat64() * 3
			}
		}
		for _, w := range [][][]float64{
			NewAggregator(seed).Weights(emb),
			CosineWeights(emb),
			KLWeights(emb),
		} {
			for _, row := range w {
				sum := 0.0
				for _, v := range row {
					if v < -1e-12 {
						return false
					}
					sum += v
				}
				if math.Abs(sum-1) > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
