// Package attn implements the server-side weight generators compared in
// §3.3 of the paper and used by the PFRL-DM aggregator (§4.4): a multi-head
// attention mechanism over client model embeddings (Eqs. 18–20), plus the
// two similarity baselines the paper shows failing (KL divergence, Figure
// 12, and cosine similarity, Figure 13).
//
// Each generator consumes one embedding per client — here the flattened
// public-critic parameter vector — and returns a K×K row-stochastic weight
// matrix W: row i holds the attention client i pays to every client
// (including itself), which the aggregator uses to mix a personalized model
// ψ_i = Σ_j W[i][j]·ψ_j.
//
// Why attention succeeds where the baselines fail: federated clients all
// descend from the same global initialization, so raw parameter vectors are
// dominated by a large shared component. Cosine similarity of raw vectors is
// therefore ≈1 for every pair (uniform weights), and softmax-KL between
// near-identical parameter distributions is ≈0 everywhere. The attention
// mechanism first centers the embeddings across clients — isolating each
// client's environment-specific drift — then compares the drifts through
// per-head random projections (Q/K share a head's projection so scores
// approximate drift inner products, which Johnson–Lindenstrauss preserves).
// Same-environment clients drift in aligned directions and light up in the
// weight matrix; heterogeneous clients do not.
package attn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Aggregator generates multi-head attention weights (Eq. 18: softmax of
// QKᵀ/√d_k, averaged over heads per Eq. 20).
type Aggregator struct {
	// Heads is the number of attention heads (independent projections).
	Heads int
	// DK is d_k: the per-head projection dimension.
	DK int
	// Seed fixes the head projection matrices, making the server
	// deterministic across rounds and runs.
	Seed int64
	// Temperature rescales the pre-softmax scores; 1 uses the raw
	// QKᵀ/√d_k scores, larger values flatten, smaller sharpen.
	Temperature float64
	// Center subtracts the cross-client mean embedding before projecting
	// (isolates environment-specific drift; see the package comment).
	Center bool
}

// NewAggregator returns an attention weight generator with the defaults
// used throughout the experiments: 4 heads, d_k = 32, centering on,
// temperature 2. The temperature softens the softmax so a client's
// personalized model blends meaningful mass from similar clients instead of
// collapsing to pure self-attention — with unit-norm drifts the raw
// self-score is √d_k, which at temperature 1 would put ≈0.97 of the mass on
// the diagonal and disable collaboration.
func NewAggregator(seed int64) *Aggregator {
	return &Aggregator{Heads: 4, DK: 32, Seed: seed, Temperature: 2, Center: true}
}

// Weights computes the K×K row-stochastic attention matrix for the given
// client embeddings. All embeddings must share one length. It panics on
// ragged or empty input (programmer error in the server).
func (a *Aggregator) Weights(embeddings [][]float64) [][]float64 {
	k, dim := checkEmbeddings(embeddings)
	x := prepare(embeddings, a.Center)

	acc := tensor.New(k, k)
	heads := a.Heads
	if heads < 1 {
		heads = 1
	}
	dk := a.DK
	if dk < 1 {
		dk = 32
	}
	temp := a.Temperature
	if temp <= 0 {
		temp = 1
	}
	// Per-head temporaries come from the shared tensor pool: the projection
	// alone is dim x dk (dim = the flattened critic, tens of thousands of
	// floats), so K heads per round would otherwise churn sizable garbage
	// every aggregation. The draws and kernels match the historical
	// RandNormal/MatMul/Scale/SoftmaxRows path operation-for-operation, so
	// the weights are bitwise unchanged.
	p := tensor.Get(dim, dk)
	q := tensor.Get(k, dk)
	scores := tensor.Get(k, k)
	for h := 0; h < heads; h++ {
		// Q and K share the head projection so scores approximate drift
		// inner products (see package comment).
		rng := rand.New(rand.NewSource(a.Seed*1_000_003 + int64(h)))
		for i := range p.Data {
			p.Data[i] = rng.NormFloat64()
		}
		x.MatMulInto(p, q) // K x dk
		q.MatMulTransBInto(q, scores)
		scores.ScaleInto(1/(math.Sqrt(float64(dk))*temp), scores)
		scores.SoftmaxRowsInto(scores)
		acc.AddInPlace(scores)
	}
	tensor.Put(p)
	tensor.Put(q)
	tensor.Put(scores)
	acc.ScaleInPlace(1 / float64(heads))
	return toRows(acc)
}

// CosineWeights is the Figure-13 baseline: softmax over pairwise cosine
// similarities of the raw embeddings. Because federated models share a
// dominant initialization component, the similarities are all ≈1 and the
// weights come out near-uniform.
func CosineWeights(embeddings [][]float64) [][]float64 {
	k, _ := checkEmbeddings(embeddings)
	norms := make([]float64, k)
	for i, e := range embeddings {
		s := 0.0
		for _, v := range e {
			s += v * v
		}
		norms[i] = math.Sqrt(s)
	}
	scores := tensor.New(k, k)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			dot := 0.0
			for d := range embeddings[i] {
				dot += embeddings[i][d] * embeddings[j][d]
			}
			denom := norms[i] * norms[j]
			if denom < 1e-12 {
				denom = 1e-12
			}
			scores.Set(i, j, dot/denom)
		}
	}
	return toRows(scores.SoftmaxRows())
}

// KLWeights is the Figure-12 baseline: each embedding is turned into a
// probability distribution via a softmax, and w_ij ∝ exp(−KL(p_i‖p_j)).
// Near-identical federated models give KL ≈ 0 for every pair, so the
// weights come out near-uniform.
func KLWeights(embeddings [][]float64) [][]float64 {
	k, _ := checkEmbeddings(embeddings)
	dists := make([][]float64, k)
	for i, e := range embeddings {
		dists[i] = softmaxVec(e)
	}
	scores := tensor.New(k, k)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			scores.Set(i, j, -klDivergence(dists[i], dists[j]))
		}
	}
	return toRows(scores.SoftmaxRows())
}

func checkEmbeddings(embeddings [][]float64) (k, dim int) {
	k = len(embeddings)
	if k == 0 {
		panic("attn: no embeddings")
	}
	dim = len(embeddings[0])
	if dim == 0 {
		panic("attn: empty embedding")
	}
	for i, e := range embeddings {
		if len(e) != dim {
			panic(fmt.Sprintf("attn: embedding %d has length %d, want %d", i, len(e), dim))
		}
	}
	return k, dim
}

// prepare stacks embeddings into a matrix, optionally centering across
// clients, and L2-normalizes each row so score scales are comparable across
// rounds.
func prepare(embeddings [][]float64, center bool) *tensor.Matrix {
	x := tensor.FromRows(embeddings)
	if center {
		mean := x.SumCols().Scale(1 / float64(x.Rows))
		for i := 0; i < x.Rows; i++ {
			row := x.Row(i)
			for j := range row {
				row[j] -= mean.Data[j]
			}
		}
	}
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		n := 0.0
		for _, v := range row {
			n += v * v
		}
		n = math.Sqrt(n)
		if n < 1e-12 {
			continue // a zero drift row stays zero (softmax handles it)
		}
		for j := range row {
			row[j] /= n
		}
	}
	return x
}

func softmaxVec(v []float64) []float64 {
	mx := v[0]
	for _, x := range v[1:] {
		if x > mx {
			mx = x
		}
	}
	out := make([]float64, len(v))
	sum := 0.0
	for i, x := range v {
		e := math.Exp(x - mx)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

func klDivergence(p, q []float64) float64 {
	const eps = 1e-12
	s := 0.0
	for i := range p {
		pi, qi := p[i]+eps, q[i]+eps
		s += pi * math.Log(pi/qi)
	}
	return s
}

func toRows(m *tensor.Matrix) [][]float64 {
	out := make([][]float64, m.Rows)
	for i := range out {
		out[i] = append([]float64(nil), m.Row(i)...)
	}
	return out
}

// Focus quantifies how much a weight matrix concentrates mass on a given
// pair (i,j) relative to the mean off-diagonal weight — the statistic
// behind the Figures 11–13 heatmap comparison. Values ≫ 1 mean the matrix
// "focuses" on the pair; ≈1 means uniform.
func Focus(w [][]float64, i, j int) float64 {
	k := len(w)
	if k < 2 {
		return 1
	}
	sum, cnt := 0.0, 0
	for r := 0; r < k; r++ {
		for c := 0; c < k; c++ {
			if r != c {
				sum += w[r][c]
				cnt++
			}
		}
	}
	meanOff := sum / float64(cnt)
	if meanOff < 1e-12 {
		return 1
	}
	return w[i][j] / meanOff
}
