package workload

import (
	"fmt"
	"math"
	"sort"
)

// FitSpec fits a single-client declarative spec to an observed trace: CPU
// requests become empirical weighted choices, memory and duration become
// empirical quantile grids, and the arrival process becomes a burst model
// whose rate and burstiness are estimated from the arrival slots. The
// result round-trips through Compile, so a fitted spec can immediately
// drive the simulator — and Calibrate quantifies how faithfully it
// reproduces the trace.
func FitSpec(name string, tasks []Task) (*Spec, error) {
	if len(tasks) == 0 {
		return nil, fmt.Errorf("workload: fit spec %q: empty trace", name)
	}
	cpus := map[int]int{}
	mems := make([]float64, len(tasks))
	durs := make([]float64, len(tasks))
	slots := map[int]bool{}
	last := 0
	sloCounts := [NumSLOClasses]int{}
	for i, t := range tasks {
		cpus[t.CPU]++
		mems[i] = t.Mem
		durs[i] = float64(t.Duration)
		slots[t.Arrival] = true
		if t.Arrival > last {
			last = t.Arrival
		}
		if t.SLO >= 0 && int(t.SLO) < NumSLOClasses {
			sloCounts[t.SLO]++
		}
	}
	choices := make([]int, 0, len(cpus))
	for c := range cpus {
		choices = append(choices, c)
	}
	sort.Ints(choices)
	weights := make([]float64, len(choices))
	for i, c := range choices {
		weights[i] = float64(cpus[c]) / float64(len(tasks))
	}
	sort.Float64s(mems)
	sort.Float64s(durs)

	n := float64(len(tasks))
	rate := n / float64(last+1)
	// Burstiness estimates the clumping: with geometric batches of mean
	// 1/b, the fraction of occupied arrival slots among tasks is ~b.
	burstiness := float64(len(slots)) / n
	if burstiness > 1 {
		burstiness = 1
	}
	if burstiness <= 0 {
		burstiness = 1
	}

	majority := SLOBestEffort
	for c := SLOBestEffort; int(c) < NumSLOClasses; c++ {
		if sloCounts[c] > sloCounts[majority] {
			majority = c
		}
	}

	durMax := int(durs[len(durs)-1])
	return &Spec{
		Name: name,
		Clients: []SpecClient{{
			ID:           name,
			RateFraction: 1,
			SLOClass:     majority.String(),
			Arrival: ArrivalSpec{
				Process:     "burst",
				RatePerSlot: rate,
				Burstiness:  burstiness,
			},
			CPU: CPUSpec{Choices: choices, Weights: weights},
			Memory: MemSpec{
				Dist:      "quantile",
				Quantiles: quantileGrid(mems, 21),
				Min:       mems[0],
				Max:       mems[len(mems)-1],
			},
			Duration: DurSpec{
				Dist:      "quantile",
				Quantiles: quantileGrid(durs, 21),
				Min:       int(durs[0]),
				Max:       durMax,
			},
		}},
	}, nil
}

// quantileGrid evaluates the empirical CDF of a sorted sample at points
// evenly spaced in probability, ready for inverse-CDF sampling.
func quantileGrid(sorted []float64, points int) []float64 {
	grid := make([]float64, points)
	for i := range grid {
		grid[i] = percentileSorted(sorted, float64(i)/float64(points-1))
	}
	return grid
}

// CalibrationDim compares one marginal of a trace against a fitted spec's
// sampled output: the two-sample Kolmogorov–Smirnov distance between the
// empirical CDFs, plus matched quantiles for eyeballing where they differ.
type CalibrationDim struct {
	Name     string
	KS       float64
	TraceQ   []float64 // p10/p25/p50/p75/p90 of the trace
	SampledQ []float64 // the same quantiles of the spec's sample
}

// CalibrationQuantiles are the probe points reported per dimension.
var CalibrationQuantiles = []float64{0.10, 0.25, 0.50, 0.75, 0.90}

// CalibrationReport compares a replayed trace against a spec's sampled
// tasks, one dimension at a time (cpu, mem_gib, duration, interarrival).
type CalibrationReport struct {
	TraceTasks   int
	SampledTasks int
	Dims         []CalibrationDim
}

// Calibrate builds the calibration report for a trace and a spec-sampled
// task set of comparable size.
func Calibrate(trace, sampled []Task) CalibrationReport {
	rep := CalibrationReport{TraceTasks: len(trace), SampledTasks: len(sampled)}
	dims := []struct {
		name    string
		extract func([]Task) []float64
	}{
		{"cpu", func(ts []Task) []float64 { return extractDim(ts, func(t Task) float64 { return float64(t.CPU) }) }},
		{"mem_gib", func(ts []Task) []float64 { return extractDim(ts, func(t Task) float64 { return t.Mem }) }},
		{"duration", func(ts []Task) []float64 { return extractDim(ts, func(t Task) float64 { return float64(t.Duration) }) }},
		{"interarrival", interarrivals},
	}
	for _, d := range dims {
		a, b := d.extract(trace), d.extract(sampled)
		sort.Float64s(a)
		sort.Float64s(b)
		dim := CalibrationDim{Name: d.name, KS: ksDistance(a, b)}
		for _, q := range CalibrationQuantiles {
			dim.TraceQ = append(dim.TraceQ, percentileSorted(a, q))
			dim.SampledQ = append(dim.SampledQ, percentileSorted(b, q))
		}
		rep.Dims = append(rep.Dims, dim)
	}
	return rep
}

func extractDim(ts []Task, f func(Task) float64) []float64 {
	out := make([]float64, len(ts))
	for i, t := range ts {
		out[i] = f(t)
	}
	return out
}

func interarrivals(ts []Task) []float64 {
	if len(ts) < 2 {
		return nil
	}
	out := make([]float64, len(ts)-1)
	for i := 1; i < len(ts); i++ {
		out[i-1] = float64(ts[i].Arrival - ts[i-1].Arrival)
	}
	return out
}

// ksDistance is the two-sample Kolmogorov–Smirnov statistic: the largest
// gap between the two empirical CDFs, computed with one merge sweep over
// the sorted samples.
func ksDistance(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return math.NaN()
	}
	i, j, d := 0, 0, 0.0
	for i < len(a) && j < len(b) {
		x := math.Min(a[i], b[j])
		for i < len(a) && a[i] <= x {
			i++
		}
		for j < len(b) && b[j] <= x {
			j++
		}
		if gap := math.Abs(float64(i)/float64(len(a)) - float64(j)/float64(len(b))); gap > d {
			d = gap
		}
	}
	return d
}
