package workload

import (
	"math/rand"
	"strings"
	"testing"
)

// FuzzParseSpec hammers the strict parser and validator with arbitrary
// bytes: parsing must never panic, and any spec that survives validation
// must compile and sample well-formed tasks (ordered arrivals, positive
// resources, in-range SLO classes).
func FuzzParseSpec(f *testing.F) {
	for _, id := range AllDatasets() {
		raw, err := PresetSpecJSON(id)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(raw))
	}
	f.Add(`{"name": "x", "clients": []}`)
	f.Add(`{"clients": [{"id": "a", "rate_fraction": 1e999}]}`)
	f.Add(`{"clients": [{"id": "a", "rate_fraction": 1,
	  "arrival": {"process": "weibull", "rate_per_slot": 1, "burstiness": 0.5, "gap_shape": 1e-12},
	  "cpu": {"choices": [1, 2], "weights": [0, 0]},
	  "memory": {"dist": "quantile", "quantiles": [4, 2], "min": 1, "max": 8},
	  "duration": {"median": 5, "min": 1, "max": 10}}]}`)
	f.Fuzz(func(t *testing.T, data string) {
		s, err := ParseSpec(strings.NewReader(data))
		if err != nil {
			return
		}
		comp, err := s.Compile()
		if err != nil {
			return
		}
		// Sampling slot-scanning processes at vanishing rates is valid but
		// unboundedly slow; only exercise generators the fuzz budget can
		// afford.
		for _, cl := range comp.Clients {
			m := cl.Model
			switch m.Arrival {
			case ArrivalBurst:
				if m.Burstiness*m.RatePerSlot < 1e-3 {
					return
				}
			case ArrivalPoisson:
				if m.RatePerSlot < 1e-3 {
					return
				}
			}
		}
		tasks := comp.Sample(rand.New(rand.NewSource(1)), 50)
		if len(tasks) != 50 {
			t.Fatalf("sampled %d tasks, want 50", len(tasks))
		}
		for i, tk := range tasks {
			if tk.ID != i {
				t.Fatalf("task %d has ID %d", i, tk.ID)
			}
			if i > 0 && tk.Arrival < tasks[i-1].Arrival {
				t.Fatalf("arrival regression at task %d", i)
			}
			if tk.CPU < 1 || !(tk.Mem > 0) || tk.Duration < 1 {
				t.Fatalf("invalid task %+v", tk)
			}
			if tk.SLO < 0 || int(tk.SLO) >= NumSLOClasses {
				t.Fatalf("task %d has SLO class %d", i, int(tk.SLO))
			}
		}
	})
}
