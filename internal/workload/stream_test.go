package workload

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// TestStreamMatchesSample pins the streaming generator to the materialized
// sampler: same model, seed, and n must produce bit-identical tasks in the
// same order (the RNG draw order is part of the contract).
func TestStreamMatchesSample(t *testing.T) {
	for _, id := range AllDatasets() {
		m := Lookup(id)
		for _, seed := range []int64{1, 7, 42} {
			const n = 300
			want := m.Sample(rand.New(rand.NewSource(seed)), n)
			s := m.Stream(rand.New(rand.NewSource(seed)), n)
			for i := 0; i < n; i++ {
				got, ok := s.Next()
				if !ok {
					t.Fatalf("%v seed %d: stream ended at task %d of %d", id, seed, i, n)
				}
				if got != want[i] {
					t.Fatalf("%v seed %d task %d: stream %+v vs sample %+v", id, seed, i, got, want[i])
				}
			}
			if _, ok := s.Next(); ok {
				t.Fatalf("%v seed %d: stream emitted more than %d tasks", id, seed, n)
			}
			if s.Remaining() != 0 {
				t.Fatalf("%v seed %d: Remaining() = %d after exhaustion", id, seed, s.Remaining())
			}
		}
	}
}

// TestCSVStreamRoundTrip pins the streaming CSV reader to the batch
// importer on a valid trace.
func TestCSVStreamRoundTrip(t *testing.T) {
	tasks := Lookup(Google).Sample(rand.New(rand.NewSource(3)), 200)
	var buf bytes.Buffer
	if err := ExportCSV(&buf, tasks); err != nil {
		t.Fatal(err)
	}
	s, err := NewCSVStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i := range tasks {
		got, ok := s.Next()
		if !ok {
			t.Fatalf("stream ended at row %d of %d (err: %v)", i, len(tasks), s.Err())
		}
		if got != tasks[i] {
			t.Fatalf("row %d: %+v vs %+v", i, got, tasks[i])
		}
	}
	if _, ok := s.Next(); ok {
		t.Fatal("stream emitted rows past the trace")
	}
	if s.Err() != nil {
		t.Fatalf("clean EOF reported error: %v", s.Err())
	}
}

// TestCSVStreamRejections pins the deterministic failure modes: bad header,
// malformed row, arrival regression.
func TestCSVStreamRejections(t *testing.T) {
	if _, err := NewCSVStream(strings.NewReader("wrong,header\n")); err == nil {
		t.Fatal("bad header accepted")
	}
	cases := map[string]string{
		"malformed-row":      "id,arrival,cpu,mem_gib,duration,source\nx,0,1,1,1,0\n",
		"zero-duration":      "id,arrival,cpu,mem_gib,duration,source\n0,0,1,1,0,0\n",
		"arrival-regression": "id,arrival,cpu,mem_gib,duration,source\n0,5,1,1,1,0\n1,2,1,1,1,0\n",
	}
	for name, trace := range cases {
		t.Run(name, func(t *testing.T) {
			s, err := NewCSVStream(strings.NewReader(trace))
			if err != nil {
				t.Fatal(err)
			}
			for {
				if _, ok := s.Next(); !ok {
					break
				}
			}
			if s.Err() == nil {
				t.Fatal("invalid trace streamed without error")
			}
			// Stopped streams stay stopped.
			if _, ok := s.Next(); ok {
				t.Fatal("stream resumed after failure")
			}
		})
	}
}

// TestCSVStreamMidStreamFailure pins the mid-stream failure contract: after
// N good rows, a malformed row or an out-of-order arrival stops the stream
// deterministically at that row, the already-emitted tasks are exactly the
// batch-import prefix, and Err stays set while Next stays stopped — even
// though more valid rows follow the offending one.
func TestCSVStreamMidStreamFailure(t *testing.T) {
	good := Lookup(Google).Sample(rand.New(rand.NewSource(9)), 10)
	var buf bytes.Buffer
	if err := ExportCSV(&buf, good); err != nil {
		t.Fatal(err)
	}
	prefix := buf.String()
	lastArrival := good[len(good)-1].Arrival
	cases := map[string]string{
		"malformed-row": "x,bogus,1,1,1,0\n",
		"out-of-order":  fmt.Sprintf("10,%d,1,1,1,0\n", lastArrival-1),
	}
	trailer := fmt.Sprintf("11,%d,1,1,1,0\n", lastArrival+5)
	for name, bad := range cases {
		t.Run(name, func(t *testing.T) {
			s, err := NewCSVStream(strings.NewReader(prefix + bad + trailer))
			if err != nil {
				t.Fatal(err)
			}
			for i, want := range good {
				got, ok := s.Next()
				if !ok {
					t.Fatalf("stream stopped at good row %d (err: %v)", i, s.Err())
				}
				if got != want {
					t.Fatalf("good row %d corrupted by later failure: %+v vs %+v", i, got, want)
				}
				if s.Err() != nil {
					t.Fatalf("Err set while good rows remained: %v", s.Err())
				}
			}
			if tk, ok := s.Next(); ok {
				t.Fatalf("offending row emitted: %+v", tk)
			}
			if s.Err() == nil {
				t.Fatal("mid-stream failure not reported")
			}
			// Stopped streams stay stopped: the valid trailer row after the
			// failure must never surface.
			first := s.Err()
			if _, ok := s.Next(); ok {
				t.Fatal("stream resumed past a failure")
			}
			if s.Err() != first {
				t.Fatalf("Err changed across calls: %v vs %v", first, s.Err())
			}
		})
	}
}

// FuzzCSVStream cross-checks the streaming CSV reader against ImportCSV on
// arbitrary input: both must accept (with identical tasks) or both must
// reject — the stream may simply stop earlier, at the first offending row.
func FuzzCSVStream(f *testing.F) {
	var buf bytes.Buffer
	if err := ExportCSV(&buf, []Task{
		{ID: 0, Arrival: 0, CPU: 2, Mem: 1.5, Duration: 3, Source: Google},
		{ID: 1, Arrival: 4, CPU: 1, Mem: 0.5, Duration: 1, Source: Alibaba2017},
	}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("id,arrival,cpu,mem_gib,duration,source\n0,5,1,1,1,0\n1,2,1,1,1,0\n")
	f.Add("id,arrival,cpu,mem_gib,duration,source\nx,0,1,1,1,0\n")
	f.Add("wrong,header\n")
	f.Add("")

	f.Fuzz(func(t *testing.T, data string) {
		imported, impErr := ImportCSV(strings.NewReader(data))
		s, err := NewCSVStream(strings.NewReader(data))
		if err != nil {
			if impErr == nil {
				t.Fatalf("stream rejected header ImportCSV accepted: %v", err)
			}
			return
		}
		var tasks []Task
		for {
			task, ok := s.Next()
			if !ok {
				break
			}
			tasks = append(tasks, task)
		}
		if impErr == nil {
			if s.Err() != nil {
				t.Fatalf("ImportCSV accepted but stream errored: %v", s.Err())
			}
			if len(tasks) != len(imported) {
				t.Fatalf("task counts differ: stream %d vs import %d", len(tasks), len(imported))
			}
			for i := range tasks {
				if tasks[i] != imported[i] {
					t.Fatalf("task %d differs: %+v vs %+v", i, tasks[i], imported[i])
				}
			}
		} else if s.Err() == nil {
			t.Fatalf("ImportCSV rejected (%v) but stream succeeded with %d tasks", impErr, len(tasks))
		}
	})
}
