package workload

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzCSVTrace feeds arbitrary bytes to the trace importer. Malformed
// traces must produce an error — never a panic — and accepted traces must
// survive an export/import round trip unchanged.
func FuzzCSVTrace(f *testing.F) {
	var buf bytes.Buffer
	seed := []Task{
		{ID: 0, Arrival: 0, CPU: 2, Mem: 1.5, Duration: 3, Source: Google},
		{ID: 1, Arrival: 4, CPU: 1, Mem: 0.5, Duration: 1, Source: Alibaba2017},
	}
	if err := ExportCSV(&buf, seed); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("id,arrival,cpu,mem_gib,duration,source\n")
	f.Add("id,arrival,cpu,mem_gib,duration,source\n1,2,3\n")
	f.Add("id,arrival,cpu,mem_gib,duration,source\nx,0,1,1,1,0\n")
	f.Add("id,arrival,cpu,mem_gib,duration,source\n0,5,1,1,1,0\n1,2,1,1,1,0\n")
	f.Add("wrong,header\n")
	f.Add("")
	f.Add("\"unterminated")

	f.Fuzz(func(t *testing.T, data string) {
		tasks, err := ImportCSV(strings.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := ExportCSV(&out, tasks); err != nil {
			t.Fatalf("accepted trace failed to re-export: %v", err)
		}
		again, err := ImportCSV(&out)
		if err != nil {
			t.Fatalf("re-exported trace failed to re-import: %v", err)
		}
		if len(again) != len(tasks) {
			t.Fatalf("round trip changed task count: %d vs %d", len(again), len(tasks))
		}
		for i := range tasks {
			if tasks[i] != again[i] {
				t.Fatalf("round trip changed task %d: %+v vs %+v", i, tasks[i], again[i])
			}
		}
	})
}
