package workload

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAllBuiltinModelsValid(t *testing.T) {
	for _, id := range AllDatasets() {
		if err := Lookup(id).Validate(); err != nil {
			t.Errorf("%v: %v", id, err)
		}
	}
}

func TestLookupReturnsCopy(t *testing.T) {
	a := Lookup(Google)
	a.RatePerSlot = 999
	if Lookup(Google).RatePerSlot == 999 {
		t.Fatal("Lookup must return a copy")
	}
}

func TestLookupUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Lookup(DatasetID(99))
}

func TestDatasetStrings(t *testing.T) {
	if Google.String() != "Google" || K8S.String() != "K8S" {
		t.Fatal("dataset names wrong")
	}
	if DatasetID(42).String() != "DatasetID(42)" {
		t.Fatal("unknown id formatting wrong")
	}
	if len(AllDatasets()) != 10 {
		t.Fatal("expected 10 datasets")
	}
}

func TestSampleCount(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tasks := SampleDataset(Google, rng, 500)
	if len(tasks) != 500 {
		t.Fatalf("got %d tasks", len(tasks))
	}
}

func TestSampleValidAndOrdered(t *testing.T) {
	for _, id := range AllDatasets() {
		rng := rand.New(rand.NewSource(int64(id) + 10))
		m := Lookup(id)
		tasks := m.Sample(rng, 300)
		prev := -1
		for i, tk := range tasks {
			if tk.ID != i {
				t.Fatalf("%v: ID not sequential", id)
			}
			if tk.Arrival < prev {
				t.Fatalf("%v: arrivals not monotone", id)
			}
			prev = tk.Arrival
			if tk.CPU < 1 {
				t.Fatalf("%v: non-positive CPU", id)
			}
			if tk.Mem < m.MemMin || tk.Mem > m.MemMax {
				t.Fatalf("%v: mem %v outside [%v,%v]", id, tk.Mem, m.MemMin, m.MemMax)
			}
			if tk.Duration < m.DurMin || tk.Duration > m.DurMax {
				t.Fatalf("%v: duration %v outside bounds", id, tk.Duration)
			}
			if tk.Source != id {
				t.Fatalf("%v: wrong source", id)
			}
		}
	}
}

func TestSampleDeterministicForSeed(t *testing.T) {
	a := SampleDataset(HPCHF, rand.New(rand.NewSource(7)), 100)
	b := SampleDataset(HPCHF, rand.New(rand.NewSource(7)), 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("sampling not deterministic for fixed seed")
		}
	}
}

func TestCPUChoicesRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := Lookup(HPCHF)
	allowed := map[int]bool{}
	for _, c := range m.CPUChoices {
		allowed[c] = true
	}
	for _, tk := range m.Sample(rng, 500) {
		if !allowed[tk.CPU] {
			t.Fatalf("CPU %d not in model choices", tk.CPU)
		}
	}
}

func TestHeterogeneityAcrossDatasets(t *testing.T) {
	// The design-critical property: Google tasks are small & short,
	// HPC-HF tasks are large & long, and their arrival rates differ by >2x.
	rng := rand.New(rand.NewSource(3))
	g := Characterize("g", SampleDataset(Google, rng, 2000))
	h := Characterize("h", SampleDataset(HPCHF, rng, 2000))
	if !(g.CPUMean*3 < h.CPUMean) {
		t.Fatalf("CPU heterogeneity too weak: google %v vs hpc %v", g.CPUMean, h.CPUMean)
	}
	if !(g.DurMean*3 < h.DurMean) {
		t.Fatalf("duration heterogeneity too weak: %v vs %v", g.DurMean, h.DurMean)
	}
	if !(g.RatePerSlot > 2*h.RatePerSlot) {
		t.Fatalf("rate heterogeneity too weak: %v vs %v", g.RatePerSlot, h.RatePerSlot)
	}
}

func TestMeasuredRateMatchesModel(t *testing.T) {
	for _, id := range []DatasetID{Google, KVM2019, HPCKS} {
		rng := rand.New(rand.NewSource(int64(id) + 50))
		m := Lookup(id)
		c := Characterize(m.Name, m.Sample(rng, 4000))
		ratio := c.RatePerSlot / m.RatePerSlot
		if ratio < 0.6 || ratio > 1.6 {
			t.Fatalf("%v: measured rate %v vs model %v (ratio %v)", id, c.RatePerSlot, m.RatePerSlot, ratio)
		}
	}
}

func TestValidateCatchesBadModels(t *testing.T) {
	base := Lookup(Google)
	cases := []func(*Model){
		func(m *Model) { m.CPUChoices = nil },
		func(m *Model) { m.CPUWeights = m.CPUWeights[:1] },
		func(m *Model) { m.MemPerCPU = 0 },
		func(m *Model) { m.MemMax = m.MemMin - 1 },
		func(m *Model) { m.DurMin = 0 },
		func(m *Model) { m.DurMax = m.DurMin - 1 },
		func(m *Model) { m.RatePerSlot = 0 },
		func(m *Model) { m.Burstiness = 0 },
		func(m *Model) { m.Burstiness = 1.5 },
		func(m *Model) { m.DiurnalPeriod = 0 },
		func(m *Model) { m.CPUWeights = []float64{-1, 1, 1, 1} },
		func(m *Model) { m.CPUWeights = []float64{0, 0, 0, 0} },
	}
	for i, mutate := range cases {
		m := *base
		m.CPUWeights = append([]float64(nil), base.CPUWeights...)
		mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tasks := SampleDataset(Google, rng, 100)
	train, test := Split(tasks, 0.6)
	if len(train) != 60 || len(test) != 40 {
		t.Fatalf("split sizes %d/%d", len(train), len(test))
	}
	if test[0].Arrival != 0 {
		t.Fatal("test set should be rebased to slot 0")
	}
	if test[0].ID != 0 {
		t.Fatal("test set should be renumbered")
	}
	// Boundary fractions.
	tr, te := Split(tasks, 0)
	if len(tr) != 0 || len(te) != 100 {
		t.Fatal("Split(0) wrong")
	}
	tr, te = Split(tasks, 1)
	if len(tr) != 100 || len(te) != 0 {
		t.Fatal("Split(1) wrong")
	}
}

func TestRebaseEmpty(t *testing.T) {
	if len(Rebase(nil)) != 0 {
		t.Fatal("Rebase(nil) should be empty")
	}
}

func TestCombineOrdersByArrival(t *testing.T) {
	a := []Task{{ID: 0, Arrival: 5}, {ID: 1, Arrival: 10}}
	b := []Task{{ID: 0, Arrival: 3}, {ID: 1, Arrival: 7}}
	all := Combine(a, b)
	if len(all) != 4 {
		t.Fatalf("combined %d", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].Arrival < all[i-1].Arrival {
			t.Fatal("not sorted by arrival")
		}
	}
	if all[0].Arrival != 0 {
		t.Fatal("should be rebased")
	}
}

func TestHybridMixComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	others := []DatasetID{Alibaba2017, HPCHF, K8S}
	mix := HybridMix(rng, Google, others, 200, 0.2)
	if len(mix) != 200 {
		t.Fatalf("mix size %d", len(mix))
	}
	bySource := map[DatasetID]int{}
	for _, tk := range mix {
		bySource[tk.Source]++
	}
	if bySource[Google] != 40 {
		t.Fatalf("native fraction wrong: %d google tasks", bySource[Google])
	}
	foreign := 0
	for _, id := range others {
		if bySource[id] == 0 {
			t.Fatalf("dataset %v missing from mix", id)
		}
		foreign += bySource[id]
	}
	if foreign != 160 {
		t.Fatalf("foreign count %d", foreign)
	}
}

func TestHybridMixNoOthers(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	mix := HybridMix(rng, Google, nil, 50, 0.2)
	// Only native tasks can be produced.
	if len(mix) != 10 {
		t.Fatalf("expected 10 native tasks, got %d", len(mix))
	}
}

func TestSubsample(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tasks := SampleDataset(K8S, rng, 100)
	sub := Subsample(rng, tasks, 30)
	if len(sub) != 30 {
		t.Fatalf("subsample size %d", len(sub))
	}
	for i := 1; i < len(sub); i++ {
		if sub[i].Arrival < sub[i-1].Arrival {
			t.Fatal("subsample lost arrival order")
		}
	}
	full := Subsample(rng, tasks, 200)
	if len(full) != 100 {
		t.Fatal("oversized k should return all tasks")
	}
}

func TestCharacterizeEmpty(t *testing.T) {
	c := Characterize("empty", nil)
	if c.Tasks != 0 {
		t.Fatal("empty characterization wrong")
	}
	// Every statistic must be a finite zero — NaN here breaks json.Marshal
	// in the report paths (json: unsupported value: NaN).
	for name, v := range map[string]float64{
		"CPUMean": c.CPUMean, "CPUP50": c.CPUP50, "CPUP95": c.CPUP95,
		"MemMean": c.MemMean, "MemP50": c.MemP50, "MemP95": c.MemP95,
		"DurMean": c.DurMean, "DurP50": c.DurP50, "DurP95": c.DurP95,
		"RatePerSlot": c.RatePerSlot, "RatePeak": c.RatePeak,
	} {
		if v != 0 {
			t.Fatalf("%s = %v on empty set, want 0", name, v)
		}
	}
	if _, err := json.Marshal(c); err != nil {
		t.Fatalf("empty characterization does not marshal: %v", err)
	}
}

// TestMeanP50P95Empty pins the division-by-zero guard directly: an empty
// vector yields zeros, not NaN.
func TestMeanP50P95Empty(t *testing.T) {
	mean, p50, p95 := meanP50P95(nil)
	if mean != 0 || p50 != 0 || p95 != 0 {
		t.Fatalf("meanP50P95(nil) = %v %v %v, want zeros", mean, p50, p95)
	}
	if math.IsNaN(mean) || math.IsNaN(p50) || math.IsNaN(p95) {
		t.Fatal("meanP50P95(nil) produced NaN")
	}
}

// TestHybridMixBoundaryFractions pins the rounding and clamping of the
// native count: nNative = round(n*frac) with frac clamped to [0,1], so small
// fractions are not truncated to zero and out-of-range fractions cannot
// produce negative or oversized sample requests.
func TestHybridMixBoundaryFractions(t *testing.T) {
	others := []DatasetID{Alibaba2017}
	cases := []struct {
		name       string
		n          int
		frac       float64
		wantNative int
	}{
		{"truncation-bug", 7, 0.1, 1},   // int(0.7) == 0 before the fix
		{"round-down", 10, 0.04, 0},     // round(0.4) == 0
		{"round-up", 10, 0.05, 1},       // round(0.5) == 1 (half away from zero)
		{"negative-clamped", 10, -0.5, 0},
		{"zero", 10, 0, 0},
		{"one", 10, 1, 10},
		{"over-one-clamped", 10, 1.5, 10},
		{"exact-fifth", 200, 0.2, 40},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			mix := HybridMix(rng, Google, others, tc.n, tc.frac)
			if len(mix) != tc.n {
				t.Fatalf("mix size %d, want %d", len(mix), tc.n)
			}
			native := 0
			for _, tk := range mix {
				if tk.Source == Google {
					native++
				}
			}
			if native != tc.wantNative {
				t.Fatalf("native count %d, want %d", native, tc.wantNative)
			}
		})
	}
}

func TestHourlyArrivalRates(t *testing.T) {
	tasks := []Task{{Arrival: 0}, {Arrival: 1}, {Arrival: 5}, {Arrival: 6}, {Arrival: 11}}
	rates := HourlyArrivalRates(tasks, 6)
	if len(rates) != 2 {
		t.Fatalf("buckets %d", len(rates))
	}
	if math.Abs(rates[0]-3.0/6) > 1e-12 || math.Abs(rates[1]-2.0/6) > 1e-12 {
		t.Fatalf("rates %v", rates)
	}
	if HourlyArrivalRates(nil, 6) != nil {
		t.Fatal("nil tasks should give nil rates")
	}
	if HourlyArrivalRates(tasks, 0) != nil {
		t.Fatal("bad bucket size should give nil")
	}
}

func TestExecTimeCDF(t *testing.T) {
	tasks := []Task{{Duration: 1}, {Duration: 1}, {Duration: 3}, {Duration: 7}}
	d, c := ExecTimeCDF(tasks)
	if len(d) != 3 {
		t.Fatalf("distinct durations %d", len(d))
	}
	if d[0] != 1 || c[0] != 0.5 {
		t.Fatalf("first point (%v,%v)", d[0], c[0])
	}
	if c[len(c)-1] != 1.0 {
		t.Fatal("CDF must end at 1")
	}
	for i := 1; i < len(c); i++ {
		if c[i] <= c[i-1] || d[i] <= d[i-1] {
			t.Fatal("CDF not strictly increasing")
		}
	}
}

func TestResourceHistogram(t *testing.T) {
	tasks := []Task{{CPU: 1}, {CPU: 1}, {CPU: 5}, {CPU: 10}}
	edges, counts := ResourceHistogram(tasks, 3, func(t Task) float64 { return float64(t.CPU) })
	if len(edges) != 3 || len(counts) != 3 {
		t.Fatalf("bins %d/%d", len(edges), len(counts))
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 4 {
		t.Fatalf("histogram lost tasks: %d", total)
	}
	// Degenerate single-value input must not divide by zero.
	e2, c2 := ResourceHistogram([]Task{{CPU: 2}, {CPU: 2}}, 2, func(t Task) float64 { return float64(t.CPU) })
	if len(e2) != 2 || c2[0]+c2[1] != 2 {
		t.Fatal("degenerate histogram wrong")
	}
}

func TestPropSplitPartition(t *testing.T) {
	f := func(seed int64, fracRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		frac := float64(fracRaw) / 255
		tasks := SampleDataset(Alibaba2017, rng, 80)
		train, test := Split(tasks, frac)
		return len(train)+len(test) == len(tasks)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPropArrivalsNonDecreasing(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		id := AllDatasets()[int(uint64(seed)%10)]
		tasks := SampleDataset(id, rng, 60)
		for i := 1; i < len(tasks); i++ {
			if tasks[i].Arrival < tasks[i-1].Arrival {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTable1RowCount(t *testing.T) {
	if len(Table1()) != 15 {
		t.Fatalf("Table 1 rows %d, want 15", len(Table1()))
	}
}
