package workload

import (
	"math/rand"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tasks := SampleDataset(KVM2020, rng, 50)
	var b strings.Builder
	if err := ExportCSV(&b, tasks); err != nil {
		t.Fatal(err)
	}
	got, err := ImportCSV(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(tasks) {
		t.Fatalf("round trip lost tasks: %d vs %d", len(got), len(tasks))
	}
	for i := range tasks {
		if got[i] != tasks[i] {
			t.Fatalf("task %d changed: %+v vs %+v", i, got[i], tasks[i])
		}
	}
}

func TestImportCSVRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"empty":           "",
		"wrong header":    "a,b,c,d,e,f\n1,1,1,1,1,0\n",
		"missing columns": "id,arrival,cpu\n1,1,1\n",
		"bad int":         "id,arrival,cpu,mem_gib,duration,source\nx,1,1,1,1,0\n",
		"bad float":       "id,arrival,cpu,mem_gib,duration,source\n1,1,1,x,1,0\n",
		"negative cpu":    "id,arrival,cpu,mem_gib,duration,source\n1,1,0,1,1,0\n",
		"zero duration":   "id,arrival,cpu,mem_gib,duration,source\n1,1,1,1,0,0\n",
		"neg arrival":     "id,arrival,cpu,mem_gib,duration,source\n1,-1,1,1,1,0\n",
		"unsorted":        "id,arrival,cpu,mem_gib,duration,source\n0,5,1,1,1,0\n1,3,1,1,1,0\n",
	}
	for name, input := range cases {
		if _, err := ImportCSV(strings.NewReader(input)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestImportCSVEmptyBody(t *testing.T) {
	got, err := ImportCSV(strings.NewReader("id,arrival,cpu,mem_gib,duration,source\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatal("expected empty task list")
	}
}
