package workload

import "math"

// builtinModels parameterizes the ten datasets. The shapes follow the
// paper's characterization (Figs 2–5, Table 1):
//
//   - Google 2011: overwhelmingly tiny requests (<1–2 cores), sub-minute to
//     minutes runtimes, very high and bursty arrival rate.
//   - Alibaba-2017/2018: co-located batch+service mix; small-to-mid
//     requests, moderate runtimes; 2018 skews larger and longer.
//   - HPC-KS/HF/WZ: few large parallel jobs; multi-core requests,
//     long runtimes, low arrival rates. The three centers differ in scale
//     (Table 1: 8–40 CPUs, up to ~990 GiB memory nodes).
//   - KVM-2019/2020: education-project VMs on OpenStack; mid requests,
//     strongly diurnal arrivals; 2020 runs somewhat larger instances.
//   - CERIT-SC: mixed scientific cloud; broad request spread, heavy-tailed
//     runtimes.
//   - K8S: small containers (fractions of cores rounded up to 1–4),
//     short-to-mid runtimes with a heavy tail, high arrival rate.
//
// Service classes reflect each source's tenant expectations: the HPC
// centers and the scientific cloud submit best-effort batch jobs, the
// cloud/VM traces run standard interactive services, and the Kubernetes
// containers are latency-critical.
var builtinModels = map[DatasetID]*Model{
	Google: {
		ID: Google, Name: "Google", SLO: SLOStandard,
		CPUChoices: []int{1, 1, 2, 4}, CPUWeights: []float64{0.55, 0.25, 0.15, 0.05},
		MemPerCPU: 2.0, MemSpread: 0.60, MemMin: 0.25, MemMax: 64,
		DurMu: math.Log(6), DurSigma: 1.0, DurMin: 1, DurMax: 200,
		RatePerSlot: 1.4, DiurnalAmp: 0.35, DiurnalPeriod: 144, Burstiness: 0.25,
	},
	Alibaba2017: {
		ID: Alibaba2017, Name: "Alibaba-2017", SLO: SLOStandard,
		CPUChoices: []int{1, 2, 4, 8}, CPUWeights: []float64{0.30, 0.40, 0.22, 0.08},
		MemPerCPU: 3.0, MemSpread: 0.45, MemMin: 0.5, MemMax: 96,
		DurMu: math.Log(15), DurSigma: 0.9, DurMin: 1, DurMax: 400,
		RatePerSlot: 0.9, DiurnalAmp: 0.50, DiurnalPeriod: 144, Burstiness: 0.40,
	},
	Alibaba2018: {
		ID: Alibaba2018, Name: "Alibaba-2018", SLO: SLOStandard,
		CPUChoices: []int{2, 4, 8, 16}, CPUWeights: []float64{0.30, 0.35, 0.25, 0.10},
		MemPerCPU: 4.0, MemSpread: 0.40, MemMin: 1, MemMax: 128,
		DurMu: math.Log(25), DurSigma: 1.0, DurMin: 2, DurMax: 500,
		RatePerSlot: 0.7, DiurnalAmp: 0.45, DiurnalPeriod: 144, Burstiness: 0.45,
	},
	HPCKS: {
		ID: HPCKS, Name: "HPC-KS", SLO: SLOBestEffort,
		CPUChoices: []int{4, 8, 16, 32}, CPUWeights: []float64{0.20, 0.35, 0.30, 0.15},
		MemPerCPU: 6.0, MemSpread: 0.35, MemMin: 4, MemMax: 256,
		DurMu: math.Log(80), DurSigma: 1.1, DurMin: 5, DurMax: 900,
		RatePerSlot: 0.22, DiurnalAmp: 0.15, DiurnalPeriod: 144, Burstiness: 0.70,
	},
	HPCHF: {
		ID: HPCHF, Name: "HPC-HF", SLO: SLOBestEffort,
		CPUChoices: []int{8, 16, 32}, CPUWeights: []float64{0.40, 0.40, 0.20},
		MemPerCPU: 8.0, MemSpread: 0.30, MemMin: 8, MemMax: 384,
		DurMu: math.Log(120), DurSigma: 0.9, DurMin: 10, DurMax: 1200,
		RatePerSlot: 0.15, DiurnalAmp: 0.10, DiurnalPeriod: 144, Burstiness: 0.80,
	},
	HPCWZ: {
		ID: HPCWZ, Name: "HPC-WZ", SLO: SLOBestEffort,
		CPUChoices: []int{2, 4, 8, 16}, CPUWeights: []float64{0.25, 0.35, 0.25, 0.15},
		MemPerCPU: 10.0, MemSpread: 0.40, MemMin: 4, MemMax: 320,
		DurMu: math.Log(60), DurSigma: 1.2, DurMin: 3, DurMax: 800,
		RatePerSlot: 0.30, DiurnalAmp: 0.20, DiurnalPeriod: 144, Burstiness: 0.60,
	},
	KVM2019: {
		ID: KVM2019, Name: "KVM-2019", SLO: SLOStandard,
		CPUChoices: []int{1, 2, 4, 8}, CPUWeights: []float64{0.25, 0.35, 0.30, 0.10},
		MemPerCPU: 2.5, MemSpread: 0.40, MemMin: 0.5, MemMax: 64,
		DurMu: math.Log(40), DurSigma: 1.1, DurMin: 2, DurMax: 600,
		RatePerSlot: 0.45, DiurnalAmp: 0.70, DiurnalPeriod: 144, Burstiness: 0.35,
	},
	KVM2020: {
		ID: KVM2020, Name: "KVM-2020", SLO: SLOStandard,
		CPUChoices: []int{2, 4, 8, 16}, CPUWeights: []float64{0.25, 0.35, 0.28, 0.12},
		MemPerCPU: 3.5, MemSpread: 0.40, MemMin: 1, MemMax: 96,
		DurMu: math.Log(55), DurSigma: 1.0, DurMin: 2, DurMax: 700,
		RatePerSlot: 0.40, DiurnalAmp: 0.65, DiurnalPeriod: 144, Burstiness: 0.40,
	},
	CERITSC: {
		ID: CERITSC, Name: "CERIT-SC", SLO: SLOBestEffort,
		CPUChoices: []int{1, 2, 4, 8, 16}, CPUWeights: []float64{0.20, 0.25, 0.25, 0.20, 0.10},
		MemPerCPU: 4.5, MemSpread: 0.55, MemMin: 0.5, MemMax: 192,
		DurMu: math.Log(35), DurSigma: 1.3, DurMin: 1, DurMax: 1000,
		RatePerSlot: 0.55, DiurnalAmp: 0.30, DiurnalPeriod: 144, Burstiness: 0.45,
	},
	K8S: {
		ID: K8S, Name: "K8S", SLO: SLOCritical,
		CPUChoices: []int{1, 1, 2, 4}, CPUWeights: []float64{0.45, 0.30, 0.18, 0.07},
		MemPerCPU: 1.5, MemSpread: 0.50, MemMin: 0.25, MemMax: 32,
		DurMu: math.Log(10), DurSigma: 1.4, DurMin: 1, DurMax: 600,
		RatePerSlot: 1.1, DiurnalAmp: 0.25, DiurnalPeriod: 144, Burstiness: 0.30,
	},
}

// MachineSpec mirrors one row of the paper's Table 1 (machine specifications
// of the source clusters).
type MachineSpec struct {
	Dataset  string
	CPUs     string
	MemGiB   string
	Nodes    int
	Platform string
}

// Table1 reproduces the paper's Table 1 verbatim.
func Table1() []MachineSpec {
	return []MachineSpec{
		{"Google", "20~24", "7~62", 6, ""},
		{"KVM-2019", "48", "94~127", 1551, "OpenStack"},
		{"KVM-2020", "40", "62~63", 101, "OpenStack"},
		{"K8S", "128", "512", 20, "Kubernetes"},
		{"CERIT-SC (a)", "8", "64", 18, "Grid-workers"},
		{"CERIT-SC (b)", "8", "117", 33, "Grid-workers"},
		{"CERIT-SC (c)", "16", "117", 113, "Grid-workers"},
		{"HPC (a)", "40", "232~488", 36, ""},
		{"HPC (b)", "40", "944~990", 28, ""},
		{"Alibaba (a)", "64", "512", 798, "Alibaba PAI"},
		{"Alibaba (b)", "96", "512", 497, "Alibaba PAI"},
		{"Alibaba (c)", "96", "512", 280, "Alibaba PAI"},
		{"Alibaba (d)", "96", "384", 135, "Alibaba PAI"},
		{"Alibaba (e)", "96", "512/384", 104, "Alibaba PAI"},
		{"Alibaba (f)", "96", "512", 83, "Alibaba PAI"},
	}
}
