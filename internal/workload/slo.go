package workload

import "fmt"

// SLOClass labels a task's service objective tier. The zero value is
// best-effort, so tasks and models built before the spec engine carry the
// weakest objective by default.
type SLOClass int

// The three service classes, weakest first. Reward shaping and per-class
// metrics in cloudsim are indexed by these values.
const (
	SLOBestEffort SLOClass = iota
	SLOStandard
	SLOCritical
	numSLOClasses
)

// NumSLOClasses is the number of service classes.
const NumSLOClasses = int(numSLOClasses)

// String returns the spec-file spelling of the class.
func (c SLOClass) String() string {
	switch c {
	case SLOBestEffort:
		return "best-effort"
	case SLOStandard:
		return "standard"
	case SLOCritical:
		return "critical"
	}
	return fmt.Sprintf("SLOClass(%d)", int(c))
}

// ParseSLOClass parses the spec-file spelling. The empty string maps to
// best-effort so specs may omit the field.
func ParseSLOClass(s string) (SLOClass, error) {
	switch s {
	case "", "best-effort":
		return SLOBestEffort, nil
	case "standard":
		return SLOStandard, nil
	case "critical":
		return SLOCritical, nil
	}
	return 0, fmt.Errorf("unknown slo_class %q (want best-effort, standard or critical)", s)
}
