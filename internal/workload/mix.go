package workload

import (
	"math"
	"math/rand"
	"sort"
)

// Split partitions tasks into a training set (the first trainFrac of the
// set, preserving order) and a test set (the remainder), matching the
// paper's 60/40 split (§3.1). Arrival times in the test set are rebased so
// the first test task arrives at slot 0.
func Split(tasks []Task, trainFrac float64) (train, test []Task) {
	n := int(float64(len(tasks)) * trainFrac)
	if n < 0 {
		n = 0
	}
	if n > len(tasks) {
		n = len(tasks)
	}
	train = append([]Task(nil), tasks[:n]...)
	test = Rebase(tasks[n:])
	return train, test
}

// Rebase returns a copy of tasks with IDs renumbered from zero and arrivals
// shifted so the earliest arrival is slot 0. Input order is preserved.
func Rebase(tasks []Task) []Task {
	out := append([]Task(nil), tasks...)
	if len(out) == 0 {
		return out
	}
	minArr := out[0].Arrival
	for _, t := range out {
		if t.Arrival < minArr {
			minArr = t.Arrival
		}
	}
	for i := range out {
		out[i].Arrival -= minArr
		out[i].ID = i
	}
	return out
}

// Combine merges several task sets into one heterogeneous set ordered by
// arrival slot (the paper's heter-train / heter-test construction, §3.1).
// Ties keep the input ordering, and the result is rebased.
func Combine(sets ...[]Task) []Task {
	var all []Task
	for _, s := range sets {
		all = append(all, s...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Arrival < all[j].Arrival })
	return Rebase(all)
}

// HybridMix builds the generalization test set of §5.3 for one client:
// nativeFrac of the tasks keep the client's own dataset distribution, and
// the rest are drawn uniformly from the other datasets in others. The
// result is arrival-ordered and rebased.
func HybridMix(rng *rand.Rand, native DatasetID, others []DatasetID, n int, nativeFrac float64) []Task {
	if nativeFrac < 0 {
		nativeFrac = 0
	}
	if nativeFrac > 1 {
		nativeFrac = 1
	}
	// Round to nearest so small fractions still contribute (n=7, frac=0.1
	// must yield 1 native task, not 0 via truncation).
	nNative := int(math.Round(float64(n) * nativeFrac))
	if nNative > n {
		nNative = n
	}
	sets := [][]Task{SampleDataset(native, rng, nNative)}
	remaining := n - nNative
	if len(others) > 0 && remaining > 0 {
		per := remaining / len(others)
		extra := remaining % len(others)
		for i, id := range others {
			k := per
			if i < extra {
				k++
			}
			if k > 0 {
				sets = append(sets, SampleDataset(id, rng, k))
			}
		}
	}
	return Combine(sets...)
}

// Subsample draws k tasks uniformly without replacement (preserving arrival
// order) and rebases the result. If k >= len(tasks) a rebased copy of the
// whole set is returned.
func Subsample(rng *rand.Rand, tasks []Task, k int) []Task {
	if k >= len(tasks) {
		return Rebase(tasks)
	}
	idx := rng.Perm(len(tasks))[:k]
	sort.Ints(idx)
	out := make([]Task, 0, k)
	for _, i := range idx {
		out = append(out, tasks[i])
	}
	return Rebase(out)
}
