package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
)

// csvHeader is the mandatory column layout used by ExportCSV / ImportCSV.
// An optional trailing csvSLOColumn carries service classes; traces written
// before SLO classes existed remain readable as all-best-effort.
var csvHeader = []string{"id", "arrival", "cpu", "mem_gib", "duration", "source"}

const csvSLOColumn = "slo"

// validateCSVHeader accepts the 6-column legacy layout or the 7-column
// layout with the trailing SLO column.
func validateCSVHeader(header []string) error {
	if len(header) != len(csvHeader) && len(header) != len(csvHeader)+1 {
		return fmt.Errorf("workload: CSV has %d columns, want %d (%v, optionally followed by %q)",
			len(header), len(csvHeader), csvHeader, csvSLOColumn)
	}
	for i, h := range csvHeader {
		if header[i] != h {
			return fmt.Errorf("workload: CSV column %d is %q, want %q", i, header[i], h)
		}
	}
	if len(header) > len(csvHeader) && header[len(csvHeader)] != csvSLOColumn {
		return fmt.Errorf("workload: CSV column %d is %q, want %q", len(csvHeader), header[len(csvHeader)], csvSLOColumn)
	}
	return nil
}

// ExportCSV writes tasks in a simple trace format so sampled workloads can
// be inspected, plotted, or replayed by external tools. The SLO column is
// emitted only when some task carries a non-default class, so traces of
// plain workloads keep the legacy 6-column layout byte-for-byte.
func ExportCSV(w io.Writer, tasks []Task) error {
	withSLO := false
	for _, t := range tasks {
		if t.SLO != SLOBestEffort {
			withSLO = true
			break
		}
	}
	header := csvHeader
	if withSLO {
		header = append(append([]string{}, csvHeader...), csvSLOColumn)
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, t := range tasks {
		rec := []string{
			strconv.Itoa(t.ID),
			strconv.Itoa(t.Arrival),
			strconv.Itoa(t.CPU),
			strconv.FormatFloat(t.Mem, 'g', -1, 64),
			strconv.Itoa(t.Duration),
			strconv.Itoa(int(t.Source)),
		}
		if withSLO {
			rec = append(rec, strconv.Itoa(int(t.SLO)))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ImportCSV reads a trace written by ExportCSV (or hand-authored with the
// same header). Real cluster traces can be converted to this format to
// drive the simulator with non-synthetic workloads.
func ImportCSV(r io.Reader) ([]Task, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("workload: read CSV header: %w", err)
	}
	if err := validateCSVHeader(header); err != nil {
		return nil, err
	}
	var tasks []Task
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("workload: CSV line %d: %w", line, err)
		}
		t, err := parseCSVTask(rec)
		if err != nil {
			return nil, fmt.Errorf("workload: CSV line %d: %w", line, err)
		}
		tasks = append(tasks, t)
	}
	for i := 1; i < len(tasks); i++ {
		if tasks[i].Arrival < tasks[i-1].Arrival {
			return nil, fmt.Errorf("workload: CSV arrivals not sorted at row %d", i)
		}
	}
	return tasks, nil
}

func parseCSVTask(rec []string) (Task, error) {
	var t Task
	var err error
	if t.ID, err = strconv.Atoi(rec[0]); err != nil {
		return t, fmt.Errorf("id: %w", err)
	}
	if t.Arrival, err = strconv.Atoi(rec[1]); err != nil {
		return t, fmt.Errorf("arrival: %w", err)
	}
	if t.CPU, err = strconv.Atoi(rec[2]); err != nil {
		return t, fmt.Errorf("cpu: %w", err)
	}
	if t.Mem, err = strconv.ParseFloat(rec[3], 64); err != nil {
		return t, fmt.Errorf("mem: %w", err)
	}
	if t.Duration, err = strconv.Atoi(rec[4]); err != nil {
		return t, fmt.Errorf("duration: %w", err)
	}
	src, err := strconv.Atoi(rec[5])
	if err != nil {
		return t, fmt.Errorf("source: %w", err)
	}
	t.Source = DatasetID(src)
	if len(rec) > len(csvHeader) {
		slo, err := strconv.Atoi(rec[len(csvHeader)])
		if err != nil {
			return t, fmt.Errorf("slo: %w", err)
		}
		if slo < 0 || slo >= NumSLOClasses {
			return t, fmt.Errorf("unknown slo class %d", slo)
		}
		t.SLO = SLOClass(slo)
	}
	switch {
	case t.Arrival < 0:
		return t, fmt.Errorf("negative arrival %d", t.Arrival)
	case t.CPU < 1:
		return t, fmt.Errorf("non-positive cpu %d", t.CPU)
	case !(t.Mem > 0) || math.IsInf(t.Mem, 1):
		// The negated comparison also catches NaN, which a plain
		// t.Mem <= 0 would let through.
		return t, fmt.Errorf("non-positive or non-finite mem %v", t.Mem)
	case t.Duration < 1:
		return t, fmt.Errorf("non-positive duration %d", t.Duration)
	}
	return t, nil
}
